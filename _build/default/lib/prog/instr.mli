(** A small structured parallel instruction set.

    Programs are per-processor instruction lists over shared memory
    locations and private registers.  Memory is accessed by data reads and
    writes and by the three flavours of synchronization operation the paper
    distinguishes in Section 6: read-only ([Sync_read], a [Test]),
    write-only ([Sync_write], an [Unset]), and read-write ([Test_and_set] /
    [Fetch_and_add], atomic read-modify-writes).  Each synchronization
    operation accesses exactly one location, as DRF0 requires.

    Control flow ([If], [While]) is over registers only, so every memory
    interaction is an explicit instruction — the idealized interpreter and
    the hardware simulators share this property. *)

type reg = int

type expr =
  | Const of int
  | Reg of reg
  | Add of expr * expr
  | Sub of expr * expr
  | Mul of expr * expr

type cond =
  | Eq of expr * expr
  | Ne of expr * expr
  | Lt of expr * expr
  | Le of expr * expr

type t =
  | Read of reg * Wo_core.Event.loc        (** data read: reg := [loc] *)
  | Write of Wo_core.Event.loc * expr      (** data write: [loc] := expr *)
  | Sync_read of reg * Wo_core.Event.loc   (** Test *)
  | Sync_write of Wo_core.Event.loc * expr (** Unset / synchronizing store *)
  | Test_and_set of reg * Wo_core.Event.loc
      (** reg := [loc]; [loc] := 1, atomically *)
  | Fetch_and_add of reg * Wo_core.Event.loc * expr
      (** reg := [loc]; [loc] := old + expr, atomically *)
  | Assign of reg * expr                   (** local register computation *)
  | If of cond * t list * t list
  | While of cond * t list
  | Nop                                    (** local work: consumes time *)
  | Fence
      (** order-enforcing barrier: the processor does not proceed until all
          its previous accesses are globally performed.  Not needed by DRF0
          programs (synchronization operations carry the ordering); used by
          the Shasha-Snir delay-set enforcement ({!Delay_set}) to make racy
          programs sequentially consistent. *)

val eval_expr : (reg -> int) -> expr -> int

val eval_cond : (reg -> int) -> cond -> bool

val memory_locs : t list -> Wo_core.Event.loc list
(** Locations statically mentioned, sorted and deduplicated. *)

val regs : t list -> reg list
(** Registers statically mentioned, sorted and deduplicated. *)

val static_op_count : t list -> int
(** Number of instruction nodes (loop bodies counted once). *)

val pp : Format.formatter -> t -> unit

val pp_block : Format.formatter -> t list -> unit
