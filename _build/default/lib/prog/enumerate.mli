(** Exhaustive enumeration of idealized executions.

    DRF0 (Definition 3) quantifies over {e all} executions on the idealized
    architecture, and Definition 2's appears-SC test needs the full set of
    sequentially consistent outcomes.  This module enumerates every
    interleaving of a program's memory operations by depth-first search
    over scheduling choices.  Local computation is not a branch point
    (it commutes), so the branching factor is the number of processors with
    a pending memory operation.

    Exponential, by design; litmus-scale programs only.  Programs with
    loops can have unboundedly many executions — bound them with
    [max_events] and check [truncated]. *)

exception Limit_exceeded
(** Raised by the lazy sequence when a bound is hit. *)

type stats = {
  executions : int;   (** number of complete executions enumerated *)
  truncated : bool;   (** a bound stopped the enumeration *)
}

val executions :
  ?max_events:int -> ?max_executions:int -> Program.t ->
  Wo_core.Execution.t Seq.t
(** All idealized executions, lazily.  [max_events] (default 64) bounds the
    length of a single execution; [max_executions] (default 1_000_000)
    bounds their number.  @raise Limit_exceeded when forcing the sequence
    past a bound. *)

val outcomes : ?max_events:int -> ?max_executions:int -> Program.t -> Outcome.t list
(** Distinct sequentially consistent outcomes, sorted.
    @raise Limit_exceeded as for {!executions}. *)

val outcomes_with_stats :
  ?max_events:int -> ?max_executions:int -> Program.t ->
  Outcome.t list * stats
(** Like {!outcomes} but bounds truncate instead of raising. *)

val check_drf0 :
  ?model:Wo_core.Sync_model.t ->
  ?max_events:int -> ?max_executions:int ->
  Program.t ->
  (unit, Wo_core.Drf0.report) result
(** Definition 3: the program obeys the model iff every idealized execution
    is race-free.  Returns the first racy execution's report otherwise.
    @raise Limit_exceeded as for {!executions}. *)
