type reg = int

type expr =
  | Const of int
  | Reg of reg
  | Add of expr * expr
  | Sub of expr * expr
  | Mul of expr * expr

type cond =
  | Eq of expr * expr
  | Ne of expr * expr
  | Lt of expr * expr
  | Le of expr * expr

type t =
  | Read of reg * Wo_core.Event.loc
  | Write of Wo_core.Event.loc * expr
  | Sync_read of reg * Wo_core.Event.loc
  | Sync_write of Wo_core.Event.loc * expr
  | Test_and_set of reg * Wo_core.Event.loc
  | Fetch_and_add of reg * Wo_core.Event.loc * expr
  | Assign of reg * expr
  | If of cond * t list * t list
  | While of cond * t list
  | Nop
  | Fence

let rec eval_expr env = function
  | Const n -> n
  | Reg r -> env r
  | Add (a, b) -> eval_expr env a + eval_expr env b
  | Sub (a, b) -> eval_expr env a - eval_expr env b
  | Mul (a, b) -> eval_expr env a * eval_expr env b

let eval_cond env = function
  | Eq (a, b) -> eval_expr env a = eval_expr env b
  | Ne (a, b) -> eval_expr env a <> eval_expr env b
  | Lt (a, b) -> eval_expr env a < eval_expr env b
  | Le (a, b) -> eval_expr env a <= eval_expr env b

let rec expr_regs acc = function
  | Const _ -> acc
  | Reg r -> r :: acc
  | Add (a, b) | Sub (a, b) | Mul (a, b) -> expr_regs (expr_regs acc a) b

let cond_regs acc = function
  | Eq (a, b) | Ne (a, b) | Lt (a, b) | Le (a, b) ->
    expr_regs (expr_regs acc a) b

let rec fold f acc instrs =
  List.fold_left
    (fun acc i ->
      let acc = f acc i in
      match i with
      | If (_, a, b) -> fold f (fold f acc a) b
      | While (_, b) -> fold f acc b
      | Read _ | Write _ | Sync_read _ | Sync_write _ | Test_and_set _
      | Fetch_and_add _ | Assign _ | Nop | Fence ->
        acc)
    acc instrs

let memory_locs instrs =
  fold
    (fun acc i ->
      match i with
      | Read (_, l) | Write (l, _) | Sync_read (_, l) | Sync_write (l, _)
      | Test_and_set (_, l) | Fetch_and_add (_, l, _) ->
        l :: acc
      | Assign _ | If _ | While _ | Nop | Fence -> acc)
    [] instrs
  |> List.sort_uniq Int.compare

let regs instrs =
  fold
    (fun acc i ->
      match i with
      | Read (r, _) | Sync_read (r, _) | Test_and_set (r, _) -> r :: acc
      | Fetch_and_add (r, _, e) -> expr_regs (r :: acc) e
      | Write (_, e) | Sync_write (_, e) -> expr_regs acc e
      | Assign (r, e) -> expr_regs (r :: acc) e
      | If (c, _, _) | While (c, _) -> cond_regs acc c
      | Nop | Fence -> acc)
    [] instrs
  |> List.sort_uniq Int.compare

let static_op_count instrs = fold (fun n _ -> n + 1) 0 instrs

let rec pp_expr ppf = function
  | Const n -> Format.pp_print_int ppf n
  | Reg r -> Format.fprintf ppf "r%d" r
  | Add (a, b) -> Format.fprintf ppf "(%a + %a)" pp_expr a pp_expr b
  | Sub (a, b) -> Format.fprintf ppf "(%a - %a)" pp_expr a pp_expr b
  | Mul (a, b) -> Format.fprintf ppf "(%a * %a)" pp_expr a pp_expr b

let pp_cond ppf c =
  let op, a, b =
    match c with
    | Eq (a, b) -> ("==", a, b)
    | Ne (a, b) -> ("!=", a, b)
    | Lt (a, b) -> ("<", a, b)
    | Le (a, b) -> ("<=", a, b)
  in
  Format.fprintf ppf "%a %s %a" pp_expr a op pp_expr b

let rec pp ppf = function
  | Read (r, l) ->
    Format.fprintf ppf "r%d := %a" r Wo_core.Event.pp_loc l
  | Write (l, e) ->
    Format.fprintf ppf "%a := %a" Wo_core.Event.pp_loc l pp_expr e
  | Sync_read (r, l) ->
    Format.fprintf ppf "r%d := Test(%a)" r Wo_core.Event.pp_loc l
  | Sync_write (l, e) ->
    Format.fprintf ppf "SyncWrite(%a, %a)" Wo_core.Event.pp_loc l pp_expr e
  | Test_and_set (r, l) ->
    Format.fprintf ppf "r%d := TestAndSet(%a)" r Wo_core.Event.pp_loc l
  | Fetch_and_add (r, l, e) ->
    Format.fprintf ppf "r%d := FetchAndAdd(%a, %a)" r Wo_core.Event.pp_loc l
      pp_expr e
  | Assign (r, e) -> Format.fprintf ppf "r%d := %a" r pp_expr e
  | If (c, a, b) ->
    Format.fprintf ppf "@[<v 2>if %a {@,%a@]@,}" pp_cond c pp_block a;
    if b <> [] then Format.fprintf ppf "@[<v 2> else {@,%a@]@,}" pp_block b
  | While (c, b) ->
    Format.fprintf ppf "@[<v 2>while %a {@,%a@]@,}" pp_cond c pp_block b
  | Nop -> Format.pp_print_string ppf "nop"
  | Fence -> Format.pp_print_string ppf "fence"

and pp_block ppf instrs =
  Format.pp_print_list ~pp_sep:Format.pp_print_cut pp ppf instrs
