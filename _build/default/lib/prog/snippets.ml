let acquire_tas ~lock ~scratch =
  [
    Instr.Test_and_set (scratch, lock);
    Instr.While
      (Instr.Ne (Instr.Reg scratch, Instr.Const 0),
       [ Instr.Test_and_set (scratch, lock) ]);
  ]

let acquire_ttas ~lock ~scratch ~scratch2 =
  (* scratch holds the TestAndSet result (0 = acquired); scratch2 the value
     observed by the read-only Test. *)
  [
    Instr.Assign (scratch, Instr.Const 1);
    Instr.While
      (Instr.Ne (Instr.Reg scratch, Instr.Const 0),
       [
         Instr.Sync_read (scratch2, lock);
         Instr.If
           (Instr.Eq (Instr.Reg scratch2, Instr.Const 0),
            [ Instr.Test_and_set (scratch, lock) ],
            []);
       ]);
  ]

let release ~lock = [ Instr.Sync_write (lock, Instr.Const 0) ]

let critical_section ~lock ~scratch ?(use_ttas = false) ?scratch2 body =
  let acquire =
    if use_ttas then
      match scratch2 with
      | Some s2 -> acquire_ttas ~lock ~scratch ~scratch2:s2
      | None -> invalid_arg "critical_section: use_ttas requires scratch2"
    else acquire_tas ~lock ~scratch
  in
  acquire @ body @ release ~lock

let barrier_wait ~counter ~participants ~scratch ~spin =
  [
    Instr.Fetch_and_add (scratch, counter, Instr.Const 1);
    Instr.Assign (spin, Instr.Add (Instr.Reg scratch, Instr.Const 1));
    Instr.While
      (Instr.Lt (Instr.Reg spin, Instr.Const participants),
       [ Instr.Sync_read (spin, counter) ]);
  ]

let local_work n = List.init (max 0 n) (fun _ -> Instr.Nop)
