(** Multi-threaded programs.

    A program is one instruction list per processor plus initial memory
    contents.  [observable] restricts which registers participate in the
    outcome used for sequential-consistency comparison — scratch registers
    (e.g. spin-loop counters) whose final value legitimately depends on
    timing should be excluded. *)

type t = {
  name : string;
  threads : Instr.t list array;
  initial : (Wo_core.Event.loc * Wo_core.Event.value) list;
      (** locations not listed start at 0 *)
  observable : (Wo_core.Event.proc * Instr.reg) list option;
      (** [None]: all registers are observable *)
}

val make :
  ?name:string ->
  ?initial:(Wo_core.Event.loc * Wo_core.Event.value) list ->
  ?observable:(Wo_core.Event.proc * Instr.reg) list ->
  Instr.t list list ->
  t

val num_procs : t -> int

val locs : t -> Wo_core.Event.loc list
(** Locations mentioned by any thread or initialized, sorted. *)

val initial_value : t -> Wo_core.Event.loc -> Wo_core.Event.value

val has_loops : t -> bool
(** True if any thread contains a [While] — such programs may have
    unboundedly many idealized executions, so the enumerator needs bounds. *)

val pp : Format.formatter -> t -> unit
