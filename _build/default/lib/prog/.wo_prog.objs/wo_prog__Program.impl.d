lib/prog/program.ml: Array Format Instr Int List Wo_core
