lib/prog/enumerate.mli: Outcome Program Seq Wo_core
