lib/prog/snippets.mli: Instr Wo_core
