lib/prog/outcome.ml: Format Instr List Stdlib Wo_core
