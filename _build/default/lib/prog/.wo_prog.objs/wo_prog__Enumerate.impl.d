lib/prog/enumerate.ml: Interp List Outcome Seq Wo_core
