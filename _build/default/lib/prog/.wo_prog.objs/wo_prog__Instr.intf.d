lib/prog/instr.mli: Format Wo_core
