lib/prog/program.mli: Format Instr Wo_core
