lib/prog/interp.ml: Array Instr Int List Map Option Outcome Program Random Wo_core
