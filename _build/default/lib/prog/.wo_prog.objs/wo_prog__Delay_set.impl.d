lib/prog/delay_set.ml: Array Format Fun Hashtbl Instr List Program Wo_core
