lib/prog/snippets.ml: Instr List
