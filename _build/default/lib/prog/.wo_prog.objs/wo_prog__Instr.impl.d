lib/prog/instr.ml: Format Int List Wo_core
