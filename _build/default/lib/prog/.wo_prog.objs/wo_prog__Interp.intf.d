lib/prog/interp.mli: Outcome Program Wo_core
