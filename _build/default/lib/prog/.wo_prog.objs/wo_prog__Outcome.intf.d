lib/prog/outcome.mli: Format Instr Wo_core
