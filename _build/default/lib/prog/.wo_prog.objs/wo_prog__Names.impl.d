lib/prog/names.ml:
