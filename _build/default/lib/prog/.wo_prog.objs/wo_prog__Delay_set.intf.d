lib/prog/delay_set.mli: Format Program Wo_core
