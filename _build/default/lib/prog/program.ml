type t = {
  name : string;
  threads : Instr.t list array;
  initial : (Wo_core.Event.loc * Wo_core.Event.value) list;
  observable : (Wo_core.Event.proc * Instr.reg) list option;
}

let make ?(name = "anonymous") ?(initial = []) ?observable threads =
  { name; threads = Array.of_list threads; initial; observable }

let num_procs t = Array.length t.threads

let locs t =
  let from_code =
    Array.to_list t.threads |> List.concat_map Instr.memory_locs
  in
  let from_init = List.map fst t.initial in
  List.sort_uniq Int.compare (from_code @ from_init)

let initial_value t loc =
  match List.assoc_opt loc t.initial with Some v -> v | None -> 0

let has_loops t =
  let rec block instrs = List.exists instr instrs
  and instr = function
    | Instr.While _ -> true
    | Instr.If (_, a, b) -> block a || block b
    | Instr.Read _ | Instr.Write _ | Instr.Sync_read _ | Instr.Sync_write _
    | Instr.Test_and_set _ | Instr.Fetch_and_add _ | Instr.Assign _
    | Instr.Nop | Instr.Fence ->
      false
  in
  Array.exists block t.threads

let pp ppf t =
  Format.fprintf ppf "@[<v>program %S" t.name;
  if t.initial <> [] then begin
    Format.fprintf ppf "@,initially:";
    List.iter
      (fun (l, v) ->
        Format.fprintf ppf " %a=%d" Wo_core.Event.pp_loc l v)
      t.initial
  end;
  Array.iteri
    (fun p instrs ->
      Format.fprintf ppf "@,@[<v 2>P%d:@,%a@]" p Instr.pp_block instrs)
    t.threads;
  Format.fprintf ppf "@]"
