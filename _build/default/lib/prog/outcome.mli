(** Program outcomes.

    The outcome of running a program is the final value of every observable
    register plus the final memory state — a program-level projection of
    the paper's "result" of an execution (values returned by reads and
    final memory).  Outcomes are what the Definition-2 harness compares:
    a machine appears sequentially consistent on a program iff every
    outcome it produces is an outcome of some idealized execution. *)

type t = {
  registers : (Wo_core.Event.proc * Instr.reg * Wo_core.Event.value) list;
      (** sorted by (proc, reg) *)
  memory : (Wo_core.Event.loc * Wo_core.Event.value) list;
      (** sorted by location; covers every location of the program *)
}

val make :
  registers:(Wo_core.Event.proc * Instr.reg * Wo_core.Event.value) list ->
  memory:(Wo_core.Event.loc * Wo_core.Event.value) list ->
  t

val compare : t -> t -> int

val equal : t -> t -> bool

val register : t -> Wo_core.Event.proc -> Instr.reg -> Wo_core.Event.value option

val memory_value : t -> Wo_core.Event.loc -> Wo_core.Event.value option

val pp : Format.formatter -> t -> unit
