exception Unsupported of string

type access = {
  proc : Wo_core.Event.proc;
  position : int;
  loc : Wo_core.Event.loc;
  is_write : bool;
  is_read : bool;
}

type delay = {
  dproc : Wo_core.Event.proc;
  before : access;
  after : access;
}

let access_of_instr proc position (instr : Instr.t) =
  match instr with
  | Instr.Read (_, loc) | Instr.Sync_read (_, loc) ->
    Some { proc; position; loc; is_write = false; is_read = true }
  | Instr.Write (loc, _) | Instr.Sync_write (loc, _) ->
    Some { proc; position; loc; is_write = true; is_read = false }
  | Instr.Test_and_set (_, loc) | Instr.Fetch_and_add (_, loc, _) ->
    Some { proc; position; loc; is_write = true; is_read = true }
  | Instr.Assign _ | Instr.Nop | Instr.Fence -> None
  | Instr.If _ | Instr.While _ ->
    raise
      (Unsupported
         "Delay_set: control flow is not supported (straight-line programs \
          only)")

let accesses (program : Program.t) =
  Array.to_list program.Program.threads
  |> List.mapi (fun proc instrs ->
         List.mapi (fun position i -> access_of_instr proc position i) instrs
         |> List.filter_map Fun.id)
  |> List.concat

let conflicts a b =
  a.proc <> b.proc && a.loc = b.loc && (a.is_write || b.is_write)

let analyse program =
  let all = accesses program in
  (* restrict to accesses that conflict with some other processor's access:
     only they can participate in a Shasha-Snir cycle *)
  let nodes =
    List.filter (fun a -> List.exists (conflicts a) all) all
  in
  let node_array = Array.of_list nodes in
  let n = Array.length node_array in
  (* adjacency: transitive program order within a processor, conflict edges
     (both directions) across processors *)
  let succs = Array.make n [] in
  Array.iteri
    (fun i a ->
      Array.iteri
        (fun j b ->
          if i <> j then
            if a.proc = b.proc && a.position < b.position then
              succs.(i) <- j :: succs.(i)
            else if conflicts a b then succs.(i) <- j :: succs.(i))
        node_array)
    node_array;
  let reaches src dst =
    let seen = Array.make n false in
    let rec visit i =
      if i = dst then true
      else if seen.(i) then false
      else begin
        seen.(i) <- true;
        List.exists visit succs.(i)
      end
    in
    List.exists visit succs.(src)
  in
  (* a program-order edge (a, b) is a delay iff it lies on a mixed cycle,
     i.e. b reaches a through the graph *)
  let delays = ref [] in
  Array.iteri
    (fun i a ->
      Array.iteri
        (fun j b ->
          if a.proc = b.proc && a.position < b.position && reaches j i then
            delays := { dproc = a.proc; before = a; after = b } :: !delays)
        node_array)
    node_array;
  List.rev !delays

(* Greedy interval stabbing: sort delay intervals by right endpoint; place a
   fence just before the right endpoint whenever the interval is not yet
   covered.  Classic exchange argument gives minimality per processor. *)
let fence_positions program =
  let delays = analyse program in
  let by_proc = Hashtbl.create 8 in
  List.iter
    (fun d ->
      let existing =
        match Hashtbl.find_opt by_proc d.dproc with Some l -> l | None -> []
      in
      Hashtbl.replace by_proc d.dproc
        ((d.before.position, d.after.position) :: existing))
    delays;
  Hashtbl.fold
    (fun proc intervals acc ->
      let sorted =
        List.sort (fun (_, e1) (_, e2) -> compare e1 e2) intervals
      in
      let fences = ref [] in
      List.iter
        (fun (s, e) ->
          (* a fence at gap g (after instruction g) covers the interval iff
             s <= g < e *)
          let covered = List.exists (fun g -> s <= g && g < e) !fences in
          if not covered then fences := (e - 1) :: !fences)
        sorted;
      List.fold_left (fun acc g -> (proc, g) :: acc) acc !fences)
    by_proc []
  |> List.sort compare

let insert_fences (program : Program.t) =
  let positions = fence_positions program in
  let threads =
    Array.to_list program.Program.threads
    |> List.mapi (fun proc instrs ->
           let gaps =
             List.filter_map
               (fun (p, g) -> if p = proc then Some g else None)
               positions
           in
           List.concat
             (List.mapi
                (fun i instr ->
                  if List.mem i gaps then [ instr; Instr.Fence ]
                  else [ instr ])
                instrs))
  in
  {
    program with
    Program.name = program.Program.name ^ "+fences";
    threads = Array.of_list threads;
  }

let pp_delay ppf d =
  Format.fprintf ppf "P%d: delay %s@%d(%a) -> %s@%d(%a)" d.dproc
    (if d.before.is_write then "W" else "R")
    d.before.position Wo_core.Event.pp_loc d.before.loc
    (if d.after.is_write then "W" else "R")
    d.after.position Wo_core.Event.pp_loc d.after.loc
