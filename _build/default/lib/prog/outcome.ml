type t = {
  registers : (Wo_core.Event.proc * Instr.reg * Wo_core.Event.value) list;
  memory : (Wo_core.Event.loc * Wo_core.Event.value) list;
}

let make ~registers ~memory =
  { registers = List.sort compare registers; memory = List.sort compare memory }

let compare a b = Stdlib.compare (a.registers, a.memory) (b.registers, b.memory)

let equal a b = compare a b = 0

let register t proc reg =
  List.find_map
    (fun (p, r, v) -> if p = proc && r = reg then Some v else None)
    t.registers

let memory_value t loc = List.assoc_opt loc t.memory

let pp ppf t =
  Format.fprintf ppf "@[<hov 2>{";
  List.iter
    (fun (p, r, v) -> Format.fprintf ppf "@ P%d:r%d=%d;" p r v)
    t.registers;
  List.iter
    (fun (l, v) -> Format.fprintf ppf "@ %a=%d;" Wo_core.Event.pp_loc l v)
    t.memory;
  Format.fprintf ppf "@ }@]"
