(** Shasha–Snir delay sets (Section 2.1's software route to sequential
    consistency).

    Shasha and Snir [ShS88] showed that a static analysis can identify a
    minimal set of program-ordered access pairs such that delaying the
    second member of each pair until the first completes guarantees
    sequential consistency — no matter how weak the hardware.  The paper
    discusses this as the software alternative to weak ordering and notes
    its dependence on (possibly pessimistic) static conflict analysis.

    This implementation handles straight-line programs (the litmus-test
    fragment: no [If]/[While]) and is conservative in the Shasha–Snir
    sense — it computes the program-ordered pairs that lie on {e some}
    mixed cycle of program-order and conflict edges, restricted to
    accesses that actually conflict with another processor.  Enforcing a
    superset of the minimal delay set is always sound.

    Enforcement inserts {!Instr.Fence} instructions, placed greedily so
    that one fence covers as many delay pairs as possible (interval
    stabbing). *)

exception Unsupported of string
(** Raised on programs with control flow (the analysis is defined for
    straight-line code; conflict sets of loops need the pessimistic
    data-dependence machinery the paper warns about). *)

type access = {
  proc : Wo_core.Event.proc;
  position : int;  (** index of the instruction in its thread *)
  loc : Wo_core.Event.loc;
  is_write : bool;
  is_read : bool;
}

type delay = {
  dproc : Wo_core.Event.proc;
  before : access;  (** must complete before [after] issues *)
  after : access;
}

val accesses : Program.t -> access list
(** All memory accesses of a straight-line program, in program order.
    @raise Unsupported on control flow. *)

val analyse : Program.t -> delay list
(** The delay set: program-ordered pairs of conflicting accesses lying on
    a mixed cycle. *)

val fence_positions : Program.t -> (Wo_core.Event.proc * int) list
(** Minimal fence placement covering every delay pair: [(p, i)] means a
    fence after instruction [i] of processor [p]. *)

val insert_fences : Program.t -> Program.t
(** The program with the fences of {!fence_positions} inserted.  By
    [ShS88], the result behaves sequentially consistently on any machine
    whose fences wait for all previous accesses to perform globally. *)

val pp_delay : Format.formatter -> delay -> unit
