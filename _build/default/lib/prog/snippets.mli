(** Reusable synchronization idioms, built from the hardware primitives.

    Section 4 notes that "a programmer is free to build and use higher
    level, more complex synchronization operations" as long as they use
    the primitives appropriately — these are those higher-level
    operations.  Programs composed from them are data-race-free by
    construction when shared data is only touched inside critical
    sections or between the correct sides of a barrier/handoff. *)

val acquire_tas : lock:Wo_core.Event.loc -> scratch:Instr.reg -> Instr.t list
(** Spin lock acquire with bare TestAndSet: retry until the old value is 0.
    Every iteration is a read-write synchronization operation. *)

val acquire_ttas :
  lock:Wo_core.Event.loc ->
  scratch:Instr.reg ->
  scratch2:Instr.reg ->
  Instr.t list
(** Test-and-TestAndSet acquire: spin with a read-only synchronization
    [Test] and attempt the TestAndSet only when the lock looks free — the
    idiom Section 6 discusses, whose spinning the Section-5.3
    implementation serializes but the DRF1 refinement does not. *)

val release : lock:Wo_core.Event.loc -> Instr.t list
(** [Unset]: a write-only synchronization operation storing 0. *)

val critical_section :
  lock:Wo_core.Event.loc ->
  scratch:Instr.reg ->
  ?use_ttas:bool ->
  ?scratch2:Instr.reg ->
  Instr.t list ->
  Instr.t list
(** Wrap a body in acquire/release ([use_ttas] defaults to false). *)

val barrier_wait :
  counter:Wo_core.Event.loc ->
  participants:int ->
  scratch:Instr.reg ->
  spin:Instr.reg ->
  Instr.t list
(** Single-use counting barrier: atomically increment the counter
    (FetchAndAdd), then spin with read-only synchronization until every
    participant has arrived — "spinning on a barrier count" (Section 6). *)

val local_work : int -> Instr.t list
(** [n] cycles of local computation (the "other work" of Figure 3). *)
