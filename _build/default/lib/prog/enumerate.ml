exception Limit_exceeded

type stats = { executions : int; truncated : bool }

(* Advance every processor that can finish without another memory access;
   such steps commute with everything, so they are not branch points and
   skipping them avoids enumerating duplicate executions. *)
let rec drain_silent state =
  let silent =
    List.find_map
      (fun p ->
        let state', ev = Interp.step state p in
        match ev with None -> Some state' | Some _ -> None)
      (Interp.runnable state)
  in
  match silent with None -> state | Some state' -> drain_silent state'

let executions ?(max_events = 64) ?(max_executions = 1_000_000) program =
  let produced = ref 0 in
  let rec leaves state : Wo_core.Execution.t Seq.t =
   fun () ->
    let state = drain_silent state in
    if Interp.events_so_far state > max_events then raise Limit_exceeded;
    match Interp.runnable state with
    | [] ->
      incr produced;
      if !produced > max_executions then raise Limit_exceeded;
      Seq.Cons (Interp.execution state, Seq.empty)
    | procs ->
      Seq.concat_map
        (fun p ->
          let state', _ev = Interp.step state p in
          leaves state')
        (List.to_seq procs)
        ()
  in
  leaves (Interp.init program)

(* Shared worker for outcome collection; [on_limit] decides whether bounds
   raise or merely truncate. *)
let collect_outcomes ~max_events ~max_executions ~raise_on_limit program =
  let produced = ref 0 in
  let outcomes = ref [] in
  let truncated = ref false in
  let exception Stop in
  let rec leaves state =
    let state = drain_silent state in
    if Interp.events_so_far state > max_events then
      if raise_on_limit then raise Limit_exceeded
      else begin
        truncated := true;
        raise Stop
      end;
    match Interp.runnable state with
    | [] ->
      incr produced;
      outcomes := Interp.outcome state :: !outcomes;
      if !produced >= max_executions then
        if raise_on_limit then raise Limit_exceeded
        else begin
          truncated := true;
          raise Stop
        end
    | procs ->
      List.iter
        (fun p ->
          let state', _ev = Interp.step state p in
          leaves state')
        procs
  in
  (try leaves (Interp.init program) with Stop -> ());
  ( List.sort_uniq Outcome.compare !outcomes,
    { executions = !produced; truncated = !truncated } )

let outcomes ?(max_events = 64) ?(max_executions = 1_000_000) program =
  fst (collect_outcomes ~max_events ~max_executions ~raise_on_limit:true program)

let outcomes_with_stats ?(max_events = 64) ?(max_executions = 1_000_000) program =
  collect_outcomes ~max_events ~max_executions ~raise_on_limit:false program

let check_drf0 ?model ?max_events ?max_executions program =
  Wo_core.Drf0.program_obeys ?model
    (executions ?max_events ?max_executions program)
