(** Conventional location and register names used across examples, litmus
    tests and documentation.  Locations [x..u] follow the printing
    convention of {!Wo_core.Event.pp_loc}; the synchronization variables of
    the paper's figures are [s] and [t]. *)

let x = 0
let y = 1
let z = 2
let a = 3
let b = 4
let c = 5
let s = 6
let t = 7
let u = 8

(* Registers. *)
let r0 = 0
let r1 = 1
let r2 = 2
let r3 = 3
let r4 = 4
let r5 = 5
