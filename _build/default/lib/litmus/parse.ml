module I = Wo_prog.Instr

exception Parse_error of { line : int; message : string }

let fail line fmt =
  Format.kasprintf (fun message -> raise (Parse_error { line; message })) fmt

let conventional_locations =
  [
    ("x", Wo_prog.Names.x);
    ("y", Wo_prog.Names.y);
    ("z", Wo_prog.Names.z);
    ("a", Wo_prog.Names.a);
    ("b", Wo_prog.Names.b);
    ("c", Wo_prog.Names.c);
    ("s", Wo_prog.Names.s);
    ("t", Wo_prog.Names.t);
    ("u", Wo_prog.Names.u);
  ]

type state = {
  mutable name : string;
  mutable initial : (Wo_core.Event.loc * Wo_core.Event.value) list;
  mutable threads : (int * I.t list) list;  (* processor id, code *)
  mutable clauses : (string * (int * int * int) list) list;
      (* clause name, conjunction of (proc, reg, value) *)
  locations : (string, Wo_core.Event.loc) Hashtbl.t;
  mutable next_loc : Wo_core.Event.loc;
}

let initial_state () =
  let locations = Hashtbl.create 16 in
  List.iter (fun (n, l) -> Hashtbl.replace locations n l) conventional_locations;
  {
    name = "anonymous";
    initial = [];
    threads = [];
    clauses = [];
    locations;
    next_loc = 9;
  }

let strip_comment line =
  match String.index_opt line '#' with
  | Some i -> String.sub line 0 i
  | None -> line

let is_ident_char c =
  (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || (c >= '0' && c <= '9')
  || c = '_'

let ident_like s = s <> "" && String.for_all is_ident_char s

let location st ln name =
  if not (ident_like name) then fail ln "invalid location name %S" name;
  match Hashtbl.find_opt st.locations name with
  | Some l -> l
  | None ->
    let l = st.next_loc in
    st.next_loc <- l + 1;
    Hashtbl.replace st.locations name l;
    l

let register_opt s =
  let s = String.trim s in
  if String.length s >= 2 && s.[0] = 'r' then
    match int_of_string_opt (String.sub s 1 (String.length s - 1)) with
    | Some n when n >= 0 -> Some n
    | _ -> None
  else None

let register ln s =
  match register_opt s with
  | Some n -> n
  | None -> fail ln "expected a register (rN), got %S" s

let split_on_string ~sep s =
  (* split on the first occurrence *)
  let slen = String.length sep and len = String.length s in
  let rec find i =
    if i + slen > len then None
    else if String.sub s i slen = sep then Some i
    else find (i + 1)
  in
  match find 0 with
  | None -> None
  | Some i ->
    Some (String.sub s 0 i, String.sub s (i + slen) (len - i - slen))

(* EXPR: INT | rN | rN + INT | rN + rN *)
let parse_expr ln s =
  let atom a =
    let a = String.trim a in
    match int_of_string_opt a with
    | Some n -> I.Const n
    | None ->
      if String.length a >= 2 && a.[0] = 'r' then I.Reg (register ln a)
      else fail ln "expected an integer or register, got %S" a
  in
  match split_on_string ~sep:"+" s with
  | Some (l, r) -> I.Add (atom l, atom r)
  | None -> atom s

(* call-like form: f(arg1, arg2, ...) *)
let parse_call s =
  match String.index_opt s '(' with
  | Some i when String.length s > 0 && s.[String.length s - 1] = ')' ->
    let f = String.trim (String.sub s 0 i) in
    let inner = String.sub s (i + 1) (String.length s - i - 2) in
    let args = String.split_on_char ',' inner |> List.map String.trim in
    Some (f, args)
  | _ -> None

let parse_statement st ln s =
  let s = String.trim s in
  if s = "" then []
  else if s = "fence" then [ I.Fence ]
  else if s = "nop" then [ I.Nop ]
  else if String.length s > 4 && String.sub s 0 4 = "nop*" then begin
    match int_of_string_opt (String.sub s 4 (String.length s - 4)) with
    | Some k when k >= 0 -> List.init k (fun _ -> I.Nop)
    | _ -> fail ln "bad repetition in %S" s
  end
  else
    match split_on_string ~sep:":=" s with
    | None -> (
      match parse_call s with
      | Some ("unset", [ loc ]) ->
        [ I.Sync_write (location st ln loc, I.Const 0) ]
      | Some ("sync", [ loc; e ]) ->
        [ I.Sync_write (location st ln loc, parse_expr ln e) ]
      | Some _ -> fail ln "unknown statement %S" s
      | None -> fail ln "cannot parse statement %S" s)
    | Some (lhs, rhs) -> (
        let lhs = String.trim lhs and rhs = String.trim rhs in
        if register_opt lhs <> None then begin
          (* register destination: read-like *)
          let reg = register ln lhs in
          match parse_call rhs with
          | Some ("test", [ loc ]) -> [ I.Sync_read (reg, location st ln loc) ]
          | Some ("tas", [ loc ]) -> [ I.Test_and_set (reg, location st ln loc) ]
          | Some ("faa", [ loc; k ]) ->
            [ I.Fetch_and_add (reg, location st ln loc, parse_expr ln k) ]
          | Some _ -> fail ln "unknown operation %S" rhs
          | None ->
            if
              ident_like rhs
              && int_of_string_opt rhs = None
              && register_opt rhs = None
            then [ I.Read (reg, location st ln rhs) ]
            else [ I.Assign (reg, parse_expr ln rhs) ]
        end
        else
          (* location destination: a data write *)
          [ I.Write (location st ln lhs, parse_expr ln rhs) ])

let parse_thread st ln body =
  String.split_on_char ';' body |> List.concat_map (parse_statement st ln)

let parse_init st ln body =
  String.split_on_char ' ' body
  |> List.concat_map (String.split_on_char '\t')
  |> List.filter (fun s -> String.trim s <> "")
  |> List.iter (fun assignment ->
         match String.split_on_char '=' assignment with
         | [ loc; v ] -> (
           match int_of_string_opt (String.trim v) with
           | Some v ->
             st.initial <-
               (location st ln (String.trim loc), v) :: st.initial
           | None -> fail ln "bad initial value in %S" assignment)
         | _ -> fail ln "bad initialization %S" assignment)

(* clause: Pi:rj=v & Pk:rl=w *)
let parse_clause ln body =
  let term t =
    let t = String.trim t in
    match String.split_on_char ':' t with
    | [ p; rest ] when String.length p >= 2 && p.[0] = 'P' -> (
      match
        ( int_of_string_opt (String.sub p 1 (String.length p - 1)),
          String.split_on_char '=' rest )
      with
      | Some proc, [ r; v ] -> (
        match int_of_string_opt (String.trim v) with
        | Some v -> (proc, register ln r, v)
        | None -> fail ln "bad value in clause term %S" t)
      | _ -> fail ln "bad clause term %S" t)
    | _ -> fail ln "bad clause term %S (expected Pi:rj=v)" t
  in
  String.split_on_char '&' body |> List.map term

let of_string text =
  let st = initial_state () in
  List.iteri
    (fun i raw ->
      let ln = i + 1 in
      let line = String.trim (strip_comment raw) in
      if line <> "" then
        match split_on_string ~sep:":" line with
        | None -> fail ln "expected `key: ...', got %S" line
        | Some (key, body) -> (
          let key = String.trim key and body = String.trim body in
          match key with
          | "name" -> st.name <- body
          | "init" -> parse_init st ln body
          | "forbid" -> st.clauses <- ("forbidden", parse_clause ln body) :: st.clauses
          | "exists" -> st.clauses <- ("exists", parse_clause ln body) :: st.clauses
          | _ ->
            if String.length key >= 2 && key.[0] = 'P' then
              match int_of_string_opt (String.sub key 1 (String.length key - 1)) with
              | Some p ->
                if List.mem_assoc p st.threads then
                  fail ln "processor P%d defined twice" p
                else st.threads <- (p, parse_thread st ln body) :: st.threads
              | None -> fail ln "unknown key %S" key
            else fail ln "unknown key %S" key))
    (String.split_on_char '\n' text);
  if st.threads = [] then fail 0 "no processors defined";
  let sorted = List.sort compare st.threads in
  List.iteri
    (fun i (p, _) ->
      if i <> p then fail 0 "processors must be numbered P0, P1, ... (missing P%d)" i)
    sorted;
  let program =
    Wo_prog.Program.make ~name:st.name ~initial:(List.rev st.initial)
      (List.map snd sorted)
  in
  let interesting =
    List.rev_map
      (fun (name, terms) ->
        ( name,
          fun outcome ->
            List.for_all
              (fun (p, r, v) -> Wo_prog.Outcome.register outcome p r = Some v)
              terms ))
      st.clauses
  in
  let drf0 =
    match Wo_prog.Enumerate.check_drf0 ~max_executions:200_000 program with
    | Ok () -> true
    | Error _ -> false
    | exception Wo_prog.Enumerate.Limit_exceeded -> false
  in
  {
    Litmus.name = st.name;
    description = "parsed litmus test";
    program;
    drf0;
    loops = false;
    interesting;
  }

let of_file path =
  let ic = open_in path in
  let n = in_channel_length ic in
  let text = really_input_string ic n in
  close_in ic;
  of_string text
