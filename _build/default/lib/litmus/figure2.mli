(** The two executions of Figure 2 — the paper's example and
    counter-example of DRF0.

    The figure's source text is partially garbled in the available copy,
    so these are reconstructions of the structure its caption describes;
    the caption's properties are what the checkers (and the test suite)
    verify mechanically:

    - (a) "obeys DRF0 since all conflicting accesses are ordered by
      happens-before";
    - (b) "does not obey DRF0 since the accesses of P0 conflict with the
      write of P1 but are not ordered with respect to it by
      happens-before.  Similarly, the writes by P2 and P4 conflict, but
      are unordered." *)

val execution_a : Wo_core.Execution.t
(** Six processors; a chain of synchronized handoffs on locations a, b, c
    ordering every conflict on x, y, z. *)

val execution_b : Wo_core.Execution.t
(** Five processors; exactly the unordered conflicts the caption names. *)

val expected_races_b : int
(** Number of racing pairs the exhaustive checker finds in (b). *)
