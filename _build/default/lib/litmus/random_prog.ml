module I = Wo_prog.Instr

(* Register map per thread: r0..r3 observable accumulators, r4/r5 lock
   scratch. *)
let acc_regs = [ 0; 1; 2; 3 ]

let lock_disciplined ~seed ?(procs = 3) ?(sections_per_proc = 3)
    ?(ops_per_section = 4) ?(shared_locs = 2) ?(locks = 2) () =
  let rng = Wo_sim.Rng.make seed in
  (* Locations: locks first, then the shared data they guard.  Each shared
     location is guarded by lock (loc mod locks): a thread may only touch
     it while holding that lock. *)
  let lock_of_data d = d mod locks in
  let data_loc d = locks + d in
  let thread _p =
    List.concat
      (List.init sections_per_proc (fun _ ->
           let lock = Wo_sim.Rng.int rng locks in
           let guarded =
             List.filter (fun d -> lock_of_data d = lock)
               (List.init shared_locs (fun d -> d))
           in
           let body =
             if guarded = [] then [ I.Nop ]
             else
               List.init ops_per_section (fun _ ->
                   let d = Wo_sim.Rng.pick rng guarded in
                   let loc = data_loc d in
                   if Wo_sim.Rng.bool rng then
                     I.Read (Wo_sim.Rng.pick rng acc_regs, loc)
                   else
                     I.Write
                       ( loc,
                         I.Add
                           ( I.Reg (Wo_sim.Rng.pick rng acc_regs),
                             I.Const (Wo_sim.Rng.int rng 100) ) ))
           in
           Wo_prog.Snippets.critical_section ~lock ~scratch:4
             ~use_ttas:(Wo_sim.Rng.bool rng) ~scratch2:5 body))
  in
  let threads = List.init procs thread in
  let observable =
    List.concat_map (fun p -> List.map (fun r -> (p, r)) acc_regs)
      (List.init procs (fun p -> p))
  in
  Wo_prog.Program.make
    ~name:(Printf.sprintf "lock-disciplined-%d" seed)
    ~observable threads

let racy ~seed ?(procs = 2) ?(ops_per_proc = 4) ?(locs = 3) () =
  let rng = Wo_sim.Rng.make seed in
  (* Warm every location into every cache first (reads into a scratch
     register excluded from the outcome), so the cached machines race with
     shared copies resident -- the situation Figure 1 describes.  The
     warm-up reads are separated from the racy section by local delay
     only; they race too, but since the observable outcome ignores them
     the SC comparison is unaffected (the warm-up reads' locations are
     read again or overwritten later). *)
  let warmup =
    List.init locs (fun loc -> I.Read (5, loc)) @ List.init 12 (fun _ -> I.Nop)
  in
  let thread _p =
    warmup
    @ List.init ops_per_proc (fun _ ->
          let loc = Wo_sim.Rng.int rng locs in
          if Wo_sim.Rng.bool rng then I.Read (Wo_sim.Rng.int rng 4, loc)
          else I.Write (loc, I.Const (1 + Wo_sim.Rng.int rng 9)))
  in
  let observable =
    List.concat_map
      (fun p -> List.map (fun r -> (p, r)) [ 0; 1; 2; 3 ])
      (List.init procs (fun p -> p))
  in
  Wo_prog.Program.make
    ~name:(Printf.sprintf "racy-%d" seed)
    ~observable
    (List.init procs thread)
