lib/litmus/figure2.mli: Wo_core
