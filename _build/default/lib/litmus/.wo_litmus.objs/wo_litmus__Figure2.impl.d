lib/litmus/figure2.ml: Wo_core
