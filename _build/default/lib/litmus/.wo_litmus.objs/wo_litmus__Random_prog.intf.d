lib/litmus/random_prog.mli: Wo_prog
