lib/litmus/litmus.mli: Wo_prog
