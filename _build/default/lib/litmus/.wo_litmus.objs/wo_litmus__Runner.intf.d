lib/litmus/runner.mli: Format Litmus Wo_machines Wo_prog
