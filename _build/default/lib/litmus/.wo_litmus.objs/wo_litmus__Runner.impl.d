lib/litmus/runner.ml: Format Hashtbl List Litmus Wo_core Wo_machines Wo_prog
