lib/litmus/litmus.ml: Array List Wo_prog
