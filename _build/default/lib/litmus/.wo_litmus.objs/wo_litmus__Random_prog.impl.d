lib/litmus/random_prog.ml: List Printf Wo_prog Wo_sim
