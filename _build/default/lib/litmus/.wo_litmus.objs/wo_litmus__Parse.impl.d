lib/litmus/parse.ml: Format Hashtbl List Litmus String Wo_core Wo_prog
