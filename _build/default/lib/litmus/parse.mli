(** A text format for litmus tests (in the tradition of the litmus/herd
    tools, adapted to this instruction set).

    Example:

    {v
    name: store-buffering
    init: s=1                # optional; unlisted locations start at 0
    # one line per processor; statements separated by ';'
    P0: x := 1 ; r0 := y
    P1: y := 1 ; r0 := x
    forbid: P0:r0=0 & P1:r0=0    # optional outcome clauses
    exists: P0:r0=1
    v}

    Statements:
    - [rN := LOC]            data read into register N
    - [LOC := EXPR]          data write ([EXPR] is an integer, [rN], or
                             [rN + k])
    - [rN := test(LOC)]      read-only synchronization (Test)
    - [unset(LOC)]           write-only synchronization storing 0
    - [sync(LOC, EXPR)]      write-only synchronization storing [EXPR]
    - [rN := tas(LOC)]       TestAndSet
    - [rN := faa(LOC, k)]    FetchAndAdd
    - [fence]                wait for all previous accesses to perform
    - [nop] or [nop*K]       local work

    Locations are identifiers; [x y z a b c s t u] map to the conventional
    locations of {!Wo_prog.Names}, anything else gets a fresh location.
    [#] starts a comment.  Programs are loop-free by construction, so the
    resulting {!Litmus.t} can always be enumerated; its [drf0] flag is
    computed by enumeration.  [forbid]/[exists] clauses become
    [interesting] predicates named ["forbidden"] and ["exists"]. *)

exception Parse_error of { line : int; message : string }

val of_string : string -> Litmus.t

val of_file : string -> Litmus.t
(** @raise Sys_error if the file cannot be read. *)
