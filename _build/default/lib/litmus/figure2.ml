module E = Wo_core.Event
module X = Wo_core.Execution

let w loc v = (E.Data_write, loc, None, Some v)
let r loc v = (E.Data_read, loc, Some v, None)
let s loc v = (E.Sync_rmw, loc, Some v, Some (v + 1))

let ev p (kind, loc, rv, wv) = (p, kind, loc, rv, wv)

(* Locations, matching the figure's names. *)
let x = 0
let y = 1
let z = 2
let a = 3
let b = 4
let c = 5

let execution_a =
  X.build
    [
      ev 0 (w x 1);
      ev 1 (r y 0);
      ev 0 (s a 0);
      ev 1 (w y 1);
      ev 1 (s a 1);
      ev 1 (r x 1);
      ev 2 (s a 2);
      ev 2 (r x 1);
      ev 2 (w y 2);
      ev 2 (s b 0);
      ev 3 (s b 1);
      ev 3 (r y 2);
      ev 3 (w z 1);
      ev 3 (s c 0);
      ev 4 (s c 1);
      ev 4 (r z 1);
      ev 5 (s c 2);
      ev 5 (r z 1);
    ]

let execution_b =
  X.build
    [
      ev 0 (r x 0);
      ev 1 (w x 1);
      ev 2 (w y 1);
      ev 2 (s b 0);
      ev 3 (s b 1);
      ev 3 (r y 1);
      ev 4 (w y 2);
      ev 0 (r x 0);
    ]

(* P0's two reads of x each race with P1's write; P2's write of y races
   with P4's; P3's read of y races with P4's write. *)
let expected_races_b = 4
