lib/sim/trace.mli: Format Wo_core
