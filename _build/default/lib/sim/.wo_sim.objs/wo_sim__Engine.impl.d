lib/sim/engine.ml: Int List Map
