lib/sim/rng.mli:
