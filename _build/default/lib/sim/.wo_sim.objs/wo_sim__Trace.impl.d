lib/sim/trace.ml: Format Hashtbl List Wo_core
