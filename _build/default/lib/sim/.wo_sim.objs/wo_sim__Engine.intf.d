lib/sim/engine.mli:
