type entry = {
  event : Wo_core.Event.t;
  issued : int;
  committed : int;
  performed : int;
}

type t = { mutable entries_rev : entry list; mutable size : int }

let create () = { entries_rev = []; size = 0 }

let add t e =
  t.entries_rev <- e :: t.entries_rev;
  t.size <- t.size + 1

let size t = t.size

let commit_key e = (e.committed, e.event.Wo_core.Event.id)

let entries t =
  List.sort (fun a b -> compare (commit_key a) (commit_key b)) t.entries_rev

let entries_by_issue t =
  List.sort
    (fun a b ->
      compare (a.issued, a.event.Wo_core.Event.id)
        (b.issued, b.event.Wo_core.Event.id))
    t.entries_rev

let events t = List.map (fun e -> e.event) (entries t)

let program_order t =
  let by_proc = Hashtbl.create 17 in
  List.iter
    (fun e ->
      let ev = e.event in
      let existing =
        match Hashtbl.find_opt by_proc ev.Wo_core.Event.proc with
        | None -> []
        | Some l -> l
      in
      Hashtbl.replace by_proc ev.Wo_core.Event.proc (ev :: existing))
    t.entries_rev;
  Hashtbl.fold
    (fun _proc evs r ->
      let sorted =
        List.sort
          (fun (a : Wo_core.Event.t) b -> compare a.Wo_core.Event.seq b.Wo_core.Event.seq)
          evs
      in
      let rec adjacent r = function
        | a :: (b :: _ as rest) ->
          adjacent (Wo_core.Relation.add a.Wo_core.Event.id b.Wo_core.Event.id r) rest
        | [ _ ] | [] -> r
      in
      adjacent r sorted)
    by_proc Wo_core.Relation.empty

let sync_commit_order t =
  let syncs =
    entries t |> List.filter (fun e -> Wo_core.Event.is_sync e.event)
  in
  let by_loc = Hashtbl.create 17 in
  List.iter
    (fun e ->
      let loc = e.event.Wo_core.Event.loc in
      let existing =
        match Hashtbl.find_opt by_loc loc with None -> [] | Some l -> l
      in
      Hashtbl.replace by_loc loc (e :: existing))
    syncs;
  Hashtbl.fold
    (fun _loc evs r ->
      let sorted =
        List.sort (fun a b -> compare (commit_key a) (commit_key b))
          (List.rev evs)
      in
      let rec adjacent r = function
        | a :: (b :: _ as rest) ->
          adjacent
            (Wo_core.Relation.add a.event.Wo_core.Event.id
               b.event.Wo_core.Event.id r)
            rest
        | [ _ ] | [] -> r
      in
      adjacent r sorted)
    by_loc Wo_core.Relation.empty

let find t id =
  List.find_opt (fun e -> e.event.Wo_core.Event.id = id) t.entries_rev

let pp ppf t =
  Format.fprintf ppf "@[<v>";
  List.iter
    (fun e ->
      Format.fprintf ppf "%4d/%4d/%4d  %a@," e.issued e.committed e.performed
        Wo_core.Event.pp e.event)
    (entries t);
  Format.fprintf ppf "@]"
