module Time_map = Map.Make (Int)

type t = {
  mutable now : int;
  (* time -> events in reverse scheduling order *)
  mutable queue : (unit -> unit) list Time_map.t;
  mutable pending : int;
}

type stop_reason = [ `Idle | `Time_limit | `Event_limit ]

let create () = { now = 0; queue = Time_map.empty; pending = 0 }

let now t = t.now

let schedule_at t ~time f =
  if time < t.now then invalid_arg "Engine.schedule_at: time in the past";
  let existing =
    match Time_map.find_opt time t.queue with None -> [] | Some l -> l
  in
  t.queue <- Time_map.add time (f :: existing) t.queue;
  t.pending <- t.pending + 1

let schedule t ~delay f =
  if delay < 0 then invalid_arg "Engine.schedule: negative delay";
  schedule_at t ~time:(t.now + delay) f

let pending t = t.pending

let run ?max_time ?(max_events = 50_000_000) t =
  let executed = ref 0 in
  let rec loop () =
    match Time_map.min_binding_opt t.queue with
    | None -> `Idle
    | Some (time, events) ->
      if (match max_time with Some m -> time > m | None -> false) then
        `Time_limit
      else if !executed >= max_events then `Event_limit
      else begin
        t.queue <- Time_map.remove time t.queue;
        t.now <- time;
        let in_order = List.rev events in
        t.pending <- t.pending - List.length in_order;
        List.iter
          (fun f ->
            incr executed;
            f ())
          in_order;
        loop ()
      end
  in
  loop ()
