(** Discrete-event simulation engine.

    Components schedule closures at future times; the engine runs them in
    time order, FIFO among events scheduled for the same tick, which keeps
    simulations deterministic. *)

type t

type stop_reason = [ `Idle | `Time_limit | `Event_limit ]

val create : unit -> t

val now : t -> int
(** Current simulation time (cycles). *)

val schedule : t -> delay:int -> (unit -> unit) -> unit
(** Run the closure [delay] cycles from now ([delay >= 0]). *)

val schedule_at : t -> time:int -> (unit -> unit) -> unit
(** @raise Invalid_argument if [time] is in the past. *)

val pending : t -> int
(** Number of events not yet executed. *)

val run : ?max_time:int -> ?max_events:int -> t -> stop_reason
(** Execute events until the queue drains or a limit is hit.
    [max_events] (default 50 million) is a deadlock/livelock backstop. *)
