lib/interconnect/network.ml: Hashtbl Latency Printf Wo_sim
