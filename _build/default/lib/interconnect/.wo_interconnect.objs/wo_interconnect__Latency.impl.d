lib/interconnect/latency.ml: List Wo_sim
