lib/interconnect/network.mli: Latency Wo_sim
