lib/interconnect/fabric.ml: Bus Network
