lib/interconnect/bus.ml: Hashtbl Printf Queue Wo_sim
