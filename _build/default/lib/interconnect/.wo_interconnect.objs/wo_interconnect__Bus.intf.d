lib/interconnect/bus.mli: Wo_sim
