lib/interconnect/fabric.mli: Bus Network
