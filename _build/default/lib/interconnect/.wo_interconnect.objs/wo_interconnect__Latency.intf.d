lib/interconnect/latency.mli: Wo_sim
