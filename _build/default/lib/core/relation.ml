module Int_set = Set.Make (Int)
module Int_map = Map.Make (Int)

(* A relation is an adjacency map from node to successor set, plus the set of
   nodes mentioned anywhere (so isolated predecessors are not lost). *)
type t = { succ : Int_set.t Int_map.t; universe : Int_set.t }

let empty = { succ = Int_map.empty; universe = Int_set.empty }

let add a b r =
  let set = match Int_map.find_opt a r.succ with
    | None -> Int_set.singleton b
    | Some s -> Int_set.add b s
  in
  { succ = Int_map.add a set r.succ;
    universe = Int_set.add a (Int_set.add b r.universe) }

let mem a b r =
  match Int_map.find_opt a r.succ with
  | None -> false
  | Some s -> Int_set.mem b s

let of_list l = List.fold_left (fun r (a, b) -> add a b r) empty l

let pairs r =
  Int_map.fold
    (fun a s acc -> Int_set.fold (fun b acc -> (a, b) :: acc) s acc)
    r.succ []
  |> List.sort compare

let union a b = List.fold_left (fun r (x, y) -> add x y r) a (pairs b)

let successors a r =
  match Int_map.find_opt a r.succ with
  | None -> []
  | Some s -> Int_set.elements s

let nodes r = Int_set.elements r.universe

let cardinal r = Int_map.fold (fun _ s n -> n + Int_set.cardinal s) r.succ 0

let is_empty r = Int_map.is_empty r.succ

let reachable_set start r =
  (* Nodes reachable from [start] in one or more steps (depth-first). *)
  let seen = ref Int_set.empty in
  let rec visit a =
    List.iter
      (fun b ->
        if not (Int_set.mem b !seen) then begin
          seen := Int_set.add b !seen;
          visit b
        end)
      (successors a r)
  in
  visit start;
  !seen

let reachable start r = Int_set.elements (reachable_set start r)

let transitive_closure r =
  Int_set.fold
    (fun a acc ->
      Int_set.fold (fun b acc -> add a b acc) (reachable_set a r) acc)
    r.universe empty

let is_irreflexive r =
  not (Int_map.exists (fun a s -> Int_set.mem a s) r.succ)

let is_transitive r =
  List.for_all
    (fun (a, b) -> List.for_all (fun c -> mem a c r) (successors b r))
    (pairs r)

let is_acyclic r =
  (* DFS three-colouring: a back edge to a node on the current stack is a
     cycle. *)
  let state = Hashtbl.create 97 in
  let rec visit a =
    match Hashtbl.find_opt state a with
    | Some `Done -> true
    | Some `Active -> false
    | None ->
      Hashtbl.replace state a `Active;
      let ok = List.for_all visit (successors a r) in
      Hashtbl.replace state a `Done;
      ok
  in
  List.for_all visit (nodes r)

let restrict ~keep r =
  List.fold_left
    (fun acc (a, b) -> if keep a && keep b then add a b acc else acc)
    empty (pairs r)

let in_degrees ~nodes r =
  let node_set = Int_set.of_list nodes in
  let deg = Hashtbl.create 97 in
  List.iter (fun a -> Hashtbl.replace deg a 0) nodes;
  List.iter
    (fun (a, b) ->
      if Int_set.mem a node_set && Int_set.mem b node_set then
        Hashtbl.replace deg b (Hashtbl.find deg b + 1))
    (pairs r);
  deg

let topological_sort ~nodes r =
  let deg = in_degrees ~nodes r in
  let node_set = Int_set.of_list nodes in
  let module Q = Set.Make (Int) in
  let ready =
    List.filter (fun a -> Hashtbl.find deg a = 0) nodes |> Q.of_list
  in
  let rec go ready acc n =
    if Q.is_empty ready then
      if n = List.length nodes then Some (List.rev acc) else None
    else
      let a = Q.min_elt ready in
      let ready = Q.remove a ready in
      let ready =
        List.fold_left
          (fun q b ->
            if Int_set.mem b node_set then begin
              let d = Hashtbl.find deg b - 1 in
              Hashtbl.replace deg b d;
              if d = 0 then Q.add b q else q
            end
            else q)
          ready (successors a r)
      in
      go ready (a :: acc) (n + 1)
  in
  go ready [] 0

let linearizations ?limit ~nodes r =
  let node_set = Int_set.of_list nodes in
  let deg = in_degrees ~nodes r in
  let total = List.length nodes in
  let results = ref [] in
  let count = ref 0 in
  let hit_limit () = match limit with None -> false | Some l -> !count >= l in
  let rec go acc placed ready =
    if hit_limit () then ()
    else if placed = total then begin
      incr count;
      results := List.rev acc :: !results
    end
    else
      Int_set.iter
        (fun a ->
          if not (hit_limit ()) then begin
            let newly_ready = ref Int_set.empty in
            List.iter
              (fun b ->
                if Int_set.mem b node_set then begin
                  let d = Hashtbl.find deg b - 1 in
                  Hashtbl.replace deg b d;
                  if d = 0 then newly_ready := Int_set.add b !newly_ready
                end)
              (successors a r);
            go (a :: acc) (placed + 1)
              (Int_set.union (Int_set.remove a ready) !newly_ready);
            (* undo *)
            List.iter
              (fun b ->
                if Int_set.mem b node_set then
                  Hashtbl.replace deg b (Hashtbl.find deg b + 1))
              (successors a r)
          end)
        ready
  in
  let ready =
    List.filter (fun a -> Hashtbl.find deg a = 0) nodes |> Int_set.of_list
  in
  go [] 0 ready;
  List.rev !results

let consistent a b = is_acyclic (union a b)

let equal a b = pairs a = pairs b

let pp ppf r =
  Format.fprintf ppf "@[<hov 1>{";
  List.iteri
    (fun i (a, b) ->
      if i > 0 then Format.fprintf ppf ";@ ";
      Format.fprintf ppf "%d->%d" a b)
    (pairs r);
  Format.fprintf ppf "}@]"
