type violation =
  | Cyclic_orders
  | Unordered_conflict of { e1 : Event.t; e2 : Event.t }
  | Read_not_last_write of {
      read : Event.t;
      expected : Event.value;
      got : Event.value;
    }
  | Ambiguous_last_write of Event.t

let check_hb ~init ~events hb =
  if not (Happens_before.is_partial_order hb) then Error [ Cyclic_orders ]
  else begin
    let violations = ref [] in
    let evs = Array.of_list events in
    let n = Array.length evs in
    for i = 0 to n - 1 do
      for j = i + 1 to n - 1 do
        let a = evs.(i) and b = evs.(j) in
        if
          a.Event.proc <> b.Event.proc
          && Event.conflicts a b
          && not (Happens_before.orders hb a.Event.id b.Event.id)
        then violations := Unordered_conflict { e1 = a; e2 = b } :: !violations
      done
    done;
    Array.iter
      (fun (e : Event.t) ->
        match e.Event.read_value with
        | Some got when Event.is_read e -> (
          let has_hb_write =
            List.exists
              (fun (w : Event.t) ->
                Event.is_write w
                && w.Event.loc = e.Event.loc
                && Happens_before.ordered hb w.Event.id e.Event.id)
              events
          in
          if not has_hb_write then begin
            let expected = init e.Event.loc in
            if got <> expected then
              violations :=
                Read_not_last_write { read = e; expected; got } :: !violations
          end
          else
            match Happens_before.last_write_before hb ~events e with
            | None -> violations := Ambiguous_last_write e :: !violations
            | Some w -> (
              match w.Event.written_value with
              | Some expected when expected <> got ->
                violations :=
                  Read_not_last_write { read = e; expected; got } :: !violations
              | _ -> ()))
        | _ -> ())
      evs;
    match List.rev !violations with [] -> Ok () | vs -> Error vs
  end

let check ?(init = fun _ -> 0) ~events ~po ~so () =
  check_hb ~init ~events (Happens_before.of_relations ~po ~so)

let check_execution ?(init = fun _ -> 0) ?(model = Sync_model.drf0) exn =
  check_hb ~init ~events:(Execution.events exn)
    (model.Sync_model.happens_before exn)

let pp_violation ppf = function
  | Cyclic_orders ->
    Format.fprintf ppf "program order U synchronization order is cyclic"
  | Unordered_conflict { e1; e2 } ->
    Format.fprintf ppf "conflicting accesses unordered: %a vs %a" Event.pp e1
      Event.pp e2
  | Read_not_last_write { read; expected; got } ->
    Format.fprintf ppf
      "%a returned %d but the happens-before-last write stored %d" Event.pp
      read got expected
  | Ambiguous_last_write e ->
    Format.fprintf ppf "no unique happens-before-last write for %a" Event.pp e
