(** The happens-before relation (Section 4).

    For an execution on the idealized architecture, happens-before is the
    irreflexive transitive closure of program order and synchronization
    order: [hb = (po ∪ so)+].  Two operations of different processors are
    ordered by happens-before only if intervening synchronization
    operations connect them, exactly as in the paper's example chain
    [op(P1,x) -po- S(P1,s) -so- S(P2,s) -po- S(P2,t) -so- S(P3,t) -po- op(P3,x)]. *)

type t

val of_execution : Execution.t -> t
(** Happens-before of the given idealized execution under DRF0's
    synchronization order (every pair of same-location synchronization
    operations synchronizes). *)

val of_execution_drf1 : Execution.t -> t
(** Happens-before under the refined model of Section 6 ("DRF1"): a
    read-only synchronization operation cannot be used to order the issuing
    processor's previous accesses with respect to other processors, so a
    synchronization-order edge contributes to happens-before only when its
    source has a write component and its target has a read component
    (release/acquire pairs).  Program order is unchanged. *)

val of_relations : po:Relation.t -> so:Relation.t -> t
(** Happens-before from explicit program-order and synchronization-order
    edge sets (used by the Lemma-1 checker on machine traces, where
    synchronization order comes from commit times). *)

val ordered : t -> int -> int -> bool
(** [ordered hb a b] iff event [a] happens-before event [b]. *)

val orders : t -> int -> int -> bool
(** [orders hb a b] iff [a] and [b] are ordered either way. *)

val relation : t -> Relation.t
(** The closed relation itself. *)

val is_partial_order : t -> bool
(** Irreflexive and transitive (fails when po ∪ so was cyclic, which cannot
    happen for well-formed idealized executions but can for arbitrary edge
    sets given to {!of_relations}). *)

val last_write_before : t -> events:Event.t list -> Event.t -> Event.t option
(** [last_write_before hb ~events r] is the hb-maximal write (among
    [events]) to the location of read [r] that happens-before [r], if the
    set of such writes has a unique maximum (it does in data-race-free
    executions; [None] if there is no such write or no unique maximum).
    Used by the Lemma-1 checker. *)
