(** Finite binary relations over integer-identified nodes.

    This is the substrate for the paper's order relations: program order,
    synchronization order, and happens-before (the irreflexive transitive
    closure of their union, Section 4).  Relations are immutable; nodes are
    event identifiers. *)

type t

val empty : t
(** The empty relation. *)

val add : int -> int -> t -> t
(** [add a b r] is [r] extended with the pair [(a, b)]. *)

val mem : int -> int -> t -> bool
(** [mem a b r] is [true] iff [(a, b)] is in [r]. *)

val of_list : (int * int) list -> t

val pairs : t -> (int * int) list
(** All pairs of the relation, sorted. *)

val union : t -> t -> t

val successors : int -> t -> int list
(** Sorted list of [b] such that [(a, b)] is in the relation. *)

val nodes : t -> int list
(** Sorted list of all nodes appearing on either side of a pair. *)

val cardinal : t -> int
(** Number of pairs. *)

val is_empty : t -> bool

val transitive_closure : t -> t
(** Irreflexive transitive closure is [transitive_closure] of an
    irreflexive relation; note the closure of a cyclic relation contains
    reflexive pairs. *)

val reachable : int -> t -> int list
(** Nodes reachable from the given node in one or more steps. *)

val is_acyclic : t -> bool
(** [true] iff the relation, viewed as a directed graph, has no cycle. *)

val is_irreflexive : t -> bool

val is_transitive : t -> bool

val restrict : keep:(int -> bool) -> t -> t
(** Keep only pairs whose both endpoints satisfy [keep]. *)

val topological_sort : nodes:int list -> t -> int list option
(** A total order of [nodes] consistent with the relation, or [None] if the
    relation restricted to [nodes] is cyclic.  Ties are broken by ascending
    node id, making the result deterministic. *)

val linearizations : ?limit:int -> nodes:int list -> t -> int list list
(** All total orders of [nodes] consistent with the relation, up to [limit]
    (default: unbounded).  Exponential; intended for litmus-scale inputs. *)

val consistent : t -> t -> bool
(** [consistent a b] is [true] iff the union of [a] and [b] is acyclic, i.e.
    they can be extended to a common total order (the notion used by
    Shasha–Snir and in Appendix A). *)

val equal : t -> t -> bool

val pp : Format.formatter -> t -> unit
