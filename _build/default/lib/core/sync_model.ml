type t = {
  name : string;
  description : string;
  happens_before : Execution.t -> Happens_before.t;
}

let drf0 =
  {
    name = "DRF0";
    description =
      "Data-Race-Free-0 (Definition 3): conflicting accesses must be \
       ordered by (po U so)+ where every pair of same-location \
       synchronization operations synchronizes.";
    happens_before = Happens_before.of_execution;
  }

let drf1 =
  {
    name = "DRF1";
    description =
      "Section-6 refinement of DRF0: only write->read synchronization \
       pairs order other processors' accesses, so read-only \
       synchronization (e.g. Test) need not be serialized.";
    happens_before = Happens_before.of_execution_drf1;
  }

let pp ppf t = Format.fprintf ppf "%s" t.name
