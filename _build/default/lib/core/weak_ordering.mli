(** Definition 2 as a testable contract.

    "Hardware is weakly ordered with respect to a synchronization model if
    and only if it appears sequentially consistent to all software that
    obeys the synchronization model."

    Exhaustively quantifying over all software is impossible, so the
    harness falsifies: given the set of sequentially consistent outcomes of
    a program (from the idealized-architecture enumerator) and a bag of
    outcomes observed on a machine, it reports every observed outcome
    outside the SC set.  Run over many (randomized) programs that obey the
    model, a machine with zero violations is consistent with being weakly
    ordered; a single violation disproves it. *)

type 'a verdict = {
  observed : int;             (** number of observed outcomes checked *)
  distinct_observed : 'a list;(** distinct observed outcomes *)
  violations : 'a list;       (** distinct observed outcomes outside SC *)
}

val appears_sc :
  compare:('a -> 'a -> int) -> sc_outcomes:'a list -> observed:'a list ->
  'a verdict
(** Compare observed outcomes against the SC outcome set. *)

val holds : 'a verdict -> bool
(** No violations. *)

val coverage :
  compare:('a -> 'a -> int) -> sc_outcomes:'a list -> 'a verdict -> int
(** How many distinct SC outcomes were actually observed — useful to judge
    how stressful a run was (a machine that always executes one
    interleaving trivially appears SC). *)
