type 'a verdict = {
  observed : int;
  distinct_observed : 'a list;
  violations : 'a list;
}

let dedup ~compare l = List.sort_uniq compare l

let appears_sc ~compare ~sc_outcomes ~observed =
  let sc = dedup ~compare sc_outcomes in
  let distinct_observed = dedup ~compare observed in
  let in_sc o = List.exists (fun s -> compare s o = 0) sc in
  {
    observed = List.length observed;
    distinct_observed;
    violations = List.filter (fun o -> not (in_sc o)) distinct_observed;
  }

let holds v = v.violations = []

let coverage ~compare ~sc_outcomes v =
  let sc = dedup ~compare sc_outcomes in
  List.length
    (List.filter
       (fun s -> List.exists (fun o -> compare s o = 0) v.distinct_observed)
       sc)
