(** Executions on the idealized architecture (Section 4).

    An idealized execution is a totally ordered sequence of events: all
    memory accesses execute atomically, and the events of each processor
    appear in program order.  Program order and synchronization order are
    derived from it; happens-before lives in {!Happens_before}.

    Machine traces (which have separate commit and globally-performed times)
    are converted to this representation by the simulators before being
    handed to the checkers. *)

type t

val of_ordered_events : Event.t list -> t
(** [of_ordered_events evs] builds an execution whose total (execution)
    order is the list order.  Event ids must be distinct.

    @raise Invalid_argument if ids are not distinct, or if the events of
    some processor do not appear in ascending [seq] order (an idealized
    execution executes each processor in program order). *)

val build :
  (Event.proc * Event.kind * Event.loc * Event.value option * Event.value option)
  list -> t
(** Convenience constructor for transcribing figures: events are given in
    execution order as [(proc, kind, loc, read_value, written_value)];
    ids and per-processor sequence numbers are assigned automatically. *)

val events : t -> Event.t list
(** Events in execution order. *)

val find : t -> int -> Event.t
(** Event by id.  @raise Not_found if absent. *)

val size : t -> int

val procs : t -> Event.proc list
(** Sorted, deduplicated. *)

val locs : t -> Event.loc list
(** Sorted, deduplicated. *)

val order_index : t -> int -> int
(** Position of the event with the given id in the execution order. *)

val program_order : t -> Relation.t
(** Adjacent program-order pairs (per processor, successive [seq]); take the
    transitive closure for the full relation. *)

val sync_order : t -> Relation.t
(** [op1 so op2] iff both are synchronization operations on the same
    location and [op1] completes before [op2] in the execution order
    (Section 4).  Adjacent pairs only; closure gives the total per-location
    order. *)

val augment : t -> t
(** The paper's initial/final-state augmentation: a virtual processor
    executes an initializing write to every location followed by a
    synchronization operation on a fresh special location; every real
    processor then synchronizes on that location before its first access,
    and again after its last; finally the virtual processor synchronizes
    and reads every location.  Checking DRF0 on the augmented execution
    accounts for conflicts with the initial and final state of memory. *)

val is_augmented : t -> bool

val virtual_proc : t -> Event.proc option
(** The augmentation processor, if [augment] was applied. *)

val final_memory : t -> (Event.loc * Event.value) list
(** Last written value per location in execution order (locations never
    written are absent). *)

val reads : t -> Event.t list

val writes : t -> Event.t list

val pp : Format.formatter -> t -> unit
(** Figure-2 style rendering: one column per processor, time flowing
    downward. *)
