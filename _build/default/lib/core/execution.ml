type t = {
  ordered : Event.t list;
  by_id : (int, Event.t) Hashtbl.t;
  index : (int, int) Hashtbl.t; (* id -> position in execution order *)
  virtual_proc : Event.proc option;
}

let check_distinct_ids evs =
  let seen = Hashtbl.create 97 in
  List.iter
    (fun (e : Event.t) ->
      if Hashtbl.mem seen e.Event.id then
        invalid_arg "Execution.of_ordered_events: duplicate event id";
      Hashtbl.replace seen e.Event.id ())
    evs

let check_program_order evs =
  let last_seq = Hashtbl.create 17 in
  List.iter
    (fun (e : Event.t) ->
      (match Hashtbl.find_opt last_seq e.Event.proc with
      | Some s when s >= e.Event.seq ->
        invalid_arg
          "Execution.of_ordered_events: processor events out of program order"
      | _ -> ());
      Hashtbl.replace last_seq e.Event.proc e.Event.seq)
    evs

let make ?virtual_proc ordered =
  check_distinct_ids ordered;
  check_program_order ordered;
  let by_id = Hashtbl.create 97 in
  let index = Hashtbl.create 97 in
  List.iteri
    (fun i (e : Event.t) ->
      Hashtbl.replace by_id e.Event.id e;
      Hashtbl.replace index e.Event.id i)
    ordered;
  { ordered; by_id; index; virtual_proc }

let of_ordered_events evs = make evs

let build specs =
  let next_seq = Hashtbl.create 17 in
  let evs =
    List.mapi
      (fun i (proc, kind, loc, read_value, written_value) ->
        let seq =
          match Hashtbl.find_opt next_seq proc with None -> 0 | Some s -> s
        in
        Hashtbl.replace next_seq proc (seq + 1);
        { Event.id = i; proc; seq; kind; loc; read_value; written_value })
      specs
  in
  make evs

let events t = t.ordered
let find t id = Hashtbl.find t.by_id id
let size t = List.length t.ordered

let sorted_unique l = List.sort_uniq Int.compare l

let procs t = sorted_unique (List.map (fun e -> e.Event.proc) t.ordered)
let locs t = sorted_unique (List.map (fun e -> e.Event.loc) t.ordered)
let order_index t id = Hashtbl.find t.index id

let program_order t =
  let last = Hashtbl.create 17 in
  List.fold_left
    (fun r (e : Event.t) ->
      let r =
        match Hashtbl.find_opt last e.Event.proc with
        | None -> r
        | Some prev -> Relation.add prev e.Event.id r
      in
      Hashtbl.replace last e.Event.proc e.Event.id;
      r)
    Relation.empty t.ordered

let sync_order t =
  let last_sync = Hashtbl.create 17 in
  List.fold_left
    (fun r (e : Event.t) ->
      if Event.is_sync e then begin
        let r =
          match Hashtbl.find_opt last_sync e.Event.loc with
          | None -> r
          | Some prev -> Relation.add prev e.Event.id r
        in
        Hashtbl.replace last_sync e.Event.loc e.Event.id;
        r
      end
      else r)
    Relation.empty t.ordered

let is_augmented t = t.virtual_proc <> None
let virtual_proc t = t.virtual_proc

let augment t =
  if is_augmented t then t
  else begin
    let ps = procs t in
    let vp = 1 + List.fold_left max (-1) ps in
    let special = 1 + List.fold_left max (-1) (locs t) in
    let next_id = ref (1 + List.fold_left (fun m (e : Event.t) -> max m e.Event.id) (-1) t.ordered) in
    let fresh () = let i = !next_id in incr next_id; i in
    let vseq = ref 0 in
    let vnext () = let s = !vseq in incr vseq; s in
    let init_writes =
      List.map
        (fun loc ->
          Event.make ~id:(fresh ()) ~proc:vp ~seq:(vnext ()) ~kind:Event.Data_write
            ~loc ~written_value:0 ())
        (locs t)
    in
    let vsync () =
      Event.make ~id:(fresh ()) ~proc:vp ~seq:(vnext ()) ~kind:Event.Sync_rmw
        ~loc:special ~read_value:0 ~written_value:0 ()
    in
    let init_sync = vsync () in
    (* Each real processor synchronizes on the special location before its
       first access; we give these events negative sequence numbers so they
       precede seq 0 in program order. *)
    let leading =
      List.map
        (fun p ->
          Event.make ~id:(fresh ()) ~proc:p ~seq:min_int ~kind:Event.Sync_rmw
            ~loc:special ~read_value:0 ~written_value:0 ())
        ps
    in
    let trailing =
      List.map
        (fun p ->
          Event.make ~id:(fresh ()) ~proc:p ~seq:max_int ~kind:Event.Sync_rmw
            ~loc:special ~read_value:0 ~written_value:0 ())
        ps
    in
    let final_sync = vsync () in
    let final_reads =
      List.map
        (fun loc ->
          Event.make ~id:(fresh ()) ~proc:vp ~seq:(vnext ()) ~kind:Event.Data_read
            ~loc ~read_value:0 ())
        (locs t)
    in
    make ~virtual_proc:vp
      (init_writes @ [ init_sync ] @ leading @ t.ordered @ trailing
      @ [ final_sync ] @ final_reads)
  end

let final_memory t =
  let mem = Hashtbl.create 17 in
  List.iter
    (fun (e : Event.t) ->
      match e.Event.written_value with
      | Some v when Event.is_write e -> Hashtbl.replace mem e.Event.loc v
      | _ -> ())
    t.ordered;
  Hashtbl.fold (fun loc v acc -> (loc, v) :: acc) mem []
  |> List.sort compare

let reads t = List.filter Event.is_read t.ordered
let writes t = List.filter Event.is_write t.ordered

let pp ppf t =
  let ps = procs t in
  let width = 14 in
  let pad s =
    let n = String.length s in
    if n >= width then s else s ^ String.make (width - n) ' '
  in
  Format.fprintf ppf "%s@."
    (String.concat "" (List.map (fun p -> pad (Printf.sprintf "P%d" p)) ps));
  List.iter
    (fun (e : Event.t) ->
      let cell = Format.asprintf "%a" Event.pp e in
      let cell =
        (* strip the @Pn suffix: the column already says which processor *)
        match String.index_opt cell '@' with
        | Some i -> String.sub cell 0 i
        | None -> cell
      in
      let line =
        List.map
          (fun p -> if p = e.Event.proc then pad cell else pad "")
          ps
      in
      Format.fprintf ppf "%s@." (String.concat "" line))
    t.ordered
