type result = {
  read_values : (Event.proc * int * Event.value) list;
  final : (Event.loc * Event.value) list;
}

let result_of_execution exn =
  let read_values =
    Execution.events exn
    |> List.filter_map (fun (e : Event.t) ->
           match e.Event.read_value with
           | Some v when Event.is_read e -> Some (e.Event.proc, e.Event.seq, v)
           | _ -> None)
    |> List.sort compare
  in
  { read_values; final = Execution.final_memory exn }

let compare_result a b = compare (a.read_values, a.final) (b.read_values, b.final)

let pp_result ppf r =
  Format.fprintf ppf "@[<hov 2>reads:";
  List.iter
    (fun (p, seq, v) -> Format.fprintf ppf "@ P%d#%d=%d" p seq v)
    r.read_values;
  Format.fprintf ppf ";@ final:";
  List.iter
    (fun (l, v) -> Format.fprintf ppf "@ %a=%d" Event.pp_loc l v)
    r.final;
  Format.fprintf ppf "@]"

(* Backtracking interleaving search.  The search state is the per-processor
   next-event pointer plus the memory contents; both are needed in the memo
   key because different interleavings reaching the same pointers can leave
   different last-writer values in memory. *)
let witness ?(init = fun _ -> 0) ?expected_final threads =
  let arr = Array.of_list (List.map Array.of_list threads) in
  let n = Array.length arr in
  let ptr = Array.make n 0 in
  let mem : (Event.loc, Event.value) Hashtbl.t = Hashtbl.create 17 in
  let read loc =
    match Hashtbl.find_opt mem loc with Some v -> v | None -> init loc
  in
  let visited = Hashtbl.create 997 in
  let state_key () =
    let b = Buffer.create 64 in
    Array.iter (fun p -> Buffer.add_string b (string_of_int p); Buffer.add_char b ',') ptr;
    Hashtbl.fold (fun l v acc -> (l, v) :: acc) mem []
    |> List.sort compare
    |> List.iter (fun (l, v) ->
           Buffer.add_string b (Printf.sprintf "%d=%d;" l v));
    Buffer.contents b
  in
  let executable (e : Event.t) =
    match e.Event.kind with
    | Event.Data_write | Event.Sync_write -> true
    | Event.Data_read | Event.Sync_read | Event.Sync_rmw -> (
      match e.Event.read_value with
      | None -> true (* unconstrained read *)
      | Some v -> read e.Event.loc = v)
  in
  let apply (e : Event.t) =
    if Event.is_write e then begin
      let prev = Hashtbl.find_opt mem e.Event.loc in
      (match e.Event.written_value with
      | Some v -> Hashtbl.replace mem e.Event.loc v
      | None -> ());
      prev
    end
    else None
  in
  let undo (e : Event.t) prev =
    if Event.is_write e && e.Event.written_value <> None then
      match prev with
      | Some v -> Hashtbl.replace mem e.Event.loc v
      | None -> Hashtbl.remove mem e.Event.loc
  in
  let final_ok () =
    match expected_final with
    | None -> true
    | Some expected ->
      List.for_all (fun (l, v) -> read l = v) expected
  in
  let total = Array.fold_left (fun acc t -> acc + Array.length t) 0 arr in
  let rec go acc placed =
    if placed = total then if final_ok () then Some (List.rev acc) else None
    else begin
      let key = state_key () in
      if Hashtbl.mem visited key then None
      else begin
        Hashtbl.replace visited key ();
        let rec try_proc p =
          if p >= n then None
          else if ptr.(p) >= Array.length arr.(p) then try_proc (p + 1)
          else begin
            let e = arr.(p).(ptr.(p)) in
            if executable e then begin
              let prev = apply e in
              ptr.(p) <- ptr.(p) + 1;
              match go (e :: acc) (placed + 1) with
              | Some w -> Some w
              | None ->
                ptr.(p) <- ptr.(p) - 1;
                undo e prev;
                try_proc (p + 1)
            end
            else try_proc (p + 1)
          end
        in
        try_proc 0
      end
    end
  in
  go [] 0

let threads_of_execution exn =
  let procs = Execution.procs exn in
  List.map
    (fun p ->
      Execution.events exn
      |> List.filter (fun (e : Event.t) -> e.Event.proc = p))
    procs

let is_sequentially_consistent ?init exn =
  witness ?init ~expected_final:(Execution.final_memory exn)
    (threads_of_execution exn)
  <> None
