(** Synchronization models (Section 3).

    A synchronization model is "a set of constraints on memory accesses that
    specify how and when synchronization needs to be done".  Definition 2 is
    parameterized by one; this module represents the family used in the
    paper: models that require all conflicting accesses to be ordered by a
    happens-before relation, differing only in which synchronization-order
    edges contribute to it. *)

type t = {
  name : string;
  description : string;
  happens_before : Execution.t -> Happens_before.t;
      (** The happens-before relation this model induces on an idealized
          execution. *)
}

val drf0 : t
(** Data-Race-Free-0 (Definition 3): every pair of same-location
    synchronization operations synchronizes. *)

val drf1 : t
(** The Section-6 refinement: read-only synchronization operations do not
    order the issuing processor's previous accesses with respect to other
    processors; only write→read (release→acquire) synchronization pairs
    create cross-processor ordering. *)

val pp : Format.formatter -> t -> unit
