(** Sequential consistency (Lamport, Section 1).

    Hardware is sequentially consistent if the result of any execution is
    the same as if all processors' operations executed in some total order
    consistent with each processor's program order, with [result] meaning
    the union of values returned by reads plus the final state of memory.

    This module decides, for a finite execution (typically a machine trace),
    whether such a witness total order exists, and produces it when it
    does.  The search is exponential in the worst case and intended for
    litmus-scale inputs; whole-program SC appearance for larger workloads
    is checked by outcome-set comparison in [Wo_litmus]. *)

type result = {
  read_values : (Event.proc * int * Event.value) list;
      (** (processor, program-order position, value returned) per read,
          sorted *)
  final : (Event.loc * Event.value) list;  (** final memory, sorted *)
}
(** The paper's notion of the result of an execution. *)

val result_of_execution : Execution.t -> result

val compare_result : result -> result -> int

val pp_result : Format.formatter -> result -> unit

val witness :
  ?init:(Event.loc -> Event.value) ->
  ?expected_final:(Event.loc * Event.value) list ->
  Event.t list list ->
  Event.t list option
(** [witness threads] searches for a total order of all events that is
    consistent with program order ([threads] lists each processor's events
    in program order) and in which every read returns the value of the most
    recent preceding write to its location ([init] for locations not yet
    written, default constant 0).  Read-write synchronization executes its
    two components atomically and consecutively.  If [expected_final] is
    given, the final memory must also match on those locations.  Returns
    the witness order, or [None] if the recorded read values (and final
    memory) are not sequentially consistent. *)

val is_sequentially_consistent :
  ?init:(Event.loc -> Event.value) -> Execution.t -> bool
(** Convenience: split the execution's events per processor (in program
    order), and check a witness exists that also reproduces the execution's
    final memory. *)
