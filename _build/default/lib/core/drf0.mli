(** The Data-Race-Free-0 checker (Definition 3).

    A program obeys DRF0 iff, for {e every} execution on the idealized
    architecture, all conflicting accesses are ordered by the
    happens-before relation of that execution.  This module checks single
    executions; quantification over all executions is done by enumerating
    them (see [Wo_prog.Enumerate]) and calling {!program_obeys}. *)

type race = {
  e1 : Event.t;
  e2 : Event.t;  (** [e1] precedes [e2] in the execution order *)
}
(** A pair of conflicting accesses unordered by happens-before. *)

type report = {
  execution : Execution.t;  (** the (possibly augmented) execution checked *)
  model : Sync_model.t;
  races : race list;
}

val races :
  ?model:Sync_model.t -> ?augment:bool -> Execution.t -> race list
(** All races of one idealized execution under the model (default
    {!Sync_model.drf0}).  When [augment] is [true] (the default) the
    execution is first augmented for the initial and final state of memory
    as in Section 4, so unsynchronized conflicts with initialization or
    with program termination are reported too. *)

val obeys : ?model:Sync_model.t -> ?augment:bool -> Execution.t -> bool
(** No races in this execution. *)

val check : ?model:Sync_model.t -> ?augment:bool -> Execution.t -> report

val program_obeys :
  ?model:Sync_model.t -> ?augment:bool -> Execution.t Seq.t ->
  (unit, report) result
(** Definition 3 proper: check every idealized execution of a program.
    Returns the first failing execution's report, or [Ok ()].  The sequence
    is consumed lazily. *)

val pp_race : Format.formatter -> race -> unit

val pp_report : Format.formatter -> report -> unit
