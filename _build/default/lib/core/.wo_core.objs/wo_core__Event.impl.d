lib/core/event.ml: Array Format Int
