lib/core/execution.mli: Event Format Relation
