lib/core/sync_model.mli: Execution Format Happens_before
