lib/core/relation.ml: Format Hashtbl Int List Map Set
