lib/core/weak_ordering.mli:
