lib/core/happens_before.mli: Event Execution Relation
