lib/core/lemma1.mli: Event Execution Format Relation Sync_model
