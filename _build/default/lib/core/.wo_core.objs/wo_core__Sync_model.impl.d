lib/core/sync_model.ml: Execution Format Happens_before
