lib/core/relation.mli: Format
