lib/core/weak_ordering.ml: List
