lib/core/drf0.ml: Array Event Execution Format Happens_before List Seq Sync_model
