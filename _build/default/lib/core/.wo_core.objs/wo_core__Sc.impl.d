lib/core/sc.ml: Array Buffer Event Execution Format Hashtbl List Printf
