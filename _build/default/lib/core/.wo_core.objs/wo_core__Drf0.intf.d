lib/core/drf0.mli: Event Execution Format Seq Sync_model
