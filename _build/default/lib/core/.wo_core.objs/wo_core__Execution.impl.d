lib/core/execution.ml: Event Format Hashtbl Int List Printf Relation String
