lib/core/lemma1.ml: Array Event Execution Format Happens_before List Sync_model
