lib/core/sc.mli: Event Execution Format
