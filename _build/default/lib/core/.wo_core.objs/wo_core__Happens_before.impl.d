lib/core/happens_before.ml: Event Execution Hashtbl List Relation
