(** The Lemma-1 checker (Appendix A).

    Lemma 1: a system is weakly ordered with respect to DRF0 iff for any
    execution E of a program that obeys DRF0 there is a happens-before
    relation such that every read of E appears in it and returns the value
    written by the last write to the same location ordered before it by
    happens-before.

    The checker takes the events of a machine trace together with explicit
    program order and synchronization order (the latter taken from commit
    times, matching the so(t) of Appendix B), builds [hb = (po ∪ so)+], and
    checks the condition directly.  The simulators use it as a per-run
    correctness oracle that is much cheaper than the exponential SC witness
    search — and, unlike outcome comparison, it localizes the failure. *)

type violation =
  | Cyclic_orders
      (** po ∪ so has a cycle, so no happens-before exists. *)
  | Unordered_conflict of { e1 : Event.t; e2 : Event.t }
      (** The execution is not data-race-free under this happens-before, so
          Lemma 1 does not apply (the program side of the contract was
          broken). *)
  | Read_not_last_write of {
      read : Event.t;
      expected : Event.value;  (** value of the hb-last write (or initial) *)
      got : Event.value;
    }
  | Ambiguous_last_write of Event.t
      (** No unique hb-maximal write before this read; cannot happen when
          the conflict check passes, reported defensively. *)

val check :
  ?init:(Event.loc -> Event.value) ->
  events:Event.t list ->
  po:Relation.t ->
  so:Relation.t ->
  unit ->
  (unit, violation list) result
(** Check the Lemma-1 condition.  All violations are collected. *)

val check_execution :
  ?init:(Event.loc -> Event.value) ->
  ?model:Sync_model.t ->
  Execution.t ->
  (unit, violation list) result
(** Convenience for idealized executions: derive po and so from the
    execution under the given model (default DRF0). *)

val pp_violation : Format.formatter -> violation -> unit
