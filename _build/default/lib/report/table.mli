(** Plain-text tables for the benchmark harness and examples. *)

type align = L | R

val render :
  ?align:align list -> headers:string list -> string list list -> string
(** Render rows under headers with padded columns.  [align] (default all
    left) applies per column; missing cells render empty. *)

val print :
  ?align:align list -> headers:string list -> string list list -> unit

val heading : string -> unit
(** Print an underlined section heading. *)

val subheading : string -> unit

val kv : (string * string) list -> unit
(** Print aligned key/value lines. *)
