lib/report/table.mli:
