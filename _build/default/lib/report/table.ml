type align = L | R

let render ?align ~headers rows =
  let ncols =
    List.fold_left max (List.length headers) (List.map List.length rows)
  in
  let get row i = match List.nth_opt row i with Some c -> c | None -> "" in
  let width i =
    List.fold_left
      (fun w row -> max w (String.length (get row i)))
      (String.length (get headers i))
      rows
  in
  let widths = List.init ncols width in
  let aligns =
    match align with
    | None -> List.init ncols (fun _ -> L)
    | Some a ->
      List.init ncols (fun i ->
          match List.nth_opt a i with Some x -> x | None -> L)
  in
  let pad s w a =
    let n = String.length s in
    if n >= w then s
    else
      let fill = String.make (w - n) ' ' in
      match a with L -> s ^ fill | R -> fill ^ s
  in
  let line row =
    String.concat "  "
      (List.mapi
         (fun i (w, a) -> pad (get row i) w a)
         (List.combine widths aligns))
  in
  let sep =
    String.concat "  " (List.map (fun w -> String.make w '-') widths)
  in
  String.concat "\n" (line headers :: sep :: List.map line rows)

let print ?align ~headers rows =
  print_endline (render ?align ~headers rows);
  print_newline ()

let heading s =
  print_newline ();
  print_endline s;
  print_endline (String.make (String.length s) '=');
  print_newline ()

let subheading s =
  print_newline ();
  print_endline s;
  print_endline (String.make (String.length s) '-')

let kv pairs =
  let w =
    List.fold_left (fun acc (k, _) -> max acc (String.length k)) 0 pairs
  in
  List.iter
    (fun (k, v) ->
      Printf.printf "%s%s : %s\n" k (String.make (w - String.length k) ' ') v)
    pairs
