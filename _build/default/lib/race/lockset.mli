(** A lockset checker — the "sharing only through monitors" synchronization
    model of the paper's future-work discussion (Section 7), in the style
    of Eraser.

    Where DRF0 asks only that conflicting accesses be ordered by
    happens-before {e somehow}, the monitors model demands a specific
    discipline: every shared location is consistently protected by at
    least one lock.  The checker interprets the synchronization primitives
    as a lock protocol — a read-modify-write returning the free value (0)
    acquires the lock at its location, a write-only synchronization
    storing 0 releases it — and runs the classic candidate-lockset
    refinement with the Virgin → Exclusive → Shared → Shared-Modified
    state machine.

    The model is strictly stronger than DRF0 for the programs it accepts,
    and incomparable in what it flags: a barrier-synchronized program is
    DRF0 but fails the monitors model (no lock protects the data), while
    the lockset checker needs no happens-before reasoning at all and is
    insensitive to scheduling luck — one execution usually suffices.
    This trade-off is exactly why the paper suggests models "optimized for
    particular software paradigms" as future work. *)

type violation = {
  loc : Wo_core.Event.loc;    (** the unprotected shared location *)
  access : Wo_core.Event.t;   (** the access that emptied the lockset *)
  held : Wo_core.Event.loc list;
      (** locks held by the accessing processor at that point *)
}

val check_execution : Wo_core.Execution.t -> violation list
(** Locations that became shared(-modified) with an empty candidate
    lockset, with the first offending access each. *)

val obeys_monitors_model : Wo_core.Execution.t -> bool

val check_program :
  ?schedules:int -> run:(seed:int -> Wo_core.Execution.t) -> unit ->
  violation list
(** Run several seeded schedules and collect violations (deduplicated by
    location).  Lockset checking is largely schedule-insensitive, so few
    schedules are needed (default 5). *)
