type model = Model_drf0 | Model_drf1

type loc_history = {
  mutable last_write : (Wo_core.Event.t * Vector_clock.t) option;
  mutable last_reads : (Wo_core.Event.t * Vector_clock.t) array;
      (* indexed by processor; clock all-zero means "no read yet" *)
  mutable sync_clock : Vector_clock.t;  (* join of released clocks *)
}

type t = {
  num_procs : int;
  model : model;
  mutable proc_clocks : Vector_clock.t array;
  locs : (Wo_core.Event.loc, loc_history) Hashtbl.t;
  dummy : Wo_core.Event.t;
}

let create ~num_procs ~model =
  {
    num_procs;
    model;
    proc_clocks = Array.init num_procs (fun _ -> Vector_clock.zero num_procs);
    locs = Hashtbl.create 64;
    dummy =
      Wo_core.Event.make ~id:(-1) ~proc:(-1) ~seq:(-1)
        ~kind:Wo_core.Event.Data_read ~loc:(-1) ();
  }

let history t loc =
  match Hashtbl.find_opt t.locs loc with
  | Some h -> h
  | None ->
    let h =
      {
        last_write = None;
        last_reads =
          Array.make t.num_procs (t.dummy, Vector_clock.zero t.num_procs);
        sync_clock = Vector_clock.zero t.num_procs;
      }
    in
    Hashtbl.replace t.locs loc h;
    h

(* Which synchronization components create cross-processor ordering. *)
let acquires t (e : Wo_core.Event.t) =
  match (t.model, e.Wo_core.Event.kind) with
  | _, (Wo_core.Event.Data_read | Wo_core.Event.Data_write) -> false
  | Model_drf0, _ -> true
  | Model_drf1, Wo_core.Event.Sync_write -> false
  | Model_drf1, (Wo_core.Event.Sync_read | Wo_core.Event.Sync_rmw) -> true

let releases t (e : Wo_core.Event.t) =
  match (t.model, e.Wo_core.Event.kind) with
  | _, (Wo_core.Event.Data_read | Wo_core.Event.Data_write) -> false
  | Model_drf0, _ -> true
  | Model_drf1, Wo_core.Event.Sync_read -> false
  | Model_drf1, (Wo_core.Event.Sync_write | Wo_core.Event.Sync_rmw) -> true

let observe t (e : Wo_core.Event.t) =
  let p = e.Wo_core.Event.proc in
  if p < 0 || p >= t.num_procs then
    invalid_arg "Detector.observe: processor out of range";
  let h = history t e.Wo_core.Event.loc in
  (* Advance our own component first so this event's clock includes its own
     timestamp — otherwise an event whose processor clock is still all-zero
     compares as ordered-before everything. *)
  t.proc_clocks.(p) <- Vector_clock.tick t.proc_clocks.(p) p;
  (* Acquire: past synchronization on this location orders us. *)
  if acquires t e then
    t.proc_clocks.(p) <- Vector_clock.join t.proc_clocks.(p) h.sync_clock;
  let my_clock = t.proc_clocks.(p) in
  let races = ref [] in
  let report prior =
    let prior_event, prior_clock = prior in
    if
      prior_event.Wo_core.Event.proc <> p
      && prior_event.Wo_core.Event.id >= 0
      && not (Vector_clock.leq prior_clock my_clock)
    then races := { Wo_core.Drf0.e1 = prior_event; e2 = e } :: !races
  in
  (* Conflict checks against location history. *)
  if Wo_core.Event.is_write e then begin
    Option.iter report h.last_write;
    Array.iter report h.last_reads
  end
  else Option.iter report h.last_write;
  (* Update history with this access. *)
  if Wo_core.Event.is_write e then begin
    h.last_write <- Some (e, my_clock);
    (* A write supersedes older reads for write-write detection purposes
       only when they are ordered before it; keep unordered reads. *)
    Array.iteri
      (fun q ((re, rc) as r) ->
        ignore re;
        if Vector_clock.leq rc my_clock then
          h.last_reads.(q) <- (t.dummy, Vector_clock.zero t.num_procs)
        else h.last_reads.(q) <- r)
      h.last_reads
  end;
  if Wo_core.Event.is_read e then h.last_reads.(p) <- (e, my_clock);
  (* Release: our past (including this event) becomes visible to later
     synchronizers. *)
  if releases t e then
    h.sync_clock <- Vector_clock.join h.sync_clock my_clock;
  List.rev !races

let races_of_execution ?(model = Model_drf0) exn =
  let procs = Wo_core.Execution.procs exn in
  let num_procs = 1 + List.fold_left max (-1) procs in
  let t = create ~num_procs ~model in
  List.concat_map (observe t) (Wo_core.Execution.events exn)

let is_race_free ?model exn = races_of_execution ?model exn = []

let sample_program ?(model = Model_drf0) ?(schedules = 20) ~run () =
  List.init schedules (fun seed -> races_of_execution ~model (run ~seed))
  |> List.concat
