(** On-the-fly happens-before data-race detection.

    A streaming vector-clock detector in the style the paper cites
    (Netzer–Miller): feed it the events of one idealized execution in
    execution order and it reports conflicting access pairs unordered by
    the happens-before relation of the chosen synchronization model.

    Guarantees: if the execution has at least one race, at least one race
    is reported (the detector keeps only the last write and the last read
    per processor for each location, so it may not report {e every} racing
    pair — the exhaustive {!Wo_core.Drf0} checker does, at quadratic
    cost).  If the execution is race-free, nothing is reported.

    Unlike {!Wo_core.Drf0.races}, the detector does not augment the
    execution for initial/final memory state; races with initialization
    are not its concern (compare with [Drf0.races ~augment:false]). *)

type model = Model_drf0 | Model_drf1

type t

val create : num_procs:int -> model:model -> t

val observe : t -> Wo_core.Event.t -> Wo_core.Drf0.race list
(** Process one event (events must arrive in execution order, with
    [Event.proc] < [num_procs]); returns the races this event completes
    (it is [e2] of each returned pair). *)

val races_of_execution : ?model:model -> Wo_core.Execution.t -> Wo_core.Drf0.race list
(** Run the detector over a whole execution (default {!Model_drf0}). *)

val is_race_free : ?model:model -> Wo_core.Execution.t -> bool

val sample_program :
  ?model:model ->
  ?schedules:int ->
  run:(seed:int -> Wo_core.Execution.t) ->
  unit ->
  Wo_core.Drf0.race list
(** Dynamic approximation of Definition 3 for programs too large to
    enumerate: run the program under [schedules] (default 20) seeded
    schedules and collect races.  An empty result suggests, but does not
    prove, that the program obeys the model. *)
