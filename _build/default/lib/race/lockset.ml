module E = Wo_core.Event
module Int_set = Set.Make (Int)

type violation = {
  loc : Wo_core.Event.loc;
  access : Wo_core.Event.t;
  held : Wo_core.Event.loc list;
}

(* Eraser's per-location state machine. *)
type lstate =
  | Virgin
  | Exclusive of E.proc
  | Shared of Int_set.t          (* candidate lockset *)
  | Shared_modified of Int_set.t

type tracker = {
  mutable held : Int_set.t array;  (* locks held, per processor *)
  states : (E.loc, lstate) Hashtbl.t;
  mutable violations : violation list;
  reported : (E.loc, unit) Hashtbl.t;
}

let create num_procs =
  {
    held = Array.make num_procs Int_set.empty;
    states = Hashtbl.create 32;
    violations = [];
    reported = Hashtbl.create 8;
  }

let report t loc access held =
  if not (Hashtbl.mem t.reported loc) then begin
    Hashtbl.replace t.reported loc ();
    t.violations <-
      { loc; access; held = Int_set.elements held } :: t.violations
  end

(* Interpret synchronization operations as the lock protocol. *)
let observe_sync t (e : E.t) =
  let p = e.E.proc in
  match e.E.kind with
  | E.Sync_rmw when e.E.read_value = Some 0 ->
    (* successful TestAndSet-style acquisition *)
    t.held.(p) <- Int_set.add e.E.loc t.held.(p)
  | E.Sync_write when e.E.written_value = Some 0 ->
    (* Unset: release if held *)
    t.held.(p) <- Int_set.remove e.E.loc t.held.(p)
  | E.Sync_rmw | E.Sync_write | E.Sync_read -> ()
  | E.Data_read | E.Data_write -> assert false

let observe_data t (e : E.t) =
  let p = e.E.proc in
  let held = t.held.(p) in
  let state =
    match Hashtbl.find_opt t.states e.E.loc with
    | Some st -> st
    | None -> Virgin
  in
  let check_empty candidates =
    if Int_set.is_empty candidates then report t e.E.loc e held
  in
  let next =
    match state with
    | Virgin -> Exclusive p
    | Exclusive q when q = p -> Exclusive p
    | Exclusive _ ->
      (* first access by a second processor: start the candidate set from
         the current holder's locks *)
      if E.is_write e then begin
        check_empty held;
        Shared_modified held
      end
      else Shared held
    | Shared candidates ->
      let candidates = Int_set.inter candidates held in
      if E.is_write e then begin
        check_empty candidates;
        Shared_modified candidates
      end
      else Shared candidates
    | Shared_modified candidates ->
      let candidates = Int_set.inter candidates held in
      check_empty candidates;
      Shared_modified candidates
  in
  Hashtbl.replace t.states e.E.loc next

let check_execution exn =
  let procs = Wo_core.Execution.procs exn in
  let num_procs = 1 + List.fold_left max (-1) procs in
  let t = create num_procs in
  List.iter
    (fun (e : E.t) ->
      if E.is_sync e then observe_sync t e else observe_data t e)
    (Wo_core.Execution.events exn);
  List.rev t.violations

let obeys_monitors_model exn = check_execution exn = []

let check_program ?(schedules = 5) ~run () =
  let all =
    List.concat (List.init schedules (fun seed -> check_execution (run ~seed)))
  in
  (* deduplicate by location, keeping the first report *)
  let seen = Hashtbl.create 8 in
  List.filter
    (fun v ->
      if Hashtbl.mem seen v.loc then false
      else begin
        Hashtbl.replace seen v.loc ();
        true
      end)
    all
