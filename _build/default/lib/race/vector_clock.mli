(** Vector clocks over a fixed set of processors.

    The substrate for on-the-fly happens-before race detection (the paper
    relies on Netzer–Miller-style dynamic detection for programs too large
    to enumerate). *)

type t

val zero : int -> t
(** [zero n] for [n] processors. *)

val size : t -> int

val get : t -> int -> int

val tick : t -> int -> t
(** Increment one processor's component. *)

val join : t -> t -> t
(** Pointwise maximum.  @raise Invalid_argument on size mismatch. *)

val leq : t -> t -> bool
(** Pointwise less-or-equal: [leq a b] iff a happened-before-or-equals b. *)

val equal : t -> t -> bool

val compare : t -> t -> int

val concurrent : t -> t -> bool
(** Neither [leq a b] nor [leq b a]. *)

val pp : Format.formatter -> t -> unit
