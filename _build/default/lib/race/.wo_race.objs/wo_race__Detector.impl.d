lib/race/detector.ml: Array Hashtbl List Option Vector_clock Wo_core
