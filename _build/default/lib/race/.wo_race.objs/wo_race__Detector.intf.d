lib/race/detector.mli: Wo_core
