lib/race/lockset.mli: Wo_core
