lib/race/vector_clock.ml: Array Format Stdlib String
