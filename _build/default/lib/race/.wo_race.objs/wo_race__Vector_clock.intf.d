lib/race/vector_clock.mli: Format
