lib/race/lockset.ml: Array Hashtbl Int List Set Wo_core
