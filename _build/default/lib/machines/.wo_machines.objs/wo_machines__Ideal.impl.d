lib/machines/ideal.ml: Array List Machine Wo_core Wo_prog Wo_sim
