lib/machines/machine.mli: Stdlib Wo_core Wo_prog Wo_sim
