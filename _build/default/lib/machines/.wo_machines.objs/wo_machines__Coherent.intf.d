lib/machines/coherent.mli: Machine Wo_cache
