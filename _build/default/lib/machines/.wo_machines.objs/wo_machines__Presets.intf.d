lib/machines/presets.mli: Coherent Machine
