lib/machines/ideal.mli: Machine
