lib/machines/presets.ml: Coherent Ideal List Machine String Uncached Wo_cache
