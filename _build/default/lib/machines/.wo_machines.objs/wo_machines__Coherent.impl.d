lib/machines/coherent.ml: Array List Machine Option Printf Proc_frontend String Wo_cache Wo_core Wo_interconnect Wo_prog Wo_sim
