lib/machines/uncached.ml: Array Coherent Hashtbl List Machine Option Printf Proc_frontend Queue Wo_cache Wo_core Wo_interconnect Wo_prog Wo_sim
