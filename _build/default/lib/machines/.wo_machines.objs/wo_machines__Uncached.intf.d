lib/machines/uncached.mli: Coherent Machine
