lib/machines/proc_frontend.ml: Format Int List Map Wo_core Wo_prog Wo_sim
