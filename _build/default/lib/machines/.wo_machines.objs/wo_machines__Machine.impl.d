lib/machines/machine.ml: List Printf String Wo_core Wo_prog Wo_sim
