lib/machines/proc_frontend.mli: Wo_core Wo_prog Wo_sim
