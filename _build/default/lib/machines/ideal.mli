(** The idealized architecture as a machine.

    Wraps {!Wo_prog.Interp} (atomic memory, program order, randomized
    scheduling) behind the common {!Machine.t} interface so the harnesses
    can treat it uniformly.  Sequentially consistent by construction; the
    trace's commit order is the execution order. *)

val machine : Machine.t
