exception Machine_error of string

type result = {
  outcome : Wo_prog.Outcome.t;
  trace : Wo_sim.Trace.t;
  cycles : int;
  proc_finish : int array;
  stats : (string * int) list;
}

type t = {
  name : string;
  description : string;
  sequentially_consistent : bool;
  weakly_ordered_drf0 : bool;
  run : seed:int -> Wo_prog.Program.t -> result;
}

let run t ?(seed = 0) program = t.run ~seed program

let check_lemma1 ?init r =
  Wo_core.Lemma1.check ?init
    ~events:(Wo_sim.Trace.events r.trace)
    ~po:(Wo_sim.Trace.program_order r.trace)
    ~so:(Wo_sim.Trace.sync_commit_order r.trace)
    ()

let stall r ~proc reason =
  let key = Printf.sprintf "P%d.stall.%s" proc reason in
  match List.assoc_opt key r.stats with Some v -> v | None -> 0

let is_stall_key key =
  match String.index_opt key '.' with
  | None -> false
  | Some i ->
    String.length key > i + 6 && String.sub key (i + 1) 6 = "stall."
    || String.length key >= 6 && String.sub key 0 6 = "stall."

let total_stalls r =
  List.fold_left
    (fun acc (k, v) -> if is_stall_key k then acc + v else acc)
    0 r.stats

let proc_stalls r ~proc =
  let prefix = Printf.sprintf "P%d.stall." proc in
  let plen = String.length prefix in
  List.fold_left
    (fun acc (k, v) ->
      if String.length k >= plen && String.sub k 0 plen = prefix then acc + v
      else acc)
    0 r.stats
