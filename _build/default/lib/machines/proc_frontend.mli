(** Shared processor front-end.

    Walks one thread's instruction AST, executing local computation at a
    configurable cost per instruction and handing every memory operation to
    the owning machine.  The machine decides when the processor may proceed
    (this is exactly where the ordering policies differ) by calling
    {!resume}; until then the front-end is blocked.

    Expressions are evaluated at issue time, which is sound because the
    front-end never runs ahead of an operation whose result a later
    expression needs (reads block until the machine supplies the value). *)

type memory_op = {
  kind : Wo_core.Event.kind;
  loc : Wo_core.Event.loc;
  payload :
    [ `Read
    | `Write of Wo_core.Event.value
    | `Rmw of Wo_core.Event.value -> Wo_core.Event.value ];
  dest : Wo_prog.Instr.reg option;  (** register receiving the read value *)
  seq : int;  (** program-order position of this operation *)
}

type request =
  | Access of memory_op
  | Fence
      (** the machine must not resume the processor until all its previous
          accesses are globally performed; fences produce no trace event *)

type t

val create :
  engine:Wo_sim.Engine.t ->
  proc:Wo_core.Event.proc ->
  code:Wo_prog.Instr.t list ->
  ?local_cost:int ->
  perform:(request -> unit) ->
  on_finish:(unit -> unit) ->
  unit ->
  t
(** [local_cost] (default 1) is the cycles charged per local instruction
    and per memory-operation issue.  [perform] receives each memory
    operation; the machine must eventually call {!resume}.  [on_finish]
    fires once, when the thread's last instruction has completed. *)

val start : t -> unit
(** Schedule the first advance at the current time. *)

val resume :
  t -> store:(Wo_prog.Instr.reg * Wo_core.Event.value) option -> delay:int -> unit
(** Let the processor proceed past the memory operation most recently given
    to [perform], optionally storing a read result first.
    @raise Invalid_argument if the processor is not blocked on an
    operation. *)

val finished : t -> bool

val blocked : t -> bool
(** Waiting for the machine to [resume] it. *)

val proc : t -> Wo_core.Event.proc

val registers : t -> (Wo_prog.Instr.reg * Wo_core.Event.value) list
(** Current register file, sorted, restricted to registers the thread's
    code mentions. *)

val current_position : t -> string
(** Human-readable description of where the thread is (for deadlock
    diagnostics). *)
