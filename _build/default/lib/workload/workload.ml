module I = Wo_prog.Instr
module S = Wo_prog.Snippets

type t = {
  name : string;
  description : string;
  program : Wo_prog.Program.t;
  validate : Wo_prog.Outcome.t -> (unit, string) result;
}

let repeat n block = List.concat (List.init n (fun _ -> block))

let expect_memory outcome loc expected what =
  match Wo_prog.Outcome.memory_value outcome loc with
  | Some v when v = expected -> Ok ()
  | Some v -> Error (Printf.sprintf "%s: expected %d, got %d" what expected v)
  | None -> Error (Printf.sprintf "%s: location absent from outcome" what)

let expect_register outcome proc reg expected what =
  match Wo_prog.Outcome.register outcome proc reg with
  | Some v when v = expected -> Ok ()
  | Some v ->
    Error (Printf.sprintf "%s (P%d): expected %d, got %d" what proc expected v)
  | None -> Error (Printf.sprintf "%s (P%d): register absent" what proc)

let combine results =
  match
    List.filter_map (function Ok () -> None | Error e -> Some e) results
  with
  | [] -> Ok ()
  | e :: _ -> Error e

(* --- lock-protected shared counter ----------------------------------------- *)

let critical_section ?(procs = 4) ?(sections = 5) ?(work = 8)
    ?(use_ttas = false) () =
  let lock = 0 and counter = 1 in
  let thread _p =
    repeat sections
      (S.critical_section ~lock ~scratch:4 ~use_ttas ~scratch2:5
         ([ I.Read (0, counter); I.Write (counter, I.Add (I.Reg 0, I.Const 1)) ]
         @ S.local_work work)
      @ S.local_work work)
  in
  let program =
    Wo_prog.Program.make
      ~name:(Printf.sprintf "critical-section-p%d-s%d" procs sections)
      ~observable:[]
      (List.init procs thread)
  in
  {
    name = "critical-section";
    description =
      "Lock-protected shared counter: every processor increments it inside \
       a critical section; mutual exclusion makes the final value exact.";
    program;
    validate =
      (fun o -> expect_memory o counter (procs * sections) "shared counter");
  }

(* --- spin barrier (Section 6's barrier-count spinning) --------------------- *)

let spin_barrier ?(procs = 4) ?(rounds = 3) ?(work = 8) () =
  let slot p r = (p * rounds) + r in
  let barrier r = (procs * rounds) + r in
  let written p r = (r * 1000) + p + 1 in
  let thread p =
    List.concat
      (List.init rounds (fun r ->
           S.local_work work
           @ [ I.Write (slot p r, I.Const (written p r)) ]
           @ S.barrier_wait ~counter:(barrier r) ~participants:procs
               ~scratch:4 ~spin:5
           @ [
               I.Read (1, slot ((p + 1) mod procs) r);
               I.Assign (0, I.Add (I.Reg 0, I.Reg 1));
             ]))
  in
  let program =
    Wo_prog.Program.make
      ~name:(Printf.sprintf "spin-barrier-p%d-r%d" procs rounds)
      ~observable:(List.init procs (fun p -> (p, 0)))
      (List.init procs thread)
  in
  let expected p =
    let neighbour = (p + 1) mod procs in
    List.fold_left ( + ) 0 (List.init rounds (fun r -> written neighbour r))
  in
  {
    name = "spin-barrier";
    description =
      "Rounds of work separated by counting barriers on which processors \
       spin with read-only synchronization; each processor then reads its \
       neighbour's contribution for that round.";
    program;
    validate =
      (fun o ->
        combine
          (List.init procs (fun p ->
               expect_register o p 0 (expected p) "barrier checksum")));
  }

(* --- flag-synchronized producer/consumer ----------------------------------- *)

let producer_consumer ?(items = 6) ?(work = 5) ?(batch = 1) () =
  (* [batch] buffer slots are written per item and reused across items, so
     after the first handoff every buffer write must invalidate the
     consumer's shared copy: a machine that overlaps those invalidations
     (Definition 1 and beyond) beats one that waits for each write to
     perform globally (the SC baseline). *)
  let buf i = i and flag = batch and ack = batch + 1 in
  let item i j = (i * 7) + j + 1 in
  let producer =
    List.concat
      (List.init items (fun i ->
           List.init batch (fun j -> I.Write (buf j, I.Const (item i j)))
           @ [ I.Sync_write (flag, I.Const (i + 1)) ]
           @ S.local_work work
           @ [
               I.Assign (5, I.Const 0);
               I.While
                 (I.Ne (I.Reg 5, I.Const (i + 1)), [ I.Sync_read (5, ack) ]);
             ]))
  in
  let consumer =
    List.concat
      (List.init items (fun i ->
           [
             I.Assign (5, I.Const 0);
             I.While
               (I.Ne (I.Reg 5, I.Const (i + 1)), [ I.Sync_read (5, flag) ]);
           ]
           @ List.concat_map
               (fun j ->
                 [ I.Read (1, buf j); I.Assign (0, I.Add (I.Reg 0, I.Reg 1)) ])
               (List.init batch (fun j -> j))
           @ [ I.Sync_write (ack, I.Const (i + 1)) ]
           @ S.local_work work))
  in
  let program =
    Wo_prog.Program.make
      ~name:(Printf.sprintf "producer-consumer-i%d-b%d" items batch)
      ~observable:[ (1, 0) ]
      [ producer; consumer ]
  in
  let expected =
    List.fold_left ( + ) 0
      (List.concat
         (List.init items (fun i -> List.init batch (fun j -> item i j))))
  in
  {
    name = "producer-consumer";
    description =
      "Flag-synchronized handoff of a batch of values through reused \
       buffer locations, with acknowledgements for flow control.";
    program;
    validate = (fun o -> expect_register o 1 0 expected "consumer checksum");
  }

(* --- sharded counter with a final reduction -------------------------------- *)

let sharded_counter ?(procs = 4) ?(increments = 10) () =
  let shard p = p in
  let lock = procs and total = procs + 1 in
  let thread p =
    repeat increments
      [ I.Read (1, shard p); I.Write (shard p, I.Add (I.Reg 1, I.Const 1)) ]
    @ S.critical_section ~lock ~scratch:4
        [
          I.Read (2, total);
          I.Read (3, shard p);
          I.Write (total, I.Add (I.Reg 2, I.Reg 3));
        ]
  in
  let program =
    Wo_prog.Program.make
      ~name:(Printf.sprintf "sharded-counter-p%d-i%d" procs increments)
      ~observable:[]
      (List.init procs thread)
  in
  {
    name = "sharded-counter";
    description =
      "Mostly-private traffic: each processor increments its own shard and \
       adds it to a lock-protected total at the end.";
    program;
    validate =
      (fun o -> expect_memory o total (procs * increments) "reduced total");
  }

let all =
  [
    critical_section ();
    spin_barrier ();
    producer_consumer ();
    sharded_counter ();
  ]
