(** Performance workloads (Section 6 and the paper's proposed future-work
    quantitative study).

    Every workload is data-race-free by construction (shared data is
    accessed under locks, after barriers, or through synchronized
    handoffs) and carries a validator that checks the machine preserved
    its invariant — the correctness oracle for runs whose SC outcome sets
    are far too large to enumerate. *)

type t = {
  name : string;
  description : string;
  program : Wo_prog.Program.t;
  validate : Wo_prog.Outcome.t -> (unit, string) result;
      (** checks the workload's invariant on a machine outcome *)
}

val critical_section :
  ?procs:int -> ?sections:int -> ?work:int -> ?use_ttas:bool -> unit -> t
(** Each processor repeatedly acquires a shared lock, increments a shared
    counter, does [work] local cycles inside the section, releases, and
    does [work] local cycles outside.  Invariant: the counter equals
    [procs * sections] (mutual exclusion preserved every increment). *)

val spin_barrier : ?procs:int -> ?rounds:int -> ?work:int -> unit -> t
(** Rounds of: local work, then a counting barrier on which processors
    spin with read-only synchronization — the "spinning on a barrier
    count" of Section 6.  Each processor writes its contribution to a
    private slot before the barrier and reads a neighbour's after it.
    Invariant: every read observed the value written in the same round. *)

val producer_consumer : ?items:int -> ?work:int -> ?batch:int -> unit -> t
(** Two processors; flag-synchronized handoff of [items] batches of
    [batch] values (default 1) through reused buffer locations.  Because
    the locations are reused, every producer write after the first item
    must invalidate the consumer's shared copies — a machine that overlaps
    those invalidations beats one that waits for each write to perform
    globally.  Invariant: the consumer's checksum matches. *)

val sharded_counter : ?procs:int -> ?increments:int -> unit -> t
(** Each processor owns a shard (no sharing at all except the final
    lock-protected reduction by processor 0).  Mostly-private traffic:
    the weak machines should shine here. *)

val all : t list
(** One instance of each with default parameters. *)
