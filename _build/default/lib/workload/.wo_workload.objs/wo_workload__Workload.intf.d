lib/workload/workload.mli: Wo_prog
