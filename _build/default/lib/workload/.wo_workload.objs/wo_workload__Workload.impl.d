lib/workload/workload.ml: List Printf Wo_prog
