lib/cache/cache_ctrl.ml: Buffer Format Hashtbl Int List Msg Printf Queue Wo_core Wo_interconnect Wo_sim
