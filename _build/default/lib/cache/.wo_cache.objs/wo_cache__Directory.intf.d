lib/cache/directory.mli: Msg Wo_core Wo_interconnect Wo_sim
