lib/cache/cache_ctrl.mli: Msg Wo_core Wo_interconnect Wo_sim
