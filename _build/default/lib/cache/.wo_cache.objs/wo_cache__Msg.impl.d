lib/cache/msg.ml: Format Wo_core
