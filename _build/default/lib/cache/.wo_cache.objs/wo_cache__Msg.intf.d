lib/cache/msg.mli: Format Wo_core
