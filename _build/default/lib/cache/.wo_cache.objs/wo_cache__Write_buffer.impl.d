lib/cache/write_buffer.ml: List Queue Wo_core
