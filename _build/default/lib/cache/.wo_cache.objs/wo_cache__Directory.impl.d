lib/cache/directory.ml: Buffer Format Hashtbl Int List Msg Printf Queue Set String Wo_core Wo_interconnect Wo_sim
