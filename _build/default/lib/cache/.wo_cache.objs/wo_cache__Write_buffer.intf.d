lib/cache/write_buffer.mli: Wo_core
