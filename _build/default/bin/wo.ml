(* The command-line front end.

     wo list                         catalogue of machines, litmus tests,
                                     workloads
     wo litmus figure1 -m wo-new     run a litmus test on a machine and
                                     compare against the SC outcome set
     wo races message-passing        check a litmus program against DRF0
     wo workload critical-section -m sc-dir
                                     run a workload, validate its invariant
     wo trace figure3 -m wo-new      dump one run's operation timeline *)

open Cmdliner

module M = Wo_machines.Machine
module L = Wo_litmus.Litmus

let machine_names =
  List.map (fun (m : M.t) -> m.M.name) Wo_machines.Presets.all

let machine_arg =
  let doc =
    Printf.sprintf "Machine to simulate; one of: %s."
      (String.concat ", " machine_names)
  in
  Arg.(value & opt string "wo-new" & info [ "m"; "machine" ] ~docv:"MACHINE" ~doc)

let runs_arg =
  Arg.(value & opt int 100 & info [ "n"; "runs" ] ~docv:"N" ~doc:"Seeded runs.")

let seed_arg =
  Arg.(value & opt int 1 & info [ "s"; "seed" ] ~docv:"SEED" ~doc:"Base seed.")

let get_machine name =
  match Wo_machines.Presets.find name with
  | Some m -> Ok m
  | None ->
    Error
      (Printf.sprintf "unknown machine %S; try one of: %s" name
         (String.concat ", " machine_names))

let get_litmus name =
  match L.find name with
  | Some t -> Ok t
  | None ->
    Error
      (Printf.sprintf "unknown litmus test %S; try one of: %s" name
         (String.concat ", " (List.map (fun (t : L.t) -> t.L.name) L.all)))

let get_workload name =
  match
    List.find_opt
      (fun (w : Wo_workload.Workload.t) -> w.Wo_workload.Workload.name = name)
      Wo_workload.Workload.all
  with
  | Some w -> Ok w
  | None ->
    Error
      (Printf.sprintf "unknown workload %S; try one of: %s" name
         (String.concat ", "
            (List.map
               (fun (w : Wo_workload.Workload.t) -> w.Wo_workload.Workload.name)
               Wo_workload.Workload.all)))

let or_die = function
  | Ok v -> v
  | Error msg ->
    prerr_endline msg;
    exit 1

(* --- wo list ------------------------------------------------------------- *)

let list_cmd =
  let run () =
    Wo_report.Table.heading "Machines";
    Wo_report.Table.print ~headers:[ "name"; "SC"; "WO/DRF0"; "description" ]
      (List.map
         (fun (m : M.t) ->
           [
             m.M.name;
             (if m.M.sequentially_consistent then "yes" else "no");
             (if m.M.weakly_ordered_drf0 then "yes" else "no");
             (let d = m.M.description in
              if String.length d > 60 then String.sub d 0 57 ^ "..." else d);
           ])
         Wo_machines.Presets.all);
    Wo_report.Table.heading "Litmus tests";
    Wo_report.Table.print ~headers:[ "name"; "DRF0"; "loops" ]
      (List.map
         (fun (t : L.t) ->
           [
             t.L.name;
             (if t.L.drf0 then "yes" else "no");
             (if t.L.loops then "yes" else "no");
           ])
         L.all);
    Wo_report.Table.heading "Workloads";
    Wo_report.Table.print ~headers:[ "name"; "description" ]
      (List.map
         (fun (w : Wo_workload.Workload.t) ->
           [
             w.Wo_workload.Workload.name;
             (let d = w.Wo_workload.Workload.description in
              if String.length d > 64 then String.sub d 0 61 ^ "..." else d);
           ])
         Wo_workload.Workload.all)
  in
  Cmd.v
    (Cmd.info "list" ~doc:"Catalogue of machines, litmus tests and workloads")
    Term.(const run $ const ())

(* --- wo litmus ----------------------------------------------------------- *)

let litmus_cmd =
  let test_arg =
    Arg.(
      required
      & pos 0 (some string) None
      & info [] ~docv:"TEST" ~doc:"Litmus test name (see `wo list').")
  in
  let run test machine runs seed =
    let test = or_die (get_litmus test) in
    let machine = or_die (get_machine machine) in
    let report = Wo_litmus.Runner.run ~runs ~base_seed:seed machine test in
    Format.printf "%a@.@." Wo_litmus.Runner.pp_report report;
    if not test.L.loops then begin
      Printf.printf "observed outcomes (SC set has %d):\n"
        (List.length report.Wo_litmus.Runner.sc_outcomes);
      List.iter
        (fun (o, n) ->
          let in_sc =
            List.exists
              (fun sc -> Wo_prog.Outcome.compare sc o = 0)
              report.Wo_litmus.Runner.sc_outcomes
          in
          Format.printf "  %4dx %s %a@." n
            (if in_sc then "  " else "!!")
            Wo_prog.Outcome.pp o)
        report.Wo_litmus.Runner.histogram
    end;
    if Wo_litmus.Runner.appears_sc report then
      print_endline "verdict: appears sequentially consistent"
    else begin
      print_endline "verdict: NOT sequentially consistent (!! marks non-SC outcomes)";
      exit 2
    end
  in
  Cmd.v
    (Cmd.info "litmus"
       ~doc:"Run a litmus test on a machine and compare with the SC set")
    Term.(const run $ test_arg $ machine_arg $ runs_arg $ seed_arg)

(* --- wo races ------------------------------------------------------------- *)

let races_cmd =
  let test_arg =
    Arg.(
      required
      & pos 0 (some string) None
      & info [] ~docv:"TEST" ~doc:"Litmus test name (see `wo list').")
  in
  let run test =
    let test = or_die (get_litmus test) in
    Format.printf "%a@.@." Wo_prog.Program.pp test.L.program;
    if test.L.loops then begin
      Printf.printf
        "(program has spin loops; sampling 30 schedules with the dynamic \
         detector)\n";
      let races =
        Wo_race.Detector.sample_program ~schedules:30
          ~run:(fun ~seed ->
            Wo_prog.Interp.execution
              (Wo_prog.Interp.run_random ~seed test.L.program))
          ()
      in
      if races = [] then print_endline "no races found: consistent with DRF0"
      else begin
        Printf.printf "%d race report(s); first few:\n" (List.length races);
        List.iteri
          (fun i r ->
            if i < 5 then Format.printf "  %a@." Wo_core.Drf0.pp_race r)
          races;
        exit 2
      end
    end
    else
      match Wo_prog.Enumerate.check_drf0 test.L.program with
      | Ok () ->
        print_endline
          "every idealized execution is race-free: the program obeys DRF0"
      | Error report ->
        Printf.printf "DRF0 violated; races in one idealized execution:\n";
        List.iter
          (fun r -> Format.printf "  %a@." Wo_core.Drf0.pp_race r)
          report.Wo_core.Drf0.races;
        exit 2
  in
  Cmd.v
    (Cmd.info "races" ~doc:"Check a litmus program against Definition 3 (DRF0)")
    Term.(const run $ test_arg)

(* --- wo workload ---------------------------------------------------------- *)

let workload_cmd =
  let name_arg =
    Arg.(
      required
      & pos 0 (some string) None
      & info [] ~docv:"WORKLOAD" ~doc:"Workload name (see `wo list').")
  in
  let run name machine runs seed =
    let w = or_die (get_workload name) in
    let machine = or_die (get_machine machine) in
    let cycles = ref 0 and failures = ref 0 in
    for s = seed to seed + runs - 1 do
      let r = M.run machine ~seed:s w.Wo_workload.Workload.program in
      cycles := !cycles + r.M.cycles;
      match w.Wo_workload.Workload.validate r.M.outcome with
      | Ok () -> ()
      | Error e ->
        incr failures;
        if !failures = 1 then Printf.printf "invariant broken: %s\n" e
    done;
    Printf.printf "%s on %s: %d runs, avg %d cycles, %d invariant failures\n"
      w.Wo_workload.Workload.name machine.M.name runs (!cycles / runs)
      !failures;
    if !failures > 0 then exit 2
  in
  Cmd.v
    (Cmd.info "workload" ~doc:"Run a workload and validate its invariant")
    Term.(const run $ name_arg $ machine_arg $ runs_arg $ seed_arg)

(* --- wo trace -------------------------------------------------------------- *)

let trace_cmd =
  let test_arg =
    Arg.(
      required
      & pos 0 (some string) None
      & info [] ~docv:"TEST" ~doc:"Litmus test name (see `wo list').")
  in
  let run test machine seed =
    let test = or_die (get_litmus test) in
    let machine = or_die (get_machine machine) in
    let r = M.run machine ~seed test.L.program in
    Printf.printf "one run of %s on %s (seed %d), commit order:\n\n"
      test.L.name machine.M.name seed;
    print_endline "issue/commit/globally-performed";
    Format.printf "%a@." Wo_sim.Trace.pp r.M.trace;
    Format.printf "outcome: %a@." Wo_prog.Outcome.pp r.M.outcome;
    Printf.printf "cycles: %d\n" r.M.cycles;
    match
      M.check_lemma1
        ~init:(Wo_prog.Program.initial_value test.L.program)
        r
    with
    | Ok () -> print_endline "Lemma-1 oracle: satisfied"
    | Error vs ->
      Printf.printf "Lemma-1 oracle: %d violation(s)\n" (List.length vs);
      List.iter (fun v -> Format.printf "  %a@." Wo_core.Lemma1.pp_violation v) vs
  in
  Cmd.v
    (Cmd.info "trace" ~doc:"Dump one run's operation timeline")
    Term.(const run $ test_arg $ machine_arg $ seed_arg)

(* --- wo litmus-file ----------------------------------------------------------- *)

let litmus_file_cmd =
  let file_arg =
    Arg.(
      required
      & pos 0 (some file) None
      & info [] ~docv:"FILE" ~doc:"Litmus file (see lib/litmus/parse.mli for the format).")
  in
  let run file machine runs seed =
    let test =
      try Wo_litmus.Parse.of_file file
      with Wo_litmus.Parse.Parse_error { line; message } ->
        Printf.eprintf "%s:%d: %s\n" file line message;
        exit 1
    in
    let machine = or_die (get_machine machine) in
    Format.printf "%a@.@." Wo_prog.Program.pp test.L.program;
    Printf.printf "DRF0: %s\n\n" (if test.L.drf0 then "yes" else "no");
    let report = Wo_litmus.Runner.run ~runs ~base_seed:seed machine test in
    Format.printf "%a@.@." Wo_litmus.Runner.pp_report report;
    List.iter
      (fun (o, n) ->
        let in_sc =
          List.exists
            (fun sc -> Wo_prog.Outcome.compare sc o = 0)
            report.Wo_litmus.Runner.sc_outcomes
        in
        Format.printf "  %4dx %s %a@." n
          (if in_sc then "  " else "!!")
          Wo_prog.Outcome.pp o)
      report.Wo_litmus.Runner.histogram;
    if not (Wo_litmus.Runner.appears_sc report) then exit 2
  in
  Cmd.v
    (Cmd.info "litmus-file" ~doc:"Parse and run a litmus test from a file")
    Term.(const run $ file_arg $ machine_arg $ runs_arg $ seed_arg)

(* --- wo delays -------------------------------------------------------------- *)

let delays_cmd =
  let test_arg =
    Arg.(
      required
      & pos 0 (some string) None
      & info [] ~docv:"TEST" ~doc:"Litmus test name (see `wo list').")
  in
  let run test =
    let test = or_die (get_litmus test) in
    match Wo_prog.Delay_set.analyse test.L.program with
    | exception Wo_prog.Delay_set.Unsupported msg ->
      prerr_endline msg;
      exit 1
    | [] ->
      print_endline
        "empty delay set: the program is sequentially consistent on any \
         hardware that preserves uniprocessor dependencies"
    | delays ->
      Printf.printf "Shasha-Snir delay set (%d pair(s)):\n"
        (List.length delays);
      List.iter
        (fun d -> Format.printf "  %a@." Wo_prog.Delay_set.pp_delay d)
        delays;
      print_newline ();
      Format.printf "%a@."
        Wo_prog.Program.pp
        (Wo_prog.Delay_set.insert_fences test.L.program)
  in
  Cmd.v
    (Cmd.info "delays"
       ~doc:"Shasha-Snir delay-set analysis and fence insertion")
    Term.(const run $ test_arg)

let main =
  let doc =
    "weak ordering, redefined — simulators and checkers for Adve & Hill's \
     DRF0 framework"
  in
  Cmd.group (Cmd.info "wo" ~version:"1.0.0" ~doc)
    [
      list_cmd;
      litmus_cmd;
      litmus_file_cmd;
      races_cmd;
      workload_cmd;
      trace_cmd;
      delays_cmd;
    ]

let () = exit (Cmd.eval main)
