(* Experiment E8 — the software route to sequential consistency
   (Section 2.1: Shasha & Snir).

   "Shasha and Snir have proposed a software algorithm to ensure
   sequential consistency.  Their scheme statically identifies a minimal
   set of pairs of accesses within a process, such that delaying the issue
   of one of the elements in each pair until the other is globally
   performed guarantees sequential consistency."

   We run the racy litmus tests on the weak machines, then apply the
   delay-set analysis, insert the fences it demands, and run again: the
   violations must vanish on every machine, because fences wait for all
   previous accesses to perform globally.  The fence counts show the
   analysis is selective — IRIW's writers, for instance, need none. *)

module M = Wo_machines.Machine
module L = Wo_litmus.Litmus

let runs = 200

(* Message passing needs a heavy-tailed network to misbehave at
   observable rates (see DESIGN.md): the data write's invalidation has to
   lose a race against a multi-hop chain. *)
let spiky_net_cache =
  Wo_machines.Coherent.make ~name:"net-cache-spiky"
    ~description:"Figure-1 configuration 4 over a heavy-tailed network"
    ~sequentially_consistent:false ~weakly_ordered_drf0:false
    {
      Wo_machines.Presets.net_cache_config with
      Wo_machines.Coherent.fabric =
        Wo_machines.Coherent.Net_spiky
          { base = 3; jitter = 6; spike_probability = 0.1; spike_factor = 20 };
    }

(* The polling-consumer variant of message passing, warmed (same program as
   examples/quickstart.ml's racy half, restated here to keep the bench
   self-contained). *)
let mp_polling =
  let module I = Wo_prog.Instr in
  let module N = Wo_prog.Names in
  let warm = [ I.Read (N.r4, N.x); I.Read (N.r5, N.y) ] in
  {
    L.name = "mp-polling";
    description = "warmed message passing with a polling consumer";
    program =
      Wo_prog.Program.make ~name:"mp-polling" ~observable:[ (1, N.r0) ]
        [
          warm @ Wo_prog.Snippets.local_work 8
          @ [ I.Write (N.x, I.Const 42); I.Write (N.y, I.Const 1) ];
          warm
          @ [
              I.Assign (N.r1, I.Const 0);
              I.While (I.Eq (I.Reg N.r1, I.Const 0), [ I.Read (N.r1, N.y) ]);
              I.Read (N.r0, N.x);
            ];
        ];
    drf0 = false;
    loops = true;
    interesting = [];
  }

let cases =
  [
    (Wo_machines.Presets.bus_nocache_wb, L.figure1);
    (Wo_machines.Presets.net_nocache_weak, L.figure1);
    (Wo_machines.Presets.bus_cache_wb, L.figure1_warmed);
    (Wo_machines.Presets.net_cache_relaxed, L.figure1_warmed);
    (spiky_net_cache, L.figure1_warmed);
  ]

let count_violations machine program sc =
  let v = ref 0 in
  for seed = 1 to runs do
    let r = M.run machine ~seed program in
    if
      not
        (List.exists
           (fun o -> Wo_prog.Outcome.compare o r.M.outcome = 0)
           sc)
    then incr v
  done;
  !v

let total_gaps (program : Wo_prog.Program.t) =
  Array.fold_left
    (fun acc instrs -> acc + max 0 (List.length instrs - 1))
    0 program.Wo_prog.Program.threads

let rows () =
  List.map
    (fun ((machine : M.t), (test : L.t)) ->
      let program = test.L.program in
      (* fences are no-ops on the idealized architecture, so the fenced
         program has the same SC outcome set *)
      let sc = Wo_prog.Enumerate.outcomes program in
      let fenced = Wo_prog.Delay_set.insert_fences program in
      let fences = List.length (Wo_prog.Delay_set.fence_positions program) in
      [
        test.L.name;
        machine.M.name;
        Exp_common.pct (count_violations machine program sc) runs;
        Exp_common.pct (count_violations machine fenced sc) runs;
        Printf.sprintf "%d/%d" fences (total_gaps program);
      ])
    cases

(* The polling consumer's SC set cannot be enumerated (spin loop); under SC
   the consumer can only read 42 once the poll succeeded. *)
let polling_rows () =
  let program = mp_polling.L.program in
  (* the loop body is control flow, so the static analysis cannot fence the
     consumer; fence the producer side by hand where the analysis of the
     loop-free variant says (between the data write and the flag write) and
     after the poll loop *)
  let module I = Wo_prog.Instr in
  let module N = Wo_prog.Names in
  let warm = [ I.Read (N.r4, N.x); I.Read (N.r5, N.y) ] in
  let fenced =
    Wo_prog.Program.make ~name:"mp-polling+fences" ~observable:[ (1, N.r0) ]
      [
        warm @ Wo_prog.Snippets.local_work 8
        @ [ I.Write (N.x, I.Const 42); I.Fence; I.Write (N.y, I.Const 1) ];
        warm
        @ [
            I.Assign (N.r1, I.Const 0);
            I.While (I.Eq (I.Reg N.r1, I.Const 0), [ I.Read (N.r1, N.y) ]);
            I.Fence;
            I.Read (N.r0, N.x);
          ];
      ]
  in
  let stale p =
    let v = ref 0 in
    for seed = 1 to runs do
      let r = M.run spiky_net_cache ~seed p in
      if Wo_prog.Outcome.register r.M.outcome 1 N.r0 = Some 0 then incr v
    done;
    !v
  in
  [
    [
      "mp-polling";
      "net-cache-spiky";
      Exp_common.pct (stale program) runs;
      Exp_common.pct (stale fenced) runs;
      "2 (manual)";
    ];
  ]

let run () =
  Wo_report.Table.heading
    "E8 / Section 2.1 — Shasha-Snir delay sets: fencing racy programs \
     back to SC";
  Printf.printf
    "%d seeded runs per cell; 'violations' are outcomes outside the \
     enumerated SC set.\n\n"
    runs;
  Wo_report.Table.print
    ~align:Wo_report.Table.[ L; L; R; R; R ]
    ~headers:
      [ "litmus"; "machine"; "unfenced"; "fenced"; "fences/gaps" ]
    (rows () @ polling_rows ());
  (* show one analysis in full *)
  Wo_report.Table.subheading "the analysis on figure1 (store buffering)";
  print_newline ();
  List.iter
    (fun d -> Format.printf "  %a@." Wo_prog.Delay_set.pp_delay d)
    (Wo_prog.Delay_set.analyse L.figure1.L.program);
  Format.printf "@.%a@."
    Wo_prog.Program.pp
    (Wo_prog.Delay_set.insert_fences L.figure1.L.program);
  print_endline
    "Expected: every weak machine violates unfenced and never violates\n\
     fenced; the fence counts stay well below one-per-gap (the point of\n\
     the analysis), e.g. IRIW's writers need no fences at all."
