(* Experiment E5 — the paper's proposed future work: "A quantitative
   performance analysis comparing implementations for the old and new
   definitions of weak ordering would provide useful insight."

   Workload sweep over the machine ladder: sequentially consistent
   directory hardware (every access waits to perform globally),
   Definition-1 hardware, the Section-5.3 implementation, and its DRF1
   refinement.  The expected shape: SC pays on every access; wo-old pays
   at synchronization boundaries; wo-new hides the release-side stall;
   drf1 additionally removes read-only-synchronization serialization. *)

module M = Wo_machines.Machine

let machines =
  [
    Wo_machines.Presets.sc_dir;
    Wo_machines.Presets.wo_old;
    Wo_machines.Presets.wo_new;
    Wo_machines.Presets.wo_new_drf1;
  ]

let runs = 20

let row (w : Wo_workload.Workload.t) label =
  let validate_failures = ref 0 in
  let cycles =
    List.map
      (fun m ->
        let total = ref 0 in
        for seed = 1 to runs do
          let r = M.run m ~seed w.Wo_workload.Workload.program in
          total := !total + r.M.cycles;
          match w.Wo_workload.Workload.validate r.M.outcome with
          | Ok () -> ()
          | Error _ -> incr validate_failures
        done;
        !total / runs)
      machines
  in
  (label :: List.map string_of_int cycles)
  @ [ string_of_int !validate_failures ]

let rows () =
  List.concat
    [
      List.map
        (fun (procs, work) ->
          row
            (Wo_workload.Workload.critical_section ~procs ~sections:4 ~work ())
            (Printf.sprintf "critical-section p=%d work=%d" procs work))
        [ (2, 4); (2, 16); (4, 4); (4, 16); (8, 8) ];
      List.map
        (fun (items, batch) ->
          row
            (Wo_workload.Workload.producer_consumer ~items ~work:6 ~batch ())
            (Printf.sprintf "producer-consumer items=%d batch=%d" items batch))
        [ (4, 1); (4, 6); (8, 6) ];
      List.map
        (fun procs ->
          row
            (Wo_workload.Workload.sharded_counter ~procs ~increments:12 ())
            (Printf.sprintf "sharded-counter p=%d" procs))
        [ 2; 4; 8 ];
    ]

let headers =
  ("workload" :: List.map (fun (m : M.t) -> m.M.name) machines)
  @ [ "invariant failures" ]

let run () =
  Wo_report.Table.heading
    "E5 / future work — quantitative comparison across the machine ladder \
     (cycles, lower is better)";
  Wo_report.Table.print
    ~align:Wo_report.Table.[ L; R; R; R; R; R ]
    ~headers (rows ());
  print_endline
    "Expected shape: sc-dir slowest everywhere (every access waits to\n\
     perform globally); wo-old recovers most of it; wo-new beats wo-old\n\
     where releases overlap with pending writes; wo-new-drf1 matches or\n\
     beats wo-new, especially with contended locks.  Invariant failures\n\
     must be 0 — weak ordering must not cost correctness for DRF0 code."
