bench/micro.ml: Analyze Bechamel Benchmark Hashtbl Instance List Measure Printf Staged Test Time Toolkit Wo_core Wo_litmus Wo_machines Wo_prog Wo_race Wo_report Wo_workload
