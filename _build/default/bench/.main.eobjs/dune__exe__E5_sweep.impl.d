bench/e5_sweep.ml: List Printf Wo_machines Wo_report Wo_workload
