bench/main.ml: Array E1_figure1 E2_figure2 E3_figure3 E4_spin E5_sweep E6_contract E7_ablation E8_delay_sets List Micro Sys
