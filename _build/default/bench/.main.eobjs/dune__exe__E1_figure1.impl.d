bench/e1_figure1.ml: Exp_common List Wo_litmus Wo_machines Wo_report
