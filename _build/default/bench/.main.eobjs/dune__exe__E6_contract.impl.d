bench/e6_contract.ml: Exp_common List Printf Wo_core Wo_litmus Wo_machines Wo_prog Wo_report
