bench/e8_delay_sets.ml: Array Exp_common Format List Printf Wo_litmus Wo_machines Wo_prog Wo_report
