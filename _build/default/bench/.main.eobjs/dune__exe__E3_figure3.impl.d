bench/e3_figure3.ml: Array Exp_common Format List Printf Wo_core Wo_litmus Wo_machines Wo_prog Wo_report Wo_sim
