bench/e4_spin.ml: Exp_common List Wo_machines Wo_report Wo_workload
