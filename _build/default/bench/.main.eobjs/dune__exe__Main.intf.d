bench/main.mli:
