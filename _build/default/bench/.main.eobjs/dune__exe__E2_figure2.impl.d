bench/e2_figure2.ml: Format List Printf Wo_core Wo_litmus Wo_report
