bench/exp_common.ml: Printf Wo_machines
