bench/e7_ablation.ml: Exp_common List Printf Wo_cache Wo_litmus Wo_machines Wo_prog Wo_report
