(* Bechamel micro-benchmarks — one Test.make per experiment family, so the
   harness doubles as a performance-regression suite for the library
   itself: interleaving enumeration (E1/E6), the DRF0 checker (E2), full
   machine simulations (E3/E4/E5/E7), the vector-clock race detector, and
   the Lemma-1 oracle (E6). *)

open Bechamel
open Toolkit

module M = Wo_machines.Machine

let figure1 = Wo_litmus.Litmus.figure1

let test_enumerate =
  Test.make ~name:"e1.enumerate-figure1"
    (Staged.stage @@ fun () ->
     Wo_prog.Enumerate.outcomes figure1.Wo_litmus.Litmus.program)

let fig2b = Wo_litmus.Figure2.execution_b

let test_drf0 =
  Test.make ~name:"e2.drf0-check-figure2b"
    (Staged.stage @@ fun () -> Wo_core.Drf0.races fig2b)

let fig3 = Wo_litmus.Litmus.figure3_scenario ()

let test_fig3_sim =
  Test.make ~name:"e3.simulate-figure3-wo-new"
    (Staged.stage @@ fun () ->
     M.run Wo_machines.Presets.wo_new ~seed:1 fig3.Wo_litmus.Litmus.program)

let barrier = Wo_workload.Workload.spin_barrier ~procs:4 ~rounds:2 ~work:4 ()

let test_barrier_sim =
  Test.make ~name:"e4.simulate-barrier-wo-new-drf1"
    (Staged.stage @@ fun () ->
     M.run Wo_machines.Presets.wo_new_drf1 ~seed:1
       barrier.Wo_workload.Workload.program)

let cs = Wo_workload.Workload.critical_section ~procs:4 ~sections:3 ~work:4 ()

let test_cs_sim =
  Test.make ~name:"e5.simulate-critical-section-sc-dir"
    (Staged.stage @@ fun () ->
     M.run Wo_machines.Presets.sc_dir ~seed:1 cs.Wo_workload.Workload.program)

let drf_program = Wo_litmus.Random_prog.lock_disciplined ~seed:3 ()
let drf_result = M.run Wo_machines.Presets.wo_new ~seed:3 drf_program

let test_lemma1 =
  Test.make ~name:"e6.lemma1-oracle"
    (Staged.stage @@ fun () ->
     M.check_lemma1
       ~init:(Wo_prog.Program.initial_value drf_program)
       drf_result)

let ideal_exec =
  Wo_prog.Interp.execution (Wo_prog.Interp.run_random ~seed:5 drf_program)

let test_detector =
  Test.make ~name:"e6.vector-clock-detector"
    (Staged.stage @@ fun () -> Wo_race.Detector.races_of_execution ideal_exec)

let test_ablation_sim =
  Test.make ~name:"e7.simulate-sync-chain-wo-new"
    (Staged.stage @@ fun () ->
     M.run Wo_machines.Presets.wo_new ~seed:1
       Wo_litmus.Litmus.sync_chain.Wo_litmus.Litmus.program)

let tests =
  Test.make_grouped ~name:"wo" ~fmt:"%s.%s"
    [
      test_enumerate;
      test_drf0;
      test_fig3_sim;
      test_barrier_sim;
      test_cs_sim;
      test_lemma1;
      test_detector;
      test_ablation_sim;
    ]

let run () =
  Wo_report.Table.heading "Micro-benchmarks (Bechamel; ns per run)";
  let ols =
    Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:[| Measure.run |]
  in
  let instances = Instance.[ monotonic_clock ] in
  let cfg =
    Benchmark.cfg ~limit:2000 ~quota:(Time.second 0.5) ~kde:None ()
  in
  let raw = Benchmark.all cfg instances tests in
  let results = Analyze.all ols Instance.monotonic_clock raw in
  let rows =
    Hashtbl.fold
      (fun name ols acc ->
        let ns =
          match Analyze.OLS.estimates ols with
          | Some (e :: _) -> Printf.sprintf "%.0f" e
          | _ -> "n/a"
        in
        [ name; ns ] :: acc)
      results []
    |> List.sort compare
  in
  Wo_report.Table.print
    ~align:Wo_report.Table.[ L; R ]
    ~headers:[ "benchmark"; "ns/run" ] rows
