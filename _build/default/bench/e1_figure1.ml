(* Experiment E1 — Figure 1.

   "For four configurations of shared memory systems (bus-based systems and
   systems with general interconnection networks, both with and without
   caches), as potential for parallelism is increased, sequential
   consistency imposes greater constraints on hardware."

   We run the Figure-1 program on each of the four weak configurations plus
   the sequentially consistent baselines.  The cached configurations use
   the warmed variant, matching the paper's precondition that "both
   processors initially have X and Y in their caches".  The impossible
   outcome under sequential consistency is both processes killed (both
   registers 0). *)

module M = Wo_machines.Machine

let runs = Exp_common.default_runs

let rows () =
  let cases =
    [
      (Wo_machines.Presets.sc_bus_nocache, Wo_litmus.Litmus.figure1);
      (Wo_machines.Presets.bus_nocache_wb, Wo_litmus.Litmus.figure1);
      (Wo_machines.Presets.net_nocache_rp3, Wo_litmus.Litmus.figure1);
      (Wo_machines.Presets.net_nocache_weak, Wo_litmus.Litmus.figure1);
      (Wo_machines.Presets.sc_dir, Wo_litmus.Litmus.figure1_warmed);
      (Wo_machines.Presets.bus_cache_wb, Wo_litmus.Litmus.figure1_warmed);
      (Wo_machines.Presets.net_cache_relaxed, Wo_litmus.Litmus.figure1_warmed);
    ]
  in
  List.map
    (fun ((machine : M.t), test) ->
      let report = Wo_litmus.Runner.run ~runs machine test in
      let killed =
        match
          List.assoc_opt "both-killed" report.Wo_litmus.Runner.interesting_counts
        with
        | Some n -> n
        | None -> 0
      in
      [
        machine.M.name;
        test.Wo_litmus.Litmus.name;
        Exp_common.pct killed runs;
        Exp_common.yes_no (killed > 0);
        Exp_common.yes_no (not machine.M.sequentially_consistent);
      ])
    cases

let run () =
  Wo_report.Table.heading
    "E1 / Figure 1 — sequential consistency violations per configuration";
  print_endline
    "The outcome 'both killed' (r0 = 0 on both processors) is impossible\n\
     under sequential consistency.  Paper's claim: every configuration with\n\
     the listed performance feature can produce it; the disciplined\n\
     baselines cannot.";
  print_newline ();
  Wo_report.Table.print
    ~align:Wo_report.Table.[ L; L; R; L; L ]
    ~headers:
      [ "machine"; "litmus"; "both-killed"; "SC violated"; "paper expects" ]
    (rows ())
