(* Experiment E4 — Section 6: the cost of serializing read-only
   synchronization.

   "One very important case where the example implementation is likely to
   be slower than one for Definition 1 occurs when software performs
   repeated testing of a synchronization variable (e.g., the Test from a
   Test-and-TestAndSet or spinning on a barrier count).  The example
   implementation serializes all these synchronization operations,
   treating them as writes. ... the unnecessary serialization can be
   avoided by improving on DRF0 to yield a new data-race-free model
   [DRF1]."

   Two spinning workloads: a barrier (read-only Test spinning on the
   count) and Test-and-TestAndSet locks.  wo-new should degrade relative
   to wo-old as processors increase; wo-new-drf1 should recover. *)

module M = Wo_machines.Machine

let machines =
  [
    Wo_machines.Presets.wo_old;
    Wo_machines.Presets.wo_new;
    Wo_machines.Presets.wo_new_drf1;
  ]

let runs = 30

let avg_cycles machine program =
  Exp_common.run_metric ~runs machine program (fun r -> r.M.cycles)

let barrier_rows () =
  List.map
    (fun procs ->
      let w = Wo_workload.Workload.spin_barrier ~procs ~rounds:3 ~work:8 () in
      string_of_int procs
      :: List.map
           (fun m -> string_of_int (avg_cycles m w.Wo_workload.Workload.program))
           machines)
    [ 2; 4; 8 ]

let ttas_rows () =
  List.map
    (fun procs ->
      let w =
        Wo_workload.Workload.critical_section ~procs ~sections:4 ~work:6
          ~use_ttas:true ()
      in
      string_of_int procs
      :: List.map
           (fun m -> string_of_int (avg_cycles m w.Wo_workload.Workload.program))
           machines)
    [ 2; 4; 8 ]

let headers = "procs" :: List.map (fun (m : M.t) -> m.M.name) machines

let run () =
  Wo_report.Table.heading
    "E4 / Section 6 — spinning cost: read-only synchronization serialized \
     vs not";
  Wo_report.Table.subheading
    "spin barrier, 3 rounds (cycles, avg over seeds; lower is better)";
  print_newline ();
  Wo_report.Table.print
    ~align:Wo_report.Table.[ L; R; R; R ]
    ~headers (barrier_rows ());
  Wo_report.Table.subheading
    "Test-and-TestAndSet critical sections, 4 per processor (cycles)";
  print_newline ();
  Wo_report.Table.print
    ~align:Wo_report.Table.[ L; R; R; R ]
    ~headers (ttas_rows ());
  print_endline
    "Expected shape: wo-new pays for treating Tests as writes (exclusive\n\
     ownership ping-pong); wo-old and wo-new-drf1 spin on shared copies\n\
     and scale much better.  The gap widens with processor count."
