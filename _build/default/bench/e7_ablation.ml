(* Experiment E7 — ablating the Section-5.1 conditions.

   The Section-5.3 implementation rests on (4) a processor not generating
   new accesses until its previous synchronization operations have
   committed, and (5) remote synchronization on a reserved line stalling
   until the counter reads zero.  Disabling either must let DRF0 programs
   observe non-sequentially-consistent results; the intact machine must
   not.  A high-jitter network widens the windows the mechanisms close. *)

module M = Wo_machines.Machine
module C = Wo_machines.Coherent

let jittery = C.Net { base = 2; jitter = 40 }

(* Asymmetric congestion widens the windows the mechanisms close; the
   intact machine must stay clean under it, being correct by
   construction rather than by timing.
   - For the condition-5 probe (figure3, 3 processors, directory node 3)
     the directory->P1 route is slow, so P1's invalidation for x lags
     behind its lock acquisition.
   - For the condition-4 probe (sync-chain, 2 processors, directory node
     2) the P0->directory route is slow, so P0's two GetX requests can
     arrive far apart and out of order relative to P1's reads. *)
let slow_routes_cond5 = [ ((3, 1), 8) ]
let slow_routes_cond4 = [ ((0, 2), 8) ]

let variant ~disable_reserve ~disable_sync_commit_wait ~slow_routes name =
  let base = Wo_machines.Presets.wo_new_config in
  let cache =
    {
      Wo_cache.Cache_ctrl.default_config with
      reserve_enabled = not disable_reserve;
    }
  in
  let policy =
    if disable_sync_commit_wait then
      { C.def2_policy with C.sync_wait = C.Sync_wait_none }
    else C.def2_policy
  in
  C.make ~name ~description:"E7 instance" ~sequentially_consistent:false
    ~weakly_ordered_drf0:false
    { base with C.cache; policy; fabric = jittery; slow_routes }

let machines () =
  [
    ( (fun slow_routes ->
        variant ~disable_reserve:false ~disable_sync_commit_wait:false
          ~slow_routes "wo-new (intact)"),
      "none" );
    ( (fun slow_routes ->
        variant ~disable_reserve:true ~disable_sync_commit_wait:false
          ~slow_routes "wo-new minus reserve bit (cond. 5)"),
      "figure3 violations" );
    ( (fun slow_routes ->
        variant ~disable_reserve:false ~disable_sync_commit_wait:true
          ~slow_routes "wo-new minus sync-commit wait (cond. 4)"),
      "none: masked by reserve" );
    ( (fun slow_routes ->
        variant ~disable_reserve:true ~disable_sync_commit_wait:true
          ~slow_routes "wo-new minus both"),
      "violations in both" );
  ]

let runs = 300

(* Condition 5 probe: the Figure-3 scenario; without the reserve bit the
   consumer's TestAndSet succeeds while the producer's W(x) invalidations
   are still in flight, and its own stale shared copy of x yields 0. *)
let stale_reads make_machine =
  let machine = make_machine slow_routes_cond5 in
  let t = Wo_litmus.Litmus.figure3_scenario ~work_before_unset:2 () in
  Exp_common.count_over ~runs ~base_seed:1 (fun ~seed ->
      let r = M.run machine ~seed t.Wo_litmus.Litmus.program in
      Wo_prog.Outcome.register r.M.outcome 1 Wo_prog.Names.r0 <> Some 1)

(* Condition 4 probe: two synchronization writes observed in the opposite
   order (sync-chain litmus). *)
let chain_violations make_machine =
  let machine = make_machine slow_routes_cond4 in
  let t = Wo_litmus.Litmus.sync_chain_scenario ~observer_delay:150 () in
  let pred = List.assoc "u-before-s" t.Wo_litmus.Litmus.interesting in
  Exp_common.count_over ~runs ~base_seed:1 (fun ~seed ->
      let r = M.run machine ~seed t.Wo_litmus.Litmus.program in
      pred r.M.outcome)

let run () =
  Wo_report.Table.heading
    "E7 / ablation — removing Section-5.1 mechanisms breaks the contract";
  Printf.printf
    "High-jitter network (base 2, jitter 40); %d seeds per cell.  Both\n\
     probe programs obey DRF0, so any non-SC outcome is a contract\n\
     violation by the hardware.\n\n"
    runs;
  let rows =
    List.map
      (fun (make_machine, expected) ->
        [
          (make_machine []).M.name;
          Exp_common.pct (stale_reads make_machine) runs;
          Exp_common.pct (chain_violations make_machine) runs;
          expected;
        ])
      (machines ())
  in
  Wo_report.Table.print
    ~align:Wo_report.Table.[ L; R; R; L ]
    ~headers:
      [
        "machine";
        "figure3 stale reads";
        "sync-chain u-before-s";
        "expected";
      ]
    rows;
  print_endline
    "Finding: removing only the sync-commit wait (condition 4) is masked\n\
     by the per-synchronization reserve accounting: the prematurely\n\
     committed synchronization reserves its line, so no other processor\n\
     can observe it until everything older is globally performed.  The\n\
     condition becomes load-bearing once the reserve bit is also gone."
