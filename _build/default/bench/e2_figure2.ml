(* Experiment E2 — Figure 2: an example and a counter-example of DRF0.

   The executions live in Wo_litmus.Figure2 (shared with the test suite);
   here we render them and run the exhaustive DRF0 checker, reproducing
   the figure's caption mechanically. *)

module X = Wo_core.Execution

let check name exn =
  Wo_report.Table.subheading name;
  print_newline ();
  Format.printf "%a@." X.pp exn;
  let report = Wo_core.Drf0.check exn in
  if report.Wo_core.Drf0.races = [] then
    print_endline
      "verdict: obeys DRF0 (all conflicting accesses ordered by happens-before)"
  else begin
    Printf.printf "verdict: violates DRF0 — %d race(s):\n"
      (List.length report.Wo_core.Drf0.races);
    List.iter
      (fun race -> Format.printf "  %a@." Wo_core.Drf0.pp_race race)
      report.Wo_core.Drf0.races
  end

let run () =
  Wo_report.Table.heading
    "E2 / Figure 2 — an example and counter-example of DRF0";
  check "Figure 2(a): execution that obeys DRF0" Wo_litmus.Figure2.execution_a;
  check "Figure 2(b): execution that violates DRF0" Wo_litmus.Figure2.execution_b
