(* Experiment E3 — Figure 3: analysis of the new implementation.

   The scenario: P0 writes x (slow to perform globally because a remote
   processor holds a shared copy), does other work, Unsets s, then does
   more work; P1 TestAndSets s and then reads x.

   Paper's claim:
   - Definition 1 stalls P0 at the Unset until the write of x is globally
     performed, and stalls P1's TestAndSet until then too;
   - the Definition-2 implementation "need never stall P0": P0 commits the
     Unset and continues its other work, while P1's TestAndSet still stalls
     (on the reserve bit) until the write of x is globally performed.
   "Thus, P0 but not P1 gains an advantage from the example
   implementation." *)

module M = Wo_machines.Machine
module C = Wo_machines.Coherent
module E = Wo_core.Event

let slow_factor = 30

(* Rebuild the cached machines with P2's network slowed so that
   invalidating P2's shared copy of x takes a long time. *)
let with_slow_p2 (config : C.config) name =
  C.make ~name ~description:"Figure-3 instance" ~sequentially_consistent:false
    ~weakly_ordered_drf0:true
    { config with C.slow_procs = [ (2, slow_factor) ] }

let machines () =
  [
    (with_slow_p2 Wo_machines.Presets.wo_old_config "wo-old", `Waits_gp);
    (with_slow_p2 Wo_machines.Presets.wo_new_config "wo-new", `Waits_commit);
    ( with_slow_p2 Wo_machines.Presets.wo_new_drf1_config "wo-new-drf1",
      `Waits_commit );
  ]

let scenario = Wo_litmus.Litmus.figure3_scenario ()

let runs = 100

let find_entry trace pred =
  List.find_opt pred (Wo_sim.Trace.entries trace)

let is_unset (e : Wo_sim.Trace.entry) =
  let ev = e.Wo_sim.Trace.event in
  ev.E.proc = 0 && ev.E.kind = E.Sync_write && ev.E.loc = Wo_prog.Names.s

let is_winning_tas (e : Wo_sim.Trace.entry) =
  let ev = e.Wo_sim.Trace.event in
  ev.E.proc = 1 && ev.E.kind = E.Sync_rmw && ev.E.loc = Wo_prog.Names.s
  && ev.E.read_value = Some 0

let metric_rows () =
  List.map
    (fun ((machine : M.t), waits) ->
      let p0_finish = ref 0
      and p1_finish = ref 0
      and unset_stall = ref 0
      and tas_wait = ref 0
      and stale = ref 0 in
      for seed = 1 to runs do
        let r = M.run machine ~seed scenario.Wo_litmus.Litmus.program in
        p0_finish := !p0_finish + r.M.proc_finish.(0);
        p1_finish := !p1_finish + r.M.proc_finish.(1);
        (match find_entry r.M.trace is_unset with
        | Some e ->
          (* What P0 actually waits for before continuing; Definition-1
             hardware additionally waits BEFORE issuing the Unset until all
             previous accesses are globally performed (the gate), which in
             this scenario is charged entirely to the Unset. *)
          let until =
            match waits with
            | `Waits_gp -> e.Wo_sim.Trace.performed
            | `Waits_commit -> e.Wo_sim.Trace.committed
          in
          unset_stall :=
            !unset_stall
            + (until - e.Wo_sim.Trace.issued)
            + M.stall r ~proc:0 "gate"
        | None -> ());
        (match find_entry r.M.trace is_winning_tas with
        | Some e ->
          tas_wait :=
            !tas_wait + (e.Wo_sim.Trace.committed - e.Wo_sim.Trace.issued)
        | None -> ());
        if Wo_prog.Outcome.register r.M.outcome 1 Wo_prog.Names.r0 <> Some 1
        then incr stale
      done;
      [
        machine.M.name;
        string_of_int (!unset_stall / runs);
        string_of_int (!p0_finish / runs);
        string_of_int (!tas_wait / runs);
        string_of_int (!p1_finish / runs);
        Exp_common.pct !stale runs;
      ])
    (machines ())

(* A per-operation timeline of one run, restricted to the operations the
   figure draws. *)
let timeline ((machine : M.t), _) =
  Wo_report.Table.subheading
    (Printf.sprintf "one run on %s (issue/commit/globally-performed)"
       machine.M.name);
  print_newline ();
  let r = M.run machine ~seed:7 scenario.Wo_litmus.Litmus.program in
  let entries = Wo_sim.Trace.entries r.M.trace in
  let tas_entries =
    List.filter
      (fun (e : Wo_sim.Trace.entry) ->
        let ev = e.Wo_sim.Trace.event in
        ev.E.proc = 1 && ev.E.kind = E.Sync_rmw && ev.E.loc = Wo_prog.Names.s)
      entries
  in
  let spin_count = List.length tas_entries in
  let keep (e : Wo_sim.Trace.entry) =
    let ev = e.Wo_sim.Trace.event in
    match (ev.E.kind, ev.E.loc) with
    | E.Data_write, 0 -> ev.E.proc = 0 (* W(x) *)
    | E.Data_read, 0 -> ev.E.proc = 1 (* final R(x) *)
    | E.Sync_write, 6 -> true (* Unset(s) *)
    | E.Sync_rmw, 6 -> ev.E.read_value = Some 0 (* the winning TestAndSet *)
    | _ -> false
  in
  let rows =
    entries
    |> List.filter keep
    |> List.map (fun (e : Wo_sim.Trace.entry) ->
           [
             Format.asprintf "%a" E.pp e.Wo_sim.Trace.event;
             string_of_int e.Wo_sim.Trace.issued;
             string_of_int e.Wo_sim.Trace.committed;
             string_of_int e.Wo_sim.Trace.performed;
           ])
  in
  Wo_report.Table.print
    ~align:Wo_report.Table.[ L; R; R; R ]
    ~headers:[ "operation"; "issued"; "committed"; "glob.performed" ]
    rows;
  Printf.printf
    "P1 spun through %d TestAndSets; P0 finished at t=%d, P1 at t=%d\n"
    spin_count r.M.proc_finish.(0) r.M.proc_finish.(1)

let run () =
  Wo_report.Table.heading "E3 / Figure 3 — who stalls, and for how long";
  Printf.printf
    "Scenario: P0: W(x); work; Unset(s); work   P1: TestAndSet(s); R(x)\n\
     P2 holds x shared with a %dx slower network, so W(x) takes long to\n\
     perform globally.  Averages over %d seeds.  'Unset stall' is the time\n\
     P0 waits at the Unset before continuing (until globally performed on\n\
     wo-old, until commit on wo-new).\n\n"
    slow_factor runs;
  Wo_report.Table.print
    ~align:Wo_report.Table.[ L; R; R; R; R; R ]
    ~headers:
      [
        "machine";
        "Unset stall (P0)";
        "P0 finish";
        "TAS wait (P1)";
        "P1 finish";
        "stale reads";
      ]
    (metric_rows ());
  print_endline
    "Expected shape: wo-new's Unset stall collapses (P0 need never stall);\n\
     P1's winning TestAndSet waits for W(x) to perform globally on every\n\
     machine (Def. 1 serializes at the Unset, Def. 2 at the reserve bit);\n\
     stale reads are always 0.";
  List.iter timeline (machines ())
