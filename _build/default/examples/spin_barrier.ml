(* The Section-6 story, end to end: spinning on a barrier count.

   The Section-5.3 implementation must treat every synchronization
   operation as a write, so each spin iteration acquires the line
   exclusively and the spinners serialize.  Definition-1 hardware and the
   DRF1 refinement spin on shared copies instead.  This example runs a
   sense-visible experiment: one barrier episode with a deliberately slow
   last arriver, counting protocol traffic and time.

   Run with:  dune exec examples/spin_barrier.exe *)

module I = Wo_prog.Instr
module M = Wo_machines.Machine

let procs = 4
let straggler_work = 120

(* Everyone arrives at the barrier immediately except the last processor,
   which works first — so the others spin for a long time. *)
let program =
  let counter = 10 in
  let thread p =
    (if p = procs - 1 then Wo_prog.Snippets.local_work straggler_work else [])
    @ Wo_prog.Snippets.barrier_wait ~counter ~participants:procs ~scratch:4
        ~spin:5
  in
  Wo_prog.Program.make ~name:"straggler-barrier" ~observable:[]
    (List.init procs thread)

let machines =
  Wo_machines.Presets.[ wo_old; wo_new; wo_new_drf1 ]

let stat stats name =
  match List.assoc_opt name stats with Some v -> v | None -> 0

let () =
  Wo_report.Table.heading
    "Spinning on a barrier count (Section 6): serialized vs shared spinning";
  Printf.printf
    "%d processors; the last arriver works %d cycles first, so the others\n\
     spin on the barrier count.  Averages over 20 seeds.\n\n"
    procs straggler_work;
  let rows =
    List.map
      (fun (machine : M.t) ->
        let cycles = ref 0 and msgs = ref 0 and misses = ref 0 in
        let runs = 20 in
        for seed = 1 to runs do
          let r = M.run machine ~seed program in
          cycles := !cycles + r.M.cycles;
          msgs := !msgs + stat r.M.stats "network.messages";
          misses := !misses + stat r.M.stats "cache.misses"
        done;
        [
          machine.M.name;
          string_of_int (!cycles / runs);
          string_of_int (!msgs / runs);
          string_of_int (!misses / runs);
        ])
      machines
  in
  Wo_report.Table.print
    ~align:Wo_report.Table.[ L; R; R; R ]
    ~headers:[ "machine"; "cycles"; "network messages"; "cache misses" ]
    rows;
  print_endline
    "wo-new treats each spin Test as a write: the barrier line ping-pongs\n\
     between spinners (watch the message and miss counts).  wo-old and\n\
     wo-new-drf1 let spinners hit on shared copies: traffic collapses to\n\
     one invalidation round per arrival.  This is exactly why Section 6\n\
     proposes the refined data-race-free model."
