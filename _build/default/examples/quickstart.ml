(* Quickstart: build a small parallel program, enumerate its sequentially
   consistent outcomes on the idealized architecture, check whether it
   obeys DRF0, and run it on simulated hardware — both a machine that
   breaks it and machines bound by the Definition-2 contract.

   Run with:  dune exec examples/quickstart.exe *)

module I = Wo_prog.Instr
module N = Wo_prog.Names
module M = Wo_machines.Machine

(* Message passing: P0 publishes data then sets a flag; P1 waits for the
   flag and reads the data.  First the racy version (plain accesses, no
   waiting), then the DRF0 version (the flag is a synchronization location
   and the consumer spins on it). *)

let racy =
  Wo_prog.Program.make ~name:"mp-racy"
    [
      [ I.Write (N.x, I.Const 42); I.Write (N.y, I.Const 1) ];
      [ I.Read (N.r1, N.y); I.Read (N.r0, N.x) ];
    ]

(* The same bug as it appears in real code: the consumer POLLS the flag
   with plain data reads.  Both processors first bring x and y into their
   caches (resident shared copies are the precondition for the cached
   Figure-1 configurations to misbehave). *)
let racy_polling =
  let warm = [ I.Read (N.r4, N.x); I.Read (N.r5, N.y) ] in
  Wo_prog.Program.make ~name:"mp-racy-polling" ~observable:[ (1, N.r0) ]
    [
      warm @ Wo_prog.Snippets.local_work 8
      @ [ I.Write (N.x, I.Const 42); I.Write (N.y, I.Const 1) ];
      warm
      @ [
          I.Assign (N.r1, I.Const 0);
          I.While (I.Eq (I.Reg N.r1, I.Const 0), [ I.Read (N.r1, N.y) ]);
          I.Read (N.r0, N.x);
        ];
    ]

let drf0 =
  Wo_prog.Program.make ~name:"mp-drf0" ~observable:[ (1, N.r0) ]
    [
      [ I.Write (N.x, I.Const 42); I.Sync_write (N.s, I.Const 1) ];
      [
        I.Assign (N.r1, I.Const 0);
        I.While (I.Eq (I.Reg N.r1, I.Const 0), [ I.Sync_read (N.r1, N.s) ]);
        I.Read (N.r0, N.x);
      ];
    ]

let show_program program = Format.printf "%a@.@." Wo_prog.Program.pp program

let show_sc_outcomes program =
  let outcomes = Wo_prog.Enumerate.outcomes program in
  Printf.printf "sequentially consistent outcomes (%d):\n"
    (List.length outcomes);
  List.iter (fun o -> Format.printf "  %a@." Wo_prog.Outcome.pp o) outcomes;
  outcomes

let run_racy_on machine =
  (* Under SC, once the poll loop has seen the flag the data is there: the
     consumer reading 0 is an outcome no sequentially consistent execution
     can produce. *)
  let stale = ref 0 in
  for seed = 1 to 300 do
    let r = M.run machine ~seed racy_polling in
    if Wo_prog.Outcome.register r.M.outcome 1 N.r0 = Some 0 then incr stale
  done;
  Printf.printf "%-18s 300 runs, %d flag-without-data outcomes\n"
    machine.M.name !stale

let run_drf0_on machine =
  (* The spin loop makes the SC outcome set non-enumerable, so we check
     the only possible SC outcome (r0 = 42) and apply the Lemma-1 oracle
     (Appendix A) to every trace. *)
  let stale = ref 0 and lemma1 = ref 0 in
  for seed = 1 to 200 do
    let r = M.run machine ~seed drf0 in
    if Wo_prog.Outcome.register r.M.outcome 1 N.r0 <> Some 42 then incr stale;
    match M.check_lemma1 r with Ok () -> () | Error _ -> incr lemma1
  done;
  Printf.printf "%-16s 200 runs, %d stale reads, %d Lemma-1 failures\n"
    machine.M.name !stale !lemma1

let () =
  Wo_report.Table.heading "Quickstart: message passing, racy vs DRF0";
  print_endline "--- the racy version ---\n";
  show_program racy;
  let sc_racy = show_sc_outcomes racy in
  (match Wo_prog.Enumerate.check_drf0 racy with
  | Ok () -> print_endline "DRF0: obeyed (unexpected!)\n"
  | Error report ->
    Printf.printf "DRF0: violated — %d race(s) in one idealized execution:\n"
      (List.length report.Wo_core.Drf0.races);
    List.iter
      (fun r -> Format.printf "  %a@." Wo_core.Drf0.pp_race r)
      report.Wo_core.Drf0.races;
    print_newline ());
  print_endline
    "On weak hardware the consumer can see the flag without the data\n\
     (an outcome outside the SC set):\n";
  ignore sc_racy;
  (* a heavy-tailed instance of the Figure-1 network-with-caches
     configuration (the machine zoo's configs are first-class: rebuild
     with overrides) — occasional congestion spikes let an invalidation
     be overtaken by a whole poll-and-read chain *)
  let spiky_net_cache =
    Wo_machines.Coherent.make ~name:"net-cache-spiky"
      ~description:"Figure-1 configuration 4 with a heavy-tailed network"
      ~sequentially_consistent:false ~weakly_ordered_drf0:false
      {
        Wo_machines.Presets.net_cache_config with
        Wo_machines.Coherent.fabric =
          Wo_machines.Coherent.Net_spiky
            { base = 3; jitter = 6; spike_probability = 0.1; spike_factor = 20 };
      }
  in
  List.iter run_racy_on
    [ Wo_machines.Presets.sc_dir; spiky_net_cache ];
  print_newline ();
  print_endline "--- the DRF0 version ---\n";
  show_program drf0;
  (* verify race-freedom dynamically (the spin precludes enumeration) *)
  let races =
    Wo_race.Detector.sample_program ~schedules:20
      ~run:(fun ~seed ->
        Wo_prog.Interp.execution (Wo_prog.Interp.run_random ~seed drf0))
      ()
  in
  Printf.printf "dynamic race detection over 20 schedules: %d races\n\n"
    (List.length races);
  print_endline
    "Every machine that is weakly ordered w.r.t. DRF0 must appear\n\
     sequentially consistent on it (Definition 2): the consumer always\n\
     reads 42, and every trace satisfies the Lemma-1 condition:\n";
  List.iter run_drf0_on
    [
      Wo_machines.Presets.wo_old;
      Wo_machines.Presets.wo_new;
      Wo_machines.Presets.wo_new_drf1;
      Wo_machines.Presets.rp3_fence;
      Wo_machines.Presets.bus_nocache_wb;
    ]
