examples/spin_barrier.mli:
