examples/dekker.mli:
