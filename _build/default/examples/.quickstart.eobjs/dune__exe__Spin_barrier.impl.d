examples/spin_barrier.ml: List Printf Wo_machines Wo_prog Wo_report
