examples/quickstart.ml: Format List Printf Wo_core Wo_machines Wo_prog Wo_race Wo_report
