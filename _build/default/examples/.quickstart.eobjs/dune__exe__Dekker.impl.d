examples/dekker.ml: List Printf Wo_litmus Wo_machines Wo_prog Wo_report Wo_workload
