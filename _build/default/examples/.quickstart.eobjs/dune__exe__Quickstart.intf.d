examples/quickstart.mli:
