(* Hunting a data race in a "mostly correct" program.

   A work-queue with a subtle bug: the producer publishes the item count
   with a plain data write instead of a synchronization operation.  The
   program usually behaves; under the right timing a consumer reads stale
   data.  We find the bug three ways, mirroring the paper's toolbox:

   1. exhaustively, with the Definition-3 checker over all idealized
      executions (for the scaled-down instance);
   2. dynamically, with the Netzer-Miller-style vector-clock detector over
      sampled schedules (works at any scale);
   3. empirically, by running it on weakly ordered hardware until an
      outcome outside the contract appears — and then fixing the program
      and watching all three go quiet.

   Run with:  dune exec examples/race_hunt.exe *)

module I = Wo_prog.Instr
module M = Wo_machines.Machine

let item = 0
let count = 1 (* the buggy flag: a plain data location *)
let lock = 2

(* Producer: put an item, bump the count (BUG: data write).  Consumer:
   poll the count with a data read, then take the item. *)
let work_queue ~fixed =
  let publish v =
    if fixed then I.Sync_write (count, I.Const v)
    else I.Write (count, I.Const v)
  in
  let poll r =
    if fixed then I.Sync_read (r, count) else I.Read (r, count)
  in
  Wo_prog.Program.make
    ~name:(if fixed then "work-queue-fixed" else "work-queue-buggy")
    ~observable:[ (1, 0) ]
    [
      [ I.Write (item, I.Const 99); publish 1 ];
      [
        I.Assign (5, I.Const 0);
        I.While (I.Eq (I.Reg 5, I.Const 0), [ poll 5 ]);
        I.Read (0, item);
      ];
    ]

let hunt name program =
  Wo_report.Table.subheading name;
  print_newline ();
  Format.printf "%a@.@." Wo_prog.Program.pp program;
  (* 1. dynamic detection over sampled schedules *)
  let races =
    Wo_race.Detector.sample_program ~schedules:25
      ~run:(fun ~seed ->
        Wo_prog.Interp.execution (Wo_prog.Interp.run_random ~seed program))
      ()
  in
  Printf.printf "1. vector-clock detector, 25 schedules: %d race report(s)\n"
    (List.length races);
  (match races with
  | r :: _ -> Format.printf "   first: %a@." Wo_core.Drf0.pp_race r
  | [] -> ());
  (* 2. exhaustive checking of one execution (the spin precludes full
     enumeration; check the race on a representative execution) *)
  let exn =
    Wo_prog.Interp.execution (Wo_prog.Interp.run_random ~seed:3 program)
  in
  let report = Wo_core.Drf0.check exn in
  Printf.printf "2. exhaustive checker on one idealized execution: %d race(s)\n"
    (List.length report.Wo_core.Drf0.races);
  (* 3. empirical: run on weakly ordered hardware with a heavy-tailed
     network (occasional congestion spikes — the timing that makes latent
     races bite in production) *)
  let machine =
    Wo_machines.Uncached.make ~name:"rp3-fence-spiky"
      ~description:"rp3-fence over a heavy-tailed network"
      ~sequentially_consistent:false ~weakly_ordered_drf0:true
      {
        Wo_machines.Uncached.fabric =
          Wo_machines.Coherent.Net_spiky
            { base = 4; jitter = 6; spike_probability = 0.1; spike_factor = 20 };
        write_buffer = None;
        wait_write_ack = false;
        flush_buffer_on_sync = true;
        modules = 4;
        local_cost = 1;
      }
  in
  let stale = ref 0 in
  for seed = 1 to 400 do
    let r = M.run machine ~seed program in
    if Wo_prog.Outcome.register r.M.outcome 1 0 <> Some 99 then incr stale
  done;
  Printf.printf
    "3. 400 runs on rp3-fence over a spiky network: %d stale item read(s)\n\n"
    !stale

let () =
  Wo_report.Table.heading "Race hunt: a buggy work queue, then the fix";
  ignore lock;
  hunt "the buggy version (count published with a data write)"
    (work_queue ~fixed:false);
  hunt "the fixed version (count is a synchronization location)"
    (work_queue ~fixed:true);
  print_endline
    "The contract view (Definition 2) explains the symptom: the buggy\n\
     program is outside DRF0, so the hardware owes it nothing; the fixed\n\
     program is inside, so every weakly ordered machine must appear\n\
     sequentially consistent to it."
