(* Dekker-style mutual exclusion on weak hardware.

   The Figure-1 pattern is the entry protocol of Dekker's algorithm: each
   processor raises its own flag, then checks the other's.  Under
   sequential consistency at most one can see the other's flag down; on
   weak hardware both can — mutual exclusion silently breaks.

   This example shows the break on every Figure-1 configuration, then the
   two repairs the paper's framework offers:
   - make the flag accesses synchronization operations (dekker-sync: the
     program becomes DRF0, so weakly ordered machines must get it right);
   - or give up on flags and use the hardware synchronization primitive
     directly (a TestAndSet lock).

   Run with:  dune exec examples/dekker.exe *)

module I = Wo_prog.Instr
module N = Wo_prog.Names
module M = Wo_machines.Machine
module L = Wo_litmus.Litmus

let runs = 300

let tally machine (test : L.t) pred =
  let hits = ref 0 in
  for seed = 1 to runs do
    let r = M.run machine ~seed test.L.program in
    if pred r.M.outcome then incr hits
  done;
  !hits

let both_in_critical_section = L.both_killed
(* both read the other's flag as 0 => both enter *)

let row test (machine : M.t) =
  [
    machine.M.name;
    Printf.sprintf "%d/%d" (tally machine test both_in_critical_section) runs;
  ]

let machines =
  Wo_machines.Presets.
    [
      sc_bus_nocache;
      bus_nocache_wb;
      net_nocache_weak;
      sc_dir;
      bus_cache_wb;
      net_cache_relaxed;
      wo_old;
      wo_new;
    ]

let cached (m : M.t) =
  List.mem m.M.name [ "sc-dir"; "bus-cache"; "net-cache"; "wo-old"; "wo-new" ]

let () =
  Wo_report.Table.heading "Dekker's entry protocol on weak hardware";
  print_endline
    "Both processors entering the critical section (both flags observed\n\
     down) is impossible under sequential consistency.\n";
  Wo_report.Table.subheading "plain data flags (racy program)";
  print_newline ();
  Wo_report.Table.print
    ~align:Wo_report.Table.[ L; R ]
    ~headers:[ "machine"; "mutual exclusion broken" ]
    (List.map
       (fun m -> row (if cached m then L.figure1_warmed else L.figure1) m)
       machines);
  Wo_report.Table.subheading
    "flags as synchronization operations (dekker-sync, DRF0)";
  print_newline ();
  Wo_report.Table.print
    ~align:Wo_report.Table.[ L; R ]
    ~headers:[ "machine"; "mutual exclusion broken" ]
    (List.map (fun m -> row L.dekker_sync m)
       (List.filter
          (fun (m : M.t) ->
            m.M.weakly_ordered_drf0 || m.M.sequentially_consistent)
          machines));
  Wo_report.Table.subheading "a TestAndSet lock (the primitive, directly)";
  print_newline ();
  (* two processors take a TAS lock and increment a counter *)
  let w = Wo_workload.Workload.critical_section ~procs:2 ~sections:3 ~work:4 () in
  let rows =
    List.map
      (fun (m : M.t) ->
        let bad = ref 0 in
        for seed = 1 to 50 do
          let r = M.run m ~seed w.Wo_workload.Workload.program in
          match w.Wo_workload.Workload.validate r.M.outcome with
          | Ok () -> ()
          | Error _ -> incr bad
        done;
        [ m.M.name; Printf.sprintf "%d/50" !bad ])
      (List.filter
         (fun (m : M.t) ->
           m.M.weakly_ordered_drf0 || m.M.sequentially_consistent)
         machines)
  in
  Wo_report.Table.print
    ~align:Wo_report.Table.[ L; R ]
    ~headers:[ "machine"; "lost increments" ]
    rows;
  print_endline
    "The racy flags break on every weak configuration; once the program\n\
     obeys DRF0 (sync flags or a real lock), every machine on the\n\
     weakly-ordered side of the contract delivers mutual exclusion."
