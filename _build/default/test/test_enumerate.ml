(* Tests for the interleaving enumerator — the "all executions on the
   idealized architecture" quantifier of Definition 3. *)

module I = Wo_prog.Instr
module P = Wo_prog.Program
module En = Wo_prog.Enumerate
module O = Wo_prog.Outcome
module N = Wo_prog.Names

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let sb = Wo_litmus.Litmus.figure1.Wo_litmus.Litmus.program

let test_store_buffering_outcomes () =
  let outs = En.outcomes sb in
  check_int "exactly 3 SC outcomes" 3 (List.length outs);
  let both_zero =
    List.exists
      (fun o -> O.register o 0 N.r0 = Some 0 && O.register o 1 N.r0 = Some 0)
      outs
  in
  check "both-zero excluded" false both_zero

let test_message_passing_outcomes () =
  let mp = Wo_litmus.Litmus.message_passing.Wo_litmus.Litmus.program in
  let outs = En.outcomes mp in
  (* flag/data read combinations under SC: (0,0) (0,42) (1,42) *)
  check_int "three outcomes" 3 (List.length outs);
  check "flag-without-data excluded" false
    (List.exists
       (fun o -> O.register o 1 N.r1 = Some 1 && O.register o 1 N.r0 = Some 0)
       outs)

let test_dekker_sync_outcomes () =
  let outs =
    En.outcomes Wo_litmus.Litmus.dekker_sync.Wo_litmus.Litmus.program
  in
  check "both-killed excluded" false
    (List.exists Wo_litmus.Litmus.both_killed outs)

let test_single_thread_single_outcome () =
  let p = P.make [ [ I.Write (0, I.Const 1); I.Read (0, 0) ] ] in
  check_int "deterministic" 1 (List.length (En.outcomes p))

let test_execution_count () =
  (* Two independent single-op threads interleave in exactly 2 ways. *)
  let p = P.make [ [ I.Write (0, I.Const 1) ]; [ I.Write (1, I.Const 1) ] ] in
  check_int "2 interleavings" 2
    (List.length (List.of_seq (En.executions p)))

let test_interleaving_count_is_binomial () =
  (* Two threads of 3 independent ops each: C(6,3) = 20 interleavings. *)
  let ops loc = List.init 3 (fun i -> I.Write (loc, I.Const i)) in
  let p = P.make [ ops 0; ops 1 ] in
  check_int "C(6,3)" 20 (List.length (List.of_seq (En.executions p)))

let test_limits_raise () =
  let p =
    P.make
      [
        List.init 8 (fun i -> I.Write (0, I.Const i));
        List.init 8 (fun i -> I.Write (1, I.Const i));
      ]
  in
  check "max_executions raises" true
    (try
       ignore (En.outcomes ~max_executions:10 p);
       false
     with En.Limit_exceeded -> true);
  check "max_events raises" true
    (try
       ignore (En.outcomes ~max_events:4 p);
       false
     with En.Limit_exceeded -> true)

let test_outcomes_with_stats_truncates () =
  let p =
    P.make
      [
        List.init 6 (fun i -> I.Write (0, I.Const i));
        List.init 6 (fun i -> I.Write (1, I.Const i));
      ]
  in
  let _outs, stats = En.outcomes_with_stats ~max_executions:5 p in
  check "truncated flag" true stats.En.truncated;
  check "counted" true (stats.En.executions >= 5);
  let _outs, stats = En.outcomes_with_stats p in
  check "complete run not truncated" false stats.En.truncated

let test_check_drf0 () =
  check "figure1 racy" true (En.check_drf0 sb <> Ok ());
  check "dekker-sync race-free" true
    (En.check_drf0 Wo_litmus.Litmus.dekker_sync.Wo_litmus.Litmus.program = Ok ());
  check "atomicity race-free" true
    (En.check_drf0 Wo_litmus.Litmus.atomicity.Wo_litmus.Litmus.program = Ok ());
  check "sync-chain race-free" true
    (En.check_drf0 Wo_litmus.Litmus.sync_chain.Wo_litmus.Litmus.program = Ok ())

(* Properties tying the enumerator to the reference interpreter. *)

let prop_random_run_in_enumerated_set =
  QCheck.Test.make
    ~name:"every randomly scheduled run's outcome is enumerated" ~count:50
    QCheck.(pair small_int small_int)
    (fun (pseed, sseed) ->
      let program =
        Wo_litmus.Random_prog.racy ~seed:pseed ~procs:2 ~ops_per_proc:3
          ~locs:2 ()
      in
      let observed =
        Wo_prog.Interp.outcome (Wo_prog.Interp.run_random ~seed:sseed program)
      in
      List.exists
        (fun o -> O.compare o observed = 0)
        (En.outcomes program))

let prop_round_robin_in_enumerated_set =
  QCheck.Test.make ~name:"the round-robin outcome is enumerated" ~count:50
    QCheck.small_int (fun pseed ->
      let program =
        Wo_litmus.Random_prog.racy ~seed:pseed ~procs:3 ~ops_per_proc:2
          ~locs:2 ()
      in
      let observed = Wo_prog.Interp.outcome (Wo_prog.Interp.run_round_robin program) in
      List.exists (fun o -> O.compare o observed = 0) (En.outcomes program))

let prop_all_executions_are_sc =
  QCheck.Test.make ~name:"every enumerated execution passes the SC witness"
    ~count:25 QCheck.small_int (fun pseed ->
      let program =
        Wo_litmus.Random_prog.racy ~seed:pseed ~procs:2 ~ops_per_proc:3
          ~locs:2 ()
      in
      Seq.for_all Wo_core.Sc.is_sequentially_consistent
        (En.executions program))

let tests =
  [
    Alcotest.test_case "store buffering" `Quick test_store_buffering_outcomes;
    Alcotest.test_case "message passing" `Quick test_message_passing_outcomes;
    Alcotest.test_case "dekker-sync" `Quick test_dekker_sync_outcomes;
    Alcotest.test_case "single thread" `Quick test_single_thread_single_outcome;
    Alcotest.test_case "execution count" `Quick test_execution_count;
    Alcotest.test_case "binomial interleavings" `Quick
      test_interleaving_count_is_binomial;
    Alcotest.test_case "limits raise" `Quick test_limits_raise;
    Alcotest.test_case "stats truncate" `Quick test_outcomes_with_stats_truncates;
    Alcotest.test_case "check_drf0" `Quick test_check_drf0;
    QCheck_alcotest.to_alcotest prop_random_run_in_enumerated_set;
    QCheck_alcotest.to_alcotest prop_round_robin_in_enumerated_set;
    QCheck_alcotest.to_alcotest prop_all_executions_are_sc;
  ]
