(* Tests for the Shasha-Snir delay-set analysis and Fence enforcement. *)

module D = Wo_prog.Delay_set
module I = Wo_prog.Instr
module P = Wo_prog.Program
module L = Wo_litmus.Litmus
module M = Wo_machines.Machine

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let delay_pairs program =
  List.map
    (fun (d : D.delay) ->
      (d.D.dproc, d.D.before.D.position, d.D.after.D.position))
    (D.analyse program)

let test_store_buffering_delays () =
  Alcotest.(check (list (triple int int int)))
    "both W->R pairs delayed"
    [ (0, 0, 1); (1, 0, 1) ]
    (delay_pairs L.figure1.L.program)

let test_message_passing_delays () =
  Alcotest.(check (list (triple int int int)))
    "producer W->W and consumer R->R"
    [ (0, 0, 1); (1, 0, 1) ]
    (delay_pairs L.message_passing.L.program)

let test_iriw_writers_need_nothing () =
  let pairs = delay_pairs L.iriw.L.program in
  check "no delays in writer threads" true
    (List.for_all (fun (p, _, _) -> p >= 2) pairs);
  check_int "both readers delayed" 2 (List.length pairs)

let test_no_conflicts_no_delays () =
  let p =
    P.make [ [ I.Write (0, I.Const 1); I.Read (0, 0) ]; [ I.Write (1, I.Const 2) ] ]
  in
  check "disjoint locations: empty delay set" true (delay_pairs p = [])

let test_private_accesses_skipped () =
  (* an intervening private access must not add fences of its own *)
  let p =
    P.make
      [
        [ I.Write (0, I.Const 1); I.Write (9, I.Const 5); I.Read (1, 1) ];
        [ I.Write (1, I.Const 1); I.Read (0, 0) ];
      ]
  in
  let fences = D.fence_positions p in
  check_int "one fence per processor" 2 (List.length fences);
  (* a single fence anywhere between positions 0 and 2 of P0 suffices *)
  check "P0's fence is between the conflicting accesses" true
    (List.exists (fun (proc, g) -> proc = 0 && g >= 0 && g < 2) fences)

let test_fence_insertion_shape () =
  let fenced = D.insert_fences L.figure1.L.program in
  check "name tagged" true
    (fenced.P.name = "figure1+fences");
  Array.iter
    (fun instrs ->
      check_int "one fence inserted per thread" 3 (List.length instrs);
      check "fence in the middle" true (List.nth instrs 1 = I.Fence))
    fenced.P.threads

let test_unsupported_control_flow () =
  check "loops rejected" true
    (try
       ignore (D.analyse L.message_passing_sync.L.program);
       false
     with D.Unsupported _ -> true)

let test_fences_preserve_sc_outcomes () =
  (* fences are no-ops on the idealized architecture *)
  let program = L.figure1.L.program in
  let fenced = D.insert_fences program in
  let a = Wo_prog.Enumerate.outcomes program in
  let b = Wo_prog.Enumerate.outcomes fenced in
  check "same SC outcome sets" true
    (List.length a = List.length b
    && List.for_all2 (fun x y -> Wo_prog.Outcome.compare x y = 0) a b)

let test_fenced_figure1_is_sc_on_weak_machines () =
  let fenced = D.insert_fences L.figure1.L.program in
  List.iter
    (fun machine ->
      for seed = 1 to 60 do
        let r = M.run machine ~seed fenced in
        check
          (Printf.sprintf "%s seed %d" machine.M.name seed)
          false
          (L.both_killed r.M.outcome)
      done)
    Wo_machines.Presets.
      [ bus_nocache_wb; net_nocache_weak; bus_cache_wb; net_cache_relaxed ]

(* Soundness property: for random racy straight-line programs, the fenced
   program's outcomes on a weak machine always lie in the (unchanged) SC
   outcome set. *)
let prop_fencing_restores_sc =
  QCheck.Test.make ~name:"fenced random programs appear SC on weak hardware"
    ~count:25 QCheck.small_int (fun pseed ->
      let program =
        Wo_litmus.Random_prog.racy ~seed:pseed ~procs:2 ~ops_per_proc:4
          ~locs:2 ()
      in
      let sc = Wo_prog.Enumerate.outcomes program in
      let fenced = D.insert_fences program in
      List.for_all
        (fun seed ->
          let r =
            M.run Wo_machines.Presets.net_cache_relaxed ~seed fenced
          in
          List.exists
            (fun o -> Wo_prog.Outcome.compare o r.M.outcome = 0)
            sc)
        [ 1; 2; 3; 4; 5 ])

let prop_delays_subset_of_po_pairs =
  QCheck.Test.make ~name:"delays are program-ordered pairs" ~count:50
    QCheck.small_int (fun pseed ->
      let program =
        Wo_litmus.Random_prog.racy ~seed:pseed ~procs:3 ~ops_per_proc:3 ()
      in
      List.for_all
        (fun (d : D.delay) ->
          d.D.before.D.proc = d.D.after.D.proc
          && d.D.before.D.position < d.D.after.D.position)
        (D.analyse program))

let tests =
  [
    Alcotest.test_case "store buffering" `Quick test_store_buffering_delays;
    Alcotest.test_case "message passing" `Quick test_message_passing_delays;
    Alcotest.test_case "IRIW writers unfenced" `Quick
      test_iriw_writers_need_nothing;
    Alcotest.test_case "no conflicts, no delays" `Quick
      test_no_conflicts_no_delays;
    Alcotest.test_case "private accesses skipped" `Quick
      test_private_accesses_skipped;
    Alcotest.test_case "fence insertion shape" `Quick test_fence_insertion_shape;
    Alcotest.test_case "control flow rejected" `Quick
      test_unsupported_control_flow;
    Alcotest.test_case "fences preserve SC outcomes" `Quick
      test_fences_preserve_sc_outcomes;
    Alcotest.test_case "fenced figure1 is SC everywhere" `Slow
      test_fenced_figure1_is_sc_on_weak_machines;
    QCheck_alcotest.to_alcotest prop_fencing_restores_sc;
    QCheck_alcotest.to_alcotest prop_delays_subset_of_po_pairs;
  ]
