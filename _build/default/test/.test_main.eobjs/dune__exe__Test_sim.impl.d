test/test_sim.ml: Alcotest List QCheck QCheck_alcotest Wo_core Wo_sim
