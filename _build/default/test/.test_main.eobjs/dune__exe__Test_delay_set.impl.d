test/test_delay_set.ml: Alcotest Array List Printf QCheck QCheck_alcotest Wo_litmus Wo_machines Wo_prog
