test/test_relation.ml: Alcotest Gen List QCheck QCheck_alcotest Wo_core
