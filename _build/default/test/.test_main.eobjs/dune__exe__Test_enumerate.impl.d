test/test_enumerate.ml: Alcotest List QCheck QCheck_alcotest Seq Wo_core Wo_litmus Wo_prog
