test/test_happens_before.ml: Alcotest List QCheck QCheck_alcotest Wo_core Wo_litmus Wo_prog
