test/test_cross_check.ml: Alcotest Int List QCheck QCheck_alcotest Seq Wo_core Wo_litmus Wo_machines Wo_prog Wo_race Wo_sim
