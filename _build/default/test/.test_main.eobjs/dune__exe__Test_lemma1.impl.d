test/test_lemma1.ml: Alcotest Format List QCheck QCheck_alcotest Wo_core Wo_litmus Wo_machines Wo_prog
