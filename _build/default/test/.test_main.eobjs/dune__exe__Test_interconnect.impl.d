test/test_interconnect.ml: Alcotest List Wo_interconnect Wo_sim
