test/test_parse.ml: Alcotest Array List Printf String Wo_litmus Wo_machines Wo_prog
