test/test_litmus.ml: Alcotest List Wo_litmus Wo_machines Wo_prog Wo_race
