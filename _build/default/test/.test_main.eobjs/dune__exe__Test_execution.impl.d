test/test_execution.ml: Alcotest Format Int List Option String Wo_core
