test/test_machines.ml: Alcotest Array List Printf String Wo_cache Wo_litmus Wo_machines Wo_prog Wo_sim Wo_workload
