test/test_event.ml: Alcotest Format List Wo_core
