test/test_prog.ml: Alcotest List Option Wo_core Wo_litmus Wo_prog
