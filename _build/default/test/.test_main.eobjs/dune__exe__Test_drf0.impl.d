test/test_drf0.ml: Alcotest Gen List QCheck QCheck_alcotest Wo_core Wo_litmus Wo_prog
