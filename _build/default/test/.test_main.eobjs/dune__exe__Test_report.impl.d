test/test_report.ml: Alcotest List String Wo_report
