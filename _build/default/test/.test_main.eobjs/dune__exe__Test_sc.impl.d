test/test_sc.ml: Alcotest List QCheck QCheck_alcotest Wo_core Wo_litmus Wo_prog
