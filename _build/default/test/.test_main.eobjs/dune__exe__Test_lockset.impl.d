test/test_lockset.ml: Alcotest List Printf Wo_core Wo_litmus Wo_prog Wo_race Wo_workload
