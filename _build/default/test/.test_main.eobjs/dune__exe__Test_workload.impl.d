test/test_workload.ml: Alcotest List Printf Wo_prog Wo_race Wo_workload
