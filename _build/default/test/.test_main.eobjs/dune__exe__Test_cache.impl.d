test/test_cache.ml: Alcotest Array List Option Printf Wo_cache Wo_interconnect Wo_sim
