(* Tests for the program representation and the idealized interpreter. *)

module I = Wo_prog.Instr
module P = Wo_prog.Program
module In = Wo_prog.Interp
module E = Wo_core.Event
module N = Wo_prog.Names

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let env_of l r = match List.assoc_opt r l with Some v -> v | None -> 0

let test_eval_expr () =
  let env = env_of [ (0, 10); (1, 3) ] in
  check_int "const" 5 (I.eval_expr env (I.Const 5));
  check_int "reg" 10 (I.eval_expr env (I.Reg 0));
  check_int "add" 13 (I.eval_expr env (I.Add (I.Reg 0, I.Reg 1)));
  check_int "sub" 7 (I.eval_expr env (I.Sub (I.Reg 0, I.Reg 1)));
  check_int "mul" 30 (I.eval_expr env (I.Mul (I.Reg 0, I.Reg 1)));
  check_int "nested" 26
    (I.eval_expr env (I.Add (I.Mul (I.Reg 1, I.Const 2), I.Mul (I.Reg 0, I.Const 2))))

let test_eval_cond () =
  let env = env_of [ (0, 1) ] in
  check "eq" true (I.eval_cond env (I.Eq (I.Reg 0, I.Const 1)));
  check "ne" false (I.eval_cond env (I.Ne (I.Reg 0, I.Const 1)));
  check "lt" true (I.eval_cond env (I.Lt (I.Const 0, I.Reg 0)));
  check "le" true (I.eval_cond env (I.Le (I.Reg 0, I.Const 1)))

let nested_block =
  [
    I.Read (0, 3);
    I.If
      ( I.Eq (I.Reg 0, I.Const 0),
        [ I.Write (4, I.Const 1) ],
        [ I.While (I.Ne (I.Reg 1, I.Const 0), [ I.Sync_read (1, 5) ]) ] );
    I.Test_and_set (2, 6);
  ]

let test_static_analysis () =
  Alcotest.(check (list int)) "locs" [ 3; 4; 5; 6 ] (I.memory_locs nested_block);
  Alcotest.(check (list int)) "regs" [ 0; 1; 2 ] (I.regs nested_block);
  check_int "op count counts nested nodes" 6 (I.static_op_count nested_block)

let test_program_basics () =
  let p = P.make ~name:"t" ~initial:[ (9, 42) ] [ nested_block; [] ] in
  check_int "procs" 2 (P.num_procs p);
  Alcotest.(check (list int)) "locs include initialized" [ 3; 4; 5; 6; 9 ]
    (P.locs p);
  check_int "initial value" 42 (P.initial_value p 9);
  check_int "default initial" 0 (P.initial_value p 3);
  check "has loops" true (P.has_loops p);
  check "no loops" false
    (P.has_loops (P.make [ [ I.Read (0, 0) ] ]))

let test_single_thread_deterministic () =
  let p =
    P.make
      [
        [
          I.Write (0, I.Const 5);
          I.Read (0, 0);
          I.Assign (1, I.Add (I.Reg 0, I.Const 1));
          I.Write (1, I.Reg 1);
        ];
      ]
  in
  let state = In.run_round_robin p in
  let o = In.outcome state in
  check_int "r0" 5 (Option.get (Wo_prog.Outcome.register o 0 0));
  check_int "r1" 6 (Option.get (Wo_prog.Outcome.register o 0 1));
  check_int "mem y" 6 (Option.get (Wo_prog.Outcome.memory_value o 1))

let test_test_and_set_semantics () =
  let p = P.make [ [ I.Test_and_set (0, 0); I.Test_and_set (1, 0) ] ] in
  let o = In.outcome (In.run_round_robin p) in
  check_int "first TAS reads 0" 0 (Option.get (Wo_prog.Outcome.register o 0 0));
  check_int "second TAS reads 1" 1 (Option.get (Wo_prog.Outcome.register o 0 1));
  check_int "location left at 1" 1 (Option.get (Wo_prog.Outcome.memory_value o 0))

let test_fetch_and_add_semantics () =
  let p =
    P.make
      [ [ I.Fetch_and_add (0, 0, I.Const 3); I.Fetch_and_add (1, 0, I.Const 3) ] ]
  in
  let o = In.outcome (In.run_round_robin p) in
  check_int "first FAA reads 0" 0 (Option.get (Wo_prog.Outcome.register o 0 0));
  check_int "second FAA reads 3" 3 (Option.get (Wo_prog.Outcome.register o 0 1));
  check_int "final" 6 (Option.get (Wo_prog.Outcome.memory_value o 0))

let test_initial_memory_respected () =
  let p = P.make ~initial:[ (0, 7) ] [ [ I.Read (0, 0) ] ] in
  let o = In.outcome (In.run_round_robin p) in
  check_int "reads initial" 7 (Option.get (Wo_prog.Outcome.register o 0 0))

let test_observable_filtering () =
  let p =
    P.make ~observable:[ (0, 1) ]
      [ [ I.Read (0, 0); I.Read (1, 0) ] ]
  in
  let o = In.outcome (In.run_round_robin p) in
  check "r0 hidden" true (Wo_prog.Outcome.register o 0 0 = None);
  check "r1 visible" true (Wo_prog.Outcome.register o 0 1 <> None)

let test_local_divergence () =
  let p = P.make [ [ I.While (I.Eq (I.Const 0, I.Const 0), [ I.Nop ]) ] ] in
  check "register-only infinite loop detected" true
    (try
       ignore (In.run_round_robin p);
       false
     with In.Local_divergence 0 -> true)

let test_step_events () =
  let p =
    P.make [ [ I.Write (0, I.Const 1) ]; [ I.Read (0, 0) ] ]
  in
  let state = In.init p in
  check "both runnable" true (In.runnable state = [ 0; 1 ]);
  let state, ev = In.step state 0 in
  (match ev with
  | Some e ->
    check "write event" true (e.E.kind = E.Data_write);
    check_int "written value" 1 (Option.get e.E.written_value)
  | None -> Alcotest.fail "expected an event");
  let state, ev = In.step state 1 in
  (match ev with
  | Some e -> check_int "read sees write" 1 (Option.get e.E.read_value)
  | None -> Alcotest.fail "expected a read event");
  check "finished" true (In.finished state);
  check_int "two events" 2 (In.events_so_far state)

let test_step_invalid () =
  let p = P.make [ [] ] in
  let state = In.init p in
  check "empty thread is not runnable" true (In.runnable state = []);
  check "finished from the start" true (In.finished state);
  Alcotest.check_raises "stepping a finished thread"
    (Invalid_argument "Interp.step: processor already finished") (fun () ->
      ignore (In.step state 0))

let test_execution_of_run () =
  let p = Wo_litmus.Litmus.figure1.Wo_litmus.Litmus.program in
  let state = In.run_random ~seed:1 p in
  let exn = In.execution state in
  check_int "four events" 4 (Wo_core.Execution.size exn);
  check "execution is SC" true (Wo_core.Sc.is_sequentially_consistent exn)

let test_snippets_acquire_release () =
  (* A two-processor lock protocol built from the snippets ends with the
     lock free and the counter at 2. *)
  let body = [ I.Read (0, 1); I.Write (1, I.Add (I.Reg 0, I.Const 1)) ] in
  let thread =
    Wo_prog.Snippets.critical_section ~lock:0 ~scratch:4 body
  in
  let p = P.make ~observable:[] [ thread; thread ] in
  let o = In.outcome (In.run_random ~seed:2 p) in
  check_int "counter" 2 (Option.get (Wo_prog.Outcome.memory_value o 1));
  check_int "lock free" 0 (Option.get (Wo_prog.Outcome.memory_value o 0))

let test_snippets_ttas () =
  let body = [ I.Read (0, 1); I.Write (1, I.Add (I.Reg 0, I.Const 1)) ] in
  let thread =
    Wo_prog.Snippets.critical_section ~lock:0 ~scratch:4 ~use_ttas:true
      ~scratch2:5 body
  in
  let p = P.make ~observable:[] [ thread; thread; thread ] in
  let o = In.outcome (In.run_random ~seed:3 p) in
  check_int "counter" 3 (Option.get (Wo_prog.Outcome.memory_value o 1))

let test_snippets_barrier () =
  let thread p =
    [ I.Write (p, I.Const (p + 1)) ]
    @ Wo_prog.Snippets.barrier_wait ~counter:9 ~participants:3 ~scratch:4
        ~spin:5
    @ [ I.Read (0, (p + 1) mod 3) ]
  in
  let p = P.make ~observable:[ (0, 0); (1, 0); (2, 0) ] [ thread 0; thread 1; thread 2 ] in
  let o = In.outcome (In.run_random ~seed:4 p) in
  check_int "P0 reads P1's slot" 2 (Option.get (Wo_prog.Outcome.register o 0 0));
  check_int "P2 reads P0's slot" 1 (Option.get (Wo_prog.Outcome.register o 2 0))

let test_names () =
  check_int "x" 0 N.x;
  check_int "s" 6 N.s;
  check "distinct" true (List.length (List.sort_uniq compare [ N.x; N.y; N.z; N.a; N.b; N.c; N.s; N.t; N.u ]) = 9)

let tests =
  [
    Alcotest.test_case "eval_expr" `Quick test_eval_expr;
    Alcotest.test_case "eval_cond" `Quick test_eval_cond;
    Alcotest.test_case "static analysis" `Quick test_static_analysis;
    Alcotest.test_case "program basics" `Quick test_program_basics;
    Alcotest.test_case "single-thread determinism" `Quick
      test_single_thread_deterministic;
    Alcotest.test_case "TestAndSet semantics" `Quick test_test_and_set_semantics;
    Alcotest.test_case "FetchAndAdd semantics" `Quick
      test_fetch_and_add_semantics;
    Alcotest.test_case "initial memory" `Quick test_initial_memory_respected;
    Alcotest.test_case "observable registers" `Quick test_observable_filtering;
    Alcotest.test_case "local divergence" `Quick test_local_divergence;
    Alcotest.test_case "stepping produces events" `Quick test_step_events;
    Alcotest.test_case "empty thread" `Quick test_step_invalid;
    Alcotest.test_case "execution of a run" `Quick test_execution_of_run;
    Alcotest.test_case "snippets: lock" `Quick test_snippets_acquire_release;
    Alcotest.test_case "snippets: test-and-test-and-set" `Quick
      test_snippets_ttas;
    Alcotest.test_case "snippets: barrier" `Quick test_snippets_barrier;
    Alcotest.test_case "names" `Quick test_names;
  ]
