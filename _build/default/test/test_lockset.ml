(* Tests for the monitors-model (lockset) checker. *)

module LS = Wo_race.Lockset
module E = Wo_core.Event
module X = Wo_core.Execution

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let run_ideal program ~seed =
  Wo_prog.Interp.execution (Wo_prog.Interp.run_random ~seed program)

(* P0 and P1 both: acquire lock 6, touch x, release. *)
let locked =
  X.build
    [
      (0, E.Sync_rmw, 6, Some 0, Some 1);   (* P0 acquires *)
      (0, E.Data_read, 0, Some 0, None);
      (0, E.Data_write, 0, None, Some 1);
      (0, E.Sync_write, 6, None, Some 0);   (* release *)
      (1, E.Sync_rmw, 6, Some 0, Some 1);
      (1, E.Data_write, 0, None, Some 2);
      (1, E.Sync_write, 6, None, Some 0);
    ]

let test_locked_passes () =
  check "lock-protected sharing accepted" true (LS.obeys_monitors_model locked)

let unlocked =
  X.build
    [
      (0, E.Data_write, 0, None, Some 1);
      (1, E.Data_write, 0, None, Some 2);
    ]

let test_unlocked_fails () =
  let vs = LS.check_execution unlocked in
  check_int "one violation" 1 (List.length vs);
  check_int "on location x" 0 (List.hd vs).LS.loc;
  check "no locks were held" true ((List.hd vs).LS.held = [])

let test_exclusive_locations_ok () =
  (* one processor only: no locks required *)
  let exn =
    X.build
      [
        (0, E.Data_write, 0, None, Some 1);
        (0, E.Data_read, 0, Some 1, None);
        (0, E.Data_write, 0, None, Some 2);
      ]
  in
  check "thread-local data accepted" true (LS.obeys_monitors_model exn)

let test_read_shared_after_init_ok () =
  (* initialize exclusively, then other processors only read: the candidate
     set never empties on a write *)
  let exn =
    X.build
      [
        (0, E.Data_write, 0, None, Some 1);
        (1, E.Data_read, 0, Some 1, None);
        (2, E.Data_read, 0, Some 1, None);
      ]
  in
  check "read-shared data accepted" true (LS.obeys_monitors_model exn)

let test_failed_tas_is_not_an_acquire () =
  (* P1's TestAndSet reads 1 (lock busy), so its access is unprotected *)
  let exn =
    X.build
      [
        (0, E.Sync_rmw, 6, Some 0, Some 1);
        (0, E.Data_write, 0, None, Some 1);
        (1, E.Sync_rmw, 6, Some 1, Some 1);  (* failed acquire *)
        (1, E.Data_write, 0, None, Some 2);
      ]
  in
  check "unprotected write caught" false (LS.obeys_monitors_model exn)

let test_different_locks_fail () =
  (* Consistent locking requires a COMMON lock.  Eraser-style checking
     ignores the very first thread's locks (the initialization pattern), so
     the inconsistency surfaces on the third round of accesses. *)
  let exn =
    X.build
      [
        (0, E.Sync_rmw, 6, Some 0, Some 1);
        (0, E.Data_write, 0, None, Some 1);
        (0, E.Sync_write, 6, None, Some 0);
        (1, E.Sync_rmw, 7, Some 0, Some 1);  (* a different lock *)
        (1, E.Data_write, 0, None, Some 2);
        (1, E.Sync_write, 7, None, Some 0);
        (0, E.Sync_rmw, 6, Some 0, Some 1);
        (0, E.Data_write, 0, None, Some 3);
        (0, E.Sync_write, 6, None, Some 0);
      ]
  in
  check "inconsistent locks caught" false (LS.obeys_monitors_model exn)

let test_lock_disciplined_programs_pass () =
  for seed = 1 to 8 do
    let program = Wo_litmus.Random_prog.lock_disciplined ~seed ~procs:2 () in
    check
      (Printf.sprintf "program %d" seed)
      true
      (LS.check_program ~run:(run_ideal program) () = [])
  done

let test_flag_handoff_fails_but_is_drf0 () =
  (* The model boundary the paper's future work is about: flag-synchronized
     handoff (producer/consumer) obeys DRF0 but not the monitors model —
     the reused buffer is written after becoming shared, with no lock. *)
  let w = Wo_workload.Workload.producer_consumer ~items:2 ~work:1 () in
  let program = w.Wo_workload.Workload.program in
  let violations = LS.check_program ~run:(run_ideal program) () in
  check "handoff data not lock-protected" true (violations <> []);
  check "yet race-free under DRF0" true
    (Wo_race.Detector.sample_program ~schedules:5 ~run:(run_ideal program) ()
    = [])

let test_write_once_barrier_sharing_accepted () =
  (* per-round slots are written once and then only read: accepted, like
     Eraser's read-shared state *)
  let w = Wo_workload.Workload.spin_barrier ~procs:2 ~rounds:1 ~work:1 () in
  check "write-once sharing accepted" true
    (LS.check_program ~run:(run_ideal w.Wo_workload.Workload.program) () = [])

let test_racy_litmus_fails () =
  let program = Wo_litmus.Litmus.figure1.Wo_litmus.Litmus.program in
  check "figure1 flagged" true
    (LS.check_program ~run:(run_ideal program) () <> [])

let tests =
  [
    Alcotest.test_case "locked sharing" `Quick test_locked_passes;
    Alcotest.test_case "unlocked sharing" `Quick test_unlocked_fails;
    Alcotest.test_case "thread-local data" `Quick test_exclusive_locations_ok;
    Alcotest.test_case "read-shared data" `Quick test_read_shared_after_init_ok;
    Alcotest.test_case "failed TAS" `Quick test_failed_tas_is_not_an_acquire;
    Alcotest.test_case "inconsistent locks" `Quick test_different_locks_fail;
    Alcotest.test_case "lock-disciplined programs" `Quick
      test_lock_disciplined_programs_pass;
    Alcotest.test_case "handoff: DRF0 but not monitors" `Quick
      test_flag_handoff_fails_but_is_drf0;
    Alcotest.test_case "write-once sharing" `Quick
      test_write_once_barrier_sharing_accepted;
    Alcotest.test_case "racy litmus flagged" `Quick test_racy_litmus_fails;
  ]
