(* Tests for Wo_core.Execution: idealized executions, derived orders, and
   the initial/final-state augmentation of Section 4. *)

module E = Wo_core.Event
module X = Wo_core.Execution
module R = Wo_core.Relation

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

(* P0: W(x)=1; R(y)=0   P1: W(y)=2 *)
let sample =
  X.build
    [
      (0, E.Data_write, 0, None, Some 1);
      (1, E.Data_write, 1, None, Some 2);
      (0, E.Data_read, 1, Some 0, None);
    ]

let test_build_assigns_ids_seqs () =
  let evs = X.events sample in
  check_int "size" 3 (X.size sample);
  Alcotest.(check (list int)) "ids in order" [ 0; 1; 2 ]
    (List.map (fun (e : E.t) -> e.E.id) evs);
  let p0 = List.filter (fun (e : E.t) -> e.E.proc = 0) evs in
  Alcotest.(check (list int)) "P0 seqs" [ 0; 1 ]
    (List.map (fun (e : E.t) -> e.E.seq) p0)

let test_procs_locs () =
  Alcotest.(check (list int)) "procs" [ 0; 1 ] (X.procs sample);
  Alcotest.(check (list int)) "locs" [ 0; 1 ] (X.locs sample)

let test_order_index_find () =
  check_int "index of id 2" 2 (X.order_index sample 2);
  let e = X.find sample 1 in
  check_int "found event proc" 1 e.E.proc

let test_program_order () =
  let po = X.program_order sample in
  check "P0 write -> P0 read" true (R.mem 0 2 po);
  check "no cross-proc po" false (R.mem 0 1 po);
  check_int "one adjacent pair" 1 (R.cardinal po)

let test_sync_order () =
  let exn =
    X.build
      [
        (0, E.Sync_write, 6, None, Some 1);
        (1, E.Sync_rmw, 6, Some 1, Some 1);
        (0, E.Sync_write, 7, None, Some 1);
        (1, E.Sync_rmw, 6, Some 1, Some 1);
      ]
  in
  let so = X.sync_order exn in
  check "same-loc syncs ordered by completion" true (R.mem 0 1 so);
  check "adjacent chain" true (R.mem 1 3 so);
  check "different locations unrelated" false (R.mem 0 2 so);
  check "data ops never in so" true
    (R.is_empty (X.sync_order sample))

let test_rejects_duplicate_ids () =
  let e id = E.make ~id ~proc:0 ~seq:id ~kind:E.Data_read ~loc:0 () in
  Alcotest.check_raises "duplicate ids"
    (Invalid_argument "Execution.of_ordered_events: duplicate event id")
    (fun () -> ignore (X.of_ordered_events [ e 0; e 0 ]))

let test_rejects_po_violation () =
  let e id seq = E.make ~id ~proc:0 ~seq ~kind:E.Data_read ~loc:0 () in
  Alcotest.check_raises "out of program order"
    (Invalid_argument
       "Execution.of_ordered_events: processor events out of program order")
    (fun () -> ignore (X.of_ordered_events [ e 0 1; e 1 0 ]))

let test_augment () =
  let a = X.augment sample in
  check "augmented" true (X.is_augmented a);
  check "idempotent" true (X.augment a == a);
  let vp = Option.get (X.virtual_proc a) in
  check_int "virtual proc is fresh" 2 vp;
  (* initializing writes for both locations, a sync each way per real
     processor, a final sync and final reads *)
  let locs = X.locs sample in
  let init_writes =
    List.filter
      (fun (e : E.t) -> e.E.proc = vp && E.is_write e && e.E.kind = E.Data_write)
      (X.events a)
  in
  check_int "one init write per location" (List.length locs)
    (List.length init_writes);
  let final_reads =
    List.filter
      (fun (e : E.t) -> e.E.proc = vp && e.E.kind = E.Data_read)
      (X.events a)
  in
  check_int "one final read per location" (List.length locs)
    (List.length final_reads);
  (* the special synchronization location is fresh *)
  let special =
    List.filter (fun (e : E.t) -> E.is_sync e) (X.events a)
    |> List.map (fun (e : E.t) -> e.E.loc)
    |> List.sort_uniq Int.compare
  in
  check "special location not among originals" true
    (List.for_all (fun l -> not (List.mem l locs)) special);
  (* augmentation orders the initial writes before every original event *)
  let hb = Wo_core.Happens_before.of_execution a in
  let init_write = List.hd init_writes in
  check "init write happens-before original accesses" true
    (List.for_all
       (fun (e : E.t) ->
         Wo_core.Happens_before.ordered hb init_write.E.id e.E.id)
       (List.filter (fun (e : E.t) -> e.E.proc <> vp && E.is_data e)
          (X.events a)))

let test_final_memory () =
  Alcotest.(check (list (pair int int)))
    "final memory"
    [ (0, 1); (1, 2) ]
    (X.final_memory sample)

let test_reads_writes () =
  check_int "reads" 1 (List.length (X.reads sample));
  check_int "writes" 2 (List.length (X.writes sample))

let test_pp_smoke () =
  let s = Format.asprintf "%a" X.pp sample in
  check "mentions both processors" true
    (String.length s > 0
    && String.index_opt s 'P' <> None)

let tests =
  [
    Alcotest.test_case "build assigns ids and seqs" `Quick
      test_build_assigns_ids_seqs;
    Alcotest.test_case "procs and locs" `Quick test_procs_locs;
    Alcotest.test_case "order_index and find" `Quick test_order_index_find;
    Alcotest.test_case "program order" `Quick test_program_order;
    Alcotest.test_case "sync order" `Quick test_sync_order;
    Alcotest.test_case "rejects duplicate ids" `Quick test_rejects_duplicate_ids;
    Alcotest.test_case "rejects po violations" `Quick test_rejects_po_violation;
    Alcotest.test_case "augmentation" `Quick test_augment;
    Alcotest.test_case "final memory" `Quick test_final_memory;
    Alcotest.test_case "reads and writes" `Quick test_reads_writes;
    Alcotest.test_case "pp smoke" `Quick test_pp_smoke;
  ]
