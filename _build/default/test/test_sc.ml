(* Tests for the sequential-consistency witness search (Lamport's
   definition applied to finite executions). *)

module E = Wo_core.Event
module S = Wo_core.Sc
module X = Wo_core.Execution

let check = Alcotest.(check bool)

let mk ~id ~proc ~seq kind loc ?rv ?wv () =
  E.make ~id ~proc ~seq ~kind ~loc ?read_value:rv ?written_value:wv ()

(* Store buffering with the both-zero result: no witness exists. *)
let sb_both_zero =
  [
    [
      mk ~id:0 ~proc:0 ~seq:0 E.Data_write 0 ~wv:1 ();
      mk ~id:1 ~proc:0 ~seq:1 E.Data_read 1 ~rv:0 ();
    ];
    [
      mk ~id:2 ~proc:1 ~seq:0 E.Data_write 1 ~wv:1 ();
      mk ~id:3 ~proc:1 ~seq:1 E.Data_read 0 ~rv:0 ();
    ];
  ]

let test_sb_both_zero_impossible () =
  check "no SC witness for both-zero" true (S.witness sb_both_zero = None)

let sb_one_zero =
  [
    [
      mk ~id:0 ~proc:0 ~seq:0 E.Data_write 0 ~wv:1 ();
      mk ~id:1 ~proc:0 ~seq:1 E.Data_read 1 ~rv:0 ();
    ];
    [
      mk ~id:2 ~proc:1 ~seq:0 E.Data_write 1 ~wv:1 ();
      mk ~id:3 ~proc:1 ~seq:1 E.Data_read 0 ~rv:1 ();
    ];
  ]

let test_sb_one_zero_possible () =
  match S.witness sb_one_zero with
  | None -> Alcotest.fail "witness should exist"
  | Some order ->
    Alcotest.(check int) "witness covers all events" 4 (List.length order);
    (* program order preserved in the witness *)
    let pos id =
      let rec go i = function
        | [] -> -1
        | (e : E.t) :: rest -> if e.E.id = id then i else go (i + 1) rest
      in
      go 0 order
    in
    check "P0 order" true (pos 0 < pos 1);
    check "P1 order" true (pos 2 < pos 3);
    (* the read of x=1 must come after the write of x *)
    check "reads-from respected" true (pos 0 < pos 3)

let test_init_respected () =
  let threads = [ [ mk ~id:0 ~proc:0 ~seq:0 E.Data_read 0 ~rv:9 () ] ] in
  check "default init 0 rejects 9" true (S.witness threads = None);
  check "custom init accepts" true
    (S.witness ~init:(fun _ -> 9) threads <> None)

let test_expected_final () =
  let threads =
    [
      [ mk ~id:0 ~proc:0 ~seq:0 E.Data_write 0 ~wv:1 () ];
      [ mk ~id:1 ~proc:1 ~seq:0 E.Data_write 0 ~wv:2 () ];
    ]
  in
  check "final 1 reachable" true
    (S.witness ~expected_final:[ (0, 1) ] threads <> None);
  check "final 2 reachable" true
    (S.witness ~expected_final:[ (0, 2) ] threads <> None);
  check "final 3 unreachable" true
    (S.witness ~expected_final:[ (0, 3) ] threads = None)

let test_rmw_atomicity () =
  (* Two TestAndSets both reading 0 is not serializable. *)
  let tas id proc rv =
    mk ~id ~proc ~seq:0 E.Sync_rmw 0 ~rv ~wv:1 ()
  in
  check "both-zero TAS impossible" true
    (S.witness [ [ tas 0 0 0 ]; [ tas 1 1 0 ] ] = None);
  check "0 then 1 possible" true
    (S.witness [ [ tas 0 0 0 ]; [ tas 1 1 1 ] ] <> None)

let test_unconstrained_read () =
  (* A read with no recorded value matches anything. *)
  let threads =
    [ [ E.make ~id:0 ~proc:0 ~seq:0 ~kind:E.Data_read ~loc:0 () ] ]
  in
  check "unconstrained read" true (S.witness threads <> None)

let test_result_of_execution () =
  let exn =
    X.build
      [
        (0, E.Data_write, 0, None, Some 5);
        (1, E.Data_read, 0, Some 5, None);
      ]
  in
  let r = S.result_of_execution exn in
  Alcotest.(check (list (pair int int))) "final" [ (0, 5) ] r.S.final;
  Alcotest.(check int) "one read" 1 (List.length r.S.read_values);
  check "results compare equal to themselves" true (S.compare_result r r = 0)

let test_is_sequentially_consistent_on_ideal () =
  let program = Wo_litmus.Litmus.figure1.Wo_litmus.Litmus.program in
  let exn = Wo_prog.Interp.execution (Wo_prog.Interp.run_random ~seed:3 program) in
  check "idealized executions are SC" true (S.is_sequentially_consistent exn)

(* Property: every idealized execution of every random program passes the
   SC witness search (the idealized architecture is SC by construction,
   Section 1). *)
let prop_idealized_is_sc =
  QCheck.Test.make ~name:"idealized executions are sequentially consistent"
    ~count:60 QCheck.small_int (fun seed ->
      let program =
        Wo_litmus.Random_prog.racy ~seed ~procs:2 ~ops_per_proc:4 ()
      in
      let exn = Wo_prog.Interp.execution (Wo_prog.Interp.run_random ~seed program) in
      S.is_sequentially_consistent exn)

let tests =
  [
    Alcotest.test_case "store buffering both-zero" `Quick
      test_sb_both_zero_impossible;
    Alcotest.test_case "store buffering one-zero" `Quick
      test_sb_one_zero_possible;
    Alcotest.test_case "initial values" `Quick test_init_respected;
    Alcotest.test_case "expected final memory" `Quick test_expected_final;
    Alcotest.test_case "read-modify-write atomicity" `Quick test_rmw_atomicity;
    Alcotest.test_case "unconstrained reads" `Quick test_unconstrained_read;
    Alcotest.test_case "result extraction" `Quick test_result_of_execution;
    Alcotest.test_case "idealized execution verifies" `Quick
      test_is_sequentially_consistent_on_ideal;
    QCheck_alcotest.to_alcotest prop_idealized_is_sc;
  ]
