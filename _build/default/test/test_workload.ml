(* Tests for the workload generators: invariants on the reference
   interpreter, race-freedom by sampling, and validator behaviour. *)

module W = Wo_workload.Workload
module In = Wo_prog.Interp
module D = Wo_race.Detector

let check = Alcotest.(check bool)

let validate_on_ideal (w : W.t) seed =
  let o = In.outcome (In.run_random ~seed w.W.program) in
  w.W.validate o

let test_all_validate_on_ideal () =
  List.iter
    (fun (w : W.t) ->
      for seed = 1 to 10 do
        match validate_on_ideal w seed with
        | Ok () -> ()
        | Error e ->
          Alcotest.fail (Printf.sprintf "%s seed %d: %s" w.W.name seed e)
      done)
    W.all

let test_all_race_free_by_sampling () =
  List.iter
    (fun (w : W.t) ->
      let races =
        D.sample_program ~schedules:10
          ~run:(fun ~seed ->
            In.execution (In.run_random ~seed w.W.program))
          ()
      in
      check (w.W.name ^ " race-free") true (races = []))
    W.all

let test_parameterized_instances () =
  let cases =
    [
      W.critical_section ~procs:2 ~sections:2 ~work:1 ();
      W.critical_section ~procs:3 ~sections:2 ~use_ttas:true ();
      W.spin_barrier ~procs:2 ~rounds:2 ~work:1 ();
      W.spin_barrier ~procs:5 ~rounds:1 ~work:0 ();
      W.producer_consumer ~items:2 ~work:0 ();
      W.producer_consumer ~items:3 ~batch:4 ();
      W.sharded_counter ~procs:2 ~increments:3 ();
    ]
  in
  List.iter
    (fun (w : W.t) ->
      match validate_on_ideal w 7 with
      | Ok () -> ()
      | Error e -> Alcotest.fail (w.W.program.Wo_prog.Program.name ^ ": " ^ e))
    cases

let test_validator_rejects_wrong_outcomes () =
  let w = W.critical_section ~procs:2 ~sections:2 () in
  let bad = Wo_prog.Outcome.make ~registers:[] ~memory:[ (1, 3) ] in
  check "wrong counter rejected" true (w.W.validate bad <> Ok ());
  let missing = Wo_prog.Outcome.make ~registers:[] ~memory:[] in
  check "missing location rejected" true (w.W.validate missing <> Ok ())

let test_workload_programs_have_loops () =
  (* every workload synchronizes by spinning somewhere *)
  List.iter
    (fun (w : W.t) ->
      check (w.W.name ^ " spins") true
        (Wo_prog.Program.has_loops w.W.program))
    W.all

let tests =
  [
    Alcotest.test_case "validate on the idealized machine" `Quick
      test_all_validate_on_ideal;
    Alcotest.test_case "race-free by sampling" `Quick
      test_all_race_free_by_sampling;
    Alcotest.test_case "parameterized instances" `Quick
      test_parameterized_instances;
    Alcotest.test_case "validator rejects bad outcomes" `Quick
      test_validator_rejects_wrong_outcomes;
    Alcotest.test_case "workloads spin" `Quick test_workload_programs_have_loops;
  ]
