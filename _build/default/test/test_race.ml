(* Tests for the vector-clock substrate and the on-the-fly race detector. *)

module V = Wo_race.Vector_clock
module D = Wo_race.Detector
module E = Wo_core.Event
module X = Wo_core.Execution

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

(* --- vector clocks ---------------------------------------------------------- *)

let test_vc_basics () =
  let v = V.zero 3 in
  check_int "size" 3 (V.size v);
  check_int "component" 0 (V.get v 1);
  let v' = V.tick v 1 in
  check_int "ticked" 1 (V.get v' 1);
  check_int "others untouched" 0 (V.get v' 0);
  check "original unchanged" true (V.get v 1 = 0)

let test_vc_order () =
  let a = V.tick (V.zero 2) 0 in
  let b = V.tick a 1 in
  check "a <= b" true (V.leq a b);
  check "not b <= a" false (V.leq b a);
  check "reflexive" true (V.leq a a);
  let c = V.tick (V.zero 2) 1 in
  check "concurrent" true (V.concurrent a c);
  check "not concurrent with self" false (V.concurrent a a)

let test_vc_size_mismatch () =
  Alcotest.check_raises "join mismatch"
    (Invalid_argument "Vector_clock: size mismatch") (fun () ->
      ignore (V.join (V.zero 2) (V.zero 3)))

let arbitrary_vc =
  QCheck.(map (fun l ->
      List.fold_left (fun v (i ) -> V.tick v (i mod 4)) (V.zero 4) l)
    (small_list (0 -- 3)))

let prop_join_commutative =
  QCheck.Test.make ~name:"join commutative" ~count:200
    QCheck.(pair arbitrary_vc arbitrary_vc)
    (fun (a, b) -> V.equal (V.join a b) (V.join b a))

let prop_join_idempotent =
  QCheck.Test.make ~name:"join idempotent" ~count:200 arbitrary_vc (fun a ->
      V.equal (V.join a a) a)

let prop_join_upper_bound =
  QCheck.Test.make ~name:"join is an upper bound" ~count:200
    QCheck.(pair arbitrary_vc arbitrary_vc)
    (fun (a, b) ->
      let j = V.join a b in
      V.leq a j && V.leq b j)

let prop_leq_antisymmetric =
  QCheck.Test.make ~name:"leq antisymmetric" ~count:200
    QCheck.(pair arbitrary_vc arbitrary_vc)
    (fun (a, b) -> (not (V.leq a b && V.leq b a)) || V.equal a b)

(* --- detector ---------------------------------------------------------------- *)

let test_detector_on_figure2 () =
  check "figure 2(a) race-free" true
    (D.is_race_free Wo_litmus.Figure2.execution_a);
  check "figure 2(b) racy" false
    (D.is_race_free Wo_litmus.Figure2.execution_b)

let test_detector_simple_race () =
  let exn =
    X.build
      [ (0, E.Data_write, 0, None, Some 1); (1, E.Data_read, 0, Some 1, None) ]
  in
  let races = D.races_of_execution exn in
  check_int "one race" 1 (List.length races)

let test_detector_sync_ordering () =
  let exn =
    X.build
      [
        (0, E.Data_write, 0, None, Some 1);
        (0, E.Sync_write, 6, None, Some 1);
        (1, E.Sync_read, 6, Some 1, None);
        (1, E.Data_read, 0, Some 1, None);
      ]
  in
  check "synchronized handoff clean" true (D.is_race_free exn)

let test_detector_drf1_model () =
  (* Release via read-only synchronization: DRF0-clean, DRF1-racy. *)
  let exn =
    X.build
      [
        (0, E.Data_write, 0, None, Some 1);
        (0, E.Sync_read, 6, Some 0, None);
        (1, E.Sync_rmw, 6, Some 0, Some 1);
        (1, E.Data_read, 0, Some 1, None);
      ]
  in
  check "drf0 clean" true (D.is_race_free ~model:D.Model_drf0 exn);
  check "drf1 racy" false (D.is_race_free ~model:D.Model_drf1 exn)

let test_detector_write_write () =
  let exn =
    X.build
      [ (0, E.Data_write, 0, None, Some 1); (1, E.Data_write, 0, None, Some 2) ]
  in
  check "write-write race" false (D.is_race_free exn)

let test_detector_read_read_clean () =
  let exn =
    X.build
      [ (0, E.Data_read, 0, Some 0, None); (1, E.Data_read, 0, Some 0, None) ]
  in
  check "read-read never races" true (D.is_race_free exn)

let test_sample_program () =
  let program = Wo_litmus.Litmus.figure1.Wo_litmus.Litmus.program in
  let races =
    D.sample_program ~schedules:10
      ~run:(fun ~seed ->
        Wo_prog.Interp.execution (Wo_prog.Interp.run_random ~seed program))
      ()
  in
  check "racy program caught by sampling" true (races <> []);
  let clean = Wo_litmus.Litmus.dekker_sync.Wo_litmus.Litmus.program in
  let races =
    D.sample_program ~schedules:10
      ~run:(fun ~seed ->
        Wo_prog.Interp.execution (Wo_prog.Interp.run_random ~seed clean))
      ()
  in
  check "clean program has no sampled races" true (races = [])

(* Agreement with the exhaustive checker: the streaming detector reports a
   race iff the quadratic checker (without augmentation) does. *)
let prop_detector_agrees_with_drf0 =
  QCheck.Test.make ~name:"detector agrees with the exhaustive checker"
    ~count:150
    QCheck.(pair small_int small_int)
    (fun (pseed, sseed) ->
      let program =
        Wo_litmus.Random_prog.racy ~seed:pseed ~procs:3 ~ops_per_proc:4
          ~locs:2 ()
      in
      let exn =
        Wo_prog.Interp.execution (Wo_prog.Interp.run_random ~seed:sseed program)
      in
      let exhaustive = Wo_core.Drf0.races ~augment:false exn <> [] in
      let streaming = not (D.is_race_free exn) in
      exhaustive = streaming)

let prop_lock_disciplined_race_free =
  QCheck.Test.make ~name:"lock-disciplined programs are race-free" ~count:30
    QCheck.small_int (fun seed ->
      let program =
        Wo_litmus.Random_prog.lock_disciplined ~seed ~procs:2
          ~sections_per_proc:2 ()
      in
      List.for_all
        (fun sseed ->
          D.is_race_free
            (Wo_prog.Interp.execution
               (Wo_prog.Interp.run_random ~seed:sseed program)))
        [ 1; 2; 3 ])

let tests =
  [
    Alcotest.test_case "vector clock basics" `Quick test_vc_basics;
    Alcotest.test_case "vector clock order" `Quick test_vc_order;
    Alcotest.test_case "size mismatch" `Quick test_vc_size_mismatch;
    QCheck_alcotest.to_alcotest prop_join_commutative;
    QCheck_alcotest.to_alcotest prop_join_idempotent;
    QCheck_alcotest.to_alcotest prop_join_upper_bound;
    QCheck_alcotest.to_alcotest prop_leq_antisymmetric;
    Alcotest.test_case "detector on figure 2" `Quick test_detector_on_figure2;
    Alcotest.test_case "simple race" `Quick test_detector_simple_race;
    Alcotest.test_case "synchronized handoff" `Quick test_detector_sync_ordering;
    Alcotest.test_case "drf1 model" `Quick test_detector_drf1_model;
    Alcotest.test_case "write-write" `Quick test_detector_write_write;
    Alcotest.test_case "read-read" `Quick test_detector_read_read_clean;
    Alcotest.test_case "sampling programs" `Quick test_sample_program;
    QCheck_alcotest.to_alcotest prop_detector_agrees_with_drf0;
    QCheck_alcotest.to_alcotest prop_lock_disciplined_race_free;
  ]
