(* Tests for the table renderer. *)

module T = Wo_report.Table

let check = Alcotest.(check bool)
let check_string = Alcotest.(check string)

let test_render_basic () =
  let s = T.render ~headers:[ "a"; "bb" ] [ [ "1"; "2" ]; [ "333"; "4" ] ] in
  let lines = String.split_on_char '\n' s in
  Alcotest.(check int) "header + separator + rows" 4 (List.length lines);
  check_string "header padded" "a    bb" (List.nth lines 0);
  check_string "separator" "---  --" (List.nth lines 1);
  check_string "first row" "1    2 " (List.nth lines 2);
  check_string "wide cell grows the column" "333  4 " (List.nth lines 3)

let test_render_alignment () =
  let s =
    T.render ~align:[ T.L; T.R ] ~headers:[ "n"; "v" ] [ [ "x"; "10" ]; [ "y"; "5" ] ]
  in
  let lines = String.split_on_char '\n' s in
  check_string "right aligned" "y   5" (List.nth lines 3)

let test_render_missing_cells () =
  let s = T.render ~headers:[ "a"; "b"; "c" ] [ [ "1" ] ] in
  let lines = String.split_on_char '\n' s in
  check "short rows pad with blanks" true
    (String.length (List.nth lines 2) = String.length (List.nth lines 0))

let test_render_extra_columns () =
  (* a row longer than the header grows the table *)
  let s = T.render ~headers:[ "a" ] [ [ "1"; "2" ] ] in
  check "no exception, both cells present" true
    (String.length s > 0 && String.contains s '2')

let tests =
  [
    Alcotest.test_case "basic rendering" `Quick test_render_basic;
    Alcotest.test_case "alignment" `Quick test_render_alignment;
    Alcotest.test_case "missing cells" `Quick test_render_missing_cells;
    Alcotest.test_case "extra columns" `Quick test_render_extra_columns;
  ]
