(* Cross-checks between independent implementations of the same notion —
   the strongest tests in the suite, because a bug must hit two different
   algorithms identically to slip through. *)

module R = Wo_core.Relation
module E = Wo_core.Event
module X = Wo_core.Execution

let check = Alcotest.(check bool)

(* 1. The SC witness search vs. relation linearization: for loop-free
   programs, the number of idealized executions equals the number of
   linearizations of the (memory-operation) program-order relation. *)
let prop_enumeration_count_matches_linearizations =
  QCheck.Test.make
    ~name:"enumerated executions = linearizations of program order" ~count:30
    QCheck.small_int (fun seed ->
      let program =
        Wo_litmus.Random_prog.racy ~seed ~procs:2 ~ops_per_proc:3 ~locs:2 ()
      in
      let executions =
        List.of_seq (Wo_prog.Enumerate.executions program)
      in
      match executions with
      | [] -> false
      | first :: _ ->
        let po = X.program_order first in
        let nodes = List.map (fun (e : E.t) -> e.E.id) (X.events first) in
        let linearizations = R.linearizations ~nodes po in
        List.length executions = List.length linearizations)

(* 2. The Lemma-1 oracle vs. the SC witness search on machine traces: on a
   DRF0 program, a trace accepted by Lemma 1 must also admit an SC
   witness (Lemma 1 is sufficient for sequential consistency). *)
let prop_lemma1_implies_sc_witness =
  QCheck.Test.make ~name:"Lemma-1-accepted traces admit SC witnesses"
    ~count:20 QCheck.small_int (fun seed ->
      let t = Wo_litmus.Litmus.dekker_sync in
      let r =
        Wo_machines.Machine.run Wo_machines.Presets.wo_new ~seed:(seed + 1)
          t.Wo_litmus.Litmus.program
      in
      let lemma1_ok = Wo_machines.Machine.check_lemma1 r = Ok () in
      let threads =
        let events = Wo_sim.Trace.events r.Wo_machines.Machine.trace in
        let procs =
          List.sort_uniq Int.compare
            (List.map (fun (e : E.t) -> e.E.proc) events)
        in
        List.map
          (fun p ->
            List.filter (fun (e : E.t) -> e.E.proc = p) events
            |> List.sort (fun (a : E.t) b -> compare a.E.seq b.E.seq))
          procs
      in
      let witness_ok = Wo_core.Sc.witness threads <> None in
      (not lemma1_ok) || witness_ok)

(* 3. The exhaustive DRF0 checker vs. the streaming detector on every
   enumerated execution of small random programs (not just one). *)
let prop_all_executions_agree =
  QCheck.Test.make
    ~name:"exhaustive checker and detector agree on every execution"
    ~count:15 QCheck.small_int (fun seed ->
      let program =
        Wo_litmus.Random_prog.racy ~seed ~procs:2 ~ops_per_proc:2 ~locs:2 ()
      in
      Seq.for_all
        (fun exn ->
          (Wo_core.Drf0.races ~augment:false exn <> [])
          = not (Wo_race.Detector.is_race_free exn))
        (Wo_prog.Enumerate.executions program))

(* 4. Machine outcome vs. trace: replaying the trace's reads against the
   recorded write values through the SC witness reproduces the machine's
   registered outcome values for litmus-scale DRF0 runs (the trace is a
   faithful record of what the machine did). *)
let test_trace_read_values_match_outcome () =
  let t = Wo_litmus.Litmus.dekker_sync in
  for seed = 1 to 10 do
    let r =
      Wo_machines.Machine.run Wo_machines.Presets.wo_old ~seed
        t.Wo_litmus.Litmus.program
    in
    (* each processor's r0 is the value of its (only) read event *)
    List.iter
      (fun (e : E.t) ->
        if E.is_read e && e.E.kind = E.Sync_read then
          match
            Wo_prog.Outcome.register r.Wo_machines.Machine.outcome e.E.proc
              Wo_prog.Names.r0
          with
          | Some v ->
            check "trace read value matches outcome register" true
              (e.E.read_value = Some v)
          | None -> Alcotest.fail "register missing")
      (Wo_sim.Trace.events r.Wo_machines.Machine.trace)
  done

(* 5. Figure-2(a) is also clean under the streaming detector AND satisfies
   Lemma 1 directly (three independent validations of one artifact). *)
let test_figure2a_three_ways () =
  let exn = Wo_litmus.Figure2.execution_a in
  check "exhaustive" true (Wo_core.Drf0.obeys exn);
  check "streaming" true (Wo_race.Detector.is_race_free exn);
  check "lemma1" true (Wo_core.Lemma1.check_execution exn = Ok ())

let tests =
  [
    QCheck_alcotest.to_alcotest prop_enumeration_count_matches_linearizations;
    QCheck_alcotest.to_alcotest prop_lemma1_implies_sc_witness;
    QCheck_alcotest.to_alcotest prop_all_executions_agree;
    Alcotest.test_case "trace values match outcomes" `Quick
      test_trace_read_values_match_outcome;
    Alcotest.test_case "figure 2(a) three ways" `Quick test_figure2a_three_ways;
  ]
