(* Tests for Wo_core.Event: operation classification and the conflict
   predicate of Definition 3. *)

module E = Wo_core.Event

let mk ?(id = 0) ?(proc = 0) ?(seq = 0) ?(loc = 0) kind =
  E.make ~id ~proc ~seq ~kind ~loc ()

let check = Alcotest.(check bool)

let all_kinds =
  [ E.Data_read; E.Data_write; E.Sync_read; E.Sync_write; E.Sync_rmw ]

let test_is_read () =
  let expected = function
    | E.Data_read | E.Sync_read | E.Sync_rmw -> true
    | E.Data_write | E.Sync_write -> false
  in
  List.iter
    (fun k -> check "read component" (expected k) (E.is_read (mk k)))
    all_kinds

let test_is_write () =
  let expected = function
    | E.Data_write | E.Sync_write | E.Sync_rmw -> true
    | E.Data_read | E.Sync_read -> false
  in
  List.iter
    (fun k -> check "write component" (expected k) (E.is_write (mk k)))
    all_kinds

let test_is_sync () =
  let expected = function
    | E.Sync_read | E.Sync_write | E.Sync_rmw -> true
    | E.Data_read | E.Data_write -> false
  in
  List.iter
    (fun k ->
      check "sync" (expected k) (E.is_sync (mk k));
      check "data is the complement" (not (expected k)) (E.is_data (mk k)))
    all_kinds

let test_conflicts_same_loc () =
  (* Conflict iff same location and not both read-only. *)
  let read_only = function
    | E.Data_read | E.Sync_read -> true
    | E.Data_write | E.Sync_write | E.Sync_rmw -> false
  in
  List.iter
    (fun k1 ->
      List.iter
        (fun k2 ->
          let expected = not (read_only k1 && read_only k2) in
          check
            (Format.asprintf "%a vs %a" E.pp_kind k1 E.pp_kind k2)
            expected
            (E.conflicts (mk ~id:0 k1) (mk ~id:1 k2)))
        all_kinds)
    all_kinds

let test_conflicts_different_loc () =
  List.iter
    (fun k1 ->
      List.iter
        (fun k2 ->
          check "no cross-location conflict" false
            (E.conflicts (mk ~loc:0 k1) (mk ~id:1 ~loc:1 k2)))
        all_kinds)
    all_kinds

let test_conflict_symmetry () =
  List.iter
    (fun k1 ->
      List.iter
        (fun k2 ->
          check "symmetric"
            (E.conflicts (mk k1) (mk ~id:1 k2))
            (E.conflicts (mk ~id:1 k2) (mk k1)))
        all_kinds)
    all_kinds

let test_compare_equal () =
  let a = mk ~id:1 E.Data_read and b = mk ~id:2 E.Data_read in
  check "equal by id" true (E.equal a (mk ~id:1 E.Data_write));
  check "unequal ids" false (E.equal a b);
  Alcotest.(check bool) "compare consistent" true (E.compare a b < 0)

let test_pp () =
  let e =
    E.make ~id:3 ~proc:1 ~seq:0 ~kind:E.Data_write ~loc:0 ~written_value:7 ()
  in
  Alcotest.(check string) "write rendering" "W(x=7)@P1"
    (Format.asprintf "%a" E.pp e);
  let r =
    E.make ~id:4 ~proc:2 ~seq:1 ~kind:E.Data_read ~loc:1 ~read_value:5 ()
  in
  Alcotest.(check string) "read rendering" "R(y?5)@P2"
    (Format.asprintf "%a" E.pp r)

let tests =
  [
    Alcotest.test_case "is_read" `Quick test_is_read;
    Alcotest.test_case "is_write" `Quick test_is_write;
    Alcotest.test_case "is_sync / is_data" `Quick test_is_sync;
    Alcotest.test_case "conflicts on one location" `Quick test_conflicts_same_loc;
    Alcotest.test_case "no conflicts across locations" `Quick
      test_conflicts_different_loc;
    Alcotest.test_case "conflict symmetry" `Quick test_conflict_symmetry;
    Alcotest.test_case "compare and equal" `Quick test_compare_equal;
    Alcotest.test_case "pretty printing" `Quick test_pp;
  ]
