(* Tests for the litmus text-format parser. *)

module Pa = Wo_litmus.Parse
module L = Wo_litmus.Litmus
module I = Wo_prog.Instr

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let sb_text =
  "name: sb\nP0: x := 1 ; r0 := y\nP1: y := 1 ; r0 := x\nforbid: P0:r0=0 & P1:r0=0\n"

let test_parse_store_buffering () =
  let t = Pa.of_string sb_text in
  check "name" true (t.L.name = "sb");
  check_int "two processors" 2 (Wo_prog.Program.num_procs t.L.program);
  check "racy" false t.L.drf0;
  check "loop-free" false t.L.loops;
  (* equivalent to the built-in figure1 test: same SC outcome count *)
  check_int "three SC outcomes" 3
    (List.length (Wo_prog.Enumerate.outcomes t.L.program));
  (* the forbidden clause matches the impossible outcome *)
  let pred = List.assoc "forbidden" t.L.interesting in
  check "forbidden outcome not in SC set" false
    (List.exists pred (Wo_prog.Enumerate.outcomes t.L.program))

let test_parse_statements () =
  let t =
    Pa.of_string
      "name: all\n\
       init: q=7\n\
       P0: r0 := test(s) ; unset(s) ; sync(s, 3) ; r1 := tas(s) ; r2 := \
       faa(q, 2) ; fence ; nop ; nop*3 ; r3 := r1 + 1 ; q := r3\n"
  in
  let instrs = t.L.program.Wo_prog.Program.threads.(0) in
  let kinds =
    List.map
      (function
        | I.Sync_read _ -> "test"
        | I.Sync_write _ -> "syncw"
        | I.Test_and_set _ -> "tas"
        | I.Fetch_and_add _ -> "faa"
        | I.Fence -> "fence"
        | I.Nop -> "nop"
        | I.Assign _ -> "assign"
        | I.Write _ -> "write"
        | I.Read _ -> "read"
        | _ -> "?")
      instrs
  in
  Alcotest.(check (list string))
    "statement kinds"
    [
      "test"; "syncw"; "syncw"; "tas"; "faa"; "fence"; "nop"; "nop"; "nop";
      "nop"; "assign"; "write";
    ]
    kinds;
  (* q is a fresh location initialized to 7 *)
  let q =
    match List.rev instrs with I.Write (l, _) :: _ -> l | _ -> assert false
  in
  check_int "initial value" 7 (Wo_prog.Program.initial_value t.L.program q);
  check "fresh location beyond the conventional ones" true (q >= 9)

let test_conventional_locations () =
  let t = Pa.of_string "name: n\nP0: r0 := x ; r1 := s\n" in
  match t.L.program.Wo_prog.Program.threads.(0) with
  | [ I.Read (_, lx); I.Read (_, ls) ] ->
    check_int "x" Wo_prog.Names.x lx;
    check_int "s" Wo_prog.Names.s ls
  | _ -> Alcotest.fail "unexpected parse"

let test_drf0_flag_computed () =
  let t =
    Pa.of_string "name: d\nP0: sync(s, 1)\nP1: r0 := tas(s)\n"
  in
  check "sync-only program is DRF0" true t.L.drf0

let test_comments_and_blanks () =
  let t =
    Pa.of_string
      "# a comment\n\nname: c  # trailing comment\n\nP0: x := 1\nP1: r0 := x\n"
  in
  check "parsed" true (t.L.name = "c")

let expect_error text fragment =
  match Pa.of_string text with
  | exception Pa.Parse_error { message; _ } ->
    check
      (Printf.sprintf "error mentions %S" fragment)
      true
      (let len = String.length fragment in
       let rec find i =
         i + len <= String.length message
         && (String.sub message i len = fragment || find (i + 1))
       in
       find 0)
  | _ -> Alcotest.fail ("expected a parse error for: " ^ text)

let test_errors () =
  expect_error "P0: x := 1\nP2: y := 1\n" "missing P1";
  expect_error "name: n\n" "no processors";
  expect_error "P0: wibble wobble\n" "cannot parse";
  expect_error "P0: r0 := frob(x)\n" "unknown operation";
  expect_error "P0: x := 1\nP0: y := 1\n" "twice";
  expect_error "bogus: 1\n" "unknown key";
  expect_error "P0: x := 1\nforbid: P0-r0=0\n" "clause"

let test_file_roundtrip () =
  let t = Pa.of_file "../../../examples/litmus/store_buffering.litmus" in
  check "file parsed" true (t.L.name = "store-buffering")

let test_parsed_test_runs_on_machines () =
  let t = Pa.of_string sb_text in
  let report = Wo_litmus.Runner.run ~runs:30 Wo_machines.Presets.sc_dir t in
  check "runs and appears SC on the SC machine" true
    (Wo_litmus.Runner.appears_sc report);
  let weak =
    Wo_litmus.Runner.run ~runs:60 Wo_machines.Presets.bus_nocache_wb t
  in
  check "violations flagged on the write-buffer machine" false
    (Wo_litmus.Runner.appears_sc weak)

let test_fenced_file_is_sc () =
  let t = Pa.of_file "../../../examples/litmus/sb_fenced.litmus" in
  let report =
    Wo_litmus.Runner.run ~runs:60 Wo_machines.Presets.bus_nocache_wb t
  in
  check "explicit fences restore SC" true (Wo_litmus.Runner.appears_sc report)

let tests =
  [
    Alcotest.test_case "store buffering" `Quick test_parse_store_buffering;
    Alcotest.test_case "all statement forms" `Quick test_parse_statements;
    Alcotest.test_case "conventional locations" `Quick
      test_conventional_locations;
    Alcotest.test_case "drf0 flag" `Quick test_drf0_flag_computed;
    Alcotest.test_case "comments and blanks" `Quick test_comments_and_blanks;
    Alcotest.test_case "errors" `Quick test_errors;
    Alcotest.test_case "file roundtrip" `Quick test_file_roundtrip;
    Alcotest.test_case "parsed tests run" `Quick
      test_parsed_test_runs_on_machines;
    Alcotest.test_case "fenced litmus file" `Quick test_fenced_file_is_sc;
  ]
