(* Tests for the DRF0 checker (Definition 3), including the Figure-2
   executions. *)

module E = Wo_core.Event
module X = Wo_core.Execution
module D = Wo_core.Drf0

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let test_figure2a () =
  check "figure 2(a) obeys DRF0" true (D.obeys Wo_litmus.Figure2.execution_a)

let test_figure2b () =
  let races = D.races Wo_litmus.Figure2.execution_b in
  check_int "figure 2(b) race count" Wo_litmus.Figure2.expected_races_b
    (List.length races);
  (* the caption's named conflicts are among them *)
  let has ~k1 ~k2 ~loc =
    List.exists
      (fun { D.e1; e2 } ->
        e1.E.loc = loc && e2.E.loc = loc
        && ((e1.E.kind = k1 && e2.E.kind = k2)
           || (e1.E.kind = k2 && e2.E.kind = k1)))
      races
  in
  check "P0/P1 conflict on x reported" true
    (has ~k1:E.Data_read ~k2:E.Data_write ~loc:0);
  check "P2/P4 write-write conflict on y reported" true
    (has ~k1:E.Data_write ~k2:E.Data_write ~loc:1)

let test_same_processor_conflicts_never_race () =
  let exn =
    X.build
      [ (0, E.Data_write, 0, None, Some 1); (0, E.Data_write, 0, None, Some 2) ]
  in
  check "po orders same-processor conflicts" true (D.obeys exn)

let test_sync_ordered_conflict_is_no_race () =
  let exn =
    X.build
      [
        (0, E.Data_write, 0, None, Some 1);
        (0, E.Sync_write, 6, None, Some 1);
        (1, E.Sync_read, 6, Some 1, None);
        (1, E.Data_read, 0, Some 1, None);
      ]
  in
  check "properly synchronized" true (D.obeys exn)

let test_unsynchronized_conflict_races () =
  let exn =
    X.build
      [ (0, E.Data_write, 0, None, Some 1); (1, E.Data_read, 0, Some 1, None) ]
  in
  check "racy" false (D.obeys exn);
  check_int "exactly one race" 1 (List.length (D.races exn))

let test_sync_sync_never_races () =
  let exn =
    X.build
      [
        (0, E.Sync_rmw, 6, Some 0, Some 1);
        (1, E.Sync_rmw, 6, Some 1, Some 1);
        (2, E.Sync_write, 6, None, Some 0);
      ]
  in
  check "same-location syncs are so-ordered" true (D.obeys exn)

let test_augmentation_does_not_invent_races () =
  (* A single-processor program conflicts with nothing; the hypothetical
     initializing/final operations must not introduce races. *)
  let exn =
    X.build
      [ (0, E.Data_write, 0, None, Some 3); (0, E.Data_read, 0, Some 3, None) ]
  in
  check "no races with augmentation" true (D.obeys ~augment:true exn);
  check "none without either" true (D.obeys ~augment:false exn)

let test_augment_flag () =
  (* Reads of different locations by different processors: race-free either
     way, but the augmented execution contains the virtual processor. *)
  let report = D.check Wo_litmus.Figure2.execution_b in
  check "report execution is augmented" true
    (X.is_augmented report.D.execution)

let test_drf1_model_reports_more_races () =
  (* Release by a read-only synchronization: race-free under DRF0, racy
     under DRF1 (Section 6's point: DRF1 constrains software slightly more
     in exchange for cheaper Tests). *)
  let exn =
    X.build
      [
        (0, E.Data_write, 0, None, Some 1);
        (0, E.Sync_read, 6, Some 0, None);
        (1, E.Sync_rmw, 6, Some 0, Some 1);
        (1, E.Data_read, 0, Some 1, None);
      ]
  in
  check "DRF0 accepts" true (D.obeys exn);
  check "DRF1 rejects" false (D.obeys ~model:Wo_core.Sync_model.drf1 exn)

let test_program_obeys () =
  let sb = Wo_litmus.Litmus.figure1.Wo_litmus.Litmus.program in
  (match D.program_obeys (Wo_prog.Enumerate.executions sb) with
  | Ok () -> Alcotest.fail "figure1 is racy"
  | Error report -> check "found races" true (report.D.races <> []));
  let ds = Wo_litmus.Litmus.dekker_sync.Wo_litmus.Litmus.program in
  match D.program_obeys (Wo_prog.Enumerate.executions ds) with
  | Ok () -> ()
  | Error _ -> Alcotest.fail "dekker-sync obeys DRF0"

let test_race_endpoints_ordered () =
  List.iter
    (fun { D.e1; e2 } ->
      check "e1 precedes e2 in execution order" true (e1.E.id < e2.E.id)
      (* ids are assigned in execution order by Execution.build *))
    (D.races Wo_litmus.Figure2.execution_b)

(* Property: an execution where every operation is a synchronization
   operation is always DRF0 (same-location syncs are so-ordered; different
   locations never conflict). *)
let prop_all_sync_is_drf0 =
  let gen =
    QCheck.(
      list_of_size Gen.(1 -- 12)
        (pair (0 -- 2) (0 -- 2)))
  in
  QCheck.Test.make ~name:"all-synchronization executions obey DRF0" ~count:200
    gen (fun specs ->
      let exn =
        X.build
          (List.map
             (fun (p, loc) -> (p, E.Sync_rmw, loc, Some 0, Some 1))
             specs)
      in
      D.obeys exn)

(* Property: removing the only synchronization between two conflicting
   accesses creates a race. *)
let prop_conflicts_need_ordering =
  QCheck.Test.make ~name:"unordered cross-processor conflicts race" ~count:100
    QCheck.(pair (0 -- 2) (0 -- 2))
    (fun (l1, l2) ->
      let exn =
        X.build
          [
            (0, E.Data_write, l1, None, Some 1);
            (1, E.Data_write, l2, None, Some 2);
          ]
      in
      D.obeys exn = (l1 <> l2))

let tests =
  [
    Alcotest.test_case "figure 2(a)" `Quick test_figure2a;
    Alcotest.test_case "figure 2(b)" `Quick test_figure2b;
    Alcotest.test_case "same-processor conflicts" `Quick
      test_same_processor_conflicts_never_race;
    Alcotest.test_case "synchronized conflict" `Quick
      test_sync_ordered_conflict_is_no_race;
    Alcotest.test_case "unsynchronized conflict" `Quick
      test_unsynchronized_conflict_races;
    Alcotest.test_case "sync-sync pairs" `Quick test_sync_sync_never_races;
    Alcotest.test_case "augmentation invents no races" `Quick
      test_augmentation_does_not_invent_races;
    Alcotest.test_case "check reports augmented execution" `Quick
      test_augment_flag;
    Alcotest.test_case "DRF1 is stricter on software" `Quick
      test_drf1_model_reports_more_races;
    Alcotest.test_case "program_obeys over enumeration" `Quick
      test_program_obeys;
    Alcotest.test_case "race endpoints ordered" `Quick
      test_race_endpoints_ordered;
    QCheck_alcotest.to_alcotest prop_all_sync_is_drf0;
    QCheck_alcotest.to_alcotest prop_conflicts_need_ordering;
  ]
