(* Tests for the interconnect substrate: latency models, the general
   network (reordering!), the serializing bus. *)

module Engine = Wo_sim.Engine
module Rng = Wo_sim.Rng
module L = Wo_interconnect.Latency
module Net = Wo_interconnect.Network
module Bus = Wo_interconnect.Bus
module F = Wo_interconnect.Fabric

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let test_latency_fixed () =
  check_int "fixed" 7 (L.fixed 7 ~src:0 ~dst:1)

let test_latency_jittered_range () =
  let rng = Rng.make 5 in
  let lat = L.jittered rng ~base:3 ~jitter:4 in
  for _ = 1 to 100 do
    let d = lat ~src:0 ~dst:1 in
    check "within [base, base+jitter]" true (d >= 3 && d <= 7)
  done

let test_latency_scale_nodes () =
  let inner = L.fixed 2 in
  let lat = L.scale_nodes [ (1, 10) ] inner in
  check_int "to slow node" 20 (lat ~src:0 ~dst:1);
  check_int "from slow node" 20 (lat ~src:1 ~dst:0);
  check_int "unaffected" 2 (lat ~src:0 ~dst:2)

let test_latency_scale_routes () =
  let lat = L.scale_routes [ ((0, 1), 10) ] (L.fixed 2) in
  check_int "slowed route" 20 (lat ~src:0 ~dst:1);
  check_int "reverse direction untouched" 2 (lat ~src:1 ~dst:0);
  check_int "other routes untouched" 2 (lat ~src:0 ~dst:2)

let test_network_delivery () =
  let engine = Engine.create () in
  let net = Net.create ~engine ~latency:(L.fixed 4) () in
  let received = ref [] in
  Net.connect net ~node:1 (fun msg -> received := (msg, Engine.now engine) :: !received);
  Net.send net ~src:0 ~dst:1 "hello";
  ignore (Engine.run engine);
  (match !received with
  | [ ("hello", t) ] -> check_int "arrives after latency" 4 t
  | _ -> Alcotest.fail "expected one delivery");
  check_int "messages counted" 1 (Net.messages_sent net)

let test_network_fixed_is_fifo () =
  let engine = Engine.create () in
  let net = Net.create ~engine ~latency:(L.fixed 3) () in
  let received = ref [] in
  Net.connect net ~node:1 (fun msg -> received := msg :: !received);
  List.iter (fun m -> Net.send net ~src:0 ~dst:1 m) [ 1; 2; 3; 4 ];
  ignore (Engine.run engine);
  Alcotest.(check (list int)) "in order with fixed latency" [ 1; 2; 3; 4 ]
    (List.rev !received)

let test_network_jitter_reorders () =
  (* With jitter, some seed delivers two back-to-back messages out of
     order — the property Figure 1's network configurations exploit. *)
  let reordered = ref false in
  let seed = ref 0 in
  while (not !reordered) && !seed < 100 do
    incr seed;
    let engine = Engine.create () in
    let rng = Rng.make !seed in
    let net = Net.create ~engine ~latency:(L.jittered rng ~base:1 ~jitter:10) () in
    let received = ref [] in
    Net.connect net ~node:1 (fun msg -> received := msg :: !received);
    Net.send net ~src:0 ~dst:1 "first";
    Net.send net ~src:0 ~dst:1 "second";
    ignore (Engine.run engine);
    if List.rev !received = [ "second"; "first" ] then reordered := true
  done;
  check "some seed reorders" true !reordered

let test_network_min_latency_one () =
  let engine = Engine.create () in
  let net = Net.create ~engine ~latency:(L.fixed 0) () in
  let at = ref (-1) in
  Net.connect net ~node:1 (fun () -> at := Engine.now engine);
  Net.send net ~src:0 ~dst:1 ();
  ignore (Engine.run engine);
  check_int "latency clamped to 1" 1 !at

let test_bus_serializes () =
  let engine = Engine.create () in
  let bus = Bus.create ~engine ~transfer_cycles:3 () in
  let times = ref [] in
  Bus.connect bus ~node:1 (fun m -> times := (m, Engine.now engine) :: !times);
  Bus.connect bus ~node:2 (fun m -> times := (m, Engine.now engine) :: !times);
  Bus.send bus ~src:0 ~dst:1 "a";
  Bus.send bus ~src:0 ~dst:2 "b";
  Bus.send bus ~src:3 ~dst:1 "c";
  ignore (Engine.run engine);
  Alcotest.(check (list (pair string int)))
    "one transfer per slot, in request order"
    [ ("a", 3); ("b", 6); ("c", 9) ]
    (List.rev !times);
  check "idle afterwards" false (Bus.busy bus);
  check_int "counted" 3 (Bus.messages_sent bus)

let test_bus_restarts_after_idle () =
  let engine = Engine.create () in
  let bus = Bus.create ~engine ~transfer_cycles:2 () in
  let got = ref 0 in
  Bus.connect bus ~node:1 (fun () -> incr got);
  Bus.send bus ~src:0 ~dst:1 ();
  ignore (Engine.run engine);
  Bus.send bus ~src:0 ~dst:1 ();
  ignore (Engine.run engine);
  check_int "both delivered" 2 !got

let test_fabric_wrappers () =
  let engine = Engine.create () in
  let net = Net.create ~engine ~latency:(L.fixed 2) () in
  let f = F.of_network net in
  let got = ref false in
  f.F.connect ~node:4 (function "m" -> got := true | _ -> ());
  f.F.send ~src:0 ~dst:4 "m";
  ignore (Engine.run engine);
  check "delivered through fabric" true !got;
  check_int "sent count" 1 (f.F.messages_sent ())

let test_unconnected_node_error () =
  let engine = Engine.create () in
  let net = Net.create ~engine ~latency:(L.fixed 1) () in
  Net.send net ~src:0 ~dst:9 "x";
  check "delivery to unconnected node raises" true
    (try
       ignore (Engine.run engine);
       false
     with Invalid_argument _ -> true)

let tests =
  [
    Alcotest.test_case "fixed latency" `Quick test_latency_fixed;
    Alcotest.test_case "jittered range" `Quick test_latency_jittered_range;
    Alcotest.test_case "scale_nodes" `Quick test_latency_scale_nodes;
    Alcotest.test_case "scale_routes" `Quick test_latency_scale_routes;
    Alcotest.test_case "network delivery" `Quick test_network_delivery;
    Alcotest.test_case "fixed latency keeps FIFO" `Quick
      test_network_fixed_is_fifo;
    Alcotest.test_case "jitter reorders" `Quick test_network_jitter_reorders;
    Alcotest.test_case "minimum latency" `Quick test_network_min_latency_one;
    Alcotest.test_case "bus serializes" `Quick test_bus_serializes;
    Alcotest.test_case "bus restarts" `Quick test_bus_restarts_after_idle;
    Alcotest.test_case "fabric wrappers" `Quick test_fabric_wrappers;
    Alcotest.test_case "unconnected node" `Quick test_unconnected_node_error;
  ]
