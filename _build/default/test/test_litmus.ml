(* Tests for the litmus library and harness: the declared DRF0 flags are
   verified mechanically, loop flags are accurate, and the runner's
   verdicts make sense. *)

module L = Wo_litmus.Litmus
module R = Wo_litmus.Runner
module D = Wo_race.Detector

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let test_drf0_flags_verified_by_enumeration () =
  List.iter
    (fun (t : L.t) ->
      if not t.L.loops then
        let verdict = Wo_prog.Enumerate.check_drf0 t.L.program = Ok () in
        check (t.L.name ^ " drf0 flag") t.L.drf0 verdict)
    L.all

let test_drf0_flags_verified_by_sampling () =
  (* Loop-bearing tests cannot be enumerated; sample schedules with the
     dynamic detector instead. *)
  List.iter
    (fun (t : L.t) ->
      if t.L.loops then begin
        let races =
          D.sample_program ~schedules:15
            ~run:(fun ~seed ->
              Wo_prog.Interp.execution
                (Wo_prog.Interp.run_random ~seed t.L.program))
            ()
        in
        check (t.L.name ^ " sampled race-free") t.L.drf0 (races = [])
      end)
    L.all

let test_loop_flags_accurate () =
  List.iter
    (fun (t : L.t) ->
      check (t.L.name ^ " loops flag") t.L.loops
        (Wo_prog.Program.has_loops t.L.program))
    L.all

let test_names_unique_and_findable () =
  let names = List.map (fun (t : L.t) -> t.L.name) L.all in
  check "unique" true (List.length (List.sort_uniq compare names) = List.length names);
  List.iter (fun n -> check ("find " ^ n) true (L.find n <> None)) names;
  check "unknown" true (L.find "no-such-test" = None)

let test_interesting_predicates_match_sc_expectations () =
  (* Named "interesting" outcomes of loop-free racy tests must be outside
     the SC set (that is what makes them interesting). *)
  List.iter
    (fun (t : L.t) ->
      if (not t.L.loops) && not t.L.drf0 then
        let sc = Wo_prog.Enumerate.outcomes t.L.program in
        List.iter
          (fun (name, pred) ->
            (* coherence's lost-own-write is SC-impossible too, like the
               others; assert none of the named outcomes are enumerated *)
            check
              (t.L.name ^ "." ^ name ^ " outside SC set")
              false
              (List.exists pred sc))
          t.L.interesting)
    [ L.figure1; L.message_passing; L.iriw; L.coherence ]

let test_runner_on_sc_machine () =
  let rep = R.run ~runs:30 Wo_machines.Presets.sc_dir L.figure1 in
  check "appears SC" true (R.appears_sc rep);
  check "sc outcomes enumerated" true (rep.R.sc_outcomes <> []);
  check_int "all runs counted" 30
    (List.fold_left (fun acc (_, n) -> acc + n) 0 rep.R.histogram);
  check "cycles accumulated" true (rep.R.total_cycles > 0)

let test_runner_catches_violations () =
  let rep = R.run ~runs:30 Wo_machines.Presets.bus_nocache_wb L.figure1 in
  check "violations found" false (R.appears_sc rep);
  check "violation multiplicity recorded" true
    (List.exists (fun (_, n) -> n > 0) rep.R.violations)

let test_runner_loops_use_lemma1 () =
  let rep = R.run ~runs:10 Wo_machines.Presets.wo_new L.message_passing_sync in
  check "no SC set for loop tests" true (rep.R.sc_outcomes = []);
  check "lemma1 clean" true (rep.R.lemma1_failures = 0);
  check "appears SC" true (R.appears_sc rep)

let test_figure3_parameters () =
  let t = L.figure3_scenario ~work_before_unset:5 ~work_after_unset:7 ~consumer_delay:3 () in
  check "still DRF0 by sampling" true
    (D.sample_program ~schedules:10
       ~run:(fun ~seed ->
         Wo_prog.Interp.execution (Wo_prog.Interp.run_random ~seed t.L.program))
       ()
    = []);
  check "has the stale-x predicate" true
    (List.mem_assoc "stale-x" t.L.interesting)

let test_sync_chain_scenario_delay () =
  let t = L.sync_chain_scenario ~observer_delay:10 () in
  check "still loop-free" false t.L.loops;
  check "still DRF0" true (Wo_prog.Enumerate.check_drf0 t.L.program = Ok ())

let test_random_racy_enumerable () =
  for seed = 1 to 10 do
    let p = Wo_litmus.Random_prog.racy ~seed () in
    check "loop free" false (Wo_prog.Program.has_loops p);
    check "has outcomes" true (Wo_prog.Enumerate.outcomes p <> [])
  done

let test_random_lock_disciplined_structure () =
  for seed = 1 to 5 do
    let p = Wo_litmus.Random_prog.lock_disciplined ~seed () in
    check "has loops (spin locks)" true (Wo_prog.Program.has_loops p);
    check "observable restricted" true
      (p.Wo_prog.Program.observable <> None)
  done

let tests =
  [
    Alcotest.test_case "drf0 flags by enumeration" `Quick
      test_drf0_flags_verified_by_enumeration;
    Alcotest.test_case "drf0 flags by sampling" `Quick
      test_drf0_flags_verified_by_sampling;
    Alcotest.test_case "loop flags" `Quick test_loop_flags_accurate;
    Alcotest.test_case "names" `Quick test_names_unique_and_findable;
    Alcotest.test_case "interesting outcomes outside SC" `Quick
      test_interesting_predicates_match_sc_expectations;
    Alcotest.test_case "runner on SC machine" `Quick test_runner_on_sc_machine;
    Alcotest.test_case "runner catches violations" `Quick
      test_runner_catches_violations;
    Alcotest.test_case "runner with loops" `Quick test_runner_loops_use_lemma1;
    Alcotest.test_case "figure3 parameters" `Quick test_figure3_parameters;
    Alcotest.test_case "sync-chain scenario" `Quick test_sync_chain_scenario_delay;
    Alcotest.test_case "random racy programs" `Quick test_random_racy_enumerable;
    Alcotest.test_case "random lock programs" `Quick
      test_random_lock_disciplined_structure;
  ]
