(* Tests for Wo_core.Happens_before, including the paper's example chain
   and the DRF1 refinement of Section 6. *)

module E = Wo_core.Event
module X = Wo_core.Execution
module H = Wo_core.Happens_before
module R = Wo_core.Relation

let check = Alcotest.(check bool)

(* The paper's chain:
   op(P1,x) -po- S(P1,s) -so- S(P2,s) -po- S(P2,t) -so- S(P3,t) -po- op(P3,x)
   (processors renumbered from 0). *)
let chain =
  X.build
    [
      (0, E.Data_write, 0, None, Some 1);   (* 0: op(P0,x) *)
      (0, E.Sync_rmw, 6, Some 0, Some 1);   (* 1: S(P0,s) *)
      (1, E.Sync_rmw, 6, Some 1, Some 2);   (* 2: S(P1,s) *)
      (1, E.Sync_rmw, 7, Some 0, Some 1);   (* 3: S(P1,t) *)
      (2, E.Sync_rmw, 7, Some 1, Some 2);   (* 4: S(P2,t) *)
      (2, E.Data_read, 0, Some 1, None);    (* 5: op(P2,x) *)
    ]

let test_paper_chain () =
  let hb = H.of_execution chain in
  check "op(P0,x) hb op(P2,x)" true (H.ordered hb 0 5);
  check "not ordered the other way" false (H.ordered hb 5 0);
  check "orders sees both directions" true (H.orders hb 0 5)

let test_no_ordering_without_sync () =
  let exn =
    X.build
      [
        (0, E.Data_write, 0, None, Some 1);
        (1, E.Data_read, 0, Some 1, None);
      ]
  in
  let hb = H.of_execution exn in
  check "conflicting accesses unordered without synchronization" false
    (H.orders hb 0 1)

let test_po_is_in_hb () =
  let hb = H.of_execution chain in
  check "po pairs included" true (H.ordered hb 0 1);
  check "po transitively" true (H.ordered hb 2 3)

let test_partial_order () =
  check "hb of an execution is a partial order" true
    (H.is_partial_order (H.of_execution chain))

let test_of_relations_cycle () =
  let po = R.of_list [ (0, 1) ] and so = R.of_list [ (1, 0) ] in
  check "cyclic union is not a partial order" false
    (H.is_partial_order (H.of_relations ~po ~so))

(* DRF1 (Section 6): a read-only synchronization operation cannot order
   the issuing processor's previous accesses for other processors. *)
let release_by_test =
  X.build
    [
      (0, E.Data_write, 0, None, Some 1);   (* 0: W(P0,x) *)
      (0, E.Sync_read, 6, Some 0, None);    (* 1: Test(P0,s) -- not a release *)
      (1, E.Sync_rmw, 6, Some 0, Some 1);   (* 2: TAS(P1,s) *)
      (1, E.Data_read, 0, Some 1, None);    (* 3: R(P1,x) *)
    ]

let test_drf1_read_only_sync_is_not_a_release () =
  let drf0 = H.of_execution release_by_test in
  let drf1 = H.of_execution_drf1 release_by_test in
  check "DRF0 orders through the Test" true (H.ordered drf0 0 3);
  check "DRF1 does not" false (H.ordered drf1 0 3)

let release_by_unset =
  X.build
    [
      (0, E.Data_write, 0, None, Some 1);   (* 0 *)
      (0, E.Sync_write, 6, None, Some 1);   (* 1: Unset-like release *)
      (1, E.Sync_read, 6, Some 1, None);    (* 2: Test acquire *)
      (1, E.Data_read, 0, Some 1, None);    (* 3 *)
    ]

let test_drf1_write_to_read_is_an_edge () =
  let drf1 = H.of_execution_drf1 release_by_unset in
  check "release->acquire ordered under DRF1" true (H.ordered drf1 0 3)

let test_drf1_chain_through_intermediate_read () =
  (* Dropping an intermediate read-only synchronization must not break the
     write->...->read chain between the releases around it. *)
  let exn =
    X.build
      [
        (0, E.Sync_write, 6, None, Some 1);  (* 0: release *)
        (1, E.Sync_read, 6, Some 1, None);   (* 1: read-only in between *)
        (2, E.Sync_read, 6, Some 1, None);   (* 2: acquire *)
      ]
  in
  let drf1 = H.of_execution_drf1 exn in
  check "release reaches later acquire past the intermediate read" true
    (H.ordered drf1 0 2)

let test_drf1_subset_of_drf0 () =
  List.iter
    (fun exn ->
      let d0 = H.relation (H.of_execution exn) in
      let d1 = H.relation (H.of_execution_drf1 exn) in
      check "drf1 hb is a subset of drf0 hb" true
        (List.for_all (fun (a, b) -> R.mem a b d0) (R.pairs d1)))
    [ chain; release_by_test; release_by_unset ]

let test_last_write_before () =
  let hb = H.of_execution chain in
  let read = X.find chain 5 in
  (match H.last_write_before hb ~events:(X.events chain) read with
  | Some w -> Alcotest.(check int) "the write of x" 0 w.E.id
  | None -> Alcotest.fail "expected a last write");
  (* no write before event 0 *)
  let w0 = X.find chain 0 in
  check "no write before the first write" true
    (H.last_write_before hb ~events:(X.events chain) w0 = None)

(* Property: hb of any idealized execution of a random program is a strict
   partial order, and contains program order. *)
let arbitrary_execution =
  QCheck.(
    map
      (fun seed ->
        let program = Wo_litmus.Random_prog.racy ~seed ~procs:3 ~ops_per_proc:4 () in
        Wo_prog.Interp.execution (Wo_prog.Interp.run_random ~seed program))
      small_int)

let prop_hb_partial_order =
  QCheck.Test.make ~name:"hb of idealized executions is a partial order"
    ~count:100 arbitrary_execution (fun exn ->
      H.is_partial_order (H.of_execution exn))

let prop_hb_contains_po =
  QCheck.Test.make ~name:"hb contains program order" ~count:100
    arbitrary_execution (fun exn ->
      let hb = H.of_execution exn in
      List.for_all
        (fun (a, b) -> H.ordered hb a b)
        (R.pairs (X.program_order exn)))

let tests =
  [
    Alcotest.test_case "the paper's hb chain" `Quick test_paper_chain;
    Alcotest.test_case "no ordering without sync" `Quick
      test_no_ordering_without_sync;
    Alcotest.test_case "po included" `Quick test_po_is_in_hb;
    Alcotest.test_case "partial order" `Quick test_partial_order;
    Alcotest.test_case "cyclic relations detected" `Quick test_of_relations_cycle;
    Alcotest.test_case "drf1: Test is not a release" `Quick
      test_drf1_read_only_sync_is_not_a_release;
    Alcotest.test_case "drf1: Unset->Test is an edge" `Quick
      test_drf1_write_to_read_is_an_edge;
    Alcotest.test_case "drf1: chains survive intermediate reads" `Quick
      test_drf1_chain_through_intermediate_read;
    Alcotest.test_case "drf1 hb subset of drf0 hb" `Quick test_drf1_subset_of_drf0;
    Alcotest.test_case "last_write_before" `Quick test_last_write_before;
    QCheck_alcotest.to_alcotest prop_hb_partial_order;
    QCheck_alcotest.to_alcotest prop_hb_contains_po;
  ]
