(* Tests for the Lemma-1 oracle (Appendix A). *)

module E = Wo_core.Event
module L = Wo_core.Lemma1
module R = Wo_core.Relation

let check = Alcotest.(check bool)

let mk ~id ~proc ~seq kind loc ?rv ?wv () =
  E.make ~id ~proc ~seq ~kind ~loc ?read_value:rv ?written_value:wv ()

(* Synchronized handoff: W(x)=1; Su(s)=1 || Test(s)=1; R(x)=1. *)
let good_events =
  [
    mk ~id:0 ~proc:0 ~seq:0 E.Data_write 0 ~wv:1 ();
    mk ~id:1 ~proc:0 ~seq:1 E.Sync_write 6 ~wv:1 ();
    mk ~id:2 ~proc:1 ~seq:0 E.Sync_read 6 ~rv:1 ();
    mk ~id:3 ~proc:1 ~seq:1 E.Data_read 0 ~rv:1 ();
  ]

let po = R.of_list [ (0, 1); (2, 3) ]
let so = R.of_list [ (1, 2) ]

let test_good_trace_passes () =
  match L.check ~events:good_events ~po ~so () with
  | Ok () -> ()
  | Error vs ->
    Alcotest.fail
      (Format.asprintf "unexpected violations: %a"
         (Format.pp_print_list L.pp_violation)
         vs)

let test_stale_read_detected () =
  let bad =
    List.map
      (fun (e : E.t) ->
        if e.E.id = 3 then
          mk ~id:3 ~proc:1 ~seq:1 E.Data_read 0 ~rv:0 () (* stale! *)
        else e)
      good_events
  in
  match L.check ~events:bad ~po ~so () with
  | Ok () -> Alcotest.fail "stale read should fail"
  | Error vs ->
    check "read-not-last-write reported" true
      (List.exists
         (function
           | L.Read_not_last_write { expected = 1; got = 0; _ } -> true
           | _ -> false)
         vs)

let test_unordered_conflict_detected () =
  let events =
    [
      mk ~id:0 ~proc:0 ~seq:0 E.Data_write 0 ~wv:1 ();
      mk ~id:1 ~proc:1 ~seq:0 E.Data_read 0 ~rv:1 ();
    ]
  in
  match L.check ~events ~po:R.empty ~so:R.empty () with
  | Ok () -> Alcotest.fail "race should fail"
  | Error vs ->
    check "unordered conflict reported" true
      (List.exists
         (function L.Unordered_conflict _ -> true | _ -> false)
         vs)

let test_cyclic_orders_detected () =
  let events =
    [
      mk ~id:0 ~proc:0 ~seq:0 E.Sync_write 6 ~wv:1 ();
      mk ~id:1 ~proc:1 ~seq:0 E.Sync_write 6 ~wv:2 ();
    ]
  in
  let cyclic_so = R.of_list [ (0, 1); (1, 0) ] in
  match L.check ~events ~po:R.empty ~so:cyclic_so () with
  | Error [ L.Cyclic_orders ] -> ()
  | Ok () | Error _ -> Alcotest.fail "expected Cyclic_orders"

let test_init_respected () =
  let events = [ mk ~id:0 ~proc:0 ~seq:0 E.Data_read 0 ~rv:7 () ] in
  (match L.check ~events ~po:R.empty ~so:R.empty () with
  | Ok () -> Alcotest.fail "initial value defaults to 0"
  | Error _ -> ());
  match L.check ~init:(fun _ -> 7) ~events ~po:R.empty ~so:R.empty () with
  | Ok () -> ()
  | Error _ -> Alcotest.fail "custom initial value should pass"

let test_check_execution_idealized () =
  (* Every idealized execution of a DRF0 program satisfies Lemma 1. *)
  let program = Wo_litmus.Litmus.dekker_sync.Wo_litmus.Litmus.program in
  for seed = 1 to 10 do
    let exn =
      Wo_prog.Interp.execution (Wo_prog.Interp.run_random ~seed program)
    in
    match L.check_execution exn with
    | Ok () -> ()
    | Error vs ->
      Alcotest.fail
        (Format.asprintf "seed %d: %a" seed
           (Format.pp_print_list L.pp_violation)
           vs)
  done

let test_machine_traces_of_drf0_program () =
  (* The oracle accepts wo-new traces of a DRF0 litmus and rejects a
     doctored trace. *)
  let t = Wo_litmus.Litmus.message_passing_sync in
  let r =
    Wo_machines.Machine.run Wo_machines.Presets.wo_new ~seed:5
      t.Wo_litmus.Litmus.program
  in
  (match Wo_machines.Machine.check_lemma1 r with
  | Ok () -> ()
  | Error _ -> Alcotest.fail "wo-new trace should satisfy Lemma 1")

let prop_ideal_drf0_traces_pass =
  QCheck.Test.make ~name:"lemma1 holds on idealized DRF0 executions"
    ~count:40 QCheck.small_int (fun seed ->
      let program =
        Wo_litmus.Random_prog.lock_disciplined ~seed ~procs:2
          ~sections_per_proc:2 ()
      in
      let exn =
        Wo_prog.Interp.execution (Wo_prog.Interp.run_random ~seed program)
      in
      L.check_execution exn = Ok ())

let tests =
  [
    Alcotest.test_case "good trace passes" `Quick test_good_trace_passes;
    Alcotest.test_case "stale read detected" `Quick test_stale_read_detected;
    Alcotest.test_case "unordered conflict detected" `Quick
      test_unordered_conflict_detected;
    Alcotest.test_case "cyclic orders detected" `Quick
      test_cyclic_orders_detected;
    Alcotest.test_case "initial values" `Quick test_init_respected;
    Alcotest.test_case "idealized executions pass" `Quick
      test_check_execution_idealized;
    Alcotest.test_case "machine traces pass" `Quick
      test_machine_traces_of_drf0_program;
    QCheck_alcotest.to_alcotest prop_ideal_drf0_traces_pass;
  ]
