(* Tests for Wo_core.Relation: the relational substrate under
   happens-before. *)

module R = Wo_core.Relation

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let chain = R.of_list [ (1, 2); (2, 3); (3, 4) ]
let diamond = R.of_list [ (1, 2); (1, 3); (2, 4); (3, 4) ]
let cycle = R.of_list [ (1, 2); (2, 3); (3, 1) ]

let test_empty () =
  check "empty has no pairs" true (R.is_empty R.empty);
  check_int "cardinal" 0 (R.cardinal R.empty);
  check "acyclic" true (R.is_acyclic R.empty);
  check "irreflexive" true (R.is_irreflexive R.empty);
  check "transitive" true (R.is_transitive R.empty)

let test_add_mem () =
  let r = R.add 1 2 R.empty in
  check "mem added" true (R.mem 1 2 r);
  check "not mem reverse" false (R.mem 2 1 r);
  check "not mem absent" false (R.mem 1 3 r);
  check_int "cardinal" 1 (R.cardinal r);
  let r2 = R.add 1 2 r in
  check_int "add is idempotent" 1 (R.cardinal r2)

let test_of_list_pairs () =
  Alcotest.(check (list (pair int int)))
    "pairs sorted"
    [ (1, 2); (2, 3); (3, 4) ]
    (R.pairs chain)

let test_union () =
  let u = R.union chain (R.of_list [ (4, 5) ]) in
  check "left pair" true (R.mem 1 2 u);
  check "right pair" true (R.mem 4 5 u);
  check_int "cardinal" 4 (R.cardinal u)

let test_successors_nodes () =
  Alcotest.(check (list int)) "successors" [ 2; 3 ] (R.successors 1 diamond);
  Alcotest.(check (list int)) "nodes" [ 1; 2; 3; 4 ] (R.nodes diamond);
  Alcotest.(check (list int)) "no successors" [] (R.successors 4 diamond)

let test_transitive_closure_chain () =
  let tc = R.transitive_closure chain in
  check "1->4 in closure" true (R.mem 1 4 tc);
  check "1->3 in closure" true (R.mem 1 3 tc);
  check "no reverse" false (R.mem 4 1 tc);
  check_int "cardinal 3+2+1" 6 (R.cardinal tc);
  check "closure transitive" true (R.is_transitive tc)

let test_transitive_closure_cycle () =
  let tc = R.transitive_closure cycle in
  check "cycle closure reflexive" false (R.is_irreflexive tc);
  check "1->1" true (R.mem 1 1 tc)

let test_reachable () =
  Alcotest.(check (list int)) "reachable from 1" [ 2; 3; 4 ]
    (R.reachable 1 diamond);
  Alcotest.(check (list int)) "reachable from 4" [] (R.reachable 4 diamond)

let test_acyclicity () =
  check "chain acyclic" true (R.is_acyclic chain);
  check "diamond acyclic" true (R.is_acyclic diamond);
  check "cycle cyclic" false (R.is_acyclic cycle);
  check "self loop cyclic" false (R.is_acyclic (R.of_list [ (1, 1) ]))

let test_restrict () =
  let r = R.restrict ~keep:(fun n -> n <> 3) diamond in
  check "kept" true (R.mem 1 2 r);
  check "dropped src" false (R.mem 3 4 r);
  check "dropped dst" false (R.mem 1 3 r)

let test_topological_sort () =
  (match R.topological_sort ~nodes:[ 1; 2; 3; 4 ] chain with
  | Some order -> Alcotest.(check (list int)) "chain order" [ 1; 2; 3; 4 ] order
  | None -> Alcotest.fail "chain should sort");
  (match R.topological_sort ~nodes:[ 1; 2; 3 ] cycle with
  | Some _ -> Alcotest.fail "cycle should not sort"
  | None -> ());
  (* deterministic tie-break: ascending ids *)
  match R.topological_sort ~nodes:[ 3; 1; 2 ] R.empty with
  | Some order -> Alcotest.(check (list int)) "tie-break" [ 1; 2; 3 ] order
  | None -> Alcotest.fail "unconstrained should sort"

let test_linearizations () =
  check_int "antichain of 3 has 6 linearizations" 6
    (List.length (R.linearizations ~nodes:[ 1; 2; 3 ] R.empty));
  check_int "chain has 1" 1
    (List.length (R.linearizations ~nodes:[ 1; 2; 3; 4 ] chain));
  check_int "diamond has 2" 2
    (List.length (R.linearizations ~nodes:[ 1; 2; 3; 4 ] diamond));
  check_int "cycle has none" 0
    (List.length (R.linearizations ~nodes:[ 1; 2; 3 ] cycle));
  check_int "limit respected" 2
    (List.length (R.linearizations ~limit:2 ~nodes:[ 1; 2; 3 ] R.empty))

let test_consistent () =
  check "chain consistent with extension" true
    (R.consistent chain (R.of_list [ (1, 4) ]));
  check "inconsistent with reversal" false
    (R.consistent chain (R.of_list [ (4, 1) ]))

(* --- properties ------------------------------------------------------------ *)

let arbitrary_relation =
  QCheck.(
    map
      (fun pairs -> R.of_list pairs)
      (list_of_size Gen.(0 -- 12) (pair (0 -- 7) (0 -- 7))))

let prop_closure_idempotent =
  QCheck.Test.make ~name:"transitive closure is idempotent" ~count:200
    arbitrary_relation (fun r ->
      let tc = R.transitive_closure r in
      R.equal tc (R.transitive_closure tc))

let prop_closure_transitive =
  QCheck.Test.make ~name:"transitive closure is transitive" ~count:200
    arbitrary_relation (fun r -> R.is_transitive (R.transitive_closure r))

let prop_closure_contains =
  QCheck.Test.make ~name:"closure contains the relation" ~count:200
    arbitrary_relation (fun r ->
      List.for_all (fun (a, b) -> R.mem a b (R.transitive_closure r)) (R.pairs r))

let prop_topo_respects_pairs =
  QCheck.Test.make ~name:"topological sort respects every pair" ~count:200
    arbitrary_relation (fun r ->
      let nodes = R.nodes r in
      match R.topological_sort ~nodes r with
      | None -> not (R.is_acyclic r)
      | Some order ->
        let index n =
          let rec go i = function
            | [] -> -1
            | x :: rest -> if x = n then i else go (i + 1) rest
          in
          go 0 order
        in
        List.for_all (fun (a, b) -> index a < index b) (R.pairs r))

let prop_acyclic_iff_topo =
  QCheck.Test.make ~name:"acyclic iff sortable" ~count:200 arbitrary_relation
    (fun r ->
      let sortable = R.topological_sort ~nodes:(R.nodes r) r <> None in
      sortable = R.is_acyclic r)

(* --- dense bitset representation ------------------------------------------ *)

let test_dense_round_trip () =
  List.iter
    (fun r ->
      check "round trip" true (R.equal r R.Dense.(to_sparse (of_sparse r))))
    [ R.empty; chain; diamond; cycle ]

let test_dense_mem () =
  let m = R.Dense.of_sparse diamond in
  check "mem present" true (R.Dense.mem 1 2 m);
  check "mem absent" false (R.Dense.mem 2 1 m);
  check "mem outside universe" false (R.Dense.mem 1 99 m);
  Alcotest.(check int) "size" 4 (R.Dense.size m)

let test_dense_closure () =
  let tc = R.Dense.(to_sparse (transitive_closure (of_sparse chain))) in
  check "1->4 in dense closure" true (R.mem 1 4 tc);
  check "no reverse" false (R.mem 4 1 tc);
  check_int "cardinal 3+2+1" 6 (R.cardinal tc);
  check "dense acyclic chain" true (R.Dense.is_acyclic (R.Dense.of_sparse chain));
  check "dense cyclic cycle" false (R.Dense.is_acyclic (R.Dense.of_sparse cycle));
  Alcotest.(check (list int))
    "dense reachable" [ 2; 3; 4 ]
    (R.Dense.reachable 1 (R.Dense.of_sparse diamond))

(* A relation wide enough that ids span several 64-bit words per row, so
   the word-level union paths are exercised. *)
let arbitrary_wide_relation =
  QCheck.(
    map
      (fun pairs -> R.of_list pairs)
      (list_of_size Gen.(0 -- 80) (pair (0 -- 150) (0 -- 150))))

(* Independent oracle: reachability on a boolean matrix, no bitsets. *)
let closure_oracle r =
  let nodes = Array.of_list (R.nodes r) in
  let n = Array.length nodes in
  let idx id =
    let rec go i = if nodes.(i) = id then i else go (i + 1) in
    go 0
  in
  let m = Array.make_matrix n n false in
  List.iter (fun (a, b) -> m.(idx a).(idx b) <- true) (R.pairs r);
  for k = 0 to n - 1 do
    for i = 0 to n - 1 do
      if m.(i).(k) then
        for j = 0 to n - 1 do
          if m.(k).(j) then m.(i).(j) <- true
        done
    done
  done;
  let out = ref [] in
  for i = 0 to n - 1 do
    for j = 0 to n - 1 do
      if m.(i).(j) then out := (nodes.(i), nodes.(j)) :: !out
    done
  done;
  R.of_list !out

let prop_dense_closure_agrees arb name =
  QCheck.Test.make ~name ~count:200 arb (fun r ->
      let dense = R.Dense.(to_sparse (transitive_closure (of_sparse r))) in
      R.equal dense (closure_oracle r))

let prop_dense_closure_small =
  prop_dense_closure_agrees arbitrary_relation
    "dense closure agrees with the matrix oracle (small)"

let prop_dense_closure_wide =
  prop_dense_closure_agrees arbitrary_wide_relation
    "dense closure agrees with the matrix oracle (multi-word rows)"

let prop_dense_matches_sparse_closure =
  QCheck.Test.make
    ~name:"dense and sparse transitive closures agree" ~count:200
    arbitrary_relation (fun r ->
      (* below the dispatch threshold [transitive_closure] takes the sparse
         DFS path, so this cross-checks the two implementations *)
      R.equal
        (R.transitive_closure r)
        R.Dense.(to_sparse (transitive_closure (of_sparse r))))

let prop_dense_acyclicity_agrees =
  QCheck.Test.make ~name:"dense and sparse acyclicity agree" ~count:200
    arbitrary_wide_relation (fun r ->
      R.Dense.is_acyclic (R.Dense.of_sparse r) = R.is_acyclic r)

let prop_dense_mem_agrees =
  QCheck.Test.make ~name:"dense mem agrees with sparse mem" ~count:200
    arbitrary_wide_relation (fun r ->
      let m = R.Dense.of_sparse r in
      List.for_all
        (fun a ->
          List.for_all (fun b -> R.Dense.mem a b m = R.mem a b r) (R.nodes r))
        (R.nodes r))

let prop_dense_round_trip =
  QCheck.Test.make ~name:"dense round trip preserves the relation" ~count:200
    arbitrary_wide_relation (fun r ->
      R.equal r R.Dense.(to_sparse (of_sparse r)))

let tests =
  [
    Alcotest.test_case "empty" `Quick test_empty;
    Alcotest.test_case "add and mem" `Quick test_add_mem;
    Alcotest.test_case "of_list / pairs" `Quick test_of_list_pairs;
    Alcotest.test_case "union" `Quick test_union;
    Alcotest.test_case "successors and nodes" `Quick test_successors_nodes;
    Alcotest.test_case "closure of a chain" `Quick test_transitive_closure_chain;
    Alcotest.test_case "closure of a cycle" `Quick test_transitive_closure_cycle;
    Alcotest.test_case "reachable" `Quick test_reachable;
    Alcotest.test_case "acyclicity" `Quick test_acyclicity;
    Alcotest.test_case "restrict" `Quick test_restrict;
    Alcotest.test_case "topological sort" `Quick test_topological_sort;
    Alcotest.test_case "linearizations" `Quick test_linearizations;
    Alcotest.test_case "consistent" `Quick test_consistent;
    Alcotest.test_case "dense round trip" `Quick test_dense_round_trip;
    Alcotest.test_case "dense mem" `Quick test_dense_mem;
    Alcotest.test_case "dense closure" `Quick test_dense_closure;
    QCheck_alcotest.to_alcotest prop_dense_closure_small;
    QCheck_alcotest.to_alcotest prop_dense_closure_wide;
    QCheck_alcotest.to_alcotest prop_dense_matches_sparse_closure;
    QCheck_alcotest.to_alcotest prop_dense_acyclicity_agrees;
    QCheck_alcotest.to_alcotest prop_dense_mem_agrees;
    QCheck_alcotest.to_alcotest prop_dense_round_trip;
    QCheck_alcotest.to_alcotest prop_closure_idempotent;
    QCheck_alcotest.to_alcotest prop_closure_transitive;
    QCheck_alcotest.to_alcotest prop_closure_contains;
    QCheck_alcotest.to_alcotest prop_topo_respects_pairs;
    QCheck_alcotest.to_alcotest prop_acyclic_iff_topo;
  ]
