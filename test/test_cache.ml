(* Integration tests for the coherence substrate: directory + cache
   controllers on a network, driven directly (no processors). *)

module Engine = Wo_sim.Engine
module Rng = Wo_sim.Rng
module L = Wo_interconnect.Latency
module F = Wo_interconnect.Fabric
module Cache = Wo_cache.Cache_ctrl
module Dir = Wo_cache.Directory
module WB = Wo_cache.Write_buffer

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

type rig = {
  engine : Engine.t;
  caches : Cache.t array;
  dir : Dir.t;
}

let make_rig ?(num = 3) ?(config = Cache.default_config) ?(jitter = 0)
    ?(initial = fun _ -> 0) ?(seed = 1) () =
  let engine = Engine.create () in
  let rng = Rng.make seed in
  let latency =
    if jitter = 0 then L.fixed 3 else L.jittered rng ~base:1 ~jitter
  in
  let net = Wo_interconnect.Network.create ~engine ~latency () in
  let fabric = F.of_network net in
  let dir = Dir.create ~engine ~fabric ~node:num ~initial () in
  let caches =
    Array.init num (fun node ->
        Cache.create ~engine ~fabric ~node ~dir_node:num config)
  in
  { engine; caches; dir }

(* Submit an access and capture its results. *)
type probe = {
  mutable committed_at : int;
  mutable value : int option;
  mutable gp_at : int;
}

let submit rig ~cache loc kind =
  let p = { committed_at = -1; value = None; gp_at = -1 } in
  Cache.access rig.caches.(cache) loc kind
    {
      Cache.on_commit =
        (fun ~at v ->
          p.committed_at <- at;
          p.value <- v);
      on_gp = (fun () -> p.gp_at <- Engine.now rig.engine);
    };
  p

let run rig = ignore (Engine.run rig.engine)

let test_read_miss_returns_initial () =
  let rig = make_rig ~initial:(fun l -> l * 10) () in
  let p = submit rig ~cache:0 7 `Data_read in
  run rig;
  check_int "initial value" 70 (Option.get p.value);
  check "committed" true (p.committed_at >= 0);
  check "globally performed" true (p.gp_at >= p.committed_at - 10);
  check "line now shared" true (Cache.line_state rig.caches.(0) 7 = `Shared)

let test_write_then_read_local () =
  let rig = make_rig () in
  let _w = submit rig ~cache:0 0 (`Data_write 42) in
  run rig;
  let r = submit rig ~cache:0 0 `Data_read in
  run rig;
  check_int "reads own write" 42 (Option.get r.value);
  check "exclusive" true (Cache.line_state rig.caches.(0) 0 = `Exclusive)

let test_cross_cache_visibility () =
  let rig = make_rig () in
  let _ = submit rig ~cache:0 0 (`Data_write 9) in
  run rig;
  let r = submit rig ~cache:1 0 `Data_read in
  run rig;
  check_int "other cache sees the write" 9 (Option.get r.value);
  check "writer downgraded to shared" true
    (Cache.line_state rig.caches.(0) 0 = `Shared);
  (match Dir.state_of rig.dir 0 with
  | Dir.Shared sharers -> Alcotest.(check (list int)) "sharers" [ 0; 1 ] sharers
  | _ -> Alcotest.fail "expected shared")

let test_invalidation_on_upgrade () =
  let rig = make_rig () in
  let _ = submit rig ~cache:0 0 `Data_read in
  let _ = submit rig ~cache:1 0 `Data_read in
  run rig;
  (* both shared; cache 2 writes *)
  let w = submit rig ~cache:2 0 (`Data_write 5) in
  run rig;
  check "sharers invalidated" true
    (Cache.line_state rig.caches.(0) 0 = `Invalid
    && Cache.line_state rig.caches.(1) 0 = `Invalid);
  check "write performed after acks" true (w.gp_at >= w.committed_at);
  let r = submit rig ~cache:0 0 `Data_read in
  run rig;
  check_int "readers see new value" 5 (Option.get r.value)

let test_write_to_shared_defers_gp () =
  let rig = make_rig () in
  let _ = submit rig ~cache:1 0 `Data_read in
  run rig;
  let w = submit rig ~cache:0 0 (`Data_write 3) in
  (* run only until the data arrives: commit strictly before gp because an
     invalidation acknowledgement round-trip is pending *)
  run rig;
  check "commit before gp" true (w.committed_at < w.gp_at)

let test_write_uncached_gp_immediate () =
  let rig = make_rig () in
  let w = submit rig ~cache:0 0 (`Data_write 3) in
  run rig;
  check "no sharers: gp at commit" true (w.gp_at <= w.committed_at + 1)

let test_rmw_atomic_across_caches () =
  let rig = make_rig () in
  let a = submit rig ~cache:0 0 (`Sync_rmw (Wo_core.Event.Rmw_faa 1)) in
  let b = submit rig ~cache:1 0 (`Sync_rmw (Wo_core.Event.Rmw_faa 1)) in
  run rig;
  let reads = List.sort compare [ Option.get a.value; Option.get b.value ] in
  Alcotest.(check (list int)) "each sees the other's increment or none"
    [ 0; 1 ] reads;
  let r = submit rig ~cache:2 0 `Data_read in
  run rig;
  check_int "final count" 2 (Option.get r.value)

let test_reserve_set_and_released () =
  let config = { Cache.default_config with reserve_enabled = true } in
  let rig = make_rig ~config () in
  (* give cache 1 a shared copy of the data so cache 0's write has a slow
     (ack-requiring) global perform *)
  let _ = submit rig ~cache:1 0 `Data_read in
  run rig;
  (* cache 0: data write (acks pending) then a sync commit *)
  let _w = submit rig ~cache:0 0 (`Data_write 1) in
  let _s = submit rig ~cache:0 6 (`Sync_write 1) in
  (* drive manually: after full drain everything is performed, so the
     reserve must be released again *)
  run rig;
  check "reserve released after drain" true
    (Cache.reserved_locs rig.caches.(0) = []);
  check_int "nothing outstanding" 0 (Cache.outstanding rig.caches.(0))

(* The condition-5 scenario: P1 shares x; P0 writes x (its invalidations
   make the global perform slow) and immediately synchronizes on s; a
   third party then requests s.  With a synchronization request, the
   reserve bit must stall it past the write's global perform; with a data
   request it must not.  Both rigs are deterministic (fixed latency), so
   the commit times compare directly. *)
let reserve_probe requester_kind =
  let config = { Cache.default_config with reserve_enabled = true } in
  let rig = make_rig ~config () in
  let _warm = submit rig ~cache:1 0 `Data_read in
  run rig;
  let w = submit rig ~cache:0 0 (`Data_write 1) in
  let _s0 = submit rig ~cache:0 6 (`Sync_write 1) in
  let probe = submit rig ~cache:2 6 requester_kind in
  run rig;
  (probe, w)

let test_sync_recall_stalls_on_reserved_line () =
  let probe, w = reserve_probe (`Sync_rmw (Wo_core.Event.Rmw_fn (fun v -> v))) in
  check "remote sync commits only after the write performed globally" true
    (probe.committed_at >= w.gp_at)

let test_data_recall_not_stalled_by_reserve () =
  let data_probe, w = reserve_probe `Data_read in
  let sync_probe, _ = reserve_probe (`Sync_rmw (Wo_core.Event.Rmw_fn (fun v -> v))) in
  check "data read completed" true (data_probe.value <> None);
  check "data request served before the write performed globally" true
    (data_probe.committed_at < w.gp_at);
  check "and strictly earlier than the synchronization request" true
    (data_probe.committed_at < sync_probe.committed_at)

let test_sync_read_shared_config () =
  let config = { Cache.default_config with sync_read_shared = true } in
  let rig = make_rig ~config () in
  let p = submit rig ~cache:0 6 `Sync_read in
  run rig;
  check "drf1 sync read takes a shared copy" true
    (Cache.line_state rig.caches.(0) 6 = `Shared);
  check_int "value" 0 (Option.get p.value);
  let rig2 = make_rig () in
  let _ = submit rig2 ~cache:0 6 `Sync_read in
  run rig2;
  check "default sync read takes exclusive" true
    (Cache.line_state rig2.caches.(0) 6 = `Exclusive)

let test_eviction_writes_back () =
  let config = { Cache.default_config with capacity = Some 2 } in
  let rig = make_rig ~config () in
  let _ = submit rig ~cache:0 0 (`Data_write 10) in
  let _ = submit rig ~cache:0 1 (`Data_write 11) in
  run rig;
  (* third line forces an eviction *)
  let _ = submit rig ~cache:0 2 (`Data_write 12) in
  run rig;
  check "capacity respected" true (Cache.resident_lines rig.caches.(0) <= 2);
  (* the evicted value is recoverable from the directory *)
  let reads =
    List.map
      (fun loc ->
        let r = submit rig ~cache:1 loc `Data_read in
        run rig;
        Option.get r.value)
      [ 0; 1; 2 ]
  in
  Alcotest.(check (list int)) "all values survive eviction" [ 10; 11; 12 ] reads

let test_eviction_of_shared_is_silent () =
  let config = { Cache.default_config with capacity = Some 1 } in
  let rig = make_rig ~config () in
  let _ = submit rig ~cache:0 0 `Data_read in
  run rig;
  let r = submit rig ~cache:0 1 `Data_read in
  run rig;
  check_int "new line readable" 0 (Option.get r.value);
  check "old line gone" true (Cache.line_state rig.caches.(0) 0 = `Invalid)

let test_directory_queue_drains () =
  (* Regression for the queue-stranding bug: a recall transaction with two
     queued GetS requests must serve both when it completes. *)
  let rig = make_rig ~num:4 () in
  let _ = submit rig ~cache:0 0 (`Data_write 8) in
  run rig;
  let r1 = submit rig ~cache:1 0 `Data_read in
  let r2 = submit rig ~cache:2 0 `Data_read in
  let r3 = submit rig ~cache:3 0 `Data_read in
  run rig;
  Alcotest.(check (list (option int)))
    "all queued readers served"
    [ Some 8; Some 8; Some 8 ]
    [ r1.value; r2.value; r3.value ]

let test_stress_random_ops_stay_coherent () =
  (* Random traffic from three caches with an unordered, jittery network;
     afterwards the directory and caches must agree and nothing may be
     stuck. *)
  for seed = 1 to 15 do
    let rig = make_rig ~jitter:15 ~seed () in
    let rng = Rng.make (seed * 77) in
    for _ = 1 to 40 do
      let cache = Rng.int rng 3 and loc = Rng.int rng 3 in
      let kind =
        match Rng.int rng 4 with
        | 0 -> `Data_read
        | 1 -> `Data_write (Rng.int rng 100)
        | 2 -> `Sync_write (Rng.int rng 100)
        | _ -> `Sync_rmw (Wo_core.Event.Rmw_faa 1)
      in
      ignore (submit rig ~cache loc kind)
    done;
    run rig;
    Array.iteri
      (fun i c ->
        check
          (Printf.sprintf "seed %d cache %d drained" seed i)
          true
          (Cache.pending_accesses c = 0 && Cache.outstanding c = 0))
      rig.caches;
    check (Printf.sprintf "seed %d directory idle" seed) true
      (Dir.busy_lines rig.dir = []);
    (* single-writer invariant at quiescence: if the directory says a line
       is exclusive, exactly that cache holds it non-invalid *)
    List.iter
      (fun loc ->
        match Dir.state_of rig.dir loc with
        | Dir.Exclusive owner ->
          Array.iteri
            (fun i c ->
              if i <> owner then
                check "non-owners hold nothing" true
                  (Cache.line_state c loc = `Invalid))
            rig.caches
        | Dir.Shared sharers ->
          (* every non-sharer holds nothing *)
          Array.iteri
            (fun i c ->
              if not (List.mem i sharers) then
                check "non-sharers hold nothing" true
                  (Cache.line_state c loc = `Invalid)
              else
                check "sharer agrees with memory" true
                  (Cache.value_of c loc = Some (Dir.memory_value rig.dir loc)))
            rig.caches
        | Dir.Uncached -> ())
      [ 0; 1; 2 ]
  done

(* --- write buffer ------------------------------------------------------------ *)

let test_write_buffer_fifo () =
  let b = WB.create ~depth:2 in
  check "push" true (WB.push b { WB.loc = 0; value = 1; tag = 0 });
  check "push" true (WB.push b { WB.loc = 1; value = 2; tag = 1 });
  check "full" false (WB.push b { WB.loc = 2; value = 3; tag = 2 });
  check_int "size" 2 (WB.size b);
  check_int "fifo pop" 0 (Option.get (WB.pop b)).WB.tag;
  check_int "then next" 1 (Option.get (WB.pop b)).WB.tag;
  check "empty" true (WB.is_empty b)

let test_write_buffer_forwarding_source () =
  let b = WB.create ~depth:4 in
  ignore (WB.push b { WB.loc = 0; value = 1; tag = 0 });
  ignore (WB.push b { WB.loc = 0; value = 2; tag = 1 });
  check_int "newest wins" 2 (Option.get (WB.newest_for b 0)).WB.value;
  check "has_loc" true (WB.has_loc b 0);
  check "not other locs" false (WB.has_loc b 1)

let test_write_buffer_waiters () =
  let b = WB.create ~depth:1 in
  ignore (WB.push b { WB.loc = 0; value = 1; tag = 0 });
  let emptied = ref false and slot = ref false in
  WB.on_empty b (fun () -> emptied := true);
  WB.on_not_full b (fun () -> slot := true);
  check "not yet" false (!emptied || !slot);
  ignore (WB.pop b);
  WB.notify b;
  check "both fired" true (!emptied && !slot);
  (* immediate fire when already satisfied *)
  let now = ref false in
  WB.on_empty b (fun () -> now := true);
  check "fires immediately when empty" true !now

let tests =
  [
    Alcotest.test_case "read miss returns initial" `Quick
      test_read_miss_returns_initial;
    Alcotest.test_case "write then read locally" `Quick test_write_then_read_local;
    Alcotest.test_case "cross-cache visibility" `Quick test_cross_cache_visibility;
    Alcotest.test_case "invalidation on upgrade" `Quick
      test_invalidation_on_upgrade;
    Alcotest.test_case "shared write defers gp" `Quick
      test_write_to_shared_defers_gp;
    Alcotest.test_case "uncached write gp immediate" `Quick
      test_write_uncached_gp_immediate;
    Alcotest.test_case "rmw atomicity" `Quick test_rmw_atomic_across_caches;
    Alcotest.test_case "reserve set and released" `Quick
      test_reserve_set_and_released;
    Alcotest.test_case "sync recall stalls on reserve" `Quick
      test_sync_recall_stalls_on_reserved_line;
    Alcotest.test_case "data recall not stalled" `Quick
      test_data_recall_not_stalled_by_reserve;
    Alcotest.test_case "drf1 sync reads" `Quick test_sync_read_shared_config;
    Alcotest.test_case "eviction writes back" `Quick test_eviction_writes_back;
    Alcotest.test_case "shared eviction silent" `Quick
      test_eviction_of_shared_is_silent;
    Alcotest.test_case "directory queue drains" `Quick test_directory_queue_drains;
    Alcotest.test_case "random-traffic coherence" `Slow
      test_stress_random_ops_stay_coherent;
    Alcotest.test_case "write buffer FIFO" `Quick test_write_buffer_fifo;
    Alcotest.test_case "write buffer forwarding" `Quick
      test_write_buffer_forwarding_source;
    Alcotest.test_case "write buffer waiters" `Quick test_write_buffer_waiters;
  ]
