(* Tests for the compiled hot path: Prog_compile lowering, the Cinterp
   int-machine, packed state keys, and the off-heap visited table.  The
   contract is equivalence — the compiled interpreter must be
   observationally identical to the AST interpreter (its oracle) under
   every schedule, and the stateful enumerator must produce identical
   results under either engine.  The key/table tests pin the packing and
   claim disciplines the enumerator's soundness rests on. *)

module I = Wo_prog.Instr
module P = Wo_prog.Program
module PC = Wo_prog.Prog_compile
module C = Wo_prog.Cinterp
module In = Wo_prog.Interp
module En = Wo_prog.Enumerate
module V = Wo_prog.Visited
module O = Wo_prog.Outcome

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let outcome_sets_equal a b =
  List.length a = List.length b && List.for_all2 O.equal a b

let reports_agree (a : (unit, Wo_core.Drf0.report) result)
    (b : (unit, Wo_core.Drf0.report) result) =
  match (a, b) with
  | Ok (), Ok () -> true
  | Error ra, Error rb ->
    ra.Wo_core.Drf0.races = rb.Wo_core.Drf0.races
    && Wo_core.Execution.events ra.Wo_core.Drf0.execution
       = Wo_core.Execution.events rb.Wo_core.Drf0.execution
  | _ -> false

let litmus_programs =
  [
    Wo_litmus.Litmus.figure1.Wo_litmus.Litmus.program;
    Wo_litmus.Litmus.message_passing.Wo_litmus.Litmus.program;
    Wo_litmus.Litmus.dekker_sync.Wo_litmus.Litmus.program;
    Wo_litmus.Litmus.atomicity.Wo_litmus.Litmus.program;
    Wo_litmus.Litmus.coherence.Wo_litmus.Litmus.program;
  ]

(* A deterministic schedule source: a seeded LCG picking an index into
   the current runnable list.  Both interpreters are driven by the same
   choice stream, so any observable divergence is the interpreter's. *)
let lcg seed =
  let s = ref (seed land 0x3FFFFFFF) in
  fun bound ->
    s := ((!s * 1103515245) + 12345) land 0x3FFFFFFF;
    !s mod bound

(* Run both interpreters in lockstep under one schedule, asserting
   observable equality at every step; returns false on any divergence.
   [max_steps] bounds spin-lock programs (the equality assertions still
   ran for every step taken). *)
let lockstep_equal ?(max_steps = 2000) seed program =
  match PC.compile program with
  | None -> true (* not lowerable: nothing to compare *)
  | Some cp ->
    let pick = lcg seed in
    let rec go ast cst steps =
      let ast_run = In.runnable ast in
      let c_run = C.runnable cst in
      ast_run = c_run
      && In.memory ast = C.memory cst
      && In.events_so_far ast = C.events_so_far cst
      && List.for_all (fun p -> In.peek ast p = C.peek cst p) ast_run
      &&
      match ast_run with
      | [] -> O.equal (In.outcome ast) (C.outcome cst)
      | _ when steps >= max_steps -> true
      | procs ->
        let p = List.nth procs (pick (List.length procs)) in
        let ast', ev_a = In.step ast p in
        let cst', ev_c = C.step cst p in
        ev_a = ev_c && go ast' cst' (steps + 1)
    in
    go (In.init program) (C.init cp) 0

let prop_lockstep_racy =
  QCheck.Test.make
    ~name:
      "compiled interpreter equals the AST interpreter in lockstep on \
       random racy programs (runnable, peek, memory, events, outcome)"
    ~count:60 QCheck.small_int (fun pseed ->
      let program =
        Wo_litmus.Random_prog.racy ~seed:pseed ~procs:3 ~ops_per_proc:4
          ~locs:2 ()
      in
      List.for_all
        (fun sseed -> lockstep_equal sseed program)
        [ 1; 42; 1 + (7 * pseed) ])

let prop_lockstep_lock_disciplined =
  (* Spin locks exercise Tas, While and If lowering — control flow the
     racy generator never emits. *)
  QCheck.Test.make
    ~name:
      "compiled interpreter equals the AST interpreter in lockstep on \
       lock-disciplined (looping) programs"
    ~count:30 QCheck.small_int (fun pseed ->
      let program =
        Wo_litmus.Random_prog.lock_disciplined ~seed:pseed ~procs:2
          ~sections_per_proc:1 ~ops_per_section:2 ~shared_locs:2 ~locks:1 ()
      in
      List.for_all
        (fun sseed -> lockstep_equal sseed program)
        [ 3; 1 + (11 * pseed) ])

let test_lockstep_litmus () =
  List.iter
    (fun program ->
      List.iter
        (fun seed ->
          check "lockstep equal on litmus" true (lockstep_equal seed program))
        [ 0; 1; 2; 3; 4 ])
    litmus_programs

(* --- packed keys ------------------------------------------------------------ *)

(* Equal keys must imply equal observable snapshots: walk every state of
   a small program's reachable graph and compare key-equality against a
   full observable snapshot (runnable + pending accesses + memory +
   event count + outcome).  The converse (distinct snapshots get
   distinct keys) is implied by the same table. *)
let prop_exact_key_separates =
  QCheck.Test.make
    ~name:"exact_key equality coincides with observable-snapshot equality"
    ~count:40 QCheck.small_int (fun pseed ->
      let program =
        Wo_litmus.Random_prog.racy ~seed:pseed ~procs:2 ~ops_per_proc:3
          ~locs:2 ()
      in
      match PC.compile program with
      | None -> true
      | Some cp ->
        let snapshot st =
          ( C.events_so_far st,
            C.runnable st,
            List.map (C.peek st) (C.runnable st),
            C.memory st,
            C.outcome st )
        in
        let states = ref [] in
        let seen = Hashtbl.create 64 in
        let rec walk st =
          let k = C.exact_key st in
          if not (Hashtbl.mem seen k) then begin
            Hashtbl.add seen k ();
            states := (k, snapshot st) :: !states;
            List.iter (fun p -> walk (fst (C.step st p))) (C.runnable st)
          end
        in
        walk (C.init cp);
        List.for_all
          (fun (k1, s1) ->
            List.for_all
              (fun (k2, s2) -> (k1 = k2) = (s1 = s2) || (k1 <> k2 && s1 = s2))
              !states
          (* distinct keys may still map to equal snapshots (the key also
             separates on registers and pcs the snapshot cannot see), but
             equal keys must never join distinct snapshots *))
          !states)

let test_exact_key_distinguishes_event_count () =
  (* Same memory and pcs-to-go can differ in how many events were spent
     reaching them; the key must separate those (the max_events budget
     differs).  Two writes of the same value: after 1 and after 2 steps
     memory is identical but the event counts differ. *)
  let p = P.make [ [ I.Write (0, I.Const 1); I.Write (0, I.Const 1) ] ] in
  match PC.compile p with
  | None -> Alcotest.fail "trivial program must compile"
  | Some cp ->
    let s0 = C.init cp in
    let s1 = fst (C.step s0 0) in
    let s2 = fst (C.step s1 0) in
    check "three distinct keys along the chain" true
      (C.exact_key s0 <> C.exact_key s1
      && C.exact_key s1 <> C.exact_key s2
      && C.exact_key s0 <> C.exact_key s2)

(* --- engine identity in the enumerator -------------------------------------- *)

let prop_engines_agree_on_outcomes =
  QCheck.Test.make
    ~name:"outcomes_stateful: compiled engine equals AST engine"
    ~count:40 QCheck.small_int (fun pseed ->
      let program =
        Wo_litmus.Random_prog.racy ~seed:pseed ~procs:2 ~ops_per_proc:3
          ~locs:2 ()
      in
      let reference, _ = En.outcomes_stateful ~engine:En.Ast ~domains:1 program in
      List.for_all
        (fun domains ->
          outcome_sets_equal reference
            (fst (En.outcomes_stateful ~engine:En.Compiled ~domains program)))
        [ 1; 3 ])

let prop_engines_agree_on_drf0 =
  QCheck.Test.make
    ~name:
      "check_drf0_stateful: compiled engine's verdict and racy report \
       equal the AST engine's, with and without symmetry"
    ~count:30 QCheck.small_int (fun pseed ->
      let program =
        Wo_litmus.Random_prog.racy ~seed:pseed ~procs:2 ~ops_per_proc:3
          ~locs:2 ()
      in
      let reference, _ =
        En.check_drf0_stateful ~engine:En.Ast ~domains:1 program
      in
      List.for_all
        (fun (symmetry, domains) ->
          reports_agree reference
            (fst
               (En.check_drf0_stateful ~engine:En.Compiled ~symmetry ~domains
                  program)))
        [ (true, 1); (false, 1); (true, 3) ])

let test_engines_agree_on_litmus () =
  List.iter
    (fun program ->
      let ast_outs, _ = En.outcomes_stateful ~engine:En.Ast program in
      let c_outs, _ = En.outcomes_stateful ~engine:En.Compiled program in
      check "litmus outcome sets equal across engines" true
        (outcome_sets_equal ast_outs c_outs);
      let ast_r, _ = En.check_drf0_stateful ~engine:En.Ast program in
      let c_r, _ = En.check_drf0_stateful ~engine:En.Compiled program in
      check "litmus DRF0 reports equal across engines" true
        (reports_agree ast_r c_r))
    litmus_programs

let test_uncompilable_falls_back () =
  (* Beyond the packing bounds the compiled engine must silently fall
     back to the AST path rather than fail.  A single thread one op past
     the per-thread op-count bound is uncompilable yet trivially
     enumerable (one schedule, one chain of states). *)
  let ops = 2049 in
  let p = P.make [ List.init ops (fun _ -> I.Write (0, I.Const 1)) ] in
  check "program is beyond compiler bounds" false (PC.compilable p);
  let outs, _ =
    En.outcomes_stateful ~engine:En.Compiled ~domains:1 ~max_events:(ops + 1) p
  in
  let reference, _ =
    En.outcomes_stateful ~engine:En.Ast ~domains:1 ~max_events:(ops + 1) p
  in
  check "fallback produces the AST result" true
    (outcome_sets_equal reference outs)

let test_compile_canonical_encoding_stable () =
  (* The sweep memoizer keys on the canonical encoding: structurally
     identical programs (same threads, initial memory, observability)
     must encode equal; observably different ones must not. *)
  let mk name = P.make ~name [ [ I.Write (0, I.Const 1) ]; [ I.Read (0, 7) ] ] in
  let enc p = Option.get (PC.encode_program p) in
  check "names do not affect the encoding" true
    (enc (mk "a") = enc (mk "b"));
  let q = P.make [ [ I.Write (0, I.Const 2) ]; [ I.Read (0, 7) ] ] in
  check "different constants encode differently" true (enc (mk "a") <> enc q)

(* --- the off-heap visited table --------------------------------------------- *)

let test_visited_grow_and_arena () =
  (* Push the table far past its initial capacity with distinct keys of
     assorted lengths: every key must stay claimed across growth and
     arena chunk turnover, and the accounting must add up. *)
  let t = V.create ~shards:2 () in
  let key i = Printf.sprintf "key-%d-%s" i (String.make (i mod 97) 'x') in
  let n = 20_000 in
  for i = 0 to n - 1 do
    match V.try_claim t (key i) 0 with
    | `Explore _ -> ()
    | `Skip -> Alcotest.fail "fresh key must explore"
  done;
  check_int "all keys distinct" n (V.size t);
  for i = 0 to n - 1 do
    match V.try_claim t (key i) 0 with
    | `Skip -> ()
    | `Explore _ -> Alcotest.fail "claimed key must skip"
  done;
  check_int "every revisit hit" n (V.hits t);
  check "arena holds at least the raw key bytes" true
    (V.arena_bytes t
    >= List.fold_left ( + ) 0 (List.init n (fun i -> String.length (key i))));
  check_int "probe histogram counts every first claim" n
    (Array.fold_left ( + ) 0 (V.probe_hist t))

let test_visited_widen_survives_growth () =
  (* The sleep-narrowing discipline (test_statespace pins it on a fresh
     table) must also hold for entries that have been rehashed by
     growth. *)
  let t = V.create ~shards:1 () in
  (match V.try_claim t "subject" 0b11 with
  | `Explore _ -> ()
  | `Skip -> Alcotest.fail "first claim explores");
  (* Force several growth cycles over the subject's stripe. *)
  for i = 0 to 5_000 do
    ignore (V.try_claim t (Printf.sprintf "filler-%d" i) 0)
  done;
  (match V.try_claim t "subject" 0b01 with
  | `Explore s -> check_int "narrower claim re-explores with intersection" 0b01 s
  | `Skip -> Alcotest.fail "narrower claim must re-explore after growth");
  match V.try_claim t "subject" 0b11 with
  | `Skip -> ()
  | `Explore _ -> Alcotest.fail "covered claim must skip after growth"

let test_hash64_deterministic_and_spread () =
  let h = V.hash64 "some-state-key" in
  check "hash is deterministic" true (h = V.hash64 "some-state-key");
  check "hash is non-negative" true (h >= 0);
  let distinct =
    List.sort_uniq compare
      (List.init 1000 (fun i -> V.hash64 (string_of_int i)))
  in
  check_int "no collisions across 1000 short keys" 1000 (List.length distinct)

let tests =
  [
    Alcotest.test_case "lockstep equal on litmus" `Quick test_lockstep_litmus;
    Alcotest.test_case "exact_key separates event counts" `Quick
      test_exact_key_distinguishes_event_count;
    Alcotest.test_case "engines agree on litmus" `Quick
      test_engines_agree_on_litmus;
    Alcotest.test_case "uncompilable programs fall back" `Quick
      test_uncompilable_falls_back;
    Alcotest.test_case "canonical encoding is stable" `Quick
      test_compile_canonical_encoding_stable;
    Alcotest.test_case "visited grows without losing claims" `Quick
      test_visited_grow_and_arena;
    Alcotest.test_case "widen discipline survives growth" `Quick
      test_visited_widen_survives_growth;
    Alcotest.test_case "hash64 deterministic" `Quick
      test_hash64_deterministic_and_spread;
    QCheck_alcotest.to_alcotest prop_lockstep_racy;
    QCheck_alcotest.to_alcotest prop_lockstep_lock_disciplined;
    QCheck_alcotest.to_alcotest prop_exact_key_separates;
    QCheck_alcotest.to_alcotest prop_engines_agree_on_outcomes;
    QCheck_alcotest.to_alcotest prop_engines_agree_on_drf0;
  ]
