(* The observability subsystem: JSON printer/parser roundtrips, recorder
   semantics, stall accounting, the metrics envelope, and — the part the
   rest of the suite can't cover — parse-back validation of the Perfetto
   traces the machines actually emit, plus the Figure-3 claim stated in
   stall-attribution terms. *)

module J = Wo_obs.Json
module Rec = Wo_obs.Recorder
module Stall = Wo_obs.Stall
module M = Wo_machines.Machine
module P = Wo_machines.Presets
module L = Wo_litmus.Litmus

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let check_string = Alcotest.(check string)

(* --- Json ------------------------------------------------------------------- *)

let sample_json =
  J.Obj
    [
      ("null", J.Null);
      ("flags", J.List [ J.Bool true; J.Bool false ]);
      ("n", J.Int (-42));
      ("big", J.Int max_int);
      ("s", J.String "quote \" backslash \\ newline \n tab \t unicode \x01");
      ("empty_list", J.List []);
      ("empty_obj", J.Obj []);
      ("nested", J.Obj [ ("xs", J.List [ J.Obj [ ("k", J.Int 1) ] ]) ]);
    ]

let test_json_roundtrip () =
  List.iter
    (fun pretty ->
      match J.of_string (J.to_string ~pretty sample_json) with
      | Ok parsed ->
        check (Printf.sprintf "roundtrip pretty:%b" pretty) true
          (parsed = sample_json)
      | Error e -> Alcotest.fail ("parse failed: " ^ e))
    [ false; true ]

let test_json_floats () =
  (match J.of_string (J.to_string (J.Float 1.5)) with
  | Ok (J.Float f) -> check "float value survives" true (f = 1.5)
  | _ -> Alcotest.fail "float did not roundtrip");
  (* JSON has no NaN/inf: they serialize as null and must stay parseable *)
  match J.of_string (J.to_string (J.List [ J.Float nan; J.Float infinity ])) with
  | Ok (J.List [ J.Null; J.Null ]) -> ()
  | _ -> Alcotest.fail "non-finite floats must serialize as null"

let test_json_rejects_garbage () =
  List.iter
    (fun s ->
      match J.of_string s with
      | Ok _ -> Alcotest.fail (Printf.sprintf "accepted %S" s)
      | Error _ -> ())
    [ ""; "{"; "[1,]"; "{\"a\":}"; "tru"; "\"unterminated"; "1 2"; "{'a':1}" ]

let test_json_accessors () =
  check "member" true (J.member "n" sample_json = Some (J.Int (-42)));
  check "member missing" true (J.member "nope" sample_json = None);
  check "to_int accepts integral float" true
    (J.to_int_opt (J.Float 3.0) = Some 3);
  check "to_float accepts int" true (J.to_float_opt (J.Int 3) = Some 3.0)

(* --- Recorder --------------------------------------------------------------- *)

let test_recorder_disabled_is_noop () =
  let before = Rec.length Rec.disabled in
  Rec.span Rec.disabled ~cat:Rec.Proc ~track:0 ~name:"x" ~ts:0 ~dur:1;
  Rec.instant Rec.disabled ~cat:Rec.Net ~track:0 ~name:"y" ~ts:0;
  Rec.counter Rec.disabled ~cat:Rec.Enum ~track:0 ~name:"z" ~ts:0 ~value:1;
  check_int "disabled records nothing" before (Rec.length Rec.disabled);
  check "disabled reports disabled" false (Rec.enabled Rec.disabled)

let test_recorder_chunk_overflow () =
  let r = Rec.create () in
  let n = (2 * Rec.chunk_size) + 17 in
  for i = 0 to n - 1 do
    Rec.instant r ~cat:Rec.Proc ~track:(i mod 4) ~name:"tick" ~ts:i
  done;
  check_int "all events kept across chunks" n (Rec.length r);
  let events = Rec.events r in
  check_int "events lists every event" n (List.length events);
  (* emission order is preserved across chunk boundaries *)
  List.iteri
    (fun i ev ->
      match ev with
      | Rec.Instant { ts; _ } ->
        if ts <> i then Alcotest.fail "event order broken"
      | _ -> Alcotest.fail "wrong event kind")
    events;
  Rec.clear r;
  check_int "clear empties" 0 (Rec.length r)

let test_ambient_sink () =
  let r = Rec.create () in
  check "default ambient sink is disabled" false (Rec.enabled (Rec.active ()));
  Rec.with_sink r (fun () ->
      check "ambient sink installed" true (Rec.active () == r));
  check "ambient sink restored" false (Rec.enabled (Rec.active ()));
  (* exception-safe restore *)
  (try Rec.with_sink r (fun () -> failwith "boom") with Failure _ -> ());
  check "restored after raise" false (Rec.enabled (Rec.active ()))

(* --- Hist / Tap ------------------------------------------------------------- *)

let test_hist () =
  let h = Wo_obs.Hist.create () in
  List.iter (Wo_obs.Hist.add h) [ 1; 1; 2; 100; 0 ];
  check_int "count" 5 (Wo_obs.Hist.count h);
  check_int "sum" 104 (Wo_obs.Hist.sum h);
  check_int "max" 100 (Wo_obs.Hist.max_value h);
  let h2 = Wo_obs.Hist.create () in
  Wo_obs.Hist.add h2 7;
  let m = Wo_obs.Hist.merge h h2 in
  check_int "merge count" 6 (Wo_obs.Hist.count m);
  check_int "merge sum" 111 (Wo_obs.Hist.sum m)

let test_tap () =
  let t = Wo_obs.Tap.create () in
  Wo_obs.Tap.record t ~name:"GetS" ~latency:3;
  Wo_obs.Tap.record t ~name:"GetS" ~latency:5;
  Wo_obs.Tap.record t ~name:"Inv" ~latency:1;
  check_int "total" 3 (Wo_obs.Tap.total t);
  check "stats keys" true
    (List.map fst (Wo_obs.Tap.to_stats t) = [ "msg.GetS"; "msg.Inv" ]);
  let t2 = Wo_obs.Tap.create () in
  Wo_obs.Tap.record t2 ~name:"Inv" ~latency:2;
  check_int "merge total" 4 (Wo_obs.Tap.total (Wo_obs.Tap.merge t t2))

(* --- Stall ------------------------------------------------------------------ *)

let test_stall_accounts () =
  let s = Stall.create () in
  Stall.add s ~proc:0 Stall.Release_gate 10;
  Stall.add s ~proc:0 Stall.Release_gate 5;
  Stall.add s ~proc:2 Stall.Reserve_wait 7;
  Stall.add s ~proc:1 Stall.Read_miss 0 (* ignored *);
  Stall.add s ~proc:1 Stall.Read_miss (-3) (* ignored *);
  check_int "accumulates" 15 (Stall.get s ~proc:0 Stall.Release_gate);
  check_int "total" 22 (Stall.total s);
  check "non-positive ignored" true (Stall.procs s = [ 0; 2 ]);
  check "legacy keys" true
    (List.mem ("P0.stall.release_gate", 15) (Stall.to_stats s));
  check "legacy total" true (List.mem ("stall.total", 22) (Stall.to_stats s))

let test_stall_reason_names_roundtrip () =
  List.iter
    (fun reason ->
      match Stall.reason_of_name (Stall.reason_name reason) with
      | Some r -> check (Stall.reason_name reason) true (r = reason)
      | None -> Alcotest.fail ("no roundtrip for " ^ Stall.reason_name reason))
    Stall.all_reasons;
  check "unknown name" true (Stall.reason_of_name "gate" = None)

(* --- Metrics envelope ------------------------------------------------------- *)

let test_metrics_envelope () =
  let doc = Wo_obs.Metrics.make ~experiment:"test" [ ("x", J.Int 1) ] in
  check "validates" true (Wo_obs.Metrics.validate doc = Ok ());
  check "experiment tag" true (Wo_obs.Metrics.experiment doc = Some "test");
  check "schema version present" true
    (J.member "schema_version" doc = Some (J.Int Wo_obs.Metrics.schema_version));
  check "rejects wrong schema" true
    (Wo_obs.Metrics.validate (J.Obj [ ("schema", J.String "other") ]) <> Ok ());
  check "payload collision rejected" true
    (try
       ignore (Wo_obs.Metrics.make ~experiment:"t" [ ("schema", J.Null) ]);
       false
     with Invalid_argument _ -> true)

(* --- Perfetto export of a real machine run ---------------------------------- *)

let record_run machine ~seed program =
  let r = Rec.create () in
  let result = Rec.with_sink r (fun () -> M.run machine ~seed program) in
  (r, result)

let test_perfetto_parse_back () =
  let recorder, _ =
    record_run P.wo_new ~seed:7 (L.figure3_scenario ()).L.program
  in
  check "run recorded events" true (Rec.length recorder > 0);
  match J.of_string (Wo_obs.Export.perfetto_string recorder) with
  | Error e -> Alcotest.fail ("perfetto output is not valid JSON: " ^ e)
  | Ok doc ->
    let events =
      match J.member "traceEvents" doc with
      | Some l -> Option.get (J.to_list_opt l)
      | None -> Alcotest.fail "no traceEvents array"
    in
    check "metadata + events present" true
      (List.length events > Rec.length recorder);
    List.iter
      (fun ev ->
        let field name = J.member name ev in
        let ph =
          match Option.bind (field "ph") J.to_string_opt with
          | Some ph -> ph
          | None -> Alcotest.fail "event without ph"
        in
        check "known phase" true (List.mem ph [ "X"; "i"; "C"; "M" ]);
        check "has pid" true (Option.bind (field "pid") J.to_int_opt <> None);
        check "has name" true
          (Option.bind (field "name") J.to_string_opt <> None);
        if ph = "X" then
          match Option.bind (field "dur") J.to_int_opt with
          | Some dur -> check "span durations non-negative" true (dur >= 0)
          | None -> Alcotest.fail "span without dur"
        else ();
        if ph <> "M" then
          check "has ts" true (Option.bind (field "ts") J.to_int_opt <> None))
      events

let test_trace_deterministic () =
  let program = (L.figure3_scenario ()).L.program in
  let a, _ = record_run P.wo_new ~seed:11 program in
  let b, _ = record_run P.wo_new ~seed:11 program in
  check_string "same seed, byte-identical exported trace"
    (Wo_obs.Export.perfetto_string a)
    (Wo_obs.Export.perfetto_string b);
  let c, _ = record_run P.wo_new ~seed:12 program in
  check "different seed, different trace" true
    (Wo_obs.Export.perfetto_string a <> Wo_obs.Export.perfetto_string c)

(* --- The Figure-3 claim, in stall-attribution terms ------------------------- *)

let test_figure3_attribution () =
  let program = (L.figure3_scenario ()).L.program in
  let old_gate = ref 0 and new_gate = ref 0 and new_commit = ref 0 in
  for seed = 1 to 10 do
    let old_r = M.run P.wo_old ~seed program in
    let new_r = M.run P.wo_new ~seed program in
    old_gate := !old_gate + M.stall old_r ~proc:0 "release_gate";
    new_gate := !new_gate + M.stall new_r ~proc:0 "release_gate";
    new_commit := !new_commit + M.stall new_r ~proc:0 "sync_commit"
  done;
  check "Definition-1 hardware gates P0's release" true (!old_gate > 0);
  check_int "the Section-5.3 machine never release-gates P0" 0 !new_gate;
  check "wo-new still waits for the Unset to commit" true (!new_commit > 0)

(* --- Accounting invariant over random DRF0 programs ------------------------- *)

let prop_stall_accounting_consistent =
  QCheck.Test.make
    ~name:"total stalls = per-proc sums = per-reason sums (all machines)"
    ~count:8 QCheck.small_int (fun seed ->
      let program =
        Wo_litmus.Random_prog.lock_disciplined ~seed:(seed + 1) ()
      in
      List.for_all
        (fun (m : M.t) ->
          let r = M.run m ~seed:(seed + 1) program in
          let s = r.M.stalls in
          let by_proc =
            List.fold_left
              (fun acc proc -> acc + Stall.proc_total s ~proc)
              0 (Stall.procs s)
          in
          let by_reason =
            List.fold_left
              (fun acc proc ->
                List.fold_left
                  (fun acc (_, cycles) -> acc + cycles)
                  acc
                  (Stall.per_proc s ~proc))
              0 (Stall.procs s)
          in
          M.total_stalls r = Stall.total s
          && Stall.total s = by_proc
          && by_proc = by_reason
          && List.for_all
               (fun proc -> M.proc_stalls r ~proc = Stall.proc_total s ~proc)
               (Stall.procs s))
        P.all)

let tests =
  [
    Alcotest.test_case "json roundtrip" `Quick test_json_roundtrip;
    Alcotest.test_case "json floats" `Quick test_json_floats;
    Alcotest.test_case "json rejects garbage" `Quick test_json_rejects_garbage;
    Alcotest.test_case "json accessors" `Quick test_json_accessors;
    Alcotest.test_case "disabled recorder is a no-op" `Quick
      test_recorder_disabled_is_noop;
    Alcotest.test_case "recorder chunk overflow" `Quick
      test_recorder_chunk_overflow;
    Alcotest.test_case "ambient sink" `Quick test_ambient_sink;
    Alcotest.test_case "histogram" `Quick test_hist;
    Alcotest.test_case "message taps" `Quick test_tap;
    Alcotest.test_case "stall accounts" `Quick test_stall_accounts;
    Alcotest.test_case "stall reason names" `Quick
      test_stall_reason_names_roundtrip;
    Alcotest.test_case "metrics envelope" `Quick test_metrics_envelope;
    Alcotest.test_case "perfetto parse-back" `Quick test_perfetto_parse_back;
    Alcotest.test_case "trace determinism" `Quick test_trace_deterministic;
    Alcotest.test_case "figure-3 stall attribution" `Quick
      test_figure3_attribution;
    QCheck_alcotest.to_alcotest prop_stall_accounting_consistent;
  ]
