(* Tests for the workload generators: invariants on the reference
   interpreter, race-freedom by sampling, and validator behaviour. *)

module W = Wo_workload.Workload
module In = Wo_prog.Interp
module D = Wo_race.Detector

let check = Alcotest.(check bool)

let validate_on_ideal (w : W.t) seed =
  let o = In.outcome (In.run_random ~seed w.W.program) in
  w.W.validate o

let test_all_validate_on_ideal () =
  List.iter
    (fun (w : W.t) ->
      for seed = 1 to 10 do
        match validate_on_ideal w seed with
        | Ok () -> ()
        | Error e ->
          Alcotest.fail (Printf.sprintf "%s seed %d: %s" w.W.name seed e)
      done)
    W.all

let test_all_race_free_by_sampling () =
  List.iter
    (fun (w : W.t) ->
      let races =
        D.sample_program ~schedules:10
          ~run:(fun ~seed ->
            In.execution (In.run_random ~seed w.W.program))
          ()
      in
      check (w.W.name ^ " race-free") true (races = []))
    W.all

let test_parameterized_instances () =
  let cases =
    [
      W.critical_section ~procs:2 ~sections:2 ~work:1 ();
      W.critical_section ~procs:3 ~sections:2 ~use_ttas:true ();
      W.spin_barrier ~procs:2 ~rounds:2 ~work:1 ();
      W.spin_barrier ~procs:5 ~rounds:1 ~work:0 ();
      W.producer_consumer ~items:2 ~work:0 ();
      W.producer_consumer ~items:3 ~batch:4 ();
      W.sharded_counter ~procs:2 ~increments:3 ();
    ]
  in
  List.iter
    (fun (w : W.t) ->
      match validate_on_ideal w 7 with
      | Ok () -> ()
      | Error e -> Alcotest.fail (w.W.program.Wo_prog.Program.name ^ ": " ^ e))
    cases

let test_validator_rejects_wrong_outcomes () =
  let w = W.critical_section ~procs:2 ~sections:2 () in
  let bad = Wo_prog.Outcome.make ~registers:[] ~memory:[ (1, 3) ] in
  check "wrong counter rejected" true (w.W.validate bad <> Ok ());
  let missing = Wo_prog.Outcome.make ~registers:[] ~memory:[] in
  check "missing location rejected" true (w.W.validate missing <> Ok ())

(* --- sweep driver ---------------------------------------------------------- *)

let test_program_key_survives_digest_collision () =
  let module S = Wo_workload.Sweep in
  let pa = Wo_litmus.Litmus.figure1.Wo_litmus.Litmus.program in
  let pb = Wo_litmus.Litmus.dekker_sync.Wo_litmus.Litmus.program in
  let ka = S.program_key pa and kb = S.program_key pb in
  check "distinct programs get distinct keys" false (ka = kb);
  let table = [ (ka, "outcomes of pa") ] in
  check "honest lookup hits" true (S.find_keyed ka table = Some "outcomes of pa");
  check "honest miss" true (S.find_keyed kb table = None);
  (* Forge the collision Digest.string cannot be made to produce on demand:
     a different program whose key carries pa's digest.  The full-payload
     comparison must refuse to hand pb pa's memoized SC outcome set. *)
  let forged = { kb with S.pk_digest = ka.S.pk_digest } in
  check "digest collision does not alias" true (S.find_keyed forged table = None)

let test_parallel_map_propagates_exceptions () =
  let module S = Wo_workload.Sweep in
  let items = List.init 20 (fun i -> i) in
  check "exception surfaces instead of Option.get crash" true
    (try
       ignore
         (S.parallel_map ~domains:4
            (fun i -> if i = 11 then failwith "cell blew up" else i)
            items);
       false
     with Failure m -> m = "cell blew up");
  (* And deterministically so: same failure on every repetition. *)
  for _ = 1 to 5 do
    match
      S.parallel_map ~domains:3
        (fun i -> if i mod 7 = 3 then raise Exit else i)
        items
    with
    | _ -> Alcotest.fail "expected Exit"
    | exception Exit -> ()
  done

let test_litmus_campaign_unaffected_by_stateful_memoization () =
  (* The SC memoization phase now runs the stateful enumerator; cells must
     be bit-identical to a direct tree enumeration of each program. *)
  let module S = Wo_workload.Sweep in
  let tests =
    [ Wo_litmus.Litmus.figure1; Wo_litmus.Litmus.message_passing ]
  in
  let machines = [ Option.get (Wo_machines.Presets.find "sc-dir") ] in
  let campaign = S.litmus_campaign ~runs:4 ~base_seed:1 ~domains:2 ~machines tests in
  check "all cells ran" true
    (List.length campaign.S.cells = List.length tests);
  List.iter
    (fun (c : S.litmus_cell) ->
      let direct =
        Wo_prog.Enumerate.outcomes c.S.test.Wo_litmus.Litmus.program
      in
      let via_campaign = c.S.report.Wo_litmus.Runner.sc_outcomes in
      check
        (c.S.test.Wo_litmus.Litmus.name ^ " SC set matches tree enumeration")
        true
        (List.length direct = List.length via_campaign
        && List.for_all2 Wo_prog.Outcome.equal direct via_campaign))
    campaign.S.cells

let test_workload_programs_have_loops () =
  (* every workload synchronizes by spinning somewhere *)
  List.iter
    (fun (w : W.t) ->
      check (w.W.name ^ " spins") true
        (Wo_prog.Program.has_loops w.W.program))
    W.all

let tests =
  [
    Alcotest.test_case "validate on the idealized machine" `Quick
      test_all_validate_on_ideal;
    Alcotest.test_case "race-free by sampling" `Quick
      test_all_race_free_by_sampling;
    Alcotest.test_case "parameterized instances" `Quick
      test_parameterized_instances;
    Alcotest.test_case "validator rejects bad outcomes" `Quick
      test_validator_rejects_wrong_outcomes;
    Alcotest.test_case "workloads spin" `Quick test_workload_programs_have_loops;
    Alcotest.test_case "program_key survives digest collisions" `Quick
      test_program_key_survives_digest_collision;
    Alcotest.test_case "parallel_map propagates exceptions" `Quick
      test_parallel_map_propagates_exceptions;
    Alcotest.test_case "campaign SC sets match tree enumeration" `Quick
      test_litmus_campaign_unaffected_by_stateful_memoization;
  ]
