(* Scale-out: snapshot readers against live writers (qcheck over torn
   tails), compaction byte-identity (qcheck), the shared in-process
   handle under domain concurrency, the multi-process coordinator's
   claim/segment/merge protocol, and the pooled serve loop. *)

module C = Wo_campaign.Campaign
module Store = Wo_campaign.Store
module Coordinator = Wo_campaign.Coordinator
module Serve = Wo_campaign.Serve
module J = Wo_obs.Json
module S = Wo_synth.Synth

let check = Alcotest.(check bool)

let temp_store () =
  let path = Filename.temp_file "wo-scaleout-test" ".store" in
  Sys.remove path;
  path

let with_store path f =
  let s = Store.openf path in
  Fun.protect ~finally:(fun () -> Store.close s) (fun () -> f s)

(* --- snapshots never see torn records ---------------------------------------- *)

(* A reader that opens (or refreshes) mid-append sees some complete
   prefix of the log and nothing else: simulate the in-flight append by
   truncating the file at an arbitrary byte, load a read-only snapshot,
   and demand (a) it indexes exactly the complete prefix, byte-correct,
   (b) it never modifies the file (a concurrent writer owns the tail),
   (c) refresh picks up what a writer appends afterwards. *)
let prop_snapshot_never_torn =
  QCheck.Test.make
    ~name:"readers opened mid-append see a complete prefix, never a torn record"
    ~count:60
    QCheck.(pair (int_range 1 20) (int_range 0 4000))
    (fun (n, cut_rand) ->
      let path = temp_store () in
      let kv i =
        ( Printf.sprintf "key-%d-%s" i (String.make (i mod 9) 'k'),
          Printf.sprintf "value-%d-%s" i (String.make (i * 17 mod 60) 'v') )
      in
      with_store path (fun s ->
          for i = 1 to n do
            let k, v = kv i in
            Store.add s ~key:k ~value:v
          done);
      let size = (Unix.stat path).Unix.st_size in
      let cut = 8 + (cut_rand mod (size - 8 + 1)) in
      let fd = Unix.openfile path [ Unix.O_RDWR ] 0o644 in
      Unix.ftruncate fd cut;
      Unix.close fd;
      let snap = Store.Snapshot.load path in
      let seen = Store.Snapshot.length snap in
      let prefix_ok = ref true in
      for i = 1 to seen do
        let k, v = kv i in
        if Store.Snapshot.find snap ~key:k <> Some v then prefix_ok := false
      done;
      for i = seen + 1 to n do
        let k, _ = kv i in
        if Store.Snapshot.mem snap ~key:k then prefix_ok := false
      done;
      (* the snapshot must not have truncated or written the file *)
      let untouched = (Unix.stat path).Unix.st_size = cut in
      (* a writer reopens (recovering the tail) and appends; refresh
         must surface the append without disturbing the old snapshot *)
      with_store path (fun s -> Store.add s ~key:"fresh" ~value:"record");
      let snap2 = Store.Snapshot.refresh snap in
      let refreshed = Store.Snapshot.find snap2 ~key:"fresh" = Some "record" in
      let old_unchanged = not (Store.Snapshot.mem snap ~key:"fresh") in
      Store.Snapshot.close snap2;
      Sys.remove path;
      !prefix_ok && untouched && refreshed && old_unchanged)

(* --- compaction preserves every live pair byte-identically -------------------- *)

let prop_compaction_identity =
  QCheck.Test.make
    ~name:"compaction preserves every live (key, value) pair byte-identically"
    ~count:60
    QCheck.(pair (int_range 1 40) (int_range 1 8))
    (fun (n, distinct) ->
      let path = temp_store () in
      (* keys collide (i mod distinct): later adds are superseded
         duplicates that compaction must drop *)
      let key i = Printf.sprintf "key-%d" (i mod distinct) in
      let value i = Printf.sprintf "value-%d-%s" i (String.make (i mod 23) 'z') in
      with_store path (fun s ->
          for i = 1 to n do
            Store.add s ~key:(key i) ~value:(value i)
          done);
      let live =
        with_store path (fun s ->
            List.filter_map
              (fun d ->
                let k = Printf.sprintf "key-%d" d in
                Option.map (fun v -> (k, v)) (Store.find s ~key:k))
              (List.init distinct Fun.id))
      in
      let cs = Store.compact path in
      let after_ok =
        with_store path (fun s ->
            Store.length s = List.length live
            && Store.dead_estimate s = 0
            && Store.tail_dropped s = 0
            && List.for_all
                 (fun (k, v) -> Store.find s ~key:k = Some v)
                 live)
      in
      let stats_ok =
        cs.Store.cs_before_records = n
        && cs.Store.cs_after_records = List.length live
        && cs.Store.cs_after_bytes <= cs.Store.cs_before_bytes
        && cs.Store.cs_after_bytes = (Unix.stat path).Unix.st_size
      in
      Sys.remove path;
      after_ok && stats_ok)

(* --- the shared handle under domain concurrency ------------------------------- *)

let test_shared_concurrent () =
  let path = temp_store () in
  Store.close (Store.openf path);
  let h = Store.Shared.openf path in
  Fun.protect ~finally:(fun () -> Store.Shared.close h) @@ fun () ->
  let n = 300 in
  let written = Atomic.make 0 in
  let torn = Atomic.make 0 in
  let key i = Printf.sprintf "cell-%d" i in
  let value i = Printf.sprintf "verdict-%d-%s" i (String.make (i mod 41) 'w') in
  (* worker 0 appends; the others chase the high-water mark with
     lock-free finds — every key at or below it must answer exactly its
     value (a torn or missing read is a protocol violation) *)
  Wo_workload.Sweep.parallel_iter ~domains:4
    (fun w ->
      if w = 0 then
        for i = 1 to n do
          ignore (Store.Shared.add_if_absent h ~key:(key i) ~value:(value i));
          Atomic.set written i
        done
      else
        while Atomic.get written < n do
          let hi = Atomic.get written in
          if hi > 0 then begin
            let i = 1 + ((hi * (w + 7)) mod hi) in
            match Store.Shared.find h ~key:(key i) with
            | Some v when String.equal v (value i) -> ()
            | _ -> Atomic.incr torn
          end;
          Domain.cpu_relax ()
        done)
    [ 0; 1; 2; 3 ];
  check "no torn or missing concurrent reads" true (Atomic.get torn = 0);
  check "all records present" true (Store.Shared.length h = n);
  check "add_if_absent refuses duplicates" false
    (Store.Shared.add_if_absent h ~key:(key 1) ~value:"other");
  check "duplicate add did not overwrite" true
    (Store.Shared.find h ~key:(key 1) = Some (value 1));
  Sys.remove path

(* --- the coordinator protocol ------------------------------------------------- *)

let specs =
  [
    Option.get (Wo_machines.Presets.spec_of "sc-dir");
    Option.get (Wo_machines.Presets.spec_of "wo-new");
  ]

let families = [ "cycle-mixed" ]

let count = 6

let cases () =
  let corpus = C.catalogue_corpus () in
  List.concat_map
    (fun family ->
      match S.batch ~corpus ~family ~base_seed:1 ~count () with
      | Ok cs -> cs
      | Error e -> Alcotest.failf "batch: %s" e)
    families

let config path =
  {
    (C.default_config ~store_path:path) with
    C.runs = 4;
    shard = 3;
    domains = Some 1;
  }

let cleanup_campaign path =
  (try Coordinator.cleanup (Coordinator.attach ~store_path:path)
   with Failure _ | Sys_error _ -> ());
  if Sys.file_exists path then Sys.remove path

let test_coordinator_identity () =
  let cases = cases () in
  (* single-process reference *)
  let ref_path = temp_store () in
  let r_ref = C.run (config ref_path) ~specs ~cases in
  (* coordinated: two sequential workers share the directory — the
     first stops after one claim (a worker that died would look the
     same to the second), the second finishes the campaign *)
  let path = temp_store () in
  let co = Coordinator.create (config path) ~specs ~families ~count in
  check "plan agrees with reference total" true
    (Coordinator.cells co = r_ref.C.r_total);
  let w1 = Coordinator.run_worker ~domains:1 ~max_claims:1 co in
  check "first worker claimed one shard" true (w1.Coordinator.w_claimed = 1);
  check "not everything is done yet" true
    (Coordinator.done_count co < Coordinator.shards co);
  let w2 = Coordinator.run_worker ~domains:1 co in
  check "second worker finished the rest" true
    (w1.Coordinator.w_claimed + w2.Coordinator.w_claimed
    = Coordinator.shards co);
  check "every shard done" true
    (Coordinator.done_count co = Coordinator.shards co);
  let segs, appended = Coordinator.merge co in
  check "every segment merged" true (segs = Coordinator.shards co);
  check "merge appended records" true (appended > 0);
  (* the merged store replays byte-identically to the reference *)
  let warm = C.run (config path) ~specs ~cases in
  check "warm run over merged store executes nothing" true
    (warm.C.r_executed = 0);
  Alcotest.(check string)
    "coordinated report byte-identical to single-process"
    (C.findings_report r_ref) (C.findings_report warm);
  (* merge is idempotent *)
  let _, appended2 = Coordinator.merge co in
  check "re-merge appends nothing" true (appended2 = 0);
  Coordinator.cleanup co;
  check "cleanup removes the campaign directory" false
    (Sys.file_exists (path ^ ".campaign"));
  Sys.remove ref_path;
  Sys.remove path

let test_coordinator_resume_after_kill () =
  (* A killed worker leaves a stale lock (its pid is dead) and a torn
     segment; the next worker must break the lock, recover the
     segment's complete records, and settle only the remainder. *)
  let cases = cases () in
  let path = temp_store () in
  let co = Coordinator.create (config path) ~specs ~families ~count in
  (* settle shard 0 for real once, to harvest a valid segment *)
  let w = Coordinator.run_worker ~domains:1 ~max_claims:1 co in
  check "one shard settled" true (w.Coordinator.w_claimed = 1);
  let seg0 = Filename.concat (path ^ ".campaign") "segs/shard-00000.seg" in
  let lock0 = Filename.concat (path ^ ".campaign") "locks/shard-00000.lock" in
  let done0 = Filename.concat (path ^ ".campaign") "segs/shard-00000.done" in
  check "segment exists" true (Sys.file_exists seg0);
  (* simulate the kill: drop the done marker, tear the segment's tail,
     and plant a lock owned by a dead pid on this host *)
  Sys.remove done0;
  let size = (Unix.stat seg0).Unix.st_size in
  let fd = Unix.openfile seg0 [ Unix.O_RDWR ] 0o644 in
  Unix.ftruncate fd (size - 5);
  Unix.close fd;
  Sys.remove lock0;
  (* any pid the kernel says is unused (fork is off-limits here: the
     test binary has already spawned domains) *)
  let dead_pid =
    let rec probe p =
      match Unix.kill p 0 with
      | () -> probe (p - 1)
      | exception Unix.Unix_error (Unix.ESRCH, _, _) -> p
      | exception Unix.Unix_error (_, _, _) -> probe (p - 1)
    in
    probe 4_000_000
  in
  let oc = open_out lock0 in
  Printf.fprintf oc "%d %s\n" dead_pid (Unix.gethostname ());
  close_out oc;
  (* the next worker must reclaim shard 0 (stale lock) and finish all *)
  let w2 = Coordinator.run_worker ~domains:1 co in
  check "resumed worker reclaimed the torn shard" true
    (w2.Coordinator.w_claimed = Coordinator.shards co);
  check "torn record was re-settled, complete ones replayed" true
    (w2.Coordinator.w_replayed > 0);
  check "all shards done after resume" true
    (Coordinator.done_count co = Coordinator.shards co);
  ignore (Coordinator.merge co);
  let warm = C.run (config path) ~specs ~cases in
  check "resumed campaign replays everything" true (warm.C.r_executed = 0);
  let ref_path = temp_store () in
  let r_ref = C.run (config ref_path) ~specs ~cases in
  Alcotest.(check string)
    "report after kill+resume byte-identical"
    (C.findings_report r_ref) (C.findings_report warm);
  Coordinator.cleanup co;
  Sys.remove ref_path;
  Sys.remove path

let test_live_lock_respected () =
  let path = temp_store () in
  let co = Coordinator.create (config path) ~specs ~families ~count in
  let lock0 = Filename.concat (path ^ ".campaign") "locks/shard-00000.lock" in
  (* a lock held by a live pid (ours) must not be broken *)
  let oc = open_out lock0 in
  Printf.fprintf oc "%d %s\n" (Unix.getpid ()) (Unix.gethostname ());
  close_out oc;
  let w = Coordinator.run_worker ~domains:1 co in
  check "live-locked shard was skipped" true
    (w.Coordinator.w_claimed = Coordinator.shards co - 1);
  check "locked shard not done" false (Coordinator.shard_done co 0);
  Sys.remove lock0;
  let w2 = Coordinator.run_worker ~domains:1 co in
  check "released shard claimed" true (w2.Coordinator.w_claimed = 1);
  Coordinator.cleanup co;
  Sys.remove path

(* --- campaign auto-compaction -------------------------------------------------- *)

let test_auto_compact () =
  let cases = cases () in
  let path = temp_store () in
  (* a cold run writes no duplicates: no compaction even at threshold 0+ *)
  let cfg = { (config path) with C.auto_compact = Some 0.01 } in
  let cold = C.run cfg ~specs ~cases in
  check "clean run does not compact" true (cold.C.r_compacted = None);
  let records = cold.C.r_store_records in
  (* duplicate every record (as merged segments from a double-claimed
     shard would), then run warm: half the store is superseded *)
  let pairs = ref [] in
  with_store path (fun s ->
      Store.iter s (fun ~key ~value -> pairs := (key, value) :: !pairs);
      List.iter (fun (k, v) -> Store.add s ~key:k ~value:v) !pairs);
  let warm = C.run cfg ~specs ~cases in
  check "warm run replays despite duplicates" true (warm.C.r_executed = 0);
  (match warm.C.r_compacted with
  | None -> Alcotest.fail "50% superseded store did not auto-compact"
  | Some cs ->
    check "compaction dropped the duplicates" true
      (cs.Store.cs_after_records = records
      && cs.Store.cs_before_records = 2 * records));
  Alcotest.(check string)
    "report unchanged by compaction"
    (C.findings_report cold) (C.findings_report warm);
  (* and the compacted store still replays byte-identically *)
  let again = C.run cfg ~specs ~cases in
  check "post-compaction run replays everything" true
    (again.C.r_executed = 0 && again.C.r_compacted = None);
  Sys.remove path

(* --- the pooled serve loop ------------------------------------------------------ *)

let test_serve_pool_socket () =
  let path = temp_store () in
  let sock_path = Filename.temp_file "wo-serve-test" ".sock" in
  Sys.remove sock_path;
  let server = Serve.create ~store_path:path in
  let d =
    Domain.spawn (fun () ->
        Serve.serve ~pool:2 server (Serve.Unix_socket sock_path))
  in
  let deadline = Unix.gettimeofday () +. 10. in
  while
    (not (Sys.file_exists sock_path)) && Unix.gettimeofday () < deadline
  do
    ignore (Unix.select [] [] [] 0.02)
  done;
  let rpc fd line =
    let s = line ^ "\n" in
    ignore (Unix.write_substring fd s 0 (String.length s));
    let buf = Bytes.create 65536 in
    let b = Buffer.create 256 in
    let rec go () =
      let n = Unix.read fd buf 0 (Bytes.length buf) in
      if n > 0 then begin
        Buffer.add_subbytes b buf 0 n;
        if not (String.contains (Buffer.contents b) '\n') then go ()
      end
    in
    go ();
    J.of_string (String.trim (Buffer.contents b))
  in
  let connect () =
    (* the socket path appears at bind, a moment before listen *)
    let rec go tries =
      let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
      match Unix.connect fd (Unix.ADDR_UNIX sock_path) with
      | () -> fd
      | exception Unix.Unix_error _ when tries > 0 ->
        Unix.close fd;
        ignore (Unix.select [] [] [] 0.05);
        go (tries - 1)
    in
    go 100
  in
  (* two clients connected at once, both served *)
  let c1 = connect () and c2 = connect () in
  let ping c =
    match rpc c "{\"op\": \"ping\"}" with
    | Ok j -> Option.bind (J.member "pong" j) J.to_bool_opt = Some true
    | Error _ -> false
  in
  check "client 1 served" true (ping c1);
  check "client 2 served concurrently" true (ping c2);
  Unix.close c1;
  (* shutdown wakes the whole pool and serve returns *)
  (match rpc c2 "{\"op\": \"shutdown\"}" with
  | Ok j ->
    check "shutdown acknowledged" true
      (Option.bind (J.member "stopping" j) J.to_bool_opt = Some true)
  | Error e -> Alcotest.failf "shutdown response: %s" e);
  Unix.close c2;
  Domain.join d;
  check "requests counted across the pool" true (Serve.requests server >= 3);
  Serve.close server;
  check "socket path removed on exit" false (Sys.file_exists sock_path);
  Sys.remove path

let tests =
  [
    QCheck_alcotest.to_alcotest prop_snapshot_never_torn;
    QCheck_alcotest.to_alcotest prop_compaction_identity;
    Alcotest.test_case "shared store: lock-free reads under a live writer"
      `Quick test_shared_concurrent;
    Alcotest.test_case
      "coordinator: two workers reproduce the single-process report" `Quick
      test_coordinator_identity;
    Alcotest.test_case "coordinator: kill -9 resume (stale lock, torn segment)"
      `Quick test_coordinator_resume_after_kill;
    Alcotest.test_case "coordinator: live locks are never broken" `Quick
      test_live_lock_respected;
    Alcotest.test_case "campaign auto-compacts a half-superseded store" `Quick
      test_auto_compact;
    Alcotest.test_case "serve pool: concurrent clients, clean shutdown" `Quick
      test_serve_pool_socket;
  ]
