(* Lockstep tests for the compiled machine path (DESIGN.md: machine
   engine).  The compiled frontend and the reusable sessions are pure
   performance mechanisms: every result they produce must be
   byte-identical — same Marshal fingerprint of the full [Machine.result]
   — to a fresh-construction AST run, the oracle the rest of the suite
   already trusts.  Fingerprinting the whole record (outcome, trace,
   cycles, per-proc finish times, stats, stalls, taps) means a divergence
   anywhere in the observable record fails, not just in the outcome. *)

module M = Wo_machines.Machine
module L = Wo_litmus.Litmus
module P = Wo_machines.Presets
module Sweep = Wo_workload.Sweep

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

(* [Closures] tolerates the rare [Rmw_fn] payload in a trace; for the
   catalogued and synthesized programs (descriptor RMWs only) the flag
   is inert and the fingerprint is a pure function of the data. *)
let fingerprint (r : M.result) =
  Digest.to_hex (Digest.string (Marshal.to_string r [ Marshal.Closures ]))

let fresh_fp machine ~seed program = fingerprint (M.run machine ~seed program)

(* 1. Every catalogued litmus test, on every preset, at several seeds:
   a compiled session's results are fingerprint-identical to fresh AST
   runs.  This is the complete product, not a sample — it is what lets
   the litmus harness default to compiled sessions. *)
let test_compiled_session_matches_fresh_ast () =
  List.iter
    (fun (machine : M.t) ->
      let session = M.new_session machine M.Compiled in
      List.iter
        (fun (t : L.t) ->
          for seed = 1 to 3 do
            let got =
              fingerprint (M.session_run session ~seed t.L.program)
            in
            let want = fresh_fp machine ~seed t.L.program in
            if got <> want then
              Alcotest.failf "%s / %s / seed %d: compiled <> fresh AST"
                machine.M.name t.L.name seed
          done)
        L.all)
    P.all

(* 2. The same lockstep over random programs — racy (unsynchronized) and
   lock-disciplined (spin loops, so the compiled jump resolution and the
   RMW fast path are exercised hard). *)
let prop_random_programs_lockstep =
  QCheck.Test.make ~name:"compiled session = fresh AST on random programs"
    ~count:25 QCheck.small_int (fun seed ->
      let programs =
        [
          Wo_litmus.Random_prog.racy ~seed ~procs:3 ~ops_per_proc:4 ~locs:3 ();
          Wo_litmus.Random_prog.lock_disciplined ~seed ~procs:2
            ~sections_per_proc:2 ~locks:2 ~shared_locs:2 ();
        ]
      in
      List.for_all
        (fun (machine : M.t) ->
          let session = M.new_session machine M.Compiled in
          List.for_all
            (fun program ->
              fingerprint (M.session_run session ~seed:(seed + 1) program)
              = fresh_fp machine ~seed:(seed + 1) program)
            programs)
        [ P.wo_new; P.sc_dir ])

(* 3. Session reuse across interleaved programs and repeated seeds: the
   in-place reset must leave no residue — rerunning an earlier (program,
   seed) pair through a much-reused session reproduces its bytes. *)
let test_session_reset_no_residue () =
  List.iter
    (fun engine ->
      let machine = P.wo_new in
      let session = M.new_session machine engine in
      let t1 = L.dekker_sync and t2 = L.figure1 in
      let first = fingerprint (M.session_run session ~seed:7 t1.L.program) in
      (* churn: different programs (different proc counts force a
         rebuild), different seeds *)
      ignore (M.session_run session ~seed:3 t2.L.program);
      ignore (M.session_run session ~seed:9 t1.L.program);
      ignore (M.session_run session ~seed:4 t2.L.program);
      let again = fingerprint (M.session_run session ~seed:7 t1.L.program) in
      check
        (Printf.sprintf "reused session reproduces (%s)" (M.engine_name engine))
        true
        (first = again && first = fresh_fp machine ~seed:7 t1.L.program))
    [ M.Compiled; M.Ast ]

(* 4. A [Machine_error] mid-batch must not poison the session: the
   watchdog abandons a run with parked closures and half-filled state,
   and the start-of-run reset has to clear all of it.  The deadlocking
   (program, seed) pair is the known instance from the coarse-counter
   regression test. *)
let test_session_survives_machine_error () =
  let program =
    Wo_litmus.Random_prog.lock_disciplined ~seed:4 ~procs:3
      ~sections_per_proc:4 ~locks:3 ~shared_locs:3 ()
  in
  let build () =
    Wo_machines.Coherent.make ~name:"machpath-coarse" ~description:""
      ~sequentially_consistent:false ~weakly_ordered_drf0:true
      {
        P.wo_new_config with
        Wo_machines.Coherent.fabric =
          Wo_machines.Coherent.Net { base = 2; jitter = 20 };
        cache =
          {
            P.wo_new_config.Wo_machines.Coherent.cache with
            Wo_cache.Cache_ctrl.coarse_counter = true;
          };
      }
  in
  (* a seed this machine completes on, found against the fresh oracle *)
  let oracle = build () in
  let good_seed =
    let rec find s =
      if s > 50 then Alcotest.fail "no completing seed below 50"
      else
        match M.run oracle ~seed:s program with
        | _ -> s
        | exception M.Machine_error _ -> find (s + 1)
    in
    find 1
  in
  List.iter
    (fun engine ->
      let machine = build () in
      let session = M.new_session machine engine in
      check
        (Printf.sprintf "seed 2 deadlocks in a session (%s)"
           (M.engine_name engine))
        true
        (try
           ignore (M.session_run session ~seed:2 program);
           false
         with M.Machine_error _ -> true);
      check
        (Printf.sprintf "post-error run is byte-identical to fresh (%s)"
           (M.engine_name engine))
        true
        (fingerprint (M.session_run session ~seed:good_seed program)
        = fresh_fp oracle ~seed:good_seed program))
    [ M.Compiled; M.Ast ]

(* 5. [run_batch] is exactly the per-seed session runs. *)
let test_run_batch_matches_per_seed () =
  let t = L.figure1 in
  let session = M.new_session P.wo_new M.Compiled in
  let seeds = [ 5; 1; 12 ] in
  let batch = M.run_batch session ~seeds t.L.program in
  check_int "batch length" (List.length seeds) (List.length batch);
  List.iter2
    (fun seed r ->
      check "batch element = fresh run" true
        (fingerprint r = fresh_fp P.wo_new ~seed t.L.program))
    seeds batch

(* 6. The sweep front door: an AST campaign and a compiled campaign
   report the same science — per cell, the full report content. *)
let report_fp (r : Wo_litmus.Runner.report) =
  Marshal.to_string
    ( r.Wo_litmus.Runner.machine,
      r.Wo_litmus.Runner.runs,
      r.Wo_litmus.Runner.sc_outcomes,
      r.Wo_litmus.Runner.histogram,
      r.Wo_litmus.Runner.violations,
      r.Wo_litmus.Runner.lemma1_failures,
      r.Wo_litmus.Runner.interesting_counts,
      r.Wo_litmus.Runner.total_cycles,
      r.Wo_litmus.Runner.sc_coverage )
    []

let test_sweep_engine_identity () =
  let machines = [ P.sc_dir; P.wo_new ] in
  let campaign engine =
    Sweep.litmus_campaign ~runs:8 ~base_seed:1 ~domains:2 ~engine ~machines
      L.all
  in
  let ast = campaign M.Ast and compiled = campaign M.Compiled in
  List.iter2
    (fun (a : Sweep.litmus_cell) (c : Sweep.litmus_cell) ->
      check
        (Printf.sprintf "sweep cell %s/%s engine-independent"
           a.Sweep.test.L.name a.Sweep.machine.M.name)
        true
        (report_fp a.Sweep.report = report_fp c.Sweep.report
        && a.Sweep.ok = c.Sweep.ok))
    ast.Sweep.cells compiled.Sweep.cells

(* 7. The campaign front door: same cases, same specs, one store per
   engine — the stores and the findings reports must be byte-identical
   (the store key does not mention the engine, so a store written by
   either can warm-resume the other). *)
let test_campaign_engine_identity () =
  let module C = Wo_campaign.Campaign in
  let cases =
    match
      Wo_synth.Synth.batch ~family:"cycle-mixed" ~base_seed:1 ~count:6 ()
    with
    | Ok cs -> cs
    | Error e -> Alcotest.failf "batch: %s" e
  in
  let specs =
    [
      Option.get (P.spec_of "sc-dir");
      Option.get (P.spec_of "wo-new");
    ]
  in
  let run engine =
    let path = Filename.temp_file "wo-machpath-test" ".store" in
    let config = { (C.default_config ~store_path:path) with C.runs = 4 } in
    let r = C.run ~engine config ~specs ~cases in
    (path, C.findings_report r)
  in
  let ast_path, ast_report = run M.Ast in
  let comp_path, comp_report = run M.Compiled in
  Alcotest.(check string) "findings reports identical" ast_report comp_report;
  let bytes path =
    let ic = open_in_bin path in
    let s = really_input_string ic (in_channel_length ic) in
    close_in ic;
    s
  in
  check "stores byte-identical" true (bytes ast_path = bytes comp_path);
  Sys.remove ast_path;
  Sys.remove comp_path

(* 8. The run-accounting counters move the right way. *)
let test_counters () =
  let runs0 = M.runs () and reuse0 = M.session_reuses () in
  let session = M.new_session P.wo_new M.Compiled in
  let t = L.figure1 in
  ignore (M.session_run session ~seed:1 t.L.program);
  ignore (M.session_run session ~seed:2 t.L.program);
  check "runs counted" true (M.runs () >= runs0 + 2);
  check "second run reused the session" true (M.session_reuses () > reuse0)

let tests =
  [
    Alcotest.test_case "compiled sessions = fresh AST (all tests x presets)"
      `Quick test_compiled_session_matches_fresh_ast;
    QCheck_alcotest.to_alcotest prop_random_programs_lockstep;
    Alcotest.test_case "session reset leaves no residue" `Quick
      test_session_reset_no_residue;
    Alcotest.test_case "session survives a Machine_error run" `Quick
      test_session_survives_machine_error;
    Alcotest.test_case "run_batch = per-seed session runs" `Quick
      test_run_batch_matches_per_seed;
    Alcotest.test_case "sweep campaigns engine-independent" `Quick
      test_sweep_engine_identity;
    Alcotest.test_case "campaign stores and reports engine-independent"
      `Quick test_campaign_engine_identity;
    Alcotest.test_case "machine counters account runs and reuse" `Quick
      test_counters;
  ]
