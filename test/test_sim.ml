(* Tests for the simulation substrate: RNG, engine, stats, trace. *)

module Rng = Wo_sim.Rng
module Engine = Wo_sim.Engine
module Stats = Wo_sim.Stats
module Trace = Wo_sim.Trace
module E = Wo_core.Event
module R = Wo_core.Relation

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

(* --- rng ------------------------------------------------------------------- *)

let test_rng_deterministic () =
  let a = Rng.make 42 and b = Rng.make 42 in
  let sa = List.init 20 (fun _ -> Rng.int a 1000) in
  let sb = List.init 20 (fun _ -> Rng.int b 1000) in
  Alcotest.(check (list int)) "same seed, same stream" sa sb

let test_rng_seeds_differ () =
  let a = Rng.make 1 and b = Rng.make 2 in
  let sa = List.init 10 (fun _ -> Rng.int a 1000000) in
  let sb = List.init 10 (fun _ -> Rng.int b 1000000) in
  check "different seeds differ" true (sa <> sb)

let test_rng_split () =
  let a = Rng.make 7 in
  let b = Rng.split a in
  let sa = List.init 10 (fun _ -> Rng.int a 1000000) in
  let sb = List.init 10 (fun _ -> Rng.int b 1000000) in
  check "split stream independent" true (sa <> sb)

let test_rng_bounds () =
  let r = Rng.make 3 in
  Alcotest.check_raises "zero bound" (Invalid_argument "Rng.int: bound must be positive")
    (fun () -> ignore (Rng.int r 0));
  check_int "int_in singleton" 5 (Rng.int_in r 5 5);
  Alcotest.check_raises "empty range" (Invalid_argument "Rng.int_in: empty range")
    (fun () -> ignore (Rng.int_in r 5 4))

let prop_rng_int_in_range =
  QCheck.Test.make ~name:"Rng.int stays in range" ~count:500
    QCheck.(pair small_int (1 -- 1000))
    (fun (seed, bound) ->
      let r = Rng.make seed in
      let v = Rng.int r bound in
      v >= 0 && v < bound)

let prop_shuffle_is_permutation =
  QCheck.Test.make ~name:"shuffle permutes" ~count:200
    QCheck.(pair small_int (small_list int))
    (fun (seed, l) ->
      let r = Rng.make seed in
      List.sort compare (Rng.shuffle r l) = List.sort compare l)

let test_rng_pick () =
  let r = Rng.make 1 in
  check "pick member" true (List.mem (Rng.pick r [ 1; 2; 3 ]) [ 1; 2; 3 ]);
  Alcotest.check_raises "empty pick" (Invalid_argument "Rng.pick: empty list")
    (fun () -> ignore (Rng.pick r []))

(* --- engine ---------------------------------------------------------------- *)

let test_engine_time_order () =
  let e = Engine.create () in
  let log = ref [] in
  Engine.schedule e ~delay:5 (fun () -> log := 5 :: !log);
  Engine.schedule e ~delay:1 (fun () -> log := 1 :: !log);
  Engine.schedule e ~delay:3 (fun () -> log := 3 :: !log);
  check "runs to idle" true (Engine.run e = `Idle);
  Alcotest.(check (list int)) "time order" [ 1; 3; 5 ] (List.rev !log);
  check_int "clock at last event" 5 (Engine.now e)

let test_engine_fifo_same_time () =
  let e = Engine.create () in
  let log = ref [] in
  for i = 1 to 5 do
    Engine.schedule e ~delay:2 (fun () -> log := i :: !log)
  done;
  ignore (Engine.run e);
  Alcotest.(check (list int)) "FIFO within a tick" [ 1; 2; 3; 4; 5 ]
    (List.rev !log)

let test_engine_nested_scheduling () =
  let e = Engine.create () in
  let log = ref [] in
  Engine.schedule e ~delay:1 (fun () ->
      log := "a" :: !log;
      Engine.schedule e ~delay:0 (fun () -> log := "b" :: !log);
      Engine.schedule e ~delay:2 (fun () -> log := "c" :: !log));
  ignore (Engine.run e);
  Alcotest.(check (list string)) "nested" [ "a"; "b"; "c" ] (List.rev !log)

let test_engine_limits () =
  let e = Engine.create () in
  let rec forever () = Engine.schedule e ~delay:1 forever in
  forever ();
  check "event limit" true (Engine.run ~max_events:100 e = `Event_limit);
  let e2 = Engine.create () in
  let rec tick () = Engine.schedule e2 ~delay:10 tick in
  tick ();
  check "time limit" true (Engine.run ~max_time:50 e2 = `Time_limit)

let test_engine_past_raises () =
  let e = Engine.create () in
  Engine.schedule e ~delay:5 (fun () ->
      Alcotest.check_raises "past" (Invalid_argument "Engine.schedule_at: time in the past")
        (fun () -> Engine.schedule_at e ~time:1 (fun () -> ())));
  ignore (Engine.run e)

let test_engine_pending () =
  let e = Engine.create () in
  Engine.schedule e ~delay:1 (fun () -> ());
  Engine.schedule e ~delay:2 (fun () -> ());
  check_int "pending" 2 (Engine.pending e);
  ignore (Engine.run e);
  check_int "drained" 0 (Engine.pending e)

(* The heap engine against the retained map-of-lists oracle
   (Engine.Reference): arbitrary schedule/schedule_at sequences —
   including same-tick bursts and scheduling from inside handlers — must
   execute in the identical order with identical clock readings. *)

let run_random_schedule (module E : Wo_sim.Engine.S) ~seed ~ops =
  let rng = Rng.make seed in
  let e = E.create () in
  let log = ref [] in
  let next = ref 0 in
  let rec spawn_from_handler () =
    match Rng.int rng 3 with
    | 0 -> ()
    | n ->
      for _ = 1 to n do
        if !next < ops then begin
          let id = !next in
          incr next;
          (* delay 0 exercises the same-tick "after the current batch"
             rule; the rest spreads events over a few ticks *)
          E.schedule e ~delay:(Rng.int rng 4) (handler id)
        end
      done
  and handler id () =
    log := (id, E.now e) :: !log;
    spawn_from_handler ()
  in
  for _ = 1 to 8 do
    if !next < ops then begin
      let id = !next in
      incr next;
      if Rng.int rng 2 = 0 then E.schedule e ~delay:(Rng.int rng 6) (handler id)
      else E.schedule_at e ~time:(E.now e + Rng.int rng 6) (handler id)
    end
  done;
  let stop = E.run e in
  (List.rev !log, stop, E.now e, E.pending e)

let prop_engine_matches_reference =
  QCheck.Test.make
    ~name:"heap engine executes random schedules identically to Reference"
    ~count:300 QCheck.small_int (fun seed ->
      run_random_schedule (module Engine) ~seed ~ops:200
      = run_random_schedule (module Engine.Reference) ~seed ~ops:200)

let test_engine_reference_time_limit () =
  (* max_time stops both engines at the same boundary (max_events is
     documented to differ within a tick, so only max_time is compared). *)
  let run (module E : Wo_sim.Engine.S) =
    let e = E.create () in
    let log = ref [] in
    let rec tick i () =
      log := i :: !log;
      E.schedule e ~delay:7 (tick (i + 1))
    in
    E.schedule e ~delay:0 (tick 0);
    let stop = E.run ~max_time:50 e in
    (List.rev !log, stop, E.now e)
  in
  check "same under max_time" true
    (run (module Engine) = run (module Engine.Reference))

let test_machine_trace_deterministic () =
  (* Per-seed byte identity of a full machine run on the heap engine:
     what `wo trace` prints must not depend on anything but the seed. *)
  let machine = Wo_machines.Presets.wo_new in
  let program =
    Wo_litmus.Litmus.dekker_sync.Wo_litmus.Litmus.program
  in
  List.iter
    (fun seed ->
      let digest () =
        let r = Wo_machines.Machine.run machine ~seed program in
        Digest.string
          (Format.asprintf "%a" Trace.pp r.Wo_machines.Machine.trace)
      in
      check (Printf.sprintf "seed %d" seed) true (digest () = digest ()))
    [ 1; 2; 3 ]

(* --- stats ------------------------------------------------------------------ *)

let test_stats () =
  let s = Stats.create () in
  Stats.incr s "a";
  Stats.incr s "a";
  Stats.add s "b" 10;
  Stats.max_to s "m" 5;
  Stats.max_to s "m" 3;
  check_int "incr" 2 (Stats.get s "a");
  check_int "add" 10 (Stats.get s "b");
  check_int "max keeps max" 5 (Stats.get s "m");
  check_int "missing is zero" 0 (Stats.get s "zzz");
  let s2 = Stats.create () in
  Stats.add s2 "a" 3;
  let m = Stats.merge s s2 in
  check_int "merge sums" 5 (Stats.get m "a");
  Alcotest.(check (list (pair string int)))
    "to_list sorted"
    [ ("a", 2); ("b", 10); ("m", 5) ]
    (Stats.to_list s)

(* --- trace ------------------------------------------------------------------ *)

let entry ~id ~proc ~seq ~kind ~loc ~c =
  {
    Trace.event = E.make ~id ~proc ~seq ~kind ~loc ();
    issued = c - 1;
    committed = c;
    performed = c + 1;
  }

let sample_trace () =
  let t = Trace.create () in
  Trace.add t (entry ~id:0 ~proc:0 ~seq:0 ~kind:E.Data_write ~loc:0 ~c:10);
  Trace.add t (entry ~id:1 ~proc:1 ~seq:0 ~kind:E.Sync_write ~loc:6 ~c:5);
  Trace.add t (entry ~id:2 ~proc:0 ~seq:1 ~kind:E.Sync_rmw ~loc:6 ~c:20);
  t

let test_trace_commit_order () =
  let t = sample_trace () in
  Alcotest.(check (list int)) "sorted by commit" [ 1; 0; 2 ]
    (List.map (fun (e : E.t) -> e.E.id) (Trace.events t));
  check_int "size" 3 (Trace.size t)

let test_trace_issue_order () =
  let t = sample_trace () in
  Alcotest.(check (list int)) "sorted by issue" [ 1; 0; 2 ]
    (List.map
       (fun (e : Trace.entry) -> e.Trace.event.E.id)
       (Trace.entries_by_issue t))

let test_trace_program_order () =
  let t = sample_trace () in
  let po = Trace.program_order t in
  check "P0 seq order" true (R.mem 0 2 po);
  check "no cross-proc" false (R.mem 1 0 po)

let test_trace_sync_commit_order () =
  let t = sample_trace () in
  let so = Trace.sync_commit_order t in
  check "sync loc 6: commit 5 before commit 20" true (R.mem 1 2 so);
  check "data op not included" false (R.mem 0 2 so)

let test_trace_find () =
  let t = sample_trace () in
  check "found" true (Trace.find t 1 <> None);
  check "absent" true (Trace.find t 99 = None)

let tests =
  [
    Alcotest.test_case "rng determinism" `Quick test_rng_deterministic;
    Alcotest.test_case "rng seeds differ" `Quick test_rng_seeds_differ;
    Alcotest.test_case "rng split" `Quick test_rng_split;
    Alcotest.test_case "rng bounds" `Quick test_rng_bounds;
    Alcotest.test_case "rng pick" `Quick test_rng_pick;
    QCheck_alcotest.to_alcotest prop_rng_int_in_range;
    QCheck_alcotest.to_alcotest prop_shuffle_is_permutation;
    Alcotest.test_case "engine time order" `Quick test_engine_time_order;
    Alcotest.test_case "engine FIFO per tick" `Quick test_engine_fifo_same_time;
    Alcotest.test_case "engine nested scheduling" `Quick
      test_engine_nested_scheduling;
    Alcotest.test_case "engine limits" `Quick test_engine_limits;
    Alcotest.test_case "engine rejects the past" `Quick test_engine_past_raises;
    Alcotest.test_case "engine pending" `Quick test_engine_pending;
    QCheck_alcotest.to_alcotest prop_engine_matches_reference;
    Alcotest.test_case "engine matches Reference under max_time" `Quick
      test_engine_reference_time_limit;
    Alcotest.test_case "machine trace deterministic per seed" `Quick
      test_machine_trace_deterministic;
    Alcotest.test_case "stats" `Quick test_stats;
    Alcotest.test_case "trace commit order" `Quick test_trace_commit_order;
    Alcotest.test_case "trace issue order" `Quick test_trace_issue_order;
    Alcotest.test_case "trace program order" `Quick test_trace_program_order;
    Alcotest.test_case "trace sync commit order" `Quick
      test_trace_sync_commit_order;
    Alcotest.test_case "trace find" `Quick test_trace_find;
  ]
