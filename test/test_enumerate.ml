(* Tests for the interleaving enumerator — the "all executions on the
   idealized architecture" quantifier of Definition 3. *)

module I = Wo_prog.Instr
module P = Wo_prog.Program
module En = Wo_prog.Enumerate
module O = Wo_prog.Outcome
module N = Wo_prog.Names

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let sb = Wo_litmus.Litmus.figure1.Wo_litmus.Litmus.program

let test_store_buffering_outcomes () =
  let outs = En.outcomes sb in
  check_int "exactly 3 SC outcomes" 3 (List.length outs);
  let both_zero =
    List.exists
      (fun o -> O.register o 0 N.r0 = Some 0 && O.register o 1 N.r0 = Some 0)
      outs
  in
  check "both-zero excluded" false both_zero

let test_message_passing_outcomes () =
  let mp = Wo_litmus.Litmus.message_passing.Wo_litmus.Litmus.program in
  let outs = En.outcomes mp in
  (* flag/data read combinations under SC: (0,0) (0,42) (1,42) *)
  check_int "three outcomes" 3 (List.length outs);
  check "flag-without-data excluded" false
    (List.exists
       (fun o -> O.register o 1 N.r1 = Some 1 && O.register o 1 N.r0 = Some 0)
       outs)

let test_dekker_sync_outcomes () =
  let outs =
    En.outcomes Wo_litmus.Litmus.dekker_sync.Wo_litmus.Litmus.program
  in
  check "both-killed excluded" false
    (List.exists Wo_litmus.Litmus.both_killed outs)

let test_single_thread_single_outcome () =
  let p = P.make [ [ I.Write (0, I.Const 1); I.Read (0, 0) ] ] in
  check_int "deterministic" 1 (List.length (En.outcomes p))

let test_execution_count () =
  (* Two independent single-op threads interleave in exactly 2 ways. *)
  let p = P.make [ [ I.Write (0, I.Const 1) ]; [ I.Write (1, I.Const 1) ] ] in
  check_int "2 interleavings" 2
    (List.length (List.of_seq (En.executions p)))

let test_interleaving_count_is_binomial () =
  (* Two threads of 3 independent ops each: C(6,3) = 20 interleavings. *)
  let ops loc = List.init 3 (fun i -> I.Write (loc, I.Const i)) in
  let p = P.make [ ops 0; ops 1 ] in
  check_int "C(6,3)" 20 (List.length (List.of_seq (En.executions p)))

let test_limits_raise () =
  (* The two threads are fully independent, so the reduced enumerator
     visits a single representative; the execution-count limits are
     exercised against the exhaustive oracle. *)
  let p =
    P.make
      [
        List.init 8 (fun i -> I.Write (0, I.Const i));
        List.init 8 (fun i -> I.Write (1, I.Const i));
      ]
  in
  check "max_executions raises" true
    (try
       ignore (En.outcomes ~strategy:En.Naive ~max_executions:10 p);
       false
     with En.Limit_exceeded -> true);
  check "max_events raises" true
    (try
       ignore (En.outcomes ~strategy:En.Naive ~max_events:4 p);
       false
     with En.Limit_exceeded -> true);
  (* max_events bounds a single execution's length, so it binds the
     reduced enumerator identically. *)
  check "max_events raises under POR" true
    (try
       ignore (En.outcomes ~max_events:4 p);
       false
     with En.Limit_exceeded -> true)

let test_outcomes_with_stats_truncates () =
  let p =
    P.make
      [
        List.init 6 (fun i -> I.Write (0, I.Const i));
        List.init 6 (fun i -> I.Write (1, I.Const i));
      ]
  in
  let _outs, stats =
    En.outcomes_with_stats ~strategy:En.Naive ~max_executions:5 p
  in
  check "truncated flag" true stats.En.truncated;
  check "counted" true (stats.En.executions >= 5);
  let _outs, stats = En.outcomes_with_stats p in
  check "complete run not truncated" false stats.En.truncated;
  check "states counted" true (stats.En.states > 0)

(* --- partial-order reduction --------------------------------------------- *)

let outcome_sets_equal a b =
  List.length a = List.length b && List.for_all2 (fun x y -> O.equal x y) a b

let test_por_matches_naive_on_litmus () =
  List.iter
    (fun (t : Wo_litmus.Litmus.t) ->
      let naive = En.outcomes ~strategy:En.Naive t.Wo_litmus.Litmus.program in
      let por = En.outcomes ~strategy:En.Por t.Wo_litmus.Litmus.program in
      check
        (Printf.sprintf "POR outcomes equal naive on %s" t.Wo_litmus.Litmus.name)
        true
        (outcome_sets_equal naive por))
    [
      Wo_litmus.Litmus.figure1;
      Wo_litmus.Litmus.message_passing;
      Wo_litmus.Litmus.dekker_sync;
      Wo_litmus.Litmus.atomicity;
      Wo_litmus.Litmus.coherence;
    ]

let test_por_prunes_states () =
  (* Independent per-thread prologues blow up the naive interleaving count
     but are all Mazurkiewicz-equivalent; POR must explore far fewer
     search-tree nodes while producing the same outcome set. *)
  let pad loc = List.init 4 (fun i -> I.Write (loc, I.Const i)) in
  let p =
    P.make
      [
        pad 2 @ [ I.Write (0, I.Const 1); I.Read (N.r0, 1) ];
        pad 3 @ [ I.Write (1, I.Const 1); I.Read (N.r0, 0) ];
      ]
  in
  let naive_outs, naive = En.outcomes_with_stats ~strategy:En.Naive p in
  let por_outs, por = En.outcomes_with_stats ~strategy:En.Por p in
  check "same outcome set" true (outcome_sets_equal naive_outs por_outs);
  check "POR visits fewer states" true (por.En.states * 5 <= naive.En.states);
  check "POR enumerates fewer executions" true
    (por.En.executions < naive.En.executions)

let prop_por_outcomes_equal_naive =
  (* Program shapes stay small because the naive side is exponential: the
     warmed racy generator emits (locs + ops_per_proc) memory events per
     processor. *)
  QCheck.Test.make
    ~name:"POR outcome set equals the naive oracle on random programs"
    ~count:60 QCheck.small_int (fun pseed ->
      let procs = 2 + (pseed mod 2) in
      let ops_per_proc = if procs = 2 then 3 else 2 in
      let program =
        Wo_litmus.Random_prog.racy ~seed:pseed ~procs ~ops_per_proc ~locs:2 ()
      in
      outcome_sets_equal
        (En.outcomes ~strategy:En.Naive program)
        (En.outcomes ~strategy:En.Por program))

let prop_por_drf0_verdict_equals_naive =
  QCheck.Test.make
    ~name:"POR and naive check_drf0 verdicts agree on random programs"
    ~count:40 QCheck.small_int (fun pseed ->
      let program =
        Wo_litmus.Random_prog.racy ~seed:pseed ~procs:2 ~ops_per_proc:3
          ~locs:2 ()
      in
      (En.check_drf0 ~strategy:En.Naive program = Ok ())
      = (En.check_drf0 ~strategy:En.Por program = Ok ()))

(* --- multicore fan-out ----------------------------------------------------- *)

let test_outcomes_par_deterministic () =
  (* Same outcome set regardless of the domain count and of domain
     scheduling: litmus programs and a wider random program. *)
  let programs =
    Wo_litmus.Litmus.figure1.Wo_litmus.Litmus.program
    :: Wo_litmus.Litmus.dekker_sync.Wo_litmus.Litmus.program
    :: List.init 3 (fun i ->
           Wo_litmus.Random_prog.racy ~seed:(i + 1) ~procs:3 ~ops_per_proc:3
             ~locs:2 ())
  in
  List.iter
    (fun program ->
      let reference = En.outcomes program in
      List.iter
        (fun domains ->
          let par, _stats = En.outcomes_par ~domains program in
          check
            (Printf.sprintf "outcomes_par ~domains:%d matches sequential"
               domains)
            true
            (outcome_sets_equal reference par))
        [ 1; 2; 3; 4 ])
    programs

let test_outcomes_par_strategies_agree () =
  let program =
    Wo_litmus.Random_prog.racy ~seed:7 ~procs:3 ~ops_per_proc:2 ~locs:2 ()
  in
  let naive, _ = En.outcomes_par ~strategy:En.Naive ~domains:3 program in
  let por, _ = En.outcomes_par ~strategy:En.Por ~domains:3 program in
  check "parallel naive equals parallel POR" true
    (outcome_sets_equal naive por)

let test_check_drf0_par () =
  List.iter
    (fun domains ->
      check "figure1 racy (par)" true
        (En.check_drf0_par ~domains sb <> Ok ());
      check "dekker-sync race-free (par)" true
        (En.check_drf0_par ~domains
           Wo_litmus.Litmus.dekker_sync.Wo_litmus.Litmus.program
        = Ok ());
      check "sync-chain race-free (par)" true
        (En.check_drf0_par ~domains
           Wo_litmus.Litmus.sync_chain.Wo_litmus.Litmus.program
        = Ok ()))
    [ 1; 2; 4 ]

let prop_check_drf0_par_matches_sequential =
  QCheck.Test.make
    ~name:"parallel DRF0 verdict equals sequential on random programs"
    ~count:25 QCheck.small_int (fun pseed ->
      let program =
        Wo_litmus.Random_prog.racy ~seed:pseed ~procs:2 ~ops_per_proc:3
          ~locs:2 ()
      in
      (En.check_drf0 program = Ok ())
      = (En.check_drf0_par ~domains:3 program = Ok ()))

let test_check_drf0 () =
  check "figure1 racy" true (En.check_drf0 sb <> Ok ());
  check "dekker-sync race-free" true
    (En.check_drf0 Wo_litmus.Litmus.dekker_sync.Wo_litmus.Litmus.program = Ok ());
  check "atomicity race-free" true
    (En.check_drf0 Wo_litmus.Litmus.atomicity.Wo_litmus.Litmus.program = Ok ());
  check "sync-chain race-free" true
    (En.check_drf0 Wo_litmus.Litmus.sync_chain.Wo_litmus.Litmus.program = Ok ())

(* Properties tying the enumerator to the reference interpreter. *)

let prop_random_run_in_enumerated_set =
  QCheck.Test.make
    ~name:"every randomly scheduled run's outcome is enumerated" ~count:50
    QCheck.(pair small_int small_int)
    (fun (pseed, sseed) ->
      let program =
        Wo_litmus.Random_prog.racy ~seed:pseed ~procs:2 ~ops_per_proc:3
          ~locs:2 ()
      in
      let observed =
        Wo_prog.Interp.outcome (Wo_prog.Interp.run_random ~seed:sseed program)
      in
      List.exists
        (fun o -> O.compare o observed = 0)
        (En.outcomes program))

let prop_round_robin_in_enumerated_set =
  QCheck.Test.make ~name:"the round-robin outcome is enumerated" ~count:50
    QCheck.small_int (fun pseed ->
      let program =
        Wo_litmus.Random_prog.racy ~seed:pseed ~procs:3 ~ops_per_proc:2
          ~locs:2 ()
      in
      let observed = Wo_prog.Interp.outcome (Wo_prog.Interp.run_round_robin program) in
      List.exists (fun o -> O.compare o observed = 0) (En.outcomes program))

let prop_all_executions_are_sc =
  QCheck.Test.make ~name:"every enumerated execution passes the SC witness"
    ~count:25 QCheck.small_int (fun pseed ->
      let program =
        Wo_litmus.Random_prog.racy ~seed:pseed ~procs:2 ~ops_per_proc:3
          ~locs:2 ()
      in
      Seq.for_all Wo_core.Sc.is_sequentially_consistent
        (En.executions program))

let tests =
  [
    Alcotest.test_case "store buffering" `Quick test_store_buffering_outcomes;
    Alcotest.test_case "message passing" `Quick test_message_passing_outcomes;
    Alcotest.test_case "dekker-sync" `Quick test_dekker_sync_outcomes;
    Alcotest.test_case "single thread" `Quick test_single_thread_single_outcome;
    Alcotest.test_case "execution count" `Quick test_execution_count;
    Alcotest.test_case "binomial interleavings" `Quick
      test_interleaving_count_is_binomial;
    Alcotest.test_case "limits raise" `Quick test_limits_raise;
    Alcotest.test_case "stats truncate" `Quick test_outcomes_with_stats_truncates;
    Alcotest.test_case "check_drf0" `Quick test_check_drf0;
    Alcotest.test_case "POR matches naive on litmus" `Quick
      test_por_matches_naive_on_litmus;
    Alcotest.test_case "POR prunes states" `Quick test_por_prunes_states;
    Alcotest.test_case "outcomes_par determinism" `Quick
      test_outcomes_par_deterministic;
    Alcotest.test_case "outcomes_par strategies agree" `Quick
      test_outcomes_par_strategies_agree;
    Alcotest.test_case "check_drf0_par" `Quick test_check_drf0_par;
    QCheck_alcotest.to_alcotest prop_por_outcomes_equal_naive;
    QCheck_alcotest.to_alcotest prop_por_drf0_verdict_equals_naive;
    QCheck_alcotest.to_alcotest prop_check_drf0_par_matches_sequential;
    QCheck_alcotest.to_alcotest prop_random_run_in_enumerated_set;
    QCheck_alcotest.to_alcotest prop_round_robin_in_enumerated_set;
    QCheck_alcotest.to_alcotest prop_all_executions_are_sc;
  ]
