(* Tests for the path-incremental DRF0/DRF1 checker (Wo_core.Drf0_inc).

   The closure-based Drf0.races is the oracle throughout: the
   incremental checker must agree on the verdict for every enumerated
   execution of random programs, and when it reports a race, that race
   must be one the closure also reports — with the new event being the
   earliest event that creates any race (that is what makes subtree
   pruning at the first racing edge sound and maximal). *)

module D = Wo_core.Drf0
module Inc = Wo_core.Drf0_inc
module En = Wo_prog.Enumerate
module Ex = Wo_core.Execution

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let race_ids (r : D.race) = (r.D.e1.Wo_core.Event.id, r.D.e2.Wo_core.Event.id)

let random_program pseed =
  Wo_litmus.Random_prog.racy ~seed:pseed ~procs:2 ~ops_per_proc:3 ~locs:2 ()

(* --- push/pop undo ---------------------------------------------------------- *)

let test_push_pop_undo () =
  let program = Wo_litmus.Litmus.figure1.Wo_litmus.Litmus.program in
  let execution =
    match En.executions program () with
    | Seq.Cons (e, _) -> e
    | Seq.Nil -> Alcotest.fail "no execution"
  in
  let events = Ex.events execution in
  let nprocs = Wo_prog.Program.num_procs program in
  let t = Inc.create ~nprocs () in
  let push_all () = List.map (fun e -> Inc.push t e) events in
  let first = push_all () in
  check_int "depth after pushes" (List.length events) (Inc.depth t);
  List.iter (fun _ -> Inc.pop t) events;
  check_int "depth after pops" 0 (Inc.depth t);
  (* the undo must be exact: replaying yields identical race reports *)
  let second = push_all () in
  check "replay after full undo gives identical results" true (first = second);
  Inc.reset t;
  check_int "reset empties" 0 (Inc.depth t);
  Alcotest.check_raises "pop on empty"
    (Invalid_argument "Drf0_inc.pop: empty trail") (fun () -> Inc.pop t)

let test_interleaved_push_pop () =
  (* Branch like the enumerator does: push a prefix, explore one suffix,
     pop back, explore another — the second suffix must behave as if the
     first never happened. *)
  let program = Wo_litmus.Litmus.dekker_sync.Wo_litmus.Litmus.program in
  let execution =
    match En.executions program () with
    | Seq.Cons (e, _) -> e
    | Seq.Nil -> Alcotest.fail "no execution"
  in
  let events = Array.of_list (Ex.events execution) in
  let n = Array.length events in
  let nprocs = Wo_prog.Program.num_procs program in
  let t = Inc.create ~nprocs () in
  let half = n / 2 in
  for i = 0 to half - 1 do
    ignore (Inc.push t events.(i))
  done;
  (* suffix one: the rest in order *)
  let suffix () =
    let rs = ref [] in
    for i = half to n - 1 do
      rs := Inc.push t events.(i) :: !rs
    done;
    for _ = half to n - 1 do
      Inc.pop t
    done;
    List.rev !rs
  in
  let a = suffix () in
  let b = suffix () in
  check "same suffix twice after backtracking" true (a = b);
  check_int "prefix depth preserved" half (Inc.depth t)

(* --- agreement with the closure oracle, per execution ----------------------- *)

let races_agree ?model ?mode execution =
  let closure = D.races ?model execution in
  match Inc.check_execution ?mode execution with
  | None -> closure = []
  | Some r ->
    let e1_id, e2_id = race_ids r in
    let closure_ids = List.map race_ids closure in
    (* the reported race is one the oracle knows... *)
    List.mem (e1_id, e2_id) closure_ids
    (* ...its new event is the first event to create any race
       (ids are assigned in execution order)... *)
    && List.for_all (fun (_, e2) -> e2_id <= e2) closure_ids
    (* ...and e1 is, among each processor's latest racing partner of
       that event, the one with the smallest id (the checker retains
       only the latest access per location and processor) *)
    &&
    let partners =
      List.filter_map
        (fun (cr : D.race) ->
          if cr.D.e2.Wo_core.Event.id = e2_id then Some cr.D.e1 else None)
        closure
    in
    let latest_per_proc =
      List.fold_left
        (fun acc (e : Wo_core.Event.t) ->
          match List.assoc_opt e.Wo_core.Event.proc acc with
          | Some id when id >= e.Wo_core.Event.id -> acc
          | _ ->
            (e.Wo_core.Event.proc, e.Wo_core.Event.id)
            :: List.remove_assoc e.Wo_core.Event.proc acc)
        [] partners
    in
    e1_id = List.fold_left (fun m (_, id) -> min m id) max_int latest_per_proc

let prop_first_race_matches_closure =
  QCheck.Test.make
    ~name:"incremental first race agrees with the closure oracle" ~count:40
    QCheck.small_int (fun pseed ->
      Seq.for_all (races_agree ?model:None ?mode:None)
        (En.executions (random_program pseed)))

let prop_first_race_matches_closure_drf1 =
  QCheck.Test.make
    ~name:"incremental DRF1 mode agrees with the drf1 closure oracle"
    ~count:40 QCheck.small_int (fun pseed ->
      Seq.for_all
        (races_agree ~model:Wo_core.Sync_model.drf1 ~mode:Inc.Mode_drf1)
        (En.executions (random_program pseed)))

(* --- agreement at the checker level ----------------------------------------- *)

let verdict = function Ok () -> true | Error _ -> false

let prop_check_drf0_matches_closure_checker =
  (* The user-facing property from the issue: the fast path and the
     closure path return the same verdict under both strategies, and on
     racy programs their reports expose the same first racing pair. *)
  QCheck.Test.make
    ~name:"check_drf0 incremental verdict equals closure verdict (Naive/Por)"
    ~count:30 QCheck.small_int (fun pseed ->
      let program = random_program pseed in
      List.for_all
        (fun strategy ->
          let inc = En.check_drf0 ~strategy program in
          let clo = En.check_drf0_closure ~strategy program in
          verdict inc = verdict clo)
        [ En.Naive; En.Por ])

let prop_check_drf0_matches_closure_checker_drf1 =
  QCheck.Test.make
    ~name:"check_drf0 incremental verdict equals closure verdict under drf1"
    ~count:30 QCheck.small_int (fun pseed ->
      let program = random_program pseed in
      let model = Wo_core.Sync_model.drf1 in
      List.for_all
        (fun strategy ->
          verdict (En.check_drf0 ~strategy ~model program)
          = verdict (En.check_drf0_closure ~strategy ~model program))
        [ En.Naive; En.Por ])

let test_litmus_verdicts_match () =
  (* Deterministic spot checks on the named litmus programs that have a
     bounded execution set. *)
  List.iter
    (fun (t : Wo_litmus.Litmus.t) ->
      if not t.Wo_litmus.Litmus.loops then begin
        let p = t.Wo_litmus.Litmus.program in
        check
          (Printf.sprintf "%s verdict" t.Wo_litmus.Litmus.name)
          (verdict (En.check_drf0_closure p))
          (verdict (En.check_drf0 p));
        check
          (Printf.sprintf "%s drf0 flag" t.Wo_litmus.Litmus.name)
          t.Wo_litmus.Litmus.drf0
          (verdict (En.check_drf0 p))
      end)
    Wo_litmus.Litmus.all

let tests =
  [
    Alcotest.test_case "push/pop undo" `Quick test_push_pop_undo;
    Alcotest.test_case "interleaved push/pop" `Quick test_interleaved_push_pop;
    Alcotest.test_case "litmus verdicts match closure" `Quick
      test_litmus_verdicts_match;
    QCheck_alcotest.to_alcotest prop_first_race_matches_closure;
    QCheck_alcotest.to_alcotest prop_first_race_matches_closure_drf1;
    QCheck_alcotest.to_alcotest prop_check_drf0_matches_closure_checker;
    QCheck_alcotest.to_alcotest prop_check_drf0_matches_closure_checker_drf1;
  ]
