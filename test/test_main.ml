(* The full test suite: one section per library (see DESIGN.md).
   `dune runtest` runs everything, including the `Slow-marked machine
   matrix tests. *)

let () =
  Alcotest.run "weak-ordering"
    [
      ("relation", Test_relation.tests);
      ("event", Test_event.tests);
      ("execution", Test_execution.tests);
      ("happens-before", Test_happens_before.tests);
      ("drf0", Test_drf0.tests);
      ("drf0-inc", Test_drf0_inc.tests);
      ("sc", Test_sc.tests);
      ("lemma1", Test_lemma1.tests);
      ("prog", Test_prog.tests);
      ("enumerate", Test_enumerate.tests);
      ("statespace", Test_statespace.tests);
      ("compiled", Test_compiled.tests);
      ("sim", Test_sim.tests);
      ("interconnect", Test_interconnect.tests);
      ("cache", Test_cache.tests);
      ("race", Test_race.tests);
      ("machines", Test_machines.tests);
      ("machpath", Test_machpath.tests);
      ("spec", Test_spec.tests);
      ("models", Test_models.tests);
      ("litmus", Test_litmus.tests);
      ("workload", Test_workload.tests);
      ("delay-set", Test_delay_set.tests);
      ("parse", Test_parse.tests);
      ("lockset", Test_lockset.tests);
      ("cross-check", Test_cross_check.tests);
      ("report", Test_report.tests);
      ("obs", Test_obs.tests);
      ("synth", Test_synth.tests);
      ("campaign", Test_campaign.tests);
      ("scaleout", Test_scaleout.tests);
    ]
