(* The campaign engine: store crash-recovery (qcheck over truncation
   points), verdict round-trips, resume-equals-uninterrupted reports,
   and the serve layer's pure request handler. *)

module C = Wo_campaign.Campaign
module Store = Wo_campaign.Store
module Serve = Wo_campaign.Serve
module J = Wo_obs.Json
module S = Wo_synth.Synth

let check = Alcotest.(check bool)

let temp_store () =
  let path = Filename.temp_file "wo-campaign-test" ".store" in
  Sys.remove path;
  (* Store.openf creates it *)
  path

let with_store path f =
  let s = Store.openf path in
  Fun.protect ~finally:(fun () -> Store.close s) (fun () -> f s)

(* --- the store --------------------------------------------------------------- *)

let test_store_basic () =
  let path = temp_store () in
  with_store path (fun s ->
      check "fresh store empty" true (Store.length s = 0);
      Store.add s ~key:"k1" ~value:"v1";
      Store.add s ~key:"k2" ~value:"";
      Store.add s ~key:"\x00bin\xffkey" ~value:String.(make 1000 '\x07');
      check "find k1" true (Store.find s ~key:"k1" = Some "v1");
      check "find empty value" true (Store.find s ~key:"k2" = Some "");
      check "find binary" true
        (Store.find s ~key:"\x00bin\xffkey" = Some (String.make 1000 '\x07'));
      check "mem missing" false (Store.mem s ~key:"k3"));
  with_store path (fun s ->
      check "reopen keeps records" true (Store.length s = 3);
      check "reopen clean tail" true (Store.tail_dropped s = 0);
      check "reopen find" true (Store.find s ~key:"k1" = Some "v1"));
  Sys.remove path

(* Crash simulation: build a log of [n] records, truncate the file at an
   arbitrary byte offset past the header, and reopen.  Every record
   wholly before the cut must be recovered; the torn tail must be
   dropped; and the store must accept appends afterwards. *)
let prop_truncation_recovery =
  QCheck.Test.make
    ~name:"store recovers every complete record after arbitrary truncation"
    ~count:60
    QCheck.(pair (int_range 1 20) (int_range 0 2000))
    (fun (n, cut_rand) ->
      let path = temp_store () in
      let kv i = (Printf.sprintf "key-%d-%s" i (String.make (i mod 7) 'x'),
                  Printf.sprintf "value-%d-%s" i (String.make (i * 13 mod 50) 'y'))
      in
      with_store path (fun s ->
          for i = 1 to n do
            let k, v = kv i in
            Store.add s ~key:k ~value:v
          done);
      let size = (Unix.stat path).Unix.st_size in
      (* cut somewhere in [8, size] — never into the magic *)
      let cut = 8 + (cut_rand mod (size - 8 + 1)) in
      let fd = Unix.openfile path [ Unix.O_RDWR ] 0o644 in
      Unix.ftruncate fd cut;
      Unix.close fd;
      let ok =
        with_store path (fun s ->
            (* every record the cut preserved must be intact *)
            let recovered = Store.length s in
            let all_good = ref true in
            for i = 1 to recovered do
              let k, v = kv i in
              if Store.find s ~key:k <> Some v then all_good := false
            done;
            (* records past the recovered prefix must be absent *)
            for i = recovered + 1 to n do
              let k, _ = kv i in
              if Store.mem s ~key:k then all_good := false
            done;
            (* and the store must still be appendable *)
            Store.add s ~key:"post-crash" ~value:"fine";
            !all_good && Store.find s ~key:"post-crash" = Some "fine")
      in
      let ok2 =
        with_store path (fun s -> Store.find s ~key:"post-crash" = Some "fine")
      in
      Sys.remove path;
      ok && ok2)

let test_store_rejects_foreign () =
  let path = Filename.temp_file "wo-campaign-test" ".store" in
  let oc = open_out path in
  output_string oc "NOTALOG!extra";
  close_out oc;
  (match Store.openf path with
  | exception Failure _ -> ()
  | s ->
    Store.close s;
    Alcotest.fail "foreign magic accepted");
  Sys.remove path

(* --- verdicts ---------------------------------------------------------------- *)

let test_verdict_roundtrip () =
  let vs =
    [
      {
        C.v_ok = true; v_expected_sc = true; v_appears_sc = true;
        v_violations = []; v_lemma1 = 0; v_error = None; v_witness = None;
      };
      {
        C.v_ok = false; v_expected_sc = true; v_appears_sc = false;
        v_violations = [ "P0:r0=1 /\\ [x]=2"; "P1:r0=0" ]; v_lemma1 = 3;
        v_error = Some "deadlock: no runnable processor";
        v_witness = Some "seed 4, outcome ...\n  t=0 P0 issues W(x)";
      };
    ]
  in
  List.iter
    (fun v ->
      match C.verdict_of_string (C.verdict_to_string v) with
      | Ok v' -> check "verdict round-trips" true (v = v')
      | Error e -> Alcotest.failf "verdict parse: %s" e)
    vs

(* --- campaigns: resume and determinism --------------------------------------- *)

let specs =
  [
    Option.get (Wo_machines.Presets.spec_of "sc-dir");
    Option.get (Wo_machines.Presets.spec_of "wo-new");
  ]

let cases () =
  match S.batch ~family:"cycle-mixed" ~base_seed:1 ~count:6 () with
  | Ok cs -> cs
  | Error e -> Alcotest.failf "batch: %s" e

let config path =
  { (C.default_config ~store_path:path) with C.runs = 4; shard = 3 }

let test_campaign_resume_identical () =
  let cases = cases () in
  (* uninterrupted reference *)
  let ref_path = temp_store () in
  let r_ref = C.run (config ref_path) ~specs ~cases in
  check "reference settles all" true
    (r_ref.C.r_executed > 0 && not r_ref.C.r_stopped_early);
  (* interrupted: two shards, then stop; then resume *)
  let path = temp_store () in
  let partial =
    C.run { (config path) with C.max_shards = Some 2 } ~specs ~cases
  in
  check "partial stopped early" true partial.C.r_stopped_early;
  check "partial settled two shards" true (partial.C.r_executed <= 6);
  let resumed = C.run (config path) ~specs ~cases in
  check "resume re-settles nothing already settled" true
    (resumed.C.r_cache_hits = partial.C.r_executed);
  check "resume finishes the campaign" true
    (resumed.C.r_executed + resumed.C.r_cache_hits = resumed.C.r_total);
  Alcotest.(check string)
    "resumed report byte-identical to uninterrupted"
    (C.findings_report r_ref) (C.findings_report resumed);
  (* a third run replays everything from the store *)
  let warm = C.run (config path) ~specs ~cases in
  check "warm run executes nothing" true (warm.C.r_executed = 0);
  check "warm run all cache hits" true (warm.C.r_cache_hits = warm.C.r_total);
  Sys.remove ref_path;
  Sys.remove path

let test_campaign_counters () =
  let rec_ = Wo_obs.Recorder.create () in
  let path = temp_store () in
  let result =
    Wo_obs.Recorder.with_sink rec_ (fun () ->
        C.run (config path) ~specs ~cases:(cases ()))
  in
  let find name =
    List.find_map
      (function
        | Wo_obs.Recorder.Counter
            { name = n; cat = Wo_obs.Recorder.Camp; value; _ }
          when String.equal n name ->
          Some value
        | _ -> None)
      (Wo_obs.Recorder.events rec_)
  in
  check "campaign.settled counter" true
    (find "campaign.settled" = Some result.C.r_executed);
  check "campaign.cache_hits counter" true
    (find "campaign.cache_hits" = Some result.C.r_cache_hits);
  Sys.remove path

(* --- the serve layer (pure handler, no sockets) ------------------------------ *)

let spec_json =
  J.Obj
    [
      ("name", J.String "serve-test");
      ("memory", J.Obj [ ("kind", J.String "cached") ]);
      ("sync", J.String "reserve-bit");
    ]

let req fields = J.Obj fields

let get_bool name j = Option.bind (J.member name j) J.to_bool_opt
let get_int name j = Option.bind (J.member name j) J.to_int_opt

let test_serve_handle () =
  let path = temp_store () in
  let t = Serve.create ~store_path:path in
  Fun.protect ~finally:(fun () -> Serve.close t) @@ fun () ->
  (* ping *)
  let resp, ctl = Serve.handle t (req [ ("op", J.String "ping") ]) in
  check "ping ok" true (get_bool "ok" resp = Some true && ctl = `Continue);
  (* list *)
  let resp, _ = Serve.handle t (req [ ("op", J.String "list") ]) in
  check "list has families" true
    (match Option.bind (J.member "families" resp) J.to_list_opt with
    | Some fs -> List.length fs = List.length S.families
    | None -> false);
  (* synth *)
  let resp, _ =
    Serve.handle t
      (req
         [
           ("op", J.String "synth"); ("family", J.String "cycle-drf0");
           ("seed", J.Int 2);
         ])
  in
  check "synth ok" true (get_bool "ok" resp = Some true);
  (* check: first cold, then a cache hit against the same store *)
  let creq =
    req
      [
        ("op", J.String "check"); ("family", J.String "cycle-drf0");
        ("seed", J.Int 2); ("runs", J.Int 3); ("spec", spec_json);
      ]
  in
  let resp, _ = Serve.handle t creq in
  check "check cold" true
    (get_bool "ok" resp = Some true && get_bool "cache_hit" resp = Some false);
  let resp, _ = Serve.handle t creq in
  check "check warm" true (get_bool "cache_hit" resp = Some true);
  (* sweep over 4 seeds: seed 2 is already settled *)
  let resp, _ =
    Serve.handle t
      (req
         [
           ("op", J.String "sweep"); ("family", J.String "cycle-drf0");
           ("seed", J.Int 1); ("count", J.Int 4); ("runs", J.Int 3);
           ("spec", spec_json);
         ])
  in
  check "sweep reuses the settled cell" true
    (get_int "cells" resp = Some 4 && get_int "cache_hits" resp = Some 1);
  (* errors keep the connection open *)
  let resp, ctl = Serve.handle t (req [ ("op", J.String "nope") ]) in
  check "unknown op" true (get_bool "ok" resp = Some false && ctl = `Continue);
  let resp, ctl = Serve.handle t (req [ ("x", J.Int 1) ]) in
  check "missing op" true (get_bool "ok" resp = Some false && ctl = `Continue);
  let line, ctl = Serve.handle_line t "{not json" in
  check "parse error answered" true
    (ctl = `Continue && String.length line > 0 &&
     (match J.of_string line with
     | Ok j -> get_bool "ok" j = Some false
     | Error _ -> false));
  (* stats and shutdown *)
  let resp, _ = Serve.handle t (req [ ("op", J.String "stats") ]) in
  check "stats counts requests" true
    (match get_int "requests" resp with Some n -> n >= 8 | None -> false);
  let _, ctl = Serve.handle t (req [ ("op", J.String "shutdown") ]) in
  check "shutdown stops" true (ctl = `Stop);
  Sys.remove path

let test_serve_check_matches_campaign_key () =
  (* A serve check and a campaign run with the same parameters must
     settle the same store cell: run a campaign, then ask the server —
     every answer must be a cache hit. *)
  let path = temp_store () in
  let cases = cases () in
  let specs = [ Option.get (Wo_machines.Presets.spec_of "wo-new") ] in
  let cfg = { (C.default_config ~store_path:path) with C.runs = 3 } in
  let r = C.run cfg ~specs ~cases in
  check "campaign settled" true (r.C.r_executed > 0);
  let t = Serve.create ~store_path:path in
  Fun.protect ~finally:(fun () -> Serve.close t) @@ fun () ->
  let spec_json = Wo_machines.Spec.to_json (List.hd specs) in
  List.iter
    (fun (c : S.case) ->
      let resp, _ =
        Serve.handle t
          (req
             [
               ("op", J.String "check");
               ("family", J.String c.S.family);
               ("seed", J.Int c.S.seed);
               ("runs", J.Int 3);
               ("spec", spec_json);
             ])
      in
      check
        (Printf.sprintf "serve replays campaign cell %s" c.S.name)
        true
        (get_bool "cache_hit" resp = Some true))
    cases;
  Sys.remove path

let tests =
  [
    Alcotest.test_case "store: add, find, reopen" `Quick test_store_basic;
    QCheck_alcotest.to_alcotest prop_truncation_recovery;
    Alcotest.test_case "store: foreign magic rejected" `Quick
      test_store_rejects_foreign;
    Alcotest.test_case "verdict JSON round-trips" `Quick test_verdict_roundtrip;
    Alcotest.test_case
      "interrupted+resumed campaign = uninterrupted (byte-identical report)"
      `Quick test_campaign_resume_identical;
    Alcotest.test_case "campaign emits observability counters" `Quick
      test_campaign_counters;
    Alcotest.test_case "serve: protocol round-trip on the pure handler" `Quick
      test_serve_handle;
    Alcotest.test_case "serve check replays campaign-settled cells" `Quick
      test_serve_check_matches_campaign_key;
  ]
