(* The synthesis layer: seed determinism down to the canonical byte
   encoding, up-front classification cross-checked against the
   exhaustive DRF0 checker, and the cycle families' forbidden outcomes
   confirmed to lie outside the enumerated SC set. *)

module S = Wo_synth.Synth
module L = Wo_litmus.Litmus

let check = Alcotest.(check bool)

let corpus =
  List.filter_map
    (fun (t : L.t) ->
      if t.L.loops then None
      else
        Some
          {
            S.base_name = t.L.name;
            S.base_program = t.L.program;
            S.base_drf0 = t.L.drf0;
          })
    L.all

let gen family seed =
  match S.generate ~corpus ~family ~seed () with
  | Ok c -> c
  | Error e -> Alcotest.failf "generate %s/%d: %s" family seed e

let encoding p =
  (Wo_workload.Sweep.program_key p).Wo_workload.Sweep.pk_payload

(* --- determinism ------------------------------------------------------------ *)

let prop_deterministic =
  QCheck.Test.make
    ~name:
      "same (family, seed) -> same case name and byte-identical canonical \
       encoding"
    ~count:60
    QCheck.(pair (int_bound (List.length S.families - 1)) small_int)
    (fun (fi, seed) ->
      let family = List.nth S.families fi in
      let a = gen family seed and b = gen family seed in
      a.S.name = b.S.name
      && a.S.classification = b.S.classification
      && String.equal (encoding a.S.program) (encoding b.S.program))

let test_batch_matches_generate () =
  List.iter
    (fun family ->
      match S.batch ~corpus ~family ~base_seed:3 ~count:5 () with
      | Error e -> Alcotest.failf "batch %s: %s" family e
      | Ok cases ->
        Alcotest.(check int) "batch count" 5 (List.length cases);
        List.iteri
          (fun i c ->
            let c' = gen family (3 + i) in
            check "batch = generate" true
              (c.S.name = c'.S.name
              && String.equal (encoding c.S.program) (encoding c'.S.program)))
          cases)
    S.families

(* --- classification cross-checks -------------------------------------------- *)

let drf0_verdict p =
  match Wo_prog.Enumerate.check_drf0_stateful ~domains:1 p with
  | (Ok (), _) -> true
  | (Error _, _) -> false

let test_drf0_by_construction () =
  (* Every drf0-classified cycle case must pass the exhaustive checker. *)
  for seed = 1 to 10 do
    let c = gen "cycle-drf0" seed in
    check
      (Printf.sprintf "%s passes check_drf0_stateful" c.S.name)
      true
      (drf0_verdict c.S.program)
  done

let test_racy_by_construction () =
  for seed = 1 to 10 do
    let c = gen "cycle-racy" seed in
    check
      (Printf.sprintf "%s fails check_drf0_stateful" c.S.name)
      false
      (drf0_verdict c.S.program)
  done

let test_mutant_classification_sound () =
  (* The mutation engine's classification transfer is conservative:
     whenever it does claim a class, the exhaustive checker agrees. *)
  let checked = ref 0 in
  for seed = 1 to 40 do
    let c = gen "mutate" seed in
    if not (Wo_prog.Program.has_loops c.S.program) then
      match c.S.classification with
      | S.Drf0_by_construction ->
        incr checked;
        check
          (Printf.sprintf "%s (drf0 mutant)" c.S.name)
          true (drf0_verdict c.S.program)
      | S.Racy_by_construction ->
        incr checked;
        check
          (Printf.sprintf "%s (racy mutant)" c.S.name)
          false (drf0_verdict c.S.program)
      | S.Unknown -> ()
  done;
  check "some classified mutants were cross-checked" true (!checked > 0)

(* --- the forbidden outcome -------------------------------------------------- *)

let test_forbidden_outside_sc () =
  (* The whole point of a critical cycle: its witnessing outcome must
     not be producible by any SC execution. *)
  List.iter
    (fun family ->
      for seed = 1 to 8 do
        let c = gen family seed in
        match c.S.forbidden with
        | None -> Alcotest.failf "%s: cycle case without forbidden" c.S.name
        | Some forbidden ->
          let sc, _ =
            Wo_prog.Enumerate.outcomes_stateful ~domains:1 c.S.program
          in
          check
            (Printf.sprintf "%s: forbidden outcome outside SC set" c.S.name)
            false
            (List.exists forbidden sc)
      done)
    [ "cycle-drf0"; "cycle-racy"; "cycle-mixed" ]

(* --- the legacy aliases ------------------------------------------------------ *)

let test_random_prog_aliases () =
  (* Random_prog must keep producing the exact historical programs: the
     aliases go through the synth surface without disturbing seeds. *)
  let a = Wo_litmus.Random_prog.racy ~seed:11 ~procs:3 ~ops_per_proc:4 () in
  let b = S.racy ~seed:11 ~procs:3 ~ops_per_proc:4 () in
  check "racy alias" true (String.equal (encoding a) (encoding b));
  let a = Wo_litmus.Random_prog.lock_disciplined ~seed:7 () in
  let b = S.lock_disciplined ~seed:7 () in
  check "lock-disciplined alias" true
    (a.Wo_prog.Program.threads = b.Wo_prog.Program.threads)

let tests =
  [
    QCheck_alcotest.to_alcotest prop_deterministic;
    Alcotest.test_case "batch agrees with generate" `Quick
      test_batch_matches_generate;
    Alcotest.test_case "cycle-drf0 cases pass the exhaustive DRF0 checker"
      `Quick test_drf0_by_construction;
    Alcotest.test_case "cycle-racy cases fail the exhaustive DRF0 checker"
      `Quick test_racy_by_construction;
    Alcotest.test_case "classified mutants agree with the exhaustive checker"
      `Slow test_mutant_classification_sound;
    Alcotest.test_case "forbidden outcomes lie outside the SC set" `Slow
      test_forbidden_outside_sc;
    Alcotest.test_case "Random_prog aliases preserve historical programs"
      `Quick test_random_prog_aliases;
  ]
