(* The machine-spec layer: spec-built presets must be byte-identical to
   machines assembled directly from the frozen seed configs, and the JSON
   form must round-trip.  This is the contract that lets Presets define
   every machine as data without changing a single simulated cycle. *)

module M = Wo_machines.Machine
module P = Wo_machines.Presets
module S = Wo_machines.Spec
module U = Wo_machines.Uncached
module C = Wo_machines.Coherent
module L = Wo_litmus.Litmus

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let check_string = Alcotest.(check string)

(* --- byte identity against the frozen seed configs -------------------------- *)

(* One digest per run covering everything a machine produces: outcome,
   trace, timing, stats, stall attribution, message taps.  Two machines
   with equal digests on every (test, seed) cell are indistinguishable
   to every consumer in the repository. *)
let fingerprint (m : M.t) ~seed program =
  let r = M.run m ~seed program in
  Digest.to_hex
    (Digest.string
       (Marshal.to_string
          ( r.M.outcome,
            Wo_sim.Trace.entries r.M.trace,
            r.M.cycles,
            r.M.proc_finish,
            List.sort compare r.M.stats,
            Wo_obs.Stall.to_stats r.M.stalls,
            Wo_obs.Tap.to_stats r.M.taps )
          []))

(* The driver configs exactly as the seed presets hard-coded them,
   before Presets became spec-built.  Kept frozen here on purpose: if
   Spec's knob derivation drifts, these do not drift with it. *)
let frozen_uncached name ~sc ~wo config =
  U.make ~name ~description:"" ~sequentially_consistent:sc
    ~weakly_ordered_drf0:wo config

let frozen_coherent name ~sc ~wo config =
  C.make ~name ~description:"" ~sequentially_consistent:sc
    ~weakly_ordered_drf0:wo config

let bus = Wo_machines.Memsys.Bus { transfer_cycles = 2 }
let net = Wo_machines.Memsys.Net { base = 4; jitter = 6 }

let base_coherent fabric policy cache =
  {
    C.fabric;
    policy;
    cache;
    slow_procs = [];
    slow_routes = [];
    local_cost = 1;
    migrations = [];
  }

let frozen_pairs =
  [
    (P.ideal_spec, Wo_machines.Ideal.machine);
    ( P.sc_bus_nocache_spec,
      frozen_uncached "sc-bus-nocache" ~sc:true ~wo:true
        {
          U.fabric = bus;
          write_buffer = None;
          wait_write_ack = true;
          flush_buffer_on_sync = true;
          modules = 1;
          local_cost = 1;
        } );
    ( P.bus_nocache_wb_spec,
      frozen_uncached "bus-nocache-wb" ~sc:false ~wo:true
        {
          U.fabric = bus;
          write_buffer =
            Some
              {
                U.depth = 8;
                read_bypass = true;
                forwarding = true;
                drain_delay = 6;
              };
          wait_write_ack = false;
          flush_buffer_on_sync = true;
          modules = 1;
          local_cost = 1;
        } );
    ( P.net_nocache_weak_spec,
      frozen_uncached "net-nocache" ~sc:false ~wo:false
        {
          U.fabric = net;
          write_buffer = None;
          wait_write_ack = false;
          flush_buffer_on_sync = false;
          modules = 4;
          local_cost = 1;
        } );
    ( P.net_nocache_rp3_spec,
      frozen_uncached "net-nocache-rp3" ~sc:true ~wo:true
        {
          U.fabric = net;
          write_buffer = None;
          wait_write_ack = true;
          flush_buffer_on_sync = true;
          modules = 4;
          local_cost = 1;
        } );
    ( P.rp3_fence_spec,
      frozen_uncached "rp3-fence" ~sc:false ~wo:true
        {
          U.fabric = net;
          write_buffer = None;
          wait_write_ack = false;
          flush_buffer_on_sync = true;
          modules = 4;
          local_cost = 1;
        } );
    ( P.sc_dir_spec,
      frozen_coherent "sc-dir" ~sc:true ~wo:true
        (base_coherent net C.sc_policy Wo_cache.Cache_ctrl.default_config) );
    ( P.bus_cache_spec,
      frozen_coherent "bus-cache" ~sc:false ~wo:false
        (base_coherent bus C.relaxed_policy Wo_cache.Cache_ctrl.default_config) );
    ( P.net_cache_spec,
      frozen_coherent "net-cache" ~sc:false ~wo:false
        (base_coherent net C.relaxed_policy Wo_cache.Cache_ctrl.default_config) );
    ( P.wo_old_spec,
      frozen_coherent "wo-old" ~sc:false ~wo:true
        (base_coherent net C.def1_policy
           { Wo_cache.Cache_ctrl.default_config with sync_read_shared = true }) );
    ( P.wo_new_spec,
      frozen_coherent "wo-new" ~sc:false ~wo:true
        (base_coherent net C.def2_policy
           { Wo_cache.Cache_ctrl.default_config with reserve_enabled = true }) );
    ( P.wo_new_drf1_spec,
      frozen_coherent "wo-new-drf1" ~sc:false ~wo:true
        (base_coherent net C.def2_policy
           {
             Wo_cache.Cache_ctrl.default_config with
             reserve_enabled = true;
             sync_read_shared = true;
           }) );
  ]

let test_spec_builds_byte_identical () =
  List.iter
    (fun ((spec : S.t), (frozen : M.t)) ->
      let built = S.build spec in
      check_string
        (Printf.sprintf "%s: flags" spec.S.name)
        (Printf.sprintf "sc=%b wo=%b" frozen.M.sequentially_consistent
           frozen.M.weakly_ordered_drf0)
        (Printf.sprintf "sc=%b wo=%b" built.M.sequentially_consistent
           built.M.weakly_ordered_drf0);
      List.iter
        (fun (t : L.t) ->
          for seed = 1 to 3 do
            check_string
              (Printf.sprintf "%s on %s seed %d" spec.S.name t.L.name seed)
              (fingerprint frozen ~seed t.L.program)
              (fingerprint built ~seed t.L.program)
          done)
        L.all)
    frozen_pairs

let test_specs_cover_presets () =
  check_int "one spec per preset machine" (List.length P.all)
    (List.length P.specs);
  List.iter
    (fun (m : M.t) ->
      match P.spec_of m.M.name with
      | None -> Alcotest.failf "preset %s has no spec" m.M.name
      | Some s ->
        check_string (m.M.name ^ ": spec name") m.M.name s.S.name;
        check (m.M.name ^ ": derived SC flag") m.M.sequentially_consistent
          (S.sequentially_consistent s);
        check (m.M.name ^ ": derived WO flag") m.M.weakly_ordered_drf0
          (S.weakly_ordered_drf0 s))
    P.all

(* --- JSON round-trip --------------------------------------------------------- *)

let gen_spec =
  let open QCheck.Gen in
  let name = string_size ~gen:(char_range 'a' 'z') (int_range 1 12) in
  let fabric =
    oneof
      [
        map
          (fun transfer_cycles -> Wo_machines.Memsys.Bus { transfer_cycles })
          (int_range 1 5);
        map2
          (fun base jitter -> Wo_machines.Memsys.Net { base; jitter })
          (int_range 1 8) (int_range 0 8);
        (* spike probabilities are 64ths so the %.12g printer is exact *)
        map3
          (fun base jitter (k, spike_factor) ->
            Wo_machines.Memsys.Net_spiky
              {
                base;
                jitter;
                spike_probability = float_of_int k /. 64.0;
                spike_factor;
              })
          (int_range 1 8) (int_range 0 8)
          (pair (int_range 1 63) (int_range 2 20));
        map
          (fun latency -> Wo_machines.Memsys.Net_fixed { latency })
          (int_range 1 10);
      ]
  in
  let write_buffer =
    option
      (map3
         (fun depth (read_bypass, forwarding) drain_delay ->
           { U.depth; read_bypass; forwarding; drain_delay })
         (int_range 1 16) (pair bool bool) (int_range 0 8))
  in
  let memory =
    oneof
      [
        return S.Ideal;
        map3
          (fun write_buffer wait_write_ack modules ->
            S.Uncached { write_buffer; wait_write_ack; modules })
          write_buffer bool (int_range 1 8);
        map3
          (fun hit_cycles capacity coarse_counter ->
            S.Cached { hit_cycles; capacity; coarse_counter })
          (int_range 1 4)
          (option (int_range 1 8))
          bool;
      ]
  in
  let sync =
    oneofl
      [
        S.Sync_none;
        S.Sync_sc;
        S.Sync_fence;
        S.Sync_def1_stall;
        S.Sync_reserve_bit;
        S.Sync_drf1_two_level;
      ]
  in
  let model =
    oneof
      [
        return S.Model_sc;
        map2
          (fun depth drain_delay -> S.Model_tso { depth; drain_delay })
          (int_range 1 16) (int_range 0 8);
        map2
          (fun depth drain_delay -> S.Model_pso { depth; drain_delay })
          (int_range 1 16) (int_range 0 8);
        map2
          (fun window drain_delay -> S.Model_ra { window; drain_delay })
          (int_range 1 16) (int_range 0 8);
      ]
  in
  map3
    (fun name (fabric, memory) ((sync, model), local_cost) ->
      (* relaxed models only pair with uncached memory *)
      let memory =
        match (model, memory) with
        | S.Model_sc, m | _, (S.Uncached _ as m) -> m
        | _, (S.Ideal | S.Cached _) ->
          S.Uncached { write_buffer = None; wait_write_ack = false; modules = 1 }
      in
      { S.name; description = "generated"; fabric; memory; model; sync; local_cost })
    name (pair fabric memory)
    (pair (pair sync model) (int_range 1 3))

let arbitrary_spec = QCheck.make ~print:(S.to_string ~pretty:true) gen_spec

let prop_json_roundtrip =
  QCheck.Test.make ~name:"spec -> JSON -> spec is the identity" ~count:200
    arbitrary_spec (fun spec ->
      match S.of_string (S.to_string spec) with
      | Error e -> QCheck.Test.fail_reportf "parse failed: %s" e
      | Ok spec' ->
        (* structural identity, and the printed form is a fixpoint *)
        spec' = spec && S.to_string spec' = S.to_string spec)

let test_preset_specs_roundtrip () =
  List.iter
    (fun (s : S.t) ->
      match S.of_string (S.to_string ~pretty:true s) with
      | Error e -> Alcotest.failf "%s: %s" s.S.name e
      | Ok s' -> check (s.S.name ^ " round-trips") true (s' = s))
    P.specs

let test_json_defaults () =
  match S.of_string {|{ "name": "bare" }|} with
  | Error e -> Alcotest.failf "minimal spec rejected: %s" e
  | Ok s ->
    check_string "name" "bare" s.S.name;
    check_string "description defaults empty" "" s.S.description;
    check "fabric defaults to the standard net" true (s.S.fabric = C.default_net);
    check "memory defaults to cached" true (s.S.memory = S.default_cached);
    check "model defaults to sc" true (s.S.model = S.Model_sc);
    check "sync defaults to none" true (s.S.sync = S.Sync_none);
    check_int "local_cost defaults to 1" 1 s.S.local_cost

let test_json_model_field () =
  (* a bare model name takes the default knobs, and a relaxed model
     flips the memory default from cached to one-module uncached *)
  (match S.of_string {|{ "name": "x", "model": "tso" }|} with
  | Error e -> Alcotest.failf "bare model name rejected: %s" e
  | Ok s ->
    check "bare tso takes default knobs" true
      (s.S.model = S.Model_tso { depth = 8; drain_delay = 6 });
    check "relaxed model defaults memory to uncached" true
      (match s.S.memory with S.Uncached _ -> true | _ -> false);
    check "a relaxed machine is not SC" false (S.sequentially_consistent s));
  match
    S.of_string
      {|{ "name": "x", "model": { "kind": "ra", "window": 4, "drain_delay": 2 } }|}
  with
  | Error e -> Alcotest.failf "model object rejected: %s" e
  | Ok s ->
    check "model object knobs parsed" true
      (s.S.model = S.Model_ra { window = 4; drain_delay = 2 })

let test_json_rejects_bad_spec () =
  let bad =
    [
      {|{ "name": "x", "sync": "release-consistency" }|};
      {|{ "name": "x", "fabric": { "kind": "token-ring" } }|};
      {|{ "name": "x", "memory": { "kind": "drum" } }|};
      {|{ "name": "x", "model": "release-consistency" }|};
      {|{ "name": "x", "model": "tso", "memory": { "kind": "cached" } }|};
      {|{ "name": "x", "model": "pso", "memory": { "kind": "ideal" } }|};
      {|[1, 2, 3]|};
      {|{ }|};
    ]
  in
  List.iter
    (fun text ->
      match S.of_string text with
      | Error _ -> ()
      | Ok _ -> Alcotest.failf "accepted bad spec: %s" text)
    bad

(* --- a JSON-defined machine, end to end -------------------------------------- *)

(* The cached fence machine: a design point no preset occupies
   (synchronization gates on the counter and resumes at commit). *)
let fence_json =
  {|{
  "name": "cached-fence",
  "fabric": { "kind": "net", "base": 4, "jitter": 6 },
  "memory": { "kind": "cached" },
  "sync": "fence"
}|}

let test_json_machine_end_to_end () =
  match S.of_string fence_json with
  | Error e -> Alcotest.failf "fence spec rejected: %s" e
  | Ok spec ->
    check "a cached fence machine is not SC" false
      (S.sequentially_consistent spec);
    check "a cached fence machine is weakly ordered" true
      (S.weakly_ordered_drf0 spec);
    let machine = S.build spec in
    let dekker =
      List.find (fun (t : L.t) -> t.L.name = "dekker-sync") L.all
    in
    let report = Wo_litmus.Runner.run ~runs:30 machine dekker in
    check "fence machine appears SC on a DRF0 test" true
      (Wo_litmus.Runner.appears_sc report);
    (* and it is a real simulation, not the ideal interpreter *)
    check "simulated cycles accumulate" true (report.Wo_litmus.Runner.total_cycles > 0)

let test_grid_names () =
  let base = P.wo_new_spec in
  let specs =
    S.grid
      ~fabrics:[ bus; Wo_machines.Memsys.Net_fixed { latency = 5 } ]
      ~syncs:[ S.Sync_reserve_bit; S.Sync_sc ]
      base
  in
  check_int "2 fabrics x 2 syncs" 4 (List.length specs);
  let names = List.map (fun (s : S.t) -> s.S.name) specs in
  List.iter
    (fun n ->
      check (n ^ " listed") true (List.mem n names))
    [
      "wo-new/bus2+reserve-bit";
      "wo-new/bus2+sc";
      "wo-new/fix5+reserve-bit";
      "wo-new/fix5+sc";
    ];
  (* every grid point builds and runs *)
  List.iter
    (fun (s : S.t) ->
      let m = S.build s in
      let t = List.find (fun (t : L.t) -> t.L.name = "message-passing") L.all in
      ignore (M.run m ~seed:1 t.L.program))
    specs;
  (* the model axis: sc keeps the historical name, relaxed points get
     an @<model> suffix and fall back to uncached memory *)
  let model_specs =
    S.grid
      ~models:[ S.Model_sc; S.Model_tso { depth = 8; drain_delay = 6 } ]
      base
  in
  check_int "2 models" 2 (List.length model_specs);
  let names = List.map (fun (s : S.t) -> s.S.name) model_specs in
  check "sc point keeps the historical name" true
    (List.mem "wo-new/net4j6+reserve-bit" names);
  check "relaxed point gets the model suffix" true
    (List.mem "wo-new/net4j6+reserve-bit@tso" names);
  List.iter
    (fun (s : S.t) ->
      let m = S.build s in
      let t = List.find (fun (t : L.t) -> t.L.name = "figure1") L.all in
      ignore (M.run m ~seed:1 t.L.program))
    model_specs

let tests =
  [
    Alcotest.test_case "spec-built presets are byte-identical to frozen configs"
      `Slow test_spec_builds_byte_identical;
    Alcotest.test_case "every preset has a spec with matching flags" `Quick
      test_specs_cover_presets;
    QCheck_alcotest.to_alcotest prop_json_roundtrip;
    Alcotest.test_case "preset specs round-trip through JSON" `Quick
      test_preset_specs_roundtrip;
    Alcotest.test_case "JSON defaults" `Quick test_json_defaults;
    Alcotest.test_case "JSON model field" `Quick test_json_model_field;
    Alcotest.test_case "bad JSON specs are rejected" `Quick
      test_json_rejects_bad_spec;
    Alcotest.test_case "JSON-defined machine runs end to end" `Quick
      test_json_machine_end_to_end;
    Alcotest.test_case "spec grids" `Quick test_grid_names;
  ]
