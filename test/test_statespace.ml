(* Tests for the stateful (DAG) enumerator: canonical state hashing,
   symmetry reduction and the work-stealing scheduler.  The contract under
   test is identity — outcome sets and DRF0 verdicts (including the
   reported first race) must match the tree-search oracles for every
   strategy, symmetry setting and domain count — plus the non-triviality
   of the optimization: convergent and mirrored programs must actually
   dedup. *)

module I = Wo_prog.Instr
module P = Wo_prog.Program
module En = Wo_prog.Enumerate
module O = Wo_prog.Outcome

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let outcome_sets_equal a b =
  List.length a = List.length b && List.for_all2 O.equal a b

(* Race lists and execution events are pure data (ints and variants), so
   structural equality compares reports; the model component may hold
   closures, so it is deliberately left out. *)
let reports_agree (a : (unit, Wo_core.Drf0.report) result)
    (b : (unit, Wo_core.Drf0.report) result) =
  match (a, b) with
  | Ok (), Ok () -> true
  | Error ra, Error rb ->
    ra.Wo_core.Drf0.races = rb.Wo_core.Drf0.races
    && Wo_core.Execution.events ra.Wo_core.Drf0.execution
       = Wo_core.Execution.events rb.Wo_core.Drf0.execution
  | _ -> false

let verdicts_agree a b =
  match (a, b) with Ok (), Ok () -> true | Error _, Error _ -> true | _ -> false

(* A state-convergent, processor-symmetric family: every thread writes the
   same value sequence to the same location, so all interleavings of equal
   event count reach identical states (the tree is exponential, the DAG
   linear) and every thread permutation is an automorphism. *)
let mirrored_writes ~procs ~len =
  P.make (List.init procs (fun _ -> List.init len (fun _ -> I.Write (0, I.Const 1))))

(* Mirrored but racy-free via sync operations (fully dependent, so sleep
   sets never prune: any reduction must come from the visited table). *)
let mirrored_sync ~procs ~len =
  P.make
    (List.init procs (fun _ ->
         List.init len (fun _ -> I.Sync_write (0, I.Const 1))))

let litmus_programs =
  [
    Wo_litmus.Litmus.figure1.Wo_litmus.Litmus.program;
    Wo_litmus.Litmus.message_passing.Wo_litmus.Litmus.program;
    Wo_litmus.Litmus.dekker_sync.Wo_litmus.Litmus.program;
    Wo_litmus.Litmus.atomicity.Wo_litmus.Litmus.program;
    Wo_litmus.Litmus.coherence.Wo_litmus.Litmus.program;
  ]

(* --- outcome identity ------------------------------------------------------ *)

let test_outcomes_stateful_matches_litmus () =
  List.iter
    (fun program ->
      let reference = En.outcomes program in
      List.iter
        (fun domains ->
          List.iter
            (fun strategy ->
              let got, _ = En.outcomes_stateful ~strategy ~domains program in
              check
                (Printf.sprintf "stateful outcomes match (domains=%d)" domains)
                true
                (outcome_sets_equal reference got))
            [ En.Naive; En.Por ])
        [ 1; 3 ])
    litmus_programs

let prop_outcomes_stateful_equals_tree =
  QCheck.Test.make
    ~name:"stateful outcome set equals the tree enumerator on random programs"
    ~count:40 QCheck.small_int (fun pseed ->
      let program =
        Wo_litmus.Random_prog.racy ~seed:pseed ~procs:2 ~ops_per_proc:3
          ~locs:2 ()
      in
      let reference = En.outcomes ~strategy:En.Naive program in
      List.for_all
        (fun (strategy, domains) ->
          outcome_sets_equal reference
            (fst (En.outcomes_stateful ~strategy ~domains program)))
        [ (En.Naive, 1); (En.Por, 1); (En.Por, 3) ])

let test_outcomes_stateful_dedups () =
  (* C(8,4) = 70 tree leaves collapse onto a 5x5 grid of distinct states. *)
  let p = mirrored_writes ~procs:2 ~len:4 in
  let tree_outs, tree = En.outcomes_with_stats ~strategy:En.Naive p in
  let dag_outs, dag = En.outcomes_stateful ~strategy:En.Naive ~domains:1 p in
  check "same outcomes" true (outcome_sets_equal tree_outs dag_outs);
  check "dedup hits observed" true (dag.En.sf_hits > 0);
  check "at least 2x fewer states" true (2 * dag.En.sf_states <= tree.En.states);
  check_int "one execution survives per leaf-equivalent state" 1
    dag.En.sf_executions

(* --- DRF0 identity --------------------------------------------------------- *)

let test_check_stateful_litmus () =
  List.iter
    (fun program ->
      let reference = En.check_drf0_closure program in
      List.iter
        (fun domains ->
          List.iter
            (fun symmetry ->
              let got, _ =
                En.check_drf0_stateful ~symmetry ~domains program
              in
              check
                (Printf.sprintf
                   "stateful verdict matches closure oracle (domains=%d \
                    symmetry=%b)"
                   domains symmetry)
                true
                (verdicts_agree reference got))
            [ true; false ])
        [ 1; 3 ])
    litmus_programs

let prop_check_stateful_equals_closure =
  QCheck.Test.make
    ~name:
      "stateful DRF0 verdict equals the closure oracle on random programs \
       (both strategies, 1 and N domains)"
    ~count:30 QCheck.small_int (fun pseed ->
      let program =
        Wo_litmus.Random_prog.racy ~seed:pseed ~procs:2 ~ops_per_proc:3
          ~locs:2 ()
      in
      let reference = En.check_drf0_closure program in
      List.for_all
        (fun (strategy, domains) ->
          verdicts_agree reference
            (fst (En.check_drf0_stateful ~strategy ~domains program)))
        [ (En.Naive, 1); (En.Por, 1); (En.Por, 3) ])

let prop_check_stateful_report_deterministic =
  (* Not just the verdict: the reported racy execution and race pair must
     equal the tree checker's, for any domain count — sequential DAG walks
     find the same first racy prefix, parallel ones re-search sequentially. *)
  QCheck.Test.make
    ~name:"stateful racy reports equal check_drf0's at every domain count"
    ~count:30 QCheck.small_int (fun pseed ->
      let program =
        Wo_litmus.Random_prog.racy ~seed:pseed ~procs:2 ~ops_per_proc:3
          ~locs:2 ()
      in
      let reference = En.check_drf0 program in
      List.for_all
        (fun domains ->
          reports_agree reference
            (fst (En.check_drf0_stateful ~domains program)))
        [ 1; 3 ])

let test_symmetry_reduces_states () =
  (* Four identical sync-writing threads: 4! thread arrangements per
     reachable profile collapse onto one orbit representative, so the
     symmetric table must be strictly (and substantially) smaller.  Sync
     steps are fully dependent, so none of the reduction can come from
     sleep sets. *)
  let p = mirrored_sync ~procs:4 ~len:2 in
  let r_sym, s_sym = En.check_drf0_stateful ~symmetry:true ~domains:1 p in
  let r_raw, s_raw = En.check_drf0_stateful ~symmetry:false ~domains:1 p in
  check "race-free either way" true (r_sym = Ok () && r_raw = Ok ());
  check "symmetry shrinks the table" true
    (2 * s_sym.En.sf_distinct <= s_raw.En.sf_distinct);
  check "symmetry expands fewer states" true
    (s_sym.En.sf_states < s_raw.En.sf_states)

let test_check_stateful_custom_model_falls_back () =
  (* A custom model (unknown name, so no incremental mode) must take the
     closure-oracle fallback and still agree with it. *)
  let model =
    {
      Wo_core.Sync_model.drf0 with
      Wo_core.Sync_model.name = "custom-semantics";
    }
  in
  let program = Wo_litmus.Litmus.dekker_sync.Wo_litmus.Litmus.program in
  let reference = En.check_drf0_closure ~model program in
  let got, _ = En.check_drf0_stateful ~model program in
  check "custom-model fallback agrees" true (verdicts_agree reference got)

let test_stateful_limits_raise () =
  let p = mirrored_writes ~procs:2 ~len:6 in
  check "max_events raises" true
    (try
       ignore (En.outcomes_stateful ~max_events:4 p);
       false
     with En.Limit_exceeded -> true);
  (* The bound is on complete executions, so the program must be race-free
     (a race aborts the search long before any leaf). *)
  check "max_executions raises (naive, bound below leaf count)" true
    (try
       ignore
         (En.check_drf0_stateful ~strategy:En.Naive ~max_executions:0
            (mirrored_sync ~procs:2 ~len:2));
       false
     with En.Limit_exceeded -> true)

(* --- visited table --------------------------------------------------------- *)

let test_visited_claim_discipline () =
  let t = Wo_prog.Visited.create ~shards:3 () in
  (match Wo_prog.Visited.try_claim t "k" 0b11 with
  | `Explore s -> check_int "first claim keeps its sleep set" 0b11 s
  | `Skip -> Alcotest.fail "first claim must explore");
  (* Smaller sleep set = more executions: must widen, not skip. *)
  (match Wo_prog.Visited.try_claim t "k" 0b01 with
  | `Explore s -> check_int "re-explores with the intersection" 0b01 s
  | `Skip -> Alcotest.fail "subset claim must re-explore");
  (* Now 0b01 is claimed; any superset is covered. *)
  (match Wo_prog.Visited.try_claim t "k" 0b11 with
  | `Skip -> ()
  | `Explore _ -> Alcotest.fail "superset revisit must skip");
  check_int "one distinct state" 1 (Wo_prog.Visited.size t);
  check_int "one hit" 1 (Wo_prog.Visited.hits t);
  (* Distinct keys never interact, whatever the hash does. *)
  (match Wo_prog.Visited.try_claim t "k2" 0b11 with
  | `Explore _ -> ()
  | `Skip -> Alcotest.fail "fresh key must explore");
  check_int "two distinct states" 2 (Wo_prog.Visited.size t)

(* --- work-stealing scheduler ----------------------------------------------- *)

let test_wsq_runs_every_task () =
  (* Each root task n spawns subtasks n-1 .. 1; with roots 5 and 7 the grand
     total is 5 + 7 = 12 task executions.  Sum across per-worker counters to
     confirm nothing is lost or duplicated under stealing. *)
  let executed = Atomic.make 0 in
  let stats =
    Wo_prog.Wsq.run ~domains:4 ~roots:[ 5; 7 ]
      (fun ~worker:_ ~push ~hungry:_ ~halt:_ n ->
        Atomic.incr executed;
        if n > 1 then push (n - 1))
  in
  check_int "every task ran exactly once" 12 (Atomic.get executed);
  check_int "per-worker counters account for every task" 12
    (Array.fold_left ( + ) 0 stats.Wo_prog.Wsq.executed);
  check_int "one counter per domain" 4 (Array.length stats.Wo_prog.Wsq.executed)

let test_wsq_propagates_exceptions () =
  let cleanly_raised =
    try
      ignore
        (Wo_prog.Wsq.run ~domains:3 ~roots:[ 1; 2; 3; 4; 5; 6 ]
           (fun ~worker:_ ~push:_ ~hungry:_ ~halt:_ n ->
             if n = 4 then failwith "boom"));
      false
    with Failure m -> m = "boom"
  in
  check "worker failure re-raised after joining" true cleanly_raised

let tests =
  [
    Alcotest.test_case "stateful outcomes on litmus" `Quick
      test_outcomes_stateful_matches_litmus;
    Alcotest.test_case "stateful dedups convergent schedules" `Quick
      test_outcomes_stateful_dedups;
    Alcotest.test_case "stateful DRF0 on litmus" `Quick
      test_check_stateful_litmus;
    Alcotest.test_case "symmetry reduces states" `Quick
      test_symmetry_reduces_states;
    Alcotest.test_case "custom model falls back" `Quick
      test_check_stateful_custom_model_falls_back;
    Alcotest.test_case "stateful limits raise" `Quick test_stateful_limits_raise;
    Alcotest.test_case "visited claim discipline" `Quick
      test_visited_claim_discipline;
    Alcotest.test_case "wsq runs every task" `Quick test_wsq_runs_every_task;
    Alcotest.test_case "wsq propagates exceptions" `Quick
      test_wsq_propagates_exceptions;
    QCheck_alcotest.to_alcotest prop_outcomes_stateful_equals_tree;
    QCheck_alcotest.to_alcotest prop_check_stateful_equals_closure;
    QCheck_alcotest.to_alcotest prop_check_stateful_report_deterministic;
  ]
