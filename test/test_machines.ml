(* End-to-end machine tests: the Definition-2 contract, Figure-1
   violations, workload invariants, and ablation regressions. *)

module M = Wo_machines.Machine
module P = Wo_machines.Presets
module L = Wo_litmus.Litmus
module O = Wo_prog.Outcome

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let runs = 40

let run_many machine program =
  List.init runs (fun i -> M.run machine ~seed:(i + 1) program)

(* --- sequential consistency of the SC machines ------------------------------ *)

(* every loop-free litmus test, plus a warmed variant of each racy one
   (resident shared copies are the Figure-1 precondition for the cached
   machines to show anything) *)
let loop_free_tests =
  let base = List.filter (fun (t : L.t) -> not t.L.loops) L.all in
  let unwarmed (t : L.t) =
    String.length t.L.name < 7
    || String.sub t.L.name (String.length t.L.name - 7) 7 <> "-warmed"
  in
  let interleavings (t : L.t) =
    (* multinomial estimate of the idealized execution count *)
    let per_proc =
      Array.to_list t.L.program.Wo_prog.Program.threads
      |> List.map (fun instrs ->
             List.length
               (List.filter
                  (fun i ->
                    match (i : Wo_prog.Instr.t) with
                    | Read _ | Write _ | Sync_read _ | Sync_write _
                    | Test_and_set _ | Fetch_and_add _ ->
                      true
                    | Assign _ | If _ | While _ | Nop | Fence -> false)
                  instrs))
    in
    let ln_fact n =
      let acc = ref 0.0 in
      for i = 2 to n do
        acc := !acc +. log (float_of_int i)
      done;
      !acc
    in
    let total = List.fold_left ( + ) 0 per_proc in
    exp (ln_fact total -. List.fold_left (fun a n -> a +. ln_fact n) 0.0 per_proc)
  in
  base
  @ (List.filter (fun (t : L.t) -> (not t.L.drf0) && unwarmed t) base
    |> List.map L.warmed
    |> List.filter (fun t -> interleavings t < 300_000.0))

let test_sc_machines_stay_in_sc_set () =
  List.iter
    (fun (t : L.t) ->
      let sc = Wo_prog.Enumerate.outcomes t.L.program in
      List.iter
        (fun (m : M.t) ->
          List.iter
            (fun (r : M.result) ->
              check
                (Printf.sprintf "%s on %s" m.M.name t.L.name)
                true
                (List.exists (fun o -> O.compare o r.M.outcome = 0) sc))
            (run_many m t.L.program))
        P.sequentially_consistent)
    loop_free_tests

(* --- Figure-1 violations ------------------------------------------------------ *)

let find_violation machine test pred =
  let found = ref false in
  let seed = ref 0 in
  while (not !found) && !seed < 300 do
    incr seed;
    let r = M.run machine ~seed:!seed test.L.program in
    if pred r.M.outcome then found := true
  done;
  !found

let test_figure1_violations_occur () =
  check "bus write buffer violates" true
    (find_violation P.bus_nocache_wb L.figure1 L.both_killed);
  check "network without acks violates" true
    (find_violation P.net_nocache_weak L.figure1 L.both_killed);
  check "cached bus violates (warmed)" true
    (find_violation P.bus_cache_wb L.figure1_warmed L.both_killed);
  check "cached network violates (warmed)" true
    (find_violation P.net_cache_relaxed L.figure1_warmed L.both_killed)

let test_weak_machines_also_violate_with_races () =
  (* even the weakly ordered machines leave the SC set on racy programs *)
  check "wo-new violates on the racy warmed test" true
    (find_violation P.wo_new L.figure1_warmed L.both_killed);
  check "wo-old too" true
    (find_violation P.wo_old L.figure1_warmed L.both_killed)

(* --- the DRF0 contract --------------------------------------------------------- *)

let drf0_loop_free = [ L.dekker_sync; L.atomicity; L.sync_chain ]

let test_weakly_ordered_machines_appear_sc_on_drf0 () =
  List.iter
    (fun (t : L.t) ->
      let sc = Wo_prog.Enumerate.outcomes t.L.program in
      List.iter
        (fun (m : M.t) ->
          List.iter
            (fun (r : M.result) ->
              check
                (Printf.sprintf "%s on %s" m.M.name t.L.name)
                true
                (List.exists (fun o -> O.compare o r.M.outcome = 0) sc))
            (run_many m t.L.program))
        P.weakly_ordered)
    drf0_loop_free

let test_lemma1_oracle_on_drf0_litmus () =
  List.iter
    (fun (t : L.t) ->
      List.iter
        (fun (m : M.t) ->
          let rep = Wo_litmus.Runner.run ~runs:20 m t in
          check
            (Printf.sprintf "lemma1: %s on %s" m.M.name t.L.name)
            true
            (Wo_litmus.Runner.appears_sc rep))
        P.weakly_ordered)
    [ L.message_passing_sync; L.figure3_scenario (); L.dekker_sync ]

let test_atomicity_never_doubly_acquired () =
  let pred = List.assoc "both-acquired" L.atomicity.L.interesting in
  List.iter
    (fun (m : M.t) ->
      List.iter
        (fun (r : M.result) ->
          check (m.M.name ^ " atomicity") false (pred r.M.outcome))
        (run_many m L.atomicity.L.program))
    P.all

let test_universal_machine_properties () =
  (* Outcomes no machine in the zoo may ever produce, racy or not:
     per-location coherence (corr), read-modify-write atomicity, and
     load buffering (reads block every processor here). *)
  let cases =
    List.concat_map
      (fun t -> [ t; L.warmed t ])
      [ L.corr; L.load_buffering ]
  in
  List.iter
    (fun (t : L.t) ->
      List.iter
        (fun (m : M.t) ->
          List.iter
            (fun (r : M.result) ->
              List.iter
                (fun (name, pred) ->
                  check
                    (Printf.sprintf "%s.%s on %s" t.L.name name m.M.name)
                    false (pred r.M.outcome))
                t.L.interesting)
            (run_many m t.L.program))
        P.all)
    cases

let test_iriw_write_atomicity_everywhere () =
  (* Collier's write synchronization: no machine here forwards non-gp
     values to other processors, so IRIW never shows opposite orders. *)
  let pred = List.assoc "opposite-orders" L.iriw.L.interesting in
  List.iter
    (fun (m : M.t) ->
      List.iter
        (fun (r : M.result) ->
          check (m.M.name ^ " iriw") false (pred r.M.outcome))
        (run_many m L.iriw.L.program))
    P.all

(* --- workloads -------------------------------------------------------------- *)

let correct_machines =
  List.filter
    (fun (m : M.t) -> m.M.weakly_ordered_drf0 || m.M.sequentially_consistent)
    P.all

let test_workload_invariants () =
  List.iter
    (fun (w : Wo_workload.Workload.t) ->
      List.iter
        (fun (m : M.t) ->
          for seed = 1 to 5 do
            let r = M.run m ~seed w.Wo_workload.Workload.program in
            match w.Wo_workload.Workload.validate r.M.outcome with
            | Ok () -> ()
            | Error e ->
              Alcotest.fail
                (Printf.sprintf "%s on %s (seed %d): %s"
                   w.Wo_workload.Workload.name m.M.name seed e)
          done)
        correct_machines)
    Wo_workload.Workload.all

let test_random_lock_programs_run_everywhere () =
  List.iter
    (fun (m : M.t) ->
      for pseed = 1 to 5 do
        let program = Wo_litmus.Random_prog.lock_disciplined ~seed:pseed () in
        let r = M.run m ~seed:pseed program in
        match
          M.check_lemma1 ~init:(Wo_prog.Program.initial_value program) r
        with
        | Ok () -> ()
        | Error _ ->
          Alcotest.fail
            (Printf.sprintf "lemma1 failed: %s pseed %d" m.M.name pseed)
      done)
    P.weakly_ordered

let test_writedone_crossing_completes () =
  (* Regression: an exclusive grant's WriteDone can still be in flight
     when the line is recalled away, re-requested, and granted again.
     The cache used to misread the old WriteDone as the new grant's
     early WriteDone and strand the first grant's waiters forever; these
     seeds deadlocked net-cache that way. *)
  List.iter
    (fun seed ->
      let program = Wo_litmus.Random_prog.lock_disciplined ~seed () in
      List.iter
        (fun (m : M.t) -> ignore (M.run m ~seed program))
        Wo_machines.Presets.all)
    [ 82; 98; 109 ]

(* --- results plumbing --------------------------------------------------------- *)

let test_result_structure () =
  let r = M.run P.wo_new ~seed:1 L.message_passing_sync.L.program in
  check "cycles positive" true (r.M.cycles > 0);
  check_int "finish times per proc" 2 (Array.length r.M.proc_finish);
  check "all procs finished" true (Array.for_all (fun t -> t >= 0) r.M.proc_finish);
  check "trace non-empty" true (Wo_sim.Trace.size r.M.trace > 0);
  check "stats present" true (r.M.stats <> []);
  (* every trace entry is fully timestamped and ordered *)
  List.iter
    (fun (e : Wo_sim.Trace.entry) ->
      check "issue <= commit" true (e.Wo_sim.Trace.issued <= e.Wo_sim.Trace.committed + 1000);
      check "gp >= 0" true (e.Wo_sim.Trace.performed >= 0))
    (Wo_sim.Trace.entries r.M.trace)

let test_determinism () =
  let a = M.run P.wo_new ~seed:11 L.figure1.L.program in
  let b = M.run P.wo_new ~seed:11 L.figure1.L.program in
  check "same seed, same outcome" true (O.compare a.M.outcome b.M.outcome = 0);
  check_int "same cycles" a.M.cycles b.M.cycles

let test_registry () =
  check "find known" true (P.find "wo-new" <> None);
  check "find unknown" true (P.find "nonexistent" = None);
  check_int "twelve presets" 12 (List.length P.all);
  check "names unique" true
    (List.length (List.sort_uniq compare (List.map (fun (m : M.t) -> m.M.name) P.all))
    = List.length P.all)

let test_stall_accounting () =
  let r = M.run P.wo_old ~seed:3 (L.figure3_scenario ()).L.program in
  check "stall totals accumulate" true (M.total_stalls r > 0);
  check "per-proc stalls sum below total" true
    (M.proc_stalls r ~proc:0 <= M.total_stalls r)

(* --- ablation regressions ------------------------------------------------------ *)

let test_ablated_machine_breaks_contract () =
  (* Without the reserve bit the figure3 scenario (DRF0) can read stale
     data under a jittery asymmetric network; found seeds are stable
     because the simulator is deterministic. *)
  let machine =
    Wo_machines.Coherent.make ~name:"ablated" ~description:""
      ~sequentially_consistent:false ~weakly_ordered_drf0:false
      {
        P.wo_new_config with
        Wo_machines.Coherent.cache =
          { Wo_cache.Cache_ctrl.default_config with reserve_enabled = false };
        fabric = Wo_machines.Coherent.Net { base = 2; jitter = 40 };
        slow_routes = [ ((3, 1), 8) ];
      }
  in
  let t = L.figure3_scenario ~work_before_unset:2 () in
  check "reserve ablation violates somewhere" true
    (find_violation machine t (fun o ->
         O.register o 1 Wo_prog.Names.r0 <> Some 1));
  (* the intact machine, same network, never does *)
  let intact =
    Wo_machines.Coherent.make ~name:"intact" ~description:""
      ~sequentially_consistent:false ~weakly_ordered_drf0:true
      {
        P.wo_new_config with
        Wo_machines.Coherent.fabric = Wo_machines.Coherent.Net { base = 2; jitter = 40 };
        slow_routes = [ ((3, 1), 8) ];
      }
  in
  let violations = ref 0 in
  for seed = 1 to 100 do
    let r = M.run intact ~seed t.L.program in
    if O.register r.M.outcome 1 Wo_prog.Names.r0 <> Some 1 then incr violations
  done;
  check_int "intact machine never violates" 0 !violations

let test_uncached_same_location_ordering () =
  (* Regression: fire-and-forget writes must not let later same-location
     reads/writes overtake (condition 1). *)
  let w = Wo_workload.Workload.sharded_counter ~procs:4 ~increments:10 () in
  List.iter
    (fun machine ->
      for seed = 1 to 5 do
        let r = M.run machine ~seed w.Wo_workload.Workload.program in
        match w.Wo_workload.Workload.validate r.M.outcome with
        | Ok () -> ()
        | Error e ->
          Alcotest.fail
            (Printf.sprintf "%s seed %d: %s" machine.M.name seed e)
      done)
    [ P.rp3_fence; P.bus_nocache_wb ]

let test_coarse_counter_deadlocks_watermark_does_not () =
  (* Finding 1 of DESIGN.md, made executable.  The paper's literal
     accounting — "all reserve bits are reset when the counter reads
     zero" — lets two processors' reserve bits wait transitively on each
     other's stalled synchronization misses.  The per-synchronization
     watermark refinement (the footnote's "mechanism to distinguish
     accesses generated before a particular synchronization operation
     from those generated after") removes the cycle.  The program and
     seed below are a known deadlocking instance found by random search;
     determinism makes them a stable regression. *)
  let program =
    Wo_litmus.Random_prog.lock_disciplined ~seed:4 ~procs:3
      ~sections_per_proc:4 ~locks:3 ~shared_locs:3 ()
  in
  let build ~coarse =
    Wo_machines.Coherent.make
      ~name:(if coarse then "wo-new-coarse" else "wo-new-watermark")
      ~description:"" ~sequentially_consistent:false ~weakly_ordered_drf0:true
      {
        P.wo_new_config with
        Wo_machines.Coherent.fabric =
          Wo_machines.Coherent.Net { base = 2; jitter = 20 };
        cache =
          {
            P.wo_new_config.Wo_machines.Coherent.cache with
            Wo_cache.Cache_ctrl.coarse_counter = coarse;
          };
      }
  in
  check "coarse counter deadlocks" true
    (try
       ignore (M.run (build ~coarse:true) ~seed:2 program);
       false
     with M.Machine_error _ -> true);
  let r = M.run (build ~coarse:false) ~seed:2 program in
  check "watermark accounting completes the same run" true
    (M.check_lemma1 ~init:(Wo_prog.Program.initial_value program) r = Ok ())

let test_process_migration () =
  (* Section 5.1's re-scheduling rule.  A thread whose write is still in
     flight migrates to another processor and immediately reads the same
     location: with the rule (wait until all previous accesses are
     globally performed) the dependency always holds; without it the read
     can reach the directory before the write and return stale data. *)
  let module I = Wo_prog.Instr in
  let program =
    Wo_prog.Program.make ~name:"migrate-raw"
      [ [ I.Write (0, I.Const 1); I.Read (0, 0) ] ]
  in
  let machine ~unsafe =
    Wo_machines.Coherent.make
      ~name:(if unsafe then "migrate-unsafe" else "migrate-safe")
      ~description:"" ~sequentially_consistent:false ~weakly_ordered_drf0:true
      {
        P.wo_new_config with
        Wo_machines.Coherent.fabric =
          Wo_machines.Coherent.Net { base = 2; jitter = 6 };
        slow_routes = [ ((0, 2), 10) ];
        migrations =
          [
            {
              Wo_machines.Coherent.thread = 0;
              before_seq = 1;
              to_cache = 1;
              unsafe;
            };
          ];
      }
  in
  let stale m =
    let n = ref 0 in
    for seed = 1 to 50 do
      let r = M.run m ~seed program in
      if O.register r.M.outcome 0 0 <> Some 1 then incr n
    done;
    !n
  in
  check_int "safe migration preserves the dependency" 0
    (stale (machine ~unsafe:false));
  check "unsafe migration loses it" true (stale (machine ~unsafe:true) > 0);
  (* a full DRF0 program migrating mid-spin stays correct *)
  let t = L.message_passing_sync in
  let m =
    Wo_machines.Coherent.make ~name:"migrate-mp" ~description:""
      ~sequentially_consistent:false ~weakly_ordered_drf0:true
      {
        P.wo_new_config with
        Wo_machines.Coherent.migrations =
          [
            {
              Wo_machines.Coherent.thread = 1;
              before_seq = 1;
              to_cache = 2;
              unsafe = false;
            };
          ];
      }
  in
  for seed = 1 to 20 do
    let r = M.run m ~seed t.L.program in
    check "consumer migrated and still reads 42" true
      (O.register r.M.outcome 1 Wo_prog.Names.r0 = Some 42);
    (match M.check_lemma1 r with
    | Ok () -> ()
    | Error _ -> Alcotest.fail "lemma1 after migration");
    check "migration exercised" true
      (List.assoc_opt "machine.migrations" r.M.stats = Some 1)
  done

let test_capacity_constrained_caches () =
  (* Tiny caches force constant evictions, write-backs and recall/eviction
     crossings; every invariant must still hold.  (This matrix caught four
     protocol bugs during development: absent-line recalls, capacity leaks
     of dead Invalid lines, recall-vs-refetch deadlock on evicting lines,
     and the deferred-invalidation-acknowledgement deadlock.) *)
  let with_capacity (config : Wo_machines.Coherent.config) cap name =
    Wo_machines.Coherent.make ~name ~description:""
      ~sequentially_consistent:false ~weakly_ordered_drf0:true
      {
        config with
        Wo_machines.Coherent.cache =
          { config.Wo_machines.Coherent.cache with
            Wo_cache.Cache_ctrl.capacity = Some cap };
      }
  in
  List.iter
    (fun (config, label) ->
      List.iter
        (fun cap ->
          let m = with_capacity config cap (Printf.sprintf "%s-cap%d" label cap) in
          List.iter
            (fun (w : Wo_workload.Workload.t) ->
              for seed = 1 to 3 do
                let r = M.run m ~seed w.Wo_workload.Workload.program in
                match w.Wo_workload.Workload.validate r.M.outcome with
                | Ok () -> ()
                | Error e ->
                  Alcotest.fail
                    (Printf.sprintf "%s cap=%d %s seed=%d: %s" label cap
                       w.Wo_workload.Workload.name seed e)
              done)
            Wo_workload.Workload.all)
        [ 2; 3 ])
    [
      (P.wo_new_config, "wo-new");
      (P.wo_old_config, "wo-old");
      (P.wo_new_drf1_config, "wo-new-drf1");
      (P.sc_dir_config, "sc-dir");
    ]

let test_ideal_machine () =
  let r = M.run P.ideal ~seed:2 L.figure1.L.program in
  let sc = Wo_prog.Enumerate.outcomes L.figure1.L.program in
  check "ideal outcome in SC set" true
    (List.exists (fun o -> O.compare o r.M.outcome = 0) sc);
  check_int "trace covers all ops" 4 (Wo_sim.Trace.size r.M.trace)

let tests =
  [
    Alcotest.test_case "SC machines stay in the SC set" `Slow
      test_sc_machines_stay_in_sc_set;
    Alcotest.test_case "figure-1 violations occur" `Quick
      test_figure1_violations_occur;
    Alcotest.test_case "weak machines violate on races" `Quick
      test_weak_machines_also_violate_with_races;
    Alcotest.test_case "DRF0 contract holds" `Slow
      test_weakly_ordered_machines_appear_sc_on_drf0;
    Alcotest.test_case "lemma1 oracle on spin litmus" `Slow
      test_lemma1_oracle_on_drf0_litmus;
    Alcotest.test_case "TAS atomicity everywhere" `Slow
      test_atomicity_never_doubly_acquired;
    Alcotest.test_case "IRIW write atomicity" `Slow
      test_iriw_write_atomicity_everywhere;
    Alcotest.test_case "universal machine properties" `Slow
      test_universal_machine_properties;
    Alcotest.test_case "workload invariants" `Slow test_workload_invariants;
    Alcotest.test_case "random lock programs" `Slow
      test_random_lock_programs_run_everywhere;
    Alcotest.test_case "crossing WriteDone completes" `Quick
      test_writedone_crossing_completes;
    Alcotest.test_case "result structure" `Quick test_result_structure;
    Alcotest.test_case "determinism" `Quick test_determinism;
    Alcotest.test_case "registry" `Quick test_registry;
    Alcotest.test_case "stall accounting" `Quick test_stall_accounting;
    Alcotest.test_case "ablation breaks the contract" `Slow
      test_ablated_machine_breaks_contract;
    Alcotest.test_case "uncached same-location ordering" `Quick
      test_uncached_same_location_ordering;
    Alcotest.test_case "coarse counter deadlock" `Quick
      test_coarse_counter_deadlocks_watermark_does_not;
    Alcotest.test_case "process migration" `Quick test_process_migration;
    Alcotest.test_case "capacity-constrained caches" `Slow
      test_capacity_constrained_caches;
    Alcotest.test_case "ideal machine" `Quick test_ideal_machine;
  ]
