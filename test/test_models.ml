(* The consistency-model layer (see DESIGN.md): the Ordering backends
   behind the model field, the model-aware reference enumerator, and
   the differential compliance harness.

   The separator tests pin the zoo's observable behaviour at fixed
   seeds: each relaxed machine must show its model's signature
   relaxation on a racy litmus test and must NOT show the relaxations
   its model forbids — TSO reorders reads past pending writes but keeps
   write order; PSO also reorders writes; only RA lets an acquire read
   overtake a pending release.  All three must still appear SC on DRF0
   programs (Definition 2). *)

module M = Wo_machines.Machine
module P = Wo_machines.Presets
module S = Wo_machines.Spec
module SM = Wo_core.Sync_model
module L = Wo_litmus.Litmus
module R = Wo_litmus.Runner
module D = Wo_campaign.Difftest
module E = Wo_prog.Enumerate
module Rx = Wo_prog.Relaxed
module O = Wo_prog.Outcome

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let run machine test = R.run ~runs:40 ~base_seed:1 machine test

let interesting (r : R.report) name =
  match List.assoc_opt name r.R.interesting_counts with
  | Some n -> n
  | None -> 0

(* --- separators: each model shows its relaxation and only its own ----------- *)

let test_tso_separator () =
  let r = run P.tso_wb L.figure1 in
  check "tso reorders reads past pending writes (figure1 both-killed)" true
    (interesting r "both-killed" > 0);
  let r = run P.tso_wb L.message_passing in
  check_int "tso keeps write order (no flag-without-data)" 0
    (interesting r "flag-without-data");
  let r = run P.tso_wb L.sb_acquire in
  check_int "tso drains on a synchronization read" 0
    (interesting r "both-killed")

let test_pso_separator () =
  let r = run P.pso_wb L.message_passing in
  check "pso reorders writes to different locations (flag-without-data)" true
    (interesting r "flag-without-data" > 0);
  let r = run P.pso_wb L.sb_acquire in
  check_int "pso drains on a synchronization read" 0
    (interesting r "both-killed")

let test_ra_separator () =
  let r = run P.ra_window L.sb_acquire in
  check "only ra lets an acquire overtake a pending release" true
    (interesting r "both-killed" > 0);
  let r = run P.tso_wb L.sb_acquire in
  check_int "tso forbids it" 0 (interesting r "both-killed");
  let r = run P.pso_wb L.sb_acquire in
  check_int "pso forbids it" 0 (interesting r "both-killed")

(* --- weak ordering: every model appears SC to DRF0 programs ----------------- *)

let test_models_appear_sc_on_drf0 () =
  List.iter
    (fun machine ->
      List.iter
        (fun (t : L.t) ->
          if t.L.drf0 then begin
            let r = run machine t in
            check
              (Printf.sprintf "%s appears SC on %s" machine.M.name t.L.name)
              true (R.appears_sc r);
            check_int
              (Printf.sprintf "%s: no Lemma-1 failures on %s" machine.M.name
                 t.L.name)
              0 r.R.lemma1_failures
          end)
        L.all)
    P.models

(* --- the reference enumerator ------------------------------------------------ *)

let loop_free = [ L.figure1; L.message_passing; L.sb_acquire; L.two_plus_two_w ]

let test_relaxed_sc_matches_enumerate () =
  List.iter
    (fun (t : L.t) ->
      let sc = E.outcomes t.L.program in
      let rx = Rx.outcomes SM.sc_hw t.L.program in
      check
        (Printf.sprintf "Relaxed(sc_hw) = Enumerate on %s" t.L.name)
        true
        (List.length sc = List.length rx
        && List.for_all2 (fun a b -> O.compare a b = 0) sc rx))
    loop_free

let subset a b =
  List.for_all (fun o -> List.exists (fun o' -> O.compare o o' = 0) b) a

let test_relaxed_monotonic () =
  (* each weaker model's allowed set contains the stronger ones' *)
  List.iter
    (fun (t : L.t) ->
      let sets =
        List.map
          (fun hw -> (hw.SM.hname, Rx.outcomes hw t.L.program))
          [ SM.sc_hw; SM.tso_hw; SM.pso_hw; SM.ra_hw ]
      in
      let rec chain = function
        | (na, a) :: ((nb, b) :: _ as rest) ->
          check
            (Printf.sprintf "%s: %s allows everything %s does" t.L.name nb na)
            true (subset a b);
          chain rest
        | _ -> ()
      in
      chain sets)
    loop_free

(* --- the identity gate: the model layer does not perturb SC builds ---------- *)

let fingerprint (r : M.result) =
  Digest.string (Marshal.to_string r [ Marshal.Closures ])

let test_sc_presets_identical_through_model_layer () =
  (* every preset spec, rebuilt through its JSON form (which now always
     carries the model field), produces Marshal-identical results *)
  List.iter
    (fun (spec : S.t) ->
      let direct = S.build spec in
      let rebuilt =
        match S.of_string (S.to_string spec) with
        | Ok s -> S.build s
        | Error e -> Alcotest.failf "%s: re-parse failed: %s" spec.S.name e
      in
      List.iter
        (fun (t : L.t) ->
          for seed = 1 to 3 do
            check
              (Printf.sprintf "%s/%s/seed %d identical" spec.S.name t.L.name
                 seed)
              true
              (fingerprint (M.run direct ~seed t.L.program)
              = fingerprint (M.run rebuilt ~seed t.L.program))
          done)
        [ L.figure1; L.dekker_sync ])
    (P.specs @ P.model_specs)

(* --- the differential harness ------------------------------------------------ *)

let test_difftest_compliant () =
  let cases = List.map D.case_of_litmus L.all in
  let s = D.run ~cases ~runs:20 ~base_seed:1 ~witnesses:false () in
  check_int "no violating (case, machine) pairs" 0 (List.length s.D.violating);
  check_int "three machines" 3 s.D.machines;
  (* and the separator matrix is not trivially empty *)
  let matrix = D.matrix s in
  check "some racy case separates some machine" true
    (List.exists (fun (_, cols) -> List.exists (fun (_, n) -> n > 0) cols) matrix)

let tests =
  [
    Alcotest.test_case "tso separator" `Quick test_tso_separator;
    Alcotest.test_case "pso separator" `Quick test_pso_separator;
    Alcotest.test_case "ra separator" `Quick test_ra_separator;
    Alcotest.test_case "models appear SC on DRF0 litmus tests" `Slow
      test_models_appear_sc_on_drf0;
    Alcotest.test_case "Relaxed under sc_hw equals Enumerate" `Quick
      test_relaxed_sc_matches_enumerate;
    Alcotest.test_case "model outcome sets are monotone" `Quick
      test_relaxed_monotonic;
    Alcotest.test_case "SC presets identical through the model layer" `Slow
      test_sc_presets_identical_through_model_layer;
    Alcotest.test_case "difftest finds no violations on the corpus" `Slow
      test_difftest_compliant;
  ]
