(* The command-line front end.

     wo list                         catalogue of machines, litmus tests,
                                     workloads
     wo litmus figure1 -m wo-new     run a litmus test on a machine and
                                     compare against the SC outcome set
     wo races message-passing        check a litmus program against DRF0
     wo check dekker-sync --strategy=stateful -j 4
                                     exhaustive DRF0 check: DAG search with
                                     canonical state hashing, symmetry
                                     reduction and work-stealing domains
     wo workload critical-section -m sc-dir
                                     run a workload, validate its invariant
     wo trace figure3 -m wo-new      dump one run's operation timeline
     wo trace figure3 --format=perfetto -o t.json
                                     export the run as Chrome trace-event
                                     JSON (open in Perfetto / chrome://tracing)

   Exit codes: 0 success, 1 usage error (unknown test / machine /
   workload name), 2 property failure (non-SC outcome, race, broken
   invariant), 3 machine error (simulated deadlock / protocol failure),
   124 malformed command line (cmdliner's own convention). *)

open Cmdliner

module M = Wo_machines.Machine
module L = Wo_litmus.Litmus

let machine_names =
  List.map
    (fun (m : M.t) -> m.M.name)
    (Wo_machines.Presets.all @ Wo_machines.Presets.models)

let machine_arg =
  let doc =
    Printf.sprintf "Machine to simulate; one of: %s."
      (String.concat ", " machine_names)
  in
  Arg.(value & opt string "wo-new" & info [ "m"; "machine" ] ~docv:"MACHINE" ~doc)

let machine_file_doc =
  "Load the machine from a JSON spec file instead of the presets (fabric, \
   memory organisation, sync policy; see examples/machines/*.json and `wo \
   list --machines --json' for the schema)."

let machine_file_arg =
  Arg.(
    value
    & opt (some file) None
    & info [ "machine-file" ] ~docv:"FILE" ~doc:machine_file_doc)

let machine_files_arg =
  Arg.(
    value & opt_all file []
    & info [ "machine-file" ] ~docv:"FILE"
        ~doc:(machine_file_doc ^ " Repeatable; adds to $(b,-m)."))

let runs_arg =
  Arg.(
    value & opt int 100
    & info [ "n"; "runs" ] ~docv:"N"
        ~doc:"Number of seeded runs; seeds are $(i,SEED)..$(i,SEED)+$(docv)-1.")

(* Shared by sweep/campaign: the ordering-model grid axis. *)
let models_arg =
  Arg.(
    value & opt (list string) []
    & info [ "models" ] ~docv:"M1,M2,..."
        ~doc:
          "Comma-separated hardware ordering models ($(b,sc), $(b,tso), \
           $(b,pso), $(b,ra)) to cross with the selected machines: each \
           spec expands into one grid point per model.  Relaxed points \
           run the store-buffer backends over uncached memory and are \
           named $(i,machine)/$(i,fabric)+$(i,sync)@$(i,model).")

let parse_models = function
  | [] -> None
  | names ->
    Some
      (List.map
         (fun n ->
           match Wo_machines.Spec.model_of_string n with
           | Some m -> m
           | None ->
             prerr_endline
               (Printf.sprintf
                  "unknown ordering model %S; try one of: sc, tso, pso, ra" n);
             exit 1)
         names)

let expand_models model_names specs =
  match parse_models model_names with
  | None -> specs
  | Some models ->
    List.concat_map (fun s -> Wo_machines.Spec.grid ~models s) specs

let seed_doc =
  "Base seed for the deterministic simulation; the same seed always \
   reproduces the same run."

let seed_arg =
  Arg.(value & opt int 1 & info [ "s"; "seed" ] ~docv:"SEED" ~doc:seed_doc)

let metrics_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "metrics" ] ~docv:"FILE"
        ~doc:
          "Also write a versioned wo-metrics JSON document (schema \
           $(b,wo-metrics)) to $(docv).")

(* Shared by litmus/sweep/campaign (`wo check' has its own flag for the
   enumeration engine): which execution engine drives the machines.
   Results are byte-identical either way — the flag exists for
   cross-checking the compiled path against the AST oracle and for
   measuring the speedup. *)
let machine_engine_arg =
  let e = Arg.enum [ ("compiled", M.Compiled); ("ast", M.Ast) ] in
  Arg.(
    value & opt e M.Compiled
    & info [ "engine" ] ~docv:"ENGINE"
        ~doc:
          "Machine execution engine: $(b,compiled) (the default: each \
           program is lowered once to int-coded ops and driven through \
           reusable machine sessions) or $(b,ast) (the AST-walking \
           frontend, kept as the oracle).  Programs the compiler cannot \
           lower fall back to $(b,ast) automatically; results are \
           byte-identical either way.")

(* Metrics-envelope fields every machine-running command records: the
   engine it asked for and the process-wide machine counters (also
   emitted to the active recorder, for trace consumers). *)
let machine_engine_fields engine =
  M.emit_counters ();
  [
    ("engine", Wo_obs.Json.String (M.engine_name engine));
    ( "machine_counters",
      Wo_obs.Json.Obj
        [
          ("machine.runs", Wo_obs.Json.Int (M.runs ()));
          ("machine.session_reuse", Wo_obs.Json.Int (M.session_reuses ()));
          ( "machine.compile_fallbacks",
            Wo_obs.Json.Int (M.compile_fallbacks ()) );
        ] );
  ]

(* A Machine_error is a finding about the simulated hardware (deadlock,
   protocol violation), not a usage error: report it and exit 3. *)
let machine_errors f =
  try f () with
  | M.Machine_error msg ->
    Printf.eprintf "machine error: %s\n" msg;
    exit 3

let get_machine name =
  match Wo_machines.Presets.find name with
  | Some m -> Ok m
  | None ->
    Error
      (Printf.sprintf "unknown machine %S; try one of: %s" name
         (String.concat ", " machine_names))

let get_litmus name =
  match L.find name with
  | Some t -> Ok t
  | None ->
    Error
      (Printf.sprintf "unknown litmus test %S; try one of: %s" name
         (String.concat ", " (List.map (fun (t : L.t) -> t.L.name) L.all)))

let load_spec path =
  match Wo_machines.Spec.of_file path with
  | Ok spec -> Ok spec
  | Error e -> Error (Printf.sprintf "machine spec: %s" e)

(* [--machine-file] wins over [-m] when both are given. *)
let resolve_machine name = function
  | None -> get_machine name
  | Some path -> Result.map Wo_machines.Spec.build (load_spec path)

let get_spec name =
  match Wo_machines.Presets.spec_of name with
  | Some s -> Ok s
  | None ->
    Error
      (Printf.sprintf "unknown machine %S; try one of: %s" name
         (String.concat ", " machine_names))

let get_workload name =
  match
    List.find_opt
      (fun (w : Wo_workload.Workload.t) -> w.Wo_workload.Workload.name = name)
      Wo_workload.Workload.all
  with
  | Some w -> Ok w
  | None ->
    Error
      (Printf.sprintf "unknown workload %S; try one of: %s" name
         (String.concat ", "
            (List.map
               (fun (w : Wo_workload.Workload.t) -> w.Wo_workload.Workload.name)
               Wo_workload.Workload.all)))

let or_die = function
  | Ok v -> v
  | Error msg ->
    prerr_endline msg;
    exit 1

(* --- wo list ------------------------------------------------------------- *)

let list_cmd =
  let machines_only_arg =
    Arg.(
      value & flag
      & info [ "machines" ] ~doc:"List only the machines (skip litmus tests and workloads).")
  in
  let json_arg =
    Arg.(
      value & flag
      & info [ "json" ]
          ~doc:
            "Print the preset machine specs as a JSON list (the schema \
             accepted by $(b,--machine-file)); implies $(b,--machines).")
  in
  let rec run machines_only json =
    if json then
      print_endline
        (Wo_obs.Json.to_string ~pretty:true
           (Wo_obs.Json.List
              (List.map Wo_machines.Spec.to_json
                 (Wo_machines.Presets.specs @ Wo_machines.Presets.model_specs))))
    else begin
      let model_of (m : M.t) =
        match Wo_machines.Presets.spec_of m.M.name with
        | Some s -> Wo_machines.Spec.model_to_string s.Wo_machines.Spec.model
        | None -> "sc"
      in
      Wo_report.Table.heading "Machines";
      Wo_report.Table.print
        ~headers:[ "name"; "model"; "SC"; "WO/DRF0"; "description" ]
        (List.map
           (fun (m : M.t) ->
             [
               m.M.name;
               model_of m;
               (if m.M.sequentially_consistent then "yes" else "no");
               (if m.M.weakly_ordered_drf0 then "yes" else "no");
               (let d = m.M.description in
                if String.length d > 60 then String.sub d 0 57 ^ "..." else d);
             ])
           (Wo_machines.Presets.all @ Wo_machines.Presets.models));
      if not machines_only then list_rest ()
    end
  and list_rest () =
    Wo_report.Table.heading "Litmus tests";
    Wo_report.Table.print ~headers:[ "name"; "DRF0"; "loops" ]
      (List.map
         (fun (t : L.t) ->
           [
             t.L.name;
             (if t.L.drf0 then "yes" else "no");
             (if t.L.loops then "yes" else "no");
           ])
         L.all);
    Wo_report.Table.heading "Workloads";
    Wo_report.Table.print ~headers:[ "name"; "description" ]
      (List.map
         (fun (w : Wo_workload.Workload.t) ->
           [
             w.Wo_workload.Workload.name;
             (let d = w.Wo_workload.Workload.description in
              if String.length d > 64 then String.sub d 0 61 ^ "..." else d);
           ])
         Wo_workload.Workload.all)
  in
  Cmd.v
    (Cmd.info "list" ~doc:"Catalogue of machines, litmus tests and workloads")
    Term.(const run $ machines_only_arg $ json_arg)

(* --- wo litmus ----------------------------------------------------------- *)

let litmus_cmd =
  let test_arg =
    Arg.(
      required
      & pos 0 (some string) None
      & info [] ~docv:"TEST" ~doc:"Litmus test name (see `wo list').")
  in
  let run test machine machine_file runs seed engine metrics =
    let test = or_die (get_litmus test) in
    let machine = or_die (resolve_machine machine machine_file) in
    machine_errors @@ fun () ->
    let report =
      Wo_litmus.Runner.run ~runs ~base_seed:seed ~engine machine test
    in
    Format.printf "%a@.@." Wo_litmus.Runner.pp_report report;
    if not test.L.loops then begin
      Printf.printf "observed outcomes (SC set has %d):\n"
        (List.length report.Wo_litmus.Runner.sc_outcomes);
      List.iter
        (fun (o, n) ->
          let in_sc =
            List.exists
              (fun sc -> Wo_prog.Outcome.compare sc o = 0)
              report.Wo_litmus.Runner.sc_outcomes
          in
          Format.printf "  %4dx %s %a@." n
            (if in_sc then "  " else "!!")
            Wo_prog.Outcome.pp o)
        report.Wo_litmus.Runner.histogram
    end;
    (match metrics with
    | None -> ()
    | Some path ->
      (* One extra run at the base seed supplies the per-run stall and
         message detail the aggregate report does not carry. *)
      let r = M.run machine ~seed test.L.program in
      let doc =
        Wo_obs.Metrics.make ~experiment:"litmus"
          (machine_engine_fields engine
          @ [
            ("test", Wo_obs.Json.String test.L.name);
            ("machine", Wo_obs.Json.String machine.M.name);
            ("runs", Wo_obs.Json.Int runs);
            ("seed", Wo_obs.Json.Int seed);
            ( "appears_sc",
              Wo_obs.Json.Bool (Wo_litmus.Runner.appears_sc report) );
            ( "distinct_outcomes",
              Wo_obs.Json.Int (List.length report.Wo_litmus.Runner.histogram)
            );
            ( "violations",
              Wo_obs.Json.Int (List.length report.Wo_litmus.Runner.violations)
            );
            ( "lemma1_failures",
              Wo_obs.Json.Int report.Wo_litmus.Runner.lemma1_failures );
            ( "total_cycles",
              Wo_obs.Json.Int report.Wo_litmus.Runner.total_cycles );
            ( "sample_run",
              Wo_obs.Json.Obj
                [
                  ("seed", Wo_obs.Json.Int seed);
                  ("cycles", Wo_obs.Json.Int r.M.cycles);
                  ("stalls", Wo_obs.Stall.to_json r.M.stalls);
                  ("messages", Wo_obs.Tap.to_json r.M.taps);
                ] );
          ])
      in
      Wo_obs.Metrics.write_file ~path doc;
      Printf.printf "metrics: wrote %s\n" path);
    if Wo_litmus.Runner.appears_sc report then
      print_endline "verdict: appears sequentially consistent"
    else begin
      print_endline "verdict: NOT sequentially consistent (!! marks non-SC outcomes)";
      exit 2
    end
  in
  Cmd.v
    (Cmd.info "litmus"
       ~doc:"Run a litmus test on a machine and compare with the SC set")
    Term.(
      const run $ test_arg $ machine_arg $ machine_file_arg $ runs_arg
      $ seed_arg $ machine_engine_arg $ metrics_arg)

(* --- wo races ------------------------------------------------------------- *)

let races_cmd =
  let test_arg =
    Arg.(
      required
      & pos 0 (some string) None
      & info [] ~docv:"TEST" ~doc:"Litmus test name (see `wo list').")
  in
  let run test =
    let test = or_die (get_litmus test) in
    Format.printf "%a@.@." Wo_prog.Program.pp test.L.program;
    if test.L.loops then begin
      Printf.printf
        "(program has spin loops; sampling 30 schedules with the dynamic \
         detector)\n";
      let races =
        Wo_race.Detector.sample_program ~schedules:30
          ~run:(fun ~seed ->
            Wo_prog.Interp.execution
              (Wo_prog.Interp.run_random ~seed test.L.program))
          ()
      in
      if races = [] then print_endline "no races found: consistent with DRF0"
      else begin
        Printf.printf "%d race report(s); first few:\n" (List.length races);
        List.iteri
          (fun i r ->
            if i < 5 then Format.printf "  %a@." Wo_core.Drf0.pp_race r)
          races;
        exit 2
      end
    end
    else
      match Wo_prog.Enumerate.check_drf0 test.L.program with
      | Ok () ->
        print_endline
          "every idealized execution is race-free: the program obeys DRF0"
      | Error report ->
        Printf.printf "DRF0 violated; races in one idealized execution:\n";
        List.iter
          (fun r -> Format.printf "  %a@." Wo_core.Drf0.pp_race r)
          report.Wo_core.Drf0.races;
        exit 2
  in
  Cmd.v
    (Cmd.info "races" ~doc:"Check a litmus program against Definition 3 (DRF0)")
    Term.(const run $ test_arg)

(* --- wo check -------------------------------------------------------------- *)

let check_cmd =
  let test_arg =
    Arg.(
      required
      & pos 0 (some string) None
      & info [] ~docv:"TEST" ~doc:"Litmus test name (see `wo list').")
  in
  let strategy_arg =
    let s =
      Arg.enum [ ("naive", `Naive); ("por", `Por); ("stateful", `Stateful) ]
    in
    Arg.(
      value & opt s `Stateful
      & info [ "strategy" ] ~docv:"STRATEGY"
          ~doc:
            "Search strategy: $(b,naive) (every interleaving), $(b,por) \
             (sleep-set partial-order reduction over the search tree), or \
             $(b,stateful) (the default: DAG search — canonical state \
             hashing, processor-symmetry reduction and work stealing on \
             top of the reduced search).  The verdict is identical for \
             all three.")
  in
  let jobs_arg =
    Arg.(
      value & opt int 1
      & info [ "j"; "jobs" ] ~docv:"N"
          ~doc:
            "Number of OCaml domains to search with; $(b,0) picks the \
             recommended count for this host.  The verdict is identical \
             for every value.")
  in
  let engine_arg =
    let e =
      Arg.enum
        [
          ("compiled", Wo_prog.Enumerate.Compiled);
          ("ast", Wo_prog.Enumerate.Ast);
        ]
    in
    Arg.(
      value & opt e Wo_prog.Enumerate.Compiled
      & info [ "engine" ] ~docv:"ENGINE"
          ~doc:
            "Execution engine for the $(b,stateful) strategy: \
             $(b,compiled) (the default: programs are compiled once to \
             int-coded ops with packed state keys and an off-heap \
             visited table) or $(b,ast) (the persistent AST \
             interpreter, the oracle).  Programs the compiler cannot \
             lower automatically fall back to $(b,ast); the verdict is \
             identical either way.  Tree strategies always use the AST \
             interpreter.")
  in
  let run test strategy jobs engine metrics =
    let test = or_die (get_litmus test) in
    if test.L.loops then
      or_die
        (Error
           (Printf.sprintf
              "%S has spin loops, so its idealized executions are unbounded; \
               use `wo races %s' (dynamic sampling) instead"
              test.L.name test.L.name));
    let domains = if jobs <= 0 then None else Some (max 1 jobs) in
    Format.printf "%a@.@." Wo_prog.Program.pp test.L.program;
    let t0 = Unix.gettimeofday () in
    let result, stats =
      match strategy with
      | `Stateful ->
        let r, s =
          Wo_prog.Enumerate.check_drf0_stateful ~engine ?domains test.L.program
        in
        (r, Some s)
      | (`Naive | `Por) as s ->
        let strategy =
          match s with
          | `Naive -> Wo_prog.Enumerate.Naive
          | `Por -> Wo_prog.Enumerate.Por
        in
        (* Tree search: per-strategy counters, no dedup to report. *)
        (match domains with
        | Some d when d > 1 ->
          ( Wo_prog.Enumerate.check_drf0_par ~strategy ~domains:d test.L.program,
            None )
        | _ ->
          let r, (s : Wo_prog.Enumerate.stats) =
            Wo_prog.Enumerate.check_drf0_with_stats ~strategy test.L.program
          in
          ( r,
            Some
              {
                Wo_prog.Enumerate.sf_states = s.Wo_prog.Enumerate.states;
                sf_distinct = 0;
                sf_hits = 0;
                sf_executions = s.Wo_prog.Enumerate.executions;
                sf_steals = 0;
                sf_per_domain = [| s.Wo_prog.Enumerate.states |];
              } ))
    in
    let wall = Unix.gettimeofday () -. t0 in
    (match stats with
    | None -> Printf.printf "search: %.3fs\n" wall
    | Some s ->
      Printf.printf
        "search: %.3fs, %d states expanded, %d executions; visited table: %d \
         distinct, %d dedup hits; %d steals over %d domain(s)\n"
        wall s.Wo_prog.Enumerate.sf_states s.Wo_prog.Enumerate.sf_executions
        s.Wo_prog.Enumerate.sf_distinct s.Wo_prog.Enumerate.sf_hits
        s.Wo_prog.Enumerate.sf_steals
        (Array.length s.Wo_prog.Enumerate.sf_per_domain));
    (match metrics with
    | None -> ()
    | Some path ->
      let stat_fields =
        match stats with
        | None -> []
        | Some s ->
          [
            ("states", Wo_obs.Json.Int s.Wo_prog.Enumerate.sf_states);
            ("distinct", Wo_obs.Json.Int s.Wo_prog.Enumerate.sf_distinct);
            ("dedup_hits", Wo_obs.Json.Int s.Wo_prog.Enumerate.sf_hits);
            ("executions", Wo_obs.Json.Int s.Wo_prog.Enumerate.sf_executions);
            ("steals", Wo_obs.Json.Int s.Wo_prog.Enumerate.sf_steals);
          ]
      in
      let doc =
        Wo_obs.Metrics.make ~experiment:"check"
          ([
             ("test", Wo_obs.Json.String test.L.name);
             ( "strategy",
               Wo_obs.Json.String
                 (match strategy with
                 | `Naive -> "naive"
                 | `Por -> "por"
                 | `Stateful -> "stateful") );
             ( "engine",
               Wo_obs.Json.String
                 (match engine with
                 | Wo_prog.Enumerate.Compiled -> "compiled"
                 | Wo_prog.Enumerate.Ast -> "ast") );
             ( "racy",
               Wo_obs.Json.Bool (match result with Ok () -> false | Error _ -> true)
             );
             ("wall_s", Wo_obs.Json.Float wall);
           ]
          @ stat_fields)
      in
      Wo_obs.Metrics.write_file ~path doc;
      Printf.printf "metrics: wrote %s\n" path);
    match result with
    | Ok () ->
      print_endline
        "every idealized execution is race-free: the program obeys DRF0"
    | Error report ->
      Printf.printf "DRF0 violated; races in one idealized execution:\n";
      List.iter
        (fun r -> Format.printf "  %a@." Wo_core.Drf0.pp_race r)
        report.Wo_core.Drf0.races;
      exit 2
  in
  Cmd.v
    (Cmd.info "check"
       ~doc:
         "Exhaustively check a litmus program against Definition 3 (DRF0) \
          with a selectable search strategy")
    Term.(
      const run $ test_arg $ strategy_arg $ jobs_arg $ engine_arg
      $ metrics_arg)

(* --- wo workload ---------------------------------------------------------- *)

let workload_cmd =
  let name_arg =
    Arg.(
      required
      & pos 0 (some string) None
      & info [] ~docv:"WORKLOAD" ~doc:"Workload name (see `wo list').")
  in
  let run name machine runs seed metrics =
    let w = or_die (get_workload name) in
    let machine = or_die (get_machine machine) in
    machine_errors @@ fun () ->
    let cycles = ref 0 and failures = ref 0 in
    let stalls = ref (Wo_obs.Stall.create ()) in
    let taps = ref (Wo_obs.Tap.create ()) in
    for s = seed to seed + runs - 1 do
      let r = M.run machine ~seed:s w.Wo_workload.Workload.program in
      cycles := !cycles + r.M.cycles;
      stalls := Wo_obs.Stall.merge !stalls r.M.stalls;
      taps := Wo_obs.Tap.merge !taps r.M.taps;
      match w.Wo_workload.Workload.validate r.M.outcome with
      | Ok () -> ()
      | Error e ->
        incr failures;
        if !failures = 1 then Printf.printf "invariant broken: %s\n" e
    done;
    Printf.printf "%s on %s: %d runs, avg %d cycles, %d invariant failures\n"
      w.Wo_workload.Workload.name machine.M.name runs (!cycles / runs)
      !failures;
    (match metrics with
    | None -> ()
    | Some path ->
      let doc =
        Wo_obs.Metrics.make ~experiment:"workload"
          [
            ("workload", Wo_obs.Json.String w.Wo_workload.Workload.name);
            ("machine", Wo_obs.Json.String machine.M.name);
            ("runs", Wo_obs.Json.Int runs);
            ("seed", Wo_obs.Json.Int seed);
            ("avg_cycles", Wo_obs.Json.Int (!cycles / runs));
            ("invariant_failures", Wo_obs.Json.Int !failures);
            ("stalls", Wo_obs.Stall.to_json !stalls);
            ("messages", Wo_obs.Tap.to_json !taps);
          ]
      in
      Wo_obs.Metrics.write_file ~path doc;
      Printf.printf "metrics: wrote %s\n" path);
    if !failures > 0 then exit 2
  in
  Cmd.v
    (Cmd.info "workload" ~doc:"Run a workload and validate its invariant")
    Term.(const run $ name_arg $ machine_arg $ runs_arg $ seed_arg $ metrics_arg)

(* --- wo sweep -------------------------------------------------------------- *)

let sweep_cmd =
  let jobs_arg =
    Arg.(
      value & opt int 0
      & info [ "j"; "jobs" ] ~docv:"N"
          ~doc:
            "Number of OCaml domains to fan the campaign over; $(b,0) \
             (the default) picks the recommended count for this host. \
             The results are identical for every value.")
  in
  let machines_arg =
    Arg.(
      value
      & opt (list string) [ "sc-dir"; "wo-old"; "wo-new"; "wo-new-drf1" ]
      & info [ "m"; "machines" ] ~docv:"M1,M2,..."
          ~doc:"Comma-separated machines to sweep (see `wo list').")
  in
  let workloads_arg =
    Arg.(
      value & flag
      & info [ "workloads" ]
          ~doc:"Also sweep the performance workloads (average cycles).")
  in
  let run jobs machine_names machine_files model_names runs seed with_workloads
      engine metrics =
    (* The campaign runs over machine specs: presets resolve to theirs,
       and [--machine-file] appends JSON-defined machines to the grid. *)
    let specs =
      List.map (fun n -> or_die (get_spec n)) machine_names
      @ List.map (fun f -> or_die (load_spec f)) machine_files
    in
    let specs = expand_models model_names specs in
    let machines = List.map Wo_machines.Spec.build specs in
    let domains = if jobs <= 0 then None else Some jobs in
    machine_errors @@ fun () ->
    let t0 = Unix.gettimeofday () in
    let campaign =
      Wo_workload.Sweep.spec_campaign ~runs ~base_seed:seed ?domains ~engine
        ~specs Wo_litmus.Litmus.all
    in
    let litmus_secs = Unix.gettimeofday () -. t0 in
    Wo_report.Table.heading
      (Printf.sprintf
         "Litmus sweep: %d tests x %d machines, %d runs each (%d domains, \
          %.2fs; %d SC sets enumerated, %d cells reused one)"
         (List.length Wo_litmus.Litmus.all)
         (List.length machines) runs campaign.Wo_workload.Sweep.domains_used
         litmus_secs campaign.Wo_workload.Sweep.sc_sets
         campaign.Wo_workload.Sweep.sc_reused);
    Wo_report.Table.print
      ~headers:
        [ "test"; "machine"; "expected"; "appears SC"; "outside SC"; "lemma1" ]
      (List.map
         (fun (c : Wo_workload.Sweep.litmus_cell) ->
           [
             c.Wo_workload.Sweep.test.L.name;
             c.Wo_workload.Sweep.machine.M.name;
             (if c.Wo_workload.Sweep.expected_sc then "SC" else "-");
             (if Wo_litmus.Runner.appears_sc c.Wo_workload.Sweep.report then
                "yes"
              else "no");
             string_of_int
               (List.length c.Wo_workload.Sweep.report.Wo_litmus.Runner.violations);
             string_of_int
               c.Wo_workload.Sweep.report.Wo_litmus.Runner.lemma1_failures;
           ])
         campaign.Wo_workload.Sweep.cells);
    let failures = Wo_workload.Sweep.failures campaign in
    let workload_cells =
      if not with_workloads then []
      else begin
        let t1 = Unix.gettimeofday () in
        let cells =
          Wo_workload.Sweep.workload_campaign ~runs:(min runs 20)
            ~base_seed:seed ?domains ~engine ~machines Wo_workload.Workload.all
        in
        Wo_report.Table.heading
          (Printf.sprintf "Workload sweep (avg cycles over %d runs, %.2fs)"
             (min runs 20)
             (Unix.gettimeofday () -. t1));
        Wo_report.Table.print
          ~headers:[ "workload"; "machine"; "avg cycles"; "invariant failures" ]
          (List.map
             (fun (c : Wo_workload.Sweep.workload_cell) ->
               [
                 c.Wo_workload.Sweep.workload.Wo_workload.Workload.name;
                 c.Wo_workload.Sweep.w_machine.M.name;
                 string_of_int c.Wo_workload.Sweep.avg_cycles;
                 string_of_int c.Wo_workload.Sweep.invariant_failures;
               ])
             cells);
        cells
      end
    in
    let workload_failures =
      List.filter
        (fun (c : Wo_workload.Sweep.workload_cell) ->
          c.Wo_workload.Sweep.invariant_failures > 0)
        workload_cells
    in
    (match metrics with
    | None -> ()
    | Some path ->
      let doc =
        Wo_obs.Metrics.make ~experiment:"sweep"
          (machine_engine_fields engine
          @ [
            ("runs", Wo_obs.Json.Int runs);
            ("seed", Wo_obs.Json.Int seed);
            ( "domains",
              Wo_obs.Json.Int campaign.Wo_workload.Sweep.domains_used );
            ( "litmus_cells",
              Wo_obs.Json.Int
                (List.length campaign.Wo_workload.Sweep.cells) );
            ("litmus_wall_s", Wo_obs.Json.Float litmus_secs);
            ("sc_sets", Wo_obs.Json.Int campaign.Wo_workload.Sweep.sc_sets);
            ( "sc_reused",
              Wo_obs.Json.Int campaign.Wo_workload.Sweep.sc_reused );
            ("contract_failures", Wo_obs.Json.Int (List.length failures));
            ( "workload_cells",
              Wo_obs.Json.Int (List.length workload_cells) );
            ( "workload_invariant_failures",
              Wo_obs.Json.Int (List.length workload_failures) );
          ])
      in
      Wo_obs.Metrics.write_file ~path doc;
      Printf.printf "metrics: wrote %s\n" path);
    if failures <> [] || workload_failures <> [] then begin
      List.iter
        (fun (c : Wo_workload.Sweep.litmus_cell) ->
          Printf.printf
            "CONTRACT BROKEN: %s on %s promised SC but was not\n"
            c.Wo_workload.Sweep.test.L.name
            c.Wo_workload.Sweep.machine.M.name)
        failures;
      List.iter
        (fun (c : Wo_workload.Sweep.workload_cell) ->
          Printf.printf "INVARIANT BROKEN: %s on %s (%d runs)\n"
            c.Wo_workload.Sweep.workload.Wo_workload.Workload.name
            c.Wo_workload.Sweep.w_machine.M.name
            c.Wo_workload.Sweep.invariant_failures)
        workload_failures;
      exit 2
    end
    else
      print_endline
        "verdict: every machine kept its appears-SC promise on every test"
  in
  Cmd.v
    (Cmd.info "sweep"
       ~doc:
         "Run the full litmus x machine campaign in parallel across OCaml \
          domains")
    Term.(
      const run $ jobs_arg $ machines_arg $ machine_files_arg $ models_arg
      $ runs_arg $ seed_arg $ workloads_arg $ machine_engine_arg $ metrics_arg)

(* --- wo trace -------------------------------------------------------------- *)

let trace_cmd =
  let test_arg =
    Arg.(
      required
      & pos 0 (some string) None
      & info [] ~docv:"TEST" ~doc:"Litmus test name (see `wo list').")
  in
  let format_arg =
    let fmt =
      Arg.enum [ ("pretty", `Pretty); ("perfetto", `Perfetto); ("json", `Json) ]
    in
    Arg.(
      value & opt fmt `Pretty
      & info [ "format" ] ~docv:"FORMAT"
          ~doc:
            "Output format: $(b,pretty) (operation timeline, stall \
             attribution and the recorded event log), $(b,perfetto) (Chrome \
             trace-event JSON, loadable in Perfetto or chrome://tracing), or \
             $(b,json) (a wo-metrics document with stall and \
             protocol-message statistics).")
  in
  let out_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "o"; "output" ] ~docv:"FILE"
          ~doc:"Write to $(docv) instead of standard output.")
  in
  let stall_summary ppf stalls =
    match Wo_obs.Stall.procs stalls with
    | [] -> Format.fprintf ppf "stalls: none@."
    | procs ->
      Format.fprintf ppf "stall attribution (cycles):@.";
      List.iter
        (fun p ->
          let parts =
            Wo_obs.Stall.per_proc stalls ~proc:p
            |> List.map (fun (re, c) ->
                   Printf.sprintf "%s=%d" (Wo_obs.Stall.reason_name re) c)
          in
          Format.fprintf ppf "  P%d: %s  (total %d)@." p
            (String.concat " " parts)
            (Wo_obs.Stall.proc_total stalls ~proc:p))
        procs;
      Format.fprintf ppf "  all processors: %d@." (Wo_obs.Stall.total stalls)
  in
  let run test machine machine_file seed format out =
    let test = or_die (get_litmus test) in
    let machine = or_die (resolve_machine machine machine_file) in
    machine_errors @@ fun () ->
    let emit s =
      match out with
      | None -> print_string s
      | Some path ->
        let oc = open_out path in
        output_string oc s;
        close_out oc;
        Printf.printf "wrote %s\n" path
    in
    let recorder = Wo_obs.Recorder.create () in
    let r =
      Wo_obs.Recorder.with_sink recorder (fun () ->
          M.run machine ~seed test.L.program)
    in
    match format with
    | `Pretty ->
      let b = Buffer.create 4096 in
      let ppf = Format.formatter_of_buffer b in
      Format.fprintf ppf "one run of %s on %s (seed %d), commit order:@.@."
        test.L.name machine.M.name seed;
      Format.fprintf ppf "issue/commit/globally-performed@.";
      Format.fprintf ppf "%a@." Wo_sim.Trace.pp r.M.trace;
      Format.fprintf ppf "outcome: %a@." Wo_prog.Outcome.pp r.M.outcome;
      Format.fprintf ppf "cycles: %d@." r.M.cycles;
      stall_summary ppf r.M.stalls;
      (match
         M.check_lemma1
           ~init:(Wo_prog.Program.initial_value test.L.program)
           r
       with
      | Ok () -> Format.fprintf ppf "Lemma-1 oracle: satisfied@."
      | Error vs ->
        Format.fprintf ppf "Lemma-1 oracle: %d violation(s)@." (List.length vs);
        List.iter
          (fun v -> Format.fprintf ppf "  %a@." Wo_core.Lemma1.pp_violation v)
          vs);
      Format.fprintf ppf "@.recorded events (%d):@."
        (Wo_obs.Recorder.length recorder);
      Format.pp_print_flush ppf ();
      Buffer.add_string b (Wo_obs.Export.pretty recorder);
      emit (Buffer.contents b)
    | `Perfetto -> emit (Wo_obs.Export.perfetto_string recorder ^ "\n")
    | `Json ->
      let doc =
        Wo_obs.Metrics.make ~experiment:"trace"
          [
            ("test", Wo_obs.Json.String test.L.name);
            ("machine", Wo_obs.Json.String machine.M.name);
            ("seed", Wo_obs.Json.Int seed);
            ("cycles", Wo_obs.Json.Int r.M.cycles);
            ("events", Wo_obs.Json.Int (Wo_obs.Recorder.length recorder));
            ("stalls", Wo_obs.Stall.to_json r.M.stalls);
            ("messages", Wo_obs.Tap.to_json r.M.taps);
          ]
      in
      emit (Wo_obs.Json.to_string ~pretty:true doc ^ "\n")
  in
  Cmd.v
    (Cmd.info "trace"
       ~doc:
         "Run once and export the timeline (pretty, Perfetto trace JSON, or \
          metrics JSON)")
    Term.(
      const run $ test_arg $ machine_arg $ machine_file_arg $ seed_arg
      $ format_arg $ out_arg)

(* --- wo litmus-file ----------------------------------------------------------- *)

let litmus_file_cmd =
  let file_arg =
    Arg.(
      required
      & pos 0 (some file) None
      & info [] ~docv:"FILE" ~doc:"Litmus file (see lib/litmus/parse.mli for the format).")
  in
  let run file machine runs seed =
    let test =
      try Wo_litmus.Parse.of_file file
      with Wo_litmus.Parse.Parse_error { line; message } ->
        Printf.eprintf "%s:%d: %s\n" file line message;
        exit 1
    in
    let machine = or_die (get_machine machine) in
    Format.printf "%a@.@." Wo_prog.Program.pp test.L.program;
    Printf.printf "DRF0: %s\n\n" (if test.L.drf0 then "yes" else "no");
    let report = Wo_litmus.Runner.run ~runs ~base_seed:seed machine test in
    Format.printf "%a@.@." Wo_litmus.Runner.pp_report report;
    List.iter
      (fun (o, n) ->
        let in_sc =
          List.exists
            (fun sc -> Wo_prog.Outcome.compare sc o = 0)
            report.Wo_litmus.Runner.sc_outcomes
        in
        Format.printf "  %4dx %s %a@." n
          (if in_sc then "  " else "!!")
          Wo_prog.Outcome.pp o)
      report.Wo_litmus.Runner.histogram;
    if not (Wo_litmus.Runner.appears_sc report) then exit 2
  in
  Cmd.v
    (Cmd.info "litmus-file" ~doc:"Parse and run a litmus test from a file")
    Term.(const run $ file_arg $ machine_arg $ runs_arg $ seed_arg)

(* --- wo delays -------------------------------------------------------------- *)

let delays_cmd =
  let test_arg =
    Arg.(
      required
      & pos 0 (some string) None
      & info [] ~docv:"TEST" ~doc:"Litmus test name (see `wo list').")
  in
  let run test =
    let test = or_die (get_litmus test) in
    match Wo_prog.Delay_set.analyse test.L.program with
    | exception Wo_prog.Delay_set.Unsupported msg ->
      prerr_endline msg;
      exit 1
    | [] ->
      print_endline
        "empty delay set: the program is sequentially consistent on any \
         hardware that preserves uniprocessor dependencies"
    | delays ->
      Printf.printf "Shasha-Snir delay set (%d pair(s)):\n"
        (List.length delays);
      List.iter
        (fun d -> Format.printf "  %a@." Wo_prog.Delay_set.pp_delay d)
        delays;
      print_newline ();
      Format.printf "%a@."
        Wo_prog.Program.pp
        (Wo_prog.Delay_set.insert_fences test.L.program)
  in
  Cmd.v
    (Cmd.info "delays"
       ~doc:"Shasha-Snir delay-set analysis and fence insertion")
    Term.(const run $ test_arg)

(* --- wo synth / wo campaign / wo serve -------------------------------------- *)

(* The mutation corpus: every loop-free catalogued test (shared with the
   campaign and serve layers — and with worker processes, which must
   regenerate the coordinator's exact case list). *)
let synth_corpus = Wo_campaign.Campaign.catalogue_corpus

let family_doc =
  Printf.sprintf "Generator family; one of: %s."
    (String.concat ", " Wo_synth.Synth.families)

let synth_cmd =
  let family_arg =
    Arg.(
      required & pos 0 (some string) None
      & info [] ~docv:"FAMILY" ~doc:family_doc)
  in
  let count_arg =
    Arg.(
      value & opt int 1
      & info [ "c"; "count" ] ~docv:"N"
          ~doc:"Cases to generate, at seeds $(i,SEED)..$(i,SEED)+$(docv)-1.")
  in
  let run family seed count =
    match
      Wo_synth.Synth.batch ~corpus:(synth_corpus ()) ~family ~base_seed:seed
        ~count ()
    with
    | Error e ->
      prerr_endline e;
      exit 1
    | Ok cases ->
      List.iter
        (fun (c : Wo_synth.Synth.case) ->
          Format.printf "%s  [%s, seed %d, classified %s]@."
            c.Wo_synth.Synth.name c.Wo_synth.Synth.family c.Wo_synth.Synth.seed
            (Wo_synth.Synth.classification_name c.Wo_synth.Synth.classification);
          (match c.Wo_synth.Synth.forbidden_desc with
          | Some d -> Format.printf "forbidden outcome: %s@." d
          | None -> ());
          Format.printf "%a@.@." Wo_prog.Program.pp c.Wo_synth.Synth.program)
        cases
  in
  Cmd.v
    (Cmd.info "synth"
       ~doc:
         "Synthesize litmus programs: critical-cycle construction, snippet \
          mutation, or the seeded random families")
    Term.(const run $ family_arg $ seed_arg $ count_arg)

(* A 12-machine grid over one base spec: three fabric models x four
   synchronization-enforcement policies. *)
let campaign_grid spec =
  Wo_machines.Spec.grid
    ~fabrics:
      [
        Wo_machines.Memsys.Bus { transfer_cycles = 2 };
        Wo_machines.Memsys.Net { base = 2; jitter = 6 };
        Wo_machines.Memsys.Net_fixed { latency = 4 };
      ]
    ~syncs:
      [
        Wo_machines.Spec.Sync_none;
        Wo_machines.Spec.Sync_fence;
        Wo_machines.Spec.Sync_reserve_bit;
        Wo_machines.Spec.Sync_drf1_two_level;
      ]
    spec

let store_arg =
  Arg.(
    value & opt string "wo-campaign.store"
    & info [ "store" ] ~docv:"FILE"
        ~doc:
          "Persistent verdict store (append-only log); an existing store \
           resumes the campaign, skipping every settled cell.")

let campaign_cmd =
  let machines_arg =
    Arg.(
      value
      & opt (list string) [ "wo-new" ]
      & info [ "m"; "machines" ] ~docv:"M1,M2,..."
          ~doc:"Comma-separated machines to campaign over (see `wo list').")
  in
  let families_arg =
    Arg.(
      value
      & opt (list string) [ "cycle-drf0"; "cycle-racy"; "cycle-mixed"; "mutate" ]
      & info [ "families" ] ~docv:"F1,F2,..." ~doc:family_doc)
  in
  let count_arg =
    Arg.(
      value & opt int 250
      & info [ "c"; "count" ] ~docv:"N" ~doc:"Cases generated per family.")
  in
  let runs_arg =
    Arg.(
      value & opt int 10
      & info [ "n"; "runs" ] ~docv:"N" ~doc:"Seeded runs per cell.")
  in
  let jobs_arg =
    Arg.(
      value & opt int 0
      & info [ "j"; "jobs" ] ~docv:"N"
          ~doc:"OCaml domains; $(b,0) picks the recommended count.")
  in
  let grid_arg =
    Arg.(
      value & flag
      & info [ "grid" ]
          ~doc:
            "Expand every selected machine into its 12-point fabric x \
             sync-policy grid (3 fabrics x 4 policies).")
  in
  let shard_arg =
    Arg.(
      value & opt int 256
      & info [ "shard" ] ~docv:"N"
          ~doc:
            "Cells per work unit; the store is synced after each shard, so \
             a kill loses at most one shard of work.")
  in
  let max_shards_arg =
    Arg.(
      value
      & opt (some int) None
      & info [ "max-shards" ] ~docv:"N"
          ~doc:"Stop (cleanly) after $(docv) shards — partial runs.")
  in
  let report_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "report" ] ~docv:"FILE"
          ~doc:"Also write the findings report to $(docv).")
  in
  let workers_arg =
    Arg.(
      value & opt int 0
      & info [ "workers" ] ~docv:"N"
          ~doc:
            "Fork $(docv) local worker processes that claim shards via the \
             campaign directory ($(b,<store>.campaign/)); $(b,0) runs \
             single-process.  More workers can join from other hosts with \
             $(b,--worker) against a shared directory.")
  in
  let worker_arg =
    Arg.(
      value & flag
      & info [ "worker" ]
          ~doc:
            "Run as a worker process: attach to the existing campaign \
             directory next to $(b,--store), claim and settle shards until \
             none are claimable, then exit.  Campaign parameters come from \
             the coordinator's manifest, not the command line.")
  in
  let progress_arg =
    Arg.(
      value & flag
      & info [ "progress" ]
          ~doc:
            "Emit a progress line per shard: shards done/total, cells \
             settled, cache hits, ETA.")
  in
  let auto_compact_arg =
    Arg.(
      value & opt float 0.5
      & info [ "auto-compact" ] ~docv:"FRAC"
          ~doc:
            "Compact the store after a complete run when at least this \
             fraction of its records are superseded duplicates (e.g. \
             re-settled shards merged from a killed worker's segment); \
             negative disables.")
  in
  let print_compacted = function
    | None -> ()
    | Some cs ->
      Printf.printf
        "store compacted: %d -> %d records, %d -> %d bytes (%.2fx)\n"
        cs.Wo_campaign.Store.cs_before_records
        cs.Wo_campaign.Store.cs_after_records
        cs.Wo_campaign.Store.cs_before_bytes cs.Wo_campaign.Store.cs_after_bytes
        (float_of_int cs.Wo_campaign.Store.cs_before_bytes
        /. float_of_int (max 1 cs.Wo_campaign.Store.cs_after_bytes))
  in
  let run_as_worker ~store_path ~jobs ~progress =
    let co =
      try Wo_campaign.Coordinator.attach ~store_path
      with Failure e | Sys_error e ->
        prerr_endline ("wo campaign --worker: " ^ e);
        exit 1
    in
    let pid = Unix.getpid () in
    let on_shard =
      if progress then
        Some
          (fun ~shard ~executed ~replayed ->
            Printf.printf "worker %d: shard %d done (%d settled, %d replayed)\n%!"
              pid shard executed replayed)
      else None
    in
    let stats =
      Wo_campaign.Coordinator.run_worker ~domains:(max 1 jobs) ?on_shard co
    in
    Printf.printf "worker %d: %d shard(s) claimed, %d cell(s) settled, %d replayed\n"
      pid stats.Wo_campaign.Coordinator.w_claimed
      stats.Wo_campaign.Coordinator.w_executed
      stats.Wo_campaign.Coordinator.w_replayed
  in
  let run families count seed runs jobs machine_names machine_files model_names
      grid shard max_shards store_path report metrics workers worker progress
      auto_compact engine =
    if worker then run_as_worker ~store_path ~jobs ~progress
    else begin
    let specs =
      List.map (fun n -> or_die (get_spec n)) machine_names
      @ List.map (fun f -> or_die (load_spec f)) machine_files
    in
    let specs =
      if grid then List.concat_map campaign_grid specs else specs
    in
    let specs = expand_models model_names specs in
    let corpus = synth_corpus () in
    let cases =
      List.concat_map
        (fun family ->
          match
            Wo_synth.Synth.batch ~corpus ~family ~base_seed:seed ~count ()
          with
          | Ok cs -> cs
          | Error e ->
            prerr_endline e;
            exit 1)
        families
    in
    let config =
      {
        Wo_campaign.Campaign.runs;
        base_seed = seed;
        domains = (if jobs <= 0 then None else Some jobs);
        shard;
        max_shards;
        store_path;
        auto_compact = (if auto_compact < 0. then None else Some auto_compact);
      }
    in
    Printf.printf "campaign: %d cases x %d machines = %d cells (store %s)\n%!"
      (List.length cases) (List.length specs)
      (List.length cases * List.length specs)
      store_path;
    let t0 = Unix.gettimeofday () in
    let shards_total =
      (List.length cases * List.length specs + shard - 1) / max 1 shard
    in
    let eta_of ~done_ ~total =
      if done_ = 0 then 0.
      else
        (Unix.gettimeofday () -. t0) /. float_of_int done_
        *. float_of_int (total - done_)
    in
    (* Multi-process: publish the manifest, fork the workers (before
       anything spawns a domain), supervise to completion, merge the
       segments, then replay the merged store for the report — the
       byte-identity path shared with single-process runs. *)
    if workers > 0 then begin
      (match max_shards with
      | Some _ ->
        prerr_endline "wo campaign: --max-shards is ignored with --workers"
      | None -> ());
      let config = { config with Wo_campaign.Campaign.max_shards = None } in
      let co =
        Wo_campaign.Coordinator.create config ~specs ~families ~count
      in
      Printf.printf "  %d shard(s), %d worker process(es), dir %s.campaign\n%!"
        (Wo_campaign.Coordinator.shards co)
        workers store_path;
      let pids =
        Wo_campaign.Coordinator.spawn_local ~domains:(max 1 jobs) ~workers co
      in
      let last = ref (-1) in
      let on_progress ~done_ ~total =
        if progress && done_ <> !last then begin
          last := done_;
          Printf.printf "  shards %d/%d settled, ETA %.0fs\n%!" done_ total
            (eta_of ~done_ ~total)
        end
      in
      Wo_campaign.Coordinator.supervise ~on_progress co pids;
      let segs, appended = Wo_campaign.Coordinator.merge co in
      Printf.printf "  merged %d segment(s): %d record(s) appended\n%!" segs
        appended;
      (* Warm replay over the merged store: executed is 0, and the
         findings report is byte-identical to a single-process run's. *)
      let result = Wo_campaign.Campaign.run ~engine config ~specs ~cases in
      Wo_campaign.Coordinator.cleanup co;
      let wall = Unix.gettimeofday () -. t0 in
      Printf.printf
        "settled %d cell(s) across %d worker(s) in %.2fs (%d replayed from \
         the store)\n"
        appended workers wall
        result.Wo_campaign.Campaign.r_cache_hits;
      print_compacted result.Wo_campaign.Campaign.r_compacted;
      let report_text = Wo_campaign.Campaign.findings_report result in
      print_string report_text;
      (match report with
      | None -> ()
      | Some path ->
        let oc = open_out path in
        output_string oc report_text;
        close_out oc;
        Printf.printf "report: wrote %s\n" path);
      (match metrics with
      | None -> ()
      | Some path ->
        let doc =
          Wo_obs.Metrics.make ~experiment:"campaign"
            (machine_engine_fields engine
            @ Wo_campaign.Campaign.result_json config result
            @ [
                ("wall_s", Wo_obs.Json.Float wall);
                ("workers", Wo_obs.Json.Int workers);
                ("merged_records", Wo_obs.Json.Int appended);
              ])
        in
        Wo_obs.Metrics.write_file ~path doc;
        Printf.printf "metrics: wrote %s\n" path);
      if result.Wo_campaign.Campaign.r_findings <> [] then exit 2
    end
    else begin
    let on_shard ~shard ~settled ~executed ~total =
      if progress then
        Printf.printf
          "  shard %d/%d: %d/%d cells settled, %d cache hit(s), ETA %.0fs\n%!"
          (shard + 1) shards_total executed total settled
          (eta_of ~done_:(shard + 1) ~total:shards_total)
      else if shard mod 50 = 0 || shard = shards_total - 1 then
        Printf.printf "  shard %d/%d: %d/%d cells settled by this run\n%!"
          (shard + 1) shards_total executed total
    in
    let result =
      Wo_campaign.Campaign.run ~engine ~on_shard config ~specs ~cases
    in
    let wall = Unix.gettimeofday () -. t0 in
    Printf.printf
      "settled %d cell(s) in %.2fs (%d already settled in the store, %d \
       shard(s), %d SC sets enumerated)%s\n"
      result.Wo_campaign.Campaign.r_executed wall
      result.Wo_campaign.Campaign.r_cache_hits
      result.Wo_campaign.Campaign.r_shards
      result.Wo_campaign.Campaign.r_sc_sets
      (if result.Wo_campaign.Campaign.r_stopped_early then
         " [stopped early: --max-shards]"
       else "");
    print_compacted result.Wo_campaign.Campaign.r_compacted;
    let report_text = Wo_campaign.Campaign.findings_report result in
    print_string report_text;
    (match report with
    | None -> ()
    | Some path ->
      let oc = open_out path in
      output_string oc report_text;
      close_out oc;
      Printf.printf "report: wrote %s\n" path);
    (match metrics with
    | None -> ()
    | Some path ->
      let doc =
        Wo_obs.Metrics.make ~experiment:"campaign"
          (machine_engine_fields engine
          @ Wo_campaign.Campaign.result_json config result
          @ [ ("wall_s", Wo_obs.Json.Float wall) ])
      in
      Wo_obs.Metrics.write_file ~path doc;
      Printf.printf "metrics: wrote %s\n" path);
    if result.Wo_campaign.Campaign.r_findings <> [] then exit 2
    end
    end
  in
  Cmd.v
    (Cmd.info "campaign"
       ~doc:
         "Run a resumable synthesis campaign: generated litmus cases x \
          machine specs, verdicts persisted in an append-only store; scale \
          out with --workers (local forks) or --worker (join from any host \
          sharing the campaign directory)")
    Term.(
      const run $ families_arg $ count_arg $ seed_arg $ runs_arg $ jobs_arg
      $ machines_arg $ machine_files_arg $ models_arg $ grid_arg $ shard_arg
      $ max_shards_arg $ store_arg $ report_arg $ metrics_arg $ workers_arg
      $ worker_arg $ progress_arg $ auto_compact_arg $ machine_engine_arg)

(* --- wo difftest ----------------------------------------------------------- *)

let difftest_cmd =
  let machines_arg =
    Arg.(
      value
      & opt (list string) [ "tso-wb"; "pso-wb"; "ra-window" ]
      & info [ "m"; "machines" ] ~docv:"M1,M2,..."
          ~doc:
            "Comma-separated machines to check (see `wo list'); defaults to \
             the relaxed consistency-model zoo.")
  in
  let family_arg =
    Arg.(
      value & opt string "cycle-racy"
      & info [ "family" ] ~docv:"FAMILY"
          ~doc:
            "Synthesis family appended to the litmus corpus (see `wo \
             synth').")
  in
  let count_arg =
    Arg.(
      value & opt int 8
      & info [ "c"; "count" ] ~docv:"N"
          ~doc:"Synthesized cases generated from the family.")
  in
  let runs_arg =
    Arg.(
      value & opt int 40
      & info [ "n"; "runs" ] ~docv:"N"
          ~doc:"Seeded runs per (case, machine) cell.")
  in
  let max_states_arg =
    Arg.(
      value & opt int 2_000_000
      & info [ "max-states" ] ~docv:"N"
          ~doc:
            "State bound for the axiomatic reference enumeration; cells \
             whose reference set exceeds it are reported without a \
             verdict.")
  in
  let json_arg =
    Arg.(
      value & flag
      & info [ "json" ] ~doc:"Print the full summary as JSON.")
  in
  let run machine_names machine_files family count runs seed engine max_states
      json metrics =
    let specs =
      List.map (fun n -> or_die (get_spec n)) machine_names
      @ List.map (fun f -> or_die (load_spec f)) machine_files
    in
    machine_errors @@ fun () ->
    let t0 = Unix.gettimeofday () in
    let cases =
      try Wo_campaign.Difftest.default_cases ~family ~count ()
      with Invalid_argument e ->
        prerr_endline e;
        exit 1
    in
    let summary =
      Wo_campaign.Difftest.run ~specs ~runs ~base_seed:seed ~max_states ~engine
        ~cases ()
    in
    let wall = Unix.gettimeofday () -. t0 in
    if json then
      print_endline
        (Wo_obs.Json.to_string ~pretty:true
           (Wo_campaign.Difftest.summary_to_json summary))
    else Format.printf "%a@." Wo_campaign.Difftest.pp_summary summary;
    (match metrics with
    | None -> ()
    | Some path ->
      let doc =
        Wo_obs.Metrics.make ~experiment:"difftest"
          (machine_engine_fields engine
          @ [
            ("cases", Wo_obs.Json.Int summary.Wo_campaign.Difftest.cases);
            ("machines", Wo_obs.Json.Int summary.Wo_campaign.Difftest.machines);
            ( "checks",
              Wo_obs.Json.Int
                (List.length summary.Wo_campaign.Difftest.reports) );
            ( "violations",
              Wo_obs.Json.Int
                (List.length summary.Wo_campaign.Difftest.violating) );
            ("runs", Wo_obs.Json.Int runs);
            ("seed", Wo_obs.Json.Int seed);
            ("wall_s", Wo_obs.Json.Float wall);
          ])
      in
      Wo_obs.Metrics.write_file ~path doc;
      Printf.printf "metrics: wrote %s\n" path);
    if summary.Wo_campaign.Difftest.violating <> [] then exit 2
  in
  Cmd.v
    (Cmd.info "difftest"
       ~doc:
         "Differential compliance: run the litmus corpus plus synthesized \
          cases on each consistency-model machine and check every observed \
          outcome against the strongest available oracle (the SC set for \
          DRF0 programs, the machine's own model's axiomatic set for racy \
          ones)")
    Term.(
      const run $ machines_arg $ machine_files_arg $ family_arg $ count_arg
      $ runs_arg $ seed_arg $ machine_engine_arg $ max_states_arg $ json_arg
      $ metrics_arg)

let serve_cmd =
  let socket_arg =
    Arg.(
      value & opt string "wo-serve.sock"
      & info [ "socket" ] ~docv:"PATH" ~doc:"Unix-domain socket path.")
  in
  let tcp_arg =
    Arg.(
      value
      & opt (some int) None
      & info [ "tcp" ] ~docv:"PORT"
          ~doc:"Listen on 127.0.0.1:$(docv) instead of the Unix socket.")
  in
  let max_requests_arg =
    Arg.(
      value & opt int (-1)
      & info [ "max-requests" ] ~docv:"N"
          ~doc:"Exit after answering $(docv) requests (for tests).")
  in
  let pool_arg =
    Arg.(
      value & opt int 1
      & info [ "pool" ] ~docv:"N"
          ~doc:
            "Accepting domains: $(docv) clients are served concurrently \
             against the shared store (lock-free lookups, serialized \
             appends).")
  in
  let run socket tcp max_requests pool store_path =
    let server = Wo_campaign.Serve.create ~store_path in
    let listener =
      match tcp with
      | Some port -> Wo_campaign.Serve.Tcp port
      | None -> Wo_campaign.Serve.Unix_socket socket
    in
    (match listener with
    | Wo_campaign.Serve.Tcp port ->
      Printf.printf "wo serve: listening on 127.0.0.1:%d (store %s, pool %d)\n%!"
        port store_path (max 1 pool)
    | Wo_campaign.Serve.Unix_socket path ->
      Printf.printf "wo serve: listening on %s (store %s, pool %d)\n%!" path
        store_path (max 1 pool));
    Fun.protect
      ~finally:(fun () -> Wo_campaign.Serve.close server)
      (fun () -> Wo_campaign.Serve.serve ~max_requests ~pool server listener);
    Printf.printf "wo serve: %d request(s) answered\n"
      (Wo_campaign.Serve.requests server)
  in
  Cmd.v
    (Cmd.info "serve"
       ~doc:
         "Serve check/sweep/synth requests over a line-delimited JSON \
          protocol against one warm verdict store, optionally from a pool \
          of concurrent domains")
    Term.(
      const run $ socket_arg $ tcp_arg $ max_requests_arg $ pool_arg
      $ store_arg)

let store_cmd =
  let file_arg =
    Arg.(
      required
      & pos 0 (some string) None
      & info [] ~docv:"STORE" ~doc:"A WOCAMPS1 verdict store.")
  in
  let compact_cmd =
    let run file =
      if not (Sys.file_exists file) then begin
        Printf.eprintf "wo store compact: %s: no such store\n" file;
        exit 1
      end;
      let cs = Wo_campaign.Store.compact file in
      Printf.printf
        "compacted %s: %d -> %d records, %d -> %d bytes (%.2fx smaller)\n" file
        cs.Wo_campaign.Store.cs_before_records
        cs.Wo_campaign.Store.cs_after_records
        cs.Wo_campaign.Store.cs_before_bytes cs.Wo_campaign.Store.cs_after_bytes
        (float_of_int cs.Wo_campaign.Store.cs_before_bytes
        /. float_of_int (max 1 cs.Wo_campaign.Store.cs_after_bytes))
    in
    Cmd.v
      (Cmd.info "compact"
         ~doc:
           "Rewrite a store dropping superseded duplicate records, with a \
            crash-safe rename swap (lookups are unchanged: the surviving \
            record per key is the one every lookup already answered with)")
      Term.(const run $ file_arg)
  in
  let stats_cmd =
    let run file =
      if not (Sys.file_exists file) then begin
        Printf.eprintf "wo store stats: %s: no such store\n" file;
        exit 1
      end;
      let st = Wo_campaign.Store.openf file in
      Fun.protect ~finally:(fun () -> Wo_campaign.Store.close st) @@ fun () ->
      let bytes = (Unix.stat file).Unix.st_size in
      Printf.printf
        "%s: %d record(s) (%d live, %d superseded), %d bytes%s\n" file
        (Wo_campaign.Store.length st)
        (Wo_campaign.Store.live st)
        (Wo_campaign.Store.dead_estimate st)
        bytes
        (if Wo_campaign.Store.tail_dropped st > 0 then
           Printf.sprintf " (%d torn-tail bytes truncated)"
             (Wo_campaign.Store.tail_dropped st)
         else "")
    in
    Cmd.v
      (Cmd.info "stats" ~doc:"Record, liveness and size counters for a store")
      Term.(const run $ file_arg)
  in
  Cmd.group
    (Cmd.info "store" ~doc:"Inspect and compact persistent verdict stores")
    [ compact_cmd; stats_cmd ]

let main =
  let doc =
    "weak ordering, redefined — simulators and checkers for Adve & Hill's \
     DRF0 framework"
  in
  Cmd.group (Cmd.info "wo" ~version:"1.0.0" ~doc)
    [
      list_cmd;
      litmus_cmd;
      litmus_file_cmd;
      races_cmd;
      check_cmd;
      workload_cmd;
      sweep_cmd;
      trace_cmd;
      delays_cmd;
      synth_cmd;
      campaign_cmd;
      difftest_cmd;
      serve_cmd;
      store_cmd;
    ]

let () = exit (Cmd.eval main)
