(* Work-stealing scheduler over OCaml 5 domains.

   The PR-1/PR-3 parallel enumerators split the root region of the
   search statically: irregular subtrees left whole domains idle while
   one domain ground through a heavy branch.  This scheduler gives each
   worker a deque: the owner pushes and pops subtree tasks LIFO at the
   bottom (depth-first locality, small hot set), idle workers steal FIFO
   from the top of a victim's deque (the shallowest — biggest — subtrees
   migrate, keeping steal counts low).  Deques are mutex-protected; the
   critical sections are a handful of instructions and the owner only
   touches its own lock off the empty/steal path, so contention is
   negligible at enumeration granularity.

   Termination: an atomic count of unfinished tasks (incremented at
   push, decremented after a task's body returns).  A worker with an
   empty deque cycles over victims; when the count reaches zero everyone
   exits.  [halt] lets a worker abandon the search early (a race was
   found); remaining tasks are drained without running their bodies.

   Exceptions: the first failure (lowest worker id wins, determinism for
   a fixed domain count) is captured, the pool is halted, every domain
   is joined, and only then is the exception re-raised — no
   [Option.get]-style partial-result crashes, no orphan domains. *)

type 'a deque = {
  lock : Mutex.t;
  mutable items : 'a array option; (* None = empty slot placeholder array *)
  mutable head : int; (* steal end *)
  mutable tail : int; (* owner end *)
}

let deque_create () =
  { lock = Mutex.create (); items = None; head = 0; tail = 0 }

let deque_push d x =
  Mutex.lock d.lock;
  let buf =
    match d.items with
    | Some buf when d.tail < Array.length buf -> buf
    | Some buf ->
      let live = d.tail - d.head in
      let buf' = Array.make (max 8 (2 * max live (Array.length buf))) x in
      Array.blit buf d.head buf' 0 live;
      d.head <- 0;
      d.tail <- live;
      d.items <- Some buf';
      buf'
    | None ->
      let buf = Array.make 8 x in
      d.items <- Some buf;
      d.head <- 0;
      d.tail <- 0;
      buf
  in
  buf.(d.tail) <- x;
  d.tail <- d.tail + 1;
  Mutex.unlock d.lock

let deque_pop d =
  Mutex.lock d.lock;
  let r =
    if d.tail = d.head then None
    else begin
      d.tail <- d.tail - 1;
      Some (Option.get d.items).(d.tail)
    end
  in
  Mutex.unlock d.lock;
  r

let deque_steal d =
  Mutex.lock d.lock;
  let r =
    if d.tail = d.head then None
    else begin
      let x = (Option.get d.items).(d.head) in
      d.head <- d.head + 1;
      Some x
    end
  in
  Mutex.unlock d.lock;
  r

let deque_length d =
  Mutex.lock d.lock;
  let n = d.tail - d.head in
  Mutex.unlock d.lock;
  n

type stats = { steals : int; executed : int array }

type 'a pool = {
  deques : 'a deque array;
  pending : int Atomic.t;
  stopped : bool Atomic.t;
  failure : (int * exn * Printexc.raw_backtrace) option Atomic.t;
  steal_count : int Atomic.t;
  executed : int Atomic.t array;
}

let run ~domains ~roots f =
  let n = max 1 domains in
  let pool =
    {
      deques = Array.init n (fun _ -> deque_create ());
      pending = Atomic.make 0;
      stopped = Atomic.make false;
      failure = Atomic.make None;
      steal_count = Atomic.make 0;
      executed = Array.init n (fun _ -> Atomic.make 0);
    }
  in
  List.iteri
    (fun i task ->
      Atomic.incr pool.pending;
      deque_push pool.deques.(i mod n) task)
    roots;
  let worker w =
    let my = pool.deques.(w) in
    let push task =
      Atomic.incr pool.pending;
      deque_push my task
    in
    let hungry () = deque_length my < 2 in
    let halt () = Atomic.set pool.stopped true in
    let run_task task =
      if not (Atomic.get pool.stopped) then begin
        Atomic.incr pool.executed.(w);
        (try f ~worker:w ~push ~hungry ~halt task with
        | e ->
          let bt = Printexc.get_raw_backtrace () in
          (* lowest worker id wins, so the surfaced failure is stable
             for a fixed domain count *)
          let rec record () =
            match Atomic.get pool.failure with
            | Some (w0, _, _) when w0 <= w -> ()
            | cur ->
              if not (Atomic.compare_and_set pool.failure cur (Some (w, e, bt)))
              then record ()
          in
          record ();
          halt ())
      end;
      Atomic.decr pool.pending
    in
    let rec steal_from k tries =
      if tries = 0 then None
      else
        match deque_steal pool.deques.(k) with
        | Some _ as r ->
          Atomic.incr pool.steal_count;
          r
        | None -> steal_from ((k + 1) mod n) (tries - 1)
    in
    let rec loop () =
      match deque_pop my with
      | Some task ->
        run_task task;
        loop ()
      | None ->
        if Atomic.get pool.pending = 0 then ()
        else begin
          (match steal_from ((w + 1) mod n) (n - 1) with
          | Some task -> run_task task
          | None -> Domain.cpu_relax ());
          loop ()
        end
    in
    loop ()
  in
  let spawned = List.init (n - 1) (fun k -> Domain.spawn (fun () -> worker (k + 1))) in
  worker 0;
  List.iter Domain.join spawned;
  (match Atomic.get pool.failure with
  | Some (_, e, bt) -> Printexc.raise_with_backtrace e bt
  | None -> ());
  {
    steals = Atomic.get pool.steal_count;
    executed = Array.map Atomic.get pool.executed;
  }
