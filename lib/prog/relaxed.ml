(* The model-aware reference enumerator.

   For a loop-free program and a hardware ordering model
   ({!Wo_core.Sync_model.hardware}) this enumerates every outcome the
   model allows, by exhaustive interleaving of an abstract operational
   machine: per-processor store buffers are explicit state, and draining
   one buffered write to memory is a scheduling step like any other.
   The simulated machines ({!Wo_machines.Ordering}) implement the same
   models with real timing; their reachable outcomes are a subset of
   what this enumerator produces, which is exactly the compliance
   contract `wo difftest` checks for racy programs.

   The abstract machine:
   - a data write deposits into the processor's buffer (when the model
     buffers at all); a drain step applies the oldest eligible entry to
     memory — the FIFO head under TSO, the oldest entry of any one
     location when W->W is relaxed (PSO/RA);
   - a data read returns the youngest of the processor's own pending
     writes to the location (store-to-load forwarding) or, failing
     that, current memory — overtaking pending writes to other
     locations (W->R);
   - synchronization requires an empty buffer (drain-then-issue) and
     acts directly on memory; under [Acquire_no_drain] (RA) read-only
     synchronization skips the drain requirement, like a data read;
   - local computation runs eagerly: it commutes with every other
     processor's steps, so executing it immediately prunes the
     interleaving tree without losing outcomes. *)

module SM = Wo_core.Sync_model

exception Too_many_states of int

(* Sorted-assoc updates keep states structurally canonical, so the
   visited table can use polymorphic equality. *)
let rec assoc_set k v = function
  | [] -> [ (k, v) ]
  | (k', _) :: rest when k' = k -> (k, v) :: rest
  | (k', v') :: rest when k' > k -> (k, v) :: (k', v') :: rest
  | kv :: rest -> kv :: assoc_set k v rest

type pstate = {
  code : Instr.t list;
  regs : (Instr.reg * Wo_core.Event.value) list; (* sorted *)
  buf : (Wo_core.Event.loc * Wo_core.Event.value) list; (* oldest first *)
}

type state = {
  procs : pstate list;
  mem : (Wo_core.Event.loc * Wo_core.Event.value) list; (* sorted *)
}

let reg_value ps r = try List.assoc r ps.regs with Not_found -> 0
let eval ps e = Instr.eval_expr (reg_value ps) e
let cond ps c = Instr.eval_cond (reg_value ps) c

let mem_value program mem loc =
  try List.assoc loc mem with Not_found -> Program.initial_value program loc

(* The youngest pending write to [loc], if any. *)
let forwarded ps loc =
  List.fold_left
    (fun acc (l, v) -> if l = loc then Some v else acc)
    None ps.buf

(* Run a processor's local prefix (assignments, control flow, Nop) to
   the next memory operation.  Terminates on loop-free programs. *)
let rec settle_local ps =
  match ps.code with
  | Instr.Assign (r, e) :: rest ->
    settle_local { ps with code = rest; regs = assoc_set r (eval ps e) ps.regs }
  | Instr.Nop :: rest -> settle_local { ps with code = rest }
  | Instr.If (c, a, b) :: rest ->
    settle_local { ps with code = (if cond ps c then a else b) @ rest }
  | Instr.While (c, body) :: rest ->
    if cond ps c then settle_local { ps with code = body @ (ps.code : Instr.t list) }
    else settle_local { ps with code = rest }
  | _ -> ps

(* Entries eligible to drain next: position of the FIFO head, or of the
   oldest entry per location when W->W is relaxed. *)
let drainable hw ps =
  match ps.buf with
  | [] -> []
  | (l0, _) :: _ when not (SM.relaxes hw SM.W_to_w) -> [ (0, l0) ]
  | buf ->
    let seen = ref [] in
    List.filteri
      (fun _ (l, _) ->
        if List.mem l !seen then false
        else begin
          seen := l :: !seen;
          true
        end)
      buf
    |> fun firsts ->
    List.map
      (fun (l, _) ->
        let rec pos i = function
          | (l', _) :: _ when l' = l -> i
          | _ :: rest -> pos (i + 1) rest
          | [] -> assert false
        in
        (pos 0 buf, l))
      firsts

let remove_nth n l = List.filteri (fun i _ -> i <> n) l

let outcomes ?(max_states = 2_000_000) (hw : SM.hardware)
    (program : Program.t) : Outcome.t list =
  if Program.has_loops program then
    invalid_arg "Relaxed.outcomes: program has loops";
  let buffers = hw.SM.relaxations <> [] in
  let num_procs = Program.num_procs program in
  let thread_regs =
    Array.map (fun code -> Instr.regs code) program.Program.threads
  in
  let observable p r =
    match program.Program.observable with
    | None -> true
    | Some l -> List.mem (p, r) l
  in
  let initial =
    {
      procs =
        Array.to_list
          (Array.map
             (fun code -> settle_local { code; regs = []; buf = [] })
             program.Program.threads);
      mem = [];
    }
  in
  let visited : (state, unit) Hashtbl.t = Hashtbl.create 4096 in
  let results : (Outcome.t, unit) Hashtbl.t = Hashtbl.create 64 in
  let set_proc st p ps =
    { st with procs = List.mapi (fun i q -> if i = p then ps else q) st.procs }
  in
  let finalize st =
    let registers =
      List.concat
        (List.mapi
           (fun p ps ->
             List.filter_map
               (fun r ->
                 if observable p r then Some (p, r, reg_value ps r) else None)
               thread_regs.(p))
           st.procs)
    in
    let memory =
      List.map (fun loc -> (loc, mem_value program st.mem loc)) (Program.locs program)
    in
    let o = Outcome.make ~registers ~memory in
    if not (Hashtbl.mem results o) then Hashtbl.replace results o ()
  in
  let rec explore st =
    if Hashtbl.mem visited st then ()
    else begin
      Hashtbl.replace visited st ();
      if Hashtbl.length visited > max_states then
        raise (Too_many_states max_states);
      let stepped = ref false in
      List.iteri
        (fun p ps ->
          (* drain one eligible buffered write *)
          List.iter
            (fun (n, loc) ->
              stepped := true;
              let v = snd (List.nth ps.buf n) in
              explore
                (set_proc
                   { st with mem = assoc_set loc v st.mem }
                   p
                   { ps with buf = remove_nth n ps.buf }))
            (drainable hw ps);
          (* execute the next memory operation *)
          match ps.code with
          | [] -> ()
          | instr :: rest ->
            let continue ?(mem = st.mem) ps' =
              stepped := true;
              explore (set_proc { st with mem } p (settle_local ps'))
            in
            let read_value loc =
              match (hw.SM.forwarding, forwarded ps loc) with
              | true, Some v -> v
              | _ -> mem_value program st.mem loc
            in
            let quiet = ps.buf = [] in
            (match instr with
            | Instr.Read (r, loc) ->
              if hw.SM.forwarding || forwarded ps loc = None then
                continue
                  { ps with code = rest; regs = assoc_set r (read_value loc) ps.regs }
            | Instr.Write (loc, e) ->
              let v = eval ps e in
              if buffers then
                continue { ps with code = rest; buf = ps.buf @ [ (loc, v) ] }
              else continue ~mem:(assoc_set loc v st.mem) { ps with code = rest }
            | Instr.Sync_read (r, loc) ->
              if quiet || SM.relaxes hw SM.Acquire_no_drain then
                continue
                  { ps with code = rest; regs = assoc_set r (read_value loc) ps.regs }
            | Instr.Sync_write (loc, e) ->
              if quiet then
                continue
                  ~mem:(assoc_set loc (eval ps e) st.mem)
                  { ps with code = rest }
            | Instr.Test_and_set (r, loc) ->
              if quiet then
                let old = mem_value program st.mem loc in
                continue
                  ~mem:(assoc_set loc 1 st.mem)
                  { ps with code = rest; regs = assoc_set r old ps.regs }
            | Instr.Fetch_and_add (r, loc, e) ->
              if quiet then
                let old = mem_value program st.mem loc in
                continue
                  ~mem:(assoc_set loc (old + eval ps e) st.mem)
                  { ps with code = rest; regs = assoc_set r old ps.regs }
            | Instr.Fence -> if quiet then continue { ps with code = rest }
            | Instr.Assign _ | Instr.Nop | Instr.If _ | Instr.While _ ->
              (* settle_local leaves only memory operations at the head *)
              assert false))
        st.procs;
      if not !stepped then begin
        assert (List.for_all (fun ps -> ps.code = [] && ps.buf = []) st.procs);
        finalize st
      end
    end
  in
  ignore num_procs;
  explore initial;
  Hashtbl.fold (fun o () acc -> o :: acc) results []
  |> List.sort Outcome.compare

let allows ?max_states hw program outcome =
  List.exists
    (fun o -> Outcome.compare o outcome = 0)
    (outcomes ?max_states hw program)
