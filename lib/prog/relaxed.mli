(** Model-aware reference enumeration.

    {!Enumerate} answers "what can sequential consistency produce?";
    this module answers the same question for a relaxed hardware
    ordering model ({!Wo_core.Sync_model.hardware}): TSO, PSO or the
    release/acquire window model.  It exhaustively interleaves an
    abstract operational machine in which per-processor store buffers
    are explicit state and draining one buffered write is a scheduling
    step, so the result is the model's exact allowed outcome set for a
    loop-free program.

    The simulated backends ({!Wo_machines.Ordering}) realize the same
    models with concrete timing; every outcome they can produce is in
    this set.  [wo difftest] checks that inclusion run by run, which is
    the racy-program half of the differential compliance harness (the
    DRF0 half is Definition 2: the allowed set is the SC set). *)

exception Too_many_states of int
(** Raised when the search exceeds [max_states] distinct states. *)

val outcomes :
  ?max_states:int ->
  Wo_core.Sync_model.hardware ->
  Program.t ->
  Outcome.t list
(** All outcomes the hardware model allows for the program, sorted by
    {!Outcome.compare}.  Under {!Wo_core.Sync_model.sc_hw} this equals
    {!Enumerate.outcomes} (as a set); each weaker model's set contains
    the stronger ones'.  [max_states] (default 2,000,000) bounds the
    state search.
    @raise Invalid_argument on programs with loops.
    @raise Too_many_states when the bound is exceeded. *)

val allows :
  ?max_states:int ->
  Wo_core.Sync_model.hardware ->
  Program.t ->
  Outcome.t ->
  bool
(** [allows hw p o] — is [o] in [outcomes hw p]?  Recomputes the set;
    callers checking many outcomes should memoize {!outcomes}. *)
