(** One-shot compilation of programs to flat, int-coded form.

    {!Interp} walks AST instruction lists with assoc-list register
    environments — fine for a few thousand states, fatal for a few
    billion.  This module compiles a {!Program.t} {e once} into flat
    arrays of int-coded ops with every register, location and processor
    name preresolved to a dense index, so the compiled interpreter
    ({!Cinterp}) runs over plain [int array]s: no boxed environments, no
    list walking, no hashing of structural keys.

    Compilation is total on every program the repository generates; the
    [option] exists for pathological inputs (more locations/registers
    than the packed state key can index, threads beyond the sleep-set
    bitset, enormous code) — callers fall back to the AST engine, which
    handles everything.

    The compiled form also provides {!encoding}: a canonical, versioned
    byte string of the whole program (code, index tables, initial
    memory, observability), stable across runs and OCaml versions —
    unlike [Marshal], whose format is a compiler implementation detail.
    {!Sweep}'s cross-cell SC-memoization keys on it. *)

(** {2 Opcode layout}

    Each op occupies {!op_stride} consecutive ints in a thread's code
    array: [[|opcode; a; b; c|]].  Program counters are raw offsets into
    that array (always multiples of {!op_stride}); jump targets are
    encoded the same way.  The code array's length marks termination. *)

val op_stride : int

val o_read : int  (** [a]=flat register, [b]=location index *)

val o_write : int  (** [a]=location index, [b]=expression id *)

val o_sync_read : int  (** [a]=flat register, [b]=location index *)

val o_sync_write : int  (** [a]=location index, [b]=expression id *)

val o_tas : int  (** [a]=flat register, [b]=location index *)

val o_faa : int  (** [a]=flat register, [b]=location index, [c]=expression id *)

val o_assign : int  (** [a]=flat register, [b]=expression id *)

val o_jmp : int  (** [a]=target offset *)

val o_jif : int  (** [a]=condition expression id, [b]=target iff false *)

val o_nop : int

val o_fence : int

(** {2 Expression table}

    Expressions are compiled to postfix code evaluated over a tiny
    stack; the two overwhelmingly common shapes (constant, single
    register) are special-cased so their evaluation allocates nothing.
    Conditions evaluate to 0/1. *)

val e_const : int
val e_reg : int
val e_postfix : int

(** Postfix item tags, two pool ints per item: [tag; arg]. *)

val p_const : int
val p_reg : int
val p_add : int
val p_sub : int
val p_mul : int
val p_eq : int
val p_ne : int
val p_lt : int
val p_le : int

type t = private {
  source : Program.t;
  nprocs : int;
  locs : int array;  (** location index -> source location id, sorted *)
  init_mem : int array;  (** initial memory value per location index *)
  code : int array array;  (** per processor, stride-{!op_stride} ops *)
  reg_ids : int array array;
      (** per processor: local register index -> source register id, sorted *)
  reg_base : int array;
      (** per processor: offset of its block in the flat register file *)
  nregs : int;  (** flat register file length *)
  e_kind : int array;  (** per expression id: {!e_const}/{!e_reg}/{!e_postfix} *)
  e_arg : int array;  (** constant value / flat register / pool offset *)
  e_len : int array;  (** postfix items (0 for the scalar kinds) *)
  epool : int array;
  max_stack : int;  (** deepest postfix evaluation stack, >= 1 *)
  obs_regs : (int * int * int) array;
      (** (processor, source register id, flat register index) for every
          observable register, in {!Interp.outcome}'s order *)
  classes : int array;
      (** per processor: symmetry class — equal iff the threads' compiled
          code is identical up to a private location renaming (and uses
          the same source register ids), i.e. the static half of the
          thread-signature test processor-symmetry reduction needs *)
  live_locs : int array array array;
      (** [live_locs.(p).(pc / op_stride)]: the location indices reachable
          from [pc] in [p]'s control-flow graph, in deterministic
          first-occurrence order — the renaming stream for canonical DRF0
          keys.  One extra entry (empty) for [pc = code length]. *)
}

val compile : Program.t -> t option
(** Compile, or [None] when the program exceeds a packing bound
    ({!compilable} explains which).  Compilation never changes
    semantics: {!Cinterp} on the result is step-for-step equivalent to
    {!Interp} on the source. *)

val compilable : Program.t -> bool
(** Would {!compile} succeed?  False when the program has more than
    [0xffff] locations or flat registers, a thread with more than 2048
    ops, or more processors than sleep-set bitset bits. *)

val encoding : t -> string
(** Canonical byte encoding of the compiled program: index tables, code
    (with expressions inlined structurally), initial memory and the
    observability spec.  Equal for two programs iff they compile to the
    same int-coded form with the same naming — a content key that is
    stable across runs and toolchains, with no [Marshal] versioning
    hazard.  Starts with a one-byte format version. *)

val encode_program : Program.t -> string option
(** [encoding] of [compile], when it succeeds. *)
