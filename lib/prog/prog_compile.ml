(* Compile programs once into flat int-coded arrays.

   The compiled form preresolves every name to a dense index: locations
   into a sorted table (memory becomes one int array), registers into a
   flat register file (per-thread blocks, so a processor's registers are
   a contiguous slice), control flow into jump offsets.  The compiled
   interpreter (Cinterp) then touches nothing but int arrays on its hot
   path.

   Beyond the code itself, compilation precomputes the two static
   analyses the stateful DAG search needs per visited state:

   - symmetry classes: threads whose compiled code is identical up to a
     private location renaming (and that name the same source registers)
     can be permuted by the DRF0 canonical key, exactly like the
     thread-signature classes of the AST path (State_key);
   - live locations per program point: the locations reachable from
     each pc in the thread's control-flow graph, in a deterministic
     first-occurrence order — the renaming stream for canonical keys,
     and the justification for dropping dead locations from them. *)

let op_stride = 4

let o_read = 0
let o_write = 1
let o_sync_read = 2
let o_sync_write = 3
let o_tas = 4
let o_faa = 5
let o_assign = 6
let o_jmp = 7
let o_jif = 8
let o_nop = 9
let o_fence = 10

let e_const = 0
let e_reg = 1
let e_postfix = 2

let p_const = 0
let p_reg = 1
let p_add = 2
let p_sub = 3
let p_mul = 4
let p_eq = 5
let p_ne = 6
let p_lt = 7
let p_le = 8

type t = {
  source : Program.t;
  nprocs : int;
  locs : int array;
  init_mem : int array;
  code : int array array;
  reg_ids : int array array;
  reg_base : int array;
  nregs : int;
  e_kind : int array;
  e_arg : int array;
  e_len : int array;
  epool : int array;
  max_stack : int;
  obs_regs : (int * int * int) array;
  classes : int array;
  live_locs : int array array array;
}

(* Packing bounds: the packed state key and the visited table index
   locations and registers in 16 bits, and per-thread code beyond a few
   thousand ops signals generated input the AST engine should handle. *)
let max_index = 0xffff
let max_ops_per_thread = 2048

(* --- growable int vector ---------------------------------------------------- *)

type vec = { mutable a : int array; mutable n : int }

let vec_create () = { a = Array.make 64 0; n = 0 }

let vec_push v x =
  if v.n = Array.length v.a then begin
    let a' = Array.make (2 * v.n) 0 in
    Array.blit v.a 0 a' 0 v.n;
    v.a <- a'
  end;
  v.a.(v.n) <- x;
  v.n <- v.n + 1

let vec_contents v = Array.sub v.a 0 v.n

(* --- expression compilation ------------------------------------------------- *)

type ectx = {
  kinds : vec;
  args : vec;
  lens : vec;
  pool : vec;
  stack_hi : int ref;  (* shared across the per-thread ectx copies *)
  reg_index : int -> int;  (* source register id -> flat register *)
}

let rec postfix_expr ctx depth (e : Instr.expr) =
  (* returns the stack depth reached while evaluating [e] starting from
     [depth] items already on the stack *)
  match e with
  | Instr.Const n ->
    vec_push ctx.pool p_const;
    vec_push ctx.pool n;
    depth + 1
  | Instr.Reg r ->
    vec_push ctx.pool p_reg;
    vec_push ctx.pool (ctx.reg_index r);
    depth + 1
  | Instr.Add (a, b) -> postfix_bin ctx depth p_add a b
  | Instr.Sub (a, b) -> postfix_bin ctx depth p_sub a b
  | Instr.Mul (a, b) -> postfix_bin ctx depth p_mul a b

and postfix_bin ctx depth tag a b =
  let da = postfix_expr ctx depth a in
  let db = postfix_expr ctx da b in
  ctx.stack_hi := max !(ctx.stack_hi) (max da db);
  vec_push ctx.pool tag;
  vec_push ctx.pool 0;
  max da db - 1

let add_expr ctx (e : Instr.expr) =
  let id = ctx.kinds.n in
  (match e with
  | Instr.Const n ->
    vec_push ctx.kinds e_const;
    vec_push ctx.args n;
    vec_push ctx.lens 0
  | Instr.Reg r ->
    vec_push ctx.kinds e_reg;
    vec_push ctx.args (ctx.reg_index r);
    vec_push ctx.lens 0
  | Instr.Add _ | Instr.Sub _ | Instr.Mul _ ->
    let off = ctx.pool.n in
    let _depth = postfix_expr ctx 0 e in
    vec_push ctx.kinds e_postfix;
    vec_push ctx.args off;
    vec_push ctx.lens ((ctx.pool.n - off) / 2));
  id

let add_cond ctx (c : Instr.cond) =
  let tag, a, b =
    match c with
    | Instr.Eq (a, b) -> (p_eq, a, b)
    | Instr.Ne (a, b) -> (p_ne, a, b)
    | Instr.Lt (a, b) -> (p_lt, a, b)
    | Instr.Le (a, b) -> (p_le, a, b)
  in
  let id = ctx.kinds.n in
  let off = ctx.pool.n in
  let da = postfix_expr ctx 0 a in
  let db = postfix_expr ctx da b in
  ctx.stack_hi := max !(ctx.stack_hi) (max da db);
  vec_push ctx.pool tag;
  vec_push ctx.pool 0;
  vec_push ctx.kinds e_postfix;
  vec_push ctx.args off;
  vec_push ctx.lens ((ctx.pool.n - off) / 2);
  id

(* --- code generation -------------------------------------------------------- *)

(* Emit a block; jump targets are backpatched once the block length is
   known.  Every AST instruction becomes at least one op, so local step
   budgets stay comparable with Interp's (Nop and Fence are real ops). *)
let rec emit_block ctx code loc_index instrs =
  List.iter (emit_instr ctx code loc_index) instrs

and emit_instr ctx code loc_index (i : Instr.t) =
  let op o a b c =
    vec_push code o;
    vec_push code a;
    vec_push code b;
    vec_push code c
  in
  match i with
  | Instr.Read (r, l) -> op o_read (ctx.reg_index r) (loc_index l) 0
  | Instr.Write (l, e) -> op o_write (loc_index l) (add_expr ctx e) 0
  | Instr.Sync_read (r, l) -> op o_sync_read (ctx.reg_index r) (loc_index l) 0
  | Instr.Sync_write (l, e) -> op o_sync_write (loc_index l) (add_expr ctx e) 0
  | Instr.Test_and_set (r, l) -> op o_tas (ctx.reg_index r) (loc_index l) 0
  | Instr.Fetch_and_add (r, l, e) ->
    op o_faa (ctx.reg_index r) (loc_index l) (add_expr ctx e)
  | Instr.Assign (r, e) -> op o_assign (ctx.reg_index r) (add_expr ctx e) 0
  | Instr.Nop -> op o_nop 0 0 0
  | Instr.Fence -> op o_fence 0 0 0
  | Instr.If (c, a, b) ->
    let cond = add_cond ctx c in
    let jif_at = code.n in
    op o_jif cond 0 0;
    emit_block ctx code loc_index a;
    if b = [] then code.a.(jif_at + 2) <- code.n
    else begin
      let jmp_at = code.n in
      op o_jmp 0 0 0;
      code.a.(jif_at + 2) <- code.n;
      emit_block ctx code loc_index b;
      code.a.(jmp_at + 1) <- code.n
    end
  | Instr.While (c, body) ->
    let cond = add_cond ctx c in
    let top = code.n in
    let jif_at = code.n in
    op o_jif cond 0 0;
    emit_block ctx code loc_index body;
    op o_jmp top 0 0;
    code.a.(jif_at + 2) <- code.n

(* --- static analyses -------------------------------------------------------- *)

let op_loc_operand o =
  (* operand slot holding a location index, or -1 *)
  if o = o_write || o = o_sync_write then 1
  else if o = o_read || o = o_sync_read || o = o_tas || o = o_faa then 2
  else -1

(* Ops reachable from [pc], as a bool array over op indices. *)
let reachable code pc =
  let nops = Array.length code / op_stride in
  let seen = Array.make nops false in
  let rec go pc =
    if pc < Array.length code then begin
      let i = pc / op_stride in
      if not seen.(i) then begin
        seen.(i) <- true;
        let o = code.(pc) in
        if o = o_jmp then go code.(pc + 1)
        else if o = o_jif then begin
          go (pc + op_stride);
          go code.(pc + 2)
        end
        else go (pc + op_stride)
      end
    end
  in
  go pc;
  seen

(* Live locations from every program point, in deterministic
   first-occurrence order: scan the reachable ops in ascending address
   order.  Renaming-stable: two threads with identical renamed code have
   position-wise corresponding streams. *)
let live_locs_of code nlocs =
  let nops = Array.length code / op_stride in
  Array.init (nops + 1) (fun i ->
      if i = nops then [||]
      else begin
        let seen_op = reachable code (i * op_stride) in
        let seen_loc = Array.make nlocs false in
        let out = vec_create () in
        for j = 0 to nops - 1 do
          if seen_op.(j) then begin
            let pc = j * op_stride in
            let slot = op_loc_operand code.(pc) in
            if slot >= 0 then begin
              let l = code.(pc + slot) in
              if not seen_loc.(l) then begin
                seen_loc.(l) <- true;
                vec_push out l
              end
            end
          end
        done;
        vec_contents out
      end)

(* Renaming-invariant encoding of one thread's compiled code, used to
   group threads into symmetry classes: locations are renamed by first
   occurrence (private to the thread), registers by their local index,
   expressions inlined structurally.  Two threads with equal encodings
   (and equal source register ids, which the caller also compares) are
   behaviourally identical up to a bijective location renaming. *)
let class_encoding t p =
  let buf = Buffer.create 128 in
  let add_i n =
    Buffer.add_string buf (string_of_int n);
    Buffer.add_char buf ','
  in
  let rename = Array.make (Array.length t.locs) (-1) in
  let next = ref 0 in
  let renamed l =
    if rename.(l) < 0 then begin
      rename.(l) <- !next;
      incr next
    end;
    rename.(l)
  in
  let local_reg fr = fr - t.reg_base.(p) in
  let add_expr e =
    Buffer.add_char buf 'e';
    add_i t.e_kind.(e);
    (match t.e_kind.(e) with
    | k when k = e_const -> add_i t.e_arg.(e)
    | k when k = e_reg -> add_i (local_reg t.e_arg.(e))
    | _ ->
      for i = 0 to t.e_len.(e) - 1 do
        let tag = t.epool.(t.e_arg.(e) + (2 * i)) in
        let arg = t.epool.(t.e_arg.(e) + (2 * i) + 1) in
        add_i tag;
        add_i (if tag = p_reg then local_reg arg else if tag = p_const then arg else 0)
      done);
    Buffer.add_char buf ';'
  in
  let code = t.code.(p) in
  let pc = ref 0 in
  while !pc < Array.length code do
    let o = code.(!pc) in
    add_i o;
    (if o = o_read || o = o_sync_read || o = o_tas then begin
       add_i (local_reg code.(!pc + 1));
       add_i (renamed code.(!pc + 2))
     end
     else if o = o_write || o = o_sync_write then begin
       add_i (renamed code.(!pc + 1));
       add_expr code.(!pc + 2)
     end
     else if o = o_faa then begin
       add_i (local_reg code.(!pc + 1));
       add_i (renamed code.(!pc + 2));
       add_expr code.(!pc + 3)
     end
     else if o = o_assign then begin
       add_i (local_reg code.(!pc + 1));
       add_expr code.(!pc + 2)
     end
     else if o = o_jmp then add_i code.(!pc + 1)
     else if o = o_jif then begin
       add_expr code.(!pc + 1);
       add_i code.(!pc + 2)
     end);
    pc := !pc + op_stride
  done;
  Buffer.contents buf

(* --- compilation ------------------------------------------------------------ *)

let compile_exn (p : Program.t) =
  let nprocs = Program.num_procs p in
  let locs = Array.of_list (Program.locs p) in
  let nlocs = Array.length locs in
  let loc_tbl = Hashtbl.create 16 in
  Array.iteri (fun i l -> Hashtbl.replace loc_tbl l i) locs;
  let loc_index l = Hashtbl.find loc_tbl l in
  let init_mem = Array.map (fun l -> Program.initial_value p l) locs in
  let reg_ids =
    Array.map (fun code -> Array.of_list (Instr.regs code)) p.Program.threads
  in
  let reg_base = Array.make nprocs 0 in
  let nregs =
    let acc = ref 0 in
    Array.iteri
      (fun i ids ->
        reg_base.(i) <- !acc;
        acc := !acc + Array.length ids)
      reg_ids;
    !acc
  in
  let reg_tbl = Hashtbl.create 16 in
  Array.iteri
    (fun pi ids ->
      Array.iteri (fun i r -> Hashtbl.replace reg_tbl (pi, r) (reg_base.(pi) + i)) ids)
    reg_ids;
  let ctx =
    {
      kinds = vec_create ();
      args = vec_create ();
      lens = vec_create ();
      pool = vec_create ();
      stack_hi = ref 1;
      reg_index = (fun _ -> assert false);
    }
  in
  let code =
    Array.mapi
      (fun pi instrs ->
        let ctx = { ctx with reg_index = (fun r -> Hashtbl.find reg_tbl (pi, r)) } in
        let v = vec_create () in
        emit_block ctx v loc_index instrs;
        vec_contents v)
      p.Program.threads
  in
  let observable pi r =
    match p.Program.observable with
    | None -> true
    | Some l -> List.mem (pi, r) l
  in
  let obs_regs =
    Array.to_list reg_ids
    |> List.mapi (fun pi ids ->
           Array.to_list ids
           |> List.filter (observable pi)
           |> List.map (fun r -> (pi, r, Hashtbl.find reg_tbl (pi, r))))
    |> List.concat |> Array.of_list
  in
  let t =
    {
      source = p;
      nprocs;
      locs;
      init_mem;
      code;
      reg_ids;
      reg_base;
      nregs;
      e_kind = vec_contents ctx.kinds;
      e_arg = vec_contents ctx.args;
      e_len = vec_contents ctx.lens;
      epool = vec_contents ctx.pool;
      max_stack = !(ctx.stack_hi);
      obs_regs;
      classes = [||];
      live_locs = [||];
    }
  in
  let class_keys =
    Array.init nprocs (fun pi -> (class_encoding t pi, reg_ids.(pi)))
  in
  let classes =
    Array.map
      (fun key ->
        (* class id = lowest processor with this key *)
        let rec find i = if class_keys.(i) = key then i else find (i + 1) in
        find 0)
      class_keys
  in
  let live_locs = Array.map (fun c -> live_locs_of c nlocs) code in
  { t with classes; live_locs }

let within_bounds (p : Program.t) =
  let nprocs = Program.num_procs p in
  nprocs <= Sys.int_size - 2
  && List.length (Program.locs p) <= max_index
  && Array.for_all
       (fun code ->
         Instr.static_op_count code <= max_ops_per_thread
         && List.length (Instr.regs code) <= max_index)
       p.Program.threads

let compilable = within_bounds

let compile p = if within_bounds p then Some (compile_exn p) else None

(* --- canonical encoding ----------------------------------------------------- *)

(* Varint (LEB128, zigzagged) writer shared with the packed state keys;
   self-delimiting, so a fixed field sequence is injective. *)
let emit_varint buf n =
  let z = if n >= 0 then n lsl 1 else lnot (n lsl 1) in
  let rec go z =
    if z < 0x80 then Buffer.add_char buf (Char.unsafe_chr z)
    else begin
      Buffer.add_char buf (Char.unsafe_chr (0x80 lor (z land 0x7f)));
      go (z lsr 7)
    end
  in
  go z

let emit_array buf a =
  emit_varint buf (Array.length a);
  Array.iter (emit_varint buf) a

let encoding_version = 1

let encoding t =
  let buf = Buffer.create 256 in
  Buffer.add_char buf (Char.chr encoding_version);
  emit_varint buf t.nprocs;
  emit_array buf t.locs;
  emit_array buf t.init_mem;
  Array.iter (fun ids -> emit_array buf ids) t.reg_ids;
  Array.iter (fun c -> emit_array buf c) t.code;
  emit_array buf t.e_kind;
  emit_array buf t.e_arg;
  emit_array buf t.e_len;
  emit_array buf t.epool;
  (match t.source.Program.observable with
  | None -> emit_varint buf 0
  | Some l ->
    emit_varint buf 1;
    let l = List.sort_uniq compare l in
    emit_varint buf (List.length l);
    List.iter
      (fun (p, r) ->
        emit_varint buf p;
        emit_varint buf r)
      l);
  Buffer.contents buf

let encode_program p = Option.map encoding (compile p)
