(** Work-stealing task scheduler over OCaml 5 domains.

    Replaces the static root split of the earlier parallel enumerators:
    each worker owns a deque of subtree tasks, pushes and pops LIFO
    (depth-first locality) and steals FIFO from a victim when idle, so
    the shallowest — biggest — subtrees migrate to idle domains and
    irregular search trees keep every domain busy.

    [domains = 1] runs everything on the calling domain (no spawns). *)

type stats = {
  steals : int;  (** successful steals across the run *)
  executed : int array;  (** tasks executed per worker *)
}

val run :
  domains:int ->
  roots:'a list ->
  (worker:int ->
  push:('a -> unit) ->
  hungry:(unit -> bool) ->
  halt:(unit -> unit) ->
  'a ->
  unit) ->
  stats
(** [run ~domains ~roots f] distributes [roots] round-robin and runs
    [f] on every task until none remain.  Inside [f]: [push] adds a
    subtask to the calling worker's deque; [hungry ()] is true when that
    deque is nearly empty (the cue to expose subtasks for stealing
    instead of recursing inline); [halt ()] abandons the search —
    remaining tasks are drained without running.

    If any [f] raises, the pool halts, {e all} domains are joined, and
    the failure of the lowest worker id is re-raised with its backtrace
    — tasks never vanish silently and no domain is left running. *)
