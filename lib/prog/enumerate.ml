exception Limit_exceeded

type strategy = Naive | Por

type stats = { executions : int; states : int; truncated : bool }

(* Advance every processor that can finish without another memory access;
   such steps commute with everything, so they are not branch points and
   skipping them avoids enumerating duplicate executions. *)
let rec drain_silent state =
  let silent =
    List.find_map
      (fun p ->
        let state', ev = Interp.step state p in
        match ev with None -> Some state' | Some _ -> None)
      (Interp.runnable state)
  in
  match silent with None -> state | Some state' -> drain_silent state'

(* Two pending steps of different processors commute unless they conflict:
   same location with a write component, or either is a synchronization
   operation (synchronization order is observable through happens-before,
   so sync steps are conservatively dependent on everything). *)
let dependent (a : Interp.access) (b : Interp.access) =
  a.Interp.sync || b.Interp.sync
  || (a.Interp.loc = b.Interp.loc && (a.Interp.writes || b.Interp.writes))

(* Children of a drained, non-final node, with the event taken on the edge
   (consumed by the incremental DRF0 checker) and the sleep set each child
   inherits.  [sleep] lists processors whose pending step is already covered
   by a sibling subtree elsewhere in the search; exploring them here would
   only revisit Mazurkiewicz-equivalent interleavings.

   Sleep-set discipline (Godefroid): iterate awake processors in ascending
   order; the child for processor [p] sleeps on every processor of
   [sleep ∪ done-before-p] whose pending step is independent of [p]'s step.
   Pending accesses are stable under other processors' steps (locations are
   static), so sleep entries stay valid until the sleeper itself runs —
   which, while it sleeps, it never does. *)
let children_of ~strategy state sleep =
  let procs = Interp.runnable state in
  match procs with
  | [] -> None (* complete execution *)
  | _ ->
    Some
      (match strategy with
      | Naive ->
        List.map
          (fun p ->
            let state', ev = Interp.step state p in
            (state', ev, []))
          procs
      | Por ->
        (* After [drain_silent] every runnable processor has a pending
           memory operation, so [peek] cannot return [None]. *)
        let pending =
          List.map (fun p -> (p, Option.get (Interp.peek state p))) procs
        in
        let sleep = List.filter (fun q -> List.mem_assoc q pending) sleep in
        let rec expand sleep_now acc = function
          | [] -> List.rev acc
          | (p, ap) :: rest ->
            if List.mem p sleep then expand sleep_now acc rest
            else
              let child_sleep =
                List.filter
                  (fun q -> not (dependent ap (List.assoc q pending)))
                  sleep_now
              in
              let state', ev = Interp.step state p in
              expand (p :: sleep_now) ((state', ev, child_sleep) :: acc) rest
        in
        expand sleep [] pending)

(* Lazy depth-first enumeration of complete executions from an explicit
   root; shared by the naive oracle, the reduced enumerator, and the
   per-domain workers of the parallel DRF0 checker. *)
let execution_seq ~strategy ~max_events ~max_executions (root, root_sleep) =
  let produced = ref 0 in
  let rec leaves state sleep : Wo_core.Execution.t Seq.t =
   fun () ->
    let state = drain_silent state in
    if Interp.events_so_far state > max_events then raise Limit_exceeded;
    match children_of ~strategy state sleep with
    | None ->
      incr produced;
      if !produced > max_executions then raise Limit_exceeded;
      Seq.Cons (Interp.execution state, Seq.empty)
    | Some kids ->
      Seq.concat_map
        (fun (state', _ev, sleep') -> leaves state' sleep')
        (List.to_seq kids)
        ()
  in
  leaves root root_sleep

let executions ?(max_events = 64) ?(max_executions = 1_000_000) program =
  execution_seq ~strategy:Naive ~max_events ~max_executions
    (Interp.init program, [])

let executions_por ?(max_events = 64) ?(max_executions = 1_000_000) program =
  execution_seq ~strategy:Por ~max_events ~max_executions
    (Interp.init program, [])

module Outcome_set = Set.Make (Outcome)

(* Eager worker for outcome collection; [raise_on_limit] decides whether
   bounds raise or merely truncate.  Starts from an explicit list of
   (state, sleep) roots so the parallel fan-out can reuse it per domain.
   Outcomes are deduplicated incrementally, keeping memory proportional to
   the number of distinct outcomes rather than enumerated executions. *)
let collect_from ~strategy ~max_events ~max_executions ~raise_on_limit roots =
  let produced = ref 0 in
  let states = ref 0 in
  let outcomes = ref Outcome_set.empty in
  let truncated = ref false in
  let exception Stop in
  let limit () =
    if raise_on_limit then raise Limit_exceeded
    else begin
      truncated := true;
      raise Stop
    end
  in
  let rec go state sleep =
    incr states;
    let state = drain_silent state in
    if Interp.events_so_far state > max_events then limit ();
    match children_of ~strategy state sleep with
    | None ->
      incr produced;
      outcomes := Outcome_set.add (Interp.outcome state) !outcomes;
      if !produced >= max_executions then limit ()
    | Some kids -> List.iter (fun (state', _ev, sleep') -> go state' sleep') kids
  in
  (try List.iter (fun (state, sleep) -> go state sleep) roots with Stop -> ());
  ( Outcome_set.elements !outcomes,
    { executions = !produced; states = !states; truncated = !truncated } )

let collect_outcomes ~strategy ~max_events ~max_executions ~raise_on_limit
    program =
  collect_from ~strategy ~max_events ~max_executions ~raise_on_limit
    [ (Interp.init program, []) ]

let outcomes ?(strategy = Por) ?(max_events = 64)
    ?(max_executions = 1_000_000) program =
  fst
    (collect_outcomes ~strategy ~max_events ~max_executions
       ~raise_on_limit:true program)

let outcomes_with_stats ?(strategy = Por) ?(max_events = 64)
    ?(max_executions = 1_000_000) program =
  collect_outcomes ~strategy ~max_events ~max_executions ~raise_on_limit:false
    program

(* --- multicore fan-out ---------------------------------------------------- *)

(* Expand the search tree breadth-first until there are enough subtree roots
   to keep the workers busy.  Expansion follows exactly the same
   (strategy-dependent) child generation as the sequential search, so the
   produced subtrees jointly cover the same executions.  Complete executions
   reached during expansion are handed to [on_leaf] immediately. *)
let expand_frontier ~strategy ~max_events ~target ~on_leaf program =
  let states = ref 0 in
  let truncated = ref false in
  let rec rounds tasks =
    if List.length tasks >= target then tasks
    else begin
      let expanded = ref false in
      let next =
        List.concat_map
          (fun (state, sleep) ->
            incr states;
            let state = drain_silent state in
            if Interp.events_so_far state > max_events then begin
              truncated := true;
              []
            end
            else
              match children_of ~strategy state sleep with
              | None ->
                on_leaf state;
                []
              | Some kids ->
                expanded := true;
                List.map (fun (state', _ev, sleep') -> (state', sleep')) kids)
          tasks
      in
      if !expanded then rounds next else next
    end
  in
  let tasks = rounds [ (Interp.init program, []) ] in
  (tasks, !states, !truncated)

let default_domains () = max 1 (Domain.recommended_domain_count () - 1)

let split_round_robin n tasks =
  let buckets = Array.make n [] in
  List.iteri (fun i t -> buckets.(i mod n) <- t :: buckets.(i mod n)) tasks;
  Array.to_list (Array.map List.rev buckets)

(* Run one worker per bucket on its own domain.  With a single bucket the
   work stays on the current domain — spawning would only add overhead. *)
let map_domains worker buckets =
  match buckets with
  | [ only ] -> [ worker only ]
  | _ ->
    List.map Domain.join
      (List.map (fun b -> Domain.spawn (fun () -> worker b)) buckets)

let outcomes_par ?(strategy = Por) ?(max_events = 64)
    ?(max_executions = 1_000_000) ?domains program =
  let num_domains =
    match domains with Some d -> max 1 d | None -> default_domains ()
  in
  let frontier_leaves = ref [] in
  let tasks, frontier_states, frontier_truncated =
    expand_frontier ~strategy ~max_events ~target:(4 * num_domains)
      ~on_leaf:(fun state ->
        frontier_leaves := Interp.outcome state :: !frontier_leaves)
      program
  in
  let results =
    map_domains
      (collect_from ~strategy ~max_events ~max_executions
         ~raise_on_limit:false)
      (split_round_robin num_domains tasks)
  in
  let outcomes, stats =
    List.fold_left
      (fun (os, acc) (o, (s : stats)) ->
        ( List.rev_append o os,
          {
            executions = acc.executions + s.executions;
            states = acc.states + s.states;
            truncated = acc.truncated || s.truncated;
          } ))
      ( !frontier_leaves,
        {
          executions = List.length !frontier_leaves;
          states = frontier_states;
          truncated = frontier_truncated;
        } )
      results
  in
  (List.sort_uniq Outcome.compare outcomes, stats)

(* --- DRF0 quantification -------------------------------------------------- *)

(* Search-effort counters shared by the two checker implementations so the
   benches can compare them like-for-like. *)
type counter = { mutable c_states : int; mutable c_executions : int }

let counter_stats c =
  { executions = c.c_executions; states = c.c_states; truncated = false }

(* Closure-based checking (the oracle): walk the same DFS and run the full
   Warshall-closure race scan on every complete execution. *)
let check_root_closure ~strategy ?model ~max_events ~max_executions counter
    (root, root_sleep) =
  let produced = ref 0 in
  let exception Racy of Wo_core.Drf0.report in
  let rec go state sleep =
    counter.c_states <- counter.c_states + 1;
    let state = drain_silent state in
    if Interp.events_so_far state > max_events then raise Limit_exceeded;
    match children_of ~strategy state sleep with
    | None ->
      incr produced;
      counter.c_executions <- counter.c_executions + 1;
      if !produced > max_executions then raise Limit_exceeded;
      let r = Wo_core.Drf0.check ?model (Interp.execution state) in
      if r.Wo_core.Drf0.races <> [] then raise (Racy r)
    | Some kids -> List.iter (fun (state', _ev, sleep') -> go state' sleep') kids
  in
  try
    go root root_sleep;
    Ok ()
  with Racy r -> Error r

(* Complete a (racy) prefix into a full execution for the report.  The
   round-robin rotation dodges the trivial livelock a fixed-processor
   completion would hit on spin loops; the step budget is a backstop — a
   truncated completion still contains the racy prefix, which is all the
   report needs. *)
let complete_for_report ~max_events state =
  let rec go state rot budget =
    if budget = 0 then state
    else
      match Interp.runnable state with
      | [] -> state
      | procs ->
        let p = List.nth procs (rot mod List.length procs) in
        go (fst (Interp.step state p)) (rot + 1) (budget - 1)
  in
  go state 0 ((4 * max_events) + 64)

(* Path-incremental checking: thread a vector-clock checker through the
   DFS, pushing each edge's event and popping on backtrack.  The first
   racing event condemns every completion of its prefix (happens-before
   between two events depends only on the prefix up to the later one), so
   the subtree is pruned on the spot and the per-leaf closure disappears.
   The racy prefix is completed round-robin and re-checked with the
   closure oracle so callers get the same report shape either way. *)
let check_root_inc ~nprocs ~mode ~strategy ?model ~max_events ~max_executions
    counter (root, root_sleep) =
  let inc = Wo_core.Drf0_inc.create ~mode ~nprocs () in
  let exception Racy of Wo_core.Drf0.report in
  let racy state =
    let completed = complete_for_report ~max_events state in
    raise (Racy (Wo_core.Drf0.check ?model (Interp.execution completed)))
  in
  let produced = ref 0 in
  let rec go state sleep =
    counter.c_states <- counter.c_states + 1;
    let state = drain_silent state in
    if Interp.events_so_far state > max_events then raise Limit_exceeded;
    match children_of ~strategy state sleep with
    | None ->
      incr produced;
      counter.c_executions <- counter.c_executions + 1;
      if !produced > max_executions then raise Limit_exceeded
    | Some kids ->
      List.iter
        (fun (state', ev, sleep') ->
          match ev with
          | None -> go state' sleep'
          | Some e -> (
            match Wo_core.Drf0_inc.push inc e with
            | Some _race -> racy state'
            | None ->
              go state' sleep';
              Wo_core.Drf0_inc.pop inc))
        kids
  in
  try
    (* Roots handed over by the parallel frontier are mid-tree states:
       replay their prefix so the clocks agree with the path, catching
       races that already occurred inside the frontier region. *)
    List.iter
      (fun e ->
        match Wo_core.Drf0_inc.push inc e with
        | None -> ()
        | Some _ -> racy root)
      (Wo_core.Execution.events (Interp.execution root));
    go root root_sleep;
    Ok ()
  with Racy r -> Error r

(* The incremental fast path covers the two built-in models; any other
   synchronization model falls back to the closure-based oracle. *)
let incremental_mode model =
  match model with
  | None -> Some Wo_core.Drf0_inc.Mode_drf0
  | Some m -> Wo_core.Drf0_inc.mode_of_model m

let check_root ~nprocs ~strategy ?model ~max_events ~max_executions counter
    root =
  match incremental_mode model with
  | Some mode ->
    check_root_inc ~nprocs ~mode ~strategy ?model ~max_events ~max_executions
      counter root
  | None ->
    check_root_closure ~strategy ?model ~max_events ~max_executions counter
      root

let check_drf0_with_stats ?(strategy = Por) ?model ?(max_events = 64)
    ?(max_executions = 1_000_000) program =
  let counter = { c_states = 0; c_executions = 0 } in
  let result =
    check_root ~nprocs:(Program.num_procs program) ~strategy ?model
      ~max_events ~max_executions counter
      (Interp.init program, [])
  in
  (result, counter_stats counter)

let check_drf0 ?strategy ?model ?max_events ?max_executions program =
  fst (check_drf0_with_stats ?strategy ?model ?max_events ?max_executions program)

let check_drf0_closure_with_stats ?(strategy = Por) ?model ?(max_events = 64)
    ?(max_executions = 1_000_000) program =
  let counter = { c_states = 0; c_executions = 0 } in
  let result =
    check_root_closure ~strategy ?model ~max_events ~max_executions counter
      (Interp.init program, [])
  in
  (result, counter_stats counter)

let check_drf0_closure ?strategy ?model ?max_events ?max_executions program =
  fst
    (check_drf0_closure_with_stats ?strategy ?model ?max_events
       ?max_executions program)

let check_drf0_par ?(strategy = Por) ?model ?(max_events = 64)
    ?(max_executions = 1_000_000) ?domains program =
  let num_domains =
    match domains with Some d -> max 1 d | None -> default_domains ()
  in
  (* Executions completing within the frontier itself are checked here, so
     no complete execution escapes the quantifier. *)
  let frontier_violation = ref None in
  let tasks, _, _ =
    expand_frontier ~strategy ~max_events ~target:(4 * num_domains)
      ~on_leaf:(fun state ->
        if !frontier_violation = None then
          match
            Wo_core.Drf0.program_obeys ?model
              (Seq.return (Interp.execution state))
          with
          | Ok () -> ()
          | Error r -> frontier_violation := Some r)
      program
  in
  match !frontier_violation with
  | Some r -> Error r
  | None ->
    (* Workers keep their subtasks' global indices so the reported
       violation is deterministic for a given domain count: the racy
       subtree with the smallest frontier index wins. *)
    let indexed = List.mapi (fun i t -> (i, t)) tasks in
    let nprocs = Program.num_procs program in
    let check_one root =
      (* Per-root counter: [max_executions] is enforced per subtree, matching
         the per-domain semantics of [outcomes_par]. *)
      let counter = { c_states = 0; c_executions = 0 } in
      check_root ~nprocs ~strategy ?model ~max_events ~max_executions counter
        root
    in
    let worker roots =
      List.find_map
        (fun (i, root) ->
          match check_one root with Ok () -> None | Error r -> Some (i, r))
        roots
    in
    let results = map_domains worker (split_round_robin num_domains indexed) in
    let first =
      List.fold_left
        (fun best r ->
          match (best, r) with
          | None, r -> r
          | (Some _ as b), None -> b
          | (Some (i, _) as b), (Some (j, _) as r) -> if j < i then r else b)
        None results
    in
    (match first with Some (_, r) -> Error r | None -> Ok ())
