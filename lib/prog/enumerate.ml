exception Limit_exceeded

type strategy = Naive | Por

type stats = { executions : int; states : int; truncated : bool }

(* Advance every processor that can finish without another memory access;
   such steps commute with everything, so they are not branch points and
   skipping them avoids enumerating duplicate executions. *)
let rec drain_silent state =
  let silent =
    List.find_map
      (fun p ->
        let state', ev = Interp.step state p in
        match ev with None -> Some state' | Some _ -> None)
      (Interp.runnable state)
  in
  match silent with None -> state | Some state' -> drain_silent state'

(* Two pending steps of different processors commute unless they conflict:
   same location with a write component, or either is a synchronization
   operation (synchronization order is observable through happens-before,
   so sync steps are conservatively dependent on everything). *)
let dependent (a : Interp.access) (b : Interp.access) =
  a.Interp.sync || b.Interp.sync
  || (a.Interp.loc = b.Interp.loc && (a.Interp.writes || b.Interp.writes))

(* Children of a drained, non-final node, with the event taken on the edge
   (consumed by the incremental DRF0 checker) and the sleep set each child
   inherits.  A sleep set is an int bitset (bit [p] = processor [p] asleep):
   membership, filtering and intersection are single machine-word operations
   instead of the linear [List.mem]/[List.assoc] scans run once per child,
   and bitsets compare and intersect in O(1) inside the stateful visited
   table.  Sleeping processors' pending steps are already covered by a
   sibling subtree elsewhere in the search; exploring them here would only
   revisit Mazurkiewicz-equivalent interleavings.

   Sleep-set discipline (Godefroid): iterate awake processors in ascending
   order; the child for processor [p] sleeps on every processor of
   [sleep ∪ done-before-p] whose pending step is independent of [p]'s step.
   Pending accesses are stable under other processors' steps (locations are
   static), so sleep entries stay valid until the sleeper itself runs —
   which, while it sleeps, it never does. *)
let children_of ~strategy state sleep =
  let procs = Interp.runnable state in
  match procs with
  | [] -> None (* complete execution *)
  | _ ->
    Some
      (match strategy with
      | Naive ->
        List.map
          (fun p ->
            let state', ev = Interp.step state p in
            (state', ev, 0))
          procs
      | Por ->
        (* After [drain_silent] every runnable processor has a pending
           memory operation, so [peek] cannot return [None]. *)
        let pending =
          List.map (fun p -> (p, Option.get (Interp.peek state p))) procs
        in
        let runnable_mask =
          List.fold_left (fun m (p, _) -> m lor (1 lsl p)) 0 pending
        in
        let sleep = sleep land runnable_mask in
        let rec expand sleep_now acc = function
          | [] -> List.rev acc
          | (p, ap) :: rest ->
            if sleep land (1 lsl p) <> 0 then expand sleep_now acc rest
            else
              let child_sleep =
                List.fold_left
                  (fun m (q, aq) ->
                    if sleep_now land (1 lsl q) <> 0 && not (dependent ap aq)
                    then m lor (1 lsl q)
                    else m)
                  0 pending
              in
              let state', ev = Interp.step state p in
              expand
                (sleep_now lor (1 lsl p))
                ((state', ev, child_sleep) :: acc)
                rest
        in
        expand sleep [] pending)

(* Lazy depth-first enumeration of complete executions from an explicit
   root; shared by the naive oracle, the reduced enumerator, and the
   per-domain workers of the parallel DRF0 checker. *)
let execution_seq ~strategy ~max_events ~max_executions (root, root_sleep) =
  let produced = ref 0 in
  let rec leaves state sleep : Wo_core.Execution.t Seq.t =
   fun () ->
    let state = drain_silent state in
    if Interp.events_so_far state > max_events then raise Limit_exceeded;
    match children_of ~strategy state sleep with
    | None ->
      incr produced;
      if !produced > max_executions then raise Limit_exceeded;
      Seq.Cons (Interp.execution state, Seq.empty)
    | Some kids ->
      Seq.concat_map
        (fun (state', _ev, sleep') -> leaves state' sleep')
        (List.to_seq kids)
        ()
  in
  leaves root root_sleep

(* Sleep sets (and the visited table's claim entries) are machine-word
   bitsets; more processors than bits is far beyond anything enumerable
   anyway, but fail loudly rather than alias bits. *)
let bitset_guard program =
  if Program.num_procs program > Sys.int_size - 2 then
    invalid_arg "Enumerate: more processors than sleep-set bitset bits"

let executions ?(max_events = 64) ?(max_executions = 1_000_000) program =
  bitset_guard program;
  execution_seq ~strategy:Naive ~max_events ~max_executions
    (Interp.init program, 0)

let executions_por ?(max_events = 64) ?(max_executions = 1_000_000) program =
  bitset_guard program;
  execution_seq ~strategy:Por ~max_events ~max_executions
    (Interp.init program, 0)

module Outcome_set = Set.Make (Outcome)

(* Eager worker for outcome collection; [raise_on_limit] decides whether
   bounds raise or merely truncate.  Starts from an explicit list of
   (state, sleep) roots so the parallel fan-out can reuse it per domain.
   Outcomes are deduplicated incrementally, keeping memory proportional to
   the number of distinct outcomes rather than enumerated executions. *)
let collect_from ~strategy ~max_events ~max_executions ~raise_on_limit roots =
  let produced = ref 0 in
  let states = ref 0 in
  let outcomes = ref Outcome_set.empty in
  let truncated = ref false in
  let exception Stop in
  let limit () =
    if raise_on_limit then raise Limit_exceeded
    else begin
      truncated := true;
      raise Stop
    end
  in
  let rec go state sleep =
    incr states;
    let state = drain_silent state in
    if Interp.events_so_far state > max_events then limit ();
    match children_of ~strategy state sleep with
    | None ->
      incr produced;
      outcomes := Outcome_set.add (Interp.outcome state) !outcomes;
      if !produced >= max_executions then limit ()
    | Some kids -> List.iter (fun (state', _ev, sleep') -> go state' sleep') kids
  in
  (try List.iter (fun (state, sleep) -> go state sleep) roots with Stop -> ());
  ( Outcome_set.elements !outcomes,
    { executions = !produced; states = !states; truncated = !truncated } )

let collect_outcomes ~strategy ~max_events ~max_executions ~raise_on_limit
    program =
  bitset_guard program;
  collect_from ~strategy ~max_events ~max_executions ~raise_on_limit
    [ (Interp.init program, 0) ]

let outcomes ?(strategy = Por) ?(max_events = 64)
    ?(max_executions = 1_000_000) program =
  fst
    (collect_outcomes ~strategy ~max_events ~max_executions
       ~raise_on_limit:true program)

let outcomes_with_stats ?(strategy = Por) ?(max_events = 64)
    ?(max_executions = 1_000_000) program =
  collect_outcomes ~strategy ~max_events ~max_executions ~raise_on_limit:false
    program

(* --- multicore fan-out ---------------------------------------------------- *)

(* Expand the search tree breadth-first until there are enough subtree roots
   to keep the workers busy.  Expansion follows exactly the same
   (strategy-dependent) child generation as the sequential search, so the
   produced subtrees jointly cover the same executions.  Complete executions
   reached during expansion are handed to [on_leaf] immediately. *)
let expand_frontier ~strategy ~max_events ~target ~on_leaf program =
  let states = ref 0 in
  let truncated = ref false in
  let rec rounds tasks =
    if List.length tasks >= target then tasks
    else begin
      let expanded = ref false in
      let next =
        List.concat_map
          (fun (state, sleep) ->
            incr states;
            let state = drain_silent state in
            if Interp.events_so_far state > max_events then begin
              truncated := true;
              []
            end
            else
              match children_of ~strategy state sleep with
              | None ->
                on_leaf state;
                []
              | Some kids ->
                expanded := true;
                List.map (fun (state', _ev, sleep') -> (state', sleep')) kids)
          tasks
      in
      if !expanded then rounds next else next
    end
  in
  let tasks = rounds [ (Interp.init program, 0) ] in
  (tasks, !states, !truncated)

let default_domains () = max 1 (Domain.recommended_domain_count () - 1)

let split_round_robin n tasks =
  let buckets = Array.make n [] in
  List.iteri (fun i t -> buckets.(i mod n) <- t :: buckets.(i mod n)) tasks;
  Array.to_list (Array.map List.rev buckets)

(* Run one worker per bucket on its own domain.  With a single bucket the
   work stays on the current domain — spawning would only add overhead. *)
let map_domains worker buckets =
  match buckets with
  | [ only ] -> [ worker only ]
  | _ ->
    List.map Domain.join
      (List.map (fun b -> Domain.spawn (fun () -> worker b)) buckets)

let outcomes_par ?(strategy = Por) ?(max_events = 64)
    ?(max_executions = 1_000_000) ?domains program =
  bitset_guard program;
  let num_domains =
    match domains with Some d -> max 1 d | None -> default_domains ()
  in
  let frontier_leaves = ref [] in
  let tasks, frontier_states, frontier_truncated =
    expand_frontier ~strategy ~max_events ~target:(4 * num_domains)
      ~on_leaf:(fun state ->
        frontier_leaves := Interp.outcome state :: !frontier_leaves)
      program
  in
  let results =
    map_domains
      (collect_from ~strategy ~max_events ~max_executions
         ~raise_on_limit:false)
      (split_round_robin num_domains tasks)
  in
  let outcomes, stats =
    List.fold_left
      (fun (os, acc) (o, (s : stats)) ->
        ( List.rev_append o os,
          {
            executions = acc.executions + s.executions;
            states = acc.states + s.states;
            truncated = acc.truncated || s.truncated;
          } ))
      ( !frontier_leaves,
        {
          executions = List.length !frontier_leaves;
          states = frontier_states;
          truncated = frontier_truncated;
        } )
      results
  in
  (List.sort_uniq Outcome.compare outcomes, stats)

(* --- DRF0 quantification -------------------------------------------------- *)

(* Search-effort counters shared by the two checker implementations so the
   benches can compare them like-for-like. *)
type counter = { mutable c_states : int; mutable c_executions : int }

let counter_stats c =
  { executions = c.c_executions; states = c.c_states; truncated = false }

(* Closure-based checking (the oracle): walk the same DFS and run the full
   Warshall-closure race scan on every complete execution. *)
let check_root_closure ~strategy ?model ~max_events ~max_executions counter
    (root, root_sleep) =
  let produced = ref 0 in
  let exception Racy of Wo_core.Drf0.report in
  let rec go state sleep =
    counter.c_states <- counter.c_states + 1;
    let state = drain_silent state in
    if Interp.events_so_far state > max_events then raise Limit_exceeded;
    match children_of ~strategy state sleep with
    | None ->
      incr produced;
      counter.c_executions <- counter.c_executions + 1;
      if !produced > max_executions then raise Limit_exceeded;
      let r = Wo_core.Drf0.check ?model (Interp.execution state) in
      if r.Wo_core.Drf0.races <> [] then raise (Racy r)
    | Some kids -> List.iter (fun (state', _ev, sleep') -> go state' sleep') kids
  in
  try
    go root root_sleep;
    Ok ()
  with Racy r -> Error r

(* Complete a (racy) prefix into a full execution for the report.  The
   round-robin rotation dodges the trivial livelock a fixed-processor
   completion would hit on spin loops; the step budget is a backstop — a
   truncated completion still contains the racy prefix, which is all the
   report needs. *)
let complete_for_report ~max_events state =
  let rec go state rot budget =
    if budget = 0 then state
    else
      match Interp.runnable state with
      | [] -> state
      | procs ->
        let p = List.nth procs (rot mod List.length procs) in
        go (fst (Interp.step state p)) (rot + 1) (budget - 1)
  in
  go state 0 ((4 * max_events) + 64)

(* Path-incremental checking: thread a vector-clock checker through the
   DFS, pushing each edge's event and popping on backtrack.  The first
   racing event condemns every completion of its prefix (happens-before
   between two events depends only on the prefix up to the later one), so
   the subtree is pruned on the spot and the per-leaf closure disappears.
   The racy prefix is completed round-robin and re-checked with the
   closure oracle so callers get the same report shape either way. *)
let check_root_inc ~nprocs ~mode ~strategy ?model ~max_events ~max_executions
    counter (root, root_sleep) =
  let inc = Wo_core.Drf0_inc.create ~mode ~nprocs () in
  let exception Racy of Wo_core.Drf0.report in
  let racy state =
    let completed = complete_for_report ~max_events state in
    raise (Racy (Wo_core.Drf0.check ?model (Interp.execution completed)))
  in
  let produced = ref 0 in
  let rec go state sleep =
    counter.c_states <- counter.c_states + 1;
    let state = drain_silent state in
    if Interp.events_so_far state > max_events then raise Limit_exceeded;
    match children_of ~strategy state sleep with
    | None ->
      incr produced;
      counter.c_executions <- counter.c_executions + 1;
      if !produced > max_executions then raise Limit_exceeded
    | Some kids ->
      List.iter
        (fun (state', ev, sleep') ->
          match ev with
          | None -> go state' sleep'
          | Some e -> (
            match Wo_core.Drf0_inc.push inc e with
            | Some _race -> racy state'
            | None ->
              go state' sleep';
              Wo_core.Drf0_inc.pop inc))
        kids
  in
  try
    (* Roots handed over by the parallel frontier are mid-tree states:
       replay their prefix so the clocks agree with the path, catching
       races that already occurred inside the frontier region. *)
    List.iter
      (fun e ->
        match Wo_core.Drf0_inc.push inc e with
        | None -> ()
        | Some _ -> racy root)
      (Wo_core.Execution.events (Interp.execution root));
    go root root_sleep;
    Ok ()
  with Racy r -> Error r

(* The incremental fast path covers the two built-in models; any other
   synchronization model falls back to the closure-based oracle. *)
let incremental_mode model =
  match model with
  | None -> Some Wo_core.Drf0_inc.Mode_drf0
  | Some m -> Wo_core.Drf0_inc.mode_of_model m

let check_root ~nprocs ~strategy ?model ~max_events ~max_executions counter
    root =
  match incremental_mode model with
  | Some mode ->
    check_root_inc ~nprocs ~mode ~strategy ?model ~max_events ~max_executions
      counter root
  | None ->
    check_root_closure ~strategy ?model ~max_events ~max_executions counter
      root

let check_drf0_with_stats ?(strategy = Por) ?model ?(max_events = 64)
    ?(max_executions = 1_000_000) program =
  bitset_guard program;
  let counter = { c_states = 0; c_executions = 0 } in
  let result =
    check_root ~nprocs:(Program.num_procs program) ~strategy ?model
      ~max_events ~max_executions counter
      (Interp.init program, 0)
  in
  (result, counter_stats counter)

let check_drf0 ?strategy ?model ?max_events ?max_executions program =
  fst (check_drf0_with_stats ?strategy ?model ?max_events ?max_executions program)

let check_drf0_closure_with_stats ?(strategy = Por) ?model ?(max_events = 64)
    ?(max_executions = 1_000_000) program =
  bitset_guard program;
  let counter = { c_states = 0; c_executions = 0 } in
  let result =
    check_root_closure ~strategy ?model ~max_events ~max_executions counter
      (Interp.init program, 0)
  in
  (result, counter_stats counter)

let check_drf0_closure ?strategy ?model ?max_events ?max_executions program =
  fst
    (check_drf0_closure_with_stats ?strategy ?model ?max_events
       ?max_executions program)

let check_drf0_par ?(strategy = Por) ?model ?(max_events = 64)
    ?(max_executions = 1_000_000) ?domains program =
  bitset_guard program;
  let num_domains =
    match domains with Some d -> max 1 d | None -> default_domains ()
  in
  (* Executions completing within the frontier itself are checked here, so
     no complete execution escapes the quantifier. *)
  let frontier_violation = ref None in
  let tasks, _, _ =
    expand_frontier ~strategy ~max_events ~target:(4 * num_domains)
      ~on_leaf:(fun state ->
        if !frontier_violation = None then
          match
            Wo_core.Drf0.program_obeys ?model
              (Seq.return (Interp.execution state))
          with
          | Ok () -> ()
          | Error r -> frontier_violation := Some r)
      program
  in
  match !frontier_violation with
  | Some r -> Error r
  | None ->
    (* Workers keep their subtasks' global indices so the reported
       violation is deterministic for a given domain count: the racy
       subtree with the smallest frontier index wins. *)
    let indexed = List.mapi (fun i t -> (i, t)) tasks in
    let nprocs = Program.num_procs program in
    let check_one root =
      (* Per-root counter: [max_executions] is enforced per subtree, matching
         the per-domain semantics of [outcomes_par]. *)
      let counter = { c_states = 0; c_executions = 0 } in
      check_root ~nprocs ~strategy ?model ~max_events ~max_executions counter
        root
    in
    let worker roots =
      List.find_map
        (fun (i, root) ->
          match check_one root with Ok () -> None | Error r -> Some (i, r))
        roots
    in
    let results = map_domains worker (split_round_robin num_domains indexed) in
    let first =
      List.fold_left
        (fun best r ->
          match (best, r) with
          | None, r -> r
          | (Some _ as b), None -> b
          | (Some (i, _) as b), (Some (j, _) as r) -> if j < i then r else b)
        None results
    in
    (match first with Some (_, r) -> Error r | None -> Ok ())

(* --- stateful (DAG) exploration -------------------------------------------- *)

(* The tree enumerators above forget where they have been: a state reached
   by two commutation-inequivalent paths is expanded twice, once per path.
   The stateful enumerators key a visited table ({!Visited}) on canonical
   encodings ({!State_key}) of the interpreter state, turning the search
   tree into a DAG — convergent schedules (and, for the DRF0 quantifier,
   whole symmetry orbits) are expanded once.  Soundness of caching under
   sleep sets follows Godefroid's discipline: a revisit is pruned only when
   the cached claim's sleep set is a subset of ours (the cached exploration
   ran with at most as much pruning); otherwise the entry is widened to the
   intersection and re-explored. *)

type stateful_stats = {
  sf_states : int;
  sf_distinct : int;
  sf_hits : int;
  sf_executions : int;
  sf_steals : int;
  sf_per_domain : int array;
}

let emit_stateful_obs ~name (s : stateful_stats) =
  let r = Wo_obs.Recorder.active () in
  if Wo_obs.Recorder.enabled r then begin
    let c track n v =
      Wo_obs.Recorder.counter r ~cat:Wo_obs.Recorder.Enum ~track ~name:n ~ts:0
        ~value:v
    in
    c 0 (name ^ ".states") s.sf_states;
    c 0 (name ^ ".visited_distinct") s.sf_distinct;
    c 0 (name ^ ".visited_hits") s.sf_hits;
    c 0 (name ^ ".steals") s.sf_steals;
    Array.iteri (fun i v -> c i (name ^ ".domain_expanded") v) s.sf_per_domain
  end

(* Two execution engines share every stateful walk: the AST interpreter
   (the oracle) and the compiled interpreter (the default — int-coded
   ops, packed keys).  [Compiled] silently falls back to the AST path
   when the program exceeds a compilation bound
   ({!Prog_compile.compilable}), so the observable behaviour never
   depends on the engine. *)
type engine = Compiled | Ast

(* Compiled mirrors of [drain_silent]/[children_of].  [Cinterp.peek]
   returns the same {!Interp.access} record, so the independence test
   ([dependent]) is shared verbatim. *)
let rec c_drain_silent state =
  let silent =
    List.find_map
      (fun p ->
        let state', ev = Cinterp.step state p in
        match ev with None -> Some state' | Some _ -> None)
      (Cinterp.runnable state)
  in
  match silent with None -> state | Some state' -> c_drain_silent state'

let c_children_of ~strategy state sleep =
  let procs = Cinterp.runnable state in
  match procs with
  | [] -> None
  | _ ->
    Some
      (match strategy with
      | Naive ->
        List.map
          (fun p ->
            let state', ev = Cinterp.step state p in
            (state', ev, 0))
          procs
      | Por ->
        let pending =
          List.map (fun p -> (p, Option.get (Cinterp.peek state p))) procs
        in
        let runnable_mask =
          List.fold_left (fun m (p, _) -> m lor (1 lsl p)) 0 pending
        in
        let sleep = sleep land runnable_mask in
        let rec expand sleep_now acc = function
          | [] -> List.rev acc
          | (p, ap) :: rest ->
            if sleep land (1 lsl p) <> 0 then expand sleep_now acc rest
            else
              let child_sleep =
                List.fold_left
                  (fun m (q, aq) ->
                    if sleep_now land (1 lsl q) <> 0 && not (dependent ap aq)
                    then m lor (1 lsl q)
                    else m)
                  0 pending
              in
              let state', ev = Cinterp.step state p in
              expand
                (sleep_now lor (1 lsl p))
                ((state', ev, child_sleep) :: acc)
                rest
        in
        expand sleep [] pending)

(* Trace counters for the compiled path: throughput plus the off-heap
   table's footprint and probe-length histogram (one counter per log2
   bucket, bucket index as the track).  Behind the recorder's enabled
   test, like every other emission. *)
let emit_compiled_obs ~elapsed ~tbl (s : stateful_stats) =
  let r = Wo_obs.Recorder.active () in
  if Wo_obs.Recorder.enabled r then begin
    let c track n v =
      Wo_obs.Recorder.counter r ~cat:Wo_obs.Recorder.Enum ~track ~name:n ~ts:0
        ~value:v
    in
    c 0 "compiled.states_per_sec"
      (if elapsed > 0. then
         int_of_float (float_of_int s.sf_states /. elapsed)
       else 0);
    c 0 "visited.arena_bytes" (Visited.arena_bytes tbl);
    Array.iteri (fun i v -> c i "visited.probe_len" v) (Visited.probe_hist tbl)
  end

let ast_outcomes_stateful ~strategy ~max_events ~max_executions ~num_domains
    program =
  let tbl = Visited.create () in
  let leaves = Atomic.make 0 in
  (* Per-worker slots are written only by their owner and read after the
     scheduler joins every domain, so plain arrays are race-free. *)
  let per_domain = Array.make num_domains 0 in
  let outs = Array.make num_domains Outcome_set.empty in
  let wstats =
    Wsq.run ~domains:num_domains
      ~roots:[ (Interp.init program, 0) ]
      (fun ~worker ~push ~hungry ~halt:_ (state0, sleep0) ->
        let rec go state sleep =
          let state = drain_silent state in
          if Interp.events_so_far state > max_events then raise Limit_exceeded;
          (* Outcomes name concrete processors and locations, so the key is
             the exact snapshot — no symmetry quotient.  A skipped state's
             subtree (restricted by a sleep subset of ours) has already fed
             every outcome it can reach into some worker's accumulator. *)
          match
            Visited.try_claim tbl (State_key.exact (Interp.view state)) sleep
          with
          | `Skip -> ()
          | `Explore sleep -> (
            per_domain.(worker) <- per_domain.(worker) + 1;
            match children_of ~strategy state sleep with
            | None ->
              if Atomic.fetch_and_add leaves 1 >= max_executions then
                raise Limit_exceeded;
              outs.(worker) <- Outcome_set.add (Interp.outcome state) outs.(worker)
            | Some kids -> (
              let tasks = List.map (fun (s, _ev, sl) -> (s, sl)) kids in
              match tasks with
              | (s1, sl1) :: (_ :: _ as rest) when hungry () ->
                (* expose siblings for stealing, recurse into the first *)
                List.iter push rest;
                go s1 sl1
              | tasks -> List.iter (fun (s, sl) -> go s sl) tasks))
        in
        go state0 sleep0)
  in
  let outcomes =
    Array.fold_left Outcome_set.union Outcome_set.empty outs
  in
  let stats =
    {
      sf_states = Array.fold_left ( + ) 0 per_domain;
      sf_distinct = Visited.size tbl;
      sf_hits = Visited.hits tbl;
      sf_executions = Atomic.get leaves;
      sf_steals = wstats.Wsq.steals;
      sf_per_domain = per_domain;
    }
  in
  emit_stateful_obs ~name:"stateful.outcomes" stats;
  (Outcome_set.elements outcomes, stats)

(* The compiled twin: same scheduler, same claim discipline, but
   Cinterp states and packed exact keys.  Outcome sets are identical to
   the AST path's (each engine's dedup is sound for its own state
   space, and the two state spaces generate the same executions). *)
let c_outcomes_stateful ~strategy ~max_events ~max_executions ~num_domains cp =
  let t0 = Unix.gettimeofday () in
  let tbl = Visited.create () in
  let leaves = Atomic.make 0 in
  let per_domain = Array.make num_domains 0 in
  let outs = Array.make num_domains Outcome_set.empty in
  let wstats =
    Wsq.run ~domains:num_domains
      ~roots:[ (Cinterp.init cp, 0) ]
      (fun ~worker ~push ~hungry ~halt:_ (state0, sleep0) ->
        let rec go state sleep =
          let state = c_drain_silent state in
          if Cinterp.events_so_far state > max_events then
            raise Limit_exceeded;
          match Visited.try_claim tbl (Cinterp.exact_key state) sleep with
          | `Skip -> ()
          | `Explore sleep -> (
            per_domain.(worker) <- per_domain.(worker) + 1;
            match c_children_of ~strategy state sleep with
            | None ->
              if Atomic.fetch_and_add leaves 1 >= max_executions then
                raise Limit_exceeded;
              outs.(worker) <-
                Outcome_set.add (Cinterp.outcome state) outs.(worker)
            | Some kids -> (
              let tasks = List.map (fun (s, _ev, sl) -> (s, sl)) kids in
              match tasks with
              | (s1, sl1) :: (_ :: _ as rest) when hungry () ->
                List.iter push rest;
                go s1 sl1
              | tasks -> List.iter (fun (s, sl) -> go s sl) tasks))
        in
        go state0 sleep0)
  in
  let outcomes = Array.fold_left Outcome_set.union Outcome_set.empty outs in
  let stats =
    {
      sf_states = Array.fold_left ( + ) 0 per_domain;
      sf_distinct = Visited.size tbl;
      sf_hits = Visited.hits tbl;
      sf_executions = Atomic.get leaves;
      sf_steals = wstats.Wsq.steals;
      sf_per_domain = per_domain;
    }
  in
  emit_stateful_obs ~name:"stateful.outcomes" stats;
  emit_compiled_obs ~elapsed:(Unix.gettimeofday () -. t0) ~tbl stats;
  (Outcome_set.elements outcomes, stats)

let outcomes_stateful ?(engine = Compiled) ?(strategy = Por) ?(max_events = 64)
    ?(max_executions = 1_000_000) ?domains program =
  bitset_guard program;
  let num_domains =
    match domains with Some d -> max 1 d | None -> default_domains ()
  in
  match
    match engine with Compiled -> Prog_compile.compile program | Ast -> None
  with
  | Some cp ->
    c_outcomes_stateful ~strategy ~max_events ~max_executions ~num_domains cp
  | None ->
    ast_outcomes_stateful ~strategy ~max_events ~max_executions ~num_domains
      program

(* Internal signal: a race was found; carries the closure-checked report of
   the completed racy execution. *)
exception Racy_state of Wo_core.Drf0.report

let stateful_racy ?model ~max_events state =
  let completed = complete_for_report ~max_events state in
  raise (Racy_state (Wo_core.Drf0.check ?model (Interp.execution completed)))

(* One DAG walk from [root]; [inc] must agree with the path to [root].
   [offload] may hand sibling subtrees to the scheduler (returning true)
   instead of having them explored inline. *)
let drf0_dag_walk ~strategy ~symmetry ?model ~max_events ~max_executions ~tbl
    ~leaves ~on_node ~offload inc root root_sleep =
  let rec go state sleep =
    let state = drain_silent state in
    if Interp.events_so_far state > max_events then raise Limit_exceeded;
    (* The DRF0 verdict is isomorphism-invariant, so the key quotients by
       processor symmetry and location renaming; the arrangement [order]
       transports the sleep bitset into canonical coordinates and back. *)
    let key, order =
      State_key.canonical ~symmetry (Interp.view state)
        (Wo_core.Drf0_inc.summary inc)
    in
    match Visited.try_claim tbl key (State_key.map_sleep ~order sleep) with
    | `Skip -> ()
    | `Explore canon_sleep -> (
      on_node ();
      let sleep = State_key.unmap_sleep ~order canon_sleep in
      match children_of ~strategy state sleep with
      | None ->
        if Atomic.fetch_and_add leaves 1 >= max_executions then
          raise Limit_exceeded
      | Some kids -> (
        let explore (state', ev, sleep') =
          match ev with
          | None -> go state' sleep'
          | Some e -> (
            match Wo_core.Drf0_inc.push inc e with
            | Some _race -> stateful_racy ?model ~max_events state'
            | None ->
              go state' sleep';
              Wo_core.Drf0_inc.pop inc)
        in
        match kids with
        | first :: (_ :: _ as rest) when offload rest -> explore first
        | kids -> List.iter explore kids))
  in
  go root root_sleep

(* A task handed to the scheduler carries only the interpreter state; the
   incremental checker is rebuilt by replaying the path's events (the same
   move [check_root_inc] makes for frontier roots).  The replay cannot race
   for tasks spawned by a walk — every edge was checked before its subtree
   was offloaded — but a defensive check costs nothing. *)
let replay_task ?model ~mode ~nprocs ~max_events state =
  let inc = Wo_core.Drf0_inc.create ~mode ~nprocs () in
  List.iter
    (fun e ->
      match Wo_core.Drf0_inc.push inc e with
      | None -> ()
      | Some _race -> stateful_racy ?model ~max_events state)
    (Wo_core.Execution.events (Interp.execution state));
  inc

(* Compiled twins of the DRF0 walk machinery.  Identical discipline;
   only the interpreter and the canonical key construction differ, and
   the sleep transport reuses State_key's arrangement maps. *)
let c_complete_for_report ~max_events state =
  let rec go state rot budget =
    if budget = 0 then state
    else
      match Cinterp.runnable state with
      | [] -> state
      | procs ->
        let p = List.nth procs (rot mod List.length procs) in
        go (fst (Cinterp.step state p)) (rot + 1) (budget - 1)
  in
  go state 0 ((4 * max_events) + 64)

let c_stateful_racy ?model ~max_events state =
  let completed = c_complete_for_report ~max_events state in
  raise (Racy_state (Wo_core.Drf0.check ?model (Cinterp.execution completed)))

let c_drf0_dag_walk ~strategy ~symmetry ?model ~max_events ~max_executions
    ~tbl ~leaves ~on_node ~offload inc root root_sleep =
  let rec go state sleep =
    let state = c_drain_silent state in
    if Cinterp.events_so_far state > max_events then raise Limit_exceeded;
    let key, order =
      Cinterp.canonical_key ~symmetry state (Wo_core.Drf0_inc.summary inc)
    in
    match Visited.try_claim tbl key (State_key.map_sleep ~order sleep) with
    | `Skip -> ()
    | `Explore canon_sleep -> (
      on_node ();
      let sleep = State_key.unmap_sleep ~order canon_sleep in
      match c_children_of ~strategy state sleep with
      | None ->
        if Atomic.fetch_and_add leaves 1 >= max_executions then
          raise Limit_exceeded
      | Some kids -> (
        let explore (state', ev, sleep') =
          match ev with
          | None -> go state' sleep'
          | Some e -> (
            match Wo_core.Drf0_inc.push inc e with
            | Some _race -> c_stateful_racy ?model ~max_events state'
            | None ->
              go state' sleep';
              Wo_core.Drf0_inc.pop inc)
        in
        match kids with
        | first :: (_ :: _ as rest) when offload rest -> explore first
        | kids -> List.iter explore kids))
  in
  go root root_sleep

let c_replay_task ?model ~mode ~nprocs ~max_events state =
  let inc = Wo_core.Drf0_inc.create ~mode ~nprocs () in
  List.iter
    (fun e ->
      match Wo_core.Drf0_inc.push inc e with
      | None -> ()
      | Some _race -> c_stateful_racy ?model ~max_events state)
    (Wo_core.Execution.events (Cinterp.execution state));
  inc

(* Compiled check: the same sequential-rerun discipline as the AST path,
   so racy reports are deterministic across domain counts — and equal to
   the AST path's, because both sequential walks visit children in tree
   order with identical events, and a skipped subtree's states were
   fully explored (race-free) earlier in DFS order. *)
let c_check_drf0_stateful ~strategy ?model ~symmetry ~max_events
    ~max_executions ~num_domains ~mode cp =
  let t0 = Unix.gettimeofday () in
  let nprocs = cp.Prog_compile.nprocs in
  let final_tbl = ref None in
  let run_seq () =
    let tbl = Visited.create () in
    final_tbl := Some tbl;
    let leaves = Atomic.make 0 in
    let states = ref 0 in
    let inc = Wo_core.Drf0_inc.create ~mode ~nprocs () in
    let result =
      try
        c_drf0_dag_walk ~strategy ~symmetry ?model ~max_events ~max_executions
          ~tbl ~leaves
          ~on_node:(fun () -> incr states)
          ~offload:(fun _ -> false)
          inc (Cinterp.init cp) 0;
        Ok ()
      with Racy_state r -> Error r
    in
    ( result,
      {
        sf_states = !states;
        sf_distinct = Visited.size tbl;
        sf_hits = Visited.hits tbl;
        sf_executions = Atomic.get leaves;
        sf_steals = 0;
        sf_per_domain = [| !states |];
      } )
  in
  let result, stats =
    if num_domains = 1 then run_seq ()
    else begin
      let tbl = Visited.create () in
      final_tbl := Some tbl;
      let leaves = Atomic.make 0 in
      let per_domain = Array.make num_domains 0 in
      let par =
        try
          Ok
            (Wsq.run ~domains:num_domains
               ~roots:[ (Cinterp.init cp, 0) ]
               (fun ~worker ~push ~hungry ~halt:_ (state0, sleep0) ->
                 let inc =
                   c_replay_task ?model ~mode ~nprocs ~max_events state0
                 in
                 c_drf0_dag_walk ~strategy ~symmetry ?model ~max_events
                   ~max_executions ~tbl ~leaves
                   ~on_node:(fun () ->
                     per_domain.(worker) <- per_domain.(worker) + 1)
                   ~offload:(fun rest ->
                     hungry ()
                     &&
                     (List.iter (fun (s, _ev, sl) -> push (s, sl)) rest;
                      true))
                   inc state0 sleep0))
        with Racy_state _ -> Error ()
      in
      match par with
      | Ok wstats ->
        ( Ok (),
          {
            sf_states = Array.fold_left ( + ) 0 per_domain;
            sf_distinct = Visited.size tbl;
            sf_hits = Visited.hits tbl;
            sf_executions = Atomic.get leaves;
            sf_steals = wstats.Wsq.steals;
            sf_per_domain = per_domain;
          } )
      | Error () -> run_seq ()
    end
  in
  emit_stateful_obs ~name:"stateful.drf0" stats;
  (match !final_tbl with
  | Some tbl ->
    emit_compiled_obs ~elapsed:(Unix.gettimeofday () -. t0) ~tbl stats
  | None -> ());
  (result, stats)

let check_drf0_stateful ?(engine = Compiled) ?(strategy = Por) ?model
    ?(symmetry = true) ?(max_events = 64) ?(max_executions = 1_000_000)
    ?domains program =
  bitset_guard program;
  let num_domains =
    match domains with Some d -> max 1 d | None -> default_domains ()
  in
  match incremental_mode model with
  | None ->
    (* Custom synchronization model: there is no vector-clock summary to
       hash soundly, so fall back to the closure-based tree oracle. *)
    let result, (s : stats) =
      check_drf0_closure_with_stats ~strategy ?model ~max_events
        ~max_executions program
    in
    ( result,
      {
        sf_states = s.states;
        sf_distinct = 0;
        sf_hits = 0;
        sf_executions = s.executions;
        sf_steals = 0;
        sf_per_domain = [| s.states |];
      } )
  | Some mode
    when (match engine with Compiled -> true | Ast -> false)
         && Prog_compile.compilable program ->
    let cp = Option.get (Prog_compile.compile program) in
    c_check_drf0_stateful ~strategy ?model ~symmetry ~max_events
      ~max_executions ~num_domains ~mode cp
  | Some mode ->
    let nprocs = Program.num_procs program in
    (* Sequential walk: one incremental checker rides the DFS (no replay),
       children explored in tree order, so the first racy prefix found —
       and hence the report — coincides with [check_drf0]'s. *)
    let run_seq () =
      let tbl = Visited.create () in
      let leaves = Atomic.make 0 in
      let states = ref 0 in
      let inc = Wo_core.Drf0_inc.create ~mode ~nprocs () in
      let result =
        try
          drf0_dag_walk ~strategy ~symmetry ?model ~max_events ~max_executions
            ~tbl ~leaves
            ~on_node:(fun () -> incr states)
            ~offload:(fun _ -> false)
            inc (Interp.init program) 0;
          Ok ()
        with Racy_state r -> Error r
      in
      ( result,
        {
          sf_states = !states;
          sf_distinct = Visited.size tbl;
          sf_hits = Visited.hits tbl;
          sf_executions = Atomic.get leaves;
          sf_steals = 0;
          sf_per_domain = [| !states |];
        } )
    in
    let result, stats =
      if num_domains = 1 then run_seq ()
      else begin
        let tbl = Visited.create () in
        let leaves = Atomic.make 0 in
        let per_domain = Array.make num_domains 0 in
        let par =
          try
            Ok
              (Wsq.run ~domains:num_domains
                 ~roots:[ (Interp.init program, 0) ]
                 (fun ~worker ~push ~hungry ~halt:_ (state0, sleep0) ->
                   let inc =
                     replay_task ?model ~mode ~nprocs ~max_events state0
                   in
                   drf0_dag_walk ~strategy ~symmetry ?model ~max_events
                     ~max_executions ~tbl ~leaves
                     ~on_node:(fun () ->
                       per_domain.(worker) <- per_domain.(worker) + 1)
                     ~offload:(fun rest ->
                       hungry ()
                       &&
                       (List.iter (fun (s, _ev, sl) -> push (s, sl)) rest;
                        true))
                     inc state0 sleep0))
          with Racy_state _ -> Error ()
        in
        match par with
        | Ok wstats ->
          ( Ok (),
            {
              sf_states = Array.fold_left ( + ) 0 per_domain;
              sf_distinct = Visited.size tbl;
              sf_hits = Visited.hits tbl;
              sf_executions = Atomic.get leaves;
              sf_steals = wstats.Wsq.steals;
              sf_per_domain = per_domain;
            } )
        | Error () ->
          (* A race exists.  Which worker saw one first is timing-dependent,
             so re-search sequentially on a fresh table: the verdict is
             already known, the rerun only makes the reported execution
             deterministic across domain counts.  (The parallel table is
             unusable after a halt — its claims no longer imply coverage.) *)
          run_seq ()
      end
    in
    emit_stateful_obs ~name:"stateful.drf0" stats;
    (result, stats)
