(** The idealized architecture (Section 4).

    "An abstract, idealized architecture where all memory accesses are
    executed atomically and in program order."  This interpreter executes a
    program under an arbitrary scheduler, one memory operation at a time;
    local register computation is folded into the following memory
    operation (local steps commute with everything, so this loses no
    behaviour).

    States are persistent, so the enumerator can branch cheaply. *)

exception Local_divergence of Wo_core.Event.proc
(** Raised when a thread executes an unreasonable number of consecutive
    local steps without reaching a memory operation (a register-only
    infinite loop). *)

type state

val init : Program.t -> state

val runnable : state -> Wo_core.Event.proc list
(** Processors that have not finished. *)

val finished : state -> bool

val step : state -> Wo_core.Event.proc -> state * Wo_core.Event.t option
(** Advance the processor through local computation until it performs
    exactly one (atomic) memory operation, or finishes.  Returns the event
    performed, or [None] if the thread completed without touching memory.

    @raise Invalid_argument if the processor is not runnable. *)

type access = { loc : Wo_core.Event.loc; writes : bool; sync : bool }
(** Shape of a processor's pending memory operation: the location it will
    touch, whether it has a write component, and whether it is a
    synchronization operation. *)

val peek : state -> Wo_core.Event.proc -> access option
(** The memory access {!step} would perform for this processor, without
    committing anything, or [None] if the thread would finish without
    another memory operation.  Locations are static, so the answer for a
    processor is unchanged by other processors' steps — the property the
    partial-order-reduced enumerator's independence test relies on. *)

val memory : state -> (Wo_core.Event.loc * Wo_core.Event.value) list
(** Current memory contents over the program's locations, sorted. *)

val events_so_far : state -> int

type view = {
  v_envs : (Instr.reg * int) list array;
      (** per processor, register bindings sorted by register *)
  v_codes : Instr.t list array;  (** remaining code per processor *)
  v_memory : (Wo_core.Event.loc * Wo_core.Event.value) list;
      (** effective memory over the program's locations, sorted *)
  v_events : int;  (** memory events performed so far *)
}

val view : state -> view
(** A structural snapshot of everything the future behaviour of [state]
    depends on (plus the event count, which fixes the remaining
    [max_events] budget).  Two states with equal views generate
    identical subtrees of executions — the foundation of the stateful
    enumerator's visited table ({!State_key}). *)

val outcome : state -> Outcome.t
(** Outcome of a finished (or partial) state: observable registers plus
    memory. *)

val execution : state -> Wo_core.Execution.t
(** The idealized execution performed so far (events in execution order). *)

val run : sched:(state -> Wo_core.Event.proc option) -> Program.t -> state
(** Run to completion; [sched] picks among {!runnable} processors (returning
    [None] or a non-runnable processor falls back to the lowest runnable
    one). *)

val run_round_robin : Program.t -> state

val run_random : seed:int -> Program.t -> state
(** Uniform random scheduling from a deterministic seed. *)
