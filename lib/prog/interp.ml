module Int_map = Map.Make (Int)

exception Local_divergence of Wo_core.Event.proc

let max_local_steps = 100_000

type thread = { env : int Int_map.t; code : Instr.t list }

type state = {
  program : Program.t;
  threads : thread array;
  memory : int Int_map.t;
  next_event_id : int;
  seqs : int array;
  events_rev : Wo_core.Event.t list;
}

let init program =
  let n = Program.num_procs program in
  {
    program;
    threads =
      Array.init n (fun p ->
          { env = Int_map.empty; code = program.Program.threads.(p) });
    memory =
      List.fold_left
        (fun m (l, v) -> Int_map.add l v m)
        Int_map.empty program.Program.initial;
    next_event_id = 0;
    seqs = Array.make n 0;
    events_rev = [];
  }

let lookup_reg env r =
  match Int_map.find_opt r env with Some v -> v | None -> 0

let read_mem state loc =
  match Int_map.find_opt loc state.memory with
  | Some v -> v
  | None -> Program.initial_value state.program loc

let runnable state =
  (* Called once per enumeration node; a single backwards scan building the
     result directly avoids the intermediate list a map/filter pipeline
     would allocate. *)
  let rec go p acc =
    if p < 0 then acc
    else
      go (p - 1)
        (if state.threads.(p).code <> [] then p :: acc else acc)
  in
  go (Array.length state.threads - 1) []

let finished state =
  let rec go p =
    p < 0 || (state.threads.(p).code = [] && go (p - 1))
  in
  go (Array.length state.threads - 1)

(* Execute one memory instruction atomically, producing the event and the
   updated thread environment and memory. *)
let exec_memory state (th : thread) proc instr rest =
  let env r = lookup_reg th.env r in
  let seq = state.seqs.(proc) in
  let id = state.next_event_id in
  let mk kind loc ?read_value ?written_value () =
    Wo_core.Event.make ~id ~proc ~seq ~kind ~loc ?read_value ?written_value ()
  in
  let ev, env', mem' =
    match instr with
    | Instr.Read (r, loc) ->
      let v = read_mem state loc in
      (mk Wo_core.Event.Data_read loc ~read_value:v (), Int_map.add r v th.env, state.memory)
    | Instr.Sync_read (r, loc) ->
      let v = read_mem state loc in
      (mk Wo_core.Event.Sync_read loc ~read_value:v (), Int_map.add r v th.env, state.memory)
    | Instr.Write (loc, e) ->
      let v = Instr.eval_expr env e in
      (mk Wo_core.Event.Data_write loc ~written_value:v (), th.env, Int_map.add loc v state.memory)
    | Instr.Sync_write (loc, e) ->
      let v = Instr.eval_expr env e in
      (mk Wo_core.Event.Sync_write loc ~written_value:v (), th.env, Int_map.add loc v state.memory)
    | Instr.Test_and_set (r, loc) ->
      let old = read_mem state loc in
      ( mk Wo_core.Event.Sync_rmw loc ~read_value:old ~written_value:1 (),
        Int_map.add r old th.env,
        Int_map.add loc 1 state.memory )
    | Instr.Fetch_and_add (r, loc, e) ->
      let old = read_mem state loc in
      let v = old + Instr.eval_expr env e in
      ( mk Wo_core.Event.Sync_rmw loc ~read_value:old ~written_value:v (),
        Int_map.add r old th.env,
        Int_map.add loc v state.memory )
    | Instr.Assign _ | Instr.If _ | Instr.While _ | Instr.Nop | Instr.Fence ->
      invalid_arg "exec_memory: not a memory instruction"
  in
  let threads = Array.copy state.threads in
  threads.(proc) <- { env = env'; code = rest };
  let seqs = Array.copy state.seqs in
  seqs.(proc) <- seq + 1;
  ( {
      state with
      threads;
      memory = mem';
      next_event_id = id + 1;
      seqs;
      events_rev = ev :: state.events_rev;
    },
    Some ev )

(* Unfold local control flow until a memory instruction or termination. *)
let advance proc env code budget0 =
  let rec go env code budget =
    if budget = 0 then raise (Local_divergence proc);
    match code with
    | [] -> `Finished env
    | Instr.Assign (r, e) :: rest ->
      go (Int_map.add r (Instr.eval_expr (lookup_reg env) e) env) rest (budget - 1)
    | Instr.Nop :: rest -> go env rest (budget - 1)
    | Instr.Fence :: rest ->
      (* every access is already atomic and in program order here *)
      go env rest (budget - 1)
    | Instr.If (c, a, b) :: rest ->
      let branch = if Instr.eval_cond (lookup_reg env) c then a else b in
      go env (branch @ rest) (budget - 1)
    | Instr.While (c, body) :: rest ->
      if Instr.eval_cond (lookup_reg env) c then
        go env (body @ (Instr.While (c, body) :: rest)) (budget - 1)
      else go env rest (budget - 1)
    | (Instr.Read _ | Instr.Write _ | Instr.Sync_read _ | Instr.Sync_write _
      | Instr.Test_and_set _ | Instr.Fetch_and_add _) as instr :: rest ->
      `Memory (env, instr, rest)
  in
  go env code budget0

type access = { loc : Wo_core.Event.loc; writes : bool; sync : bool }

let peek state proc =
  let th = state.threads.(proc) in
  match advance proc th.env th.code max_local_steps with
  | `Finished _ -> None
  | `Memory (_, instr, _) ->
    Some
      (match instr with
      | Instr.Read (_, loc) -> { loc; writes = false; sync = false }
      | Instr.Write (loc, _) -> { loc; writes = true; sync = false }
      | Instr.Sync_read (_, loc) -> { loc; writes = false; sync = true }
      | Instr.Sync_write (loc, _) -> { loc; writes = true; sync = true }
      | Instr.Test_and_set (_, loc) | Instr.Fetch_and_add (_, loc, _) ->
        { loc; writes = true; sync = true }
      | Instr.Assign _ | Instr.If _ | Instr.While _ | Instr.Nop
      | Instr.Fence ->
        assert false)

let step state proc =
  let th = state.threads.(proc) in
  if th.code = [] then invalid_arg "Interp.step: processor already finished";
  match advance proc th.env th.code max_local_steps with
  | `Finished env ->
    let threads = Array.copy state.threads in
    threads.(proc) <- { env; code = [] };
    ({ state with threads }, None)
  | `Memory (env, instr, rest) ->
    exec_memory state { th with env } proc instr rest

let memory state =
  List.map (fun l -> (l, read_mem state l)) (Program.locs state.program)

type view = {
  v_envs : (Instr.reg * int) list array;
  v_codes : Instr.t list array;
  v_memory : (Wo_core.Event.loc * Wo_core.Event.value) list;
  v_events : int;
}

let view state =
  {
    v_envs = Array.map (fun th -> Int_map.bindings th.env) state.threads;
    v_codes = Array.map (fun th -> th.code) state.threads;
    v_memory = memory state;
    v_events = state.next_event_id;
  }

let events_so_far state = state.next_event_id

let outcome state =
  let observable p r =
    match state.program.Program.observable with
    | None -> true
    | Some l -> List.mem (p, r) l
  in
  let registers =
    Array.to_list state.threads
    |> List.mapi (fun p (th : thread) ->
           Instr.regs state.program.Program.threads.(p)
           |> List.filter (observable p)
           |> List.map (fun r -> (p, r, lookup_reg th.env r)))
    |> List.concat
  in
  Outcome.make ~registers ~memory:(memory state)

let execution state =
  Wo_core.Execution.of_ordered_events (List.rev state.events_rev)

let first_runnable state =
  match runnable state with [] -> None | p :: _ -> Some p

let run ~sched program =
  let rec go state =
    if finished state then state
    else begin
      let proc =
        match sched state with
        | Some p when List.mem p (runnable state) -> p
        | _ -> Option.get (first_runnable state)
      in
      let state, _ev = step state proc in
      go state
    end
  in
  go (init program)

let run_round_robin program =
  let counter = ref (-1) in
  let sched state =
    let rs = runnable state in
    incr counter;
    match rs with
    | [] -> None
    | _ -> Some (List.nth rs (!counter mod List.length rs))
  in
  run ~sched program

let run_random ~seed program =
  let rng = Random.State.make [| seed |] in
  let sched state =
    match runnable state with
    | [] -> None
    | rs -> Some (List.nth rs (Random.State.int rng (List.length rs)))
  in
  run ~sched program
