(** Enumeration of idealized executions.

    DRF0 (Definition 3) quantifies over {e all} executions on the idealized
    architecture, and Definition 2's appears-SC test needs the full set of
    sequentially consistent outcomes.  This module enumerates the
    interleavings of a program's memory operations by depth-first search
    over scheduling choices.  Local computation is not a branch point
    (it commutes), so the branching factor is the number of processors with
    a pending memory operation.

    Three enumerators, of increasing aggression:

    - {b Naive} ({!executions}, [~strategy:Naive]): every interleaving,
      once.  Exponential, by design; the oracle the others are tested
      against.
    - {b Partial-order reduction} ({!executions_por}, the default
      [~strategy:Por]): sleep-set pruning driven by a per-step independence
      test — two pending steps commute unless they touch the same location
      with a write or either is a synchronization operation.  Explores one
      representative per Mazurkiewicz trace; outcome sets and DRF0 verdicts
      are identical to the naive enumerator because both are invariant
      under commuting independent steps.
    - {b Parallel} ({!outcomes_par}, {!check_drf0_par}): the root region of
      the (naive or reduced) search tree is split across OCaml 5 [Domain]s;
      per-domain results are merged at the end.
    - {b Stateful} ({!outcomes_stateful}, {!check_drf0_stateful}): the
      search {e tree} becomes a DAG — a visited table keyed on canonical
      state encodings ({!State_key}) merges convergent schedules, the DRF0
      quantifier additionally quotients by processor/location symmetry, and
      parallel runs use a work-stealing scheduler ({!Wsq}) instead of a
      static root split.

    Programs with loops can have unboundedly many executions — bound them
    with [max_events] and check [truncated]. *)

exception Limit_exceeded
(** Raised when a bound is hit by an enumerator with raising semantics. *)

type strategy =
  | Naive  (** every interleaving — the exhaustive oracle *)
  | Por  (** sleep-set partial-order reduction — same outcomes, fewer states *)

type stats = {
  executions : int;  (** number of complete executions enumerated *)
  states : int;  (** search-tree nodes visited (the pruning metric) *)
  truncated : bool;  (** a bound stopped the enumeration *)
}

val executions :
  ?max_events:int -> ?max_executions:int -> Program.t ->
  Wo_core.Execution.t Seq.t
(** All idealized executions, lazily, one per interleaving.  [max_events]
    (default 64) bounds the length of a single execution; [max_executions]
    (default 1_000_000) bounds their number.  @raise Limit_exceeded when
    forcing the sequence past a bound. *)

val executions_por :
  ?max_events:int -> ?max_executions:int -> Program.t ->
  Wo_core.Execution.t Seq.t
(** One representative execution per Mazurkiewicz trace, lazily, under
    sleep-set partial-order reduction.  @raise Limit_exceeded as for
    {!executions}. *)

val outcomes :
  ?strategy:strategy -> ?max_events:int -> ?max_executions:int ->
  Program.t -> Outcome.t list
(** Distinct sequentially consistent outcomes, sorted.  The default
    [Por] strategy produces exactly the same set as [Naive].
    @raise Limit_exceeded as for {!executions}. *)

val outcomes_with_stats :
  ?strategy:strategy -> ?max_events:int -> ?max_executions:int ->
  Program.t -> Outcome.t list * stats
(** Like {!outcomes} but bounds truncate instead of raising, and the
    search-effort counters are returned. *)

val outcomes_par :
  ?strategy:strategy -> ?max_events:int -> ?max_executions:int ->
  ?domains:int -> Program.t -> Outcome.t list * stats
(** {!outcomes_with_stats} with the search fanned out over [domains]
    OCaml 5 domains (default: [Domain.recommended_domain_count () - 1],
    at least 1).  The outcome set is identical for every [domains] value;
    [stats.states] sums the per-domain counters.  [max_executions] is
    enforced per domain, so a truncated parallel run can explore up to
    [domains] times more executions than a truncated sequential one. *)

val check_drf0 :
  ?strategy:strategy ->
  ?model:Wo_core.Sync_model.t ->
  ?max_events:int -> ?max_executions:int ->
  Program.t ->
  (unit, Wo_core.Drf0.report) result
(** Definition 3: the program obeys the model iff every idealized execution
    is race-free.  Returns a racy execution's report otherwise (under [Por],
    the representative of the racy trace; a program is racy under [Por] iff
    it is racy under [Naive]).

    For the built-in {!Wo_core.Sync_model.drf0} and
    {!Wo_core.Sync_model.drf1} models the check is {e path-incremental}:
    a vector-clock checker ({!Wo_core.Drf0_inc}) rides the DFS, detects a
    race at the event that creates it, and prunes the whole subtree below
    the racy prefix — no per-execution closure is built.  Racy programs
    still get a full closure-based report for the completed racy
    execution.  Custom models fall back to {!check_drf0_closure}.
    @raise Limit_exceeded as for {!executions}. *)

val check_drf0_with_stats :
  ?strategy:strategy ->
  ?model:Wo_core.Sync_model.t ->
  ?max_events:int -> ?max_executions:int ->
  Program.t ->
  (unit, Wo_core.Drf0.report) result * stats
(** {!check_drf0} with the search-effort counters ([states] counts DFS
    nodes visited; with incremental checking a racy program visits only
    the nodes up to its first racy prefix). *)

val check_drf0_closure :
  ?strategy:strategy ->
  ?model:Wo_core.Sync_model.t ->
  ?max_events:int -> ?max_executions:int ->
  Program.t ->
  (unit, Wo_core.Drf0.report) result
(** The closure-based oracle: same DFS, but every complete execution is
    checked with {!Wo_core.Drf0.check} (O(n{^ 3}) closure per leaf) and no
    subtree is pruned early.  Same verdict as {!check_drf0}; retained for
    property tests and the E11 bench.  @raise Limit_exceeded as for
    {!executions}. *)

val check_drf0_closure_with_stats :
  ?strategy:strategy ->
  ?model:Wo_core.Sync_model.t ->
  ?max_events:int -> ?max_executions:int ->
  Program.t ->
  (unit, Wo_core.Drf0.report) result * stats
(** {!check_drf0_closure} with search-effort counters. *)

val check_drf0_par :
  ?strategy:strategy ->
  ?model:Wo_core.Sync_model.t ->
  ?max_events:int -> ?max_executions:int ->
  ?domains:int -> Program.t ->
  (unit, Wo_core.Drf0.report) result
(** {!check_drf0} with subtrees of the search checked on separate domains.
    The verdict is identical for every [domains] value; for a fixed
    [domains] the reported racy execution is deterministic (smallest
    frontier-task index wins).  @raise Limit_exceeded as for
    {!executions}. *)

(** {2 Stateful (DAG) exploration} *)

type engine =
  | Compiled
      (** execute the {!Prog_compile}d program with {!Cinterp} and key
          the visited table on packed int encodings — the default hot
          path.  Programs the compiler cannot lower (see
          {!Prog_compile.compilable}) fall back to [Ast]
          automatically, so the choice never changes observable
          results. *)
  | Ast  (** the persistent {!Interp} with {!State_key} encodings — the
             oracle the compiled path is differentially tested against *)

type stateful_stats = {
  sf_states : int;  (** DAG nodes expanded (tree re-expansions merged away) *)
  sf_distinct : int;  (** distinct states in the visited table *)
  sf_hits : int;  (** visited-table hits — subtrees pruned by dedup *)
  sf_executions : int;  (** complete executions reached *)
  sf_steals : int;  (** successful work-steals (parallel runs) *)
  sf_per_domain : int array;  (** DAG nodes expanded per domain *)
}

val outcomes_stateful :
  ?engine:engine ->
  ?strategy:strategy -> ?max_events:int -> ?max_executions:int ->
  ?domains:int -> Program.t -> Outcome.t list * stateful_stats
(** {!outcomes} as a DAG search: states are claimed in a visited table
    keyed on exact structural snapshots ({!State_key.exact} for [Ast],
    {!Cinterp.exact_key} for the default [Compiled]), so schedules
    converging on the same state expand it once.  The outcome set is
    identical to {!outcomes} for every [engine], [strategy] and [domains] value
    (outcome collection commutes with dedup: a pruned subtree's outcomes
    were all reached from the first visit).  [domains > 1] explores under a
    work-stealing scheduler with a shared sharded table; [max_executions]
    is a global bound, not per-domain.  @raise Limit_exceeded as for
    {!executions}. *)

val check_drf0_stateful :
  ?engine:engine ->
  ?strategy:strategy ->
  ?model:Wo_core.Sync_model.t ->
  ?symmetry:bool ->
  ?max_events:int -> ?max_executions:int ->
  ?domains:int -> Program.t ->
  (unit, Wo_core.Drf0.report) result * stateful_stats
(** Definition 3 as a DAG search.  The visited table is keyed on
    canonical encodings ({!State_key.canonical} for [Ast],
    {!Cinterp.canonical_key} for the default [Compiled]) — interpreter state plus the
    incremental checker's happens-before summary, quotiented by the
    isomorphisms the verdict cannot observe: location renaming, permutation
    of symmetric processors ([symmetry], default [true]; Dekker-style
    mirrored programs collapse onto one orbit representative), and
    per-coordinate rank compression of the clocks.  The verdict always
    equals {!check_drf0}'s; on racy programs the report is identical too —
    sequential walks visit children in tree order so the same first racy
    prefix is found (pruned subtrees are race-free), and parallel walks
    re-search sequentially once a race is known, so the report is
    deterministic across [domains].  Custom models (no incremental mode)
    fall back to the closure tree oracle.  [max_executions] is a global
    bound.  @raise Limit_exceeded as for {!executions}. *)
