(** Off-heap visited table for the stateful (DAG) enumerator.

    Keys are complete {!State_key}/{!Cinterp} encodings.  Slots live in
    an int [Bigarray] (fingerprint + claimed sleep bitset + arena
    reference) and full keys in bump-allocated [Bytes] chunks, so the
    table's footprint is invisible to the GC — a search can hold
    10{^8}–10{^9} states without major-collection collapse.  Lookups
    verify the {e full} key against the arena, so a fingerprint
    collision can only cost a comparison, never a wrong merge.

    Striped open addressing with one mutex per stripe; safe from any
    number of domains.  The stripe, slot, and fingerprint all derive
    from one 64-bit FNV-1a hash computed once per claim.

    Each entry records the sleep-set bitset the state was claimed with:
    the subtree below the state, restricted by that sleep set, is
    covered (or being covered) by whoever claimed it. *)

type t

val create : ?shards:int -> unit -> t
(** A fresh table with [shards] (rounded up to a power of two,
    default 64) independently locked stripes. *)

val try_claim : t -> string -> int -> [ `Skip | `Explore of int ]
(** [try_claim t key sleep] atomically consults and updates the entry
    for [key]:

    - [`Skip]: an existing claim's sleep set is a subset of [sleep], so
      everything reachable under [sleep] is already covered — prune.
    - [`Explore s]: the caller must explore the state with sleep set [s]
      ([sleep] itself for a first visit, or the intersection with the
      previous claim, which widens coverage monotonically).

    @raise Invalid_argument on keys of 1 MiB or more (no legitimate
    state key approaches the packed length bound). *)

val hits : t -> int
(** Number of [`Skip] verdicts so far (the dedup metric). *)

val size : t -> int
(** Number of distinct states claimed. *)

val arena_bytes : t -> int
(** Bytes allocated for key storage across all stripes (the table's
    dominant footprint; slot regions add [24 * capacity] more). *)

val probe_hist : t -> int array
(** First-visit claims bucketed by [floor(log2 (probe length + 1))] —
    bucket 0 is a direct hit on the home slot; a heavy tail signals
    clustering.  Buckets above the last are clamped into it. *)

val hash64 : string -> int
(** The table's 63-bit FNV-1a key hash (exposed for tests). *)
