(** Sharded visited table for the stateful (DAG) enumerator.

    Keys are complete {!State_key} encodings — lookups compare full
    keys, so hash collisions can never merge distinct states.  One mutex
    per shard; safe to use from any number of domains.

    Each entry records the sleep-set bitset the state was claimed with:
    the subtree below the state, restricted by that sleep set, is
    covered (or being covered) by whoever claimed it. *)

type t

val create : ?shards:int -> unit -> t
(** A fresh table with [shards] (rounded up to a power of two,
    default 64) independently locked shards. *)

val try_claim : t -> string -> int -> [ `Skip | `Explore of int ]
(** [try_claim t key sleep] atomically consults and updates the entry
    for [key]:

    - [`Skip]: an existing claim's sleep set is a subset of [sleep], so
      everything reachable under [sleep] is already covered — prune.
    - [`Explore s]: the caller must explore the state with sleep set [s]
      ([sleep] itself for a first visit, or the intersection with the
      previous claim, which widens coverage monotonically). *)

val hits : t -> int
(** Number of [`Skip] verdicts so far (the dedup metric). *)

val size : t -> int
(** Number of distinct states claimed. *)
