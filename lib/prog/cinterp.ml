(* Compiled interpreter — Interp's semantics over flat int arrays.

   A state is (pcs, regs, mem, seqs) plus the event log; step/peek
   mirror Interp.step/peek exactly (same events, same runnable
   discipline, same local-step folding).  Persistence is by
   copy-on-write: [advance] copies the register file only if a local op
   writes, memory is copied only by memory-writing steps, so branching
   costs a handful of small int-array copies. *)

module P = Prog_compile

let stride = P.op_stride

let max_local_steps = 100_000

type state = {
  prog : P.t;
  pcs : int array;  (* per proc: offset into [prog.code.(p)] *)
  regs : int array;  (* flat register file, default 0 *)
  mem : int array;  (* per location index *)
  seqs : int array;
  next_event_id : int;
  events_rev : Wo_core.Event.t list;
}

let init prog =
  {
    prog;
    pcs = Array.make prog.P.nprocs 0;
    regs = Array.make (max prog.P.nregs 1) 0;
    mem = Array.copy prog.P.init_mem;
    seqs = Array.make prog.P.nprocs 0;
    next_event_id = 0;
    events_rev = [];
  }

let compiled st = st.prog

(* --- expression evaluation -------------------------------------------------- *)

let eval_postfix t regs e =
  let off = t.P.e_arg.(e) and len = t.P.e_len.(e) in
  let stack = Array.make t.P.max_stack 0 in
  let sp = ref 0 in
  for i = 0 to len - 1 do
    let tag = t.P.epool.(off + (2 * i)) in
    let arg = t.P.epool.(off + (2 * i) + 1) in
    if tag = P.p_const then begin
      stack.(!sp) <- arg;
      incr sp
    end
    else if tag = P.p_reg then begin
      stack.(!sp) <- regs.(arg);
      incr sp
    end
    else begin
      let b = stack.(!sp - 1) and a = stack.(!sp - 2) in
      sp := !sp - 2;
      let v =
        if tag = P.p_add then a + b
        else if tag = P.p_sub then a - b
        else if tag = P.p_mul then a * b
        else if tag = P.p_eq then if a = b then 1 else 0
        else if tag = P.p_ne then if a <> b then 1 else 0
        else if tag = P.p_lt then if a < b then 1 else 0
        else if a <= b then 1
        else 0
      in
      stack.(!sp) <- v;
      incr sp
    end
  done;
  stack.(0)

let eval t regs e =
  let k = t.P.e_kind.(e) in
  if k = P.e_const then t.P.e_arg.(e)
  else if k = P.e_reg then regs.(t.P.e_arg.(e))
  else eval_postfix t regs e

(* --- local control flow ----------------------------------------------------- *)

(* Unfold local ops from the processor's pc until a memory op or the end
   of the code, mirroring Interp.advance.  The returned register file is
   the input one if no local op wrote (physically — callers test with
   [==] before mutating further). *)
let advance st proc =
  let t = st.prog in
  let code = t.P.code.(proc) in
  let len = Array.length code in
  let regs = ref st.regs in
  let owned = ref false in
  let wr r v =
    if not !owned then begin
      regs := Array.copy !regs;
      owned := true
    end;
    !regs.(r) <- v
  in
  let rec go pc budget =
    if budget = 0 then raise (Interp.Local_divergence proc);
    if pc >= len then `Finished !regs
    else begin
      let o = code.(pc) in
      if o <= P.o_faa then `Memory (!regs, pc)
      else if o = P.o_assign then begin
        wr code.(pc + 1) (eval t !regs code.(pc + 2));
        go (pc + stride) (budget - 1)
      end
      else if o = P.o_jmp then go code.(pc + 1) (budget - 1)
      else if o = P.o_jif then
        if eval t !regs code.(pc + 1) <> 0 then go (pc + stride) (budget - 1)
        else go code.(pc + 2) (budget - 1)
      else (* nop / fence *) go (pc + stride) (budget - 1)
    end
  in
  go st.pcs.(proc) max_local_steps

(* --- stepping --------------------------------------------------------------- *)

let runnable st =
  let rec go p acc =
    if p < 0 then acc
    else
      go (p - 1)
        (if st.pcs.(p) < Array.length st.prog.P.code.(p) then p :: acc else acc)
  in
  go (st.prog.P.nprocs - 1) []

let finished st =
  let rec go p =
    p < 0 || (st.pcs.(p) >= Array.length st.prog.P.code.(p) && go (p - 1))
  in
  go (st.prog.P.nprocs - 1)

let peek st proc =
  match advance st proc with
  | `Finished _ -> None
  | `Memory (_, pc) ->
    let t = st.prog in
    let code = t.P.code.(proc) in
    let o = code.(pc) in
    let li = if o = P.o_write || o = P.o_sync_write then code.(pc + 1) else code.(pc + 2) in
    Some
      {
        Interp.loc = t.P.locs.(li);
        writes = o <> P.o_read && o <> P.o_sync_read;
        sync = o >= P.o_sync_read;
      }

let step st proc =
  let t = st.prog in
  let code = t.P.code.(proc) in
  let len = Array.length code in
  if st.pcs.(proc) >= len then
    invalid_arg "Cinterp.step: processor already finished";
  match advance st proc with
  | `Finished regs ->
    let pcs = Array.copy st.pcs in
    pcs.(proc) <- len;
    ({ st with pcs; regs }, None)
  | `Memory (regs0, pc) ->
    let seq = st.seqs.(proc) in
    let id = st.next_event_id in
    let mk kind loc ?read_value ?written_value () =
      Wo_core.Event.make ~id ~proc ~seq ~kind ~loc ?read_value ?written_value ()
    in
    (* [regs0] is either a private copy made by [advance] or still the
       parent's array; own it before the first register write. *)
    let own regs = if regs == st.regs then Array.copy regs else regs in
    let o = code.(pc) in
    let ev, regs, mem =
      if o = P.o_read || o = P.o_sync_read then begin
        let r = code.(pc + 1) and li = code.(pc + 2) in
        let v = st.mem.(li) in
        let regs = own regs0 in
        regs.(r) <- v;
        let kind =
          if o = P.o_read then Wo_core.Event.Data_read
          else Wo_core.Event.Sync_read
        in
        (mk kind t.P.locs.(li) ~read_value:v (), regs, st.mem)
      end
      else if o = P.o_write || o = P.o_sync_write then begin
        let li = code.(pc + 1) and e = code.(pc + 2) in
        let v = eval t regs0 e in
        let mem = Array.copy st.mem in
        mem.(li) <- v;
        let kind =
          if o = P.o_write then Wo_core.Event.Data_write
          else Wo_core.Event.Sync_write
        in
        (mk kind t.P.locs.(li) ~written_value:v (), regs0, mem)
      end
      else if o = P.o_tas then begin
        let r = code.(pc + 1) and li = code.(pc + 2) in
        let old = st.mem.(li) in
        let regs = own regs0 in
        regs.(r) <- old;
        let mem = Array.copy st.mem in
        mem.(li) <- 1;
        ( mk Wo_core.Event.Sync_rmw t.P.locs.(li) ~read_value:old
            ~written_value:1 (),
          regs,
          mem )
      end
      else begin
        (* o_faa *)
        let r = code.(pc + 1) and li = code.(pc + 2) and e = code.(pc + 3) in
        let old = st.mem.(li) in
        let v = old + eval t regs0 e in
        let regs = own regs0 in
        regs.(r) <- old;
        let mem = Array.copy st.mem in
        mem.(li) <- v;
        ( mk Wo_core.Event.Sync_rmw t.P.locs.(li) ~read_value:old
            ~written_value:v (),
          regs,
          mem )
      end
    in
    let pcs = Array.copy st.pcs in
    pcs.(proc) <- pc + stride;
    let seqs = Array.copy st.seqs in
    seqs.(proc) <- seq + 1;
    ( {
        st with
        pcs;
        regs;
        mem;
        seqs;
        next_event_id = id + 1;
        events_rev = ev :: st.events_rev;
      },
      Some ev )

(* --- observation ------------------------------------------------------------ *)

let memory st =
  Array.to_list (Array.mapi (fun i l -> (l, st.mem.(i))) st.prog.P.locs)

let events_so_far st = st.next_event_id

let outcome st =
  let registers =
    Array.to_list st.prog.P.obs_regs
    |> List.map (fun (p, r, flat) -> (p, r, st.regs.(flat)))
  in
  Outcome.make ~registers ~memory:(memory st)

let execution st = Wo_core.Execution.of_ordered_events (List.rev st.events_rev)

(* --- packed exact keys ------------------------------------------------------ *)

(* Zigzagged LEB128 varints; self-delimiting, and the per-program field
   counts (nprocs, nregs, nlocs) are fixed, so the concatenation is
   injective on states of one compiled program. *)
let put b pos n =
  let z = if n >= 0 then n lsl 1 else lnot (n lsl 1) in
  let rec go z pos =
    if z < 0x80 then begin
      Bytes.unsafe_set b pos (Char.unsafe_chr z);
      pos + 1
    end
    else begin
      Bytes.unsafe_set b pos (Char.unsafe_chr (0x80 lor (z land 0x7f)));
      go (z lsr 7) (pos + 1)
    end
  in
  go z pos

let put_all b pos a =
  let pos = ref pos in
  for i = 0 to Array.length a - 1 do
    pos := put b !pos a.(i)
  done;
  !pos

let exact_key st =
  let t = st.prog in
  let worst =
    10 * (1 + t.P.nprocs + Array.length st.regs + Array.length st.mem)
  in
  let b = Bytes.create worst in
  let pos = put b 0 st.next_event_id in
  let pos = put_all b pos st.pcs in
  let pos = put_all b pos st.regs in
  let pos = put_all b pos st.mem in
  Bytes.sub_string b 0 pos

(* --- canonical DRF0 keys ---------------------------------------------------- *)

module Inc = Wo_core.Drf0_inc

let emit_varint buf n =
  let z = if n >= 0 then n lsl 1 else lnot (n lsl 1) in
  let rec go z =
    if z < 0x80 then Buffer.add_char buf (Char.unsafe_chr z)
    else begin
      Buffer.add_char buf (Char.unsafe_chr (0x80 lor (z land 0x7f)));
      go (z lsr 7)
    end
  in
  go z

(* Rank compression, as State_key.emit_ranks: order-preserving
   per-coordinate renumbering of the summary values. *)
let emit_ranks buf vals =
  let distinct = List.sort_uniq Int.compare vals in
  let rank v =
    let rec go i = function
      | [] -> assert false
      | x :: rest -> if x = v then i else go (i + 1) rest
    in
    go 0 distinct
  in
  List.iter (fun v -> emit_varint buf (rank v)) vals

(* Runtime signature of one thread: static symmetry class + pc +
   register values.  Two threads with equal signatures have the same
   remaining compiled code up to a private location renaming (class
   fixes the whole code array up to renaming; pc fixes the suffix) and
   the same register file, so permuting them maps the state to an
   isomorphic one — the compiled analogue of State_key's
   thread_signature.  (Coarser in one spot: the AST signature
   distinguishes an unbound register from one bound to 0; compiled
   execution cannot, so merging them is sound here.) *)
let signature st p =
  let t = st.prog in
  ( t.P.classes.(p),
    st.pcs.(p),
    Array.sub st.regs t.P.reg_base.(p) (Array.length t.P.reg_ids.(p)) )

let encode_arrangement st (sm : Inc.summary) order =
  let t = st.prog in
  let nprocs = t.P.nprocs in
  let buf = Buffer.create 128 in
  emit_varint buf st.next_event_id;
  Array.iter
    (fun p ->
      emit_varint buf t.P.classes.(p);
      emit_varint buf st.pcs.(p);
      let base = t.P.reg_base.(p) in
      for i = 0 to Array.length t.P.reg_ids.(p) - 1 do
        emit_varint buf st.regs.(base + i)
      done)
    order;
  (* Live locations (reachable from some thread's pc), renamed by first
     occurrence scanning threads in arrangement order; dead locations
     cannot be accessed again, so their values and happens-before
     metadata are dropped.  Same-class threads have position-wise
     corresponding live streams (same CFG, operands related by the class
     renaming), so the composite renaming is arrangement-invariant. *)
  let nlocs = Array.length t.P.locs in
  let rename = Array.make nlocs (-1) in
  let live_rev = ref [] in
  let next = ref 0 in
  Array.iter
    (fun p ->
      let ll = t.P.live_locs.(p).(st.pcs.(p) / stride) in
      Array.iter
        (fun li ->
          if rename.(li) < 0 then begin
            rename.(li) <- !next;
            incr next;
            live_rev := li :: !live_rev
          end)
        ll)
    order;
  let live = List.rev !live_rev in
  Buffer.add_char buf 'M';
  List.iter (fun li -> emit_varint buf st.mem.(li)) live;
  Buffer.add_char buf 'H';
  let loc_summaries =
    List.map
      (fun li ->
        List.find_opt
          (fun (l : Inc.loc_summary) -> l.Inc.ls_loc = t.P.locs.(li))
          sm.Inc.sm_locs)
      live
  in
  for q' = 0 to nprocs - 1 do
    let q = order.(q') in
    let clock_vals =
      List.init nprocs (fun p' -> sm.Inc.sm_clocks.(order.(p')).(q))
    in
    let loc_vals =
      List.concat_map
        (function
          | Some (l : Inc.loc_summary) ->
            [ l.Inc.ls_last_write.(q); l.Inc.ls_last_read.(q); l.Inc.ls_sync.(q) ]
          | None -> [ -1; -1; 0 ])
        loc_summaries
    in
    emit_ranks buf (clock_vals @ loc_vals)
  done;
  Buffer.contents buf

(* Arrangements permuting threads within equal-signature groups, capped
   exactly like State_key.arrangements. *)
let max_arrangements = 24

let arrangements st =
  let nprocs = st.prog.P.nprocs in
  let classes =
    List.init nprocs (fun p -> (signature st p, p))
    |> List.sort compare
    |> List.fold_left
         (fun acc (sg, p) ->
           match acc with
           | (sg', ps) :: rest when sg' = sg -> (sg', p :: ps) :: rest
           | _ -> (sg, [ p ]) :: acc)
         []
    |> List.rev_map (fun (_, ps) -> List.rev ps)
  in
  let rec perms = function
    | [] -> [ [] ]
    | l ->
      List.concat_map
        (fun x -> List.map (fun p -> x :: p) (perms (List.filter (( <> ) x) l)))
        l
  in
  let count =
    List.fold_left
      (fun acc c ->
        let rec fact n = if n <= 1 then 1 else n * fact (n - 1) in
        acc * fact (List.length c))
      1 classes
  in
  if count > max_arrangements then [ Array.init nprocs (fun p -> p) ]
  else
    List.fold_left
      (fun acc cls ->
        List.concat_map
          (fun prefix -> List.map (fun perm -> prefix @ perm) (perms cls))
          acc)
      [ [] ] classes
    |> List.map Array.of_list

let canonical_key ?(symmetry = true) st sm =
  let identity = Array.init st.prog.P.nprocs (fun p -> p) in
  if not symmetry then (encode_arrangement st sm identity, identity)
  else
    match arrangements st with
    | [ order ] -> (encode_arrangement st sm order, order)
    | orders ->
      List.fold_left
        (fun (best_key, best_order) order ->
          let key = encode_arrangement st sm order in
          if String.compare key best_key < 0 then (key, order)
          else (best_key, best_order))
        (encode_arrangement st sm (List.hd orders), List.hd orders)
        (List.tl orders)
