(* Canonical encodings of enumeration states.

   The stateful enumerator (Enumerate.*_stateful) replaces the search
   *tree* with a DAG: a visited table keyed by a compact encoding of the
   interpreter state, so a state reached by a second
   commutation-inequivalent path is expanded exactly once.  Two flavours:

   - [exact]: a byte-for-byte snapshot of everything the future depends
     on (register files, remaining code, memory, event count).  Used for
     outcome collection, where processor and location identities are
     observable (outcomes name them), so no renaming is allowed.

   - [canonical]: used for the DRF0 quantifier, whose verdict is
     invariant under isomorphism — any bijective renaming of processor
     and location ids.  Locations are renamed by first occurrence in the
     encoding stream, symmetric processors (equal thread-local
     signatures) are permuted to a canonical arrangement, and the
     incremental checker's vector-clock summary is rank-compressed per
     coordinate.  Dekker-style mirrored programs collapse onto one
     representative per orbit.

   Soundness of the rank compression: every future operation of the
   incremental checker compares summary values only *within* one
   processor coordinate (joins are pointwise max, a race test compares a
   last-access epoch against one clock component), and future epochs are
   assigned strictly above every tracked value of their coordinate.  So
   any order-preserving per-coordinate renumbering leaves the set of
   reachable races unchanged, and states with equal rank patterns have
   isomorphic race futures.  (DESIGN.md section 5 spells the argument
   out.) *)

module Inc = Wo_core.Drf0_inc

(* Permuting more symmetric threads than this would cost more encodings
   per state than the orbit collapse saves; fall back to the identity
   arrangement (sound — only reduction is lost). *)
let max_arrangements = 24

let emit_int buf n =
  (* ints here are small (ids, values, ranks); a compact tagged encoding
     keeps keys short while staying injective *)
  if n >= 0 && n < 0x7f then Buffer.add_char buf (Char.chr n)
  else begin
    Buffer.add_char buf '\x7f';
    Buffer.add_string buf (string_of_int n);
    Buffer.add_char buf ';'
  end

let emit_tag buf c = Buffer.add_char buf c

(* --- structural instruction encoding with location renaming ---------------- *)

type renamer = { table : (int, int) Hashtbl.t; mutable order : int list }

let fresh_renamer () = { table = Hashtbl.create 8; order = [] }

let rename rn loc =
  match Hashtbl.find_opt rn.table loc with
  | Some id -> id
  | None ->
    let id = Hashtbl.length rn.table in
    Hashtbl.add rn.table loc id;
    rn.order <- loc :: rn.order;
    id

let renamed_locs rn = List.rev rn.order

let rec emit_expr buf (e : Instr.expr) =
  match e with
  | Instr.Const n ->
    emit_tag buf 'c';
    emit_int buf n
  | Instr.Reg r ->
    emit_tag buf 'r';
    emit_int buf r
  | Instr.Add (a, b) ->
    emit_tag buf '+';
    emit_expr buf a;
    emit_expr buf b
  | Instr.Sub (a, b) ->
    emit_tag buf '-';
    emit_expr buf a;
    emit_expr buf b
  | Instr.Mul (a, b) ->
    emit_tag buf '*';
    emit_expr buf a;
    emit_expr buf b

let emit_cond buf (c : Instr.cond) =
  let two tag a b =
    emit_tag buf tag;
    emit_expr buf a;
    emit_expr buf b
  in
  match c with
  | Instr.Eq (a, b) -> two '=' a b
  | Instr.Ne (a, b) -> two '!' a b
  | Instr.Lt (a, b) -> two '<' a b
  | Instr.Le (a, b) -> two 'l' a b

let rec emit_instr buf rn (i : Instr.t) =
  match i with
  | Instr.Read (r, loc) ->
    emit_tag buf 'R';
    emit_int buf r;
    emit_int buf (rename rn loc)
  | Instr.Write (loc, e) ->
    emit_tag buf 'W';
    emit_int buf (rename rn loc);
    emit_expr buf e
  | Instr.Sync_read (r, loc) ->
    emit_tag buf 'S';
    emit_int buf r;
    emit_int buf (rename rn loc)
  | Instr.Sync_write (loc, e) ->
    emit_tag buf 'T';
    emit_int buf (rename rn loc);
    emit_expr buf e
  | Instr.Test_and_set (r, loc) ->
    emit_tag buf 'A';
    emit_int buf r;
    emit_int buf (rename rn loc)
  | Instr.Fetch_and_add (r, loc, e) ->
    emit_tag buf 'F';
    emit_int buf r;
    emit_int buf (rename rn loc);
    emit_expr buf e
  | Instr.Assign (r, e) ->
    emit_tag buf ':';
    emit_int buf r;
    emit_expr buf e
  | Instr.If (c, a, b) ->
    emit_tag buf '?';
    emit_cond buf c;
    emit_block buf rn a;
    emit_block buf rn b
  | Instr.While (c, body) ->
    emit_tag buf '@';
    emit_cond buf c;
    emit_block buf rn body
  | Instr.Nop -> emit_tag buf 'n'
  | Instr.Fence -> emit_tag buf 'f'

and emit_block buf rn instrs =
  emit_tag buf '(';
  List.iter (emit_instr buf rn) instrs;
  emit_tag buf ')'

let emit_thread buf rn env code =
  emit_tag buf 'E';
  List.iter
    (fun (r, v) ->
      emit_int buf r;
      emit_int buf v)
    env;
  emit_tag buf 'C';
  emit_block buf rn code

(* --- exact keys (outcome mode) --------------------------------------------- *)

let exact (v : Interp.view) =
  (* Processor and location ids are observable through outcomes, so the
     key is a plain structural snapshot.  Everything in the view is pure
     data (no closures, no cycles), so marshalling is a total, injective
     encoding — and the visited table compares full keys, so there is no
     hash-collision soundness hole. *)
  Marshal.to_string (v.Interp.v_envs, v.Interp.v_codes, v.Interp.v_memory, v.Interp.v_events) []

(* --- canonical keys (DRF0 mode) -------------------------------------------- *)

(* Rank compression: map each value of [vals] to its index in the sorted
   set of distinct values.  Order-preserving and injective on the
   multiset's order structure, which is all the checker's future
   comparisons can observe. *)
let emit_ranks buf vals =
  let distinct = List.sort_uniq Int.compare vals in
  let rank v =
    let rec go i = function
      | [] -> assert false
      | x :: rest -> if x = v then i else go (i + 1) rest
    in
    go 0 distinct
  in
  List.iter (fun v -> emit_int buf (rank v)) vals

(* One full encoding of the state for a given processor arrangement:
   [order.(i)] is the concrete processor at canonical position [i]. *)
let encode_arrangement (v : Interp.view) (sm : Inc.summary) order =
  let buf = Buffer.create 256 in
  let rn = fresh_renamer () in
  let nprocs = Array.length order in
  emit_int buf v.Interp.v_events;
  Array.iter
    (fun p -> emit_thread buf rn v.Interp.v_envs.(p) v.Interp.v_codes.(p))
    order;
  (* Live locations (those still reachable from remaining code), in
     renaming order; dead locations cannot be accessed again, so neither
     their memory value nor their happens-before metadata can influence
     whether a future race exists. *)
  let live = renamed_locs rn in
  emit_tag buf 'M';
  List.iter
    (fun loc ->
      emit_int buf
        (match List.assoc_opt loc v.Interp.v_memory with
        | Some value -> value
        | None -> 0))
    live;
  (* The happens-before summary, processor-permuted and rank-compressed
     independently per canonical coordinate. *)
  emit_tag buf 'H';
  let loc_summaries =
    List.map
      (fun loc ->
        List.find_opt (fun (l : Inc.loc_summary) -> l.Inc.ls_loc = loc)
          sm.Inc.sm_locs)
      live
  in
  for q' = 0 to nprocs - 1 do
    let q = order.(q') in
    let clock_vals =
      List.init nprocs (fun p' -> sm.Inc.sm_clocks.(order.(p')).(q))
    in
    let loc_vals =
      List.concat_map
        (function
          | Some (l : Inc.loc_summary) ->
            [ l.Inc.ls_last_write.(q); l.Inc.ls_last_read.(q); l.Inc.ls_sync.(q) ]
          | None -> [ -1; -1; 0 ])
        loc_summaries
    in
    emit_ranks buf (clock_vals @ loc_vals)
  done;
  Buffer.contents buf

(* Thread-local signature: the thread's encoding with a private location
   renaming.  Isomorphism-invariant, so symmetric threads (and only
   candidates for symmetry) share a signature. *)
let thread_signature (v : Interp.view) p =
  let buf = Buffer.create 64 in
  emit_thread buf (fresh_renamer ()) v.Interp.v_envs.(p) v.Interp.v_codes.(p)
    ;
  Buffer.contents buf

(* All arrangements obtained by permuting processors within signature
   classes, classes kept in sorted-signature order.  Asymmetric programs
   have singleton classes and exactly one arrangement. *)
let arrangements (v : Interp.view) =
  let nprocs = Array.length v.Interp.v_codes in
  let classes =
    List.init nprocs (fun p -> (thread_signature v p, p))
    |> List.sort compare
    |> List.fold_left
         (fun acc (sg, p) ->
           match acc with
           | (sg', ps) :: rest when sg' = sg -> (sg', p :: ps) :: rest
           | _ -> (sg, [ p ]) :: acc)
         []
    |> List.rev_map (fun (_, ps) -> List.rev ps)
  in
  let rec perms = function
    | [] -> [ [] ]
    | l ->
      List.concat_map
        (fun x -> List.map (fun p -> x :: p) (perms (List.filter (( <> ) x) l)))
        l
  in
  let count =
    List.fold_left
      (fun acc c ->
        let rec fact n = if n <= 1 then 1 else n * fact (n - 1) in
        acc * fact (List.length c))
      1 classes
  in
  if count > max_arrangements then [ Array.init nprocs (fun p -> p) ]
  else
    List.fold_left
      (fun acc cls ->
        List.concat_map
          (fun prefix -> List.map (fun perm -> prefix @ perm) (perms cls))
          acc)
      [ [] ] classes
    |> List.map Array.of_list

let canonical ?(symmetry = true) (v : Interp.view) (sm : Inc.summary) =
  let identity = Array.init (Array.length v.Interp.v_codes) (fun p -> p) in
  if not symmetry then (encode_arrangement v sm identity, identity)
  else
    match arrangements v with
    | [ order ] -> (encode_arrangement v sm order, order)
    | orders ->
      List.fold_left
        (fun (best_key, best_order) order ->
          let key = encode_arrangement v sm order in
          if String.compare key best_key < 0 then (key, order)
          else (best_key, best_order))
        ( encode_arrangement v sm (List.hd orders),
          List.hd orders )
        (List.tl orders)

let map_sleep ~order sleep =
  let canon = ref 0 in
  Array.iteri
    (fun i p -> if sleep land (1 lsl p) <> 0 then canon := !canon lor (1 lsl i))
    order;
  !canon

let unmap_sleep ~order canon =
  let sleep = ref 0 in
  Array.iteri
    (fun i p -> if canon land (1 lsl i) <> 0 then sleep := !sleep lor (1 lsl p))
    order;
  !sleep
