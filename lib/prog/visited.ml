(* Sharded visited table for the stateful (DAG) enumerator.

   Maps canonical state keys to the sleep set the state was (or is
   being) explored with.  Sharded by key hash with one mutex per shard,
   so concurrent workers contend only when they hash to the same shard.
   Entries store the *full* key (the Hashtbl is keyed by the complete
   encoding string), so equal hashes alone can never merge distinct
   states.

   Sleep-set discipline (Godefroid's state-caching refinement): an entry
   [key -> s0] promises that the subtree below the state restricted by
   sleep set [s0] is being covered.  A revisit with sleep [s]:

   - [s0 subset-of s]: the new visit would explore a subset of what is
     already covered — skip.
   - otherwise: coverage must widen; the entry is lowered to [s0 land s]
     and the caller re-explores with that (smaller) sleep set.  Sleeping
     fewer processors only adds executions, so the re-exploration is
     conservative.

   Claims are recorded on entry (pre-order).  The enumeration DAG is
   acyclic (every edge performs one memory event, so the event count
   strictly increases), so a state can never reach itself; a concurrent
   worker skipping a state another worker has merely *claimed* is sound
   because the claimant finishes its coverage unless the whole search
   stops — and the search only stops once the answer (a race, a limit)
   is already decided. *)

type shard = { lock : Mutex.t; table : (string, int) Hashtbl.t }

type t = { shards : shard array; hits : int Atomic.t }

let default_shards = 64

(* Power-of-two shard count so hash masking is uniform; round up. *)
let create ?(shards = default_shards) () =
  let n =
    let rec up k = if k >= shards || k >= 4096 then k else up (k * 2) in
    up 1
  in
  {
    shards =
      Array.init n (fun _ ->
          { lock = Mutex.create (); table = Hashtbl.create 256 });
    hits = Atomic.make 0;
  }

let shard_of t key =
  t.shards.(Hashtbl.hash key land (Array.length t.shards - 1))

let try_claim t key sleep =
  let s = shard_of t key in
  Mutex.lock s.lock;
  let verdict =
    match Hashtbl.find_opt s.table key with
    | None ->
      Hashtbl.add s.table key sleep;
      `Explore sleep
    | Some s0 ->
      if s0 land lnot sleep = 0 then `Skip
      else begin
        let widened = s0 land sleep in
        Hashtbl.replace s.table key widened;
        `Explore widened
      end
  in
  Mutex.unlock s.lock;
  if verdict = `Skip then Atomic.incr t.hits;
  verdict

let hits t = Atomic.get t.hits

let size t =
  Array.fold_left (fun acc s -> acc + Hashtbl.length s.table) 0 t.shards
