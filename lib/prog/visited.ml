(* Off-heap visited table for the stateful (DAG) enumerator.

   Maps state keys to the sleep set the state was (or is being) explored
   with.  At the billion-state scale the previous sharded-Hashtbl table
   collapses under GC pressure: every key is a heap string, every bucket
   a heap cell, and each major cycle walks them all.  This table keeps
   the hot data outside the OCaml heap:

   - slots live in an int Bigarray (malloc'ed, never scanned by the GC):
     three ints per slot — key fingerprint, claimed sleep bitset, and a
     packed reference into the arena;
   - full keys live in bump-allocated Bytes chunks (the arena).  Bytes
     bodies are heap-allocated but pointer-free, so the GC never scans
     their contents, and there are only O(arena_bytes / chunk) of them
     rather than one per state;
   - one open-addressing (linear probing) region per stripe, each with
     its own mutex, so concurrent workers contend only on stripe
     collisions — the same contention profile as the old shards.

   A fingerprint match alone never merges states: the full key is
   verified against the arena byte-for-byte, so a 63-bit hash collision
   costs a comparison, never a wrong merge.

   The stripe, the slot, and the fingerprint are all derived from ONE
   64-bit FNV-1a hash per claim (stripe from the high bits, home slot
   from the low bits), where the old table hashed every key twice
   (Hashtbl.hash for the shard, then the Hashtbl's own hash).

   Sleep-set discipline (Godefroid's state-caching refinement) is
   unchanged: an entry [key -> s0] promises that the subtree below the
   state restricted by sleep set [s0] is being covered.  A revisit with
   sleep [s] either skips ([s0] subset of [s]) or widens the entry to
   [s0 land s] and re-explores.  Claims are recorded pre-order; the
   enumeration DAG is acyclic (event counts strictly increase), so
   skipping a state another worker merely claimed is sound — the
   claimant finishes its coverage unless the whole search stops, and it
   only stops once the answer is decided. *)

type slots =
  (int, Bigarray.int_elt, Bigarray.c_layout) Bigarray.Array1.t

type stripe = {
  lock : Mutex.t;
  mutable slots : slots;  (* 3 ints per slot: fp, sleep, meta; fp = 0 empty *)
  mutable cap : int;  (* slot count, power of two *)
  mutable count : int;
  mutable chunks : Bytes.t array;
  mutable nchunks : int;
  mutable cur_off : int;  (* bump pointer in chunks.(nchunks - 1) *)
  mutable arena : int;  (* total arena bytes allocated *)
  probe_hist : int array;  (* claims by floor(log2(probe length + 1)) *)
}

type t = { stripes : stripe array; mask : int; hits : int Atomic.t }

(* --- hashing ---------------------------------------------------------------- *)

(* FNV-1a over bytes on native ints.  The canonical 64-bit offset basis
   does not fit OCaml's 63-bit literals; a truncated variant loses
   nothing we rely on — full keys are always verified, the hash only
   spreads slots. *)
let fnv_offset = 0x2bf29ce484222325
let fnv_prime = 0x100000001b3

let hash64 s =
  let h = ref fnv_offset in
  for i = 0 to String.length s - 1 do
    h := (!h lxor Char.code (String.unsafe_get s i)) * fnv_prime
  done;
  !h land max_int

(* --- layout constants ------------------------------------------------------- *)

(* meta packs (chunk index, byte offset, key length); keys never
   straddle chunks, so one meta locates the whole key. *)
let len_bits = 20
let off_bits = 22
let max_key_len = (1 lsl len_bits) - 1
let max_chunk = 1 lsl off_bits (* 4 MiB *)
let first_chunk = 4096

let meta ~chunk ~off ~len =
  (chunk lsl (len_bits + off_bits)) lor (off lsl len_bits) lor len

let meta_chunk m = m lsr (len_bits + off_bits)
let meta_off m = (m lsr len_bits) land ((1 lsl off_bits) - 1)
let meta_len m = m land ((1 lsl len_bits) - 1)

let probe_buckets = 16

(* --- construction ----------------------------------------------------------- *)

let default_shards = 64
let initial_cap = 256

let make_slots cap =
  let a = Bigarray.Array1.create Bigarray.int Bigarray.c_layout (3 * cap) in
  Bigarray.Array1.fill a 0;
  a

let create ?(shards = default_shards) () =
  let n =
    let rec up k = if k >= shards || k >= 4096 then k else up (k * 2) in
    up 1
  in
  {
    stripes =
      Array.init n (fun _ ->
          {
            lock = Mutex.create ();
            slots = make_slots initial_cap;
            cap = initial_cap;
            count = 0;
            chunks = [||];
            nchunks = 0;
            cur_off = 0;
            arena = 0;
            probe_hist = Array.make probe_buckets 0;
          });
    mask = n - 1;
    hits = Atomic.make 0;
  }

(* --- arena ------------------------------------------------------------------ *)

let arena_store s key =
  let len = String.length key in
  let room =
    s.nchunks > 0 && s.cur_off + len <= Bytes.length s.chunks.(s.nchunks - 1)
  in
  if not room then begin
    let next =
      if s.nchunks = 0 then first_chunk
      else min max_chunk (2 * Bytes.length s.chunks.(s.nchunks - 1))
    in
    let size = max next len in
    if s.nchunks = Array.length s.chunks then begin
      let chunks' = Array.make (max 8 (2 * s.nchunks)) Bytes.empty in
      Array.blit s.chunks 0 chunks' 0 s.nchunks;
      s.chunks <- chunks'
    end;
    s.chunks.(s.nchunks) <- Bytes.create size;
    s.nchunks <- s.nchunks + 1;
    s.cur_off <- 0;
    s.arena <- s.arena + size
  end;
  let chunk = s.nchunks - 1 in
  let off = s.cur_off in
  Bytes.blit_string key 0 s.chunks.(chunk) off len;
  s.cur_off <- off + len;
  meta ~chunk ~off ~len

let key_matches s m key =
  let len = String.length key in
  meta_len m = len
  &&
  let chunk = s.chunks.(meta_chunk m) in
  let off = meta_off m in
  let rec eq i =
    i >= len
    || (Bytes.unsafe_get chunk (off + i) = String.unsafe_get key i && eq (i + 1))
  in
  eq 0

(* --- slot region ------------------------------------------------------------ *)

(* Grow at 75% load.  Fingerprints are stored, so rehashing moves slots
   without touching the arena. *)
let grow s =
  let old = s.slots and old_cap = s.cap in
  let cap = 2 * old_cap in
  let slots = make_slots cap in
  let mask = cap - 1 in
  for i = 0 to old_cap - 1 do
    let fp = Bigarray.Array1.unsafe_get old (3 * i) in
    if fp <> 0 then begin
      let j = ref (fp land mask) in
      while Bigarray.Array1.unsafe_get slots (3 * !j) <> 0 do
        j := (!j + 1) land mask
      done;
      Bigarray.Array1.unsafe_set slots (3 * !j) fp;
      Bigarray.Array1.unsafe_set slots ((3 * !j) + 1)
        (Bigarray.Array1.unsafe_get old ((3 * i) + 1));
      Bigarray.Array1.unsafe_set slots ((3 * !j) + 2)
        (Bigarray.Array1.unsafe_get old ((3 * i) + 2))
    end
  done;
  s.slots <- slots;
  s.cap <- cap

let log2_bucket plen =
  let rec go n b = if n = 0 then b else go (n lsr 1) (b + 1) in
  min (probe_buckets - 1) (go plen 0)

(* --- claims ----------------------------------------------------------------- *)

let try_claim t key sleep =
  if String.length key > max_key_len then
    invalid_arg "Visited.try_claim: key exceeds the packed length bound";
  let h = hash64 key in
  let fp = if h = 0 then 1 else h in
  let s = t.stripes.((h lsr 48) land t.mask) in
  Mutex.lock s.lock;
  if 4 * (s.count + 1) > 3 * s.cap then grow s;
  let mask = s.cap - 1 in
  let slots = s.slots in
  let rec probe i plen =
    let base = 3 * i in
    let f = Bigarray.Array1.unsafe_get slots base in
    if f = 0 then begin
      (* first visit: claim with the caller's sleep set *)
      Bigarray.Array1.unsafe_set slots base fp;
      Bigarray.Array1.unsafe_set slots (base + 1) sleep;
      Bigarray.Array1.unsafe_set slots (base + 2) (arena_store s key);
      s.count <- s.count + 1;
      s.probe_hist.(log2_bucket plen) <- s.probe_hist.(log2_bucket plen) + 1;
      `Explore sleep
    end
    else if
      f = fp && key_matches s (Bigarray.Array1.unsafe_get slots (base + 2)) key
    then begin
      let s0 = Bigarray.Array1.unsafe_get slots (base + 1) in
      if s0 land lnot sleep = 0 then `Skip
      else begin
        let widened = s0 land sleep in
        Bigarray.Array1.unsafe_set slots (base + 1) widened;
        `Explore widened
      end
    end
    else probe ((i + 1) land mask) (plen + 1)
  in
  let verdict = probe (fp land mask) 0 in
  Mutex.unlock s.lock;
  if verdict = `Skip then Atomic.incr t.hits;
  verdict

(* --- counters --------------------------------------------------------------- *)

let hits t = Atomic.get t.hits

let size t = Array.fold_left (fun acc s -> acc + s.count) 0 t.stripes

let arena_bytes t = Array.fold_left (fun acc s -> acc + s.arena) 0 t.stripes

let probe_hist t =
  let out = Array.make probe_buckets 0 in
  Array.iter
    (fun s ->
      Array.iteri (fun i v -> out.(i) <- out.(i) + v) s.probe_hist)
    t.stripes;
  out
