(** Canonical encodings of enumeration states.

    The stateful enumerator ({!Enumerate.outcomes_stateful},
    {!Enumerate.check_drf0_stateful}) turns the search tree into a DAG
    by keying a visited table on these encodings.  Keys are full
    structural encodings — the table compares entire keys, never just a
    hash, so a hash collision can only cost a bucket scan, never a wrong
    merge.

    Two flavours:

    - {!exact} snapshots the state byte-for-byte.  Sound for any
      memoized question, required for outcome collection (outcomes name
      concrete processors, registers and locations).
    - {!canonical} additionally quotients by the isomorphisms the DRF0
      verdict cannot observe: locations are renamed by first occurrence,
      processors with equal thread-local signatures are permuted into a
      canonical arrangement (symmetry reduction — Dekker-style mirrored
      programs collapse), dead locations are dropped, and the
      happens-before summary is rank-compressed per clock coordinate.
      Sound {e only} for isomorphism-invariant questions such as "is
      some completion of this state racy". *)

val exact : Interp.view -> string
(** Injective structural snapshot of the view. *)

val canonical :
  ?symmetry:bool ->
  Interp.view ->
  Wo_core.Drf0_inc.summary ->
  string * int array
(** [(key, order)]: the canonical key, and the processor arrangement it
    was built with — [order.(i)] is the concrete processor placed at
    canonical position [i] (the identity arrangement when [symmetry] is
    [false] or the symmetric-thread orbit is too large).  Two states
    receive equal keys only if a processor/location renaming maps one to
    the other, including their happens-before summaries up to
    order-preserving per-coordinate renumbering — which leaves the DRF0
    verdict of every completion unchanged. *)

val map_sleep : order:int array -> int -> int
(** Transport a sleep-set bitset (bit [p] = concrete processor [p]
    asleep) into canonical coordinates under the arrangement returned by
    {!canonical}. *)

val unmap_sleep : order:int array -> int -> int
(** Inverse of {!map_sleep}: canonical coordinates back to concrete
    processor ids. *)
