(* Promoted to wo_core so the path-incremental DRF0 checker
   (Wo_core.Drf0_inc) can share the implementation; re-exported here so
   the race-detection layer's historical name keeps working. *)
include Wo_core.Vector_clock
