(** Vector clocks — an alias of {!Wo_core.Vector_clock}.

    The implementation moved to [wo_core] so the core checkers (notably
    the path-incremental DRF0 checker {!Wo_core.Drf0_inc}) can use it
    without a dependency cycle; this module re-exports it unchanged for
    the race-detection layer. *)

include module type of Wo_core.Vector_clock
