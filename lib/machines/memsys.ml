type fabric_kind =
  | Bus of { transfer_cycles : int }
  | Net of { base : int; jitter : int }
  | Net_spiky of {
      base : int;
      jitter : int;
      spike_probability : float;
      spike_factor : int;
    }
  | Net_fixed of { latency : int }

let latency_spec = function
  | Bus _ -> None
  | Net { base; jitter } ->
    Some (Wo_interconnect.Latency.Jittered { base; jitter })
  | Net_spiky { base; jitter; spike_probability; spike_factor } ->
    Some
      (Wo_interconnect.Latency.Spiky
         { base; jitter; spike_probability; spike_factor })
  | Net_fixed { latency } -> Some (Wo_interconnect.Latency.Fixed latency)

type op = {
  id : int;
  oproc : int;
  oseq : int;
  okind : Wo_core.Event.kind;
  oloc : Wo_core.Event.loc;
  mutable rv : Wo_core.Event.value option;
  mutable wv : Wo_core.Event.value option;
  mutable issued : int;
  mutable committed : int;
  mutable performed : int;
}

type port = {
  perform : int -> Proc_frontend.memory_op -> unit;
  fence : int -> unit;
  final_value : Wo_core.Event.loc -> Wo_core.Event.value;
  proc_status : int -> string;
  shared_status : unit -> string;
  debug_dump : unit -> string;
  check_drained : unit -> unit;
}
