(* Operational consistency-model backends behind the Memsys port.

   One builder covers the three relaxed hardware ordering models of
   {!Wo_core.Sync_model}: the differences are captured by how deposited
   writes are channelled to memory and by what synchronization drains.

   - TSO: one FIFO store buffer per processor.  A single entry is in
     flight at a time and the next is sent only after its
     acknowledgement, so writes perform in program order; reads overtake
     the buffer (W->R) and forward from the youngest pending write.
   - PSO: one channel per (processor, location).  Channels drain
     independently, so writes to different locations perform out of
     program order (W->W); per-location order is kept by the one-in-
     flight rule within each channel.
   - RA: channels as under PSO, with a bounded total window of pending
     writes.  Read-only synchronization (acquire) issues without
     draining; only write synchronization (release) waits for every
     pending write to perform, then for itself.

   Under TSO and PSO every synchronization operation is a full barrier:
   drain all channels, wait for every acknowledgement, then perform the
   operation waiting for its completion.  With [sync_barriers = false]
   synchronization is treated as data (the machine enforces nothing and
   is not weakly ordered, mirroring [Sync_none] elsewhere).

   The memory side is the flat module-interleaved store of {!Uncached};
   everything machine-generic lives in {!Driver}. *)

type kind =
  | Tso of { depth : int; drain_delay : int }
  | Pso of { depth : int; drain_delay : int }
  | Ra of { window : int; drain_delay : int }

type config = {
  fabric : Memsys.fabric_kind;
  kind : kind;
  sync_barriers : bool;
  modules : int;
  local_cost : int;
}

let hardware_of_kind = function
  | Tso _ -> Wo_core.Sync_model.tso_hw
  | Pso _ -> Wo_core.Sync_model.pso_hw
  | Ra _ -> Wo_core.Sync_model.ra_hw

let kind_name k = (hardware_of_kind k).Wo_core.Sync_model.hname

let drain_delay_of = function
  | Tso { drain_delay; _ } | Pso { drain_delay; _ } | Ra { drain_delay; _ } ->
    drain_delay

(* Messages between processors and memory modules (same protocol as the
   uncached machine: modules apply operations atomically in arrival
   order and reply with the application time). *)
type amsg =
  | M_read of { loc : Wo_core.Event.loc; proc : int; tag : int }
  | M_write of {
      loc : Wo_core.Event.loc;
      value : Wo_core.Event.value;
      proc : int;
      tag : int;
    }
  | M_rmw of {
      loc : Wo_core.Event.loc;
      f : Wo_core.Event.rmw;
      proc : int;
      tag : int;
    }
  | M_read_reply of { tag : int; value : Wo_core.Event.value; applied_at : int }
  | M_write_ack of { tag : int; applied_at : int }
  | M_rmw_reply of { tag : int; old : Wo_core.Event.value; applied_at : int }

let amsg_tag = function
  | M_read _ -> "Read"
  | M_write _ -> "Write"
  | M_rmw _ -> "Rmw"
  | M_read_reply _ -> "ReadReply"
  | M_write_ack _ -> "WriteAck"
  | M_rmw_reply _ -> "RmwReply"

type entry = { eloc : Wo_core.Event.loc; evalue : Wo_core.Event.value; etag : int }

(* One ordered path to memory: a FIFO of deposited writes with at most
   one in flight.  TSO gives each processor a single channel; PSO and RA
   give it one per location. *)
type chan = { cq : entry Queue.t; mutable inflight : bool }

type proc_ctx = {
  channels : (Wo_core.Event.loc, chan) Hashtbl.t;
      (* TSO maps every location to the one channel stored under key 0 *)
  last_value : (Wo_core.Event.loc, Wo_core.Event.value) Hashtbl.t;
  pending_at : (Wo_core.Event.loc, int) Hashtbl.t;
      (* deposited-but-unacknowledged writes per location *)
  mutable total_pending : int;
  mutable quiet_waiters : (unit -> unit) list;
  mutable room_waiters : (unit -> unit) list;
  mutable loc_waiters : (Wo_core.Event.loc * (unit -> unit)) list;
}

let build (config : config) (env : Driver.env) : Memsys.port =
  let engine = env.Driver.engine in
  let num_procs = env.Driver.num_procs in
  let module_node loc = num_procs + (loc mod config.modules) in
  let fabric = Driver.fabric env ~tag:amsg_tag config.fabric in
  let per_loc_channels =
    match config.kind with Tso _ -> false | Pso _ | Ra _ -> true
  in
  let acquire_relaxed =
    match config.kind with Tso _ | Pso _ -> false | Ra _ -> true
  in
  let drain_delay = max 0 (drain_delay_of config.kind) in
  (* Memory modules. *)
  let memory : (Wo_core.Event.loc, Wo_core.Event.value) Hashtbl.t =
    Hashtbl.create 64
  in
  let mem_read loc =
    match Hashtbl.find_opt memory loc with
    | Some v -> v
    | None -> Wo_prog.Program.initial_value env.Driver.program loc
  in
  for m = 0 to config.modules - 1 do
    let node = num_procs + m in
    fabric.Wo_interconnect.Fabric.connect ~node (fun msg ->
        match msg with
        | M_read { loc; proc; tag } ->
          fabric.Wo_interconnect.Fabric.send ~src:node ~dst:proc
            (M_read_reply
               { tag; value = mem_read loc; applied_at = Wo_sim.Engine.now engine })
        | M_write { loc; value; proc; tag } ->
          Hashtbl.replace memory loc value;
          fabric.Wo_interconnect.Fabric.send ~src:node ~dst:proc
            (M_write_ack { tag; applied_at = Wo_sim.Engine.now engine })
        | M_rmw { loc; f; proc; tag } ->
          let old = mem_read loc in
          Hashtbl.replace memory loc (Wo_core.Event.apply_rmw f old);
          fabric.Wo_interconnect.Fabric.send ~src:node ~dst:proc
            (M_rmw_reply { tag; old; applied_at = Wo_sim.Engine.now engine })
        | M_read_reply _ | M_write_ack _ | M_rmw_reply _ ->
          raise (Machine.Machine_error "memory module received a reply"))
  done;
  let ctxs =
    Array.init num_procs (fun _ ->
        {
          channels = Hashtbl.create 8;
          last_value = Hashtbl.create 8;
          pending_at = Hashtbl.create 8;
          total_pending = 0;
          quiet_waiters = [];
          room_waiters = [];
          loc_waiters = [];
        })
  in
  let next_tag = ref 0 in
  let by_tag : (int, Memsys.op * (Memsys.op -> unit)) Hashtbl.t =
    Hashtbl.create 64
  in
  Driver.on_reset env (fun () ->
      Hashtbl.reset memory;
      next_tag := 0;
      Hashtbl.reset by_tag;
      Array.iter
        (fun ctx ->
          Hashtbl.reset ctx.channels;
          Hashtbl.reset ctx.last_value;
          Hashtbl.reset ctx.pending_at;
          ctx.total_pending <- 0;
          ctx.quiet_waiters <- [];
          ctx.room_waiters <- [];
          ctx.loc_waiters <- [])
        ctxs);
  let stall p reason cycles = Driver.stall env ~proc:p reason cycles in
  let stat name = Wo_sim.Stats.incr env.Driver.stats name in
  let note_occupancy p ctx =
    Wo_sim.Stats.max_to env.Driver.stats "model.occupancy.max" ctx.total_pending;
    if Wo_obs.Recorder.enabled env.Driver.obs then
      Wo_obs.Recorder.counter env.Driver.obs ~cat:Wo_obs.Recorder.Proc ~track:p
        ~name:"model.buffer" ~ts:(Wo_sim.Engine.now engine)
        ~value:ctx.total_pending
  in
  let chan_of ctx loc =
    let key = if per_loc_channels then loc else 0 in
    match Hashtbl.find_opt ctx.channels key with
    | Some c -> c
    | None ->
      let c = { cq = Queue.create (); inflight = false } in
      Hashtbl.replace ctx.channels key c;
      c
  in
  let pending ctx loc =
    match Hashtbl.find_opt ctx.pending_at loc with Some n -> n | None -> 0
  in
  let quiet ctx = ctx.total_pending = 0 in
  let has_room ctx loc =
    match config.kind with
    | Tso { depth; _ } -> ctx.total_pending < depth
    | Ra { window; _ } -> ctx.total_pending < window
    | Pso { depth; _ } -> pending ctx loc < depth
  in
  let fire_waiters ctx =
    if quiet ctx then begin
      let ws = ctx.quiet_waiters in
      ctx.quiet_waiters <- [];
      List.iter (fun k -> k ()) ws
    end;
    let ws = ctx.room_waiters in
    ctx.room_waiters <- [];
    List.iter (fun k -> k ()) ws
  in
  let fire_loc_waiters ctx loc =
    if pending ctx loc = 0 then begin
      let ready, rest =
        List.partition (fun (l, _) -> l = loc) ctx.loc_waiters
      in
      ctx.loc_waiters <- rest;
      List.iter (fun (_, k) -> k ()) ready
    end
  in
  let on_quiet ctx k =
    if quiet ctx then k () else ctx.quiet_waiters <- k :: ctx.quiet_waiters
  in
  let send_with_reply p msg_of_tag (r : Memsys.op) k =
    let tag = !next_tag in
    incr next_tag;
    Hashtbl.replace by_tag tag (r, k);
    fabric.Wo_interconnect.Fabric.send ~src:p ~dst:(module_node r.Memsys.oloc)
      (msg_of_tag tag)
  in
  (* Drain one channel: send its oldest entry after the rest delay, and
     only send the next after the acknowledgement comes back, so entries
     of one channel perform in deposit order. *)
  let rec drain p chan =
    if not chan.inflight then
      match Queue.peek_opt chan.cq with
      | None -> ()
      | Some entry ->
        ignore (Queue.pop chan.cq);
        chan.inflight <- true;
        Wo_sim.Engine.schedule engine ~delay:drain_delay (fun () ->
            fabric.Wo_interconnect.Fabric.send ~src:p
              ~dst:(module_node entry.eloc)
              (M_write
                 {
                   loc = entry.eloc;
                   value = entry.evalue;
                   proc = p;
                   tag = entry.etag;
                 }))
  and write_acked p ctx loc =
    let chan = chan_of ctx loc in
    chan.inflight <- false;
    Hashtbl.replace ctx.pending_at loc (pending ctx loc - 1);
    ctx.total_pending <- ctx.total_pending - 1;
    stat "model.drains";
    note_occupancy p ctx;
    fire_loc_waiters ctx loc;
    drain p chan;
    fire_waiters ctx
  in
  let deposit p ctx (r : Memsys.op) v =
    let now = Wo_sim.Engine.now engine in
    let tag = !next_tag in
    incr next_tag;
    Hashtbl.replace by_tag tag (r, fun _ -> write_acked p ctx r.Memsys.oloc);
    Hashtbl.replace ctx.last_value r.Memsys.oloc v;
    Hashtbl.replace ctx.pending_at r.Memsys.oloc (pending ctx r.Memsys.oloc + 1);
    ctx.total_pending <- ctx.total_pending + 1;
    stat "model.deposits";
    note_occupancy p ctx;
    let chan = chan_of ctx r.Memsys.oloc in
    Queue.add { eloc = r.Memsys.oloc; evalue = v; etag = tag } chan.cq;
    r.Memsys.committed <- now;
    Driver.resume env p ~store:None ~delay:1;
    drain p chan
  in
  let perform p (op : Proc_frontend.memory_op) =
    let ctx = ctxs.(p) in
    let now () = Wo_sim.Engine.now engine in
    let sync =
      match op.Proc_frontend.kind with
      | Wo_core.Event.Sync_read | Wo_core.Event.Sync_write
      | Wo_core.Event.Sync_rmw ->
        true
      | Wo_core.Event.Data_read | Wo_core.Event.Data_write -> false
    in
    let barrier = sync && config.sync_barriers in
    let issue_read (r : Memsys.op) ~reason =
      let t0 = now () in
      send_with_reply p
        (fun tag -> M_read { loc = r.Memsys.oloc; proc = p; tag })
        r
        (fun r ->
          stall p reason (now () - t0);
          let store =
            match (op.Proc_frontend.dest, r.Memsys.rv) with
            | Some reg, Some v -> Some (reg, v)
            | _ -> None
          in
          Driver.resume env p ~store ~delay:1)
    in
    let issue_rmw (r : Memsys.op) ~reason f =
      let t0 = now () in
      send_with_reply p
        (fun tag -> M_rmw { loc = r.Memsys.oloc; f; proc = p; tag })
        r
        (fun r ->
          stall p reason (now () - t0);
          (match (r.Memsys.rv, op.Proc_frontend.payload) with
          | Some old, `Rmw d -> r.Memsys.wv <- Some (Wo_core.Event.apply_rmw d old)
          | _ -> ());
          let store =
            match (op.Proc_frontend.dest, r.Memsys.rv) with
            | Some reg, Some v -> Some (reg, v)
            | _ -> None
          in
          Driver.resume env p ~store ~delay:1)
    in
    (* A synchronization write (or a data write on a machine that waits)
       goes straight to its module; the processor resumes at the
       acknowledgement. *)
    let issue_direct_write (r : Memsys.op) v ~reason =
      let t0 = now () in
      Hashtbl.replace ctx.pending_at r.Memsys.oloc (pending ctx r.Memsys.oloc + 1);
      ctx.total_pending <- ctx.total_pending + 1;
      send_with_reply p
        (fun tag -> M_write { loc = r.Memsys.oloc; value = v; proc = p; tag })
        r
        (fun r ->
          Hashtbl.replace ctx.pending_at r.Memsys.oloc
            (pending ctx r.Memsys.oloc - 1);
          ctx.total_pending <- ctx.total_pending - 1;
          fire_loc_waiters ctx r.Memsys.oloc;
          fire_waiters ctx;
          stall p reason (now () - t0);
          Driver.resume env p ~store:None ~delay:1)
    in
    let forward_read (r : Memsys.op) v =
      stat "model.forwards";
      r.Memsys.rv <- Some v;
      r.Memsys.committed <- now ();
      r.Memsys.performed <- now ();
      let store = Option.map (fun reg -> (reg, v)) op.Proc_frontend.dest in
      Driver.resume env p ~store ~delay:1
    in
    let go () =
      let r = Driver.new_op env ~proc:p op in
      match op.Proc_frontend.payload with
      | `Read ->
        if pending ctx r.Memsys.oloc > 0 then
          (* store-to-load forwarding: the youngest pending write wins *)
          forward_read r (Hashtbl.find ctx.last_value r.Memsys.oloc)
        else
          issue_read r
            ~reason:
              (if sync then Wo_obs.Stall.Sync_commit else Wo_obs.Stall.Read_miss)
      | `Rmw f ->
        let reason =
          if sync then Wo_obs.Stall.Sync_commit else Wo_obs.Stall.Rmw_wait
        in
        if pending ctx r.Memsys.oloc > 0 then begin
          let t0 = now () in
          ctx.loc_waiters <-
            ( r.Memsys.oloc,
              fun () ->
                stall p Wo_obs.Stall.Rmw_order (now () - t0);
                issue_rmw r ~reason f )
            :: ctx.loc_waiters
        end
        else issue_rmw r ~reason f
      | `Write v ->
        if barrier then
          issue_direct_write r v ~reason:Wo_obs.Stall.Write_ack
        else if has_room ctx r.Memsys.oloc then deposit p ctx r v
        else begin
          let t0 = now () in
          let rec retry () =
            if has_room ctx r.Memsys.oloc then begin
              stall p Wo_obs.Stall.Buffer_full (now () - t0);
              deposit p ctx r v
            end
            else ctx.room_waiters <- retry :: ctx.room_waiters
          in
          ctx.room_waiters <- retry :: ctx.room_waiters
        end
    in
    let acquire =
      match op.Proc_frontend.payload with `Read -> acquire_relaxed | _ -> false
    in
    if barrier && not acquire then begin
      (* Release barrier: every pending write of this processor performs
         before the synchronization is issued. *)
      if not (quiet ctx) then stat "model.barrier_drains";
      let t0 = Wo_sim.Engine.now engine in
      on_quiet ctx (fun () ->
          stall p Wo_obs.Stall.Release_gate (Wo_sim.Engine.now engine - t0);
          go ())
    end
    else go ()
  in
  Array.iteri
    (fun p _ctx ->
      fabric.Wo_interconnect.Fabric.connect ~node:p (fun msg ->
          let complete tag fill =
            match Hashtbl.find_opt by_tag tag with
            | None -> raise (Machine.Machine_error "unknown reply tag")
            | Some (r, k) ->
              Hashtbl.remove by_tag tag;
              fill r;
              k r
          in
          match msg with
          | M_read_reply { tag; value; applied_at } ->
            complete tag (fun (r : Memsys.op) ->
                r.Memsys.rv <- Some value;
                r.Memsys.committed <- applied_at;
                r.Memsys.performed <- applied_at)
          | M_rmw_reply { tag; old; applied_at } ->
            complete tag (fun (r : Memsys.op) ->
                r.Memsys.rv <- Some old;
                r.Memsys.committed <- applied_at;
                r.Memsys.performed <- applied_at)
          | M_write_ack { tag; applied_at } ->
            complete tag (fun (r : Memsys.op) ->
                if r.Memsys.committed < 0 then r.Memsys.committed <- applied_at;
                r.Memsys.performed <- applied_at)
          | M_read _ | M_write _ | M_rmw _ ->
            raise (Machine.Machine_error "processor received a request")))
    ctxs;
  let fence p =
    let ctx = ctxs.(p) in
    let t0 = Wo_sim.Engine.now engine in
    on_quiet ctx (fun () ->
        Driver.stall env ~proc:p Wo_obs.Stall.Counter_drain
          (Wo_sim.Engine.now engine - t0);
        Driver.resume env p ~store:None ~delay:1)
  in
  let proc_status p =
    let ctx = ctxs.(p) in
    let locs =
      Hashtbl.fold
        (fun loc n acc -> if n > 0 then (loc, n) :: acc else acc)
        ctx.pending_at []
      |> List.sort compare
      |> List.map (fun (l, n) -> Printf.sprintf "%d:%d" l n)
      |> String.concat ","
    in
    Printf.sprintf "pending=%d%s" ctx.total_pending
      (if locs = "" then "" else " [" ^ locs ^ "]")
  in
  let debug_dump () =
    let b = Buffer.create 256 in
    Array.iteri
      (fun p ctx ->
        Buffer.add_string b
          (Printf.sprintf "P%d: %s quiet=%b\n" p (proc_status p) (quiet ctx)))
      ctxs;
    Buffer.add_string b
      (Printf.sprintf "unmatched reply tags: %d\n" (Hashtbl.length by_tag));
    Buffer.contents b
  in
  let check_drained () =
    Array.iteri
      (fun p ctx ->
        if not (quiet ctx) then
          raise
            (Machine.Machine_error
               (Printf.sprintf "%s: P%d has undrained writes" env.Driver.name p)))
      ctxs
  in
  {
    Memsys.perform;
    fence;
    final_value = mem_read;
    proc_status;
    shared_status = (fun () -> "");
    debug_dump;
    check_drained;
  }

let make ~name ~description ~sequentially_consistent ~weakly_ordered_drf0
    (config : config) : Machine.t =
  if config.modules <= 0 then
    invalid_arg "Ordering.make: modules must be positive";
  (match config.kind with
  | Tso { depth; _ } | Pso { depth; _ } ->
    if depth <= 0 then invalid_arg "Ordering.make: depth must be positive"
  | Ra { window; _ } ->
    if window <= 0 then invalid_arg "Ordering.make: window must be positive");
  Driver.make ~name ~description ~sequentially_consistent ~weakly_ordered_drf0
    ~local_cost:config.local_cost ~build:(build config)
