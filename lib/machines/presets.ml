let default_bus = Coherent.Bus { transfer_cycles = 2 }
let default_net = Coherent.default_net

(* --- uncached machines (Figure 1, configurations 1 and 2) ----------------- *)

let sc_bus_nocache_spec =
  {
    Spec.name = "sc-bus-nocache";
    description =
      "Shared bus, no caches, no write buffer; writes wait for their \
       acknowledgement.  Sequentially consistent.";
    fabric = default_bus;
    memory = Spec.Uncached { write_buffer = None; wait_write_ack = true; modules = 1 };
    model = Spec.Model_sc;
    sync = Spec.Sync_fence;
    local_cost = 1;
  }

let bus_nocache_wb_spec =
  {
    Spec.name = "bus-nocache-wb";
    description =
      "Shared bus, no caches, FIFO write buffer with read bypass and \
       store-to-load forwarding (Figure 1, configuration 1).  \
       Synchronization drains the buffer, so the machine is weakly ordered \
       w.r.t. DRF0 but not sequentially consistent.";
    fabric = default_bus;
    memory =
      Spec.Uncached
        {
          write_buffer =
            Some
              {
                Uncached.depth = 8;
                read_bypass = true;
                forwarding = true;
                drain_delay = 6;
              };
          wait_write_ack = false;
          modules = 1;
        };
    model = Spec.Model_sc;
    sync = Spec.Sync_fence;
    local_cost = 1;
  }

let net_nocache_weak_spec =
  {
    Spec.name = "net-nocache";
    description =
      "General interconnection network, no caches, fire-and-forget writes: \
       accesses issued in program order reach the memory modules out of \
       order (Figure 1, configuration 2).  Not weakly ordered: \
       synchronization does not wait for outstanding writes.";
    fabric = default_net;
    memory =
      Spec.Uncached { write_buffer = None; wait_write_ack = false; modules = 4 };
    model = Spec.Model_sc;
    sync = Spec.Sync_none;
    local_cost = 1;
  }

let net_nocache_rp3_spec =
  {
    Spec.name = "net-nocache-rp3";
    description =
      "General network, no caches; every access waits for its \
       acknowledgement before the next is issued (the RP3 discipline for \
       shared variables).  Sequentially consistent.";
    fabric = default_net;
    memory =
      Spec.Uncached { write_buffer = None; wait_write_ack = true; modules = 4 };
    model = Spec.Model_sc;
    sync = Spec.Sync_fence;
    local_cost = 1;
  }

let rp3_fence_spec =
  {
    Spec.name = "rp3-fence";
    description =
      "General network, no caches, fire-and-forget writes, but \
       synchronization waits for all outstanding acknowledgements (the \
       RP3 fence option the paper cites as functioning as a weakly \
       ordered system).";
    fabric = default_net;
    memory =
      Spec.Uncached { write_buffer = None; wait_write_ack = false; modules = 4 };
    model = Spec.Model_sc;
    sync = Spec.Sync_fence;
    local_cost = 1;
  }

(* --- cached machines (Figure 1 configurations 3-4; Sections 5-6) ---------- *)

let sc_dir_spec =
  {
    Spec.name = "sc-dir";
    description =
      "Directory-based cache-coherent system where a processor issues an \
       access only after all its previous accesses are globally performed \
       (the Scheurich-Dubois sufficient condition).  Sequentially \
       consistent.";
    fabric = default_net;
    memory = Spec.default_cached;
    model = Spec.Model_sc;
    sync = Spec.Sync_sc;
    local_cost = 1;
  }

let bus_cache_spec =
  {
    Spec.name = "bus-cache";
    description =
      "Bus-based cache-coherent system where reads may issue while a \
       previous write's invalidations are outstanding (Figure 1, \
       configuration 3).  Coherent but not sequentially consistent.";
    fabric = default_bus;
    memory = Spec.default_cached;
    model = Spec.Model_sc;
    sync = Spec.Sync_none;
    local_cost = 1;
  }

let net_cache_spec =
  {
    Spec.name = "net-cache";
    description =
      "Directory cache-coherent system over a general network with no \
       ordering discipline at all: accesses issue and reach the directory \
       in program order but do not complete in program order (Figure 1, \
       configuration 4).";
    fabric = default_net;
    memory = Spec.default_cached;
    model = Spec.Model_sc;
    sync = Spec.Sync_none;
    local_cost = 1;
  }

let wo_old_spec =
  (* Definition-1 hardware may serve read-only synchronization from shared
     copies (Test-and-TestAndSet spinning was the recommended idiom for such
     machines); its correctness comes from the processor-side gp gates, not
     from serializing synchronization reads.  Only the Section-5.3
     implementation must treat all synchronization as writes, which is
     exactly the Section-6 comparison this repository reproduces. *)
  {
    Spec.name = "wo-old";
    description =
      "Definition-1 (Dubois/Scheurich/Briggs) weakly ordered hardware: a \
       processor stalls at a synchronization operation until all its \
       previous accesses are globally performed, and stalls after it until \
       the synchronization is globally performed.";
    fabric = default_net;
    memory = Spec.default_cached;
    model = Spec.Model_sc;
    sync = Spec.Sync_def1_stall;
    local_cost = 1;
  }

let wo_new_spec =
  {
    Spec.name = "wo-new";
    description =
      "The paper's Section-5.3 implementation: the processor waits only \
       for its synchronization operation to commit; the outstanding-access \
       counter and per-line reserve bits stall the next processor that \
       synchronizes on the same location instead.  Violates conditions 2 \
       and 3 of Definition 1, weakly ordered w.r.t. DRF0 by Definition 2.";
    fabric = default_net;
    memory = Spec.default_cached;
    model = Spec.Model_sc;
    sync = Spec.Sync_reserve_bit;
    local_cost = 1;
  }

let wo_new_drf1_spec =
  {
    Spec.name = "wo-new-drf1";
    description =
      "The Section-6 refinement of the Section-5.3 implementation: \
       read-only synchronization operations take shared copies and set no \
       reserve bit, so Test-and-TestAndSet spinning is not serialized.";
    fabric = default_net;
    memory = Spec.default_cached;
    model = Spec.Model_sc;
    sync = Spec.Sync_drf1_two_level;
    local_cost = 1;
  }

let ideal_spec =
  {
    Spec.name = "ideal";
    description = Ideal.machine.Machine.description;
    fabric = default_bus;
    memory = Spec.Ideal;
    model = Spec.Model_sc;
    sync = Spec.Sync_sc;
    local_cost = 1;
  }

(* --- relaxed ordering-model machines (the consistency-model zoo) ----------- *)

let tso_wb_spec =
  {
    Spec.name = "tso-wb";
    description =
      "TSO: shared bus, no caches, per-processor FIFO store buffer with \
       store-to-load forwarding.  Reads overtake pending writes (W->R); \
       writes drain in program order; synchronization drains the buffer.";
    fabric = default_bus;
    memory =
      Spec.Uncached { write_buffer = None; wait_write_ack = false; modules = 1 };
    model = Spec.Model_tso { depth = 8; drain_delay = 6 };
    sync = Spec.Sync_fence;
    local_cost = 1;
  }

let pso_wb_spec =
  {
    Spec.name = "pso-wb";
    description =
      "PSO: heavy-tailed network, no caches, per-location store channels \
       draining independently (W->R and W->W relaxed); synchronization \
       drains every channel.  The spiky fabric makes the write-write \
       reordering readily observable.";
    fabric =
      Coherent.Net_spiky
        { base = 4; jitter = 6; spike_probability = 0.2; spike_factor = 8 };
    memory =
      Spec.Uncached { write_buffer = None; wait_write_ack = false; modules = 4 };
    model = Spec.Model_pso { depth = 8; drain_delay = 0 };
    sync = Spec.Sync_fence;
    local_cost = 1;
  }

let ra_window_spec =
  {
    Spec.name = "ra-window";
    description =
      "Release/acquire: general network, no caches, per-location store \
       channels in a bounded window.  Read-only synchronization (acquire) \
       issues without draining; write synchronization (release) drains \
       everything first.";
    fabric = default_net;
    memory =
      Spec.Uncached { write_buffer = None; wait_write_ack = false; modules = 4 };
    model = Spec.Model_ra { window = 8; drain_delay = 6 };
    sync = Spec.Sync_fence;
    local_cost = 1;
  }

let model_specs = [ tso_wb_spec; pso_wb_spec; ra_window_spec ]

let specs =
  [
    ideal_spec;
    sc_bus_nocache_spec;
    bus_nocache_wb_spec;
    net_nocache_weak_spec;
    net_nocache_rp3_spec;
    rp3_fence_spec;
    sc_dir_spec;
    bus_cache_spec;
    net_cache_spec;
    wo_old_spec;
    wo_new_spec;
    wo_new_drf1_spec;
  ]

let spec_of name =
  List.find_opt (fun (s : Spec.t) -> s.Spec.name = name) (specs @ model_specs)

(* --- the machines, all built from their specs ------------------------------ *)

let ideal = Spec.build ideal_spec
let sc_bus_nocache = Spec.build sc_bus_nocache_spec
let bus_nocache_wb = Spec.build bus_nocache_wb_spec
let net_nocache_weak = Spec.build net_nocache_weak_spec
let net_nocache_rp3 = Spec.build net_nocache_rp3_spec
let rp3_fence = Spec.build rp3_fence_spec
let sc_dir = Spec.build sc_dir_spec
let bus_cache_wb = Spec.build bus_cache_spec
let net_cache_relaxed = Spec.build net_cache_spec
let wo_old = Spec.build wo_old_spec
let wo_new = Spec.build wo_new_spec
let wo_new_drf1 = Spec.build wo_new_drf1_spec
let tso_wb = Spec.build tso_wb_spec
let pso_wb = Spec.build pso_wb_spec
let ra_window = Spec.build ra_window_spec
let models = [ tso_wb; pso_wb; ra_window ]

(* The driver configs the cached specs denote, for experiments that vary
   parameters (e.g. Figure 3's slow invalidations) and rebuild with
   {!Coherent.make}. *)
let sc_dir_config = Spec.cached_config sc_dir_spec
let bus_cache_config = Spec.cached_config bus_cache_spec
let net_cache_config = Spec.cached_config net_cache_spec
let wo_old_config = Spec.cached_config wo_old_spec
let wo_new_config = Spec.cached_config wo_new_spec
let wo_new_drf1_config = Spec.cached_config wo_new_drf1_spec

let wo_new_ablated ?(disable_reserve = false) ?(disable_sync_commit_wait = false)
    () =
  let cache =
    {
      Wo_cache.Cache_ctrl.default_config with
      reserve_enabled = not disable_reserve;
    }
  in
  let policy =
    if disable_sync_commit_wait then
      { Coherent.def2_policy with sync_wait = Coherent.Sync_wait_none }
    else Coherent.def2_policy
  in
  let tags =
    (if disable_reserve then [ "no-reserve" ] else [])
    @ if disable_sync_commit_wait then [ "no-commit-wait" ] else []
  in
  Coherent.make
    ~name:(String.concat "+" ("wo-new" :: tags))
    ~description:
      "Section-5.3 implementation with mechanisms disabled for ablation."
    ~sequentially_consistent:false
    ~weakly_ordered_drf0:(not (disable_reserve || disable_sync_commit_wait))
    { wo_new_config with policy; cache }

let all =
  [
    ideal;
    sc_bus_nocache;
    bus_nocache_wb;
    net_nocache_weak;
    net_nocache_rp3;
    rp3_fence;
    sc_dir;
    bus_cache_wb;
    net_cache_relaxed;
    wo_old;
    wo_new;
    wo_new_drf1;
  ]

let weakly_ordered =
  List.filter (fun (m : Machine.t) -> m.Machine.weakly_ordered_drf0) all

let sequentially_consistent =
  List.filter (fun (m : Machine.t) -> m.Machine.sequentially_consistent) all

let find name =
  List.find_opt (fun (m : Machine.t) -> m.Machine.name = name) (all @ models)
