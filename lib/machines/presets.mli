(** The machine zoo.

    Every system the paper discusses, ready to run:

    {ul
    {- Figure-1 configurations (each with the performance feature that
       breaks sequential consistency): {!bus_nocache_wb},
       {!net_nocache_weak}, {!bus_cache_wb}, {!net_cache_relaxed};}
    {- sequentially consistent baselines: {!sc_bus_nocache},
       {!net_nocache_rp3} (RP3-style per-access acknowledgements),
       {!sc_dir} (Scheurich–Dubois condition on the directory system);}
    {- weakly ordered machines: {!rp3_fence} (the RP3 fence option the
       paper cites as functioning as a weakly ordered system),
       {!wo_old} (Definition-1 hardware), {!wo_new} (the Section-5.3
       implementation), {!wo_new_drf1} (Section-6 refinement).}}

    The [*_config] values are exposed so experiments can vary parameters
    (e.g. Figure 3's slow invalidations) and rebuild a machine with
    {!Coherent.make}. *)

val sc_bus_nocache : Machine.t
val bus_nocache_wb : Machine.t
val net_nocache_weak : Machine.t
val net_nocache_rp3 : Machine.t
val rp3_fence : Machine.t
val sc_dir : Machine.t
val bus_cache_wb : Machine.t
val net_cache_relaxed : Machine.t
val wo_old : Machine.t
val wo_new : Machine.t
val wo_new_drf1 : Machine.t
val ideal : Machine.t

val tso_wb : Machine.t
val pso_wb : Machine.t
val ra_window : Machine.t

val models : Machine.t list
(** The relaxed consistency-model zoo ({!Ordering} backends): [tso-wb],
    [pso-wb], [ra-window].  Kept out of {!all} so the historical preset
    roster (and everything keyed on it) is unchanged; {!find} and
    {!spec_of} search both. *)

val specs : Spec.t list
(** One spec per preset, idealized machine first; [all] is exactly
    [List.map Spec.build specs]. *)

val model_specs : Spec.t list
(** One spec per {!models} machine. *)

val spec_of : string -> Spec.t option
(** Look up a preset's or model machine's spec by machine name. *)

val ideal_spec : Spec.t
val sc_bus_nocache_spec : Spec.t
val bus_nocache_wb_spec : Spec.t
val net_nocache_weak_spec : Spec.t
val net_nocache_rp3_spec : Spec.t
val rp3_fence_spec : Spec.t
val sc_dir_spec : Spec.t
val bus_cache_spec : Spec.t
val net_cache_spec : Spec.t
val wo_old_spec : Spec.t
val wo_new_spec : Spec.t
val wo_new_drf1_spec : Spec.t
val tso_wb_spec : Spec.t
val pso_wb_spec : Spec.t
val ra_window_spec : Spec.t

val sc_dir_config : Coherent.config
val bus_cache_config : Coherent.config
val net_cache_config : Coherent.config
val wo_old_config : Coherent.config
val wo_new_config : Coherent.config
val wo_new_drf1_config : Coherent.config

val wo_new_ablated :
  ?disable_reserve:bool -> ?disable_sync_commit_wait:bool -> unit -> Machine.t
(** The Section-5.3 machine with individual mechanisms removed, for the
    ablation experiment (E7): [disable_reserve] removes the reserve-bit
    stall (condition 5), [disable_sync_commit_wait] lets the processor run
    past an uncommitted synchronization operation (condition 4). *)

val all : Machine.t list
(** Every preset, idealized machine first. *)

val weakly_ordered : Machine.t list
(** The machines expected to appear SC to DRF0 programs. *)

val sequentially_consistent : Machine.t list

val find : string -> Machine.t option
(** Look up a preset or model machine by [Machine.name]. *)
