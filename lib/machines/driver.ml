type env = {
  name : string;
  engine : Wo_sim.Engine.t;
  stats : Wo_sim.Stats.t;
  stalls : Wo_obs.Stall.t;
  taps : Wo_obs.Tap.t;
  mutable obs : Wo_obs.Recorder.t;
  rng : Wo_sim.Rng.t;
  mutable program : Wo_prog.Program.t;
  num_procs : int;
  mutable frontends : Proc_frontend.t array;
  mutable next_op_id : int;
  mutable ops_rev : Memsys.op list;
  mutable reset_hooks : (unit -> unit) list;  (* reverse registration order *)
}

let now env = Wo_sim.Engine.now env.engine

let on_reset env hook = env.reset_hooks <- hook :: env.reset_hooks

let stall_at env ~proc reason ~until cycles =
  Wo_obs.Stall.add env.stalls ~sink:env.obs ~now:until ~proc reason cycles

let stall env ~proc reason cycles =
  stall_at env ~proc reason ~until:(now env) cycles

let resume env p ~store ~delay = Proc_frontend.resume env.frontends.(p) ~store ~delay

let new_op env ~proc (op : Proc_frontend.memory_op) : Memsys.op =
  let id = env.next_op_id in
  env.next_op_id <- id + 1;
  let r =
    {
      Memsys.id;
      oproc = proc;
      oseq = op.Proc_frontend.seq;
      okind = op.Proc_frontend.kind;
      oloc = op.Proc_frontend.loc;
      rv = None;
      wv =
        (match op.Proc_frontend.payload with
        | `Write v -> Some v
        | `Read | `Rmw _ -> None);
      issued = now env;
      committed = -1;
      performed = -1;
    }
  in
  env.ops_rev <- r :: env.ops_rev;
  r

let fabric env ~tag ?(slow_procs = []) ?(slow_routes = []) kind =
  let tap msg ~src:_ ~dst:_ ~latency =
    Wo_obs.Tap.record env.taps ~name:(tag msg) ~latency
  in
  match kind with
  | Memsys.Bus { transfer_cycles } ->
    let f =
      Wo_interconnect.Fabric.of_bus
        (Wo_interconnect.Bus.create ~engine:env.engine ~stats:env.stats ~tap
           ~transfer_cycles ())
    in
    on_reset env (fun () -> f.Wo_interconnect.Fabric.reset ());
    f
  | Memsys.Net _ | Memsys.Net_spiky _ | Memsys.Net_fixed _ ->
    (* The network gets its own stream, split at fabric construction —
       the split position is part of every machine's reproducibility
       contract, so keep it here and nowhere else.  On session reset
       the parent is reseeded and the hooks replay the splits in
       registration (= construction) order, so the stream is restored
       to exactly its fresh-construction state. *)
    let net_rng = Wo_sim.Rng.split env.rng in
    let latency =
      Wo_interconnect.Latency.of_spec net_rng
        (Option.get (Memsys.latency_spec kind))
    in
    let latency =
      if slow_procs = [] then latency
      else Wo_interconnect.Latency.scale_nodes slow_procs latency
    in
    let latency =
      if slow_routes = [] then latency
      else Wo_interconnect.Latency.scale_routes slow_routes latency
    in
    let f =
      Wo_interconnect.Fabric.of_network
        (Wo_interconnect.Network.create ~engine:env.engine ~stats:env.stats ~tap
           ~latency ())
    in
    on_reset env (fun () ->
        f.Wo_interconnect.Fabric.reset ();
        Wo_sim.Rng.split_into env.rng net_rng);
    f

(* Watchdog diagnostics: every machine reports the rich form — frontend
   positions plus whatever protocol detail the port supplies. *)
let watchdog_report env (port : Memsys.port) =
  let positions =
    Array.to_list env.frontends
    |> List.mapi (fun p fe ->
           let proto = port.Memsys.proc_status p in
           Printf.sprintf "P%d[%s%s]" p
             (Proc_frontend.current_position fe)
             (if proto = "" then "" else " " ^ proto))
    |> String.concat " "
  in
  let shared = port.Memsys.shared_status () in
  Printf.sprintf
    "%s: simulation event limit exceeded (livelock?) at t=%d: %s%s" env.name
    (now env) positions
    (if shared = "" then "" else " " ^ shared)

let build_env ~name ~seed (program : Wo_prog.Program.t) =
  {
    name;
    engine = Wo_sim.Engine.create ();
    stats = Wo_sim.Stats.create ();
    stalls = Wo_obs.Stall.create ();
    taps = Wo_obs.Tap.create ();
    obs = Wo_obs.Recorder.active ();
    rng = Wo_sim.Rng.make seed;
    program;
    num_procs = Wo_prog.Program.num_procs program;
    frontends = [||];
    next_op_id = 0;
    ops_rev = [];
    reset_hooks = [];
  }

(* Restore a built environment to exactly the state a fresh
   [build_env]+[build] at this seed would produce: clear the engine
   (watchdog-aborted runs leave parked closures), observability and
   operation log; reseed the root RNG; replay component hooks in
   registration order (draw replay + in-place component clears). *)
let reset env ~seed ~(program : Wo_prog.Program.t) =
  Wo_sim.Engine.clear env.engine;
  Wo_sim.Stats.clear env.stats;
  Wo_obs.Stall.clear env.stalls;
  Wo_obs.Tap.clear env.taps;
  env.obs <- Wo_obs.Recorder.active ();
  Wo_sim.Rng.reseed env.rng seed;
  env.program <- program;
  env.next_op_id <- 0;
  env.ops_rev <- [];
  List.iter (fun f -> f ()) (List.rev env.reset_hooks)

(* The run loop and result assembly, shared by the fresh path and
   sessions.  [copy_obs] deep-copies the mutable observability state
   into the result so a later in-place reset cannot disturb it; the
   copies Marshal identically to the originals. *)
let execute env (port : Memsys.port) finish_times ~copy_obs =
  Array.iter Proc_frontend.start env.frontends;
  (match Wo_sim.Engine.run env.engine with
  | `Idle -> ()
  | `Time_limit | `Event_limit ->
    raise (Machine.Machine_error (watchdog_report env port)));
  Array.iteri
    (fun p fe ->
      if not (Proc_frontend.finished fe) then
        raise
          (Machine.Machine_error
             (Printf.sprintf "%s: deadlock: P%d %s\n%s" env.name p
                (Proc_frontend.current_position fe)
                (port.Memsys.debug_dump ()))))
    env.frontends;
  port.Memsys.check_drained ();
  let program = env.program in
  let memory =
    List.map
      (fun loc -> (loc, port.Memsys.final_value loc))
      (Wo_prog.Program.locs program)
  in
  let observable p r =
    match program.Wo_prog.Program.observable with
    | None -> true
    | Some l -> List.mem (p, r) l
  in
  let registers =
    Array.to_list env.frontends
    |> List.concat_map (fun fe ->
           let p = Proc_frontend.proc fe in
           Proc_frontend.registers fe
           |> List.filter (fun (r, _) -> observable p r)
           |> List.map (fun (r, v) -> (p, r, v)))
  in
  let trace = Wo_sim.Trace.create () in
  List.iter
    (fun (r : Memsys.op) ->
      if r.committed < 0 || r.performed < 0 then
        raise
          (Machine.Machine_error
             (Printf.sprintf
                "%s: operation %d (P%d seq %d %s loc %d, committed=%d \
                 performed=%d) never completed\n%s"
                env.name r.id r.oproc r.oseq
                (Format.asprintf "%a" Wo_core.Event.pp_kind r.okind)
                r.oloc r.committed r.performed
                (port.Memsys.debug_dump ())));
      if Wo_obs.Recorder.enabled env.obs then
        Wo_obs.Recorder.span env.obs ~cat:Wo_obs.Recorder.Proc ~track:r.oproc
          ~name:
            (Format.asprintf "%a.%a" Wo_core.Event.pp_kind r.okind
               Wo_core.Event.pp_loc r.oloc)
          ~ts:r.issued
          ~dur:(max 0 (r.performed - r.issued));
      Wo_sim.Trace.add trace
        {
          Wo_sim.Trace.event =
            Wo_core.Event.make ~id:r.id ~proc:r.oproc ~seq:r.oseq ~kind:r.okind
              ~loc:r.oloc ?read_value:r.rv ?written_value:r.wv ();
          issued = r.issued;
          committed = r.committed;
          performed = r.performed;
        })
    (List.rev env.ops_rev);
  Machine.make_result
    ~outcome:(Wo_prog.Outcome.make ~registers ~memory)
    ~trace ~cycles:(now env)
    ~proc_finish:(if copy_obs then Array.copy finish_times else finish_times)
    ~stats:(Wo_sim.Stats.to_list env.stats)
    ~stalls:(if copy_obs then Wo_obs.Stall.copy env.stalls else env.stalls)
    ~taps:(if copy_obs then Wo_obs.Tap.copy env.taps else env.taps)
    ()

let frontend_perform (port : Memsys.port) p = function
  | Proc_frontend.Access op -> port.Memsys.perform p op
  | Proc_frontend.Fence -> port.Memsys.fence p

let run ~name ~local_cost ~build ~seed (program : Wo_prog.Program.t) :
    Machine.result =
  Machine.note_run ();
  let env = build_env ~name ~seed program in
  let port = build env in
  let finish_times = Array.make env.num_procs (-1) in
  env.frontends <-
    Array.init env.num_procs (fun p ->
        Proc_frontend.create ~engine:env.engine ~proc:p
          ~code:program.Wo_prog.Program.threads.(p)
          ~local_cost
          ~perform:(frontend_perform port p)
          ~on_finish:(fun () -> finish_times.(p) <- now env)
          ());
  execute env port finish_times ~copy_obs:false

(* --- sessions --------------------------------------------------------------- *)

type session_state = {
  senv : env;
  sport : Memsys.port;
  sfinish : int array;
  (* Current frontend binding; compared physically so rebinding the same
     program object is free. *)
  mutable sprog : Wo_prog.Program.t;
  mutable sart : Wo_prog.Prog_compile.t option;
}

let new_session ~name ~local_cost ~build (engine : Machine.engine) :
    Machine.session =
  let state : session_state option ref = ref None in
  let session_run ~seed ?compiled program =
    Machine.note_run ();
    let num_procs = Wo_prog.Program.num_procs program in
    (* Resolve the artifact for this run under the requested engine,
       reusing the previous compilation while the same program object
       stays bound. *)
    let art =
      match engine with
      | Machine.Ast -> None
      | Machine.Compiled -> (
        match compiled with
        | Some _ -> compiled
        | None -> (
          match !state with
          | Some st when st.sprog == program && st.senv.num_procs = num_procs
            ->
            st.sart
          | _ -> Wo_prog.Prog_compile.compile program))
    in
    if engine = Machine.Compiled && art = None then
      Machine.note_compile_fallback ();
    let st =
      match !state with
      | Some st when st.senv.num_procs = num_procs ->
        Machine.note_session_reuse ();
        st
      | _ ->
        (* First run, or a different machine width: (re)build the whole
           stack — ports and frontends capture [num_procs] in their
           closures and topology. *)
        let env = build_env ~name ~seed program in
        let port = build env in
        let finish = Array.make num_procs (-1) in
        env.frontends <-
          Array.init num_procs (fun p ->
              Proc_frontend.create ~engine:env.engine ~proc:p
                ~code:program.Wo_prog.Program.threads.(p)
                ~local_cost ?compiled:art
                ~perform:(frontend_perform port p)
                ~on_finish:(fun () -> finish.(p) <- now env)
                ());
        let st =
          { senv = env; sport = port; sfinish = finish; sprog = program;
            sart = art }
        in
        state := Some st;
        st
    in
    let env = st.senv in
    (* Reset unconditionally — also right after build, so the first run
       goes down the same path, and after a [Machine_error] run, whose
       debris (parked engine events, partial protocol state) must not
       leak into the next seed. *)
    reset env ~seed ~program;
    let same_binding =
      st.sprog == program
      && (match (st.sart, art) with
         | None, None -> true
         | Some a, Some b -> a == b
         | _ -> false)
    in
    if same_binding then Array.iter Proc_frontend.reset env.frontends
    else begin
      Array.iteri
        (fun p fe ->
          Proc_frontend.rebind fe ?compiled:art
            program.Wo_prog.Program.threads.(p))
        env.frontends;
      st.sprog <- program;
      st.sart <- art
    end;
    Array.fill st.sfinish 0 (Array.length st.sfinish) (-1);
    execute env st.sport st.sfinish ~copy_obs:true
  in
  { Machine.session_machine = name; session_engine = engine; session_run }

let make ~name ~description ~sequentially_consistent ~weakly_ordered_drf0
    ~local_cost ~build : Machine.t =
  {
    Machine.name;
    description;
    sequentially_consistent;
    weakly_ordered_drf0;
    run = (fun ~seed program -> run ~name ~local_cost ~build ~seed program);
    new_session = (fun engine -> new_session ~name ~local_cost ~build engine);
  }
