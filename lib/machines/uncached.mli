(** Cache-less machines (Figure 1, configurations 1 and 2).

    Processors talk to memory modules over a bus or a general network.
    The knobs correspond exactly to the performance features the paper
    blames for the Figure-1 violation:

    - a {e write buffer} whose read-bypass lets a read overtake buffered
      writes (the shared-bus violation); store-to-load forwarding from the
      buffer is modelled too;
    - {e fire-and-forget writes} on a jittered network, so accesses issued
      in program order reach memory modules out of order (Lamport's
      network violation);
    - [wait_write_ack] restores sequential consistency RP3-style: a
      processor waits for the acknowledgement of its previous write before
      issuing another access;
    - [flush_buffer_on_sync] makes the buffered-bus machine weakly ordered
      with respect to DRF0: synchronization drains the buffer and waits
      for all outstanding acknowledgements, a classic fence
      implementation. *)

type buffer_config = {
  depth : int;
  read_bypass : bool;  (** reads may overtake buffered writes *)
  forwarding : bool;   (** reads of a buffered location take its value *)
  drain_delay : int;
      (** cycles an entry rests in the buffer before draining to memory —
          the window a bypassing read exploits *)
}

type config = {
  fabric : Memsys.fabric_kind;
  write_buffer : buffer_config option;
  wait_write_ack : bool;
  flush_buffer_on_sync : bool;
  modules : int;  (** memory modules; locations are interleaved round-robin *)
  local_cost : int;
}

val make :
  name:string ->
  description:string ->
  sequentially_consistent:bool ->
  weakly_ordered_drf0:bool ->
  config ->
  Machine.t
