(** Shared processor front-end.

    Walks one thread's instruction stream, executing local computation at
    a configurable cost per instruction and handing every memory
    operation to the owning machine.  The machine decides when the
    processor may proceed (this is exactly where the ordering policies
    differ) by calling {!resume}; until then the front-end is blocked.

    Two interchangeable execution modes produce identical event streams:

    - {b AST mode} walks the {!Wo_prog.Instr} tree directly, with a dense
      sorted-array register file.  It is the oracle.
    - {b Compiled mode} steps a {!Wo_prog.Prog_compile} artifact: dense
      int-array registers, stride-4 opcode decoding, no list traversal
      and no closure allocation for known RMW forms.  Unconditional jumps
      (the join after an [If], the back edge of a [While]) are resolved
      for free, mirroring the AST walker's costless list concatenation,
      so both modes schedule exactly the same engine events at the same
      times.

    Expressions are evaluated at issue time, which is sound because the
    front-end never runs ahead of an operation whose result a later
    expression needs (reads block until the machine supplies the value). *)

type memory_op = {
  kind : Wo_core.Event.kind;
  loc : Wo_core.Event.loc;
  payload :
    [ `Read | `Write of Wo_core.Event.value | `Rmw of Wo_core.Event.rmw ];
  dest : Wo_prog.Instr.reg option;
      (** register receiving the read value; in compiled mode this is the
          flat register index, opaque to the machine either way *)
  seq : int;  (** program-order position of this operation *)
}

type request =
  | Access of memory_op
  | Fence
      (** the machine must not resume the processor until all its previous
          accesses are globally performed; fences produce no trace event *)

type t

val create :
  engine:Wo_sim.Engine.t ->
  proc:Wo_core.Event.proc ->
  code:Wo_prog.Instr.t list ->
  ?local_cost:int ->
  ?compiled:Wo_prog.Prog_compile.t ->
  perform:(request -> unit) ->
  on_finish:(unit -> unit) ->
  unit ->
  t
(** [local_cost] (default 1) is the cycles charged per local instruction
    and per memory-operation issue.  [perform] receives each memory
    operation; the machine must eventually call {!resume}.  [on_finish]
    fires once, when the thread's last instruction has completed.  When
    [compiled] is given the front-end runs the artifact's int code for
    [proc] instead of walking [code]. *)

val reset : t -> unit
(** Rewind to the start of the bound program: registers zeroed, sequence
    counter zeroed, status back to the initial (blocked) state.  The next
    {!start} replays the thread exactly as after {!create}. *)

val rebind : t -> ?compiled:Wo_prog.Prog_compile.t -> Wo_prog.Instr.t list -> unit
(** Bind a different program (same engine, proc, cost and machine
    callbacks) and {!reset}.  Register storage is reused when shapes
    match, so rebinding to the same program allocates nothing. *)

val start : t -> unit
(** Schedule the first advance at the current time. *)

val resume :
  t -> store:(Wo_prog.Instr.reg * Wo_core.Event.value) option -> delay:int -> unit
(** Let the processor proceed past the memory operation most recently given
    to [perform], optionally storing a read result first.
    @raise Invalid_argument if the processor is not blocked on an
    operation. *)

val finished : t -> bool

val blocked : t -> bool
(** Waiting for the machine to [resume] it. *)

val proc : t -> Wo_core.Event.proc

val registers : t -> (Wo_prog.Instr.reg * Wo_core.Event.value) list
(** Current register file, sorted, restricted to registers the thread's
    code mentions.  Identical across modes. *)

val current_position : t -> string
(** Human-readable description of where the thread is (for deadlock
    diagnostics). *)
