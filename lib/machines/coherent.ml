module Cache_ctrl = Wo_cache.Cache_ctrl

type gate = Gate_every_op | Gate_sync_only | Gate_never

type sync_wait = Sync_wait_gp | Sync_wait_commit | Sync_wait_none

type policy = {
  pname : string;
  sync_as_data : bool;
  gate : gate;
  sync_wait : sync_wait;
}

let sc_policy =
  {
    pname = "sc";
    sync_as_data = false;
    gate = Gate_every_op;
    sync_wait = Sync_wait_commit;
  }

let def1_policy =
  {
    pname = "def1";
    sync_as_data = false;
    gate = Gate_sync_only;
    sync_wait = Sync_wait_gp;
  }

let def2_policy =
  {
    pname = "def2";
    sync_as_data = false;
    gate = Gate_never;
    sync_wait = Sync_wait_commit;
  }

let relaxed_policy =
  {
    pname = "relaxed";
    sync_as_data = true;
    gate = Gate_never;
    sync_wait = Sync_wait_commit;
  }

type fabric_kind =
  | Bus of { transfer_cycles : int }
  | Net of { base : int; jitter : int }
  | Net_spiky of {
      base : int;
      jitter : int;
      spike_probability : float;
      spike_factor : int;
    }

type migration = {
  thread : int;        (* which thread moves *)
  before_seq : int;    (* just before its operation with this program-order
                          position *)
  to_cache : int;      (* destination processor/cache *)
  unsafe : bool;       (* skip the Section-5.1 re-scheduling rule (for the
                          ablation experiments) *)
}

type config = {
  fabric : fabric_kind;
  policy : policy;
  cache : Cache_ctrl.config;
  slow_procs : (int * int) list;
  slow_routes : ((int * int) * int) list;
  local_cost : int;
  migrations : migration list;
}

let default_net = Net { base = 4; jitter = 6 }

(* One dynamic memory operation's lifecycle record. *)
type op_rec = {
  id : int;
  oproc : int;
  oseq : int;
  okind : Wo_core.Event.kind;
  oloc : Wo_core.Event.loc;
  mutable rv : Wo_core.Event.value option;
  mutable wv : Wo_core.Event.value option;
  mutable issued : int;
  mutable committed : int;
  mutable performed : int;
}

type proc_ctx = {
  mutable fe : Proc_frontend.t option;  (* set after creation (cyclic) *)
  mutable cache_id : int;
      (* which processor's cache this thread currently runs on; changes
         only through migration *)
  mutable gp_outstanding : int;
  mutable gp_zero_waiters : (unit -> unit) list;
  mutable finish_time : int;
}

let frontend ctx = Option.get ctx.fe

let is_sync_kind = function
  | Wo_core.Event.Sync_read | Wo_core.Event.Sync_write | Wo_core.Event.Sync_rmw ->
    true
  | Wo_core.Event.Data_read | Wo_core.Event.Data_write -> false

let access_kind (policy : policy) (op : Proc_frontend.memory_op) :
    Cache_ctrl.access_kind =
  match (op.Proc_frontend.kind, op.Proc_frontend.payload) with
  | Wo_core.Event.Data_read, `Read -> `Data_read
  | Wo_core.Event.Sync_read, `Read ->
    if policy.sync_as_data then `Data_read else `Sync_read
  | Wo_core.Event.Data_write, `Write v -> `Data_write v
  | Wo_core.Event.Sync_write, `Write v ->
    if policy.sync_as_data then `Data_write v else `Sync_write v
  | Wo_core.Event.Sync_rmw, `Rmw f -> `Sync_rmw f
  | _ -> invalid_arg "Coherent.access_kind: malformed memory operation"

let make ~name ~description ~sequentially_consistent ~weakly_ordered_drf0
    (config : config) : Machine.t =
  let run ~seed (program : Wo_prog.Program.t) : Machine.result =
    let engine = Wo_sim.Engine.create () in
    let stats = Wo_sim.Stats.create () in
    let stalls = Wo_obs.Stall.create () in
    let taps = Wo_obs.Tap.create () in
    let obs = Wo_obs.Recorder.active () in
    let tap msg ~src:_ ~dst:_ ~latency =
      Wo_obs.Tap.record taps ~name:(Wo_cache.Msg.tag msg) ~latency
    in
    let rng = Wo_sim.Rng.make seed in
    let num_procs = Wo_prog.Program.num_procs program in
    let num_caches =
      List.fold_left
        (fun m (mg : migration) -> max m (mg.to_cache + 1))
        num_procs config.migrations
    in
    let dir_node = num_caches in
    let fabric =
      match config.fabric with
      | Bus { transfer_cycles } ->
        Wo_interconnect.Fabric.of_bus
          (Wo_interconnect.Bus.create ~engine ~stats ~tap ~transfer_cycles ())
      | Net { base; jitter } ->
        let net_rng = Wo_sim.Rng.split rng in
        let latency =
          Wo_interconnect.Latency.scale_routes config.slow_routes
            (Wo_interconnect.Latency.scale_nodes config.slow_procs
               (Wo_interconnect.Latency.jittered net_rng ~base ~jitter))
        in
        Wo_interconnect.Fabric.of_network
          (Wo_interconnect.Network.create ~engine ~stats ~tap ~latency ())
      | Net_spiky { base; jitter; spike_probability; spike_factor } ->
        let net_rng = Wo_sim.Rng.split rng in
        let latency =
          Wo_interconnect.Latency.scale_routes config.slow_routes
            (Wo_interconnect.Latency.scale_nodes config.slow_procs
               (Wo_interconnect.Latency.spiky net_rng ~base ~jitter
                  ~spike_probability ~spike_factor))
        in
        Wo_interconnect.Fabric.of_network
          (Wo_interconnect.Network.create ~engine ~stats ~tap ~latency ())
    in
    let directory =
      Wo_cache.Directory.create ~engine ~fabric ~node:dir_node ~stats ~obs
        ~initial:(Wo_prog.Program.initial_value program)
        ()
    in
    let caches =
      Array.init num_caches (fun p ->
          Cache_ctrl.create ~engine ~fabric ~node:p ~dir_node ~stats ~stalls
            ~obs config.cache)
    in
    let ctxs =
      Array.init num_procs (fun p ->
          {
            fe = None;
            cache_id = p;
            gp_outstanding = 0;
            gp_zero_waiters = [];
            finish_time = -1;
          })
    in
    let cache_of ctx = caches.(ctx.cache_id) in
    let next_op_id = ref 0 in
    let ops_rev = ref [] in
    (* [stall_at] back-dates the attribution span to end at [until]
       (needed when a wait's two phases are only known after the fact);
       [stall] ends it now. *)
    let stall_at ctx_proc reason ~until cycles =
      Wo_obs.Stall.add stalls ~sink:obs ~now:until ~proc:ctx_proc reason cycles
    in
    let stall ctx_proc reason cycles =
      stall_at ctx_proc reason ~until:(Wo_sim.Engine.now engine) cycles
    in
    let on_gp_zero ctx k =
      if ctx.gp_outstanding = 0 then k ()
      else ctx.gp_zero_waiters <- k :: ctx.gp_zero_waiters
    in
    let decr_gp ctx =
      ctx.gp_outstanding <- ctx.gp_outstanding - 1;
      assert (ctx.gp_outstanding >= 0);
      if ctx.gp_outstanding = 0 then begin
        let ws = ctx.gp_zero_waiters in
        ctx.gp_zero_waiters <- [];
        List.iter (fun k -> k ()) ws
      end
    in
    let perform_fence p =
      (* proceed only when everything previously issued is globally
         performed *)
      let ctx = ctxs.(p) in
      let t0 = Wo_sim.Engine.now engine in
      on_gp_zero ctx (fun () ->
          stall p Wo_obs.Stall.Counter_drain (Wo_sim.Engine.now engine - t0);
          Proc_frontend.resume (frontend ctx) ~store:None ~delay:1)
    in
    let perform p (op : Proc_frontend.memory_op) =
      let ctx = ctxs.(p) in
      let sync = is_sync_kind op.Proc_frontend.kind in
      let issue () =
        let id = !next_op_id in
        incr next_op_id;
        let r =
          {
            id;
            oproc = p;
            oseq = op.Proc_frontend.seq;
            okind = op.Proc_frontend.kind;
            oloc = op.Proc_frontend.loc;
            rv = None;
            wv =
              (match op.Proc_frontend.payload with
              | `Write v -> Some v
              | `Read | `Rmw _ -> None);
            issued = Wo_sim.Engine.now engine;
            committed = -1;
            performed = -1;
          }
        in
        ops_rev := r :: !ops_rev;
        ctx.gp_outstanding <- ctx.gp_outstanding + 1;
        (* Decide when the processor proceeds past this operation. *)
        let resume_on =
          if sync && not config.policy.sync_as_data then
            match config.policy.sync_wait with
            | Sync_wait_gp -> `Gp
            | Sync_wait_commit -> `Commit
            | Sync_wait_none -> (
              (* Even lawless hardware must wait for a value it needs. *)
              match op.Proc_frontend.payload with
              | `Read | `Rmw _ -> `Commit
              | `Write _ -> `Issue)
          else
            match op.Proc_frontend.payload with
            | `Read | `Rmw _ -> `Commit (* a value is needed *)
            | `Write _ -> `Issue
        in
        let resume_store () =
          match (op.Proc_frontend.dest, r.rv) with
          | Some reg, Some v -> Some (reg, v)
          | _ -> None
        in
        let on_commit ~at value =
          r.committed <- at;
          r.rv <- value;
          (match (op.Proc_frontend.payload, value) with
          | `Rmw f, Some old -> r.wv <- Some (f old)
          | _ -> ());
          match resume_on with
          | `Commit ->
            let reason =
              if sync && not config.policy.sync_as_data then
                Wo_obs.Stall.Sync_commit
              else Wo_obs.Stall.Read_miss
            in
            stall p reason (Wo_sim.Engine.now engine - r.issued);
            Proc_frontend.resume (frontend ctx) ~store:(resume_store ()) ~delay:1
          | `Gp | `Issue -> ()
        in
        let on_gp () =
          r.performed <- Wo_sim.Engine.now engine;
          decr_gp ctx;
          match resume_on with
          | `Gp ->
            (* A Definition-1 synchronization wait has two phases: getting
               the operation committed, then holding the processor until it
               is globally performed — the release-side gating Definition 2
               (and the Section-5.3 hardware) dispenses with.  A read's
               commit time is when its value was bound, possibly before
               this operation issued; only the wait actually spent inside
               [issued, performed] is attributable. *)
            let commit_point = max r.issued r.committed in
            stall_at p Wo_obs.Stall.Sync_commit ~until:commit_point
              (commit_point - r.issued);
            stall_at p Wo_obs.Stall.Release_gate ~until:r.performed
              (r.performed - commit_point);
            Proc_frontend.resume (frontend ctx) ~store:(resume_store ()) ~delay:1
          | `Commit | `Issue -> ()
        in
        Cache_ctrl.access (cache_of ctx) op.Proc_frontend.loc
          (access_kind config.policy op)
          { Cache_ctrl.on_commit; on_gp };
        if resume_on = `Issue then
          Proc_frontend.resume (frontend ctx) ~store:None ~delay:1
      in
      let gated =
        match config.policy.gate with
        | Gate_every_op -> true
        | Gate_sync_only -> sync && not config.policy.sync_as_data
        | Gate_never -> false
      in
      let issue_gated () =
        if gated && ctx.gp_outstanding > 0 then begin
          let t0 = Wo_sim.Engine.now engine in
          (* Waiting for earlier accesses to perform before ISSUING: for a
             synchronization operation this is release gating (Definition
             1, conditions 2/3); for a data operation it is plain
             counter-drain ordering (the SC baseline). *)
          let reason =
            if sync && not config.policy.sync_as_data then
              Wo_obs.Stall.Release_gate
            else Wo_obs.Stall.Counter_drain
          in
          on_gp_zero ctx (fun () ->
              stall p reason (Wo_sim.Engine.now engine - t0);
              issue ())
        end
        else issue ()
      in
      match
        List.find_opt
          (fun (mg : migration) ->
            mg.thread = p && mg.before_seq = op.Proc_frontend.seq)
          config.migrations
      with
      | None -> issue_gated ()
      | Some mg ->
        (* Re-scheduling (5.1): "before a context switch, all previous
           reads of the process have returned their values and all
           previous writes have been globally performed"; footnote 3 also
           stalls the vacated processor until its counter reads zero. *)
        let switch () =
          Wo_sim.Stats.incr stats "machine.migrations";
          ctx.cache_id <- mg.to_cache;
          issue_gated ()
        in
        if mg.unsafe then switch ()
        else begin
          let t0 = Wo_sim.Engine.now engine in
          on_gp_zero ctx (fun () ->
              Cache_ctrl.on_counter_zero (cache_of ctx) (fun () ->
                  stall p Wo_obs.Stall.Migration (Wo_sim.Engine.now engine - t0);
                  switch ()))
        end
    in
    Array.iteri
      (fun p ctx ->
        let fe =
          Proc_frontend.create ~engine ~proc:p
            ~code:program.Wo_prog.Program.threads.(p)
            ~local_cost:config.local_cost
            ~perform:(function
              | Proc_frontend.Access op -> perform p op
              | Proc_frontend.Fence -> perform_fence p)
            ~on_finish:(fun () ->
              ctx.finish_time <- Wo_sim.Engine.now engine)
            ()
        in
        ctx.fe <- Some fe;
        Proc_frontend.start fe)
      ctxs;
    (match Wo_sim.Engine.run engine with
    | `Idle -> ()
    | `Time_limit | `Event_limit ->
      let positions =
        Array.to_list ctxs
        |> List.mapi (fun p ctx ->
               Printf.sprintf "P%d[%s out=%d res=%s stalled=%s]" p
                 (Proc_frontend.current_position (frontend ctx))
                 (Cache_ctrl.outstanding caches.(ctx.cache_id))
                 (String.concat ","
                    (List.map string_of_int
                       (Cache_ctrl.reserved_locs caches.(ctx.cache_id))))
                 (String.concat ","
                    (List.map
                       (fun (l, n) -> Printf.sprintf "%d:%d" l n)
                       (Cache_ctrl.stalled_recall_locs caches.(ctx.cache_id)))))
        |> String.concat " "
      in
      let dir_busy =
        Wo_cache.Directory.busy_lines directory
        |> List.map string_of_int |> String.concat ","
      in
      raise
        (Machine.Machine_error
           (Printf.sprintf
              "%s: simulation event limit exceeded (livelock?) at t=%d: %s dir_busy=[%s]"
              name (Wo_sim.Engine.now engine) positions dir_busy)));
    (* Drain check: everything must have finished. *)
    Array.iteri
      (fun p ctx ->
        if not (Proc_frontend.finished (frontend ctx)) then begin
          let dumps =
            String.concat ""
              (Array.to_list (Array.map Cache_ctrl.debug_dump caches))
          in
          raise
            (Machine.Machine_error
               (Printf.sprintf "%s: deadlock: P%d %s\n%s%s" name p
                  (Proc_frontend.current_position (frontend ctx))
                  dumps
                  (Wo_cache.Directory.debug_dump directory)))
        end;
        ())
      ctxs;
    Array.iteri
      (fun c cache ->
        if Cache_ctrl.pending_accesses cache <> 0 then
          raise
            (Machine.Machine_error
               (Printf.sprintf "%s: cache %d has uncommitted accesses" name c)))
      caches;
    (match Wo_cache.Directory.busy_lines directory with
    | [] -> ()
    | locs ->
      raise
        (Machine.Machine_error
           (Printf.sprintf "%s: directory transactions stuck on %d line(s)"
              name (List.length locs))));
    (* Coherent final memory: the owner's copy for exclusive lines, the
       directory's otherwise. *)
    let final_value loc =
      match Wo_cache.Directory.state_of directory loc with
      | Wo_cache.Directory.Exclusive owner -> (
        match Cache_ctrl.value_of caches.(owner) loc with
        | Some v -> v
        | None -> Wo_cache.Directory.memory_value directory loc)
      | Wo_cache.Directory.Uncached | Wo_cache.Directory.Shared _ ->
        Wo_cache.Directory.memory_value directory loc
    in
    let memory =
      List.map (fun loc -> (loc, final_value loc)) (Wo_prog.Program.locs program)
    in
    let observable p r =
      match program.Wo_prog.Program.observable with
      | None -> true
      | Some l -> List.mem (p, r) l
    in
    let registers =
      Array.to_list ctxs
      |> List.concat_map (fun ctx ->
             let p = Proc_frontend.proc (frontend ctx) in
             Proc_frontend.registers (frontend ctx)
             |> List.filter (fun (r, _) -> observable p r)
             |> List.map (fun (r, v) -> (p, r, v)))
    in
    let trace = Wo_sim.Trace.create () in
    List.iter
      (fun r ->
        if r.committed < 0 || r.performed < 0 then begin
          let dumps =
            String.concat ""
              (Array.to_list (Array.map Cache_ctrl.debug_dump caches))
          in
          raise
            (Machine.Machine_error
               (Printf.sprintf
                  "%s: operation %d (P%d seq %d %s loc %d, committed=%d \
                   performed=%d) never completed\n%s%s"
                  name r.id r.oproc r.oseq
                  (Format.asprintf "%a" Wo_core.Event.pp_kind r.okind)
                  r.oloc r.committed r.performed dumps
                  (Wo_cache.Directory.debug_dump directory)))
        end;
        if Wo_obs.Recorder.enabled obs then
          Wo_obs.Recorder.span obs ~cat:Wo_obs.Recorder.Proc ~track:r.oproc
            ~name:
              (Format.asprintf "%a.%a" Wo_core.Event.pp_kind r.okind
                 Wo_core.Event.pp_loc r.oloc)
            ~ts:r.issued
            ~dur:(max 0 (r.performed - r.issued));
        Wo_sim.Trace.add trace
          {
            Wo_sim.Trace.event =
              Wo_core.Event.make ~id:r.id ~proc:r.oproc ~seq:r.oseq
                ~kind:r.okind ~loc:r.oloc ?read_value:r.rv
                ?written_value:r.wv ();
            issued = r.issued;
            committed = r.committed;
            performed = r.performed;
          })
      (List.rev !ops_rev);
    {
      Machine.outcome = Wo_prog.Outcome.make ~registers ~memory;
      trace;
      cycles = Wo_sim.Engine.now engine;
      proc_finish = Array.map (fun ctx -> ctx.finish_time) ctxs;
      stats =
        Wo_sim.Stats.to_list stats
        @ Wo_obs.Stall.to_stats stalls
        @ Wo_obs.Tap.to_stats taps;
      stalls;
      taps;
    }
  in
  { Machine.name; description; sequentially_consistent; weakly_ordered_drf0; run }
