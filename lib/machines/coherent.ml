module Cache_ctrl = Wo_cache.Cache_ctrl

type gate = Gate_every_op | Gate_sync_only | Gate_never

type sync_wait = Sync_wait_gp | Sync_wait_commit | Sync_wait_none

type policy = {
  pname : string;
  sync_as_data : bool;
  gate : gate;
  sync_wait : sync_wait;
}

let sc_policy =
  {
    pname = "sc";
    sync_as_data = false;
    gate = Gate_every_op;
    sync_wait = Sync_wait_commit;
  }

let def1_policy =
  {
    pname = "def1";
    sync_as_data = false;
    gate = Gate_sync_only;
    sync_wait = Sync_wait_gp;
  }

let def2_policy =
  {
    pname = "def2";
    sync_as_data = false;
    gate = Gate_never;
    sync_wait = Sync_wait_commit;
  }

let relaxed_policy =
  {
    pname = "relaxed";
    sync_as_data = true;
    gate = Gate_never;
    sync_wait = Sync_wait_commit;
  }

type fabric_kind = Memsys.fabric_kind =
  | Bus of { transfer_cycles : int }
  | Net of { base : int; jitter : int }
  | Net_spiky of {
      base : int;
      jitter : int;
      spike_probability : float;
      spike_factor : int;
    }
  | Net_fixed of { latency : int }

type migration = {
  thread : int;        (* which thread moves *)
  before_seq : int;    (* just before its operation with this program-order
                          position *)
  to_cache : int;      (* destination processor/cache *)
  unsafe : bool;       (* skip the Section-5.1 re-scheduling rule (for the
                          ablation experiments) *)
}

type config = {
  fabric : fabric_kind;
  policy : policy;
  cache : Cache_ctrl.config;
  slow_procs : (int * int) list;
  slow_routes : ((int * int) * int) list;
  local_cost : int;
  migrations : migration list;
}

let default_net = Net { base = 4; jitter = 6 }

type proc_ctx = {
  mutable cache_id : int;
      (* which processor's cache this thread currently runs on; changes
         only through migration *)
  mutable gp_outstanding : int;
  mutable gp_zero_waiters : (unit -> unit) list;
}

let is_sync_kind = function
  | Wo_core.Event.Sync_read | Wo_core.Event.Sync_write | Wo_core.Event.Sync_rmw ->
    true
  | Wo_core.Event.Data_read | Wo_core.Event.Data_write -> false

let access_kind (policy : policy) (op : Proc_frontend.memory_op) :
    Cache_ctrl.access_kind =
  match (op.Proc_frontend.kind, op.Proc_frontend.payload) with
  | Wo_core.Event.Data_read, `Read -> `Data_read
  | Wo_core.Event.Sync_read, `Read ->
    if policy.sync_as_data then `Data_read else `Sync_read
  | Wo_core.Event.Data_write, `Write v -> `Data_write v
  | Wo_core.Event.Sync_write, `Write v ->
    if policy.sync_as_data then `Data_write v else `Sync_write v
  | Wo_core.Event.Sync_rmw, `Rmw f -> `Sync_rmw f
  | _ -> invalid_arg "Coherent.access_kind: malformed memory operation"

(* The coherent memory system: private MSI caches over a full-map
   directory; the ordering policy decides what a processor waits for.
   Everything machine-generic lives in {!Driver}. *)
let build (config : config) (env : Driver.env) : Memsys.port =
  let engine = env.Driver.engine in
  let num_procs = env.Driver.num_procs in
  let num_caches =
    List.fold_left
      (fun m (mg : migration) -> max m (mg.to_cache + 1))
      num_procs config.migrations
  in
  let dir_node = num_caches in
  let fabric =
    Driver.fabric env ~tag:Wo_cache.Msg.tag ~slow_procs:config.slow_procs
      ~slow_routes:config.slow_routes config.fabric
  in
  let directory =
    Wo_cache.Directory.create ~engine ~fabric ~node:dir_node
      ~stats:env.Driver.stats ~obs:env.Driver.obs
      ~initial:(fun loc ->
        (* read through [env]: sessions rebind the program on reset *)
        Wo_prog.Program.initial_value env.Driver.program loc)
      ()
  in
  let caches =
    Array.init num_caches (fun p ->
        Cache_ctrl.create ~engine ~fabric ~node:p ~dir_node
          ~stats:env.Driver.stats ~stalls:env.Driver.stalls ~obs:env.Driver.obs
          config.cache)
  in
  let ctxs =
    Array.init num_procs (fun p ->
        { cache_id = p; gp_outstanding = 0; gp_zero_waiters = [] })
  in
  (* Session reset: directory and cache lines are lazily recreated, so
     dropping them restores the just-built state; contexts return to
     their home caches. *)
  Driver.on_reset env (fun () ->
      Wo_cache.Directory.reset directory;
      Array.iter Cache_ctrl.reset caches;
      Array.iteri
        (fun p ctx ->
          ctx.cache_id <- p;
          ctx.gp_outstanding <- 0;
          ctx.gp_zero_waiters <- [])
        ctxs);
  let cache_of ctx = caches.(ctx.cache_id) in
  let stall_at p reason ~until cycles =
    Driver.stall_at env ~proc:p reason ~until cycles
  in
  let stall p reason cycles = Driver.stall env ~proc:p reason cycles in
  let on_gp_zero ctx k =
    if ctx.gp_outstanding = 0 then k ()
    else ctx.gp_zero_waiters <- k :: ctx.gp_zero_waiters
  in
  let decr_gp ctx =
    ctx.gp_outstanding <- ctx.gp_outstanding - 1;
    assert (ctx.gp_outstanding >= 0);
    if ctx.gp_outstanding = 0 then begin
      let ws = ctx.gp_zero_waiters in
      ctx.gp_zero_waiters <- [];
      List.iter (fun k -> k ()) ws
    end
  in
  let perform_fence p =
    (* proceed only when everything previously issued is globally
       performed *)
    let ctx = ctxs.(p) in
    let t0 = Wo_sim.Engine.now engine in
    on_gp_zero ctx (fun () ->
        stall p Wo_obs.Stall.Counter_drain (Wo_sim.Engine.now engine - t0);
        Driver.resume env p ~store:None ~delay:1)
  in
  let perform p (op : Proc_frontend.memory_op) =
    let ctx = ctxs.(p) in
    let sync = is_sync_kind op.Proc_frontend.kind in
    let issue () =
      let r = Driver.new_op env ~proc:p op in
      ctx.gp_outstanding <- ctx.gp_outstanding + 1;
      (* Decide when the processor proceeds past this operation. *)
      let resume_on =
        if sync && not config.policy.sync_as_data then
          match config.policy.sync_wait with
          | Sync_wait_gp -> `Gp
          | Sync_wait_commit -> `Commit
          | Sync_wait_none -> (
            (* Even lawless hardware must wait for a value it needs. *)
            match op.Proc_frontend.payload with
            | `Read | `Rmw _ -> `Commit
            | `Write _ -> `Issue)
        else
          match op.Proc_frontend.payload with
          | `Read | `Rmw _ -> `Commit (* a value is needed *)
          | `Write _ -> `Issue
      in
      let resume_store () =
        match (op.Proc_frontend.dest, r.Memsys.rv) with
        | Some reg, Some v -> Some (reg, v)
        | _ -> None
      in
      let on_commit ~at value =
        r.Memsys.committed <- at;
        r.Memsys.rv <- value;
        (match (op.Proc_frontend.payload, value) with
        | `Rmw f, Some old -> r.Memsys.wv <- Some (Wo_core.Event.apply_rmw f old)
        | _ -> ());
        match resume_on with
        | `Commit ->
          let reason =
            if sync && not config.policy.sync_as_data then
              Wo_obs.Stall.Sync_commit
            else Wo_obs.Stall.Read_miss
          in
          stall p reason (Wo_sim.Engine.now engine - r.Memsys.issued);
          Driver.resume env p ~store:(resume_store ()) ~delay:1
        | `Gp | `Issue -> ()
      in
      let on_gp () =
        r.Memsys.performed <- Wo_sim.Engine.now engine;
        decr_gp ctx;
        match resume_on with
        | `Gp ->
          (* A Definition-1 synchronization wait has two phases: getting
             the operation committed, then holding the processor until it
             is globally performed — the release-side gating Definition 2
             (and the Section-5.3 hardware) dispenses with.  A read's
             commit time is when its value was bound, possibly before
             this operation issued; only the wait actually spent inside
             [issued, performed] is attributable. *)
          let commit_point = max r.Memsys.issued r.Memsys.committed in
          stall_at p Wo_obs.Stall.Sync_commit ~until:commit_point
            (commit_point - r.Memsys.issued);
          stall_at p Wo_obs.Stall.Release_gate ~until:r.Memsys.performed
            (r.Memsys.performed - commit_point);
          Driver.resume env p ~store:(resume_store ()) ~delay:1
        | `Commit | `Issue -> ()
      in
      Cache_ctrl.access (cache_of ctx) op.Proc_frontend.loc
        (access_kind config.policy op)
        { Cache_ctrl.on_commit; on_gp };
      if resume_on = `Issue then Driver.resume env p ~store:None ~delay:1
    in
    let gated =
      match config.policy.gate with
      | Gate_every_op -> true
      | Gate_sync_only -> sync && not config.policy.sync_as_data
      | Gate_never -> false
    in
    let issue_gated () =
      if gated && ctx.gp_outstanding > 0 then begin
        let t0 = Wo_sim.Engine.now engine in
        (* Waiting for earlier accesses to perform before ISSUING: for a
           synchronization operation this is release gating (Definition
           1, conditions 2/3); for a data operation it is plain
           counter-drain ordering (the SC baseline). *)
        let reason =
          if sync && not config.policy.sync_as_data then
            Wo_obs.Stall.Release_gate
          else Wo_obs.Stall.Counter_drain
        in
        on_gp_zero ctx (fun () ->
            stall p reason (Wo_sim.Engine.now engine - t0);
            issue ())
      end
      else issue ()
    in
    match
      List.find_opt
        (fun (mg : migration) ->
          mg.thread = p && mg.before_seq = op.Proc_frontend.seq)
        config.migrations
    with
    | None -> issue_gated ()
    | Some mg ->
      (* Re-scheduling (5.1): "before a context switch, all previous
         reads of the process have returned their values and all
         previous writes have been globally performed"; footnote 3 also
         stalls the vacated processor until its counter reads zero. *)
      let switch () =
        Wo_sim.Stats.incr env.Driver.stats "machine.migrations";
        ctx.cache_id <- mg.to_cache;
        issue_gated ()
      in
      if mg.unsafe then switch ()
      else begin
        let t0 = Wo_sim.Engine.now engine in
        on_gp_zero ctx (fun () ->
            Cache_ctrl.on_counter_zero (cache_of ctx) (fun () ->
                stall p Wo_obs.Stall.Migration (Wo_sim.Engine.now engine - t0);
                switch ()))
      end
  in
  let proc_status p =
    let ctx = ctxs.(p) in
    Printf.sprintf "out=%d res=%s stalled=%s"
      (Cache_ctrl.outstanding caches.(ctx.cache_id))
      (String.concat ","
         (List.map string_of_int
            (Cache_ctrl.reserved_locs caches.(ctx.cache_id))))
      (String.concat ","
         (List.map
            (fun (l, n) -> Printf.sprintf "%d:%d" l n)
            (Cache_ctrl.stalled_recall_locs caches.(ctx.cache_id))))
  in
  let shared_status () =
    Printf.sprintf "dir_busy=[%s]"
      (Wo_cache.Directory.busy_lines directory
      |> List.map string_of_int |> String.concat ",")
  in
  let debug_dump () =
    String.concat "" (Array.to_list (Array.map Cache_ctrl.debug_dump caches))
    ^ Wo_cache.Directory.debug_dump directory
  in
  let check_drained () =
    Array.iteri
      (fun c cache ->
        if Cache_ctrl.pending_accesses cache <> 0 then
          raise
            (Machine.Machine_error
               (Printf.sprintf "%s: cache %d has uncommitted accesses"
                  env.Driver.name c)))
      caches;
    match Wo_cache.Directory.busy_lines directory with
    | [] -> ()
    | locs ->
      raise
        (Machine.Machine_error
           (Printf.sprintf "%s: directory transactions stuck on %d line(s)"
              env.Driver.name (List.length locs)))
  in
  (* Coherent final memory: the owner's copy for exclusive lines, the
     directory's otherwise. *)
  let final_value loc =
    match Wo_cache.Directory.state_of directory loc with
    | Wo_cache.Directory.Exclusive owner -> (
      match Cache_ctrl.value_of caches.(owner) loc with
      | Some v -> v
      | None -> Wo_cache.Directory.memory_value directory loc)
    | Wo_cache.Directory.Uncached | Wo_cache.Directory.Shared _ ->
      Wo_cache.Directory.memory_value directory loc
  in
  {
    Memsys.perform;
    fence = perform_fence;
    final_value;
    proc_status;
    shared_status;
    debug_dump;
    check_drained;
  }

let make ~name ~description ~sequentially_consistent ~weakly_ordered_drf0
    (config : config) : Machine.t =
  Driver.make ~name ~description ~sequentially_consistent ~weakly_ordered_drf0
    ~local_cost:config.local_cost ~build:(build config)
