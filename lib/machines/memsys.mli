(** The memory-system port.

    A machine is a {!Proc_frontend} per thread wired to one memory
    system.  This module fixes the boundary between the two halves:

    - the shared {!Driver} owns everything machine-generic — engine,
      fabric, frontends, the run loop, the livelock/deadlock watchdog,
      operation bookkeeping and result assembly;
    - a memory system (the uncached module/write-buffer machine, the
      cache-coherent directory machine, or anything new) supplies only a
      {!port}: how to perform an access, how to fence, how to read final
      memory, and how to describe itself when something goes wrong.

    The split is what makes machines cheap data ({!Spec}): a machine
    description picks a port builder and its knobs instead of re-wiring
    a driver by hand. *)

type fabric_kind =
  | Bus of { transfer_cycles : int }
      (** serializing split-transaction bus *)
  | Net of { base : int; jitter : int }
      (** general network, uniform jitter — the reordering fabric of
          Figure 1, configurations 2 and 4 *)
  | Net_spiky of {
      base : int;
      jitter : int;
      spike_probability : float;
      spike_factor : int;
    }  (** heavy-tailed network: per-message congestion spikes *)
  | Net_fixed of { latency : int }
      (** point-to-point network with one fixed delay: reorders nothing
          by itself but, unlike the bus, does not serialize *)

val latency_spec : fabric_kind -> Wo_interconnect.Latency.spec option
(** The latency model of a network fabric; [None] for the bus. *)

type op = {
  id : int;
  oproc : int;
  oseq : int;
  okind : Wo_core.Event.kind;
  oloc : Wo_core.Event.loc;
  mutable rv : Wo_core.Event.value option;
  mutable wv : Wo_core.Event.value option;
  mutable issued : int;
  mutable committed : int;
  mutable performed : int;
}
(** One dynamic memory operation's lifecycle record, shared by every
    memory system: the driver creates it at issue ({!Driver.new_op}),
    the memory system fills [rv]/[wv]/[committed]/[performed], and the
    driver turns the completed records into the {!Wo_sim.Trace}. *)

type port = {
  perform : int -> Proc_frontend.memory_op -> unit;
      (** Perform one access for processor [p]; must eventually resume
          the frontend ({!Driver.resume}). *)
  fence : int -> unit;
      (** Hold processor [p] until everything it previously issued is
          globally performed, then resume it. *)
  final_value : Wo_core.Event.loc -> Wo_core.Event.value;
      (** Final memory after the engine drained (the owner's copy for
          exclusive cache lines, memory otherwise). *)
  proc_status : int -> string;
      (** Per-processor protocol detail for watchdog diagnostics, e.g.
          outstanding counters and reserved lines; [""] if nothing to
          say. *)
  shared_status : unit -> string;
      (** Shared-component detail for watchdog diagnostics (busy
          directory lines, module queues); [""] if nothing to say. *)
  debug_dump : unit -> string;
      (** Full state dump appended to deadlock / lost-operation
          errors. *)
  check_drained : unit -> unit;
      (** Raise {!Machine.Machine_error} if protocol state survived the
          drain (uncommitted accesses, stuck directory transactions,
          undrained write buffers). *)
}
