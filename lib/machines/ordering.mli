(** Operational consistency-model backends.

    One port builder behind {!Memsys.port} realizes the relaxed hardware
    ordering models of {!Wo_core.Sync_model} with concrete timing:

    - {b TSO}: one FIFO store buffer per processor.  Reads overtake
      pending writes and forward from the youngest same-location entry;
      writes drain to memory strictly in program order.
    - {b PSO}: one drain channel per (processor, location), so writes to
      different locations perform out of program order while
      per-location order is preserved.
    - {b RA}: PSO's channels under a bounded total window, with
      release/acquire synchronization — read-only synchronization (an
      acquire) issues without draining; write synchronization (a
      release) drains everything first.

    With [sync_barriers] set (the spec's policy is not [Sync_none]),
    synchronization operations are barriers per the model above; under
    TSO and PSO every synchronization operation drains, which makes the
    machines weakly ordered with respect to DRF0 (Definition 2), and
    under RA only the write side drains, which still suffices for DRF0
    programs because any guaranteed cross-processor happens-before chain
    leaves a processor through a synchronization write.

    Each model's reachable outcomes for a program are a subset of the
    axiomatic set {!Wo_prog.Relaxed.outcomes} computes for the matching
    {!Wo_core.Sync_model.hardware}; [wo difftest] checks that inclusion. *)

type kind =
  | Tso of { depth : int; drain_delay : int }
  | Pso of { depth : int; drain_delay : int }
  | Ra of { window : int; drain_delay : int }
      (** [depth] bounds the store buffer (total entries for TSO,
          per-location for PSO); [window] bounds RA's total pending
          writes; [drain_delay] is the cycles an entry rests before its
          memory message is sent — the window in which reads overtake
          it. *)

type config = {
  fabric : Memsys.fabric_kind;
  kind : kind;
  sync_barriers : bool;
      (** when false, synchronization operations are treated as data
          (the [Sync_none] policy): nothing drains, nothing is a
          barrier, and the machine is not weakly ordered *)
  modules : int;  (** memory modules, interleaved by location *)
  local_cost : int;
}

val hardware_of_kind : kind -> Wo_core.Sync_model.hardware
(** The axiomatic descriptor a kind implements ({!Wo_core.Sync_model.tso_hw},
    [pso_hw] or [ra_hw]). *)

val kind_name : kind -> string
(** ["tso"], ["pso"] or ["ra"]. *)

val build : config -> Driver.env -> Memsys.port
(** The port builder, for composition with a custom driver. *)

val make :
  name:string ->
  description:string ->
  sequentially_consistent:bool ->
  weakly_ordered_drf0:bool ->
  config ->
  Machine.t
(** Package the backend as a machine.
    @raise Invalid_argument on a non-positive depth, window or module
    count. *)
