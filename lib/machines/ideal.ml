let run ~seed program =
  let state = Wo_prog.Interp.run_random ~seed program in
  let exn = Wo_prog.Interp.execution state in
  let trace = Wo_sim.Trace.create () in
  List.iteri
    (fun i ev ->
      Wo_sim.Trace.add trace
        { Wo_sim.Trace.event = ev; issued = i; committed = i; performed = i })
    (Wo_core.Execution.events exn);
  let n = Wo_prog.Program.num_procs program in
  Machine.make_result
    ~outcome:(Wo_prog.Interp.outcome state)
    ~trace
    ~cycles:(Wo_sim.Trace.size trace)
    ~proc_finish:(Array.make n (Wo_sim.Trace.size trace))
    ~stalls:(Wo_obs.Stall.create ())
    ~taps:(Wo_obs.Tap.create ())
    ()

let run ~seed program =
  Machine.note_run ();
  run ~seed program

(* The interpreter holds no reusable machinery, so an ideal session is
   just the fresh run — it still answers the session interface so every
   machine can be batch-driven uniformly. *)
let new_session engine =
  let first = ref true in
  {
    Machine.session_machine = "ideal";
    session_engine = engine;
    session_run =
      (fun ~seed ?compiled:_ program ->
        if !first then first := false else Machine.note_session_reuse ();
        run ~seed program);
  }

let machine =
  {
    Machine.name = "ideal";
    description =
      "The idealized architecture of Section 4: all memory accesses execute \
       atomically and in program order, under a seeded random scheduler.";
    sequentially_consistent = true;
    weakly_ordered_drf0 = true;
    run;
    new_session;
  }
