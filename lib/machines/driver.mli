(** The shared machine driver.

    Everything the simulated machines have in common lives here, once:
    engine / statistics / stall-account / tap setup, fabric construction
    (with the RNG-split discipline that makes runs reproducible),
    processor-frontend wiring, the run loop, a unified livelock/deadlock
    watchdog with rich per-processor diagnostics, operation lifecycle
    bookkeeping and result assembly.  A memory system contributes only a
    {!Memsys.port}; see {!Uncached} and {!Coherent} for the two shipped
    protocols. *)

type env = {
  name : string;
  engine : Wo_sim.Engine.t;
  stats : Wo_sim.Stats.t;
  stalls : Wo_obs.Stall.t;
  taps : Wo_obs.Tap.t;
  obs : Wo_obs.Recorder.t;
  rng : Wo_sim.Rng.t;  (** seed stream; split it per component *)
  program : Wo_prog.Program.t;
  num_procs : int;
  mutable frontends : Proc_frontend.t array;
      (** filled by the driver after [build] returns; valid whenever the
          engine is running *)
  mutable next_op_id : int;
  mutable ops_rev : Memsys.op list;
}
(** The per-run environment handed to a port builder. *)

val now : env -> int

val stall : env -> proc:int -> Wo_obs.Stall.reason -> int -> unit
(** Attribute stall cycles ending now. *)

val stall_at : env -> proc:int -> Wo_obs.Stall.reason -> until:int -> int -> unit
(** Attribute stall cycles whose span ended at [until] (for waits whose
    phases are only known after the fact). *)

val resume :
  env ->
  int ->
  store:(Wo_prog.Instr.reg * Wo_core.Event.value) option ->
  delay:int ->
  unit
(** Resume processor [p]'s frontend. *)

val new_op : env -> proc:int -> Proc_frontend.memory_op -> Memsys.op
(** Record the issue of one memory operation: assigns the id, stamps
    [issued] with the current time, pre-fills [wv] for writes and
    appends the record to the run's operation list. *)

val fabric :
  env ->
  tag:('msg -> string) ->
  ?slow_procs:(int * int) list ->
  ?slow_routes:((int * int) * int) list ->
  Memsys.fabric_kind ->
  'msg Wo_interconnect.Fabric.t
(** Build the interconnect: a bus, or a network whose latency model is
    interpreted from the fabric kind with a dedicated RNG stream split
    from [env.rng] (the split happens exactly once, here, so every
    machine draws network jitter identically).  [slow_procs] /
    [slow_routes] wrap the model with node / route multipliers
    ({!Wo_interconnect.Latency.scale_nodes} / [scale_routes]); they are
    ignored by the bus, as before.  Every delivered message is recorded
    in [env.taps] under [tag msg]. *)

val run :
  name:string ->
  local_cost:int ->
  build:(env -> Memsys.port) ->
  seed:int ->
  Wo_prog.Program.t ->
  Machine.result
(** One simulation: build the environment, let [build] assemble the
    memory system, wire and start one frontend per thread, run the
    engine to quiescence, then check drains and assemble the result.
    Raises {!Machine.Machine_error} with the unified rich diagnostics —
    per-processor frontend positions plus the port's protocol detail —
    on livelock (event limit), deadlock (unfinished frontend), leftover
    protocol state or an operation that never completed. *)

val make :
  name:string ->
  description:string ->
  sequentially_consistent:bool ->
  weakly_ordered_drf0:bool ->
  local_cost:int ->
  build:(env -> Memsys.port) ->
  Machine.t
(** Package {!run} as a {!Machine.t}. *)
