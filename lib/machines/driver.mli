(** The shared machine driver.

    Everything the simulated machines have in common lives here, once:
    engine / statistics / stall-account / tap setup, fabric construction
    (with the RNG-split discipline that makes runs reproducible),
    processor-frontend wiring, the run loop, a unified livelock/deadlock
    watchdog with rich per-processor diagnostics, operation lifecycle
    bookkeeping and result assembly.  A memory system contributes only a
    {!Memsys.port}; see {!Uncached} and {!Coherent} for the two shipped
    protocols.

    Two execution paths share the run loop: {!run} builds everything
    fresh (the oracle), and {!new_session} builds once per machine
    shape, then resets the environment in place between runs.  A port
    builder that keeps mutable state must register an {!on_reset} hook
    restoring it to its just-built state; the driver replays hooks in
    registration order after reseeding [env.rng], so RNG splits recorded
    in hooks restore component streams exactly. *)

type env = {
  name : string;
  engine : Wo_sim.Engine.t;
  stats : Wo_sim.Stats.t;
  stalls : Wo_obs.Stall.t;
  taps : Wo_obs.Tap.t;
  mutable obs : Wo_obs.Recorder.t;  (** refreshed from the ambient sink on reset *)
  rng : Wo_sim.Rng.t;  (** seed stream; split it per component *)
  mutable program : Wo_prog.Program.t;
      (** the program of the current run; rebound by session resets, so
          ports must read it through [env], never capture it *)
  num_procs : int;
      (** fixed for the life of the environment — sessions rebuild when
          the width changes *)
  mutable frontends : Proc_frontend.t array;
      (** filled by the driver after [build] returns; valid whenever the
          engine is running *)
  mutable next_op_id : int;
  mutable ops_rev : Memsys.op list;
  mutable reset_hooks : (unit -> unit) list;
}
(** The environment handed to a port builder. *)

val now : env -> int

val on_reset : env -> (unit -> unit) -> unit
(** Register a hook restoring component state on session reset.  Hooks
    run in registration order, after the engine/stats/stalls/taps are
    cleared and [env.rng] is reseeded — so a hook that re-splits the
    root RNG reproduces the draw its component took at build time. *)

val stall : env -> proc:int -> Wo_obs.Stall.reason -> int -> unit
(** Attribute stall cycles ending now. *)

val stall_at : env -> proc:int -> Wo_obs.Stall.reason -> until:int -> int -> unit
(** Attribute stall cycles whose span ended at [until] (for waits whose
    phases are only known after the fact). *)

val resume :
  env ->
  int ->
  store:(Wo_prog.Instr.reg * Wo_core.Event.value) option ->
  delay:int ->
  unit
(** Resume processor [p]'s frontend. *)

val new_op : env -> proc:int -> Proc_frontend.memory_op -> Memsys.op
(** Record the issue of one memory operation: assigns the id, stamps
    [issued] with the current time, pre-fills [wv] for writes and
    appends the record to the run's operation list. *)

val fabric :
  env ->
  tag:('msg -> string) ->
  ?slow_procs:(int * int) list ->
  ?slow_routes:((int * int) * int) list ->
  Memsys.fabric_kind ->
  'msg Wo_interconnect.Fabric.t
(** Build the interconnect: a bus, or a network whose latency model is
    interpreted from the fabric kind with a dedicated RNG stream split
    from [env.rng] (the split happens exactly once, here, so every
    machine draws network jitter identically).  [slow_procs] /
    [slow_routes] wrap the model with node / route multipliers
    ({!Wo_interconnect.Latency.scale_nodes} / [scale_routes]); they are
    ignored by the bus, as before.  Every delivered message is recorded
    in [env.taps] under [tag msg].  Registers its own {!on_reset} hook
    (state drop + stream re-split), so builders need not. *)

val run :
  name:string ->
  local_cost:int ->
  build:(env -> Memsys.port) ->
  seed:int ->
  Wo_prog.Program.t ->
  Machine.result
(** One simulation: build the environment, let [build] assemble the
    memory system, wire and start one frontend per thread, run the
    engine to quiescence, then check drains and assemble the result.
    Raises {!Machine.Machine_error} with the unified rich diagnostics —
    per-processor frontend positions plus the port's protocol detail —
    on livelock (event limit), deadlock (unfinished frontend), leftover
    protocol state or an operation that never completed. *)

val new_session :
  name:string ->
  local_cost:int ->
  build:(env -> Memsys.port) ->
  Machine.engine ->
  Machine.session
(** A reusable context over the same [build].  The memory system, port
    and frontends are constructed on the first run (and again only if a
    program with a different processor count arrives); every run starts
    by resetting the environment in place — including the first, and
    including after a {!Machine.Machine_error} run, whose debris must
    not leak into the next seed.  Under [Compiled] the frontends step
    the program's {!Wo_prog.Prog_compile} artifact (supplied per run or
    compiled at binding and cached while the same program stays bound),
    falling back to the AST walk when compilation is unavailable.
    Results are deep-copied out of the mutable observability state and
    are byte-identical to fresh {!run} results. *)

val make :
  name:string ->
  description:string ->
  sequentially_consistent:bool ->
  weakly_ordered_drf0:bool ->
  local_cost:int ->
  build:(env -> Memsys.port) ->
  Machine.t
(** Package {!run} and {!new_session} as a {!Machine.t}. *)
