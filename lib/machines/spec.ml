module Json = Wo_obs.Json

type sync_policy =
  | Sync_none
  | Sync_sc
  | Sync_fence
  | Sync_def1_stall
  | Sync_reserve_bit
  | Sync_drf1_two_level

type memory =
  | Ideal
  | Uncached of {
      write_buffer : Uncached.buffer_config option;
      wait_write_ack : bool;
      modules : int;
    }
  | Cached of { hit_cycles : int; capacity : int option; coarse_counter : bool }

type model =
  | Model_sc
  | Model_tso of { depth : int; drain_delay : int }
  | Model_pso of { depth : int; drain_delay : int }
  | Model_ra of { window : int; drain_delay : int }

type t = {
  name : string;
  description : string;
  fabric : Memsys.fabric_kind;
  memory : memory;
  model : model;
  sync : sync_policy;
  local_cost : int;
}

let default_cached =
  Cached
    {
      hit_cycles = Wo_cache.Cache_ctrl.default_config.Wo_cache.Cache_ctrl.hit_cycles;
      capacity = None;
      coarse_counter = false;
    }

(* Consistency classification follows from the knobs, so JSON machines
   cannot mislabel themselves.  A relaxed ordering model reorders by
   construction; with synchronization enforced it is weakly ordered with
   respect to DRF0 (TSO/PSO drain on every synchronization operation; RA
   drains on releases, which every guaranteed cross-processor
   happens-before chain passes through). *)
let flags (s : t) =
  if s.model <> Model_sc then (false, s.sync <> Sync_none)
  else
  match s.memory with
  | Ideal -> (true, true)
  | Uncached u ->
    let wo = s.sync <> Sync_none in
    (u.wait_write_ack && u.write_buffer = None && wo, wo)
  | Cached _ -> (
    match s.sync with
    | Sync_none -> (false, false)
    | Sync_sc -> (true, true)
    | Sync_fence | Sync_def1_stall | Sync_reserve_bit | Sync_drf1_two_level ->
      (false, true))

let sequentially_consistent s = fst (flags s)
let weakly_ordered_drf0 s = snd (flags s)

let uncached_config (s : t) : Uncached.config =
  match s.memory with
  | Uncached { write_buffer; wait_write_ack; modules } ->
    {
      Uncached.fabric = s.fabric;
      write_buffer;
      wait_write_ack;
      (* Any enforcement on an uncached machine is fence-flavoured:
         synchronization drains the buffer and waits for every
         outstanding acknowledgement. *)
      flush_buffer_on_sync = s.sync <> Sync_none;
      modules;
      local_cost = s.local_cost;
    }
  | Ideal | Cached _ ->
    invalid_arg (Printf.sprintf "Spec.uncached_config: %s is not uncached" s.name)

let cached_policy = function
  | Sync_none -> Coherent.relaxed_policy
  | Sync_sc -> Coherent.sc_policy
  | Sync_def1_stall -> Coherent.def1_policy
  | Sync_reserve_bit | Sync_drf1_two_level -> Coherent.def2_policy
  | Sync_fence ->
    (* Fence on a cached machine: only synchronization operations gate on
       the outstanding-access counter, and the processor resumes once the
       synchronization commits.  None of the presets uses it — it is the
       spec layer's own point in the design space. *)
    {
      Coherent.pname = "fence";
      sync_as_data = false;
      gate = Coherent.Gate_sync_only;
      sync_wait = Coherent.Sync_wait_commit;
    }

let cached_config (s : t) : Coherent.config =
  match s.memory with
  | Cached { hit_cycles; capacity; coarse_counter } ->
    {
      Coherent.fabric = s.fabric;
      policy = cached_policy s.sync;
      cache =
        {
          Wo_cache.Cache_ctrl.hit_cycles;
          reserve_enabled =
            (match s.sync with
            | Sync_reserve_bit | Sync_drf1_two_level -> true
            | _ -> false);
          sync_read_shared =
            (match s.sync with
            | Sync_def1_stall | Sync_drf1_two_level -> true
            | _ -> false);
          capacity;
          coarse_counter;
        };
      slow_procs = [];
      slow_routes = [];
      local_cost = s.local_cost;
      migrations = [];
    }
  | Ideal | Uncached _ ->
    invalid_arg (Printf.sprintf "Spec.cached_config: %s is not cached" s.name)

let ordering_kind = function
  | Model_sc -> invalid_arg "Spec.ordering_kind: Model_sc has no ordering backend"
  | Model_tso { depth; drain_delay } -> Ordering.Tso { depth; drain_delay }
  | Model_pso { depth; drain_delay } -> Ordering.Pso { depth; drain_delay }
  | Model_ra { window; drain_delay } -> Ordering.Ra { window; drain_delay }

let model_hardware = function
  | Model_sc -> Wo_core.Sync_model.sc_hw
  | Model_tso _ -> Wo_core.Sync_model.tso_hw
  | Model_pso _ -> Wo_core.Sync_model.pso_hw
  | Model_ra _ -> Wo_core.Sync_model.ra_hw

let ordering_config (s : t) : Ordering.config =
  if s.model = Model_sc then
    invalid_arg
      (Printf.sprintf "Spec.ordering_config: %s has no ordering model" s.name);
  let modules =
    match s.memory with
    | Uncached { modules; _ } -> modules
    | Ideal | Cached _ ->
      invalid_arg
        (Printf.sprintf
           "Spec.ordering_config: %s: relaxed ordering models require \
            uncached memory"
           s.name)
  in
  {
    Ordering.fabric = s.fabric;
    kind = ordering_kind s.model;
    sync_barriers = s.sync <> Sync_none;
    modules;
    local_cost = s.local_cost;
  }

let build (s : t) : Machine.t =
  let sequentially_consistent, weakly_ordered_drf0 = flags s in
  if s.model <> Model_sc then
    Ordering.make ~name:s.name ~description:s.description
      ~sequentially_consistent ~weakly_ordered_drf0 (ordering_config s)
  else
  match s.memory with
  | Ideal ->
    { Ideal.machine with Machine.name = s.name; description = s.description }
  | Uncached _ ->
    Uncached.make ~name:s.name ~description:s.description
      ~sequentially_consistent ~weakly_ordered_drf0 (uncached_config s)
  | Cached _ ->
    Coherent.make ~name:s.name ~description:s.description
      ~sequentially_consistent ~weakly_ordered_drf0 (cached_config s)

(* --- names ----------------------------------------------------------------- *)

let sync_to_string = function
  | Sync_none -> "none"
  | Sync_sc -> "sc"
  | Sync_fence -> "fence"
  | Sync_def1_stall -> "def1-stall"
  | Sync_reserve_bit -> "reserve-bit"
  | Sync_drf1_two_level -> "drf1-two-level"

let sync_of_string = function
  | "none" -> Some Sync_none
  | "sc" -> Some Sync_sc
  | "fence" -> Some Sync_fence
  | "def1-stall" -> Some Sync_def1_stall
  | "reserve-bit" -> Some Sync_reserve_bit
  | "drf1-two-level" -> Some Sync_drf1_two_level
  | _ -> None

let model_to_string m = (model_hardware m).Wo_core.Sync_model.hname

let model_of_string = function
  | "sc" -> Some Model_sc
  | "tso" -> Some (Model_tso { depth = 8; drain_delay = 6 })
  | "pso" -> Some (Model_pso { depth = 8; drain_delay = 6 })
  | "ra" -> Some (Model_ra { window = 8; drain_delay = 6 })
  | _ -> None

let fabric_slug = function
  | Memsys.Bus { transfer_cycles } -> Printf.sprintf "bus%d" transfer_cycles
  | Memsys.Net { base; jitter } -> Printf.sprintf "net%dj%d" base jitter
  | Memsys.Net_spiky { base; jitter; _ } ->
    Printf.sprintf "spiky%dj%d" base jitter
  | Memsys.Net_fixed { latency } -> Printf.sprintf "fix%d" latency

(* --- JSON ------------------------------------------------------------------ *)

let fabric_to_json = function
  | Memsys.Bus { transfer_cycles } ->
    Json.Obj [ ("kind", Json.String "bus"); ("transfer_cycles", Json.Int transfer_cycles) ]
  | Memsys.Net { base; jitter } ->
    Json.Obj
      [ ("kind", Json.String "net"); ("base", Json.Int base); ("jitter", Json.Int jitter) ]
  | Memsys.Net_spiky { base; jitter; spike_probability; spike_factor } ->
    Json.Obj
      [
        ("kind", Json.String "net-spiky");
        ("base", Json.Int base);
        ("jitter", Json.Int jitter);
        ("spike_probability", Json.Float spike_probability);
        ("spike_factor", Json.Int spike_factor);
      ]
  | Memsys.Net_fixed { latency } ->
    Json.Obj [ ("kind", Json.String "net-fixed"); ("latency", Json.Int latency) ]

let memory_to_json = function
  | Ideal -> Json.Obj [ ("kind", Json.String "ideal") ]
  | Uncached { write_buffer; wait_write_ack; modules } ->
    Json.Obj
      [
        ("kind", Json.String "uncached");
        ("modules", Json.Int modules);
        ("wait_write_ack", Json.Bool wait_write_ack);
        ( "write_buffer",
          match write_buffer with
          | None -> Json.Null
          | Some b ->
            Json.Obj
              [
                ("depth", Json.Int b.Uncached.depth);
                ("read_bypass", Json.Bool b.Uncached.read_bypass);
                ("forwarding", Json.Bool b.Uncached.forwarding);
                ("drain_delay", Json.Int b.Uncached.drain_delay);
              ] );
      ]
  | Cached { hit_cycles; capacity; coarse_counter } ->
    Json.Obj
      [
        ("kind", Json.String "cached");
        ("hit_cycles", Json.Int hit_cycles);
        ( "capacity",
          match capacity with None -> Json.Null | Some c -> Json.Int c );
        ("coarse_counter", Json.Bool coarse_counter);
      ]

let model_to_json = function
  | Model_sc -> Json.String "sc"
  | Model_tso { depth; drain_delay } ->
    Json.Obj
      [
        ("kind", Json.String "tso");
        ("depth", Json.Int depth);
        ("drain_delay", Json.Int drain_delay);
      ]
  | Model_pso { depth; drain_delay } ->
    Json.Obj
      [
        ("kind", Json.String "pso");
        ("depth", Json.Int depth);
        ("drain_delay", Json.Int drain_delay);
      ]
  | Model_ra { window; drain_delay } ->
    Json.Obj
      [
        ("kind", Json.String "ra");
        ("window", Json.Int window);
        ("drain_delay", Json.Int drain_delay);
      ]

let to_json (s : t) =
  Json.Obj
    [
      ("name", Json.String s.name);
      ("description", Json.String s.description);
      ("fabric", fabric_to_json s.fabric);
      ("memory", memory_to_json s.memory);
      ("model", model_to_json s.model);
      ("sync", Json.String (sync_to_string s.sync));
      ("local_cost", Json.Int s.local_cost);
    ]

let to_string ?pretty s = Json.to_string ?pretty (to_json s)

let ( let* ) = Result.bind

let field_int ?default name j =
  match Json.member name j with
  | None | Some Json.Null -> (
    match default with
    | Some d -> Ok d
    | None -> Error (Printf.sprintf "missing integer field %S" name))
  | Some v -> (
    match Json.to_int_opt v with
    | Some i -> Ok i
    | None -> Error (Printf.sprintf "field %S: expected an integer" name))

let field_bool ?default name j =
  match Json.member name j with
  | None | Some Json.Null -> (
    match default with
    | Some d -> Ok d
    | None -> Error (Printf.sprintf "missing boolean field %S" name))
  | Some v -> (
    match Json.to_bool_opt v with
    | Some b -> Ok b
    | None -> Error (Printf.sprintf "field %S: expected a boolean" name))

let field_string ?default name j =
  match Json.member name j with
  | None | Some Json.Null -> (
    match default with
    | Some d -> Ok d
    | None -> Error (Printf.sprintf "missing string field %S" name))
  | Some v -> (
    match Json.to_string_opt v with
    | Some s -> Ok s
    | None -> Error (Printf.sprintf "field %S: expected a string" name))

let field_float ?default name j =
  match Json.member name j with
  | None | Some Json.Null -> (
    match default with
    | Some d -> Ok d
    | None -> Error (Printf.sprintf "missing number field %S" name))
  | Some v -> (
    match Json.to_float_opt v with
    | Some f -> Ok f
    | None -> Error (Printf.sprintf "field %S: expected a number" name))

let fabric_of_json j =
  let* kind = field_string "kind" j in
  match kind with
  | "bus" ->
    let* transfer_cycles = field_int ~default:2 "transfer_cycles" j in
    Ok (Memsys.Bus { transfer_cycles })
  | "net" ->
    let* base = field_int ~default:4 "base" j in
    let* jitter = field_int ~default:6 "jitter" j in
    Ok (Memsys.Net { base; jitter })
  | "net-spiky" ->
    let* base = field_int ~default:4 "base" j in
    let* jitter = field_int ~default:6 "jitter" j in
    let* spike_probability = field_float "spike_probability" j in
    let* spike_factor = field_int "spike_factor" j in
    Ok (Memsys.Net_spiky { base; jitter; spike_probability; spike_factor })
  | "net-fixed" ->
    let* latency = field_int "latency" j in
    Ok (Memsys.Net_fixed { latency })
  | k -> Error (Printf.sprintf "unknown fabric kind %S" k)

let memory_of_json j =
  let* kind = field_string "kind" j in
  match kind with
  | "ideal" -> Ok Ideal
  | "uncached" ->
    let* modules = field_int ~default:1 "modules" j in
    let* wait_write_ack = field_bool ~default:false "wait_write_ack" j in
    let* write_buffer =
      match Json.member "write_buffer" j with
      | None | Some Json.Null -> Ok None
      | Some b ->
        let* depth = field_int "depth" b in
        let* read_bypass = field_bool ~default:true "read_bypass" b in
        let* forwarding = field_bool ~default:true "forwarding" b in
        let* drain_delay = field_int ~default:6 "drain_delay" b in
        Ok (Some { Uncached.depth; read_bypass; forwarding; drain_delay })
    in
    Ok (Uncached { write_buffer; wait_write_ack; modules })
  | "cached" ->
    let* hit_cycles = field_int ~default:1 "hit_cycles" j in
    let* capacity =
      match Json.member "capacity" j with
      | None | Some Json.Null -> Ok None
      | Some v -> (
        match Json.to_int_opt v with
        | Some c -> Ok (Some c)
        | None -> Error "field \"capacity\": expected an integer or null")
    in
    let* coarse_counter = field_bool ~default:false "coarse_counter" j in
    Ok (Cached { hit_cycles; capacity; coarse_counter })
  | k -> Error (Printf.sprintf "unknown memory kind %S" k)

(* A bare name ("tso") takes the default knobs; the object form spells
   them out, as [to_json] always does for non-SC models. *)
let model_of_json j =
  let parametrized kind j =
    let* drain_delay = field_int ~default:6 "drain_delay" j in
    match kind with
    | "tso" ->
      let* depth = field_int ~default:8 "depth" j in
      Ok (Model_tso { depth; drain_delay })
    | "pso" ->
      let* depth = field_int ~default:8 "depth" j in
      Ok (Model_pso { depth; drain_delay })
    | "ra" ->
      let* window = field_int ~default:8 "window" j in
      Ok (Model_ra { window; drain_delay })
    | k -> Error (Printf.sprintf "unknown ordering model %S" k)
  in
  match j with
  | Json.String "sc" -> Ok Model_sc
  | Json.String k -> parametrized k (Json.Obj [])
  | Json.Obj _ ->
    let* kind = field_string "kind" j in
    if kind = "sc" then Ok Model_sc else parametrized kind j
  | _ -> Error "field \"model\": expected a string or an object"

let default_ordering_memory =
  Uncached { write_buffer = None; wait_write_ack = false; modules = 1 }

let of_json j =
  let* name = field_string "name" j in
  let* description = field_string ~default:"" "description" j in
  let* fabric =
    match Json.member "fabric" j with
    | None | Some Json.Null -> Ok Coherent.default_net
    | Some f -> fabric_of_json f
  in
  let* model =
    match Json.member "model" j with
    | None | Some Json.Null -> Ok Model_sc
    | Some m -> model_of_json m
  in
  let* memory =
    match Json.member "memory" j with
    | None | Some Json.Null ->
      Ok (if model = Model_sc then default_cached else default_ordering_memory)
    | Some m -> memory_of_json m
  in
  let* () =
    match (model, memory) with
    | Model_sc, _ | _, Uncached _ -> Ok ()
    | _, (Ideal | Cached _) ->
      Error
        (Printf.sprintf
           "model %S requires uncached memory (or omit \"memory\")"
           (model_to_string model))
  in
  let* sync =
    let* s = field_string ~default:"none" "sync" j in
    match sync_of_string s with
    | Some sy -> Ok sy
    | None -> Error (Printf.sprintf "unknown sync policy %S" s)
  in
  let* local_cost = field_int ~default:1 "local_cost" j in
  Ok { name; description; fabric; memory; model; sync; local_cost }

let of_string s =
  let* j = Json.of_string s in
  of_json j

let of_file path =
  match In_channel.with_open_text path In_channel.input_all with
  | contents -> (
    match of_string contents with
    | Ok s -> Ok s
    | Error e -> Error (Printf.sprintf "%s: %s" path e))
  | exception Sys_error e -> Error e

(* --- grids ----------------------------------------------------------------- *)

let grid ?fabrics ?syncs ?models (base : t) : t list =
  let fabrics = Option.value fabrics ~default:[ base.fabric ] in
  let syncs = Option.value syncs ~default:[ base.sync ] in
  let models = Option.value models ~default:[ base.model ] in
  List.concat_map
    (fun fabric ->
      List.concat_map
        (fun sync ->
          List.map
            (fun model ->
              (* Names only grow a model suffix when a relaxed model is in
                 play, so SC grids keep their historical names.  Relaxed
                 models need uncached memory; a cached/ideal base falls
                 back to the one-module default. *)
              let name =
                let stem =
                  Printf.sprintf "%s/%s+%s" base.name (fabric_slug fabric)
                    (sync_to_string sync)
                in
                if model = Model_sc then stem
                else stem ^ "@" ^ model_to_string model
              in
              let memory =
                match (model, base.memory) with
                | Model_sc, m | _, (Uncached _ as m) -> m
                | _, (Ideal | Cached _) -> default_ordering_memory
              in
              { base with name; fabric; sync; model; memory })
            models)
        syncs)
    fabrics
