module Instr = Wo_prog.Instr
module P = Wo_prog.Prog_compile

type memory_op = {
  kind : Wo_core.Event.kind;
  loc : Wo_core.Event.loc;
  payload : [ `Read | `Write of Wo_core.Event.value | `Rmw of Wo_core.Event.rmw ];
  dest : Instr.reg option;
  seq : int;
}

type request = Access of memory_op | Fence

type status = Running | Blocked | Done

(* Compiled binding: one thread's view of a {!Wo_prog.Prog_compile}
   artifact.  [regs] on the owning [t] is the full flat register file so
   expression ids (which name flat registers) evaluate without
   translation; this thread only ever touches its own slice. *)
type compiled = {
  art : P.t;
  ccode : int array;  (* art.code.(proc) *)
  clen : int;
  stack : int array;  (* postfix scratch, length >= art.max_stack *)
  mutable pc : int;
}

type t = {
  engine : Wo_sim.Engine.t;
  proc : Wo_core.Event.proc;
  local_cost : int;
  perform : request -> unit;
  on_finish : unit -> unit;
  (* AST mode *)
  mutable code_full : Instr.t list;
  mutable code : Instr.t list;
  mutable all_regs : int array;  (* sorted source register ids *)
  (* Register file: AST mode = parallel to [all_regs]; compiled mode =
     flat file of length [art.nregs]. *)
  mutable regs : int array;
  mutable compiled : compiled option;
  mutable status : status;
  mutable seq : int;
  (* The [advance] thunk, built once per frontend: local ops schedule it
     on every step, and a fresh closure per event is the dominant
     allocation of the compiled hot loop. *)
  mutable advance_fn : unit -> unit;
  (* Remaining inline local steps before the compiled walker must yield
     a real engine event (see [advance_compiled_local]). *)
  mutable fuse_budget : int;
}

(* The compiled walker may execute this many consecutive local ops
   inline (via [Engine.try_step_inline]) before yielding one real event;
   the yield keeps [Engine.run]'s event-limit watchdog able to observe a
   purely-local runaway loop.  Results are identical at any value. *)
let fuse_budget_max = 256

(* Binary search over the sorted register-id array; -1 if absent. *)
let rec rfind (a : int array) r lo hi =
  if lo >= hi then -1
  else
    let mid = (lo + hi) / 2 in
    let v = Array.unsafe_get a mid in
    if v = r then mid else if v < r then rfind a r (mid + 1) hi else rfind a r lo mid

let lookup t r =
  let i = rfind t.all_regs r 0 (Array.length t.all_regs) in
  if i < 0 then 0 else Array.unsafe_get t.regs i

(* [Instr.regs] covers every register the code mentions, so stores always
   hit; a miss (impossible for code and ids from the same program) is a
   no-op, matching the old map's read-of-unwritten-register default. *)
let store_ast t r v =
  let i = rfind t.all_regs r 0 (Array.length t.all_regs) in
  if i >= 0 then Array.unsafe_set t.regs i v

let bind t ?compiled code =
  (match compiled with
  | Some (art : P.t) ->
    let ccode = art.P.code.(t.proc) in
    let need = art.P.nregs in
    let regs =
      if Array.length t.regs = need then t.regs else Array.make (max 1 need) 0
    in
    let stack =
      match t.compiled with
      | Some c when Array.length c.stack >= art.P.max_stack -> c.stack
      | _ -> Array.make (max 1 art.P.max_stack) 0
    in
    t.compiled <- Some { art; ccode; clen = Array.length ccode; stack; pc = 0 };
    t.regs <- regs;
    t.code_full <- [];
    t.code <- [];
    t.all_regs <- [||]
  | None ->
    let all = Array.of_list (Instr.regs code) in
    let regs =
      if t.compiled = None && Array.length t.regs = Array.length all then t.regs
      else Array.make (max 1 (Array.length all)) 0
    in
    t.compiled <- None;
    t.regs <- regs;
    t.code_full <- code;
    t.code <- code;
    t.all_regs <- all)

let reset t =
  t.status <- Blocked;
  t.seq <- 0;
  t.fuse_budget <- fuse_budget_max;
  Array.fill t.regs 0 (Array.length t.regs) 0;
  match t.compiled with
  | Some c -> c.pc <- 0
  | None -> t.code <- t.code_full

let rebind t ?compiled code =
  bind t ?compiled code;
  reset t

let next_seq t =
  let s = t.seq in
  t.seq <- s + 1;
  s

let memory_op_of_instr t instr =
  let env r = lookup t r in
  match instr with
  | Instr.Read (r, loc) ->
    Some { kind = Wo_core.Event.Data_read; loc; payload = `Read; dest = Some r; seq = 0 }
  | Instr.Sync_read (r, loc) ->
    Some { kind = Wo_core.Event.Sync_read; loc; payload = `Read; dest = Some r; seq = 0 }
  | Instr.Write (loc, e) ->
    Some
      {
        kind = Wo_core.Event.Data_write;
        loc;
        payload = `Write (Instr.eval_expr env e);
        dest = None;
        seq = 0;
      }
  | Instr.Sync_write (loc, e) ->
    Some
      {
        kind = Wo_core.Event.Sync_write;
        loc;
        payload = `Write (Instr.eval_expr env e);
        dest = None;
        seq = 0;
      }
  | Instr.Test_and_set (r, loc) ->
    Some
      {
        kind = Wo_core.Event.Sync_rmw;
        loc;
        payload = `Rmw Wo_core.Event.Rmw_tas;
        dest = Some r;
        seq = 0;
      }
  | Instr.Fetch_and_add (r, loc, e) ->
    let addend = Instr.eval_expr env e in
    Some
      {
        kind = Wo_core.Event.Sync_rmw;
        loc;
        payload = `Rmw (Wo_core.Event.Rmw_faa addend);
        dest = Some r;
        seq = 0;
      }
  | Instr.Assign _ | Instr.If _ | Instr.While _ | Instr.Nop | Instr.Fence ->
    None

(* Issue-time markers on the processor's track (spans covering each
   operation's lifetime are emitted machine-side, where completion times
   are known). *)
let note_issue t what =
  let obs = Wo_obs.Recorder.active () in
  if Wo_obs.Recorder.enabled obs then
    Wo_obs.Recorder.instant obs ~cat:Wo_obs.Recorder.Proc ~track:t.proc
      ~name:what ~ts:(Wo_sim.Engine.now t.engine)

(* --- compiled-mode expression evaluation ----------------------------------- *)

(* [sp] rides as a parameter of a zero-free-variable loop, not a [ref]:
   the classic compiler boxes refs (and heap-allocates closures for
   local recursive functions that capture), and one box per evaluated
   expression is measurable on compute-heavy programs. *)
let rec postfix_step stack pool regs off len i sp =
  if i = len then Array.unsafe_get stack 0
  else begin
    let base = off + (2 * i) in
    let tag = Array.unsafe_get pool base in
    if tag = P.p_const then begin
      Array.unsafe_set stack sp (Array.unsafe_get pool (base + 1));
      postfix_step stack pool regs off len (i + 1) (sp + 1)
    end
    else if tag = P.p_reg then begin
      Array.unsafe_set stack sp
        (Array.unsafe_get regs (Array.unsafe_get pool (base + 1)));
      postfix_step stack pool regs off len (i + 1) (sp + 1)
    end
    else begin
      let b = Array.unsafe_get stack (sp - 1) in
      let a = Array.unsafe_get stack (sp - 2) in
      let v =
        if tag = P.p_add then a + b
        else if tag = P.p_sub then a - b
        else if tag = P.p_mul then a * b
        else if tag = P.p_eq then if a = b then 1 else 0
        else if tag = P.p_ne then if a <> b then 1 else 0
        else if tag = P.p_lt then if a < b then 1 else 0
        else if a <= b then 1
        else 0
      in
      Array.unsafe_set stack (sp - 2) v;
      postfix_step stack pool regs off len (i + 1) (sp - 1)
    end
  end

let eval_postfix (c : compiled) (regs : int array) e =
  let art = c.art in
  postfix_step c.stack art.P.epool regs art.P.e_arg.(e) art.P.e_len.(e) 0 0

let ceval (c : compiled) (regs : int array) e =
  let art = c.art in
  let k = Array.unsafe_get art.P.e_kind e in
  if k = P.e_const then Array.unsafe_get art.P.e_arg e
  else if k = P.e_reg then Array.unsafe_get regs (Array.unsafe_get art.P.e_arg e)
  else eval_postfix c regs e

(* Unconditional jumps are resolved for free at the start of an advance,
   mirroring the AST walker where the join after an [If] and the back
   edge of a [While] cost nothing.  Chains are acyclic: back edges always
   target a [jif]. *)
let rec resolve_jmp_in (ccode : int array) clen pc =
  if pc < clen && Array.unsafe_get ccode pc = P.o_jmp then
    resolve_jmp_in ccode clen (Array.unsafe_get ccode (pc + 1))
  else pc

let resolve_jmp (c : compiled) pc = resolve_jmp_in c.ccode c.clen pc

let rec advance t =
  match t.compiled with
  | Some c -> cadvance t c
  | None -> ast_advance t

(* One instruction per engine event, exactly like the AST walker: local
   ops re-schedule at [local_cost]; memory ops and fences block
   synchronously inside the event. *)
and cadvance t c =
  let pc = resolve_jmp c c.pc in
  c.pc <- pc;
  if pc >= c.clen then begin
    if t.status <> Done then begin
      t.status <- Done;
      note_issue t "finish";
      t.on_finish ()
    end
  end
  else begin
    let code = c.ccode in
    let op = Array.unsafe_get code pc in
    if op <= P.o_faa then begin
      let a = code.(pc + 1) and b = code.(pc + 2) in
      let kind, loc, payload, dest =
        if op = P.o_read then
          (Wo_core.Event.Data_read, c.art.P.locs.(b), `Read, Some a)
        else if op = P.o_write then
          (Wo_core.Event.Data_write, c.art.P.locs.(a), `Write (ceval c t.regs b), None)
        else if op = P.o_sync_read then
          (Wo_core.Event.Sync_read, c.art.P.locs.(b), `Read, Some a)
        else if op = P.o_sync_write then
          ( Wo_core.Event.Sync_write,
            c.art.P.locs.(a),
            `Write (ceval c t.regs b),
            None )
        else if op = P.o_tas then
          (Wo_core.Event.Sync_rmw, c.art.P.locs.(b), `Rmw Wo_core.Event.Rmw_tas, Some a)
        else
          ( Wo_core.Event.Sync_rmw,
            c.art.P.locs.(b),
            `Rmw (Wo_core.Event.Rmw_faa (ceval c t.regs code.(pc + 3))),
            Some a )
      in
      c.pc <- pc + P.op_stride;
      t.status <- Blocked;
      (if Wo_obs.Recorder.enabled (Wo_obs.Recorder.active ()) then
         note_issue t
           (Format.asprintf "issue.%a.%a" Wo_core.Event.pp_kind kind
              Wo_core.Event.pp_loc loc));
      t.perform (Access { kind; loc; payload; dest; seq = next_seq t })
    end
    else if op = P.o_fence then begin
      c.pc <- pc + P.op_stride;
      t.status <- Blocked;
      note_issue t "issue.fence";
      t.perform Fence
    end
    else begin
      (if op = P.o_assign then begin
         t.regs.(code.(pc + 1)) <- ceval c t.regs code.(pc + 2);
         c.pc <- pc + P.op_stride
       end
       else if op = P.o_jif then
         c.pc <-
           (if ceval c t.regs code.(pc + 1) <> 0 then pc + P.op_stride
            else code.(pc + 2))
       else (* o_nop *) c.pc <- pc + P.op_stride);
      advance_compiled_local t
    end
  end

(* Local-op continuation of the compiled walker.  A local op's next step
   is a self-reschedule at [local_cost]; when the engine certifies that
   nothing else is due first, the step runs inline — int-decoded stepping
   without a heap round-trip per instruction — with results bit-identical
   to the evented path (see [Engine.try_step_inline]).  The AST walker
   keeps the one-event-per-instruction discipline verbatim: it is the
   oracle the compiled engine is checked against, so it stays on the
   pre-compilation execution path.  Tail calls throughout: a fused run of
   local ops consumes no stack. *)
and advance_compiled_local t =
  if
    t.fuse_budget > 0
    && Wo_sim.Engine.try_step_inline t.engine ~delay:t.local_cost
  then begin
    t.fuse_budget <- t.fuse_budget - 1;
    advance t
  end
  else begin
    t.fuse_budget <- fuse_budget_max;
    schedule_advance t ~delay:t.local_cost
  end

and ast_advance t =
  match t.code with
  | [] ->
    if t.status <> Done then begin
      t.status <- Done;
      note_issue t "finish";
      t.on_finish ()
    end
  | instr :: rest -> (
    match memory_op_of_instr t instr with
    | Some op ->
      t.code <- rest;
      t.status <- Blocked;
      (if Wo_obs.Recorder.enabled (Wo_obs.Recorder.active ()) then
         note_issue t
           (Format.asprintf "issue.%a.%a" Wo_core.Event.pp_kind op.kind
              Wo_core.Event.pp_loc op.loc));
      t.perform (Access { op with seq = next_seq t })
    | None -> (
      match instr with
      | Instr.Fence ->
        t.code <- rest;
        t.status <- Blocked;
        note_issue t "issue.fence";
        t.perform Fence
      | _ ->
        let env r = lookup t r in
        (match instr with
        | Instr.Assign (r, e) ->
          store_ast t r (Instr.eval_expr env e);
          t.code <- rest
        | Instr.Nop -> t.code <- rest
        | Instr.If (c, a, b) ->
          t.code <- (if Instr.eval_cond env c then a else b) @ rest
        | Instr.While (c, body) ->
          if Instr.eval_cond env c then t.code <- body @ (instr :: rest)
          else t.code <- rest
        | Instr.Read _ | Instr.Write _ | Instr.Sync_read _
        | Instr.Sync_write _ | Instr.Test_and_set _ | Instr.Fetch_and_add _
        | Instr.Fence ->
          assert false);
        schedule_advance t ~delay:t.local_cost))

and schedule_advance t ~delay =
  t.status <- Running;
  Wo_sim.Engine.schedule t.engine ~delay t.advance_fn

let create ~engine ~proc ~code ?(local_cost = 1) ?compiled ~perform ~on_finish () =
  let t =
    {
      engine;
      proc;
      local_cost = max 1 local_cost;
      perform;
      on_finish;
      code_full = [];
      code = [];
      all_regs = [||];
      regs = [||];
      compiled = None;
      status = Blocked;
      seq = 0;
      advance_fn = ignore;
      fuse_budget = fuse_budget_max;
    }
  in
  t.advance_fn <- (fun () -> advance t);
  bind t ?compiled code;
  t

let start t = schedule_advance t ~delay:0

let resume t ~store ~delay =
  if t.status <> Blocked then
    invalid_arg "Proc_frontend.resume: processor is not blocked";
  (match store with
  | Some (r, v) -> (
    match t.compiled with
    | Some _ -> t.regs.(r) <- v  (* dest carries a flat register index *)
    | None -> store_ast t r v)
  | None -> ());
  schedule_advance t ~delay

let finished t = t.status = Done
let blocked t = t.status = Blocked
let proc t = t.proc

let registers t =
  match t.compiled with
  | Some c ->
    let ids = c.art.P.reg_ids.(t.proc) in
    let base = c.art.P.reg_base.(t.proc) in
    List.init (Array.length ids) (fun i -> (ids.(i), t.regs.(base + i)))
  | None ->
    List.init (Array.length t.all_regs) (fun i -> (t.all_regs.(i), t.regs.(i)))

let current_position t =
  match t.compiled with
  | Some c ->
    if c.pc >= c.clen then
      if t.status = Done then "finished" else "at end, blocked"
    else
      Printf.sprintf "blocked at pc %d/%d (opcode %d, seq %d)" c.pc c.clen
        c.ccode.(c.pc) t.seq
  | None -> (
    match t.code with
    | [] -> if t.status = Done then "finished" else "at end, blocked"
    | instr :: _ ->
      Format.asprintf "blocked before %a (seq %d)" Instr.pp instr t.seq)
