module Instr = Wo_prog.Instr
module Int_map = Map.Make (Int)

type memory_op = {
  kind : Wo_core.Event.kind;
  loc : Wo_core.Event.loc;
  payload :
    [ `Read
    | `Write of Wo_core.Event.value
    | `Rmw of Wo_core.Event.value -> Wo_core.Event.value ];
  dest : Instr.reg option;
  seq : int;
}

type request = Access of memory_op | Fence

type status = Running | Blocked | Done

type t = {
  engine : Wo_sim.Engine.t;
  proc : Wo_core.Event.proc;
  local_cost : int;
  perform : request -> unit;
  on_finish : unit -> unit;
  all_regs : Instr.reg list;
  mutable env : Wo_core.Event.value Int_map.t;
  mutable code : Instr.t list;
  mutable status : status;
  mutable seq : int;
}

let lookup t r = match Int_map.find_opt r t.env with Some v -> v | None -> 0

let create ~engine ~proc ~code ?(local_cost = 1) ~perform ~on_finish () =
  {
    engine;
    proc;
    local_cost = max 1 local_cost;
    perform;
    on_finish;
    all_regs = Instr.regs code;
    env = Int_map.empty;
    code;
    status = Blocked;
    seq = 0;
  }

let next_seq t =
  let s = t.seq in
  t.seq <- s + 1;
  s

let memory_op_of_instr t instr =
  let env r = lookup t r in
  match instr with
  | Instr.Read (r, loc) ->
    Some { kind = Wo_core.Event.Data_read; loc; payload = `Read; dest = Some r; seq = 0 }
  | Instr.Sync_read (r, loc) ->
    Some { kind = Wo_core.Event.Sync_read; loc; payload = `Read; dest = Some r; seq = 0 }
  | Instr.Write (loc, e) ->
    Some
      {
        kind = Wo_core.Event.Data_write;
        loc;
        payload = `Write (Instr.eval_expr env e);
        dest = None;
        seq = 0;
      }
  | Instr.Sync_write (loc, e) ->
    Some
      {
        kind = Wo_core.Event.Sync_write;
        loc;
        payload = `Write (Instr.eval_expr env e);
        dest = None;
        seq = 0;
      }
  | Instr.Test_and_set (r, loc) ->
    Some
      {
        kind = Wo_core.Event.Sync_rmw;
        loc;
        payload = `Rmw (fun _old -> 1);
        dest = Some r;
        seq = 0;
      }
  | Instr.Fetch_and_add (r, loc, e) ->
    let addend = Instr.eval_expr env e in
    Some
      {
        kind = Wo_core.Event.Sync_rmw;
        loc;
        payload = `Rmw (fun old -> old + addend);
        dest = Some r;
        seq = 0;
      }
  | Instr.Assign _ | Instr.If _ | Instr.While _ | Instr.Nop | Instr.Fence ->
    None

(* Issue-time markers on the processor's track (spans covering each
   operation's lifetime are emitted machine-side, where completion times
   are known). *)
let note_issue t what =
  let obs = Wo_obs.Recorder.active () in
  if Wo_obs.Recorder.enabled obs then
    Wo_obs.Recorder.instant obs ~cat:Wo_obs.Recorder.Proc ~track:t.proc
      ~name:what ~ts:(Wo_sim.Engine.now t.engine)

let rec advance t =
  match t.code with
  | [] ->
    if t.status <> Done then begin
      t.status <- Done;
      note_issue t "finish";
      t.on_finish ()
    end
  | instr :: rest -> (
    match memory_op_of_instr t instr with
    | Some op ->
      t.code <- rest;
      t.status <- Blocked;
      (if Wo_obs.Recorder.enabled (Wo_obs.Recorder.active ()) then
         note_issue t
           (Format.asprintf "issue.%a.%a" Wo_core.Event.pp_kind op.kind
              Wo_core.Event.pp_loc op.loc));
      t.perform (Access { op with seq = next_seq t })
    | None -> (
      match instr with
      | Instr.Fence ->
        t.code <- rest;
        t.status <- Blocked;
        note_issue t "issue.fence";
        t.perform Fence
      | _ ->
        let env r = lookup t r in
        (match instr with
        | Instr.Assign (r, e) ->
          t.env <- Int_map.add r (Instr.eval_expr env e) t.env;
          t.code <- rest
        | Instr.Nop -> t.code <- rest
        | Instr.If (c, a, b) ->
          t.code <- (if Instr.eval_cond env c then a else b) @ rest
        | Instr.While (c, body) ->
          if Instr.eval_cond env c then t.code <- body @ (instr :: rest)
          else t.code <- rest
        | Instr.Read _ | Instr.Write _ | Instr.Sync_read _
        | Instr.Sync_write _ | Instr.Test_and_set _ | Instr.Fetch_and_add _
        | Instr.Fence ->
          assert false);
        schedule_advance t ~delay:t.local_cost))

and schedule_advance t ~delay =
  t.status <- Running;
  Wo_sim.Engine.schedule t.engine ~delay (fun () -> advance t)

let start t = schedule_advance t ~delay:0

let resume t ~store ~delay =
  if t.status <> Blocked then
    invalid_arg "Proc_frontend.resume: processor is not blocked";
  (match store with
  | Some (r, v) -> t.env <- Int_map.add r v t.env
  | None -> ());
  schedule_advance t ~delay

let finished t = t.status = Done
let blocked t = t.status = Blocked
let proc t = t.proc

let registers t =
  List.map (fun r -> (r, lookup t r)) t.all_regs |> List.sort compare

let current_position t =
  match t.code with
  | [] -> if t.status = Done then "finished" else "at end, blocked"
  | instr :: _ ->
    Format.asprintf "blocked before %a (seq %d)" Instr.pp instr t.seq
