exception Machine_error of string

type result = {
  outcome : Wo_prog.Outcome.t;
  trace : Wo_sim.Trace.t;
  cycles : int;
  proc_finish : int array;
  stats : (string * int) list;
  stalls : Wo_obs.Stall.t;
  taps : Wo_obs.Tap.t;
}

type t = {
  name : string;
  description : string;
  sequentially_consistent : bool;
  weakly_ordered_drf0 : bool;
  run : seed:int -> Wo_prog.Program.t -> result;
}

let run t ?(seed = 0) program = t.run ~seed program

(* The one place the legacy [P<i>.stall.<reason>] stats view is derived
   from the typed accounts; machines pass only their own counters. *)
let make_result ~outcome ~trace ~cycles ~proc_finish ?(stats = []) ~stalls
    ~taps () =
  {
    outcome;
    trace;
    cycles;
    proc_finish;
    stats = stats @ Wo_obs.Stall.to_stats stalls @ Wo_obs.Tap.to_stats taps;
    stalls;
    taps;
  }

let check_lemma1 ?init r =
  Wo_core.Lemma1.check ?init
    ~events:(Wo_sim.Trace.events r.trace)
    ~po:(Wo_sim.Trace.program_order r.trace)
    ~so:(Wo_sim.Trace.sync_commit_order r.trace)
    ()

let stall r ~proc reason =
  match Wo_obs.Stall.reason_of_name reason with
  | Some re -> Wo_obs.Stall.get r.stalls ~proc re
  | None -> 0

let total_stalls r = Wo_obs.Stall.total r.stalls

let proc_stalls r ~proc = Wo_obs.Stall.proc_total r.stalls ~proc
