exception Machine_error of string

type result = {
  outcome : Wo_prog.Outcome.t;
  trace : Wo_sim.Trace.t;
  cycles : int;
  proc_finish : int array;
  stats : (string * int) list;
  stalls : Wo_obs.Stall.t;
  taps : Wo_obs.Tap.t;
}

type engine = Compiled | Ast

let engine_name = function Compiled -> "compiled" | Ast -> "ast"

let engine_of_string = function
  | "compiled" -> Some Compiled
  | "ast" -> Some Ast
  | _ -> None

type session = {
  session_machine : string;
  session_engine : engine;
  session_run :
    seed:int -> ?compiled:Wo_prog.Prog_compile.t -> Wo_prog.Program.t -> result;
}

type t = {
  name : string;
  description : string;
  sequentially_consistent : bool;
  weakly_ordered_drf0 : bool;
  run : seed:int -> Wo_prog.Program.t -> result;
  new_session : engine -> session;
}

let run t ?(seed = 0) program = t.run ~seed program

let new_session t engine = t.new_session engine

let session_run s ?(seed = 0) ?compiled program =
  s.session_run ~seed ?compiled program

let run_batch s ?compiled ~seeds program =
  List.map (fun seed -> s.session_run ~seed ?compiled program) seeds

(* --- run accounting --------------------------------------------------------- *)

(* Atomics: sweep/campaign workers run machines from several domains. *)
let runs_count = Atomic.make 0
let session_reuse_count = Atomic.make 0
let compile_fallback_count = Atomic.make 0

let note_run () = Atomic.incr runs_count
let note_session_reuse () = Atomic.incr session_reuse_count
let note_compile_fallback () = Atomic.incr compile_fallback_count

let runs () = Atomic.get runs_count
let session_reuses () = Atomic.get session_reuse_count
let compile_fallbacks () = Atomic.get compile_fallback_count

let emit_counters () =
  let r = Wo_obs.Recorder.active () in
  if Wo_obs.Recorder.enabled r then begin
    let c name value =
      Wo_obs.Recorder.counter r ~cat:Wo_obs.Recorder.Proc ~track:0 ~name ~ts:0
        ~value
    in
    c "machine.runs" (runs ());
    c "machine.session_reuse" (session_reuses ());
    c "machine.compile_fallbacks" (compile_fallbacks ())
  end

(* The one place the legacy [P<i>.stall.<reason>] stats view is derived
   from the typed accounts; machines pass only their own counters. *)
let make_result ~outcome ~trace ~cycles ~proc_finish ?(stats = []) ~stalls
    ~taps () =
  {
    outcome;
    trace;
    cycles;
    proc_finish;
    stats = stats @ Wo_obs.Stall.to_stats stalls @ Wo_obs.Tap.to_stats taps;
    stalls;
    taps;
  }

let check_lemma1 ?init r =
  Wo_core.Lemma1.check ?init
    ~events:(Wo_sim.Trace.events r.trace)
    ~po:(Wo_sim.Trace.program_order r.trace)
    ~so:(Wo_sim.Trace.sync_commit_order r.trace)
    ()

let stall r ~proc reason =
  match Wo_obs.Stall.reason_of_name reason with
  | Some re -> Wo_obs.Stall.get r.stalls ~proc re
  | None -> 0

let total_stalls r = Wo_obs.Stall.total r.stalls

let proc_stalls r ~proc = Wo_obs.Stall.proc_total r.stalls ~proc
