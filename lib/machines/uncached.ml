type buffer_config = {
  depth : int;
  read_bypass : bool;
  forwarding : bool;
  drain_delay : int;
      (* cycles an entry rests in the buffer before going to memory; the
         window in which a bypassing read can overtake it *)
}

type config = {
  fabric : Coherent.fabric_kind;
  write_buffer : buffer_config option;
  wait_write_ack : bool;
  flush_buffer_on_sync : bool;
  modules : int;
  local_cost : int;
}

(* Messages between processors and memory modules. *)
type amsg =
  | M_read of { loc : Wo_core.Event.loc; proc : int; tag : int }
  | M_write of { loc : Wo_core.Event.loc; value : Wo_core.Event.value; proc : int; tag : int }
  | M_rmw of {
      loc : Wo_core.Event.loc;
      f : Wo_core.Event.value -> Wo_core.Event.value;
      proc : int;
      tag : int;
    }
  | M_read_reply of { tag : int; value : Wo_core.Event.value; applied_at : int }
  | M_write_ack of { tag : int; applied_at : int }
  | M_rmw_reply of { tag : int; old : Wo_core.Event.value; applied_at : int }

let amsg_tag = function
  | M_read _ -> "Read"
  | M_write _ -> "Write"
  | M_rmw _ -> "Rmw"
  | M_read_reply _ -> "ReadReply"
  | M_write_ack _ -> "WriteAck"
  | M_rmw_reply _ -> "RmwReply"

type op_rec = {
  id : int;
  oproc : int;
  oseq : int;
  okind : Wo_core.Event.kind;
  oloc : Wo_core.Event.loc;
  mutable rv : Wo_core.Event.value option;
  mutable wv : Wo_core.Event.value option;
  mutable issued : int;
  mutable committed : int;
  mutable performed : int;
}

(* Per-location write sequencing: preserves intra-processor same-location
   ordering (condition 1 of 5.1) even with fire-and-forget writes -- at most
   one write per location is in flight, later ones queue, and reads of a
   location with outstanding writes forward the youngest value. *)
type loc_state = {
  mutable in_flight : bool;
  pending_sends : (unit -> unit) Queue.t;
  mutable last_value : Wo_core.Event.value;
  mutable loc_waiters : (unit -> unit) list;
}

type proc_ctx = {
  mutable fe : Proc_frontend.t option;
  buffer : Wo_cache.Write_buffer.t option;
  loc_states : (Wo_core.Event.loc, loc_state) Hashtbl.t;
  mutable outstanding_acks : int;
  mutable drain_active : bool;
  mutable quiet_waiters : (unit -> unit) list;
      (* waiting for buffer empty && no outstanding acks *)
  mutable finish_time : int;
}

let frontend ctx = Option.get ctx.fe

let make ~name ~description ~sequentially_consistent ~weakly_ordered_drf0
    (config : config) : Machine.t =
  if config.modules <= 0 then invalid_arg "Uncached.make: modules must be positive";
  let run ~seed (program : Wo_prog.Program.t) : Machine.result =
    let engine = Wo_sim.Engine.create () in
    let stats = Wo_sim.Stats.create () in
    let stalls = Wo_obs.Stall.create () in
    let taps = Wo_obs.Tap.create () in
    let obs = Wo_obs.Recorder.active () in
    let tap msg ~src:_ ~dst:_ ~latency =
      Wo_obs.Tap.record taps ~name:(amsg_tag msg) ~latency
    in
    let rng = Wo_sim.Rng.make seed in
    let num_procs = Wo_prog.Program.num_procs program in
    let module_node loc = num_procs + (loc mod config.modules) in
    let fabric =
      match config.fabric with
      | Coherent.Bus { transfer_cycles } ->
        Wo_interconnect.Fabric.of_bus
          (Wo_interconnect.Bus.create ~engine ~stats ~tap ~transfer_cycles ())
      | Coherent.Net { base; jitter } ->
        let net_rng = Wo_sim.Rng.split rng in
        Wo_interconnect.Fabric.of_network
          (Wo_interconnect.Network.create ~engine ~stats ~tap
             ~latency:(Wo_interconnect.Latency.jittered net_rng ~base ~jitter)
             ())
      | Coherent.Net_spiky { base; jitter; spike_probability; spike_factor } ->
        let net_rng = Wo_sim.Rng.split rng in
        Wo_interconnect.Fabric.of_network
          (Wo_interconnect.Network.create ~engine ~stats ~tap
             ~latency:
               (Wo_interconnect.Latency.spiky net_rng ~base ~jitter
                  ~spike_probability ~spike_factor)
             ())
    in
    (* Memory modules: apply operations in arrival order, atomically. *)
    let memory : (Wo_core.Event.loc, Wo_core.Event.value) Hashtbl.t =
      Hashtbl.create 64
    in
    let mem_read loc =
      match Hashtbl.find_opt memory loc with
      | Some v -> v
      | None -> Wo_prog.Program.initial_value program loc
    in
    for m = 0 to config.modules - 1 do
      let node = num_procs + m in
      fabric.Wo_interconnect.Fabric.connect ~node (fun msg ->
          match msg with
          | M_read { loc; proc; tag } ->
            fabric.Wo_interconnect.Fabric.send ~src:node ~dst:proc
              (M_read_reply
                 { tag; value = mem_read loc; applied_at = Wo_sim.Engine.now engine })
          | M_write { loc; value; proc; tag } ->
            Hashtbl.replace memory loc value;
            fabric.Wo_interconnect.Fabric.send ~src:node ~dst:proc
              (M_write_ack { tag; applied_at = Wo_sim.Engine.now engine })
          | M_rmw { loc; f; proc; tag } ->
            let old = mem_read loc in
            Hashtbl.replace memory loc (f old);
            fabric.Wo_interconnect.Fabric.send ~src:node ~dst:proc
              (M_rmw_reply { tag; old; applied_at = Wo_sim.Engine.now engine })
          | M_read_reply _ | M_write_ack _ | M_rmw_reply _ ->
            raise (Machine.Machine_error "memory module received a reply"))
    done;
    let ctxs =
      Array.init num_procs (fun _ ->
          {
            fe = None;
            buffer =
              Option.map
                (fun (b : buffer_config) -> Wo_cache.Write_buffer.create ~depth:b.depth)
                config.write_buffer;
            loc_states = Hashtbl.create 16;
            outstanding_acks = 0;
            drain_active = false;
            quiet_waiters = [];
            finish_time = -1;
          })
    in
    let next_op_id = ref 0 in
    let next_tag = ref 0 in
    let ops_rev = ref [] in
    let by_tag : (int, op_rec * (op_rec -> unit)) Hashtbl.t = Hashtbl.create 64 in
    let stall p reason cycles =
      Wo_obs.Stall.add stalls ~sink:obs ~now:(Wo_sim.Engine.now engine)
        ~proc:p reason cycles
    in
    let new_op p (op : Proc_frontend.memory_op) =
      let id = !next_op_id in
      incr next_op_id;
      let r =
        {
          id;
          oproc = p;
          oseq = op.Proc_frontend.seq;
          okind = op.Proc_frontend.kind;
          oloc = op.Proc_frontend.loc;
          rv = None;
          wv =
            (match op.Proc_frontend.payload with
            | `Write v -> Some v
            | `Read | `Rmw _ -> None);
          issued = Wo_sim.Engine.now engine;
          committed = -1;
          performed = -1;
        }
      in
      ops_rev := r :: !ops_rev;
      r
    in
    let send_with_reply p msg_of_tag (r : op_rec) k =
      let tag = !next_tag in
      incr next_tag;
      Hashtbl.replace by_tag tag (r, k);
      fabric.Wo_interconnect.Fabric.send ~src:p ~dst:(module_node r.oloc)
        (msg_of_tag tag)
    in
    let quiet ctx =
      (match ctx.buffer with
      | Some b -> Wo_cache.Write_buffer.is_empty b
      | None -> true)
      && ctx.outstanding_acks = 0
    in
    let check_quiet ctx =
      if quiet ctx then begin
        let ws = ctx.quiet_waiters in
        ctx.quiet_waiters <- [];
        List.iter (fun k -> k ()) ws
      end
    in
    let on_quiet ctx k =
      if quiet ctx then k () else ctx.quiet_waiters <- k :: ctx.quiet_waiters
    in
    let loc_state ctx loc =
      match Hashtbl.find_opt ctx.loc_states loc with
      | Some ls -> ls
      | None ->
        let ls =
          {
            in_flight = false;
            pending_sends = Queue.create ();
            last_value = 0;
            loc_waiters = [];
          }
        in
        Hashtbl.replace ctx.loc_states loc ls;
        ls
    in
    let loc_busy ctx loc =
      let ls = loc_state ctx loc in
      ls.in_flight || not (Queue.is_empty ls.pending_sends)
    in
    let write_acked ctx loc =
      let ls = loc_state ctx loc in
      match Queue.take_opt ls.pending_sends with
      | Some next -> next () (* stays in flight *)
      | None ->
        ls.in_flight <- false;
        let ws = ls.loc_waiters in
        ls.loc_waiters <- [];
        List.iter (fun k -> k ()) ws
    in
    let sequence_write ctx loc send =
      let ls = loc_state ctx loc in
      if ls.in_flight then Queue.add send ls.pending_sends
      else begin
        ls.in_flight <- true;
        send ()
      end
    in
    (* Drain the write buffer one entry at a time. *)
    let rec drain p ctx =
      match ctx.buffer with
      | None -> ()
      | Some b ->
        if not ctx.drain_active then (
          match Wo_cache.Write_buffer.pop b with
          | None ->
            Wo_cache.Write_buffer.notify b;
            check_quiet ctx
          | Some entry ->
            ctx.drain_active <- true;
            ctx.outstanding_acks <- ctx.outstanding_acks + 1;
            let ls = loc_state ctx entry.Wo_cache.Write_buffer.loc in
            ls.in_flight <- true;
            ls.last_value <- entry.Wo_cache.Write_buffer.value;
            let r, _ = Hashtbl.find by_tag entry.Wo_cache.Write_buffer.tag in
            Hashtbl.replace by_tag entry.Wo_cache.Write_buffer.tag
              ( r,
                fun r ->
                  ctx.drain_active <- false;
                  ctx.outstanding_acks <- ctx.outstanding_acks - 1;
                  ignore r;
                  write_acked ctx entry.Wo_cache.Write_buffer.loc;
                  Wo_cache.Write_buffer.notify b;
                  drain p ctx );
            let delay =
              match config.write_buffer with
              | Some bc -> max 0 bc.drain_delay
              | None -> 0
            in
            Wo_sim.Engine.schedule engine ~delay (fun () ->
                fabric.Wo_interconnect.Fabric.send ~src:p
                  ~dst:(module_node entry.Wo_cache.Write_buffer.loc)
                  (M_write
                     {
                       loc = entry.Wo_cache.Write_buffer.loc;
                       value = entry.Wo_cache.Write_buffer.value;
                       proc = p;
                       tag = entry.Wo_cache.Write_buffer.tag;
                     })))
    in
    let perform p (op : Proc_frontend.memory_op) =
      let ctx = ctxs.(p) in
      let fe () = frontend ctx in
      let now () = Wo_sim.Engine.now engine in
      let sync =
        match op.Proc_frontend.kind with
        | Wo_core.Event.Sync_read | Wo_core.Event.Sync_write
        | Wo_core.Event.Sync_rmw ->
          true
        | Wo_core.Event.Data_read | Wo_core.Event.Data_write -> false
      in
      let issue_read r ~reason =
        ctx.outstanding_acks <- ctx.outstanding_acks + 1;
        send_with_reply p
          (fun tag -> M_read { loc = r.oloc; proc = p; tag })
          r
          (fun r ->
            ctx.outstanding_acks <- ctx.outstanding_acks - 1;
            check_quiet ctx;
            stall p reason (now () - r.issued);
            let store =
              match (op.Proc_frontend.dest, r.rv) with
              | Some reg, Some v -> Some (reg, v)
              | _ -> None
            in
            Proc_frontend.resume (fe ()) ~store ~delay:1)
      in
      let issue_rmw r ~reason f =
        ctx.outstanding_acks <- ctx.outstanding_acks + 1;
        send_with_reply p
          (fun tag -> M_rmw { loc = r.oloc; f; proc = p; tag })
          r
          (fun r ->
            ctx.outstanding_acks <- ctx.outstanding_acks - 1;
            check_quiet ctx;
            stall p reason (now () - r.issued);
            (match (r.rv, op.Proc_frontend.payload) with
            | Some old, `Rmw f -> r.wv <- Some (f old)
            | _ -> ());
            let store =
              match (op.Proc_frontend.dest, r.rv) with
              | Some reg, Some v -> Some (reg, v)
              | _ -> None
            in
            Proc_frontend.resume (fe ()) ~store ~delay:1)
      in
      let issue_plain_write r v ~wait =
        let ls = loc_state ctx r.oloc in
        ls.last_value <- v;
        let send () =
          ctx.outstanding_acks <- ctx.outstanding_acks + 1;
          send_with_reply p
            (fun tag -> M_write { loc = r.oloc; value = v; proc = p; tag })
            r
            (fun r ->
              ctx.outstanding_acks <- ctx.outstanding_acks - 1;
              write_acked ctx r.oloc;
              check_quiet ctx;
              if wait then begin
                stall p Wo_obs.Stall.Write_ack (now () - r.issued);
                Proc_frontend.resume (fe ()) ~store:None ~delay:1
              end)
        in
        sequence_write ctx r.oloc send;
        if not wait then Proc_frontend.resume (fe ()) ~store:None ~delay:1
      in
      let forward_read r v =
        r.rv <- Some v;
        r.committed <- now ();
        r.performed <- now ();
        let store = Option.map (fun reg -> (reg, v)) op.Proc_frontend.dest in
        Proc_frontend.resume (fe ()) ~store ~delay:1
      in
      let go () =
        let r = new_op p op in
        match op.Proc_frontend.payload with
        | `Read -> (
          match (ctx.buffer, config.write_buffer) with
          | Some b, Some bc
            when bc.forwarding && Wo_cache.Write_buffer.has_loc b r.oloc -> (
            (* Store-to-load forwarding: the youngest buffered write wins. *)
            match Wo_cache.Write_buffer.newest_for b r.oloc with
            | Some entry -> forward_read r entry.Wo_cache.Write_buffer.value
            | None -> assert false)
          | Some b, Some bc
            when (not bc.forwarding) && Wo_cache.Write_buffer.has_loc b r.oloc
            ->
            (* No forwarding: wait until our write to this location has
               reached memory (dependency preservation). *)
            let t0 = now () in
            on_quiet ctx (fun () ->
                stall p Wo_obs.Stall.Buffer_drain (now () - t0);
                issue_read r
                  ~reason:(if sync then Wo_obs.Stall.Sync_commit else Wo_obs.Stall.Read_miss))
          | Some b, Some bc
            when (not bc.read_bypass) && not (Wo_cache.Write_buffer.is_empty b)
            ->
            (* No bypass: the read waits for the buffer to drain. *)
            let t0 = now () in
            Wo_cache.Write_buffer.on_empty b (fun () ->
                stall p Wo_obs.Stall.Buffer_drain (now () - t0);
                issue_read r
                  ~reason:(if sync then Wo_obs.Stall.Sync_commit else Wo_obs.Stall.Read_miss))
          | _ ->
            if loc_busy ctx r.oloc then
              (* A write of ours to this location is still on its way to
                 memory: forward its value. *)
              forward_read r (loc_state ctx r.oloc).last_value
            else issue_read r
                  ~reason:(if sync then Wo_obs.Stall.Sync_commit else Wo_obs.Stall.Read_miss))
        | `Rmw f ->
          let reason = if sync then Wo_obs.Stall.Sync_commit else Wo_obs.Stall.Rmw_wait in
          let rec gated () =
            let buffered =
              match ctx.buffer with
              | Some b -> Wo_cache.Write_buffer.has_loc b r.oloc
              | None -> false
            in
            if buffered then
              let t0 = now () in
              on_quiet ctx (fun () ->
                  stall p Wo_obs.Stall.Rmw_order (now () - t0);
                  gated ())
            else if loc_busy ctx r.oloc then begin
              let t0 = now () in
              (loc_state ctx r.oloc).loc_waiters <-
                (fun () ->
                  stall p Wo_obs.Stall.Rmw_order (now () - t0);
                  gated ())
                :: (loc_state ctx r.oloc).loc_waiters
            end
            else issue_rmw r ~reason f
          in
          gated ()
        | `Write v -> (
          match ctx.buffer with
          | Some b when not (sync && config.flush_buffer_on_sync) ->
            (* Buffered write: commits on deposit (forwarding could
               dispatch its value); globally performed at the module. *)
            let tag = !next_tag in
            incr next_tag;
            Hashtbl.replace by_tag tag (r, fun _ -> ());
            let entry = { Wo_cache.Write_buffer.loc = r.oloc; value = v; tag } in
            if Wo_cache.Write_buffer.push b entry then begin
              r.committed <- now ();
              Proc_frontend.resume (fe ()) ~store:None ~delay:1;
              drain p ctx
            end
            else begin
              let t0 = now () in
              Wo_cache.Write_buffer.on_not_full b (fun () ->
                  stall p Wo_obs.Stall.Buffer_full (now () - t0);
                  ignore (Wo_cache.Write_buffer.push b entry);
                  r.committed <- now ();
                  Proc_frontend.resume (fe ()) ~store:None ~delay:1;
                  drain p ctx)
            end
          | _ ->
            issue_plain_write r v ~wait:(config.wait_write_ack || sync))
      in
      if sync && config.flush_buffer_on_sync then begin
        (* Fence semantics: drain the buffer and wait for every outstanding
           acknowledgement before synchronizing. *)
        let t0 = Wo_sim.Engine.now engine in
        on_quiet ctx (fun () ->
            stall p Wo_obs.Stall.Release_gate (Wo_sim.Engine.now engine - t0);
            go ())
      end
      else go ()
    in
    (* Module replies dispatch through the tag table. *)
    Array.iteri
      (fun p _ctx ->
        fabric.Wo_interconnect.Fabric.connect ~node:p (fun msg ->
            let complete tag fill =
              match Hashtbl.find_opt by_tag tag with
              | None -> raise (Machine.Machine_error "unknown reply tag")
              | Some (r, k) ->
                Hashtbl.remove by_tag tag;
                fill r;
                k r
            in
            match msg with
            | M_read_reply { tag; value; applied_at } ->
              complete tag (fun r ->
                  r.rv <- Some value;
                  r.committed <- applied_at;
                  r.performed <- applied_at)
            | M_rmw_reply { tag; old; applied_at } ->
              complete tag (fun r ->
                  r.rv <- Some old;
                  r.committed <- applied_at;
                  r.performed <- applied_at)
            | M_write_ack { tag; applied_at } ->
              complete tag (fun r ->
                  if r.committed < 0 then r.committed <- applied_at;
                  r.performed <- applied_at)
            | M_read _ | M_write _ | M_rmw _ ->
              raise (Machine.Machine_error "processor received a request")))
      ctxs;
    Array.iteri
      (fun p ctx ->
        let fe =
          Proc_frontend.create ~engine ~proc:p
            ~code:program.Wo_prog.Program.threads.(p)
            ~local_cost:config.local_cost
            ~perform:(function
              | Proc_frontend.Access op -> perform p op
              | Proc_frontend.Fence ->
                let t0 = Wo_sim.Engine.now engine in
                on_quiet ctx (fun () ->
                    stall p Wo_obs.Stall.Counter_drain (Wo_sim.Engine.now engine - t0);
                    drain p ctx;
                    Proc_frontend.resume (frontend ctx) ~store:None ~delay:1))
            ~on_finish:(fun () -> ctx.finish_time <- Wo_sim.Engine.now engine)
            ()
        in
        ctx.fe <- Some fe;
        Proc_frontend.start fe)
      ctxs;
    (match Wo_sim.Engine.run engine with
    | `Idle -> ()
    | `Time_limit | `Event_limit ->
      raise
        (Machine.Machine_error
           (Printf.sprintf "%s: simulation event limit exceeded" name)));
    Array.iteri
      (fun p ctx ->
        if not (Proc_frontend.finished (frontend ctx)) then
          raise
            (Machine.Machine_error
               (Printf.sprintf "%s: deadlock: P%d %s" name p
                  (Proc_frontend.current_position (frontend ctx))));
        if not (quiet ctx) then
          raise
            (Machine.Machine_error
               (Printf.sprintf "%s: P%d has undrained writes" name p)))
      ctxs;
    let memory_final =
      List.map (fun loc -> (loc, mem_read loc)) (Wo_prog.Program.locs program)
    in
    let observable p r =
      match program.Wo_prog.Program.observable with
      | None -> true
      | Some l -> List.mem (p, r) l
    in
    let registers =
      Array.to_list ctxs
      |> List.concat_map (fun ctx ->
             let p = Proc_frontend.proc (frontend ctx) in
             Proc_frontend.registers (frontend ctx)
             |> List.filter (fun (r, _) -> observable p r)
             |> List.map (fun (r, v) -> (p, r, v)))
    in
    let trace = Wo_sim.Trace.create () in
    List.iter
      (fun r ->
        if r.committed < 0 || r.performed < 0 then
          raise
            (Machine.Machine_error
               (Printf.sprintf "%s: operation %d never completed" name r.id));
        if Wo_obs.Recorder.enabled obs then
          Wo_obs.Recorder.span obs ~cat:Wo_obs.Recorder.Proc ~track:r.oproc
            ~name:
              (Format.asprintf "%a.%a" Wo_core.Event.pp_kind r.okind
                 Wo_core.Event.pp_loc r.oloc)
            ~ts:r.issued
            ~dur:(max 0 (r.performed - r.issued));
        Wo_sim.Trace.add trace
          {
            Wo_sim.Trace.event =
              Wo_core.Event.make ~id:r.id ~proc:r.oproc ~seq:r.oseq
                ~kind:r.okind ~loc:r.oloc ?read_value:r.rv
                ?written_value:r.wv ();
            issued = r.issued;
            committed = r.committed;
            performed = r.performed;
          })
      (List.rev !ops_rev);
    {
      Machine.outcome = Wo_prog.Outcome.make ~registers ~memory:memory_final;
      trace;
      cycles = Wo_sim.Engine.now engine;
      proc_finish = Array.map (fun ctx -> ctx.finish_time) ctxs;
      stats =
        Wo_sim.Stats.to_list stats
        @ Wo_obs.Stall.to_stats stalls
        @ Wo_obs.Tap.to_stats taps;
      stalls;
      taps;
    }
  in
  { Machine.name; description; sequentially_consistent; weakly_ordered_drf0; run }
