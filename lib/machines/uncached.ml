type buffer_config = {
  depth : int;
  read_bypass : bool;
  forwarding : bool;
  drain_delay : int;
      (* cycles an entry rests in the buffer before going to memory; the
         window in which a bypassing read can overtake it *)
}

type config = {
  fabric : Memsys.fabric_kind;
  write_buffer : buffer_config option;
  wait_write_ack : bool;
  flush_buffer_on_sync : bool;
  modules : int;
  local_cost : int;
}

(* Messages between processors and memory modules. *)
type amsg =
  | M_read of { loc : Wo_core.Event.loc; proc : int; tag : int }
  | M_write of { loc : Wo_core.Event.loc; value : Wo_core.Event.value; proc : int; tag : int }
  | M_rmw of {
      loc : Wo_core.Event.loc;
      f : Wo_core.Event.rmw;
      proc : int;
      tag : int;
    }
  | M_read_reply of { tag : int; value : Wo_core.Event.value; applied_at : int }
  | M_write_ack of { tag : int; applied_at : int }
  | M_rmw_reply of { tag : int; old : Wo_core.Event.value; applied_at : int }

let amsg_tag = function
  | M_read _ -> "Read"
  | M_write _ -> "Write"
  | M_rmw _ -> "Rmw"
  | M_read_reply _ -> "ReadReply"
  | M_write_ack _ -> "WriteAck"
  | M_rmw_reply _ -> "RmwReply"

(* Per-location write sequencing: preserves intra-processor same-location
   ordering (condition 1 of 5.1) even with fire-and-forget writes -- at most
   one write per location is in flight, later ones queue, and reads of a
   location with outstanding writes forward the youngest value. *)
type loc_state = {
  mutable in_flight : bool;
  pending_sends : (unit -> unit) Queue.t;
  mutable last_value : Wo_core.Event.value;
  mutable loc_waiters : (unit -> unit) list;
}

type proc_ctx = {
  buffer : Wo_cache.Write_buffer.t option;
  loc_states : (Wo_core.Event.loc, loc_state) Hashtbl.t;
  mutable outstanding_acks : int;
  mutable drain_active : bool;
  mutable quiet_waiters : (unit -> unit) list;
      (* waiting for buffer empty && no outstanding acks *)
}

(* The memory system: module-interleaved flat memory behind the fabric,
   optional per-processor write buffers.  Everything machine-generic
   (engine, frontends, run loop, watchdog, trace) lives in {!Driver}. *)
let build (config : config) (env : Driver.env) : Memsys.port =
  let engine = env.Driver.engine in
  let num_procs = env.Driver.num_procs in
  let module_node loc = num_procs + (loc mod config.modules) in
  let fabric = Driver.fabric env ~tag:amsg_tag config.fabric in
  (* Memory modules: apply operations in arrival order, atomically. *)
  let memory : (Wo_core.Event.loc, Wo_core.Event.value) Hashtbl.t =
    Hashtbl.create 64
  in
  let mem_read loc =
    match Hashtbl.find_opt memory loc with
    | Some v -> v
    | None -> Wo_prog.Program.initial_value env.Driver.program loc
  in
  for m = 0 to config.modules - 1 do
    let node = num_procs + m in
    fabric.Wo_interconnect.Fabric.connect ~node (fun msg ->
        match msg with
        | M_read { loc; proc; tag } ->
          fabric.Wo_interconnect.Fabric.send ~src:node ~dst:proc
            (M_read_reply
               { tag; value = mem_read loc; applied_at = Wo_sim.Engine.now engine })
        | M_write { loc; value; proc; tag } ->
          Hashtbl.replace memory loc value;
          fabric.Wo_interconnect.Fabric.send ~src:node ~dst:proc
            (M_write_ack { tag; applied_at = Wo_sim.Engine.now engine })
        | M_rmw { loc; f; proc; tag } ->
          let old = mem_read loc in
          Hashtbl.replace memory loc (Wo_core.Event.apply_rmw f old);
          fabric.Wo_interconnect.Fabric.send ~src:node ~dst:proc
            (M_rmw_reply { tag; old; applied_at = Wo_sim.Engine.now engine })
        | M_read_reply _ | M_write_ack _ | M_rmw_reply _ ->
          raise (Machine.Machine_error "memory module received a reply"))
  done;
  let ctxs =
    Array.init num_procs (fun _ ->
        {
          buffer =
            Option.map
              (fun (b : buffer_config) -> Wo_cache.Write_buffer.create ~depth:b.depth)
              config.write_buffer;
          loc_states = Hashtbl.create 16;
          outstanding_acks = 0;
          drain_active = false;
          quiet_waiters = [];
        })
  in
  let next_tag = ref 0 in
  let by_tag : (int, Memsys.op * (Memsys.op -> unit)) Hashtbl.t =
    Hashtbl.create 64
  in
  (* Session reset: back to the just-built state.  Hashtbl.reset (not
     clear) restores initial capacity, so the tables regrow exactly as a
     fresh build's would. *)
  Driver.on_reset env (fun () ->
      Hashtbl.reset memory;
      next_tag := 0;
      Hashtbl.reset by_tag;
      Array.iter
        (fun ctx ->
          (match ctx.buffer with
          | Some b -> Wo_cache.Write_buffer.clear b
          | None -> ());
          Hashtbl.reset ctx.loc_states;
          ctx.outstanding_acks <- 0;
          ctx.drain_active <- false;
          ctx.quiet_waiters <- [])
        ctxs);
  let stall p reason cycles = Driver.stall env ~proc:p reason cycles in
  let send_with_reply p msg_of_tag (r : Memsys.op) k =
    let tag = !next_tag in
    incr next_tag;
    Hashtbl.replace by_tag tag (r, k);
    fabric.Wo_interconnect.Fabric.send ~src:p ~dst:(module_node r.Memsys.oloc)
      (msg_of_tag tag)
  in
  let quiet ctx =
    (match ctx.buffer with
    | Some b -> Wo_cache.Write_buffer.is_empty b
    | None -> true)
    && ctx.outstanding_acks = 0
  in
  let check_quiet ctx =
    if quiet ctx then begin
      let ws = ctx.quiet_waiters in
      ctx.quiet_waiters <- [];
      List.iter (fun k -> k ()) ws
    end
  in
  let on_quiet ctx k =
    if quiet ctx then k () else ctx.quiet_waiters <- k :: ctx.quiet_waiters
  in
  let loc_state ctx loc =
    match Hashtbl.find_opt ctx.loc_states loc with
    | Some ls -> ls
    | None ->
      let ls =
        {
          in_flight = false;
          pending_sends = Queue.create ();
          last_value = 0;
          loc_waiters = [];
        }
      in
      Hashtbl.replace ctx.loc_states loc ls;
      ls
  in
  let loc_busy ctx loc =
    let ls = loc_state ctx loc in
    ls.in_flight || not (Queue.is_empty ls.pending_sends)
  in
  let write_acked ctx loc =
    let ls = loc_state ctx loc in
    match Queue.take_opt ls.pending_sends with
    | Some next -> next () (* stays in flight *)
    | None ->
      ls.in_flight <- false;
      let ws = ls.loc_waiters in
      ls.loc_waiters <- [];
      List.iter (fun k -> k ()) ws
  in
  let sequence_write ctx loc send =
    let ls = loc_state ctx loc in
    if ls.in_flight then Queue.add send ls.pending_sends
    else begin
      ls.in_flight <- true;
      send ()
    end
  in
  (* Drain the write buffer one entry at a time. *)
  let rec drain p ctx =
    match ctx.buffer with
    | None -> ()
    | Some b ->
      if not ctx.drain_active then (
        match Wo_cache.Write_buffer.pop b with
        | None ->
          Wo_cache.Write_buffer.notify b;
          check_quiet ctx
        | Some entry ->
          ctx.drain_active <- true;
          ctx.outstanding_acks <- ctx.outstanding_acks + 1;
          let ls = loc_state ctx entry.Wo_cache.Write_buffer.loc in
          ls.in_flight <- true;
          ls.last_value <- entry.Wo_cache.Write_buffer.value;
          let r, _ = Hashtbl.find by_tag entry.Wo_cache.Write_buffer.tag in
          Hashtbl.replace by_tag entry.Wo_cache.Write_buffer.tag
            ( r,
              fun r ->
                ctx.drain_active <- false;
                ctx.outstanding_acks <- ctx.outstanding_acks - 1;
                ignore r;
                write_acked ctx entry.Wo_cache.Write_buffer.loc;
                Wo_cache.Write_buffer.notify b;
                drain p ctx );
          let delay =
            match config.write_buffer with
            | Some bc -> max 0 bc.drain_delay
            | None -> 0
          in
          Wo_sim.Engine.schedule engine ~delay (fun () ->
              fabric.Wo_interconnect.Fabric.send ~src:p
                ~dst:(module_node entry.Wo_cache.Write_buffer.loc)
                (M_write
                   {
                     loc = entry.Wo_cache.Write_buffer.loc;
                     value = entry.Wo_cache.Write_buffer.value;
                     proc = p;
                     tag = entry.Wo_cache.Write_buffer.tag;
                   })))
  in
  let perform p (op : Proc_frontend.memory_op) =
    let ctx = ctxs.(p) in
    let now () = Wo_sim.Engine.now engine in
    let sync =
      match op.Proc_frontend.kind with
      | Wo_core.Event.Sync_read | Wo_core.Event.Sync_write
      | Wo_core.Event.Sync_rmw ->
        true
      | Wo_core.Event.Data_read | Wo_core.Event.Data_write -> false
    in
    let issue_read (r : Memsys.op) ~reason =
      ctx.outstanding_acks <- ctx.outstanding_acks + 1;
      send_with_reply p
        (fun tag -> M_read { loc = r.Memsys.oloc; proc = p; tag })
        r
        (fun r ->
          ctx.outstanding_acks <- ctx.outstanding_acks - 1;
          check_quiet ctx;
          stall p reason (now () - r.Memsys.issued);
          let store =
            match (op.Proc_frontend.dest, r.Memsys.rv) with
            | Some reg, Some v -> Some (reg, v)
            | _ -> None
          in
          Driver.resume env p ~store ~delay:1)
    in
    let issue_rmw (r : Memsys.op) ~reason f =
      ctx.outstanding_acks <- ctx.outstanding_acks + 1;
      send_with_reply p
        (fun tag -> M_rmw { loc = r.Memsys.oloc; f; proc = p; tag })
        r
        (fun r ->
          ctx.outstanding_acks <- ctx.outstanding_acks - 1;
          check_quiet ctx;
          stall p reason (now () - r.Memsys.issued);
          (match (r.Memsys.rv, op.Proc_frontend.payload) with
          | Some old, `Rmw d -> r.Memsys.wv <- Some (Wo_core.Event.apply_rmw d old)
          | _ -> ());
          let store =
            match (op.Proc_frontend.dest, r.Memsys.rv) with
            | Some reg, Some v -> Some (reg, v)
            | _ -> None
          in
          Driver.resume env p ~store ~delay:1)
    in
    let issue_plain_write (r : Memsys.op) v ~wait =
      let ls = loc_state ctx r.Memsys.oloc in
      ls.last_value <- v;
      let send () =
        ctx.outstanding_acks <- ctx.outstanding_acks + 1;
        send_with_reply p
          (fun tag -> M_write { loc = r.Memsys.oloc; value = v; proc = p; tag })
          r
          (fun r ->
            ctx.outstanding_acks <- ctx.outstanding_acks - 1;
            write_acked ctx r.Memsys.oloc;
            check_quiet ctx;
            if wait then begin
              stall p Wo_obs.Stall.Write_ack (now () - r.Memsys.issued);
              Driver.resume env p ~store:None ~delay:1
            end)
      in
      sequence_write ctx r.Memsys.oloc send;
      if not wait then Driver.resume env p ~store:None ~delay:1
    in
    let forward_read (r : Memsys.op) v =
      r.Memsys.rv <- Some v;
      r.Memsys.committed <- now ();
      r.Memsys.performed <- now ();
      let store = Option.map (fun reg -> (reg, v)) op.Proc_frontend.dest in
      Driver.resume env p ~store ~delay:1
    in
    let go () =
      let r = Driver.new_op env ~proc:p op in
      match op.Proc_frontend.payload with
      | `Read -> (
        match (ctx.buffer, config.write_buffer) with
        | Some b, Some bc
          when bc.forwarding && Wo_cache.Write_buffer.has_loc b r.Memsys.oloc
          -> (
          (* Store-to-load forwarding: the youngest buffered write wins. *)
          match Wo_cache.Write_buffer.newest_for b r.Memsys.oloc with
          | Some entry -> forward_read r entry.Wo_cache.Write_buffer.value
          | None -> assert false)
        | Some b, Some bc
          when (not bc.forwarding) && Wo_cache.Write_buffer.has_loc b r.Memsys.oloc
          ->
          (* No forwarding: wait until our write to this location has
             reached memory (dependency preservation). *)
          let t0 = now () in
          on_quiet ctx (fun () ->
              stall p Wo_obs.Stall.Buffer_drain (now () - t0);
              issue_read r
                ~reason:(if sync then Wo_obs.Stall.Sync_commit else Wo_obs.Stall.Read_miss))
        | Some b, Some bc
          when (not bc.read_bypass) && not (Wo_cache.Write_buffer.is_empty b)
          ->
          (* No bypass: the read waits for the buffer to drain. *)
          let t0 = now () in
          Wo_cache.Write_buffer.on_empty b (fun () ->
              stall p Wo_obs.Stall.Buffer_drain (now () - t0);
              issue_read r
                ~reason:(if sync then Wo_obs.Stall.Sync_commit else Wo_obs.Stall.Read_miss))
        | _ ->
          if loc_busy ctx r.Memsys.oloc then
            (* A write of ours to this location is still on its way to
               memory: forward its value. *)
            forward_read r (loc_state ctx r.Memsys.oloc).last_value
          else issue_read r
                ~reason:(if sync then Wo_obs.Stall.Sync_commit else Wo_obs.Stall.Read_miss))
      | `Rmw f ->
        let reason = if sync then Wo_obs.Stall.Sync_commit else Wo_obs.Stall.Rmw_wait in
        let rec gated () =
          let buffered =
            match ctx.buffer with
            | Some b -> Wo_cache.Write_buffer.has_loc b r.Memsys.oloc
            | None -> false
          in
          if buffered then
            let t0 = now () in
            on_quiet ctx (fun () ->
                stall p Wo_obs.Stall.Rmw_order (now () - t0);
                gated ())
          else if loc_busy ctx r.Memsys.oloc then begin
            let t0 = now () in
            (loc_state ctx r.Memsys.oloc).loc_waiters <-
              (fun () ->
                stall p Wo_obs.Stall.Rmw_order (now () - t0);
                gated ())
              :: (loc_state ctx r.Memsys.oloc).loc_waiters
          end
          else issue_rmw r ~reason f
        in
        gated ()
      | `Write v -> (
        match ctx.buffer with
        | Some b when not (sync && config.flush_buffer_on_sync) ->
          (* Buffered write: commits on deposit (forwarding could
             dispatch its value); globally performed at the module. *)
          let tag = !next_tag in
          incr next_tag;
          Hashtbl.replace by_tag tag (r, fun _ -> ());
          let entry = { Wo_cache.Write_buffer.loc = r.Memsys.oloc; value = v; tag } in
          if Wo_cache.Write_buffer.push b entry then begin
            r.Memsys.committed <- now ();
            Driver.resume env p ~store:None ~delay:1;
            drain p ctx
          end
          else begin
            let t0 = now () in
            Wo_cache.Write_buffer.on_not_full b (fun () ->
                stall p Wo_obs.Stall.Buffer_full (now () - t0);
                ignore (Wo_cache.Write_buffer.push b entry);
                r.Memsys.committed <- now ();
                Driver.resume env p ~store:None ~delay:1;
                drain p ctx)
          end
        | _ ->
          issue_plain_write r v ~wait:(config.wait_write_ack || sync))
    in
    if sync && config.flush_buffer_on_sync then begin
      (* Fence semantics: drain the buffer and wait for every outstanding
         acknowledgement before synchronizing. *)
      let t0 = Wo_sim.Engine.now engine in
      on_quiet ctx (fun () ->
          stall p Wo_obs.Stall.Release_gate (Wo_sim.Engine.now engine - t0);
          go ())
    end
    else go ()
  in
  (* Module replies dispatch through the tag table. *)
  Array.iteri
    (fun p _ctx ->
      fabric.Wo_interconnect.Fabric.connect ~node:p (fun msg ->
          let complete tag fill =
            match Hashtbl.find_opt by_tag tag with
            | None -> raise (Machine.Machine_error "unknown reply tag")
            | Some (r, k) ->
              Hashtbl.remove by_tag tag;
              fill r;
              k r
          in
          match msg with
          | M_read_reply { tag; value; applied_at } ->
            complete tag (fun (r : Memsys.op) ->
                r.Memsys.rv <- Some value;
                r.Memsys.committed <- applied_at;
                r.Memsys.performed <- applied_at)
          | M_rmw_reply { tag; old; applied_at } ->
            complete tag (fun (r : Memsys.op) ->
                r.Memsys.rv <- Some old;
                r.Memsys.committed <- applied_at;
                r.Memsys.performed <- applied_at)
          | M_write_ack { tag; applied_at } ->
            complete tag (fun (r : Memsys.op) ->
                if r.Memsys.committed < 0 then r.Memsys.committed <- applied_at;
                r.Memsys.performed <- applied_at)
          | M_read _ | M_write _ | M_rmw _ ->
            raise (Machine.Machine_error "processor received a request")))
    ctxs;
  let fence p =
    let ctx = ctxs.(p) in
    let t0 = Wo_sim.Engine.now engine in
    on_quiet ctx (fun () ->
        Driver.stall env ~proc:p Wo_obs.Stall.Counter_drain
          (Wo_sim.Engine.now engine - t0);
        drain p ctx;
        Driver.resume env p ~store:None ~delay:1)
  in
  let proc_status p =
    let ctx = ctxs.(p) in
    let buf =
      match ctx.buffer with
      | None -> "-"
      | Some b ->
        Printf.sprintf "%d/%d" (Wo_cache.Write_buffer.size b)
          (Wo_cache.Write_buffer.depth b)
    in
    let inflight =
      Hashtbl.fold
        (fun loc ls acc ->
          if ls.in_flight || not (Queue.is_empty ls.pending_sends) then
            loc :: acc
          else acc)
        ctx.loc_states []
      |> List.sort compare |> List.map string_of_int |> String.concat ","
    in
    Printf.sprintf "acks=%d buf=%s inflight=%s" ctx.outstanding_acks buf
      inflight
  in
  let debug_dump () =
    let b = Buffer.create 256 in
    Array.iteri
      (fun p ctx ->
        Buffer.add_string b
          (Printf.sprintf "P%d: %s quiet=%b\n" p (proc_status p) (quiet ctx)))
      ctxs;
    Buffer.add_string b
      (Printf.sprintf "unmatched reply tags: %d\n" (Hashtbl.length by_tag));
    Buffer.contents b
  in
  let check_drained () =
    Array.iteri
      (fun p ctx ->
        if not (quiet ctx) then
          raise
            (Machine.Machine_error
               (Printf.sprintf "%s: P%d has undrained writes"
                  env.Driver.name p)))
      ctxs
  in
  {
    Memsys.perform;
    fence;
    final_value = mem_read;
    proc_status;
    shared_status = (fun () -> "");
    debug_dump;
    check_drained;
  }

let make ~name ~description ~sequentially_consistent ~weakly_ordered_drf0
    (config : config) : Machine.t =
  if config.modules <= 0 then invalid_arg "Uncached.make: modules must be positive";
  Driver.make ~name ~description ~sequentially_consistent ~weakly_ordered_drf0
    ~local_cost:config.local_cost ~build:(build config)
