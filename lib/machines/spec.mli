(** Machines as data.

    A machine spec is a small declarative record — fabric, memory
    organisation, synchronization-enforcement policy — from which
    {!build} assembles a runnable {!Machine.t} on the shared {!Driver}.
    Every preset in {!Presets} is such a value ({!Presets.specs}), and
    JSON files ({!of_file}) define new machines without writing OCaml:

    {v
    { "name": "my-machine",
      "fabric": { "kind": "net", "base": 4, "jitter": 6 },
      "memory": { "kind": "cached" },
      "sync": "reserve-bit" }
    v} *)

type sync_policy =
  | Sync_none  (** no enforcement: synchronization treated as data *)
  | Sync_sc
      (** every access gates on the outstanding-access counter (the
          Scheurich–Dubois sufficient condition for sequential
          consistency) *)
  | Sync_fence
      (** synchronization alone waits for all previous accesses;
          uncached: drain buffer + acknowledgements (the RP3 fence);
          cached: gate on the counter, resume at commit *)
  | Sync_def1_stall
      (** Definition-1 hardware: gate synchronization on the counter
          {e and} stall until it is globally performed *)
  | Sync_reserve_bit
      (** the Section-5.3 implementation: wait only for the
          synchronization to commit; reserve bits stall the next
          synchronizing processor instead *)
  | Sync_drf1_two_level
      (** Section-6 refinement of {!Sync_reserve_bit}: read-only
          synchronization takes shared copies and sets no reserve bit *)

type memory =
  | Ideal  (** the atomic interleaving reference machine *)
  | Uncached of {
      write_buffer : Uncached.buffer_config option;
      wait_write_ack : bool;
      modules : int;
    }
  | Cached of { hit_cycles : int; capacity : int option; coarse_counter : bool }

(** The hardware ordering model the machine implements.  [Model_sc] is
    the historical in-order pipeline: the machine is whatever [memory]
    and [sync] say, unchanged.  The relaxed models route the build to
    the {!Ordering} backend over uncached memory: [Model_tso] a
    per-processor FIFO store buffer, [Model_pso] per-location channels,
    [Model_ra] per-location channels in a bounded window with
    release/acquire synchronization.  [sync] still picks enforcement:
    anything but {!Sync_none} makes synchronization operations barriers
    of the model's flavour; {!Sync_none} treats them as data. *)
type model =
  | Model_sc
  | Model_tso of { depth : int; drain_delay : int }
  | Model_pso of { depth : int; drain_delay : int }
  | Model_ra of { window : int; drain_delay : int }

type t = {
  name : string;
  description : string;
  fabric : Memsys.fabric_kind;  (** ignored by {!Ideal} *)
  memory : memory;
  model : model;
      (** relaxed models require [memory] to be [Uncached] (only its
          [modules] count is used) *)
  sync : sync_policy;
  local_cost : int;
}

val default_cached : memory
(** [Cached] with the {!Wo_cache.Cache_ctrl.default_config} knobs. *)

val flags : t -> bool * bool
(** [(sequentially_consistent, weakly_ordered_drf0)], derived from the
    knobs — a spec cannot mislabel its consistency class. *)

val sequentially_consistent : t -> bool
val weakly_ordered_drf0 : t -> bool

val build : t -> Machine.t
(** Assemble the machine.  Specs that reproduce the preset knob
    combinations build byte-identical machines (same results on every
    program and seed). *)

val uncached_config : t -> Uncached.config
(** The uncached driver config this spec denotes.
    @raise Invalid_argument if [memory] is not [Uncached]. *)

val cached_config : t -> Coherent.config
(** The coherent driver config this spec denotes.
    @raise Invalid_argument if [memory] is not [Cached]. *)

val ordering_config : t -> Ordering.config
(** The relaxed-ordering backend config this spec denotes.
    @raise Invalid_argument if [model] is [Model_sc] or [memory] is not
    [Uncached]. *)

val model_hardware : model -> Wo_core.Sync_model.hardware
(** The axiomatic descriptor of the spec's ordering model, for the
    reference enumerator ({!Wo_prog.Relaxed}); {!Wo_core.Sync_model.sc_hw}
    for [Model_sc]. *)

val sync_to_string : sync_policy -> string
val sync_of_string : string -> sync_policy option

val model_to_string : model -> string
(** ["sc"], ["tso"], ["pso"] or ["ra"]. *)

val model_of_string : string -> model option
(** The inverse, with the default knobs (depth/window 8, drain delay 6)
    for the relaxed models. *)

val fabric_slug : Memsys.fabric_kind -> string
(** Short name for grid-generated machine names, e.g. ["net4j6"]. *)

(** {2 JSON} *)

val to_json : t -> Wo_obs.Json.t
val to_string : ?pretty:bool -> t -> string

val of_json : Wo_obs.Json.t -> (t, string) result
(** Missing fields default: [description] to [""], [fabric] to
    {!Coherent.default_net}, [model] to [Model_sc], [memory] to
    {!default_cached} (one-module uncached when a relaxed model is
    given), [sync] to [Sync_none], [local_cost] to [1].  The [model]
    field accepts a bare name (["tso"], with default knobs) or an object
    ([{"kind":"ra","window":8,"drain_delay":6}]); a relaxed model with
    explicit cached or ideal memory is rejected. *)

val of_string : string -> (t, string) result
val of_file : string -> (t, string) result

(** {2 Grids} *)

val grid :
  ?fabrics:Memsys.fabric_kind list ->
  ?syncs:sync_policy list ->
  ?models:model list ->
  t ->
  t list
(** The cross product of fabric, sync and model variations of a base
    spec, each named [base/<fabric-slug>+<sync>] with an [@<model>]
    suffix for relaxed models; omitted axes keep the base value.
    Relaxed grid points over a cached or ideal base take the default
    one-module uncached memory. *)
