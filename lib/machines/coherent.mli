(** Cache-coherent machines (Sections 5.2–5.3).

    One parameterized system: processors with private caches, a full-map
    directory, and a bus or general network.  The ordering {!policy}
    selects which machine of the paper it is:

    - {!sc_policy} — the Scheurich–Dubois sufficient condition for
      sequential consistency: a processor issues an access only when all
      its previous accesses are globally performed;
    - {!def1_policy} — Definition-1 (Dubois/Scheurich/Briggs) weak
      ordering: data accesses pipeline freely, but a synchronization
      operation is issued only after all previous accesses are globally
      performed, and no access issues until a previous synchronization
      operation is globally performed;
    - {!def2_policy} — the paper's Section-5.3 implementation: a processor
      only waits for its synchronization operation to {e commit}; the
      outstanding-access counter and reserve bits (in {!Wo_cache.Cache_ctrl})
      make the {e next} synchronizing processor stall instead;
    - {!relaxed_policy} — no ordering discipline at all (synchronization
      treated as data, read-modify-writes still atomic): the Figure-1
      cached configurations.

    Combined with {!Wo_cache.Cache_ctrl.config.sync_read_shared},
    {!def2_policy} yields the Section-6 refined machine in which read-only
    synchronization is not serialized. *)

type gate = Gate_every_op | Gate_sync_only | Gate_never

type sync_wait =
  | Sync_wait_gp
  | Sync_wait_commit
  | Sync_wait_none
      (** proceed immediately after issuing a write-only synchronization
          operation, without waiting for it to commit — breaks condition 4
          of Section 5.1; used by the ablation experiments.  Operations
          with a read component still wait for their value. *)

type policy = {
  pname : string;
  sync_as_data : bool;
      (** map synchronization reads/writes to plain data accesses
          (read-modify-writes stay atomic) *)
  gate : gate;
      (** which operations wait for {e all} previous operations to be
          globally performed before issuing *)
  sync_wait : sync_wait;
      (** what the processor waits for after issuing a synchronization
          operation before executing anything further *)
}

val sc_policy : policy
val def1_policy : policy
val def2_policy : policy
val relaxed_policy : policy

type fabric_kind = Memsys.fabric_kind =
  | Bus of { transfer_cycles : int }
  | Net of { base : int; jitter : int }
  | Net_spiky of {
      base : int;
      jitter : int;
      spike_probability : float;
      spike_factor : int;
    }
      (** heavy-tailed network: each message independently suffers a
          congestion spike multiplying its delay *)
  | Net_fixed of { latency : int }
      (** point-to-point network with one fixed delay: does not reorder
          by itself but, unlike the bus, does not serialize *)
(** Re-export of {!Memsys.fabric_kind} (the historical home of the
    type) so existing constructors keep working. *)

type migration = {
  thread : int;      (** which thread moves *)
  before_seq : int;  (** just before its [before_seq]-th memory operation *)
  to_cache : int;    (** destination processor (a spare cache is created if
                         beyond the program's processor count) *)
  unsafe : bool;
      (** skip the Section-5.1 re-scheduling rule — "before a context
          switch, all previous reads of the process have returned their
          values and all previous writes have been globally performed" —
          for the ablation experiments *)
}
(** Process migration (the re-scheduling discussion of Section 5.1 and
    footnote 3). *)

type config = {
  fabric : fabric_kind;
  policy : policy;
  cache : Wo_cache.Cache_ctrl.config;
  slow_procs : (int * int) list;
      (** latency multipliers per processor node (Figure-3 scenario) *)
  slow_routes : ((int * int) * int) list;
      (** latency multipliers per directed (src, dst) route (asymmetric
          congestion; used by the ablation experiment) *)
  local_cost : int;  (** cycles per local instruction *)
  migrations : migration list;
}

val default_net : fabric_kind
(** [Net { base = 4; jitter = 6 }]. *)

val make :
  name:string ->
  description:string ->
  sequentially_consistent:bool ->
  weakly_ordered_drf0:bool ->
  config ->
  Machine.t
