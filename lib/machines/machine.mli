(** The common machine interface.

    Every simulated system — the four Figure-1 configurations, the
    sequentially consistent baseline, Definition-1 hardware and the
    paper's Section-5.3 implementation — runs a {!Wo_prog.Program} to
    completion and produces the same shape of result, so the litmus
    harness, the Definition-2 compliance tests and the benchmarks are
    machine-agnostic. *)

exception Machine_error of string
(** Deadlock or protocol failure; carries diagnostics. *)

type result = {
  outcome : Wo_prog.Outcome.t;
  trace : Wo_sim.Trace.t;
  cycles : int;
      (** engine time when all activity (including trailing
          acknowledgements) drained *)
  proc_finish : int array;
      (** per-processor time of executing its last instruction *)
  stats : (string * int) list;
      (** counters, including the legacy [P<i>.stall.<reason>] view
          derived from [stalls] *)
  stalls : Wo_obs.Stall.t;
      (** typed per-processor per-reason stall-cycle attribution; the
          source of truth {!stall}, {!total_stalls} and {!proc_stalls}
          read *)
  taps : Wo_obs.Tap.t;
      (** per-protocol-message-type counts and transit-latency
          histograms *)
}

type engine = Compiled | Ast
(** How a session executes thread code: [Compiled] steps the int-coded
    {!Wo_prog.Prog_compile} artifact (falling back to the AST per
    program when compilation is unavailable); [Ast] always walks the
    instruction tree.  Both produce byte-identical results. *)

val engine_name : engine -> string
(** ["compiled"] / ["ast"]. *)

val engine_of_string : string -> engine option

type session = {
  session_machine : string;  (** owning machine's name *)
  session_engine : engine;
  session_run :
    seed:int -> ?compiled:Wo_prog.Prog_compile.t -> Wo_prog.Program.t -> result;
}
(** A reusable execution context: the memory system, interconnect and
    frontends are built once and reset in place between runs, so a batch
    of seeds (or of programs on the same machine shape) avoids
    per-run construction entirely.  Results are byte-identical
    ([Marshal]-fingerprint-equal) to fresh {!run} results at every seed.
    [compiled] supplies a pre-compiled artifact for the program (e.g. a
    campaign's memoised compilation); without it a [Compiled] session
    compiles on first binding and reuses the artifact while the same
    program stays bound. *)

type t = {
  name : string;
  description : string;
  sequentially_consistent : bool;
      (** whether this machine is expected to appear SC to {e all}
          programs (used by tests as the expectation, never by the
          machines themselves) *)
  weakly_ordered_drf0 : bool;
      (** whether this machine is expected to appear SC to DRF0 programs *)
  run : seed:int -> Wo_prog.Program.t -> result;
  new_session : engine -> session;
}

val run : t -> ?seed:int -> Wo_prog.Program.t -> result
(** One fresh-construction AST run ([seed] defaults to 0) — the oracle
    the compiled/session paths are checked against. *)

val new_session : t -> engine -> session

val session_run :
  session ->
  ?seed:int ->
  ?compiled:Wo_prog.Prog_compile.t ->
  Wo_prog.Program.t ->
  result
(** [seed] defaults to 0. *)

val run_batch :
  session ->
  ?compiled:Wo_prog.Prog_compile.t ->
  seeds:int list ->
  Wo_prog.Program.t ->
  result list
(** Run one program at each seed through the session, in order. *)

(** {2 Run accounting}

    Process-wide counters (atomic — sweep workers run machines on
    several domains): total machine runs, runs that reused a session's
    built state, and runs where a [Compiled] engine fell back to the
    AST walker. *)

val note_run : unit -> unit
val note_session_reuse : unit -> unit
val note_compile_fallback : unit -> unit
val runs : unit -> int
val session_reuses : unit -> int
val compile_fallbacks : unit -> int

val emit_counters : unit -> unit
(** Emit [machine.runs] / [machine.session_reuse] /
    [machine.compile_fallbacks] to the active recorder, if enabled. *)

val make_result :
  outcome:Wo_prog.Outcome.t ->
  trace:Wo_sim.Trace.t ->
  cycles:int ->
  proc_finish:int array ->
  ?stats:(string * int) list ->
  stalls:Wo_obs.Stall.t ->
  taps:Wo_obs.Tap.t ->
  unit ->
  result
(** The single place {!result.stats} is assembled: [stats] (a machine's
    own counters, default empty) followed by the legacy
    [P<i>.stall.<reason>] view derived from [stalls] and the [msg.*]
    counters derived from [taps].  Every machine builds its result here
    so the derivation is not duplicated per driver. *)

val check_lemma1 :
  ?init:(Wo_core.Event.loc -> Wo_core.Event.value) ->
  result ->
  (unit, Wo_core.Lemma1.violation list) Stdlib.result
(** Check the Lemma-1 condition against the trace: happens-before from
    program order plus synchronization-commit order, every read returning
    its hb-last write.  Meaningful for DRF0 programs on machines claiming
    weak ordering. *)

val total_stalls : result -> int
(** All attributed stall cycles. *)

val stall : result -> proc:int -> string -> int
(** [stall r ~proc reason] reads one account by its
    {!Wo_obs.Stall.reason_name} key (e.g. ["release_gate"]); unknown
    names read 0. *)

val proc_stalls : result -> proc:int -> int
(** All stall cycles attributed to one processor. *)
