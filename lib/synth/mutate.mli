(** Mutation of existing litmus programs.

    The snippet corpus is small and hand-polished; mutation multiplies
    it into neighbouring scenarios while tracking what each operator
    does to the DRF0-by-construction guarantee:

    - {!Reorder}: swap two adjacent, top-level data/local instructions
      of one thread (never synchronization, fences or control flow).
      Every access keeps its position relative to the surrounding
      synchronization, so cross-thread happens-before orderings — and
      hence the program's race-freedom class — are preserved.
    - {!Weaken}: demote one [Sync_read]/[Sync_write] to its plain
      counterpart.  Removes happens-before edges: a racy program stays
      racy, a race-free one may no longer be.
    - {!Strengthen}: promote one [Read]/[Write] to its synchronizing
      counterpart.  Adds happens-before edges: a race-free program
      stays race-free, a racy one may be repaired.
    - {!Merge_locs}: rename one data location onto another (both
      chosen among locations no synchronization operation touches).
      Creates new conflicts; can only add races.

    Operators never change the number of memory accesses per thread
    wildly or introduce loops, so mutants of loop-free programs remain
    enumerable. *)

type kind = Reorder | Weaken | Strengthen | Merge_locs

val kind_name : kind -> string

type application = { kind : kind; detail : string }

val mutate :
  rng:Wo_sim.Rng.t ->
  ?mutations:int ->
  Wo_prog.Program.t ->
  Wo_prog.Program.t * application list
(** Apply [mutations] (default: 1-3, drawn from [rng]) operators drawn
    uniformly among those applicable; operators with no applicable site
    are skipped, so the returned list may be shorter (possibly empty
    for programs offering no sites at all).  Deterministic in the rng
    state. *)

val transfer :
  base_drf0:bool -> application list -> [ `Drf0 | `Racy | `Unknown ]
(** What the applied mutations do to the base program's classification
    ([base_drf0 = true]: DRF0 by construction; [false]: racy). *)
