(** Litmus synthesis from critical cycles.

    The standard way to synthesize a litmus test that separates memory
    models (diy's approach, grounded in Shasha-Snir critical cycles and
    the conflict-edge analysis of Zhang et al.) is to pick a cycle over
    program-order and conflict edges, realize each edge as concrete
    instructions, and state the outcome that {e witnesses} the cycle —
    an outcome no sequentially consistent execution can produce.

    The shapes here are the classic two-events-per-processor cycles:
    [k] processors, [k] locations, processor [i] first accesses location
    [i] then location [i+1 mod k].  The program-order edge is the pair
    inside a processor; the conflict (external) edge links processor
    [i]'s second access and processor [i+1]'s first access, both on
    location [i+1 mod k].  Each conflict edge is oriented by how the
    forbidden outcome observes it:

    - {!Rf}: a write whose value the next processor's read returns,
    - {!Fr}: a read returning the {e initial} value although the next
      processor overwrites it,
    - {!Ws}: two writes whose final memory value exposes the coherence
      order.

    With [k = 2] these shapes are exactly SB ([Fr;Fr]), MP ([Rf;Fr]),
    LB ([Rf;Rf] read-first) and 2+2W ([Ws;Ws]); larger [k] yields WRC,
    IRIW-like chains, and so on.  Because the per-processor accesses
    are distinct locations in program order and every conflict edge is
    oriented by the outcome, the union of the edges is a cycle — so the
    forbidden outcome lies outside the SC outcome set for {e every}
    shape this module can emit (the test suite enumerates samples and
    checks exactly that).

    Each endpoint of a conflict edge may independently be a
    synchronization operation.  Locations are touched by exactly the
    two endpoints of their conflict edge, so the program's conflicting
    pairs are precisely the conflict edges: if both endpoints of every
    edge are synchronization operations, the program is DRF0 {e by
    construction}; if no endpoint anywhere is, it is racy by
    construction. *)

type conflict =
  | Rf  (** write → read-from: the read returns the write's value *)
  | Fr  (** from-read: the read returns the initial value, the
            successor's write overwrites it *)
  | Ws  (** write serialization: final memory exposes the order *)

type edge = {
  conflict : conflict;
  sync_from : bool;  (** the source endpoint is a synchronization op *)
  sync_to : bool;  (** the destination endpoint is a synchronization op *)
}

type shape = {
  edges : edge list;  (** one conflict edge per processor; length >= 2 *)
  padding : int list;
      (** local-work [Nop]s inserted before the first access of each
          processor (same length as [edges]); pure timing variation *)
}

val validate : shape -> (unit, string) result
(** At least two edges and matching padding length. *)

val program : name:string -> shape -> Wo_prog.Program.t
(** Emit the shape as a program.  Processor [i] runs [padding.(i)]
    [Nop]s, its first access (register [r0] if a read), then its second
    access (register [r1] if a read).  Writes store distinct non-zero
    constants per location (1 for the edge source, 2 for the edge
    destination), so reads-from and coherence order are unambiguous.
    Observable registers are exactly the read registers. *)

val forbidden : shape -> Wo_prog.Outcome.t -> bool
(** The outcome predicate that witnesses the cycle: every conflict
    edge observed in its stated orientation.  No SC outcome of
    [program shape] satisfies it. *)

val forbidden_desc : shape -> string
(** Human-readable rendering of the witness, e.g.
    ["P1:r0=1 /\ P0:r1=0"]. *)

val all_sync : shape -> bool
(** Both endpoints of every conflict edge are synchronization
    operations — DRF0 by construction. *)

val no_sync : shape -> bool
(** No endpoint anywhere is a synchronization operation — racy by
    construction. *)

val slug : shape -> string
(** Compact shape name, e.g. ["RfFr"] for MP. *)

val generate : rng:Wo_sim.Rng.t -> ?min_procs:int -> ?max_procs:int ->
  sync:[ `All | `None | `Mixed ] -> unit -> shape
(** Draw a shape: processor count uniform in [[min_procs, max_procs]]
    (defaults 2 and 4), conflict kinds uniform, padding 0-2 [Nop]s, and
    endpoint synchronization flags per [sync]. *)
