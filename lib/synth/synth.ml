module I = Wo_prog.Instr

type classification = Drf0_by_construction | Racy_by_construction | Unknown

let classification_name = function
  | Drf0_by_construction -> "drf0"
  | Racy_by_construction -> "racy"
  | Unknown -> "unknown"

type case = {
  name : string;
  family : string;
  seed : int;
  program : Wo_prog.Program.t;
  classification : classification;
  forbidden : (Wo_prog.Outcome.t -> bool) option;
  forbidden_desc : string option;
}

type corpus_entry = {
  base_name : string;
  base_program : Wo_prog.Program.t;
  base_drf0 : bool;
}

(* --- the legacy random families (moved verbatim from
   Wo_litmus.Random_prog, which now aliases these: identical draw order,
   so every historical (seed, params) pair still names the same
   program) -------------------------------------------------------------- *)

(* Register map per thread: r0..r3 observable accumulators, r4/r5 lock
   scratch. *)
let acc_regs = [ 0; 1; 2; 3 ]

let lock_disciplined ~seed ?(procs = 3) ?(sections_per_proc = 3)
    ?(ops_per_section = 4) ?(shared_locs = 2) ?(locks = 2) () =
  let rng = Wo_sim.Rng.make seed in
  (* Locations: locks first, then the shared data they guard.  Each shared
     location is guarded by lock (loc mod locks): a thread may only touch
     it while holding that lock. *)
  let lock_of_data d = d mod locks in
  let data_loc d = locks + d in
  let thread _p =
    List.concat
      (List.init sections_per_proc (fun _ ->
           let lock = Wo_sim.Rng.int rng locks in
           let guarded =
             List.filter (fun d -> lock_of_data d = lock)
               (List.init shared_locs (fun d -> d))
           in
           let body =
             if guarded = [] then [ I.Nop ]
             else
               List.init ops_per_section (fun _ ->
                   let d = Wo_sim.Rng.pick rng guarded in
                   let loc = data_loc d in
                   if Wo_sim.Rng.bool rng then
                     I.Read (Wo_sim.Rng.pick rng acc_regs, loc)
                   else
                     I.Write
                       ( loc,
                         I.Add
                           ( I.Reg (Wo_sim.Rng.pick rng acc_regs),
                             I.Const (Wo_sim.Rng.int rng 100) ) ))
           in
           Wo_prog.Snippets.critical_section ~lock ~scratch:4
             ~use_ttas:(Wo_sim.Rng.bool rng) ~scratch2:5 body))
  in
  let threads = List.init procs thread in
  let observable =
    List.concat_map (fun p -> List.map (fun r -> (p, r)) acc_regs)
      (List.init procs (fun p -> p))
  in
  Wo_prog.Program.make
    ~name:(Printf.sprintf "lock-disciplined-%d" seed)
    ~observable threads

let racy ~seed ?(procs = 2) ?(ops_per_proc = 4) ?(locs = 3) () =
  let rng = Wo_sim.Rng.make seed in
  (* Warm every location into every cache first (reads into a scratch
     register excluded from the outcome), so the cached machines race with
     shared copies resident -- the situation Figure 1 describes.  The
     warm-up reads are separated from the racy section by local delay
     only; they race too, but since the observable outcome ignores them
     the SC comparison is unaffected (the warm-up reads' locations are
     read again or overwritten later). *)
  let warmup =
    List.init locs (fun loc -> I.Read (5, loc)) @ List.init 12 (fun _ -> I.Nop)
  in
  let thread _p =
    warmup
    @ List.init ops_per_proc (fun _ ->
          let loc = Wo_sim.Rng.int rng locs in
          if Wo_sim.Rng.bool rng then I.Read (Wo_sim.Rng.int rng 4, loc)
          else I.Write (loc, I.Const (1 + Wo_sim.Rng.int rng 9)))
  in
  let observable =
    List.concat_map
      (fun p -> List.map (fun r -> (p, r)) [ 0; 1; 2; 3 ])
      (List.init procs (fun p -> p))
  in
  Wo_prog.Program.make
    ~name:(Printf.sprintf "racy-%d" seed)
    ~observable
    (List.init procs thread)

(* --- families ------------------------------------------------------------- *)

let families =
  [ "cycle-drf0"; "cycle-racy"; "cycle-mixed"; "mutate"; "lock-disciplined";
    "racy" ]

let cycle_case ~family ~seed ~sync =
  let rng = Wo_sim.Rng.make seed in
  let shape = Cycle.generate ~rng ~sync () in
  let name = Printf.sprintf "%s-%d-%s" family seed (Cycle.slug shape) in
  let classification =
    if Cycle.all_sync shape then Drf0_by_construction
    else if Cycle.no_sync shape then Racy_by_construction
    else Unknown
  in
  {
    name;
    family;
    seed;
    program = Cycle.program ~name shape;
    classification;
    forbidden = Some (Cycle.forbidden shape);
    forbidden_desc = Some (Cycle.forbidden_desc shape);
  }

let mutate_case ~corpus ~seed =
  match corpus with
  | [] -> Error "family \"mutate\" needs a non-empty corpus"
  | _ ->
    let rng = Wo_sim.Rng.make seed in
    let base = Wo_sim.Rng.pick rng corpus in
    let program, apps = Mutate.mutate ~rng base.base_program in
    let classification =
      match Mutate.transfer ~base_drf0:base.base_drf0 apps with
      | `Drf0 -> Drf0_by_construction
      | `Racy -> Racy_by_construction
      | `Unknown -> Unknown
    in
    let detail =
      match apps with
      | [] -> "id"
      | _ ->
        String.concat ","
          (List.map
             (fun (a : Mutate.application) ->
               Mutate.kind_name a.Mutate.kind ^ ":" ^ a.Mutate.detail)
             apps)
    in
    let name = Printf.sprintf "mutate-%d-%s[%s]" seed base.base_name detail in
    Ok
      {
        name;
        family = "mutate";
        seed;
        program = { program with Wo_prog.Program.name };
        classification;
        forbidden = None;
        forbidden_desc = None;
      }

let generate ?(corpus = []) ~family ~seed () =
  match family with
  | "cycle-drf0" -> Ok (cycle_case ~family ~seed ~sync:`All)
  | "cycle-racy" -> Ok (cycle_case ~family ~seed ~sync:`None)
  | "cycle-mixed" -> Ok (cycle_case ~family ~seed ~sync:`Mixed)
  | "mutate" -> mutate_case ~corpus ~seed
  | "lock-disciplined" ->
    let rng = Wo_sim.Rng.make seed in
    let procs = Wo_sim.Rng.int_in rng 2 3 in
    let sections_per_proc = Wo_sim.Rng.int_in rng 1 3 in
    let ops_per_section = Wo_sim.Rng.int_in rng 2 4 in
    Ok
      {
        name = Printf.sprintf "lock-disciplined-%d" seed;
        family;
        seed;
        program =
          lock_disciplined ~seed ~procs ~sections_per_proc ~ops_per_section ();
        classification = Drf0_by_construction;
        forbidden = None;
        forbidden_desc = None;
      }
  | "racy" ->
    let rng = Wo_sim.Rng.make seed in
    let procs = Wo_sim.Rng.int_in rng 2 3 in
    let ops_per_proc = Wo_sim.Rng.int_in rng 2 4 in
    Ok
      {
        name = Printf.sprintf "racy-%d" seed;
        family;
        seed;
        program = racy ~seed ~procs ~ops_per_proc ();
        classification = Racy_by_construction;
        forbidden = None;
        forbidden_desc = None;
      }
  | f ->
    Error
      (Printf.sprintf "unknown family %S; try one of: %s" f
         (String.concat ", " families))

let emit_generated n =
  let r = Wo_obs.Recorder.active () in
  if Wo_obs.Recorder.enabled r then
    Wo_obs.Recorder.counter r ~cat:Wo_obs.Recorder.Camp ~track:0
      ~name:"synth.generated" ~ts:0 ~value:n

let batch ?corpus ~family ~base_seed ~count () =
  let rec go acc seed =
    if seed >= base_seed + count then Ok (List.rev acc)
    else
      match generate ?corpus ~family ~seed () with
      | Ok case -> go (case :: acc) (seed + 1)
      | Error _ as e -> e
  in
  Result.map
    (fun cases ->
      emit_generated (List.length cases);
      cases)
    (go [] base_seed)
