module I = Wo_prog.Instr
module P = Wo_prog.Program

type kind = Reorder | Weaken | Strengthen | Merge_locs

let kind_name = function
  | Reorder -> "reorder"
  | Weaken -> "weaken"
  | Strengthen -> "strengthen"
  | Merge_locs -> "merge-locs"

type application = { kind : kind; detail : string }

(* --- instruction tree helpers -------------------------------------------- *)

let rec expr_regs acc = function
  | I.Const _ -> acc
  | I.Reg r -> r :: acc
  | I.Add (a, b) | I.Sub (a, b) | I.Mul (a, b) -> expr_regs (expr_regs acc a) b

(* Registers an instruction reads or writes (top-level shapes only; the
   swap candidates below never include control flow). *)
let instr_regs = function
  | I.Read (r, _) | I.Sync_read (r, _) | I.Test_and_set (r, _) -> [ r ]
  | I.Write (_, e) | I.Sync_write (_, e) -> expr_regs [] e
  | I.Fetch_and_add (r, _, e) -> r :: expr_regs [] e
  | I.Assign (r, e) -> r :: expr_regs [] e
  | I.If _ | I.While _ | I.Nop | I.Fence -> []

let instr_loc = function
  | I.Read (_, l) | I.Sync_read (_, l) | I.Test_and_set (_, l)
  | I.Write (l, _) | I.Sync_write (l, _) | I.Fetch_and_add (_, l, _) ->
    Some l
  | I.Assign _ | I.If _ | I.While _ | I.Nop | I.Fence -> None

(* A swap candidate: plain data / local ops only, so each access keeps
   its position relative to every synchronization operation and fence. *)
let swappable = function
  | I.Read _ | I.Write _ | I.Assign _ | I.Nop -> true
  | _ -> false

let independent a b =
  let disjoint l1 l2 = not (List.exists (fun x -> List.mem x l2) l1) in
  (match (instr_loc a, instr_loc b) with
  | Some la, Some lb -> la <> lb
  | _ -> true)
  && disjoint (instr_regs a) (instr_regs b)

(* Deep rewrite with a site counter: [f] sees every instruction
   (recursing through If/While bodies) and returns [Some instr'] to
   rewrite a site it accepts; [select] picks which accepted site. *)
let rewrite_nth ~select f thread =
  let count = ref 0 in
  let rec go instrs =
    List.map
      (fun instr ->
        match f instr with
        | Some instr' ->
          let here = !count in
          incr count;
          if here = select then instr' else recurse instr
        | None -> recurse instr)
      instrs
  and recurse = function
    | I.If (c, t, e) -> I.If (c, go t, go e)
    | I.While (c, b) -> I.While (c, go b)
    | instr -> instr
  in
  let out = go thread in
  (out, !count)

let count_sites f thread =
  let n = ref 0 in
  let rec go instrs =
    List.iter
      (fun instr ->
        (match f instr with Some _ -> incr n | None -> ());
        match instr with
        | I.If (_, t, e) ->
          go t;
          go e
        | I.While (_, b) -> go b
        | _ -> ())
      instrs
  in
  go thread;
  !n

let weaken_site = function
  | I.Sync_read (r, l) -> Some (I.Read (r, l))
  | I.Sync_write (l, e) -> Some (I.Write (l, e))
  | _ -> None

let strengthen_site = function
  | I.Read (r, l) -> Some (I.Sync_read (r, l))
  | I.Write (l, e) -> Some (I.Sync_write (l, e))
  | _ -> None

let rec rename_expr _ e = e

and rename_instr ~from_ ~to_ instr =
  let loc l = if l = from_ then to_ else l in
  match instr with
  | I.Read (r, l) -> I.Read (r, loc l)
  | I.Sync_read (r, l) -> I.Sync_read (r, loc l)
  | I.Test_and_set (r, l) -> I.Test_and_set (r, loc l)
  | I.Write (l, e) -> I.Write (loc l, rename_expr () e)
  | I.Sync_write (l, e) -> I.Sync_write (loc l, rename_expr () e)
  | I.Fetch_and_add (r, l, e) -> I.Fetch_and_add (r, loc l, rename_expr () e)
  | I.Assign (r, e) -> I.Assign (r, e)
  | I.If (c, t, e) ->
    I.If (c, List.map (rename_instr ~from_ ~to_) t,
          List.map (rename_instr ~from_ ~to_) e)
  | I.While (c, b) -> I.While (c, List.map (rename_instr ~from_ ~to_) b)
  | (I.Nop | I.Fence) as i -> i

(* Locations any synchronization operation (or atomic RMW) touches,
   anywhere in the program — merging those would corrupt lock/barrier
   protocols, so Merge_locs avoids them. *)
let sync_locs (p : P.t) =
  let acc = ref [] in
  let rec go instrs =
    List.iter
      (fun instr ->
        (match instr with
        | I.Sync_read (_, l) | I.Sync_write (l, _) | I.Test_and_set (_, l)
        | I.Fetch_and_add (_, l, _) ->
          acc := l :: !acc
        | _ -> ());
        match instr with
        | I.If (_, t, e) ->
          go t;
          go e
        | I.While (_, b) -> go b
        | _ -> ())
      instrs
  in
  Array.iter go p.P.threads;
  List.sort_uniq compare !acc

(* --- the operators -------------------------------------------------------- *)

let try_reorder rng (p : P.t) =
  (* Candidate swap positions: (thread, index of the left element of an
     adjacent independent pair), top level only. *)
  let pairs_of t =
    let rec go i acc = function
      | a :: (b :: _ as rest) ->
        let acc =
          if swappable a && swappable b && independent a b then i :: acc
          else acc
        in
        go (i + 1) acc rest
      | _ -> List.rev acc
    in
    go 0 [] t
  in
  let candidates =
    List.concat
      (List.init (Array.length p.P.threads) (fun t ->
           List.map (fun i -> (t, i)) (pairs_of p.P.threads.(t))))
  in
  match candidates with
  | [] -> None
  | _ ->
    let t, i = Wo_sim.Rng.pick rng candidates in
    let rec swap j = function
      | a :: b :: rest when j = i -> b :: a :: rest
      | a :: rest -> a :: swap (j + 1) rest
      | [] -> []
    in
    let threads = Array.copy p.P.threads in
    threads.(t) <- swap 0 threads.(t);
    Some
      ( { p with P.threads },
        { kind = Reorder; detail = Printf.sprintf "P%d@%d" t i } )

let try_rewrite rng kind site_fn (p : P.t) =
  let per_thread =
    Array.map (fun t -> count_sites site_fn t) p.P.threads
  in
  let total = Array.fold_left ( + ) 0 per_thread in
  if total = 0 then None
  else begin
    let global = Wo_sim.Rng.int rng total in
    (* Locate the thread owning site [global]. *)
    let t = ref 0 and before = ref 0 in
    while !before + per_thread.(!t) <= global do
      before := !before + per_thread.(!t);
      incr t
    done;
    let select = global - !before in
    let thread', _ = rewrite_nth ~select site_fn p.P.threads.(!t) in
    let threads = Array.copy p.P.threads in
    threads.(!t) <- thread';
    Some
      ( { p with P.threads },
        { kind; detail = Printf.sprintf "P%d#%d" !t select } )
  end

let try_merge rng (p : P.t) =
  let sync = sync_locs p in
  let data =
    List.filter (fun l -> not (List.mem l sync)) (P.locs p)
  in
  match data with
  | _ :: _ :: _ ->
    let from_ = Wo_sim.Rng.pick rng data in
    let to_ = Wo_sim.Rng.pick rng (List.filter (fun l -> l <> from_) data) in
    let threads =
      Array.map (List.map (rename_instr ~from_ ~to_)) p.P.threads
    in
    (* The merged location inherits the target's initial value; the
       source's entry (if any) disappears with the location. *)
    let initial = List.filter (fun (l, _) -> l <> from_) p.P.initial in
    Some
      ( { p with P.threads; P.initial },
        { kind = Merge_locs; detail = Printf.sprintf "%d->%d" from_ to_ } )
  | _ -> None

let mutate ~rng ?mutations (p : P.t) =
  let n =
    match mutations with Some n -> max 1 n | None -> Wo_sim.Rng.int_in rng 1 3
  in
  let apply p = function
    | Reorder -> try_reorder rng p
    | Weaken -> try_rewrite rng Weaken weaken_site p
    | Strengthen -> try_rewrite rng Strengthen strengthen_site p
    | Merge_locs -> try_merge rng p
  in
  let rec go p acc i =
    if i = n then (p, List.rev acc)
    else
      let kind =
        Wo_sim.Rng.pick rng [ Reorder; Weaken; Strengthen; Merge_locs ]
      in
      match apply p kind with
      | Some (p', app) -> go p' (app :: acc) (i + 1)
      | None -> go p acc (i + 1)
  in
  go p [] 0

let transfer ~base_drf0 apps =
  let step cls (app : application) =
    match (app.kind, cls) with
    | Reorder, c -> c
    | Weaken, `Drf0 -> `Unknown
    | Weaken, c -> c
    | Strengthen, `Racy -> `Unknown
    | Strengthen, c -> c
    | Merge_locs, `Drf0 -> `Unknown
    | Merge_locs, c -> c
  in
  List.fold_left step (if base_drf0 then `Drf0 else `Racy) apps
