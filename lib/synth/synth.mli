(** The one seeded litmus-generation surface.

    Every generated program in the repository comes out of this module:
    structured synthesis from critical cycles ({!Cycle}), mutation of an
    existing corpus ({!Mutate}), and the two legacy random families
    (lock-disciplined and racy, folded in from [Wo_litmus.Random_prog],
    which now aliases these).  Generation is {e deterministic}: a
    (family, seed) pair always produces the same program, down to the
    canonical byte encoding — the campaign engine's persistent store
    keys depend on it.

    Each case is classified {e up front}:

    - [Drf0_by_construction]: every conflicting access pair is
      synchronization (all-sync cycles) or protected by a lock
      discipline — a weakly ordered machine must appear SC on it;
    - [Racy_by_construction]: a data race is guaranteed — the negative
      control, where weak machines should (and do) leave the SC set;
    - [Unknown]: mixed-sync cycles and most mutants — classify with
      [Enumerate.check_drf0_stateful] if the campaign needs to know.

    The test suite cross-checks samples of the first two classes
    against the exhaustive checker. *)

type classification = Drf0_by_construction | Racy_by_construction | Unknown

val classification_name : classification -> string
(** ["drf0"], ["racy"], ["unknown"]. *)

type case = {
  name : string;  (** unique per (family, seed) *)
  family : string;
  seed : int;
  program : Wo_prog.Program.t;
  classification : classification;
  forbidden : (Wo_prog.Outcome.t -> bool) option;
      (** cycle families: the outcome witnessing the cycle, never
          produced by any SC execution *)
  forbidden_desc : string option;
}

type corpus_entry = {
  base_name : string;
  base_program : Wo_prog.Program.t;
  base_drf0 : bool;
}
(** A mutation seed program.  The CLI feeds the loop-free litmus
    catalogue in; any caller-supplied corpus works. *)

val families : string list
(** ["cycle-drf0"; "cycle-racy"; "cycle-mixed"; "mutate";
    "lock-disciplined"; "racy"]. *)

val generate :
  ?corpus:corpus_entry list ->
  family:string ->
  seed:int ->
  unit ->
  (case, string) result
(** One deterministic case.  Errors on an unknown family, or on
    ["mutate"] with an empty corpus. *)

val batch :
  ?corpus:corpus_entry list ->
  family:string ->
  base_seed:int ->
  count:int ->
  unit ->
  (case list, string) result
(** [generate] over seeds [base_seed .. base_seed+count-1].  Emits the
    [synth.generated] observability counter when a recorder is
    active. *)

(** {2 The legacy families} (the implementations behind
    [Wo_litmus.Random_prog], byte-for-byte) *)

val lock_disciplined :
  seed:int ->
  ?procs:int ->
  ?sections_per_proc:int ->
  ?ops_per_section:int ->
  ?shared_locs:int ->
  ?locks:int ->
  unit ->
  Wo_prog.Program.t

val racy :
  seed:int ->
  ?procs:int ->
  ?ops_per_proc:int ->
  ?locs:int ->
  unit ->
  Wo_prog.Program.t
