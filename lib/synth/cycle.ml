module I = Wo_prog.Instr

type conflict = Rf | Fr | Ws

type edge = { conflict : conflict; sync_from : bool; sync_to : bool }

type shape = { edges : edge list; padding : int list }

let validate s =
  let k = List.length s.edges in
  if k < 2 then Error "cycle needs at least two conflict edges"
  else if List.length s.padding <> k then
    Error "padding must list one entry per processor"
  else Ok ()

let conflict_name = function Rf -> "Rf" | Fr -> "Fr" | Ws -> "Ws"

let slug s = String.concat "" (List.map (fun e -> conflict_name e.conflict) s.edges)

(* Endpoint directions fixed by the conflict kind: the source of an
   [Rf]/[Ws] edge writes, the source of an [Fr] edge reads; dually for
   destinations.  True means "write". *)
let src_writes = function Rf | Ws -> true | Fr -> false
let dst_writes = function Rf -> false | Fr | Ws -> true

(* The value written by each endpoint of edge [i] (both on location
   [i+1 mod k]): 1 for the source, 2 for the destination.  At most one
   of the two writes per location in the Rf/Fr cases, both for Ws —
   either way every write to a location stores a distinct non-zero
   value, so the outcome orients the edge unambiguously. *)
let src_value = 1
let dst_value = 2

let arr s = Array.of_list s.edges

(* Processor [i]'s first access is the destination endpoint of edge
   [i-1] (location [i]), its second the source endpoint of edge [i]
   (location [i+1]). *)
let first_access edges i =
  let k = Array.length edges in
  let e = edges.((i + k - 1) mod k) in
  let loc = i in
  if dst_writes e.conflict then
    if e.sync_to then I.Sync_write (loc, I.Const dst_value)
    else I.Write (loc, I.Const dst_value)
  else if e.sync_to then I.Sync_read (0, loc)
  else I.Read (0, loc)

let second_access edges i =
  let k = Array.length edges in
  let e = edges.(i) in
  let loc = (i + 1) mod k in
  if src_writes e.conflict then
    if e.sync_from then I.Sync_write (loc, I.Const src_value)
    else I.Write (loc, I.Const src_value)
  else if e.sync_from then I.Sync_read (1, loc)
  else I.Read (1, loc)

let program ~name s =
  (match validate s with Ok () -> () | Error e -> invalid_arg e);
  let edges = arr s in
  let k = Array.length edges in
  let padding = Array.of_list s.padding in
  let thread i =
    List.init padding.(i) (fun _ -> I.Nop)
    @ [ first_access edges i; second_access edges i ]
  in
  let observable =
    List.concat
      (List.init k (fun i ->
           let firsts =
             if dst_writes edges.((i + k - 1) mod k).conflict then []
             else [ (i, 0) ]
           in
           let seconds =
             if src_writes edges.(i).conflict then [] else [ (i, 1) ]
           in
           firsts @ seconds))
  in
  Wo_prog.Program.make ~name ~observable (List.init k thread)

(* One observation per edge [i] (source = P[i]'s second access,
   destination = P[i+1]'s first access, location [i+1 mod k]):
   - Rf: the destination read returned the source's value;
   - Fr: the source read returned the initial value (the destination's
     write is the location's only write);
   - Ws: final memory holds the destination's value, so the source
     write is coherence-earlier. *)
let edge_obs edges i =
  let k = Array.length edges in
  let e = edges.(i) in
  let loc = (i + 1) mod k in
  match e.conflict with
  | Rf -> `Reg ((i + 1) mod k, 0, src_value)
  | Fr -> `Reg (i, 1, 0)
  | Ws -> `Mem (loc, dst_value)

let forbidden s (o : Wo_prog.Outcome.t) =
  let edges = arr s in
  let k = Array.length edges in
  let check i =
    match edge_obs edges i with
    | `Reg (p, r, v) -> Wo_prog.Outcome.register o p r = Some v
    | `Mem (l, v) -> Wo_prog.Outcome.memory_value o l = Some v
  in
  let rec all i = i >= k || (check i && all (i + 1)) in
  all 0

let forbidden_desc s =
  let edges = arr s in
  let k = Array.length edges in
  String.concat " /\\ "
    (List.init k (fun i ->
         match edge_obs edges i with
         | `Reg (p, r, v) -> Printf.sprintf "P%d:r%d=%d" p r v
         | `Mem (l, v) -> Printf.sprintf "[%d]=%d" l v))

let all_sync s = List.for_all (fun e -> e.sync_from && e.sync_to) s.edges

let no_sync s =
  List.for_all (fun e -> (not e.sync_from) && not e.sync_to) s.edges

let generate ~rng ?(min_procs = 2) ?(max_procs = 4) ~sync () =
  let k = Wo_sim.Rng.int_in rng min_procs max_procs in
  let edge _ =
    let conflict = Wo_sim.Rng.pick rng [ Rf; Fr; Ws ] in
    let sync_from, sync_to =
      match sync with
      | `All -> (true, true)
      | `None -> (false, false)
      | `Mixed -> (Wo_sim.Rng.bool rng, Wo_sim.Rng.bool rng)
    in
    { conflict; sync_from; sync_to }
  in
  let edges = List.init k edge in
  let padding = List.init k (fun _ -> Wo_sim.Rng.int rng 3) in
  { edges; padding }
