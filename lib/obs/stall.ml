type reason =
  | Read_miss
  | Rmw_wait
  | Rmw_order
  | Sync_commit
  | Release_gate
  | Reserve_wait
  | Counter_drain
  | Buffer_full
  | Buffer_drain
  | Write_ack
  | Migration

let all_reasons =
  [
    Read_miss;
    Rmw_wait;
    Rmw_order;
    Sync_commit;
    Release_gate;
    Reserve_wait;
    Counter_drain;
    Buffer_full;
    Buffer_drain;
    Write_ack;
    Migration;
  ]

let reason_name = function
  | Read_miss -> "read_miss"
  | Rmw_wait -> "rmw"
  | Rmw_order -> "rmw_order"
  | Sync_commit -> "sync_commit"
  | Release_gate -> "release_gate"
  | Reserve_wait -> "reserve"
  | Counter_drain -> "counter_drain"
  | Buffer_full -> "buffer_full"
  | Buffer_drain -> "buffer_drain"
  | Write_ack -> "write_ack"
  | Migration -> "migration"

let reason_of_name s =
  List.find_opt (fun r -> reason_name r = s) all_reasons

let nreasons = List.length all_reasons

let reason_index r =
  let rec go i = function
    | [] -> assert false
    | x :: rest -> if x = r then i else go (i + 1) rest
  in
  go 0 all_reasons

type t = {
  mutable cells : int array array; (* proc -> per-reason cycles *)
  mutable grand_total : int;
}

let create () = { cells = [||]; grand_total = 0 }

(* Back to the freshly-created shape — rows regrow lazily, so a cleared
   collector evolves exactly like a new one (same array lengths at every
   point of the next run, hence identical Marshal fingerprints). *)
let clear t =
  t.cells <- [||];
  t.grand_total <- 0

let copy t =
  { cells = Array.map Array.copy t.cells; grand_total = t.grand_total }

let ensure t proc =
  if proc >= Array.length t.cells then begin
    let cells = Array.make (proc + 1) [||] in
    Array.blit t.cells 0 cells 0 (Array.length t.cells);
    for p = Array.length t.cells to proc do
      cells.(p) <- Array.make nreasons 0
    done;
    t.cells <- cells
  end

let add t ?(sink = Recorder.disabled) ?now ~proc reason cycles =
  if cycles > 0 && proc >= 0 then begin
    ensure t proc;
    let row = t.cells.(proc) in
    let i = reason_index reason in
    row.(i) <- row.(i) + cycles;
    t.grand_total <- t.grand_total + cycles;
    match now with
    | Some at when Recorder.enabled sink ->
      Recorder.span sink ~cat:Recorder.Proc ~track:proc
        ~name:("stall." ^ reason_name reason)
        ~ts:(at - cycles) ~dur:cycles
    | _ -> ()
  end

let get t ~proc reason =
  if proc < 0 || proc >= Array.length t.cells then 0
  else t.cells.(proc).(reason_index reason)

let proc_total t ~proc =
  if proc < 0 || proc >= Array.length t.cells then 0
  else Array.fold_left ( + ) 0 t.cells.(proc)

let total t = t.grand_total

let procs t =
  let acc = ref [] in
  for p = Array.length t.cells - 1 downto 0 do
    if Array.fold_left ( + ) 0 t.cells.(p) > 0 then acc := p :: !acc
  done;
  !acc

let per_proc t ~proc =
  List.filter_map
    (fun r ->
      let c = get t ~proc r in
      if c > 0 then Some (r, c) else None)
    all_reasons

let merge a b =
  let t = create () in
  let absorb src =
    Array.iteri
      (fun p row ->
        Array.iteri
          (fun i c ->
            if c > 0 then add t ~proc:p (List.nth all_reasons i) c)
          row)
      src.cells
  in
  absorb a;
  absorb b;
  t

let to_stats t =
  let entries =
    List.concat_map
      (fun p ->
        List.map
          (fun (r, c) -> (Printf.sprintf "P%d.stall.%s" p (reason_name r), c))
          (per_proc t ~proc:p))
      (procs t)
    |> List.sort compare
  in
  if t.grand_total > 0 then entries @ [ ("stall.total", t.grand_total) ]
  else entries

let to_json t =
  Json.Obj
    [
      ("total", Json.Int t.grand_total);
      ( "per_proc",
        Json.List
          (List.map
             (fun p ->
               Json.Obj
                 [
                   ("proc", Json.Int p);
                   ("total", Json.Int (proc_total t ~proc:p));
                   ( "reasons",
                     Json.Obj
                       (List.map
                          (fun (r, c) -> (reason_name r, Json.Int c))
                          (per_proc t ~proc:p)) );
                 ])
             (procs t)) );
    ]
