type category = Proc | Cache | Dir | Net | Enum | Camp

let category_name = function
  | Proc -> "proc"
  | Cache -> "cache"
  | Dir -> "dir"
  | Net -> "net"
  | Enum -> "enum"
  | Camp -> "campaign"

type event =
  | Span of { name : string; cat : category; track : int; ts : int; dur : int }
  | Instant of { name : string; cat : category; track : int; ts : int }
  | Counter of {
      name : string;
      cat : category;
      track : int;
      ts : int;
      value : int;
    }

let chunk_size = 4096

type t = {
  on : bool;
  mutable chunk : event array;
  mutable fill : int;
  mutable full_rev : event array list;
  mutable total : int;
}

let dummy = Instant { name = ""; cat = Proc; track = 0; ts = 0 }

let create () =
  {
    on = true;
    chunk = Array.make chunk_size dummy;
    fill = 0;
    full_rev = [];
    total = 0;
  }

let disabled = { on = false; chunk = [||]; fill = 0; full_rev = []; total = 0 }

let enabled t = t.on

let push t e =
  if t.fill = Array.length t.chunk then begin
    t.full_rev <- t.chunk :: t.full_rev;
    t.chunk <- Array.make chunk_size dummy;
    t.fill <- 0
  end;
  t.chunk.(t.fill) <- e;
  t.fill <- t.fill + 1;
  t.total <- t.total + 1

let span t ~cat ~track ~name ~ts ~dur =
  if t.on then push t (Span { name; cat; track; ts; dur })

let instant t ~cat ~track ~name ~ts =
  if t.on then push t (Instant { name; cat; track; ts })

let counter t ~cat ~track ~name ~ts ~value =
  if t.on then push t (Counter { name; cat; track; ts; value })

let length t = t.total

let events t =
  let chunks = List.rev (Array.sub t.chunk 0 t.fill :: t.full_rev) in
  List.concat_map Array.to_list chunks

let clear t =
  if t.on then begin
    t.chunk <- Array.make chunk_size dummy;
    t.fill <- 0;
    t.full_rev <- [];
    t.total <- 0
  end

(* --- the ambient sink ------------------------------------------------------ *)

let current = ref disabled

let active () = !current

let with_sink t f =
  let old = !current in
  current := t;
  Fun.protect ~finally:(fun () -> current := old) f
