(** Power-of-two latency histograms.

    Fixed 64 buckets — bucket [i] counts values [v] with
    [bits v = i] (bucket 0 holds zero, bucket 1 holds 1, bucket 2 holds
    2–3, bucket 3 holds 4–7, …) — so recording is O(1), allocation-free,
    and merging is pointwise. *)

type t

val create : unit -> t

val copy : t -> t
(** Deep copy — the snapshot no longer aliases the live histogram. *)

val add : t -> int -> unit
(** Negative values clamp to zero. *)

val count : t -> int

val sum : t -> int

val max_value : t -> int
(** Largest value recorded (0 when empty). *)

val mean : t -> float
(** 0.0 when empty. *)

val buckets : t -> (int * int * int) list
(** Non-empty buckets as [(lo, hi, count)], ascending. *)

val merge : t -> t -> t
(** Pointwise sum into a fresh histogram. *)

val to_json : t -> Json.t
(** [{"count", "sum", "mean", "max", "buckets": [{"lo","hi","n"}...]}]. *)
