let schema_name = "wo-metrics"

let schema_version = 1

let envelope_keys = [ "schema"; "schema_version"; "experiment" ]

let make ~experiment fields =
  List.iter
    (fun (k, _) ->
      if List.mem k envelope_keys then
        invalid_arg ("Metrics.make: payload field shadows envelope key " ^ k))
    fields;
  Json.Obj
    (("schema", Json.String schema_name)
    :: ("schema_version", Json.Int schema_version)
    :: ("experiment", Json.String experiment)
    :: fields)

let write_file ~path doc =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () ->
      output_string oc (Json.to_string ~pretty:true doc);
      output_char oc '\n')

let validate doc =
  match doc with
  | Json.Obj _ -> (
    match Json.member "schema" doc with
    | Some (Json.String s) when s = schema_name -> (
      match Json.member "schema_version" doc with
      | Some (Json.Int v) when v >= 1 && v <= schema_version -> (
        match Json.member "experiment" doc with
        | Some (Json.String e) when e <> "" -> Ok ()
        | Some _ -> Error "experiment must be a non-empty string"
        | None -> Error "missing experiment")
      | Some (Json.Int v) ->
        Error (Printf.sprintf "unsupported schema_version %d" v)
      | Some _ -> Error "schema_version must be an integer"
      | None -> Error "missing schema_version")
    | Some (Json.String s) -> Error (Printf.sprintf "unknown schema %S" s)
    | Some _ -> Error "schema must be a string"
    | None -> Error "missing schema")
  | _ -> Error "metrics document must be an object"

let experiment doc =
  match Json.member "experiment" doc with
  | Some (Json.String e) -> Some e
  | _ -> None
