(** Protocol-message taps: per-type counts and transit-latency
    histograms.

    The machines install one of these on their interconnect fabric; the
    bus and network call back with every message's type tag and its
    send-to-delivery latency (for the bus, queueing wait included). *)

type t

val create : unit -> t

val clear : t -> unit
(** Forget every tap, in place. *)

val copy : t -> t
(** Deep copy (histograms included) — no aliasing of the live taps. *)

val record : t -> name:string -> latency:int -> unit

val to_list : t -> (string * int * Hist.t) list
(** [(type, count, latency histogram)], sorted by type name. *)

val total : t -> int
(** Messages recorded across all types. *)

val merge : t -> t -> t

val to_stats : t -> (string * int) list
(** [("msg.<type>", count)] entries, sorted. *)

val to_json : t -> Json.t
(** [[{"type", "count", "latency": <hist>}...]]. *)
