(** Trace export.

    {!perfetto} renders a recorder's events as a Chrome trace-event
    JSON document (the format Perfetto and [chrome://tracing] load):
    each category becomes a process, each track a thread within it,
    spans become complete ("X") events, instants "i", counters "C".
    Timestamps are simulation cycles reported as microseconds, so one
    cycle displays as one microsecond. *)

val perfetto : Recorder.t -> Json.t
(** [{"traceEvents": [...], "displayTimeUnit": "ns"}] with process/
    thread-name metadata events for every (category, track) that
    appears. *)

val perfetto_string : Recorder.t -> string
(** {!perfetto} pretty-printed. *)

val pretty : Recorder.t -> string
(** A human-readable listing, one event per line, in time order
    (emission order breaks ties). *)
