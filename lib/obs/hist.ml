let nbuckets = 64

type t = {
  counts : int array;
  mutable n : int;
  mutable total : int;
  mutable max_v : int;
}

let create () = { counts = Array.make nbuckets 0; n = 0; total = 0; max_v = 0 }

let copy t =
  { counts = Array.copy t.counts; n = t.n; total = t.total; max_v = t.max_v }

(* bucket 0: value 0; bucket i>0: values in [2^(i-1), 2^i). *)
let bucket_of v =
  let v = max 0 v in
  let rec bits acc v = if v = 0 then acc else bits (acc + 1) (v lsr 1) in
  min (nbuckets - 1) (bits 0 v)

let bounds i = if i = 0 then (0, 0) else (1 lsl (i - 1), (1 lsl i) - 1)

let add t v =
  let v = max 0 v in
  t.counts.(bucket_of v) <- t.counts.(bucket_of v) + 1;
  t.n <- t.n + 1;
  t.total <- t.total + v;
  if v > t.max_v then t.max_v <- v

let count t = t.n

let sum t = t.total

let max_value t = t.max_v

let mean t = if t.n = 0 then 0.0 else float_of_int t.total /. float_of_int t.n

let buckets t =
  let acc = ref [] in
  for i = nbuckets - 1 downto 0 do
    if t.counts.(i) > 0 then begin
      let lo, hi = bounds i in
      acc := (lo, hi, t.counts.(i)) :: !acc
    end
  done;
  !acc

let merge a b =
  let t = create () in
  Array.iteri (fun i c -> t.counts.(i) <- c + b.counts.(i)) a.counts;
  t.n <- a.n + b.n;
  t.total <- a.total + b.total;
  t.max_v <- max a.max_v b.max_v;
  t

let to_json t =
  Json.Obj
    [
      ("count", Json.Int t.n);
      ("sum", Json.Int t.total);
      ("mean", Json.Float (mean t));
      ("max", Json.Int t.max_v);
      ( "buckets",
        Json.List
          (List.map
             (fun (lo, hi, n) ->
               Json.Obj
                 [ ("lo", Json.Int lo); ("hi", Json.Int hi); ("n", Json.Int n) ])
             (buckets t)) );
    ]
