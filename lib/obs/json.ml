type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list

(* --- printing -------------------------------------------------------------- *)

let add_escaped b s =
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | '\r' -> Buffer.add_string b "\\r"
      | '\t' -> Buffer.add_string b "\\t"
      | c when Char.code c < 0x20 ->
        Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s

let float_repr f =
  match Float.classify_float f with
  | Float.FP_nan | Float.FP_infinite -> "null"
  | Float.FP_zero | Float.FP_normal | Float.FP_subnormal ->
    if Float.is_integer f && Float.abs f < 1e15 then Printf.sprintf "%.1f" f
    else
      let s = Printf.sprintf "%.12g" f in
      if String.contains s '.' || String.contains s 'e' then s else s ^ ".0"

let to_buffer ?(pretty = false) b v =
  let rec go indent v =
    match v with
    | Null -> Buffer.add_string b "null"
    | Bool true -> Buffer.add_string b "true"
    | Bool false -> Buffer.add_string b "false"
    | Int i -> Buffer.add_string b (string_of_int i)
    | Float f -> Buffer.add_string b (float_repr f)
    | String s ->
      Buffer.add_char b '"';
      add_escaped b s;
      Buffer.add_char b '"'
    | List [] -> Buffer.add_string b "[]"
    | List items ->
      Buffer.add_char b '[';
      items
      |> List.iteri (fun i item ->
             if i > 0 then Buffer.add_char b ',';
             newline (indent + 1);
             go (indent + 1) item);
      newline indent;
      Buffer.add_char b ']'
    | Obj [] -> Buffer.add_string b "{}"
    | Obj fields ->
      Buffer.add_char b '{';
      fields
      |> List.iteri (fun i (k, item) ->
             if i > 0 then Buffer.add_char b ',';
             newline (indent + 1);
             Buffer.add_char b '"';
             add_escaped b k;
             Buffer.add_string b (if pretty then "\": " else "\":");
             go (indent + 1) item);
      newline indent;
      Buffer.add_char b '}'
  and newline indent =
    if pretty then begin
      Buffer.add_char b '\n';
      Buffer.add_string b (String.make (2 * indent) ' ')
    end
  in
  go 0 v

let to_string ?pretty v =
  let b = Buffer.create 1024 in
  to_buffer ?pretty b v;
  Buffer.contents b

(* --- parsing --------------------------------------------------------------- *)

exception Parse_failure of string

let of_string s =
  let n = String.length s in
  let pos = ref 0 in
  let fail msg =
    raise (Parse_failure (Printf.sprintf "%s at offset %d" msg !pos))
  in
  let peek () = if !pos < n then Some s.[!pos] else None in
  let rec skip_ws () =
    match peek () with
    | Some (' ' | '\t' | '\n' | '\r') ->
      incr pos;
      skip_ws ()
    | _ -> ()
  in
  let expect c =
    match peek () with
    | Some d when d = c -> incr pos
    | _ -> fail (Printf.sprintf "expected '%c'" c)
  in
  let literal word v =
    if !pos + String.length word <= n && String.sub s !pos (String.length word) = word
    then begin
      pos := !pos + String.length word;
      v
    end
    else fail (Printf.sprintf "expected %s" word)
  in
  let add_utf8 b code =
    if code < 0x80 then Buffer.add_char b (Char.chr code)
    else if code < 0x800 then begin
      Buffer.add_char b (Char.chr (0xC0 lor (code lsr 6)));
      Buffer.add_char b (Char.chr (0x80 lor (code land 0x3F)))
    end
    else begin
      Buffer.add_char b (Char.chr (0xE0 lor (code lsr 12)));
      Buffer.add_char b (Char.chr (0x80 lor ((code lsr 6) land 0x3F)));
      Buffer.add_char b (Char.chr (0x80 lor (code land 0x3F)))
    end
  in
  let parse_string () =
    expect '"';
    let b = Buffer.create 16 in
    let rec go () =
      match peek () with
      | None -> fail "unterminated string"
      | Some '"' ->
        incr pos;
        Buffer.contents b
      | Some '\\' ->
        incr pos;
        (match peek () with
        | Some 'n' -> Buffer.add_char b '\n'; incr pos
        | Some 't' -> Buffer.add_char b '\t'; incr pos
        | Some 'r' -> Buffer.add_char b '\r'; incr pos
        | Some 'b' -> Buffer.add_char b '\b'; incr pos
        | Some 'f' -> Buffer.add_char b '\012'; incr pos
        | Some '"' -> Buffer.add_char b '"'; incr pos
        | Some '\\' -> Buffer.add_char b '\\'; incr pos
        | Some '/' -> Buffer.add_char b '/'; incr pos
        | Some 'u' ->
          incr pos;
          if !pos + 4 > n then fail "truncated \\u escape";
          let code =
            try int_of_string ("0x" ^ String.sub s !pos 4)
            with _ -> fail "bad \\u escape"
          in
          pos := !pos + 4;
          add_utf8 b code
        | _ -> fail "bad escape");
        go ()
      | Some c ->
        Buffer.add_char b c;
        incr pos;
        go ()
    in
    go ()
  in
  let parse_number () =
    let start = !pos in
    let is_num_char = function
      | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
      | _ -> false
    in
    while !pos < n && is_num_char s.[!pos] do
      incr pos
    done;
    let text = String.sub s start (!pos - start) in
    if String.contains text '.' || String.contains text 'e'
       || String.contains text 'E'
    then
      match float_of_string_opt text with
      | Some f -> Float f
      | None -> fail "malformed number"
    else
      match int_of_string_opt text with
      | Some i -> Int i
      | None -> (
        match float_of_string_opt text with
        | Some f -> Float f
        | None -> fail "malformed number")
  in
  let rec parse_value () =
    skip_ws ();
    match peek () with
    | Some '{' ->
      incr pos;
      skip_ws ();
      if peek () = Some '}' then begin
        incr pos;
        Obj []
      end
      else begin
        let fields = ref [] in
        let rec fields_loop () =
          skip_ws ();
          let key = parse_string () in
          skip_ws ();
          expect ':';
          let v = parse_value () in
          fields := (key, v) :: !fields;
          skip_ws ();
          match peek () with
          | Some ',' ->
            incr pos;
            fields_loop ()
          | Some '}' -> incr pos
          | _ -> fail "expected ',' or '}'"
        in
        fields_loop ();
        Obj (List.rev !fields)
      end
    | Some '[' ->
      incr pos;
      skip_ws ();
      if peek () = Some ']' then begin
        incr pos;
        List []
      end
      else begin
        let items = ref [] in
        let rec items_loop () =
          let v = parse_value () in
          items := v :: !items;
          skip_ws ();
          match peek () with
          | Some ',' ->
            incr pos;
            items_loop ()
          | Some ']' -> incr pos
          | _ -> fail "expected ',' or ']'"
        in
        items_loop ();
        List (List.rev !items)
      end
    | Some '"' -> String (parse_string ())
    | Some 't' -> literal "true" (Bool true)
    | Some 'f' -> literal "false" (Bool false)
    | Some 'n' -> literal "null" Null
    | Some ('-' | '0' .. '9') -> parse_number ()
    | Some c -> fail (Printf.sprintf "unexpected character '%c'" c)
    | None -> fail "unexpected end of input"
  in
  match
    let v = parse_value () in
    skip_ws ();
    if !pos <> n then fail "trailing garbage";
    v
  with
  | v -> Ok v
  | exception Parse_failure msg -> Error msg

(* --- accessors ------------------------------------------------------------- *)

let member key = function
  | Obj fields -> List.assoc_opt key fields
  | _ -> None

let to_list_opt = function List l -> Some l | _ -> None

let to_string_opt = function String s -> Some s | _ -> None

let to_bool_opt = function Bool b -> Some b | _ -> None

let to_int_opt = function
  | Int i -> Some i
  | Float f when Float.is_integer f -> Some (int_of_float f)
  | _ -> None

let to_float_opt = function
  | Int i -> Some (float_of_int i)
  | Float f -> Some f
  | _ -> None
