(** Per-processor, per-reason stall-cycle attribution.

    The paper's central performance claim (Figure 3, §5.3) is about who
    stalls, for what reason, and for how many cycles.  Every machine
    model and the cache controller report waits into one of these typed
    accounts instead of ad-hoc string counters; the legacy
    [P<i>.stall.<reason>] statistics keys are derived views
    ({!to_stats}), and [Wo_machines.Machine.stall]/[total_stalls] read
    through the same table.

    When a recorder sink is supplied, every attribution also emits a
    [Proc]-category span covering the stalled interval, so exported
    timelines show the waits the table aggregates. *)

type reason =
  | Read_miss  (** a data read waiting for its value *)
  | Rmw_wait  (** a non-synchronizing read-modify-write reply *)
  | Rmw_order  (** an RMW held for same-location write ordering *)
  | Sync_commit  (** a synchronization operation waiting to commit *)
  | Release_gate
      (** release-side gating: waiting for the processor's own previous
          accesses to perform globally around a synchronization
          operation — Definition 1's conditions 2 and 3.  The §5.3
          implementation's whole point is that this account stays at
          zero. *)
  | Reserve_wait
      (** a synchronization request held by a remote reserve bit (§5.3);
          attributed to the {e requesting} processor by the cache
          controller that holds the reserve *)
  | Counter_drain
      (** waiting for the outstanding-access counter / write pipeline to
          drain outside a release (fences, SC-style gating of data
          accesses) *)
  | Buffer_full  (** write buffer full *)
  | Buffer_drain  (** a read waiting for the write buffer to drain *)
  | Write_ack  (** a write waiting for its acknowledgement *)
  | Migration  (** the §5.1 re-scheduling rule before a context switch *)

val all_reasons : reason list

val reason_name : reason -> string
(** Stable short key, e.g. ["release_gate"]; used in statistics keys,
    metrics JSON and the CLI. *)

val reason_of_name : string -> reason option

type t

val create : unit -> t

val clear : t -> unit
(** Forget everything, in place, returning the collector to its
    freshly-created shape (rows regrow lazily on the next run). *)

val copy : t -> t
(** Deep copy — identical contents and array shapes, no aliasing. *)

val add : t -> ?sink:Recorder.t -> ?now:int -> proc:int -> reason -> int -> unit
(** Attribute [cycles] to [(proc, reason)]; non-positive counts are
    ignored.  With [~sink] and [~now] (the cycle the wait ended), also
    emits a span [\[now - cycles, now\]] named [stall.<reason>] on track
    [proc]. *)

val get : t -> proc:int -> reason -> int

val proc_total : t -> proc:int -> int

val total : t -> int

val procs : t -> int list
(** Processors with at least one attributed cycle, ascending. *)

val per_proc : t -> proc:int -> (reason * int) list
(** Non-zero accounts, in {!all_reasons} order. *)

val merge : t -> t -> t

val to_stats : t -> (string * int) list
(** The legacy view: [("P<i>.stall.<reason>", cycles)] entries sorted by
    key, plus a [("stall.total", total)] entry. *)

val to_json : t -> Json.t
(** [{"total": n, "per_proc": [{"proc", "reasons": {..}, "total"}...]}]. *)
