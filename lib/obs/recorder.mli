(** Structured trace recording.

    The whole stack — processor frontends, cache controllers, the
    directory, the interconnect, the enumerator — emits typed events
    (spans, instants, counters, each tagged with a category and a track)
    into a recorder.  Recording is chunked ({!chunk_size} events per
    allocation) and the hot path is a single boolean test when the sink
    is disabled, so instrumented components cost nothing in ordinary
    runs (measured by experiment E10).

    A recorder is single-domain: emit only from the simulation thread.
    The ambient sink ({!active}/{!with_sink}) lets deeply nested
    components find the current recorder without threading it through
    every constructor. *)

type category =
  | Proc  (** processor-side: operation lifecycles, stalls *)
  | Cache  (** cache controller: misses, reserve-bit windows *)
  | Dir  (** directory: protocol transactions *)
  | Net  (** interconnect: message transits *)
  | Enum  (** enumerator progress *)
  | Camp  (** litmus synthesis, campaign engine, serve front door *)

val category_name : category -> string
(** ["proc"], ["cache"], ["dir"], ["net"], ["enum"], ["campaign"]. *)

type event =
  | Span of { name : string; cat : category; track : int; ts : int; dur : int }
      (** an interval: [ts .. ts+dur] cycles on [track] *)
  | Instant of { name : string; cat : category; track : int; ts : int }
  | Counter of {
      name : string;
      cat : category;
      track : int;
      ts : int;
      value : int;
    }

type t

val chunk_size : int

val create : unit -> t
(** A fresh, enabled recorder. *)

val disabled : t
(** The shared no-op sink: every emission returns immediately. *)

val enabled : t -> bool

val span : t -> cat:category -> track:int -> name:string -> ts:int -> dur:int -> unit

val instant : t -> cat:category -> track:int -> name:string -> ts:int -> unit

val counter :
  t -> cat:category -> track:int -> name:string -> ts:int -> value:int -> unit

val length : t -> int
(** Events recorded so far. *)

val events : t -> event list
(** In emission order. *)

val clear : t -> unit

(** {2 The ambient sink} *)

val active : unit -> t
(** The current sink; {!disabled} unless inside {!with_sink}. *)

val with_sink : t -> (unit -> 'a) -> 'a
(** Run a thunk with [t] as the ambient sink, restoring the previous
    sink afterwards (exception-safe). *)
