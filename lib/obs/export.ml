let cat_pid = function
  | Recorder.Proc -> 1
  | Recorder.Cache -> 2
  | Recorder.Dir -> 3
  | Recorder.Net -> 4
  | Recorder.Enum -> 5
  | Recorder.Camp -> 6

let track_label cat track =
  match cat with
  | Recorder.Proc -> Printf.sprintf "P%d" track
  | Recorder.Cache -> Printf.sprintf "cache %d" track
  | Recorder.Dir -> Printf.sprintf "line %d" track
  | Recorder.Net -> if track = 0 then "fabric" else Printf.sprintf "link %d" track
  | Recorder.Enum -> Printf.sprintf "domain %d" track
  | Recorder.Camp -> Printf.sprintf "shard %d" track

let all_categories =
  [
    Recorder.Proc;
    Recorder.Cache;
    Recorder.Dir;
    Recorder.Net;
    Recorder.Enum;
    Recorder.Camp;
  ]

let base name cat track ts ph =
  [
    ("name", Json.String name);
    ("cat", Json.String (Recorder.category_name cat));
    ("ph", Json.String ph);
    ("pid", Json.Int (cat_pid cat));
    ("tid", Json.Int track);
    ("ts", Json.Int ts);
  ]

let event_json = function
  | Recorder.Span { name; cat; track; ts; dur } ->
    Json.Obj (base name cat track ts "X" @ [ ("dur", Json.Int dur) ])
  | Recorder.Instant { name; cat; track; ts } ->
    Json.Obj (base name cat track ts "i" @ [ ("s", Json.String "t") ])
  | Recorder.Counter { name; cat; track; ts; value } ->
    Json.Obj
      (base name cat track ts "C"
      @ [ ("args", Json.Obj [ ("value", Json.Int value) ]) ])

let meta ~pid ?tid name value =
  let args = [ ("name", Json.String value) ] in
  Json.Obj
    ([
       ("name", Json.String name);
       ("ph", Json.String "M");
       ("pid", Json.Int pid);
     ]
    @ (match tid with Some t -> [ ("tid", Json.Int t) ] | None -> [])
    @ [ ("args", Json.Obj args) ])

let perfetto rec_ =
  let evs = Recorder.events rec_ in
  (* One process per category, one named thread per (category, track)
     that actually appears. *)
  let tracks = Hashtbl.create 16 in
  List.iter
    (fun e ->
      let cat, track =
        match e with
        | Recorder.Span { cat; track; _ }
        | Recorder.Instant { cat; track; _ }
        | Recorder.Counter { cat; track; _ } ->
          (cat, track)
      in
      Hashtbl.replace tracks (cat_pid cat, track) (cat, track))
    evs;
  let used_cats =
    List.filter
      (fun c -> Hashtbl.fold (fun _ (c', _) acc -> acc || c' = c) tracks false)
      all_categories
  in
  let process_meta =
    List.map
      (fun c -> meta ~pid:(cat_pid c) "process_name" (Recorder.category_name c))
      used_cats
  in
  let thread_meta =
    Hashtbl.fold (fun _ ct acc -> ct :: acc) tracks []
    |> List.sort compare
    |> List.map (fun (cat, track) ->
           meta ~pid:(cat_pid cat) ~tid:track "thread_name"
             (track_label cat track))
  in
  Json.Obj
    [
      ( "traceEvents",
        Json.List (process_meta @ thread_meta @ List.map event_json evs) );
      ("displayTimeUnit", Json.String "ns");
    ]

let perfetto_string rec_ = Json.to_string ~pretty:true (perfetto rec_)

let pretty rec_ =
  let evs = Recorder.events rec_ in
  let keyed =
    List.mapi
      (fun i e ->
        let ts =
          match e with
          | Recorder.Span { ts; _ }
          | Recorder.Instant { ts; _ }
          | Recorder.Counter { ts; _ } ->
            ts
        in
        (ts, i, e))
      evs
  in
  let sorted = List.sort compare keyed in
  let b = Buffer.create 4096 in
  List.iter
    (fun (_, _, e) ->
      (match e with
      | Recorder.Span { name; cat; track; ts; dur } ->
        Buffer.add_string b
          (Printf.sprintf "%8d %-5s %-10s %s (+%d)" ts
             (Recorder.category_name cat)
             (track_label cat track) name dur)
      | Recorder.Instant { name; cat; track; ts } ->
        Buffer.add_string b
          (Printf.sprintf "%8d %-5s %-10s %s" ts
             (Recorder.category_name cat)
             (track_label cat track) name)
      | Recorder.Counter { name; cat; track; ts; value } ->
        Buffer.add_string b
          (Printf.sprintf "%8d %-5s %-10s %s = %d" ts
             (Recorder.category_name cat)
             (track_label cat track) name value));
      Buffer.add_char b '\n')
    sorted;
  Buffer.contents b
