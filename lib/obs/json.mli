(** A minimal JSON value, printer and parser.

    The repository deliberately has no external JSON dependency; every
    machine-readable artifact ([wo trace --format=perfetto],
    [BENCH_*.json], the metrics files) goes through this module, and the
    test suite parses the emitted documents back to validate them. *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list

val to_string : ?pretty:bool -> t -> string
(** Serialize.  [pretty] (default false) indents with two spaces.
    Non-finite floats serialize as [null] (JSON has no representation
    for them). *)

val to_buffer : ?pretty:bool -> Buffer.t -> t -> unit

val of_string : string -> (t, string) result
(** Parse a complete JSON document; the error carries an offset. *)

(** {2 Accessors} (shallow, total) *)

val member : string -> t -> t option
(** Field of an [Obj]; [None] for missing fields or non-objects. *)

val to_list_opt : t -> t list option

val to_string_opt : t -> string option

val to_bool_opt : t -> bool option

val to_int_opt : t -> int option
(** Also accepts integral floats. *)

val to_float_opt : t -> float option
(** Accepts both [Int] and [Float]. *)
