(** Versioned metrics-JSON documents.

    Every [BENCH_*.json] the benches write, and every [--metrics FILE]
    the CLI writes, is one of these: a top-level object carrying the
    schema name and version, the experiment tag, and the
    experiment-specific payload fields.  Consumers check
    [{!validate}]-style structure before trusting the rest. *)

val schema_name : string
(** ["wo-metrics"]. *)

val schema_version : int
(** Bumped whenever the envelope or a shared payload shape changes. *)

val make : experiment:string -> (string * Json.t) list -> Json.t
(** Wrap payload [fields] in the versioned envelope.  Payload fields
    must not collide with the envelope keys ([schema], [schema_version],
    [experiment]). *)

val write_file : path:string -> Json.t -> unit
(** Pretty-print to [path] with a trailing newline. *)

val validate : Json.t -> (unit, string) result
(** Check the envelope: correct schema name, a version we understand,
    and a non-empty experiment tag. *)

val experiment : Json.t -> string option
