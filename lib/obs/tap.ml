type t = (string, Hist.t) Hashtbl.t

let create () : t = Hashtbl.create 16

let clear (t : t) = Hashtbl.reset t

let copy (t : t) : t =
  (* Hashtbl.copy preserves bucket structure, so the copy Marshals
     identically to the original; rebuilding via add would reverse
     multi-entry buckets. *)
  let c = Hashtbl.copy t in
  Hashtbl.filter_map_inplace (fun _ h -> Some (Hist.copy h)) c;
  c

let record t ~name ~latency =
  let h =
    match Hashtbl.find_opt t name with
    | Some h -> h
    | None ->
      let h = Hist.create () in
      Hashtbl.add t name h;
      h
  in
  Hist.add h latency

let to_list t =
  Hashtbl.fold (fun name h acc -> (name, Hist.count h, h) :: acc) t []
  |> List.sort (fun (a, _, _) (b, _, _) -> compare a b)

let total t = Hashtbl.fold (fun _ h acc -> acc + Hist.count h) t 0

let to_stats t =
  List.map (fun (name, count, _) -> ("msg." ^ name, count)) (to_list t)

let merge a b =
  let t = create () in
  let absorb (src : t) =
    Hashtbl.iter
      (fun name h ->
        match Hashtbl.find_opt t name with
        | Some existing -> Hashtbl.replace t name (Hist.merge existing h)
        | None -> Hashtbl.add t name (Hist.merge (Hist.create ()) h))
      src
  in
  absorb a;
  absorb b;
  t

let to_json t =
  Json.List
    (List.map
       (fun (name, count, h) ->
         Json.Obj
           [
             ("type", Json.String name);
             ("count", Json.Int count);
             ("latency", Hist.to_json h);
           ])
       (to_list t))
