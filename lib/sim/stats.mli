(** Named integer counters for simulation statistics. *)

type t

val create : unit -> t

val clear : t -> unit
(** Drop every counter, in place — components holding this collector see
    an empty one, as after {!create}. *)

val incr : t -> string -> unit

val add : t -> string -> int -> unit

val get : t -> string -> int
(** 0 if never touched. *)

val max_to : t -> string -> int -> unit
(** Keep the running maximum. *)

val to_list : t -> (string * int) list
(** Sorted by name. *)

val merge : t -> t -> t
(** Pointwise sum into a fresh collector. *)

val pp : Format.formatter -> t -> unit
