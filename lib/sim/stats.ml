type t = (string, int) Hashtbl.t

let create () = Hashtbl.create 32

let clear t = Hashtbl.reset t

let get t name = match Hashtbl.find_opt t name with Some v -> v | None -> 0

let add t name n = Hashtbl.replace t name (get t name + n)

let incr t name = add t name 1

let max_to t name n = if n > get t name then Hashtbl.replace t name n

let to_list t =
  Hashtbl.fold (fun k v acc -> (k, v) :: acc) t [] |> List.sort compare

let merge a b =
  let t = create () in
  List.iter (fun (k, v) -> add t k v) (to_list a);
  List.iter (fun (k, v) -> add t k v) (to_list b);
  t

let pp ppf t =
  Format.fprintf ppf "@[<v>";
  List.iter (fun (k, v) -> Format.fprintf ppf "%s = %d@," k v) (to_list t);
  Format.fprintf ppf "@]"
