(** Discrete-event simulation engine.

    Components schedule closures at future times; the engine runs them in
    time order, FIFO among events scheduled for the same tick, which keeps
    simulations deterministic. *)

module type S = sig
  type t

  type stop_reason = [ `Idle | `Time_limit | `Event_limit ]

  val create : unit -> t

  val now : t -> int
  (** Current simulation time (cycles). *)

  val schedule : t -> delay:int -> (unit -> unit) -> unit
  (** Run the closure [delay] cycles from now ([delay >= 0]). *)

  val schedule_at : t -> time:int -> (unit -> unit) -> unit
  (** @raise Invalid_argument if [time] is in the past. *)

  val pending : t -> int
  (** Number of events not yet executed. *)

  val run : ?max_time:int -> ?max_events:int -> t -> stop_reason
  (** Execute events until the queue drains or a limit is hit.
      [max_events] (default 50 million) is a deadlock/livelock backstop. *)
end

(** The default implementation: an array-backed binary min-heap keyed by
    [(time, sequence-number)].  [schedule]/[schedule_at] are O(log n) with
    no per-event allocation beyond the heap slot; the previous
    map-of-lists implementation paid O(log n) in balanced-tree rebuilds
    plus a list allocation per event and a [List.rev] per tick.

    Event order is identical to {!Reference}: the sequence number rises
    monotonically, so same-tick events run FIFO, and an event scheduled
    for the current tick from inside a handler runs after every event of
    the tick's current batch — exactly the batch semantics of the map
    implementation.  The only divergence is when [max_events] fires: the
    heap stops exactly at the limit, while {!Reference} finishes the
    current tick's batch first. *)
include S

module Reference : S
(** The original [Map.Make(Int)]-of-lists engine, kept as the oracle the
    heap is property-tested against (same schedule sequence, same
    execution order) and as the baseline for the E11 hot-path bench. *)
