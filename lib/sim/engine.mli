(** Discrete-event simulation engine.

    Components schedule closures at future times; the engine runs them in
    time order, FIFO among events scheduled for the same tick, which keeps
    simulations deterministic. *)

module type S = sig
  type t

  type stop_reason = [ `Idle | `Time_limit | `Event_limit ]

  val create : unit -> t

  val now : t -> int
  (** Current simulation time (cycles). *)

  val schedule : t -> delay:int -> (unit -> unit) -> unit
  (** Run the closure [delay] cycles from now ([delay >= 0]). *)

  val schedule_at : t -> time:int -> (unit -> unit) -> unit
  (** @raise Invalid_argument if [time] is in the past. *)

  val pending : t -> int
  (** Number of events not yet executed. *)

  val run : ?max_time:int -> ?max_events:int -> t -> stop_reason
  (** Execute events until the queue drains or a limit is hit.
      [max_events] (default 50 million) is a deadlock/livelock backstop. *)
end

(** The default implementation: an array-backed binary min-heap keyed by
    [(time, sequence-number)].  [schedule]/[schedule_at] are O(log n) with
    no per-event allocation beyond the heap slot; the previous
    map-of-lists implementation paid O(log n) in balanced-tree rebuilds
    plus a list allocation per event and a [List.rev] per tick.

    Event order is identical to {!Reference}: the sequence number rises
    monotonically, so same-tick events run FIFO, and an event scheduled
    for the current tick from inside a handler runs after every event of
    the tick's current batch — exactly the batch semantics of the map
    implementation.  The only divergence is when [max_events] fires: the
    heap stops exactly at the limit, while {!Reference} finishes the
    current tick's batch first. *)
include S

val clear : t -> unit
(** Reset the engine to its just-created state — time 0, sequence 0, no
    pending events — while keeping the grown heap arrays, so a session
    that reuses one engine across many runs pays no per-run allocation.
    Closures parked by an aborted (time/event-limited) run are dropped;
    event ordering after [clear] is identical to a fresh [create]. *)

val try_step_inline : t -> delay:int -> bool
(** Inline-step fast path for self-rescheduling handlers.  When the
    handler currently executing would [schedule] its own continuation at
    [now + delay] and no pending event is due at or before that tick,
    the heap round-trip is pure overhead: nothing can run in between, so
    the continuation may execute immediately inside the current handler.
    [try_step_inline] checks that condition; on success it advances [now]
    by [delay] and burns the sequence number the skipped [schedule] would
    have claimed, so every later event receives exactly the (time, seq)
    key it would have under the evented execution — same-tick FIFO order,
    and therefore simulation results, are bit-for-bit unchanged.  On
    failure (some event is due first) it does nothing and the caller must
    [schedule] as usual.

    Callers must only invoke this from within a running event (never
    around [run] — externally scheduled events may not be queued yet) and
    should bound consecutive inline steps so [run]'s [max_events]
    livelock backstop still observes runaway handlers. *)

module Reference : S
(** The original [Map.Make(Int)]-of-lists engine, kept as the oracle the
    heap is property-tested against (same schedule sequence, same
    execution order) and as the baseline for the E11 hot-path bench. *)
