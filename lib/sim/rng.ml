type t = { mutable state : int64 }

let golden_gamma = 0x9E3779B97F4A7C15L

let mix z =
  let z = Int64.(mul (logxor z (shift_right_logical z 30)) 0xBF58476D1CE4E5B9L) in
  let z = Int64.(mul (logxor z (shift_right_logical z 27)) 0x94D049BB133111EBL) in
  Int64.(logxor z (shift_right_logical z 31))

let next t =
  t.state <- Int64.add t.state golden_gamma;
  mix t.state

let make seed = { state = mix (Int64.of_int (seed * 2 + 1)) }

let reseed t seed = t.state <- mix (Int64.of_int ((seed * 2) + 1))

let split t = { state = mix (next t) }

let split_into parent child = child.state <- mix (next parent)

let int t bound =
  if bound <= 0 then invalid_arg "Rng.int: bound must be positive";
  (* Keep 62 bits so the value fits OCaml's immediate int non-negatively. *)
  let v = Int64.to_int (Int64.shift_right_logical (next t) 2) in
  v mod bound

let int_in t lo hi =
  if hi < lo then invalid_arg "Rng.int_in: empty range";
  lo + int t (hi - lo + 1)

let bool t = Int64.logand (next t) 1L = 1L

let chance t p =
  let v = Int64.to_float (Int64.shift_right_logical (next t) 11) in
  v /. 9007199254740992.0 < p

let pick t = function
  | [] -> invalid_arg "Rng.pick: empty list"
  | l -> List.nth l (int t (List.length l))

let shuffle t l =
  let arr = Array.of_list l in
  for i = Array.length arr - 1 downto 1 do
    let j = int t (i + 1) in
    let tmp = arr.(i) in
    arr.(i) <- arr.(j);
    arr.(j) <- tmp
  done;
  Array.to_list arr
