module type S = sig
  type t

  type stop_reason = [ `Idle | `Time_limit | `Event_limit ]

  val create : unit -> t
  val now : t -> int
  val schedule : t -> delay:int -> (unit -> unit) -> unit
  val schedule_at : t -> time:int -> (unit -> unit) -> unit
  val pending : t -> int
  val run : ?max_time:int -> ?max_events:int -> t -> stop_reason
end

(* Array-backed indexed binary min-heap ordered lexicographically by
   [(time, seq)].  [seq] rises monotonically across the engine's lifetime,
   which buys two properties at once: same-tick FIFO, and
   schedule-during-execution lands *after* everything already queued for
   the tick — the batch semantics of the old map-of-lists implementation,
   without materializing batches.

   The heap proper is three parallel [int] arrays (time, seq, and a slot
   index into the closure table), so sift swaps move only immediate
   integers — no write barrier, no allocation.  The closure itself is
   written exactly twice per event (parked at insert, cleared at pop);
   keeping pointers out of the sift loop is what lets the heap beat the
   map-of-lists engine, whose per-event cost is dominated by rebuilding
   balanced-tree spines. *)

type t = {
  mutable now : int;
  mutable times : int array; (* heap-ordered *)
  mutable seqs : int array; (* heap-ordered, same layout as times *)
  mutable slots : int array; (* heap position -> closure-table index *)
  mutable fns : (unit -> unit) array; (* closure table *)
  mutable free : int array; (* stack of free closure-table indices *)
  mutable free_top : int;
  mutable size : int;
  mutable seq : int;
}

type stop_reason = [ `Idle | `Time_limit | `Event_limit ]

let initial_capacity = 64

let create () =
  {
    now = 0;
    times = Array.make initial_capacity 0;
    seqs = Array.make initial_capacity 0;
    slots = Array.make initial_capacity 0;
    fns = Array.make initial_capacity ignore;
    free = Array.init initial_capacity (fun i -> i);
    free_top = initial_capacity;
    size = 0;
    seq = 0;
  }

let now t = t.now

let pending t = t.size

(* Full clear, not just [size <- 0]: a run aborted by a time/event limit
   leaves parked closures in [fns] and a partially-consumed free stack,
   so every slot is reset and every closure dropped — the cleared engine
   retains nothing from the previous simulation and schedules events in
   exactly the order a fresh [create] would (time 0, seq 0). *)
let clear t =
  t.now <- 0;
  t.size <- 0;
  t.seq <- 0;
  let cap = Array.length t.times in
  for i = 0 to cap - 1 do
    t.free.(i) <- i;
    t.fns.(i) <- ignore
  done;
  t.free_top <- cap

let grow t =
  let cap = Array.length t.times in
  let extend a fill =
    let a' = Array.make (2 * cap) fill in
    Array.blit a 0 a' 0 cap;
    a'
  in
  t.times <- extend t.times 0;
  t.seqs <- extend t.seqs 0;
  t.slots <- extend t.slots 0;
  t.fns <- extend t.fns ignore;
  t.free <- extend t.free 0;
  (* grow only runs with capacity = size, so the free stack is empty:
     refill it with the fresh closure-table indices. *)
  for i = 0 to cap - 1 do
    t.free.(i) <- cap + i
  done;
  t.free_top <- cap

(* Both sifts carry the moving (time, seq, slot) triple in locals and
   write each visited node once ("hole" technique): one comparison and
   three stores per level instead of a full three-array swap.  The
   unsafe accesses are bounds-safe by construction — every index is a
   parent or child index of a position < t.size <= Array.length. *)

let rec sift_up t i kt ks kslot =
  if i = 0 then begin
    Array.unsafe_set t.times 0 kt;
    Array.unsafe_set t.seqs 0 ks;
    Array.unsafe_set t.slots 0 kslot
  end
  else begin
    let p = (i - 1) / 2 in
    let pt = Array.unsafe_get t.times p in
    if pt > kt || (pt = kt && Array.unsafe_get t.seqs p > ks) then begin
      Array.unsafe_set t.times i pt;
      Array.unsafe_set t.seqs i (Array.unsafe_get t.seqs p);
      Array.unsafe_set t.slots i (Array.unsafe_get t.slots p);
      sift_up t p kt ks kslot
    end
    else begin
      Array.unsafe_set t.times i kt;
      Array.unsafe_set t.seqs i ks;
      Array.unsafe_set t.slots i kslot
    end
  end

let rec sift_down t i kt ks kslot =
  let l = (2 * i) + 1 in
  if l >= t.size then begin
    Array.unsafe_set t.times i kt;
    Array.unsafe_set t.seqs i ks;
    Array.unsafe_set t.slots i kslot
  end
  else begin
    (* pick the smaller child *)
    let c =
      let r = l + 1 in
      if r < t.size then begin
        let lt = Array.unsafe_get t.times l
        and rt = Array.unsafe_get t.times r in
        if
          rt < lt
          || (rt = lt && Array.unsafe_get t.seqs r < Array.unsafe_get t.seqs l)
        then r
        else l
      end
      else l
    in
    let ct = Array.unsafe_get t.times c in
    if ct < kt || (ct = kt && Array.unsafe_get t.seqs c < ks) then begin
      Array.unsafe_set t.times i ct;
      Array.unsafe_set t.seqs i (Array.unsafe_get t.seqs c);
      Array.unsafe_set t.slots i (Array.unsafe_get t.slots c);
      sift_down t c kt ks kslot
    end
    else begin
      Array.unsafe_set t.times i kt;
      Array.unsafe_set t.seqs i ks;
      Array.unsafe_set t.slots i kslot
    end
  end

let schedule_at t ~time f =
  if time < t.now then invalid_arg "Engine.schedule_at: time in the past";
  if t.size = Array.length t.times then grow t;
  let slot = t.free.(t.free_top - 1) in
  t.free_top <- t.free_top - 1;
  t.fns.(slot) <- f;
  let i = t.size in
  t.size <- t.size + 1;
  sift_up t i time t.seq slot;
  t.seq <- t.seq + 1

let schedule t ~delay f =
  if delay < 0 then invalid_arg "Engine.schedule: negative delay";
  schedule_at t ~time:(t.now + delay) f

(* Sound exactly when no pending event is due at or before the target
   tick: then the evented execution would pop our continuation next
   anyway, with nothing running in between to claim a sequence number.
   Advancing [now] and burning one seq reproduces the evented (time,
   seq) assignment for every subsequent [schedule], so execution order —
   and therefore every simulation observable — is unchanged. *)
let try_step_inline t ~delay =
  if delay < 0 then invalid_arg "Engine.try_step_inline: negative delay";
  if t.size > 0 && Array.unsafe_get t.times 0 <= t.now + delay then false
  else begin
    t.now <- t.now + delay;
    t.seq <- t.seq + 1;
    true
  end

(* Pop the minimum, clearing its closure slot so the engine does not
   retain the closure (and whatever simulation state it captures) after
   execution. *)
let pop t =
  let slot = t.slots.(0) in
  let f = t.fns.(slot) in
  t.fns.(slot) <- ignore;
  t.free.(t.free_top) <- slot;
  t.free_top <- t.free_top + 1;
  t.size <- t.size - 1;
  if t.size > 0 then begin
    let last = t.size in
    sift_down t 0 t.times.(last) t.seqs.(last) t.slots.(last)
  end;
  f

let run ?max_time ?(max_events = 50_000_000) t =
  let executed = ref 0 in
  let rec loop () =
    if t.size = 0 then `Idle
    else begin
      let time = t.times.(0) in
      if (match max_time with Some m -> time > m | None -> false) then
        `Time_limit
      else if !executed >= max_events then `Event_limit
      else begin
        let f = pop t in
        t.now <- time;
        incr executed;
        f ();
        loop ()
      end
    end
  in
  loop ()

(* The original engine, retained verbatim as the oracle: the heap is
   property-tested to execute arbitrary schedule sequences in the same
   order, and E11 benches the two against each other. *)
module Reference = struct
  module Time_map = Map.Make (Int)

  type t = {
    mutable now : int;
    (* time -> events in reverse scheduling order *)
    mutable queue : (unit -> unit) list Time_map.t;
    mutable pending : int;
  }

  type stop_reason = [ `Idle | `Time_limit | `Event_limit ]

  let create () = { now = 0; queue = Time_map.empty; pending = 0 }

  let now t = t.now

  let schedule_at t ~time f =
    if time < t.now then invalid_arg "Engine.schedule_at: time in the past";
    let existing =
      match Time_map.find_opt time t.queue with None -> [] | Some l -> l
    in
    t.queue <- Time_map.add time (f :: existing) t.queue;
    t.pending <- t.pending + 1

  let schedule t ~delay f =
    if delay < 0 then invalid_arg "Engine.schedule: negative delay";
    schedule_at t ~time:(t.now + delay) f

  let pending t = t.pending

  let run ?max_time ?(max_events = 50_000_000) t =
    let executed = ref 0 in
    let rec loop () =
      match Time_map.min_binding_opt t.queue with
      | None -> `Idle
      | Some (time, events) ->
        if (match max_time with Some m -> time > m | None -> false) then
          `Time_limit
        else if !executed >= max_events then `Event_limit
        else begin
          t.queue <- Time_map.remove time t.queue;
          t.now <- time;
          let in_order = List.rev events in
          t.pending <- t.pending - List.length in_order;
          List.iter
            (fun f ->
              incr executed;
              f ())
            in_order;
          loop ()
        end
    in
    loop ()
end
