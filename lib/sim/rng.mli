(** Deterministic pseudo-random numbers (splitmix64).

    All randomness in the simulators flows through this module so every
    experiment is reproducible from its integer seed.  Instances are
    mutable; {!split} derives an independent stream, which the machines use
    to give each component (network, scheduler) its own stream so adding a
    random draw in one component does not perturb the others. *)

type t

val make : int -> t

val reseed : t -> int -> unit
(** [reseed t seed] puts [t] in exactly the state [make seed] would
    create, in place — generators split from [t] afterwards see the same
    streams as if everything had been built fresh from [seed]. *)

val split : t -> t
(** A new generator with an independent stream, deterministic in the state
    of [t] (advances [t]). *)

val split_into : t -> t -> unit
(** [split_into parent child] re-derives [child]'s stream from [parent]
    in place — the same draw as {!split} (advances [parent]), but
    targeting an existing generator whose identity other components
    already hold. *)

val int : t -> int -> int
(** [int t bound] is uniform in [0, bound); [bound] must be positive. *)

val int_in : t -> int -> int -> int
(** [int_in t lo hi] is uniform in [lo, hi] inclusive. *)

val bool : t -> bool

val chance : t -> float -> bool
(** [chance t p] is [true] with probability [p]. *)

val pick : t -> 'a list -> 'a
(** Uniform element of a non-empty list. *)

val shuffle : t -> 'a list -> 'a list
