type report = {
  test : Litmus.t;
  machine : string;
  runs : int;
  sc_outcomes : Wo_prog.Outcome.t list;
  histogram : (Wo_prog.Outcome.t * int) list;
  violations : (Wo_prog.Outcome.t * int) list;
  lemma1_failures : int;
  interesting_counts : (string * int) list;
  total_cycles : int;
  sc_coverage : int;
}

module Outcome_map = Map.Make (Wo_prog.Outcome)

let histogram_of outcomes =
  let counts =
    List.fold_left
      (fun m o ->
        Outcome_map.update o
          (function None -> Some 1 | Some n -> Some (n + 1))
          m)
      Outcome_map.empty outcomes
  in
  (* Most frequent first; ties in outcome order ([bindings] is sorted and
     the sort is stable), so the histogram is fully deterministic. *)
  Outcome_map.bindings counts |> List.sort (fun (_, a) (_, b) -> compare b a)

let run ?(runs = 100) ?(base_seed = 1) ?check_lemma1 ?sc_outcomes
    ?(engine = Wo_machines.Machine.Compiled) ?session ?compiled machine
    (test : Litmus.t) =
  let check_lemma1 =
    match check_lemma1 with Some b -> b | None -> test.Litmus.drf0
  in
  let sc_outcomes =
    match sc_outcomes with
    | Some outcomes -> outcomes
    | None ->
      if test.Litmus.loops then []
      else Wo_prog.Enumerate.outcomes test.Litmus.program
  in
  (* One session for the whole seed batch: the machine is built once and
     reset between seeds, and the program is compiled once (under the
     compiled engine) instead of re-walked per run. *)
  let session =
    match session with
    | Some s -> s
    | None -> Wo_machines.Machine.new_session machine engine
  in
  let observed = ref [] in
  let lemma1_failures = ref 0 in
  let total_cycles = ref 0 in
  for seed = base_seed to base_seed + runs - 1 do
    let r =
      Wo_machines.Machine.session_run session ~seed ?compiled
        test.Litmus.program
    in
    observed := r.Wo_machines.Machine.outcome :: !observed;
    total_cycles := !total_cycles + r.Wo_machines.Machine.cycles;
    if check_lemma1 then
      match
        Wo_machines.Machine.check_lemma1
          ~init:(Wo_prog.Program.initial_value test.Litmus.program)
          r
      with
      | Ok () -> ()
      | Error _ -> incr lemma1_failures
  done;
  let observed = List.rev !observed in
  let histogram = histogram_of observed in
  let violations =
    if test.Litmus.loops then []
    else
      List.filter
        (fun (o, _) ->
          not
            (List.exists
               (fun sc -> Wo_prog.Outcome.compare sc o = 0)
               sc_outcomes))
        histogram
  in
  let interesting_counts =
    List.map
      (fun (name, pred) ->
        (name, List.length (List.filter pred observed)))
      test.Litmus.interesting
  in
  let sc_coverage =
    let verdict =
      Wo_core.Weak_ordering.appears_sc ~compare:Wo_prog.Outcome.compare
        ~sc_outcomes ~observed
    in
    Wo_core.Weak_ordering.coverage ~compare:Wo_prog.Outcome.compare
      ~sc_outcomes verdict
  in
  {
    test;
    machine = machine.Wo_machines.Machine.name;
    runs;
    sc_outcomes;
    histogram;
    violations;
    lemma1_failures = !lemma1_failures;
    interesting_counts;
    total_cycles = !total_cycles;
    sc_coverage;
  }

let appears_sc r = r.violations = [] && r.lemma1_failures = 0

let pp_report ppf r =
  Format.fprintf ppf "@[<v>%s on %s: %d runs" r.test.Litmus.name r.machine
    r.runs;
  if not r.test.Litmus.loops then
    Format.fprintf ppf
      ", %d SC outcomes (%d covered), %d observed, %d outside SC"
      (List.length r.sc_outcomes) r.sc_coverage (List.length r.histogram)
      (List.length r.violations);
  if r.lemma1_failures > 0 then
    Format.fprintf ppf ", %d Lemma-1 failures" r.lemma1_failures;
  List.iter
    (fun (name, n) -> Format.fprintf ppf "@,  %-24s %d/%d" name n r.runs)
    r.interesting_counts;
  Format.fprintf ppf "@]"
