(** Litmus tests.

    A litmus test is a small program plus named outcome predicates worth
    tallying (e.g. the "both processors killed" outcome of Figure 1).
    Tests marked [drf0] obey Definition 3 — every weakly ordered machine
    must appear sequentially consistent on them; the others have races and
    weak machines may (and should, to demonstrate anything) leave the SC
    outcome set. *)

type t = {
  name : string;
  description : string;
  program : Wo_prog.Program.t;
  drf0 : bool;  (** the program obeys DRF0 (verified by the test suite) *)
  loops : bool; (** contains spin loops: SC outcomes cannot be enumerated,
                    use invariants and the Lemma-1 oracle instead *)
  interesting : (string * (Wo_prog.Outcome.t -> bool)) list;
}

val figure1 : t
(** The Figure-1 program with cold caches: [X = 1; if (Y == 0) kill] in
    parallel with [Y = 1; if (X == 0) kill].  The "kill" is represented by
    the final registers: both zero means both processes were killed. *)

val figure1_warmed : t
(** Figure 1 preceded by reads that bring both variables into both caches
    in shared state — the situation the paper describes for the cached
    configurations ("both processors initially have X and Y in their
    caches"). *)

val both_killed : Wo_prog.Outcome.t -> bool
(** The sequentially-impossible outcome of Figure 1 (r0 = 0 on both). *)

val message_passing : t
(** Racy producer/consumer: data write then flag write, reads in the
    opposite order. *)

val message_passing_sync : t
(** The DRF0 version: flag accesses are synchronization operations and the
    consumer spins. *)

val coherence : t
(** Two writers to one location; coherence requires all processors to
    agree on the write order. *)

val iriw : t
(** Independent reads of independent writes (4 processors): tests write
    atomicity, which the idealized architecture and all machines here
    provide. *)

val atomicity : t
(** Two TestAndSets on one lock: at most one can observe 0. *)

val dekker_sync : t
(** Figure 1 rewritten with synchronization operations for the stores and
    Tests for the reads — DRF0 (the conflicting accesses are all
    synchronization), so even weak machines must produce SC outcomes. *)

val sb_acquire : t
(** Store buffering with acquire reads: data writes, synchronization
    reads.  Racy.  Separates release/acquire hardware (acquires do not
    drain the store buffer, so both reads may return 0) from SC, TSO and
    PSO (every synchronization operation drains, so they forbid it). *)

val load_buffering : t
(** Classic LB: both reads returning the other processor's later write —
    impossible on every machine here (reads block), documented as a zoo
    property. *)

val wrc : t
(** Write-to-read causality (3 processors). *)

val s_shape : t
(** The S shape. *)

val r_shape : t
(** The R shape. *)

val two_plus_two_w : t
(** 2+2W: both locations left at the first writes. *)

val corr : t
(** Coherence of read-read on one location. *)

val warmed : t -> t
(** Prepend warm-up reads of every location on every processor (shared
    copies resident — the Figure-1 precondition for the cached machines);
    the outcome stays restricted to the original registers. *)

val sync_chain : t
(** Two synchronization writes observed by synchronization reads in the
    opposite order — DRF0; exposes hardware that issues a synchronization
    operation before the previous one committed (condition 4 of 5.1). *)

val sync_chain_scenario : ?observer_delay:int -> unit -> t
(** {!sync_chain} with the observer delayed by local work — gives slowed
    requests time to land, used by the ablation experiment. *)

val figure3_scenario :
  ?work_before_unset:int -> ?work_after_unset:int -> ?consumer_delay:int ->
  unit -> t
(** The Figure-3 analysis scenario: P2 warms x into its cache (making
    P0's write of x slow to perform globally); P0 writes x, does other
    work, Unsets s, then does more work; P1 TestAndSets s (spinning) and
    then reads x.  DRF0.  Parameters control the "other work" amounts. *)

val all : t list
(** Every test above (with default parameters for the parameterized one). *)

val find : string -> t option
