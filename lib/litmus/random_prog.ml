(* Thin aliases: the implementations moved to Wo_synth.Synth (PR 7), the
   one seeded generation surface.  Kept so the historical entry points —
   and every (seed, params) program they ever named — stay valid. *)

let lock_disciplined = Wo_synth.Synth.lock_disciplined

let racy = Wo_synth.Synth.racy
