(** Random program generation for the Definition-2 compliance harness.

    Thin aliases of {!Wo_synth.Synth.lock_disciplined} and
    {!Wo_synth.Synth.racy} — all seeded generation now lives behind that
    one surface; these entry points remain because a (seed, params) pair
    names the same program it always did.

    [lock_disciplined] programs access shared locations only inside
    critical sections of per-location locks, so they obey DRF0 by
    construction (the test suite cross-checks a sample with the dynamic
    race detector); any weakly ordered machine must appear sequentially
    consistent on them — verified with the Lemma-1 oracle since the spin
    locks preclude outcome enumeration.

    [racy] programs sprinkle unsynchronized reads and writes; they are the
    negative control demonstrating that the software side of the contract
    is load-bearing. *)

val lock_disciplined :
  seed:int ->
  ?procs:int ->
  ?sections_per_proc:int ->
  ?ops_per_section:int ->
  ?shared_locs:int ->
  ?locks:int ->
  unit ->
  Wo_prog.Program.t

val racy :
  seed:int ->
  ?procs:int ->
  ?ops_per_proc:int ->
  ?locs:int ->
  unit ->
  Wo_prog.Program.t
(** Loop-free, so the SC outcome set is enumerable. *)
