(** The litmus harness: run a test many times on a machine and compare the
    observed outcomes against the sequentially consistent set.

    For loop-free tests the SC set comes from exhaustive enumeration on
    the idealized architecture, so [violations] is exact (Definition 2
    falsification).  For tests with spin loops the SC set cannot be
    enumerated; the harness instead applies the Lemma-1 oracle to each
    trace when the test is DRF0, and only tallies the test's named
    predicates otherwise. *)

type report = {
  test : Litmus.t;
  machine : string;
  runs : int;
  sc_outcomes : Wo_prog.Outcome.t list;
      (** empty when the test has loops *)
  histogram : (Wo_prog.Outcome.t * int) list;
      (** distinct observed outcomes with multiplicity, most frequent
          first *)
  violations : (Wo_prog.Outcome.t * int) list;
      (** observed outcomes outside the SC set (loop-free tests only) *)
  lemma1_failures : int;
      (** traces failing the Lemma-1 condition (DRF0 tests only) *)
  interesting_counts : (string * int) list;
  total_cycles : int;
  sc_coverage : int;
      (** how many distinct SC outcomes were actually observed — a machine
          that always executes one interleaving appears SC trivially, so
          coverage qualifies the verdict (0 when the test has loops) *)
}

val run :
  ?runs:int -> ?base_seed:int -> ?check_lemma1:bool ->
  ?sc_outcomes:Wo_prog.Outcome.t list ->
  ?engine:Wo_machines.Machine.engine ->
  ?session:Wo_machines.Machine.session ->
  ?compiled:Wo_prog.Prog_compile.t ->
  Wo_machines.Machine.t -> Litmus.t -> report
(** [runs] defaults to 100, seeds are [base_seed..base_seed+runs-1]
    (default 1).  [check_lemma1] (default: the test's [drf0] flag) applies
    the Lemma-1 oracle to every trace.  [sc_outcomes] supplies a
    precomputed SC outcome set, skipping the enumeration — the sweep
    driver ({!Wo_workload.Sweep}) memoizes one set per distinct program
    and shares it across every machine/seed combination.  All seeds run
    through one machine session — [session] to share across calls
    (it must belong to this machine), [engine] (default [Compiled])
    selects the execution mode when the harness creates one, and
    [compiled] passes the test program's pre-compiled artifact. *)

val appears_sc : report -> bool
(** No violations and no Lemma-1 failures. *)

val pp_report : Format.formatter -> report -> unit
